// Dead-spot rescue: a client whose links sit at ~3 dB cannot sustain any
// 802.11 rate from a single AP. With MegaMIMO's diversity mode (§8),
// every AP transmits the same packet with phases aligned at the client,
// so the received amplitudes add — an N² power gain that turns a dead
// spot into a working link (the paper's Fig. 11).
package main

import (
	"fmt"
	"log"

	"megamimo"
	"megamimo/internal/rate"
	"megamimo/internal/units"
)

func main() {
	const linkSNR = 3.0 // per-AP link quality, dB — below every MCS
	if _, ok := rate.SelectFlat(linkSNR - 3); !ok {
		fmt.Printf("single 802.11 transmitter at %.0f dB: no deliverable rate (dead spot)\n", linkSNR)
	}
	for _, nAPs := range []int{2, 4, 8} {
		cfg := megamimo.DefaultConfig(nAPs, 1, linkSNR, linkSNR+1)
		cfg.LinkSpreadDB = 0.5
		cfg.Seed = int64(nAPs)
		net, err := megamimo.NewNetwork(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.Measure(); err != nil {
			log.Fatal(err)
		}
		// Predict the diversity rate, then actually deliver a packet.
		sub := diversitySNR(net)
		mcs, ok := rate.Select(sub)
		if !ok {
			fmt.Printf("%d APs: still dead\n", nAPs)
			continue
		}
		res, err := net.DiversityTransmit(0, make([]byte, 1500), mcs)
		if err != nil {
			log.Fatal(err)
		}
		status := "lost"
		snr := units.Decibels(0)
		if res.OK[0] {
			status = "delivered"
			snr = res.Frames[0].SNRdB
		}
		fmt.Printf("%d APs: %v %s (received SNR %.1f dB — coherent gain over the %.0f dB links)\n",
			nAPs, mcs, status, snr, linkSNR)
	}
}

func diversitySNR(net *megamimo.Network) []float64 {
	sub := megamimo.DiversitySubcarrierSNR(net.Msmt, 0, net.Cfg.NoiseVar)
	// 3 dB implementation margin, like the rate selector uses.
	for i := range sub {
		sub[i] *= 0.5
	}
	return sub
}
