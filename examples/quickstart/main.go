// Quickstart: two independent APs jointly beamform two different packets
// to two clients at the same time on the same channel — the thing plain
// 802.11 cannot do at all.
package main

import (
	"bytes"
	"fmt"
	"log"

	"megamimo"
	"megamimo/internal/units"
)

func main() {
	// Two single-antenna APs, two single-antenna clients, links at
	// 18-24 dB — a small conference-room corner.
	cfg := megamimo.DefaultConfig(2, 2, 18, 24)
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Channel-measurement phase (§5.1): the lead AP's sync header, CFO
	// blocks and interleaved symbols; clients feed CSI back; the slave
	// captures its reference channel from the lead.
	if _, err := net.MeasureAndPrecode(); err != nil {
		log.Fatal(err)
	}

	// Two different payloads, transmitted concurrently.
	pkt0 := bytes.Repeat([]byte("alpha "), 100)
	pkt1 := bytes.Repeat([]byte("bravo "), 100)
	res, err := net.JointTransmit([][]byte{pkt0, pkt1}, megamimo.MCS2)
	if err != nil {
		log.Fatal(err)
	}

	for j, frame := range res.Frames {
		status := "LOST"
		preview := ""
		if res.OK[j] {
			status = "delivered"
			preview = string(frame.Payload[:12])
		}
		fmt.Printf("client %d: %s", j, status)
		if preview != "" {
			fmt.Printf(" (%q…, frame SNR %.1f dB)", preview, frame.SNRdB)
		}
		fmt.Println()
	}
	fmt.Printf("airtime for both packets together: %.0f µs\n",
		units.Duration(units.Ticks(res.AirtimeSamples), cfg.SampleRate)*1e6)
}
