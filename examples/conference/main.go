// Conference-room scaling: the paper's headline experiment (Fig. 9) in
// miniature. Add APs and clients on the same channel and watch total
// throughput grow linearly while the 802.11 baseline stays flat.
package main

import (
	"fmt"
	"log"

	"megamimo"
	"megamimo/internal/baseline"
	"megamimo/internal/core"
	"megamimo/internal/units"
)

func main() {
	fmt.Println("APs  802.11 (Mb/s)  MegaMIMO (Mb/s)  gain")
	for _, nAPs := range []int{2, 4, 6, 8} {
		cfg := megamimo.DefaultConfig(nAPs, nAPs, 18, 24)
		cfg.WellConditioned = true
		cfg.Seed = int64(nAPs) * 101
		net, err := megamimo.NewNetwork(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.Measure(); err != nil {
			log.Fatal(err)
		}
		p, err := megamimo.ComputeZF(net.Msmt, cfg.NoiseVar)
		if err != nil {
			log.Fatal(err)
		}
		net.SetPrecoder(p)

		mcs, ok, err := net.ProbeAndSelectRate(256)
		if err != nil || !ok {
			log.Fatalf("rate adaptation failed: %v", err)
		}
		mm := measureThroughput(net, mcs, nAPs)
		bl, _, err := baseline.New(net).EqualShareThroughput(1500)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d  %13.1f  %15.1f  %4.1fx\n", nAPs, bl/1e6, mm/1e6, mm/bl)
	}
}

func measureThroughput(net *core.Network, mcs megamimo.MCS, streams int) float64 {
	var bits float64
	var airtime int64
	for round := 0; round < 3; round++ {
		payloads := make([][]byte, streams)
		for j := range payloads {
			payloads[j] = make([]byte, 1500)
		}
		res, err := net.JointTransmit(payloads, mcs)
		if err != nil {
			log.Fatal(err)
		}
		bits += res.GoodputBits()
		airtime += res.AirtimeSamples
	}
	return bits / units.Duration(units.Ticks(airtime), net.Cfg.SampleRate)
}
