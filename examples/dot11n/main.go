// Off-the-shelf 802.11n clients (§6 / Fig. 12): two 2-antenna APs jointly
// serve two unmodified 2-antenna clients with four concurrent streams.
// Channel measurement uses the reference-antenna trick — a series of
// two-stream soundings that always include the lead's reference antenna —
// because an 802.11n card can only measure two channels at a time.
package main

import (
	"fmt"
	"log"

	"megamimo"
	"megamimo/internal/baseline"
	"megamimo/internal/units"
)

func main() {
	cfg := megamimo.DefaultConfig(2, 2, 20, 25)
	cfg.AntennasPerAP = 2
	cfg.AntennasPerClient = 2
	cfg.SampleRate = 20e6 // 802.11n channel width
	cfg.WellConditioned = true
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// §6.2: sounding slots with the reference antenna; slaves track their
	// lead offset from each slot's legacy sync header.
	if err := net.MeasureDot11n(); err != nil {
		log.Fatal(err)
	}
	p, err := megamimo.ComputeZF(net.Msmt, cfg.NoiseVar)
	if err != nil {
		log.Fatal(err)
	}
	net.SetPrecoder(p)

	mcs, ok, err := net.ProbeAndSelectRate(256)
	if err != nil || !ok {
		log.Fatalf("rate adaptation failed: %v", err)
	}
	payloads := make([][]byte, 4)
	for j := range payloads {
		payloads[j] = make([]byte, 1500)
	}
	res, err := net.JointTransmit(payloads, mcs)
	if err != nil {
		log.Fatal(err)
	}
	delivered := 0
	for j, ok := range res.OK {
		fmt.Printf("client %d stream %d: delivered=%v\n", j/2, j%2, ok)
		if ok {
			delivered++
		}
	}
	mm := float64(delivered*8*1500) / units.Duration(units.Ticks(res.AirtimeSamples), cfg.SampleRate)
	bl, _, err := (&baseline.SingleAPMIMO{Net: net}).Throughput(1500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4-stream joint at %v: %.0f Mb/s total\n", mcs, mm/1e6)
	fmt.Printf("802.11n TDMA baseline:   %.0f Mb/s total\n", bl/1e6)
	fmt.Printf("gain: %.2fx (paper: 1.67-1.83x, theoretical max 2x)\n", mm/bl)
}
