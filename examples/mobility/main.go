// Mobility / coherence time: MegaMIMO amortizes one channel measurement
// over many packets (§5), but the snapshot ages as people move. This
// example lets the channel evolve with a Gauss-Markov coherence model and
// shows per-client delivery collapsing for the moving client — and only
// for it (§9's loss decoupling) — until a re-measurement restores it.
package main

import (
	"fmt"
	"log"

	"megamimo"
	"megamimo/internal/channel"
	"megamimo/internal/rng"
)

func main() {
	cfg := megamimo.DefaultConfig(3, 3, 20, 25)
	cfg.WellConditioned = true
	cfg.Seed = 7
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Measure(); err != nil {
		log.Fatal(err)
	}
	p, err := megamimo.ComputeZF(net.Msmt, cfg.NoiseVar)
	if err != nil {
		log.Fatal(err)
	}
	net.SetPrecoder(p)
	mcs, ok, err := net.ProbeAndSelectRate(300)
	if err != nil || !ok {
		log.Fatalf("rate adaptation failed: %v", err)
	}
	fmt.Printf("running at %v; client 0 starts walking after batch 2\n\n", mcs)
	fmt.Println("batch  client0  client1  client2   (delivery per 5 packets)")

	src := rng.New(1)
	for batch := 0; batch < 6; batch++ {
		if batch >= 2 && batch < 4 {
			// Client 0 moves: ~50 ms of pedestrian Doppler per batch against
			// a 250 ms coherence time.
			net.EvolveClientLinks(0, channel.CoherenceRho(0.05, 0.25))
		}
		if batch == 4 {
			// The link layer notices the losses and triggers a fresh
			// measurement phase (cheap: a single packet, amortized) plus
			// rate re-adaptation — the walk changed client 0's channel for
			// real, so the old rate may not fit the new zero-forcing
			// geometry.
			if err := net.Measure(); err != nil {
				log.Fatal(err)
			}
			p, err := megamimo.ComputeZF(net.Msmt, cfg.NoiseVar)
			if err != nil {
				log.Fatal(err)
			}
			net.SetPrecoder(p)
			if mcs, ok, err = net.ProbeAndSelectRate(300); err != nil || !ok {
				log.Fatalf("re-adaptation failed: %v", err)
			}
			fmt.Printf("   -- re-measured, re-adapted to %v --\n", mcs)
		}
		counts := [3]int{}
		for i := 0; i < 5; i++ {
			payloads := [][]byte{
				src.Bytes(make([]byte, 800)),
				src.Bytes(make([]byte, 800)),
				src.Bytes(make([]byte, 800)),
			}
			res, err := net.JointTransmit(payloads, mcs)
			if err != nil {
				log.Fatal(err)
			}
			for j, okj := range res.OK {
				if okj {
					counts[j]++
				}
			}
		}
		fmt.Printf("%5d  %d/5      %d/5      %d/5\n", batch, counts[0], counts[1], counts[2])
	}
}
