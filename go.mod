module megamimo

go 1.24
