module megamimo

go 1.22
