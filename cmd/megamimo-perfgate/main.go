// Command megamimo-perfgate diffs a fresh `megamimo-bench -json` run
// against the committed BENCH_PERF.json snapshot and fails on performance
// regressions, so the perf trajectory of the signal path is recorded and
// enforced rather than anecdotal.
//
// Two metrics are gated per figure, each against -max-regress (default
// 15%):
//
//   - allocs_per_op: compared raw. Allocation counts are deterministic at
//     -workers=1 for a fixed seed and Go version, so any growth is a real
//     change in the code's allocation behavior.
//   - ns_per_op: machine-normalized first. The snapshot and the current
//     run usually come from different machines, so raw wall time is
//     meaningless; instead each figure's current/snapshot ratio is divided
//     by the median ratio across all figures. A figure only fails when it
//     slowed down >15% relative to the rest of the suite, which cancels
//     overall machine speed while still catching a single figure that
//     regressed.
//
// A single figure regeneration has real wall-time variance, so both sides
// should be a minimum over repeated runs: record the snapshot from ≥3
// runs, and pass every fresh run's JSON — the gate takes the per-figure
// minimum ns_per_op across all -current files before comparing (the
// standard benchstat-style noise floor).
//
// Exit status: 0 clean, 1 regression, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// figMetrics mirrors cmd/megamimo-bench's -json record (the fields the
// gate reads; extra fields are ignored).
type figMetrics struct {
	Figure      string `json:"figure"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	Workers     int    `json:"workers"`
}

func main() {
	snapshot := flag.String("snapshot", "BENCH_PERF.json", "committed baseline from megamimo-bench -json")
	current := flag.String("current", "", "fresh megamimo-bench -json output to gate")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed fractional regression per figure")
	flag.Parse()
	paths := flag.Args()
	if *current != "" {
		paths = append([]string{*current}, paths...)
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: megamimo-perfgate -snapshot BENCH_PERF.json fresh1.json [fresh2.json ...]")
		os.Exit(2)
	}

	base, err := readMetrics(*snapshot)
	if err != nil {
		fatal(err)
	}
	cur, err := readMetrics(paths[0])
	if err != nil {
		fatal(err)
	}
	for _, path := range paths[1:] {
		more, err := readMetrics(path)
		if err != nil {
			fatal(err)
		}
		mergeMin(cur, more)
	}

	shared := sharedFigures(base, cur)
	if len(shared) == 0 {
		fatal(fmt.Errorf("no figures in common between %s and %s", *snapshot, *current))
	}

	speed := medianSpeedRatio(base, cur, shared)
	fmt.Printf("perf gate: %d figures, machine speed ratio %.3f, threshold +%.0f%%\n",
		len(shared), speed, *maxRegress*100)

	failed := false
	for _, name := range shared {
		b, c := base[name], cur[name]
		allocRatio := ratio(float64(c.AllocsPerOp), float64(b.AllocsPerOp))
		nsRatio := ratio(float64(c.NsPerOp), float64(b.NsPerOp)) / speed
		status := "ok"
		if allocRatio > 1+*maxRegress {
			status = "ALLOC REGRESSION"
			failed = true
		} else if nsRatio > 1+*maxRegress {
			status = "TIME REGRESSION"
			failed = true
		}
		fmt.Printf("  %-14s allocs %12d -> %12d (%+6.1f%%)   time x%.3f (normalized)   %s\n",
			name, b.AllocsPerOp, c.AllocsPerOp, (allocRatio-1)*100, nsRatio, status)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "megamimo-perfgate: regression vs committed snapshot; if intentional, regenerate BENCH_PERF.json (see README)")
		os.Exit(1)
	}
	fmt.Println("perf gate clean")
}

func readMetrics(path string) (map[string]figMetrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []figMetrics
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]figMetrics, len(list))
	for _, m := range list {
		out[m.Figure] = m
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no figure records", path)
	}
	return out, nil
}

// mergeMin folds another run into dst, keeping the per-figure minimum of
// each metric: repeated runs bound the scheduler and cache noise from
// below, which is the number worth gating.
func mergeMin(dst, more map[string]figMetrics) {
	for name, m := range more {
		d, ok := dst[name]
		if !ok {
			dst[name] = m
			continue
		}
		if m.NsPerOp < d.NsPerOp {
			d.NsPerOp = m.NsPerOp
		}
		if m.AllocsPerOp < d.AllocsPerOp {
			d.AllocsPerOp = m.AllocsPerOp
		}
		if m.BytesPerOp < d.BytesPerOp {
			d.BytesPerOp = m.BytesPerOp
		}
		dst[name] = d
	}
}

// sharedFigures returns the sorted figure names present in both runs, so
// a snapshot recorded before a new figure existed still gates the rest.
func sharedFigures(base, cur map[string]figMetrics) []string {
	var names []string
	for name := range base {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// medianSpeedRatio estimates how much faster or slower the current
// machine is than the one that recorded the snapshot, as the median
// per-figure ns ratio. The median is robust to a few genuinely regressed
// figures, which is exactly what the gate must not normalize away.
func medianSpeedRatio(base, cur map[string]figMetrics, shared []string) float64 {
	ratios := make([]float64, 0, len(shared))
	for _, name := range shared {
		ratios = append(ratios, ratio(float64(cur[name].NsPerOp), float64(base[name].NsPerOp)))
	}
	sort.Float64s(ratios)
	n := len(ratios)
	if n%2 == 1 {
		return ratios[n/2]
	}
	return (ratios[n/2-1] + ratios[n/2]) / 2
}

// ratio guards the zero-baseline corner: a figure that allocated nothing
// in the snapshot and still allocates nothing is unchanged (1.0); one
// that started allocating is an infinite regression.
func ratio(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 1
		}
		return cur // vs 0: any growth is flagged via the threshold
	}
	return cur / base
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megamimo-perfgate:", err)
	os.Exit(2)
}
