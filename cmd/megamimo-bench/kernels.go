package main

import (
	"fmt"
	"strings"
	"time"

	"megamimo/internal/cmplxs"
	"megamimo/internal/dsp"
	"megamimo/internal/ofdm"
)

// The kernels subcommand micro-benchmarks the hot cmplxs/dsp primitives in
// both layouts — AoS ([]complex128) against the SoA / batched / fused
// twins — so a kernel regression is attributable from a seconds-long run
// instead of a full figure regeneration.

// benchNs times one call of f in ns/op, growing the iteration count until
// the sample is long enough to trust.
func benchNs(f func()) float64 {
	f() // warm caches and any lazy init
	for iters := 1; ; iters *= 4 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		if el := time.Since(start); el >= 10*time.Millisecond {
			return float64(el.Nanoseconds()) / float64(iters)
		}
	}
}

// runKernels renders the kernel comparison table.
func runKernels() string {
	const n = 1024
	mk := func(seed int) []complex128 {
		out := make([]complex128, n)
		for i := range out {
			// Deterministic pseudo-data; values are irrelevant to timing.
			out[i] = complex(float64((i*seed+7)%13)-6, float64((i+seed)%11)-5)
		}
		return out
	}
	a, b, dst := mk(1), mk(2), mk(3)
	sa, sb, sd := cmplxs.NewSplit(n), cmplxs.NewSplit(n), cmplxs.NewSplit(n)
	cmplxs.Unpack(sa, a)
	cmplxs.Unpack(sb, b)

	type row struct {
		name      string
		base, opt float64
	}
	var rows []row
	add := func(name string, base, opt func()) {
		rows = append(rows, row{name, benchNs(base), benchNs(opt)})
	}

	add(fmt.Sprintf("mul %d", n),
		func() { cmplxs.Mul(dst, a, b) },
		func() { cmplxs.MulSplit(sd, sa, sb) })
	add(fmt.Sprintf("mulconj %d", n),
		func() { cmplxs.MulConj(dst, a, b) },
		func() { cmplxs.MulConjSplit(sd, sa, sb) })
	add(fmt.Sprintf("axpy %d", n),
		func() { cmplxs.AXPY(dst, complex(0.6, -0.2), a) },
		func() { cmplxs.AXPYSplit(sd, complex(0.6, -0.2), sa) })
	add(fmt.Sprintf("dot %d", n),
		func() { cmplxs.Dot(a, b) },
		func() { cmplxs.DotSplit(sa, sb) })
	add(fmt.Sprintf("rotate %d", n),
		func() { cmplxs.Rotate(dst, a, 0.4, 1e-3) },
		func() { cmplxs.RotateSplit(sd, sa, 0.4, 1e-3) })

	// Convolution: AoS accumulate vs SoA destination, 4-tap indoor model.
	taps := []complex128{0.9, complex(0.2, 0.1), 0.05, complex(0, 0.02)}
	conv := make([]complex128, n+len(taps)-1)
	convS := cmplxs.NewSplit(n + len(taps) - 1)
	add(fmt.Sprintf("conv4 %d", n),
		func() { dsp.ConvolveInto(conv, a, taps) },
		func() { dsp.ConvolveSplitInto(convS, a, taps) })

	// The air medium's emission kernel: separate convolve + rotate-add
	// passes vs the fused windowed one.
	scratch := make([]complex128, n+len(taps)-1)
	ether := make([]complex128, n)
	rot0 := cmplxs.Expi(0.3)
	step := cmplxs.Expi(1e-4)
	add(fmt.Sprintf("conv4+rot+add %d", n),
		func() {
			for i := range scratch {
				scratch[i] = 0
			}
			dsp.ConvolveInto(scratch, a, taps)
			rot := rot0
			for i := range ether {
				ether[i] += scratch[i] * rot
				rot *= step
			}
		},
		func() { dsp.ConvolveRotateAdd(ether, a, taps, 0, rot0, step) })

	// FFT: per-symbol calls vs one batched call over a whole data field.
	plan := dsp.MustFFTPlan(ofdm.NFFT)
	nsym := n / ofdm.NFFT
	add(fmt.Sprintf("fft %dx%d", nsym, ofdm.NFFT),
		func() {
			for s := 0; s < nsym; s++ {
				plan.Forward(dst[s*ofdm.NFFT:(s+1)*ofdm.NFFT], a[s*ofdm.NFFT:(s+1)*ofdm.NFFT])
			}
		},
		func() { plan.ForwardBatch(dst, a) })
	add(fmt.Sprintf("fft-split %d", ofdm.NFFT),
		func() { plan.Forward(dst[:ofdm.NFFT], a[:ofdm.NFFT]) },
		func() { plan.ForwardSplit(sd.Slice(0, ofdm.NFFT), sa.Slice(0, ofdm.NFFT)) })

	var sb2 strings.Builder
	sb2.WriteString("Kernel micro-benchmarks — AoS/baseline vs SoA/batched/fused (ns/op)\n")
	fmt.Fprintf(&sb2, "%-20s  %12s  %12s  %8s\n", "kernel", "baseline", "optimized", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&sb2, "%-20s  %12.1f  %12.1f  %7.2fx\n", r.name, r.base, r.opt, r.base/r.opt)
	}
	return sb2.String()
}
