// Command megamimo-bench regenerates every table and figure of the
// paper's evaluation section (§11). Each subcommand prints the same rows
// or series the corresponding figure plots.
//
// Usage:
//
//	megamimo-bench [flags] fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|ablations|robustness|amortization|all
//
// Flags scale the experiment size; the defaults approximate the paper's
// methodology (20 topologies per point, 10 APs max) and take minutes.
// Use -quick for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"

	"megamimo/internal/experiment"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "random seed")
		topos  = flag.Int("topologies", 20, "random topologies per point (paper: 20)")
		rounds = flag.Int("rounds", 4, "joint transmissions per topology")
		maxAPs = flag.Int("max-aps", 10, "largest AP count for scaling figures")
		quick  = flag.Bool("quick", false, "small fast run (2 topologies, 6 APs max)")
	)
	flag.Parse()
	if *quick {
		*topos, *rounds, *maxAPs = 2, 2, 6
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: megamimo-bench [flags] fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|ablations|robustness|amortization|all")
		os.Exit(2)
	}
	which := flag.Arg(0)
	run := func(name string, f func() error) {
		if which != name && which != "all" &&
			!(name == "fig9" && which == "fig10") &&
			!(name == "fig12" && which == "fig13") {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig5", func() error {
		fmt.Println(experiment.RunFig5(*seed))
		return nil
	})
	run("fig6", func() error {
		fmt.Println(experiment.RunFig6(100, *seed))
		return nil
	})
	run("fig7", func() error {
		r, err := experiment.RunFig7(max(2, *topos/2), 40, *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("fig8", func() error {
		r, err := experiment.RunFig8(*maxAPs, maxInt(1, *topos/4), *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		fmt.Printf("high-SNR INR slope: %.3f dB per AP-client pair (paper: ~0.13)\n\n",
			r.SlopePerPair(experiment.HighSNR.Name))
		return nil
	})
	run("fig9", func() error {
		counts := apCounts(*maxAPs)
		r, err := experiment.RunFig9(counts, *topos, *rounds, *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		if which == "fig10" || which == "all" {
			fmt.Println(experiment.Fig10From(r))
		}
		return nil
	})
	run("fig11", func() error {
		r, err := experiment.RunFig11([]int{2, 4, 6, 8, 10}, maxInt(1, *topos/4), *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("ablations", func() error {
		r, err := experiment.RunAblations(maxInt(2, *topos/5), *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("amortization", func() error {
		r, err := experiment.RunAmortization([]int{1, 2, 4, 8, 16}, maxInt(2, *topos/5), *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("robustness", func() error {
		r, err := experiment.RunRobustness([]float64{0.5, 2, 5, 10, 20}, maxInt(2, *topos/5), *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	run("fig12", func() error {
		r, err := experiment.RunFig12(*topos, *rounds, *seed)
		if err != nil {
			return err
		}
		fmt.Println(r)
		if which == "fig13" || which == "all" {
			fmt.Println(experiment.Fig13From(r))
		}
		return nil
	})
}

func apCounts(maxAPs int) []int {
	var out []int
	for n := 2; n <= maxAPs; n++ {
		out = append(out, n)
	}
	return out
}

func max(a, b int) int { return maxInt(a, b) }
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
