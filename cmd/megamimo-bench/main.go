// Command megamimo-bench regenerates every table and figure of the
// paper's evaluation section (§11). Each subcommand prints the same rows
// or series the corresponding figure plots.
//
// Usage:
//
//	megamimo-bench [flags] fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|ablations|robustness|amortization|workload|chaos|syncsweep|kernels|all
//
// Flags scale the experiment size; the defaults approximate the paper's
// methodology (20 topologies per point, 10 APs max) and take minutes.
// Use -quick for a fast smoke run. Experiments fan their independent cells
// across -workers goroutines; the output is byte-identical at any worker
// count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"megamimo/internal/air"
	"megamimo/internal/core"
	"megamimo/internal/experiment"
	"megamimo/internal/tracefmt"
	"megamimo/internal/traffic"
	"megamimo/internal/units"
)

// figMetrics is one figure's machine-readable record for -json mode. One
// "op" is one full figure regeneration; NsPerOp and the allocation columns
// feed the committed BENCH_PERF.json snapshot that cmd/megamimo-perfgate
// diffs in CI. Allocation counts are deterministic at -workers=1; NsPerOp
// is machine-dependent and the gate normalizes it before comparing.
type figMetrics struct {
	Figure      string  `json:"figure"`
	Seconds     float64 `json:"seconds"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	Workers     int     `json:"workers"`
	Output      string  `json:"output"`
}

func main() {
	var (
		seed       = flag.Int64("seed", 1, "random seed")
		topos      = flag.Int("topologies", 20, "random topologies per point (paper: 20)")
		rounds     = flag.Int("rounds", 4, "joint transmissions per topology")
		maxAPs     = flag.Int("max-aps", 10, "largest AP count for scaling figures")
		quick      = flag.Bool("quick", false, "small fast run (2 topologies, 6 APs max)")
		workers    = flag.Int("workers", 0, "parallel experiment cells (0 = GOMAXPROCS)")
		jsonOut    = flag.Bool("json", false, "emit per-figure metrics as JSON instead of tables")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace-out", "", "workload/chaos only: write the merged flight-recorder trace to this file")
		traceFmt   = flag.String("trace-format", "jsonl", "trace file format: jsonl|chrome")
		streamOut  = flag.String("stream-out", "", "workload only: stream the merged flight-recorder trace live to this JSONL file")
		chaosJSON  = flag.String("chaos-json", "", "chaos only: write the sweep result as deterministic JSON to this file")
	)
	flag.Parse()
	format, err := tracefmt.ParseFormat(*traceFmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace-format: %v\n", err)
		os.Exit(2)
	}
	if *quick {
		*topos, *rounds, *maxAPs = 2, 2, 6
	}
	experiment.SetWorkers(*workers)
	air.SetWorkers(*workers)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: megamimo-bench [flags] fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|ablations|robustness|amortization|workload|chaos|syncsweep|kernels|all")
		os.Exit(2)
	}
	which := flag.Arg(0)
	if which == "kernels" {
		fmt.Print(runKernels())
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var metrics []figMetrics
	run := func(name string, f func() (string, error)) {
		if which != name && which != "all" &&
			!(name == "fig9" && which == "fig10") &&
			!(name == "fig12" && which == "fig13") {
			return
		}
		var before runtime.MemStats
		if *jsonOut {
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			elapsed := time.Since(start)
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			metrics = append(metrics, figMetrics{
				Figure:      name,
				Seconds:     elapsed.Seconds(),
				NsPerOp:     elapsed.Nanoseconds(),
				AllocsPerOp: after.Mallocs - before.Mallocs,
				BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
				Workers:     experiment.Workers(),
				Output:      out,
			})
			return
		}
		fmt.Print(out)
	}

	run("fig5", func() (string, error) {
		return fmt.Sprintln(experiment.RunFig5(*seed)), nil
	})
	run("fig6", func() (string, error) {
		return fmt.Sprintln(experiment.RunFig6(100, *seed)), nil
	})
	run("fig7", func() (string, error) {
		r, err := experiment.RunFig7(max(2, *topos/2), 40, *seed)
		if err != nil {
			return "", err
		}
		return fmt.Sprintln(r), nil
	})
	run("fig8", func() (string, error) {
		r, err := experiment.RunFig8(*maxAPs, maxInt(1, *topos/4), *seed)
		if err != nil {
			return "", err
		}
		return fmt.Sprintln(r) +
			fmt.Sprintf("high-SNR INR slope: %.3f dB per AP-client pair (paper: ~0.13)\n\n",
				r.SlopePerPair(experiment.HighSNR.Name)), nil
	})
	run("fig9", func() (string, error) {
		counts := apCounts(*maxAPs)
		r, err := experiment.RunFig9(counts, *topos, *rounds, *seed)
		if err != nil {
			return "", err
		}
		out := fmt.Sprintln(r)
		if which == "fig10" || which == "all" {
			out += fmt.Sprintln(experiment.Fig10From(r))
		}
		return out, nil
	})
	run("fig11", func() (string, error) {
		r, err := experiment.RunFig11([]int{2, 4, 6, 8, 10}, maxInt(1, *topos/4), *seed)
		if err != nil {
			return "", err
		}
		return fmt.Sprintln(r), nil
	})
	run("ablations", func() (string, error) {
		r, err := experiment.RunAblations(maxInt(2, *topos/5), *seed)
		if err != nil {
			return "", err
		}
		return fmt.Sprintln(r), nil
	})
	run("amortization", func() (string, error) {
		r, err := experiment.RunAmortization([]int{1, 2, 4, 8, 16}, maxInt(2, *topos/5), *seed)
		if err != nil {
			return "", err
		}
		return fmt.Sprintln(r), nil
	})
	run("robustness", func() (string, error) {
		r, err := experiment.RunRobustness([]units.PPM{0.5, 2, 5, 10, 20}, maxInt(2, *topos/5), *seed)
		if err != nil {
			return "", err
		}
		return fmt.Sprintln(r), nil
	})
	run("workload", func() (string, error) {
		loads := []float64{1, 2, 4, 8, 16}
		nAPs, seconds := 4, 0.02
		if *quick {
			loads, nAPs, seconds = []float64{2, 8}, 2, 0.005
		}
		cfg := core.DefaultConfig(nAPs, nAPs, experiment.HighSNR.Lo, experiment.HighSNR.Hi)
		meta := tracefmt.Meta{SampleRate: cfg.SampleRate, CarrierHz: cfg.CarrierHz, APs: nAPs, Clients: nAPs}
		if *streamOut != "" {
			// Streamed export: each cell's recorder feeds a live merge, and
			// the file on disk is byte-identical to the -trace-out export at
			// any -workers count (what CI diffs).
			f, err := os.Create(*streamOut)
			if err != nil {
				return "", err
			}
			sink, err := tracefmt.NewStreamSink(f, meta, tracefmt.StreamOptions{})
			if err != nil {
				_ = f.Close()
				return "", err
			}
			r, err := experiment.RunWorkloadStreamed(loads, nAPs, maxInt(2, *topos/5), traffic.Poisson, seconds, *seed, 1<<18, sink)
			if cerr := sink.Close(); err == nil {
				err = cerr
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return "", err
			}
			return fmt.Sprintln(r), nil
		}
		traceLimit := 0
		if *traceOut != "" {
			traceLimit = 1 << 18 // per-cell ring; merged below
		}
		r, events, err := experiment.RunWorkloadTrace(loads, nAPs, maxInt(2, *topos/5), traffic.Poisson, seconds, *seed, traceLimit)
		if err != nil {
			return "", err
		}
		if *traceOut != "" {
			if err := tracefmt.WriteFile(*traceOut, format, meta, events); err != nil {
				return "", err
			}
		}
		return fmt.Sprintln(r), nil
	})
	run("chaos", func() (string, error) {
		intensities := []float64{0, 100, 300, 600}
		nAPs, seconds := 4, 0.02
		if *quick {
			intensities, seconds = []float64{0, 600}, 0.005
		}
		traceLimit := 0
		if *traceOut != "" {
			traceLimit = 1 << 18 // per-cell ring; merged below
		}
		r, events, err := experiment.RunChaosTrace(intensities, nAPs, maxInt(2, *topos/5), seconds, *seed, traceLimit)
		if err != nil {
			return "", err
		}
		if *traceOut != "" {
			cfg := core.DefaultConfig(nAPs, nAPs, experiment.HighSNR.Lo, experiment.HighSNR.Hi)
			meta := tracefmt.Meta{SampleRate: cfg.SampleRate, CarrierHz: cfg.CarrierHz, APs: nAPs, Clients: nAPs}
			if err := tracefmt.WriteFile(*traceOut, format, meta, events); err != nil {
				return "", err
			}
		}
		if *chaosJSON != "" {
			b, err := r.JSON()
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(*chaosJSON, append(b, '\n'), 0o644); err != nil {
				return "", err
			}
		}
		return fmt.Sprintln(r), nil
	})
	run("syncsweep", func() (string, error) {
		nAPs, seconds := 4, 0.02
		if *quick {
			nAPs, seconds = 2, 0.005
		}
		r, err := experiment.RunSyncSweep(nil, nil, nAPs, maxInt(2, *topos/5), seconds, *seed)
		if err != nil {
			return "", err
		}
		return fmt.Sprintln(r), nil
	})
	run("fig12", func() (string, error) {
		r, err := experiment.RunFig12(*topos, *rounds, *seed)
		if err != nil {
			return "", err
		}
		out := fmt.Sprintln(r)
		if which == "fig13" || which == "all" {
			out += fmt.Sprintln(experiment.Fig13From(r))
		}
		return out, nil
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(metrics); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

func apCounts(maxAPs int) []int {
	var out []int
	for n := 2; n <= maxAPs; n++ {
		out = append(out, n)
	}
	return out
}

func max(a, b int) int { return maxInt(a, b) }
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
