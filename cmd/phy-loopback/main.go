// Command phy-loopback sweeps the PHY's frame-delivery waterfall: for
// every MCS it measures the delivery rate across an SNR range over AWGN,
// the calibration behind the effective-SNR rate table (internal/rate).
package main

import (
	"flag"
	"fmt"
	"os"

	"megamimo/internal/cmplxs"
	"megamimo/internal/phy"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

func main() {
	var (
		trials  = flag.Int("trials", 20, "frames per (MCS, SNR) point")
		bytes   = flag.Int("bytes", 200, "payload size")
		snrLo   = flag.Float64("snr-lo", 0, "sweep start (dB)")
		snrHi   = flag.Float64("snr-hi", 24, "sweep end (dB)")
		snrStep = flag.Float64("snr-step", 1, "sweep step (dB)")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	tx, rx := phy.NewTX(), phy.NewRX()
	src := rng.New(*seed)
	for m := phy.MCS0; m < phy.NumMCS; m++ {
		payload := src.Bytes(make([]byte, *bytes))
		wave, err := tx.Frame(payload, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var p float64
		for _, v := range wave[320:] {
			p += real(v)*real(v) + imag(v)*imag(v)
		}
		p /= float64(len(wave) - 320)
		fmt.Printf("%-12v", m)
		for db := *snrLo; db <= *snrHi; db += *snrStep {
			nv := p / cmplxs.FromDB(units.Decibels(db))
			ok := 0
			for t := 0; t < *trials; t++ {
				stream := make([]complex128, 100+len(wave)+20)
				copy(stream[100:], wave)
				n := src.Split(uint64(int(m)*100000 + int(db*10)*100 + t))
				for i := range stream {
					stream[i] += n.ComplexNormal(nv)
				}
				f, err := rx.Decode(stream)
				if err == nil && f.FCSOK {
					ok++
				}
			}
			fmt.Printf(" %2.0f:%3.0f%%", db, 100*float64(ok)/float64(*trials))
		}
		fmt.Println()
	}
}
