// Command megamimo-sim runs one configurable MegaMIMO network end to end
// with a verbose protocol trace: measurement, precoding, rate adaptation
// and a batch of joint transmissions, reporting per-stream delivery and
// throughput against the 802.11 baseline. With -workload it instead
// drives the network closed-loop from per-client demand profiles and
// reports throughput, latency and fairness for MegaMIMO vs the 802.11
// baseline; -metrics dumps the runtime telemetry registry as JSON.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"megamimo/internal/baseline"
	"megamimo/internal/core"
	"megamimo/internal/mac"
	"megamimo/internal/tracefmt"
	"megamimo/internal/traffic"
)

func main() {
	var (
		nAPs     = flag.Int("aps", 4, "number of access points")
		nCli     = flag.Int("clients", 4, "number of clients")
		snrLo    = flag.Float64("snr-lo", 18, "client SNR band low edge (dB)")
		snrHi    = flag.Float64("snr-hi", 24, "client SNR band high edge (dB)")
		packets  = flag.Int("packets", 8, "packets per client")
		size     = flag.Int("size", 1500, "payload bytes")
		seed     = flag.Int64("seed", 1, "random seed")
		wellCnd  = flag.Bool("well-conditioned", true, "use the conditioning-controlled channel ensemble")
		trace    = flag.Bool("trace", false, "print the protocol event timeline")
		workload = flag.String("workload", "", "drive a demand workload instead of a fixed batch: cbr|poisson|onoff|heavy")
		load     = flag.Float64("load", 8, "workload offered load per client (Mb/s)")
		duration = flag.Float64("duration", 0.05, "workload window (simulated seconds)")
		metrics  = flag.Bool("metrics", false, "dump the runtime metrics registry as JSON on exit")
		traceOut = flag.String("trace-out", "", "write the flight-recorder trace to this file")
		traceFmt = flag.String("trace-format", "jsonl", "trace file format: jsonl|chrome")
		driftPPM = flag.Float64("drift-ppm", 0, "inject ±ppm oscillator drift: lead −ppm, slave APs +ppm (2×ppm relative)")
	)
	flag.Parse()

	format, err := tracefmt.ParseFormat(*traceFmt)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig(*nAPs, *nCli, *snrLo, *snrHi)
	cfg.Seed = *seed
	cfg.WellConditioned = *wellCnd
	net, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("network: %d APs, %d clients, %.0f-%.0f dB, %.0f MHz\n",
		*nAPs, *nCli, *snrLo, *snrHi, cfg.SampleRate/1e6)
	if *trace || *traceOut != "" {
		net.Trace().Enable(1 << 20)
	}
	if *driftPPM != 0 {
		// Pull the lead and the slave APs apart by 2×ppm relative: the
		// drift the anomaly detector's cfo-mandate check measures. Client
		// oscillators keep their configured draws.
		for _, ap := range net.APs {
			if ap.Index == net.Lead().Index {
				ap.Node.Osc.PPM = -*driftPPM
			} else {
				ap.Node.Osc.PPM = *driftPPM
			}
		}
		fmt.Printf("oscillator drift injected: lead %+.1f ppm, slaves %+.1f ppm (%.1f ppm relative)\n",
			-*driftPPM, *driftPPM, 2*math.Abs(*driftPPM))
	}

	if err := net.Measure(); err != nil {
		fatal(err)
	}
	fmt.Printf("measurement: H is %d×%d on %d subcarriers (reference t=%d)\n",
		net.Msmt.H[0].Rows, net.Msmt.H[0].Cols, len(net.Msmt.Bins), net.Msmt.RefMid)

	p, err := core.ComputeZF(net.Msmt, cfg.NoiseVar)
	if err != nil {
		fatal(err)
	}
	net.SetPrecoder(p)
	fmt.Printf("precoder: zero-forcing, power scale k=%.3f (per-client signal %.1f dB over noise)\n",
		p.PowerScale, dB(p.PowerScale*p.PowerScale/cfg.NoiseVar))

	if *workload != "" {
		runWorkload(net, cfg, *workload, *load, *duration, *seed, *size, *trace, *metrics)
		writeTrace(net, cfg, *nAPs, *nCli, *traceOut, format)
		return
	}

	mcs, ok, err := net.ProbeAndSelectRate(256)
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("no deliverable MCS at this SNR"))
	}
	fmt.Printf("rate adaptation: %v\n", mcs)

	sched := mac.NewScheduler(net, *seed)
	sched.MCS = mcs
	sched.FillQueue(*packets, *size, *seed+7)
	st, err := sched.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\njoint transmissions: %d (airtime %.2f ms)\n",
		st.Transmissions, float64(st.AirtimeSamples)/cfg.SampleRate*1e3)
	fmt.Printf("delivered %d packets (%.0f bits), %d failed after retries\n",
		st.DeliveredPackets, st.DeliveredBits, st.FailedPackets)
	fmt.Printf("MegaMIMO throughput: %.1f Mb/s\n", st.ThroughputBps(cfg.SampleRate)/1e6)

	bl, per, err := baseline.New(net).EqualShareThroughput(*size)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("802.11 equal-share baseline: %.1f Mb/s total (per client:", bl/1e6)
	for _, v := range per {
		fmt.Printf(" %.1f", v/1e6)
	}
	fmt.Println(")")
	if bl > 0 {
		fmt.Printf("gain: %.1fx with %d APs\n", st.ThroughputBps(cfg.SampleRate)/bl, *nAPs)
	}
	if *trace {
		fmt.Println("\nprotocol timeline:")
		for _, e := range net.Trace().Events() {
			fmt.Println("  " + e.String())
		}
	}
	if *metrics {
		fmt.Println()
		if err := net.Metrics().WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	writeTrace(net, cfg, *nAPs, *nCli, *traceOut, format)
}

// writeTrace exports the flight recorder to -trace-out, stamping the run
// parameters the analyzers need (sample rate, carrier, network size).
func writeTrace(net *core.Network, cfg core.Config, nAPs, nCli int, path string, format tracefmt.Format) {
	if path == "" {
		return
	}
	meta := tracefmt.Meta{
		SampleRate: cfg.SampleRate,
		CarrierHz:  cfg.CarrierHz,
		APs:        nAPs,
		Clients:    nCli,
	}
	events := net.Trace().Events()
	if err := tracefmt.WriteFile(path, format, meta, events); err != nil {
		fatal(err)
	}
	fmt.Printf("\ntrace: %d events -> %s (%s)\n", len(events), path, format)
}

// runWorkload drives the measured network closed-loop from per-client
// demand profiles: MegaMIMO on the primary network, the 802.11 baseline
// on a second network built from the same seed (identical topology and
// channels), so both systems face the same demand.
func runWorkload(net *core.Network, cfg core.Config, kindName string, loadMbps, seconds float64, seed int64, size int, trace, metrics bool) {
	kind, err := traffic.ParseKind(kindName)
	if err != nil {
		fatal(err)
	}
	profiles := make([]traffic.Profile, net.NumStreams())
	for i := range profiles {
		profiles[i] = traffic.ProfileFor(kind, loadMbps*1e6, size)
	}
	tcfg := traffic.Config{System: traffic.SystemMegaMIMO, Profiles: profiles, Seed: seed + 1}
	eng, err := traffic.New(net, tcfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nworkload: %s arrivals, %.1f Mb/s per client, %.3fs window\n\n", kind, loadMbps, seconds)
	mm, err := eng.Run(seconds)
	if err != nil {
		fatal(err)
	}
	fmt.Print(mm)

	blNet, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	if _, err := blNet.MeasureAndPrecode(); err != nil {
		fatal(err)
	}
	tcfg.System = traffic.SystemTDMA
	blEng, err := traffic.New(blNet, tcfg)
	if err != nil {
		fatal(err)
	}
	bl, err := blEng.Run(seconds)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(bl)
	if bl.AggregateDeliveredBps > 0 {
		fmt.Printf("\ngain under demand: %.1fx\n", mm.AggregateDeliveredBps/bl.AggregateDeliveredBps)
	}
	if trace {
		fmt.Println("\nprotocol timeline:")
		for _, e := range net.Trace().Events() {
			fmt.Println("  " + e.String())
		}
	}
	if metrics {
		fmt.Println()
		if err := net.Metrics().WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func dB(x float64) float64 {
	if x <= 0 {
		return -999
	}
	return 10 * math.Log10(x)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megamimo-sim:", err)
	os.Exit(1)
}
