// Command megamimo-sim runs one configurable MegaMIMO network end to end
// with a verbose protocol trace: measurement, precoding, rate adaptation
// and a batch of joint transmissions, reporting per-stream delivery and
// throughput against the 802.11 baseline.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"megamimo/internal/baseline"
	"megamimo/internal/core"
	"megamimo/internal/mac"
)

func main() {
	var (
		nAPs    = flag.Int("aps", 4, "number of access points")
		nCli    = flag.Int("clients", 4, "number of clients")
		snrLo   = flag.Float64("snr-lo", 18, "client SNR band low edge (dB)")
		snrHi   = flag.Float64("snr-hi", 24, "client SNR band high edge (dB)")
		packets = flag.Int("packets", 8, "packets per client")
		size    = flag.Int("size", 1500, "payload bytes")
		seed    = flag.Int64("seed", 1, "random seed")
		wellCnd = flag.Bool("well-conditioned", true, "use the conditioning-controlled channel ensemble")
		trace   = flag.Bool("trace", false, "print the protocol event timeline")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*nAPs, *nCli, *snrLo, *snrHi)
	cfg.Seed = *seed
	cfg.WellConditioned = *wellCnd
	net, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("network: %d APs, %d clients, %.0f-%.0f dB, %.0f MHz\n",
		*nAPs, *nCli, *snrLo, *snrHi, cfg.SampleRate/1e6)
	if *trace {
		net.Trace().Enable(0)
	}

	if err := net.Measure(); err != nil {
		fatal(err)
	}
	fmt.Printf("measurement: H is %d×%d on %d subcarriers (reference t=%d)\n",
		net.Msmt.H[0].Rows, net.Msmt.H[0].Cols, len(net.Msmt.Bins), net.Msmt.RefMid)

	p, err := core.ComputeZF(net.Msmt, cfg.NoiseVar)
	if err != nil {
		fatal(err)
	}
	net.SetPrecoder(p)
	fmt.Printf("precoder: zero-forcing, power scale k=%.3f (per-client signal %.1f dB over noise)\n",
		p.PowerScale, dB(p.PowerScale*p.PowerScale/cfg.NoiseVar))

	mcs, ok, err := net.ProbeAndSelectRate(256)
	if err != nil {
		fatal(err)
	}
	if !ok {
		fatal(fmt.Errorf("no deliverable MCS at this SNR"))
	}
	fmt.Printf("rate adaptation: %v\n", mcs)

	sched := mac.NewScheduler(net, *seed)
	sched.MCS = mcs
	sched.FillQueue(*packets, *size, *seed+7)
	st, err := sched.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\njoint transmissions: %d (airtime %.2f ms)\n",
		st.Transmissions, float64(st.AirtimeSamples)/cfg.SampleRate*1e3)
	fmt.Printf("delivered %d packets (%.0f bits), %d failed after retries\n",
		st.DeliveredPackets, st.DeliveredBits, st.FailedPackets)
	fmt.Printf("MegaMIMO throughput: %.1f Mb/s\n", st.ThroughputBps(cfg.SampleRate)/1e6)

	bl, per, err := baseline.New(net).EqualShareThroughput(*size)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("802.11 equal-share baseline: %.1f Mb/s total (per client:", bl/1e6)
	for _, v := range per {
		fmt.Printf(" %.1f", v/1e6)
	}
	fmt.Println(")")
	if bl > 0 {
		fmt.Printf("gain: %.1fx with %d APs\n", st.ThroughputBps(cfg.SampleRate)/bl, *nAPs)
	}
	if *trace {
		fmt.Println("\nprotocol timeline:")
		for _, e := range net.Trace().Events() {
			fmt.Println("  " + e.String())
		}
	}
}

func dB(x float64) float64 {
	if x <= 0 {
		return -999
	}
	return 10 * math.Log10(x)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megamimo-sim:", err)
	os.Exit(1)
}
