// Command megamimo-sim runs one configurable MegaMIMO network end to end
// with a verbose protocol trace: measurement, precoding, rate adaptation
// and a batch of joint transmissions, reporting per-stream delivery and
// throughput against the 802.11 baseline. With -workload it instead
// drives the network closed-loop from per-client demand profiles and
// reports throughput, latency and fairness for MegaMIMO vs the 802.11
// baseline; -chaos replays a named fault-injection scenario against the
// closed loop and reports the degradation and recovery counters; -metrics
// dumps the runtime telemetry registry as JSON.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"megamimo/internal/air"
	"megamimo/internal/baseline"
	"megamimo/internal/checkpoint"
	"megamimo/internal/core"
	"megamimo/internal/experiment"
	"megamimo/internal/fault"
	"megamimo/internal/mac"
	"megamimo/internal/metrics"
	"megamimo/internal/obs"
	psync "megamimo/internal/sync"
	"megamimo/internal/tracefmt"
	"megamimo/internal/traffic"
	"megamimo/internal/units"
)

func main() {
	var (
		nAPs        = flag.Int("aps", 4, "number of access points")
		nCli        = flag.Int("clients", 4, "number of clients")
		snrLo       = flag.Float64("snr-lo", 18, "client SNR band low edge (dB)")
		snrHi       = flag.Float64("snr-hi", 24, "client SNR band high edge (dB)")
		packets     = flag.Int("packets", 8, "packets per client")
		size        = flag.Int("size", 1500, "payload bytes")
		seed        = flag.Int64("seed", 1, "random seed")
		wellCnd     = flag.Bool("well-conditioned", true, "use the conditioning-controlled channel ensemble")
		trace       = flag.Bool("trace", false, "print the protocol event timeline")
		workload    = flag.String("workload", "", "drive a demand workload instead of a fixed batch: cbr|poisson|onoff|heavy")
		chaos       = flag.String("chaos", "", "replay a fault scenario against the closed loop: slave-crash|lead-crash|lossy|churn|mixed")
		load        = flag.Float64("load", 8, "workload offered load per client (Mb/s)")
		duration    = flag.Float64("duration", 0.05, "workload window (simulated seconds)")
		dumpMetrics = flag.Bool("metrics", false, "dump the runtime metrics registry as JSON on exit")
		traceOut    = flag.String("trace-out", "", "write the flight-recorder trace to this file")
		traceFmt    = flag.String("trace-format", "jsonl", "trace file format: jsonl|chrome")
		driftPPM    = flag.Float64("drift-ppm", 0, "inject ±ppm oscillator drift: lead −ppm, slave APs +ppm (2×ppm relative)")
		syncName    = flag.String("sync", "", "synchronization strategy: header|airsync|beamsync|beamsync-mistuned (default: the paper's header scheme)")
		serveAddr   = flag.String("serve", "", "serve /metrics /healthz /trace /debug/pprof on this address during the run")
		serveWait   = flag.Duration("serve-wait", 0, "keep the observability server up this long after the run completes")
		streamOut   = flag.String("stream-out", "", "stream the flight recorder live to this JSONL file as events are recorded")
		sinkPolicy  = flag.String("sink-policy", "block", "full stream queue behavior: block|drop-oldest")
		sampleEvery = flag.Int("sample-every", 0, "workload/chaos: snapshot the metrics registry every N service rounds (0 = 64)")
		seriesOut   = flag.String("series-out", "", "write the sampled metrics time series as JSONL to this file")
		promOut     = flag.String("prom-out", "", "write the final metrics registry as Prometheus text to this file")
		soak        = flag.Bool("soak", false, "run the resumable game-day soak harness (heavy load + fault storm + periodic checkpoints)")
		ckptEvery   = flag.Int("checkpoint-every", 0, "soak: write a checkpoint every N service rounds (0 = no checkpoints)")
		ckptDir     = flag.String("checkpoint-dir", "", "soak: directory for checkpoint files")
		resume      = flag.String("resume", "", "soak: restore from this checkpoint and serve out the remaining window")
		workers     = flag.Int("workers", 0, "soak: air-medium worker count (0 = GOMAXPROCS); output is byte-identical at any count")
		faultsSec   = flag.Float64("faults-per-sec", 0, "soak: fault-storm intensity (expected events per simulated second)")
		soakDrift   = flag.Float64("soak-drift-ppm", 0, "soak: inject ±ppm oscillator drift at -soak-drift-at (lead −ppm, slaves +ppm)")
		soakDriftAt = flag.Float64("soak-drift-at", 0, "soak: simulated seconds into the run to apply -soak-drift-ppm")
	)
	flag.Parse()

	if *soak {
		runSoak(soakFlags{
			aps: *nAPs, clients: *nCli, snrLo: *snrLo, snrHi: *snrHi,
			seed: *seed, sync: *syncName, load: *load, size: *size,
			duration: *duration, faultsPerSec: *faultsSec,
			sampleEvery: *sampleEvery, ckptEvery: *ckptEvery, ckptDir: *ckptDir,
			resume: *resume, workers: *workers,
			driftPPM: *soakDrift, driftAt: *soakDriftAt,
			traceOut: *streamOut, seriesOut: *seriesOut,
			serveAddr: *serveAddr, serveWait: *serveWait,
		})
		return
	}

	format, err := tracefmt.ParseFormat(*traceFmt)
	if err != nil {
		fatal(err)
	}
	policy, err := tracefmt.ParseSinkPolicy(*sinkPolicy)
	if err != nil {
		fatal(err)
	}
	strategy, err := psync.Parse(*syncName)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig(*nAPs, *nCli, units.Decibels(*snrLo), units.Decibels(*snrHi))
	cfg.Seed = *seed
	cfg.WellConditioned = *wellCnd
	cfg.Sync = strategy
	net, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("network: %d APs, %d clients, %.0f-%.0f dB, %.0f MHz, sync strategy %q\n",
		*nAPs, *nCli, *snrLo, *snrHi, cfg.SampleRate/1e6, net.SyncName())
	tel, err := newTelemetry(net, runMeta(net, cfg, *nAPs, *nCli), *streamOut, policy,
		*serveAddr, *serveWait, *seriesOut, *promOut)
	if err != nil {
		fatal(err)
	}
	if *trace || *traceOut != "" || tel.active() {
		net.Trace().Enable(1 << 20)
	}
	if *driftPPM != 0 {
		// Pull the lead and the slave APs apart by 2×ppm relative: the
		// drift the anomaly detector's cfo-mandate check measures. Client
		// oscillators keep their configured draws.
		for _, ap := range net.APs {
			if ap.Index == net.Lead().Index {
				ap.Node.Osc.PPM = units.PPM(-*driftPPM)
			} else {
				ap.Node.Osc.PPM = units.PPM(*driftPPM)
			}
		}
		fmt.Printf("oscillator drift injected: lead %+.1f ppm, slaves %+.1f ppm (%.1f ppm relative)\n",
			-*driftPPM, *driftPPM, 2*math.Abs(*driftPPM))
	}

	if err := net.Measure(); err != nil {
		fatal(err)
	}
	fmt.Printf("measurement: H is %d×%d on %d subcarriers (reference t=%d)\n",
		net.Msmt.H[0].Rows, net.Msmt.H[0].Cols, len(net.Msmt.Bins), net.Msmt.RefMid)

	p, err := core.ComputeZF(net.Msmt, cfg.NoiseVar)
	if err != nil {
		fatal(err)
	}
	net.SetPrecoder(p)
	fmt.Printf("precoder: zero-forcing, power scale k=%.3f (per-client signal %.1f dB over noise)\n",
		p.PowerScale, dB(p.PowerScale*p.PowerScale/cfg.NoiseVar))

	if *chaos != "" {
		runChaos(net, *chaos, *load, *duration, *seed, *size, *dumpMetrics, tel.sampler, *sampleEvery)
		writeTrace(net, cfg, *nAPs, *nCli, *traceOut, format)
		tel.finish()
		return
	}

	if *workload != "" {
		runWorkload(net, cfg, *workload, *load, *duration, *seed, *size, *trace, *dumpMetrics, tel.sampler, *sampleEvery)
		writeTrace(net, cfg, *nAPs, *nCli, *traceOut, format)
		tel.finish()
		return
	}

	mcs, ok, err := net.ProbeAndSelectRate(256)
	if err != nil || !ok {
		// Export the flight recorder before dying: the rate probe's joint
		// transmissions already traced the slave measurements, and a sync
		// strategy broken enough to kill every MCS is precisely what the
		// trace anomaly gate exists to diagnose. The streaming surfaces
		// flush too, so a live follower sees how far the run got.
		writeTrace(net, cfg, *nAPs, *nCli, *traceOut, format)
		tel.finish()
		if err == nil {
			err = fmt.Errorf("no deliverable MCS at this SNR")
		}
		fatal(err)
	}
	fmt.Printf("rate adaptation: %v\n", mcs)

	sched := mac.NewScheduler(net, *seed)
	sched.MCS = mcs
	sched.FillQueue(*packets, *size, *seed+7)
	st, err := sched.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\njoint transmissions: %d (airtime %.2f ms)\n",
		st.Transmissions, units.Duration(units.Ticks(st.AirtimeSamples), cfg.SampleRate)*1e3)
	fmt.Printf("delivered %d packets (%.0f bits), %d failed after retries\n",
		st.DeliveredPackets, st.DeliveredBits, st.FailedPackets)
	fmt.Printf("MegaMIMO throughput: %.1f Mb/s\n", st.ThroughputBps(cfg.SampleRate)/1e6)

	bl, per, err := baseline.New(net).EqualShareThroughput(*size)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("802.11 equal-share baseline: %.1f Mb/s total (per client:", bl/1e6)
	for _, v := range per {
		fmt.Printf(" %.1f", v/1e6)
	}
	fmt.Println(")")
	if bl > 0 {
		fmt.Printf("gain: %.1fx with %d APs\n", st.ThroughputBps(cfg.SampleRate)/bl, *nAPs)
	}
	if *trace {
		fmt.Println("\nprotocol timeline:")
		for _, e := range net.Trace().Events() {
			fmt.Println("  " + e.String())
		}
	}
	if *dumpMetrics {
		fmt.Println()
		if err := net.Metrics().WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	writeTrace(net, cfg, *nAPs, *nCli, *traceOut, format)
	tel.finish()
}

// soakFlags carries the flag subset the soak harness consumes.
type soakFlags struct {
	aps, clients           int
	snrLo, snrHi           float64
	seed                   int64
	sync                   string
	load                   float64
	size                   int
	duration, faultsPerSec float64
	sampleEvery, ckptEvery int
	ckptDir, resume        string
	workers                int
	driftPPM, driftAt      float64
	traceOut, seriesOut    string
	serveAddr              string
	serveWait              time.Duration
}

// runSoak drives experiment.RunSoak from the CLI: the long-horizon
// game-day run with periodic checkpoints, or — with -resume — the
// restored tail of one. On resume it prints the checkpoint's logical
// stream offsets, so a caller can splice the tail files onto an
// uninterrupted run's output at exactly the right byte.
func runSoak(f soakFlags) {
	air.SetWorkers(f.workers)
	cfg := experiment.SoakConfig{
		APs: f.aps, Clients: f.clients,
		SNRLoDB: f.snrLo, SNRHiDB: f.snrHi,
		Seed: f.seed, Sync: f.sync,
		LoadMbps: f.load, PacketBytes: f.size, Seconds: f.duration,
		FaultsPerSec: f.faultsPerSec, SampleEvery: f.sampleEvery,
		CheckpointEvery: f.ckptEvery, CheckpointDir: f.ckptDir,
		Resume:    f.resume,
		TracePath: f.traceOut, SeriesPath: f.seriesOut,
		DriftPPM: f.driftPPM, DriftAtSeconds: f.driftAt,
	}
	if f.serveAddr != "" {
		strategy, err := psync.Parse(f.sync)
		if err != nil {
			fatal(err)
		}
		ccfg := core.DefaultConfig(f.aps, f.clients, units.Decibels(f.snrLo), units.Decibels(f.snrHi))
		srv, err := obs.New(obs.Config{Addr: f.serveAddr, Meta: tracefmt.Meta{
			SampleRate: ccfg.SampleRate, CarrierHz: ccfg.CarrierHz,
			APs: f.aps, Clients: f.clients, Sync: strategy.Name(),
		}})
		if err != nil {
			fatal(err)
		}
		fmt.Println(srv)
		cfg.Server = srv
	}
	if f.resume != "" {
		st, _, err := checkpoint.ReadAny(f.resume)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("soak: resuming %s from round %d (t=%d, trace offset %d, series offset %d)\n",
			f.resume, st.Rounds, st.Now, st.TraceBytes, st.SeriesBytes)
	} else {
		fmt.Printf("soak: %d APs, %d clients, %.1f Mb/s per client, %.3fs window, %.0f faults/s, checkpoint every %d rounds\n",
			f.aps, f.clients, f.load, f.duration, f.faultsPerSec, f.ckptEvery)
	}
	res, err := experiment.RunSoak(cfg)
	if res != nil {
		for _, p := range res.Checkpoints {
			fmt.Printf("checkpoint: %s\n", p)
		}
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Report)
	fmt.Printf("\nsoak complete: %d rounds, %d checkpoints, trace %d bytes, series %d bytes\n",
		res.Rounds, len(res.Checkpoints), res.TraceBytes, res.SeriesBytes)
	if cfg.Server != nil {
		cfg.Server.MarkDone()
		if f.serveWait > 0 {
			fmt.Printf("observability server up for another %s\n", f.serveWait)
			time.Sleep(f.serveWait)
		}
		_ = cfg.Server.Close()
	}
}

// runMeta stamps the run parameters the analyzers need (sample rate,
// carrier, network size, sync strategy) into trace metadata. The
// streaming sinks reuse it so a streamed file and a buffered -trace-out
// export of the same run carry identical headers — overflow counters are
// the one buffered-only addition (the stream never truncates).
func runMeta(net *core.Network, cfg core.Config, nAPs, nCli int) tracefmt.Meta {
	return tracefmt.Meta{
		SampleRate: cfg.SampleRate,
		CarrierHz:  cfg.CarrierHz,
		APs:        nAPs,
		Clients:    nCli,
		Sync:       net.SyncName(),
	}
}

// writeTrace exports the flight recorder to -trace-out. When the ring
// overflowed, the header records how many events were displaced and the
// ether time of the first loss, so readers know the head is truncated.
func writeTrace(net *core.Network, cfg core.Config, nAPs, nCli int, path string, format tracefmt.Format) {
	if path == "" {
		return
	}
	meta := runMeta(net, cfg, nAPs, nCli)
	meta.Overflowed = net.Trace().Overflowed()
	if at, ok := net.Trace().FirstOverflowAt(); ok {
		meta.OverflowAt = at
	}
	events := net.Trace().Events()
	if err := tracefmt.WriteFile(path, format, meta, events); err != nil {
		fatal(err)
	}
	fmt.Printf("\ntrace: %d events -> %s (%s)\n", len(events), path, format)
	if meta.Overflowed > 0 {
		fmt.Printf("trace ring overflowed: %d events displaced (first at t=%d)\n",
			meta.Overflowed, meta.OverflowAt)
	}
}

// telemetry bundles the run's streaming observability surfaces: the live
// JSONL stream, the HTTP server, and the metrics time-series sampler.
// A zero surface set is valid — every method no-ops.
type telemetry struct {
	net        *core.Network
	stream     *tracefmt.StreamSink
	streamFile *os.File
	streamPath string
	server     *obs.Server
	sampler    *metrics.Sampler
	seriesOut  string
	promOut    string
	wait       time.Duration
}

// newTelemetry opens the requested surfaces and attaches them to the
// network's tracer as a tee of sinks (the caller still enables the
// recorder). The sampler publishes to the HTTP server on every sample,
// so /metrics tracks the run live at the workload sampling cadence.
func newTelemetry(net *core.Network, meta tracefmt.Meta, streamOut string, policy tracefmt.SinkPolicy,
	serveAddr string, wait time.Duration, seriesOut, promOut string) (*telemetry, error) {
	tel := &telemetry{net: net, streamPath: streamOut, seriesOut: seriesOut, promOut: promOut, wait: wait}
	var sinks []core.TraceSink
	if streamOut != "" {
		f, err := os.Create(streamOut)
		if err != nil {
			return nil, err
		}
		s, err := tracefmt.NewStreamSink(f, meta, tracefmt.StreamOptions{
			Policy:  policy,
			Dropped: net.Metrics().Counter("trace_sink_dropped_total"),
		})
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		tel.stream, tel.streamFile = s, f
		sinks = append(sinks, s)
	}
	if serveAddr != "" {
		srv, err := obs.New(obs.Config{Addr: serveAddr, Meta: meta})
		if err != nil {
			return nil, err
		}
		tel.server = srv
		fmt.Println(srv)
		sinks = append(sinks, srv)
	}
	if seriesOut != "" || tel.server != nil {
		tel.sampler = metrics.NewSampler(net.Metrics())
		if tel.server != nil {
			srv := tel.server
			tel.sampler.OnSample = func(metrics.Sample) { _ = srv.PublishMetrics(net.Metrics()) }
		}
	}
	if s := core.TeeSinks(sinks...); s != nil {
		net.Trace().SetSink(s)
	}
	return tel, nil
}

// active reports whether any surface needs the flight recorder enabled.
func (tel *telemetry) active() bool { return tel.stream != nil || tel.server != nil }

// finish flushes every surface at the end of the run: the series and
// exposition files, the stream (fatal on a lost stream — a partial file
// must not pass for a complete one), and finally the HTTP server, which
// keeps serving the finished run's state for -serve-wait before closing.
func (tel *telemetry) finish() {
	if tel.sampler != nil && len(tel.sampler.Series()) == 0 {
		// Batch runs have no service rounds to pace sampling on; take the
		// one end-of-run point so the series is never empty.
		tel.sampler.Sample(tel.net.Now())
	}
	if tel.seriesOut != "" {
		f, err := os.Create(tel.seriesOut)
		if err != nil {
			fatal(err)
		}
		if err := tel.sampler.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics series: %d samples -> %s\n", len(tel.sampler.Series()), tel.seriesOut)
	}
	if tel.promOut != "" {
		f, err := os.Create(tel.promOut)
		if err != nil {
			fatal(err)
		}
		if err := tel.net.Metrics().WritePrometheus(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("prometheus exposition -> %s\n", tel.promOut)
	}
	if tel.stream != nil {
		err := tel.stream.Close()
		if cerr := tel.streamFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("stream-out: %w", err))
		}
		fmt.Printf("stream: %s (%d lines dropped)\n", tel.streamPath, tel.stream.Dropped())
	}
	if tel.server != nil {
		_ = tel.server.PublishMetrics(tel.net.Metrics())
		tel.server.MarkDone()
		if tel.wait > 0 {
			fmt.Printf("observability server up for another %s\n", tel.wait)
			time.Sleep(tel.wait)
		}
		_ = tel.server.Close()
	}
}

// runWorkload drives the measured network closed-loop from per-client
// demand profiles: MegaMIMO on the primary network, the 802.11 baseline
// on a second network built from the same seed (identical topology and
// channels), so both systems face the same demand.
func runWorkload(net *core.Network, cfg core.Config, kindName string, loadMbps, seconds float64, seed int64, size int, trace, dumpMetrics bool, sampler *metrics.Sampler, sampleEvery int) {
	kind, err := traffic.ParseKind(kindName)
	if err != nil {
		fatal(err)
	}
	profiles := make([]traffic.Profile, net.NumStreams())
	for i := range profiles {
		profiles[i] = traffic.ProfileFor(kind, loadMbps*1e6, size)
	}
	tcfg := traffic.Config{
		System: traffic.SystemMegaMIMO, Profiles: profiles, Seed: seed + 1,
		Sampler: sampler, SampleEvery: sampleEvery,
	}
	eng, err := traffic.New(net, tcfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nworkload: %s arrivals, %.1f Mb/s per client, %.3fs window\n\n", kind, loadMbps, seconds)
	mm, err := eng.Run(seconds)
	if err != nil {
		fatal(err)
	}
	fmt.Print(mm)

	blNet, err := core.New(cfg)
	if err != nil {
		fatal(err)
	}
	if _, err := blNet.MeasureAndPrecode(); err != nil {
		fatal(err)
	}
	tcfg.System = traffic.SystemTDMA
	// The sampler reads the MegaMIMO network's registry; detach it before
	// the baseline run so that run's rounds don't append foreign points.
	tcfg.Sampler = nil
	blEng, err := traffic.New(blNet, tcfg)
	if err != nil {
		fatal(err)
	}
	bl, err := blEng.Run(seconds)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(bl)
	if bl.AggregateDeliveredBps > 0 {
		fmt.Printf("\ngain under demand: %.1fx\n", mm.AggregateDeliveredBps/bl.AggregateDeliveredBps)
	}
	if trace {
		fmt.Println("\nprotocol timeline:")
		for _, e := range net.Trace().Events() {
			fmt.Println("  " + e.String())
		}
	}
	if dumpMetrics {
		fmt.Println()
		if err := net.Metrics().WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// chaosPlan builds the named fault scenario's schedule: the fault lands 20%
// into the window and every effect ends by 60%, so the run always closes in
// a recovered steady state.
func chaosPlan(net *core.Network, scenario string, seconds float64, seed int64) (*fault.Plan, error) {
	start := net.Now()
	window := int64(units.TicksIn(seconds, net.Cfg.SampleRate))
	at := start + window/5
	until := start + (window*3)/5
	switch scenario {
	case "slave-crash":
		return &fault.Plan{Seed: seed, Events: []fault.Event{
			{At: at, Kind: fault.KindAPCrash, AP: len(net.APs) - 1, Until: until},
		}}, nil
	case "lead-crash":
		return &fault.Plan{Seed: seed, Events: []fault.Event{
			{At: at, Kind: fault.KindLeadFail, Until: until},
		}}, nil
	case "lossy":
		return &fault.Plan{Seed: seed, Events: []fault.Event{
			{At: at, Kind: fault.KindBackendDrop, Param: 0.3, Until: until},
			{At: at, Kind: fault.KindBackendJitter, Param: 50e-6 * units.Ratio(net.Cfg.SampleRate, 1), Until: until},
		}}, nil
	case "churn":
		return &fault.Plan{Seed: seed, Events: []fault.Event{
			{At: at, Kind: fault.KindClientLeave, Stream: net.NumStreams() - 1, Until: until},
		}}, nil
	case "mixed":
		return fault.Scenario{
			Seed:       seed,
			Start:      start,
			Horizon:    start + window,
			SampleRate: net.Cfg.SampleRate,
			NumAPs:     len(net.APs),
			NumStreams: net.NumStreams(),
			Intensity:  400,
		}.Plan(), nil
	}
	return nil, fmt.Errorf("unknown chaos scenario %q (slave-crash|lead-crash|lossy|churn|mixed)", scenario)
}

// runChaos replays a fault scenario against the MegaMIMO closed loop: the
// fault window runs first, then the flight recorder is restarted and a
// steady tail runs so -trace-out captures only the recovered state (the
// anomaly gate must pass on it). The delivery rate covers both windows —
// packets lost to the faults stay lost.
func runChaos(net *core.Network, scenario string, loadMbps, seconds float64, seed int64, size int, dumpMetrics bool, sampler *metrics.Sampler, sampleEvery int) {
	plan, err := chaosPlan(net, scenario, seconds, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nchaos scenario %q: %d fault events over %.3fs\n", scenario, len(plan.Events), seconds)
	for i, ev := range plan.Events {
		if i == 12 {
			fmt.Printf("  ... and %d more\n", len(plan.Events)-i)
			break
		}
		fmt.Println("  " + ev.String())
	}
	profiles := make([]traffic.Profile, net.NumStreams())
	for i := range profiles {
		profiles[i] = traffic.NewCBR(loadMbps*1e6, size)
	}
	eng, err := traffic.New(net, traffic.Config{
		System:      traffic.SystemMegaMIMO,
		Profiles:    profiles,
		Seed:        seed + 1,
		Faults:      plan,
		Sampler:     sampler,
		SampleEvery: sampleEvery,
	})
	if err != nil {
		fatal(err)
	}
	rep, err := eng.Run(seconds)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(rep)
	// Recovered steady tail: restart the trace ring so the exported trace
	// holds only post-recovery events, then keep the same closed loop going.
	if net.Trace().Enabled() {
		net.Trace().Enable(1 << 20)
	}
	tail, err := eng.Run(seconds / 2)
	if err != nil {
		fatal(err)
	}
	m := net.Metrics()
	counter := func(name string) int64 { return m.Counter(name).Value() }
	fmt.Printf("\nchaos counters: faults=%d failovers=%d sync_abstains=%d degraded_rounds=%d backend_dropped=%d\n",
		counter("fault_injected_total"), counter("lead_failovers_total"),
		counter("sync_abstain_total"), counter("degraded_rounds_total"),
		counter("backend_dropped_total"))
	var off, del int
	for _, c := range tail.Clients {
		off += c.OfferedPackets
		del += c.DeliveredPackets
	}
	rate := 1.0
	if off > 0 {
		rate = float64(del) / float64(off)
	}
	fmt.Printf("chaos delivery rate: %.3f (delivered %d / offered %d packets)\n", rate, del, off)
	if dumpMetrics {
		fmt.Println()
		if err := net.Metrics().WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

func dB(x float64) float64 {
	if x <= 0 {
		return -999
	}
	return 10 * math.Log10(x)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megamimo-sim:", err)
	os.Exit(1)
}
