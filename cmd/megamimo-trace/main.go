// Command megamimo-trace analyzes flight-recorder traces written by
// megamimo-sim and megamimo-bench (-trace-out), in either JSONL or Chrome
// trace-event format.
//
// Usage:
//
//	megamimo-trace [flags] summary|phases|spans|anomalies <trace-file>
//
// Subcommands:
//
//	summary    per-kind event counts, span totals and the covered window
//	phases     per-slave-AP phase-synchronization statistics: residual
//	           phase error vs the π/18 nulling budget, CFO in ppm
//	spans      duration distributions of the protocol spans (measure,
//	           round, joint-tx, traffic)
//	anomalies  check the trace against the paper's budgets; exits 1 if
//	           any violation is found, 0 on a clean trace
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"megamimo/internal/tracefmt"
	"megamimo/internal/units"
)

func main() {
	var (
		budgetRad = flag.Float64("budget-rad", math.Pi/18, "phase-error budget per slave AP (rad, median)")
		maxPPM    = flag.Float64("max-ppm", 40, "relative CFO mandate between lead and slave (ppm)")
		nullDB    = flag.Float64("null-degrade-db", 3, "flag null depths this far below the run median (dB)")
		evmDB     = flag.Float64("evm-degrade-db", 6, "flag decodes this far below their stream median EVM SNR (dB)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: megamimo-trace [flags] summary|phases|spans|anomalies <trace-file>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, path := flag.Arg(0), flag.Arg(1)

	meta, events, err := tracefmt.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "summary":
		s := tracefmt.Summarize(meta, events)
		fmt.Printf("trace: %d events, %d spans", s.Events, s.Spans)
		if s.OpenSpans > 0 {
			fmt.Printf(" (%d left open — ring overflow?)", s.OpenSpans)
		}
		fmt.Printf("\nwindow: t=%d..%d samples", s.AtMin, s.AtMax)
		if s.DurationMs > 0 {
			fmt.Printf(" (%.3f ms at %.0f MHz)", s.DurationMs, meta.SampleRate/1e6)
		}
		fmt.Printf("\nnetwork: %d APs, %d clients\n\nevents by kind:\n", meta.APs, meta.Clients)
		for _, kc := range s.ByKind {
			fmt.Printf("  %-12s %6d\n", kc.Kind, kc.Count)
		}

	case "phases":
		stats := tracefmt.PhaseStats(meta, events)
		if len(stats) == 0 {
			fmt.Println("no slave-ratio events in trace")
			return
		}
		fmt.Printf("phase synchronization per slave AP (budget π/18 = %.4f rad):\n", math.Pi/18)
		fmt.Printf("  %-4s %6s %12s %12s %12s %14s %10s\n",
			"AP", "N", "median|e|", "p95|e|", "max|e|", "CFO rad/smp", "rel ppm")
		for _, st := range stats {
			fmt.Printf("  %-4d %6d %12.5f %12.5f %12.5f %14.3e %10.2f\n",
				st.AP, st.N, st.MedianAbsRad, st.P95AbsRad, st.MaxAbsRad,
				st.CFORadPerSample, st.RelPPM)
		}

	case "spans":
		stats := tracefmt.SpanStats(meta, events)
		if len(stats) == 0 {
			fmt.Println("no completed spans in trace")
			return
		}
		fmt.Println("span durations (ms):")
		fmt.Printf("  %-12s %6s %10s %10s %10s\n", "kind", "N", "median", "p95", "max")
		for _, st := range stats {
			fmt.Printf("  %-12s %6d %10.4f %10.4f %10.4f\n",
				st.Kind, st.N, st.MedianMs, st.P95Ms, st.MaxMs)
		}

	case "anomalies":
		b := tracefmt.Budget{
			PhaseBudgetRad: units.Radians(*budgetRad),
			MaxRelPPM:      units.PPM(*maxPPM),
			NullDegradeDB:  units.Decibels(*nullDB),
			EVMDegradeDB:   units.Decibels(*evmDB),
		}
		found := tracefmt.FindAnomalies(meta, events, b)
		if len(found) == 0 {
			fmt.Println("no anomalies: every slave AP within the phase and CFO budgets, no degraded nulls or decodes")
			return
		}
		fmt.Printf("%d anomalies:\n", len(found))
		for _, a := range found {
			fmt.Println("  " + a.String())
		}
		os.Exit(1)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megamimo-trace:", err)
	os.Exit(1)
}
