// Command megamimo-trace analyzes flight-recorder traces written by
// megamimo-sim and megamimo-bench (-trace-out), in either JSONL or Chrome
// trace-event format.
//
// Usage:
//
//	megamimo-trace [flags] summary|phases|spans|anomalies|follow <trace-file>
//
// Subcommands:
//
//	summary    per-kind event counts, span totals and the covered window
//	phases     per-slave-AP phase-synchronization statistics: residual
//	           phase error vs the π/18 nulling budget, CFO in ppm
//	spans      duration distributions of the protocol spans (measure,
//	           round, joint-tx, traffic)
//	anomalies  check the trace against the paper's budgets; exits 1 if
//	           any violation is found, 0 on a clean trace
//	follow     tail a streaming JSONL trace (megamimo-sim -stream-out)
//	           while it is written, printing each budget violation the
//	           moment the online monitor trips it; exits 1 if any check
//	           tripped once the stream has been idle for -idle-exit
//	bisect     walk a soak run's checkpoint directory and run the anomaly
//	           gate on each inter-checkpoint window of the trace, naming
//	           the first window that violates a budget; exits 1 on a
//	           violation (usage: bisect <checkpoint-dir> <trace-file>)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"megamimo/internal/checkpoint"
	"megamimo/internal/tracefmt"
	"megamimo/internal/units"
)

func main() {
	var (
		budgetRad = flag.Float64("budget-rad", math.Pi/18, "phase-error budget per slave AP (rad, median)")
		maxPPM    = flag.Float64("max-ppm", 40, "relative CFO mandate between lead and slave (ppm)")
		nullDB    = flag.Float64("null-degrade-db", 3, "flag null depths this far below the run median (dB)")
		evmDB     = flag.Float64("evm-degrade-db", 6, "flag decodes this far below their stream median EVM SNR (dB)")
		window    = flag.Int("window", 0, "follow: online monitor sliding-window length (0 = default)")
		poll      = flag.Duration("poll", 200*time.Millisecond, "follow: poll interval while the stream is idle")
		idleExit  = flag.Duration("idle-exit", 5*time.Second, "follow: exit after the stream has been idle this long")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: megamimo-trace [flags] summary|phases|spans|anomalies|follow <trace-file>")
		fmt.Fprintln(os.Stderr, "       megamimo-trace [flags] bisect <checkpoint-dir> <trace-file>")
		flag.PrintDefaults()
	}
	flag.Parse()
	cmd := flag.Arg(0)
	wantArgs := 2
	if cmd == "bisect" {
		wantArgs = 3
	}
	if flag.NArg() != wantArgs {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(1)
	budget := tracefmt.Budget{
		PhaseBudgetRad: units.Radians(*budgetRad),
		MaxRelPPM:      units.PPM(*maxPPM),
		NullDegradeDB:  units.Decibels(*nullDB),
		EVMDegradeDB:   units.Decibels(*evmDB),
	}

	if cmd == "follow" {
		os.Exit(follow(path, budget, *window, *poll, *idleExit))
	}
	if cmd == "bisect" {
		os.Exit(bisect(path, flag.Arg(2), budget))
	}

	meta, events, err := tracefmt.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "summary":
		s := tracefmt.Summarize(meta, events)
		fmt.Printf("trace: %d events, %d spans", s.Events, s.Spans)
		if s.OpenSpans > 0 {
			fmt.Printf(" (%d left open — ring overflow?)", s.OpenSpans)
		}
		fmt.Printf("\nwindow: t=%d..%d samples", s.AtMin, s.AtMax)
		if s.DurationMs > 0 {
			fmt.Printf(" (%.3f ms at %.0f MHz)", s.DurationMs, meta.SampleRate/1e6)
		}
		if meta.Overflowed > 0 {
			fmt.Printf("\nring overflow: %d events displaced before export (first lost at t=%d)", meta.Overflowed, meta.OverflowAt)
		}
		fmt.Printf("\nnetwork: %d APs, %d clients\n\nevents by kind:\n", meta.APs, meta.Clients)
		for _, kc := range s.ByKind {
			fmt.Printf("  %-12s %6d\n", kc.Kind, kc.Count)
		}

	case "phases":
		stats := tracefmt.PhaseStats(meta, events)
		if len(stats) == 0 {
			fmt.Println("no slave-ratio events in trace")
			return
		}
		fmt.Printf("phase synchronization per slave AP (budget π/18 = %.4f rad):\n", math.Pi/18)
		fmt.Printf("  %-4s %6s %12s %12s %12s %14s %10s\n",
			"AP", "N", "median|e|", "p95|e|", "max|e|", "CFO rad/smp", "rel ppm")
		for _, st := range stats {
			fmt.Printf("  %-4d %6d %12.5f %12.5f %12.5f %14.3e %10.2f\n",
				st.AP, st.N, st.MedianAbsRad, st.P95AbsRad, st.MaxAbsRad,
				st.CFORadPerSample, st.RelPPM)
		}

	case "spans":
		stats := tracefmt.SpanStats(meta, events)
		if len(stats) == 0 {
			fmt.Println("no completed spans in trace")
			return
		}
		fmt.Println("span durations (ms):")
		fmt.Printf("  %-12s %6s %10s %10s %10s\n", "kind", "N", "median", "p95", "max")
		for _, st := range stats {
			fmt.Printf("  %-12s %6d %10.4f %10.4f %10.4f\n",
				st.Kind, st.N, st.MedianMs, st.P95Ms, st.MaxMs)
		}

	case "anomalies":
		found := tracefmt.FindAnomalies(meta, events, budget)
		if len(found) == 0 {
			fmt.Println("no anomalies: every slave AP within the phase and CFO budgets, no degraded nulls or decodes")
			return
		}
		fmt.Printf("%d anomalies:\n", len(found))
		for _, a := range found {
			fmt.Println("  " + a.String())
		}
		os.Exit(1)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// bisect localizes the first anomaly-gate violation of a checkpointed
// soak run to one inter-checkpoint window. It loads every checkpoint in
// dir for its ether-time boundary, slices the trace's events into the
// windows those boundaries delimit, and runs the batch anomaly gate on
// each window in order: the first violating window names the two
// checkpoints the regression landed between — the pair to diff or to
// resume from when reproducing. Returns the process exit code: 0 when
// every window is clean, 1 on a violation.
func bisect(dir, tracePath string, b tracefmt.Budget) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		fatal(err)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("bisect: no *.ckpt files in %s", dir))
	}
	type boundary struct {
		path   string
		at     int64
		rounds int
	}
	bounds := make([]boundary, 0, len(paths))
	for _, p := range paths {
		st, _, err := checkpoint.ReadAny(p)
		if err != nil {
			fatal(fmt.Errorf("bisect: %w", err))
		}
		bounds = append(bounds, boundary{path: p, at: st.Now, rounds: st.Rounds})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].at < bounds[j].at })

	meta, events, err := tracefmt.ReadFile(tracePath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bisect: %d checkpoints over %d events\n", len(bounds), len(events))

	// Window k holds the events up to and including checkpoint k's capture
	// time; the final window is the tail past the last checkpoint. Events
	// arrive time-ordered, so each window is one contiguous slice.
	clean := 0
	lo := 0
	for k := 0; k <= len(bounds); k++ {
		hi := len(events)
		if k < len(bounds) {
			for hi = lo; hi < len(events) && events[hi].At <= bounds[k].at; hi++ {
			}
		}
		from, to := "start", "end"
		if k > 0 {
			from = fmt.Sprintf("%s (round %d, t=%d)", filepath.Base(bounds[k-1].path), bounds[k-1].rounds, bounds[k-1].at)
		}
		if k < len(bounds) {
			to = fmt.Sprintf("%s (round %d, t=%d)", filepath.Base(bounds[k].path), bounds[k].rounds, bounds[k].at)
		}
		found := tracefmt.FindAnomalies(meta, events[lo:hi], b)
		if len(found) == 0 {
			fmt.Printf("window %d: %s -> %s: clean (%d events)\n", k, from, to, hi-lo)
			clean++
			lo = hi
			continue
		}
		fmt.Printf("window %d: %s -> %s: %d anomalies (%d events)\n", k, from, to, len(found), hi-lo)
		for _, a := range found {
			fmt.Println("  " + a.String())
		}
		fmt.Printf("first violation localized to window %d after %d clean windows\n", k, clean)
		return 1
	}
	fmt.Printf("all %d windows clean\n", clean)
	return 0
}

// follow tails a streaming JSONL trace, feeding each completed line to
// the online anomaly monitor and printing violations the moment they
// trip. Partial lines (the writer mid-flush) stay buffered until their
// newline arrives. Returns the process exit code: 0 healthy, 1 tripped.
func follow(path string, b tracefmt.Budget, window int, poll, idleExit time.Duration) int {
	if window <= 0 {
		window = tracefmt.DefaultMonitorWindow
	}
	deadline := time.Now().Add(idleExit)
	var f *os.File
	for {
		var err error
		f, err = os.Open(path)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("follow: %s did not appear within %s", path, idleExit))
		}
		time.Sleep(poll)
	}
	defer f.Close()

	var (
		buf     []byte
		chunk   = make([]byte, 64<<10)
		mon     *tracefmt.Monitor
		printed int
		lineNo  int
	)
	for {
		n, err := f.Read(chunk)
		if n > 0 {
			deadline = time.Now().Add(idleExit)
			buf = append(buf, chunk[:n]...)
			for {
				nl := bytes.IndexByte(buf, '\n')
				if nl < 0 {
					break
				}
				line := bytes.TrimSpace(buf[:nl])
				buf = buf[nl+1:]
				lineNo++
				if len(line) == 0 {
					continue
				}
				if mon == nil {
					meta, err := tracefmt.UnmarshalHeader(line)
					if err != nil {
						fatal(err)
					}
					mon = tracefmt.NewMonitor(meta, b, window)
					fmt.Printf("following %s: %d APs, %d clients, sync %q\n",
						path, meta.APs, meta.Clients, meta.Sync)
					continue
				}
				e, err := tracefmt.UnmarshalEvent(line)
				if err != nil {
					fatal(fmt.Errorf("line %d: %w", lineNo, err))
				}
				mon.Observe(e)
				for _, v := range mon.Tripped()[printed:] {
					fmt.Printf("VIOLATION t=%-10d %s\n", v.At, v.Anomaly.String())
					printed++
				}
			}
		}
		if err != nil && err != io.EOF {
			fatal(err)
		}
		if n == 0 {
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(poll)
		}
	}
	if mon == nil {
		fatal(fmt.Errorf("follow: no trace header within %s of idle", idleExit))
	}
	if mon.Healthy() {
		fmt.Printf("stream idle: %d events, all checks healthy\n", mon.Events())
		return 0
	}
	fmt.Printf("stream idle: %d events, %d checks tripped\n", mon.Events(), len(mon.Tripped()))
	return 1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megamimo-trace:", err)
	os.Exit(1)
}
