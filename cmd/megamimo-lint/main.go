// Command megamimo-lint runs the project's static-analysis suite
// (internal/lint) over the module: aliasing of DSP buffers, determinism of
// the signal path, exact float comparison, the panic policy of exported
// APIs, and dropped errors. It prints file:line:col: analyzer: message
// lines (or JSON with -json) and exits 1 when any diagnostic survives
// //lint:ignore suppression, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"megamimo/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: megamimo-lint [-json] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(pkgs, lint.All())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "megamimo-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megamimo-lint:", err)
	os.Exit(2)
}
