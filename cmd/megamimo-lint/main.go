// Command megamimo-lint runs the project's static-analysis suite
// (internal/lint) over the module: aliasing of DSP buffers, determinism of
// the signal path, exact float comparison, the panic policy of exported
// APIs, dropped errors, and the dimensional discipline of internal/units.
// It prints file:line:col: analyzer: message lines (or JSON with -json,
// SARIF 2.1.0 with -sarif) and exits 1 when any diagnostic survives
// //lint:ignore suppression, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"megamimo/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	list := flag.Bool("list", false, "list the analyzers and exit")
	selection := flag.String("analyzer", "",
		"comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: megamimo-lint [-json|-sarif] [-analyzer a,b] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fatal(fmt.Errorf("-json and -sarif are mutually exclusive"))
	}

	analyzers, err := selectAnalyzers(*selection)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(pkgs, analyzers)
	switch {
	case *sarifOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifLog(analyzers, diags)); err != nil {
			fatal(err)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "megamimo-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// selectAnalyzers resolves a comma-separated -analyzer list against the
// registered suite, preserving registration order. An empty list means all.
func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if names == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		want[n] = true
	}
	var out []*lint.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown analyzer(s) %s (see -list)",
			strings.Join(unknown, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -analyzer selection")
	}
	return out, nil
}

// SARIF 2.1.0 — the minimal subset GitHub code scanning and editors ingest:
// one run, one rule per analyzer, one result per diagnostic with a physical
// location. Column numbers are byte-based like go/token's, which matches
// SARIF's default unicodeCodePoints=false interpretation closely enough for
// ASCII Go source.

type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func sarifLog(analyzers []*lint.Analyzer, diags []lint.Diagnostic) sarifDoc {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// Malformed //lint:ignore directives surface under this pseudo-analyzer.
	rules = append(rules, sarifRule{
		ID:               "directive",
		ShortDescription: sarifMessage{Text: "malformed or unused //lint:ignore directives"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	return sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "megamimo-lint",
				InformationURI: "https://github.com/megamimo/megamimo",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "megamimo-lint:", err)
	os.Exit(2)
}
