package megamimo_test

import (
	"bytes"
	"testing"

	"megamimo"
)

// TestPublicAPIQuickstart runs the README example through the public
// facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := megamimo.DefaultConfig(2, 2, 18, 24)
	cfg.Seed = 42
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	pkt0 := bytes.Repeat([]byte{0xA5}, 400)
	pkt1 := bytes.Repeat([]byte{0x5A}, 400)
	res, err := net.JointTransmit([][]byte{pkt0, pkt1}, megamimo.MCS2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK[0] || !res.OK[1] {
		t.Fatalf("delivery: %v", res.OK)
	}
	if !bytes.Equal(res.Frames[0].Payload, pkt0) || !bytes.Equal(res.Frames[1].Payload, pkt1) {
		t.Fatal("payloads corrupted through the public API")
	}
}

// TestPublicAPIDiversity exercises the diversity facade path.
func TestPublicAPIDiversity(t *testing.T) {
	cfg := megamimo.DefaultConfig(4, 1, 8, 10)
	cfg.Seed = 43
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Measure(); err != nil {
		t.Fatal(err)
	}
	sub := megamimo.DiversitySubcarrierSNR(net.Msmt, 0, cfg.NoiseVar)
	if len(sub) == 0 || sub[0] <= 0 {
		t.Fatalf("diversity SNR prediction: %v", sub[:min(3, len(sub))])
	}
	res, err := net.DiversityTransmit(0, make([]byte, 300), megamimo.MCS2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK[0] {
		t.Fatal("diversity frame lost at 4 APs over 8-10 dB links")
	}
}

// TestPublicAPIPrecoders exercises the precoder constructors.
func TestPublicAPIPrecoders(t *testing.T) {
	cfg := megamimo.DefaultConfig(3, 3, 18, 22)
	cfg.Seed = 44
	net, err := megamimo.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Measure(); err != nil {
		t.Fatal(err)
	}
	zf, err := megamimo.ComputeZF(net.Msmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zf.PowerScale <= 0 || zf.Streams != 3 {
		t.Fatalf("ZF precoder malformed: %+v", zf)
	}
	dv, err := megamimo.ComputeDiversity(net.Msmt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Streams != 1 {
		t.Fatal("diversity precoder malformed")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
