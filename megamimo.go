// Package megamimo is a faithful, fully simulated reproduction of
// "JMB / MegaMIMO: Scaling Wireless Capacity with User Demands"
// (SIGCOMM 2012): joint multi-user beamforming from independent access
// points whose oscillators are synchronized by the paper's distributed
// phase-synchronization protocol.
//
// The package is a facade over the internal implementation:
//
//   - Network simulation: Config / NewNetwork build a set of APs and
//     clients with independent oscillators on a shared, impairment-accurate
//     medium. Measure runs the channel-measurement phase; JointTransmit
//     delivers one packet per client concurrently; DiversityTransmit
//     coherently combines every AP toward one client.
//   - Rate control: ComputeZF / SelectJointMCS / ProbeAndSelectRate mirror
//     the paper's effective-SNR link adaptation.
//   - Experiments: RunFig6 … Fig13From regenerate every figure of the
//     paper's evaluation section.
//
// A two-AP, two-client joint transmission:
//
//	cfg := megamimo.DefaultConfig(2, 2, 18, 24)
//	net, _ := megamimo.NewNetwork(cfg)
//	net.MeasureAndPrecode()
//	res, _ := net.JointTransmit([][]byte{pkt0, pkt1}, megamimo.MCS2)
package megamimo

import (
	"megamimo/internal/core"
	"megamimo/internal/experiment"
	"megamimo/internal/phy"
	"megamimo/internal/units"
)

// Config assembles a MegaMIMO network; see core.Config for field docs.
type Config = core.Config

// Network is a running MegaMIMO deployment on a simulated medium.
type Network = core.Network

// Measurement is one channel snapshot referenced to a single time.
type Measurement = core.Measurement

// Precoder holds per-subcarrier joint beamforming weights.
type Precoder = core.Precoder

// TxResult reports one joint transmission.
type TxResult = core.TxResult

// MCS is a modulation-and-coding-scheme index (0–7, 802.11a order).
type MCS = phy.MCS

// The 802.11a rate ladder.
const (
	MCS0 = phy.MCS0
	MCS1 = phy.MCS1
	MCS2 = phy.MCS2
	MCS3 = phy.MCS3
	MCS4 = phy.MCS4
	MCS5 = phy.MCS5
	MCS6 = phy.MCS6
	MCS7 = phy.MCS7
)

// DefaultConfig mirrors the paper's USRP testbed with nAPs access points
// and nClients single-antenna clients whose links fall in [snrLo, snrHi]
// dB.
func DefaultConfig(nAPs, nClients int, snrLo, snrHi units.Decibels) Config {
	return core.DefaultConfig(nAPs, nClients, snrLo, snrHi)
}

// NewNetwork builds the network: nodes, oscillators, channels, backbone.
func NewNetwork(cfg Config) (*Network, error) { return core.New(cfg) }

// ComputeZF builds the zero-forcing precoder W = k·H⁻¹ from a measurement;
// lambda regularizes the inversion (0 = pure ZF).
func ComputeZF(m *Measurement, lambda float64) (*Precoder, error) {
	return core.ComputeZF(m, lambda)
}

// ComputeDiversity builds the §8 coherent-combining precoder for one
// stream.
func ComputeDiversity(m *Measurement, stream int) (*Precoder, error) {
	return core.ComputeDiversity(m, stream)
}

// DiversitySubcarrierSNR predicts the per-bin SNR of the §8 diversity mode
// for a stream: (Σ_a |h_a|)²/noiseVar.
func DiversitySubcarrierSNR(m *Measurement, stream int, noiseVar float64) []float64 {
	return core.DiversitySubcarrierSNR(m, stream, noiseVar)
}

// Experiment runners — one per figure in the paper's evaluation (§11).
var (
	RunFig6   = experiment.RunFig6
	RunFig7   = experiment.RunFig7
	RunFig8   = experiment.RunFig8
	RunFig9   = experiment.RunFig9
	Fig10From = experiment.Fig10From
	RunFig11  = experiment.RunFig11
	RunFig12  = experiment.RunFig12
	Fig13From = experiment.Fig13From
)
