package backend

import "testing"

func TestDirectedDelivery(t *testing.T) {
	b := New(100, 1, 2, 3)
	b.Send(1, 2, 1000, "hello")
	if got := b.Receive(2, 1050); len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	got := b.Receive(2, 1100)
	if len(got) != 1 || got[0].Payload != "hello" || got[0].From != 1 {
		t.Fatalf("Receive = %+v", got)
	}
	if len(b.Receive(2, 2000)) != 0 {
		t.Fatal("message delivered twice")
	}
}

func TestWrongRecipientSeesNothing(t *testing.T) {
	b := New(0, 1, 2, 3)
	b.Send(1, 2, 0, "x")
	if len(b.Receive(3, 10)) != 0 {
		t.Fatal("message leaked to wrong node")
	}
	if b.Pending() != 1 {
		t.Fatal("message vanished")
	}
}

func TestBroadcastFansOut(t *testing.T) {
	b := New(10, 1, 2, 3, 4)
	b.Send(1, Broadcast, 0, 42)
	for _, node := range []int{2, 3, 4} {
		got := b.Receive(node, 10)
		if len(got) != 1 || got[0].Payload != 42 {
			t.Fatalf("node %d: %+v", node, got)
		}
	}
	// Sender does not hear its own broadcast.
	if len(b.Receive(1, 100)) != 0 {
		t.Fatal("sender received own broadcast")
	}
	if b.Pending() != 0 {
		t.Fatalf("%d pending after full fan-out", b.Pending())
	}
}

func TestDeliveryOrder(t *testing.T) {
	b := New(0, 1, 2)
	b.Send(1, 2, 30, "c")
	b.Send(1, 2, 10, "a")
	b.Send(1, 2, 20, "b")
	got := b.Receive(2, 100)
	if len(got) != 3 || got[0].Payload != "a" || got[1].Payload != "b" || got[2].Payload != "c" {
		t.Fatalf("order: %+v", got)
	}
}

func TestUnattachedNode(t *testing.T) {
	b := New(0, 1)
	b.Send(1, 9, 0, "x")
	if b.Receive(9, 10) != nil {
		t.Fatal("unattached node received")
	}
	b.Attach(9)
	if len(b.Receive(9, 10)) != 1 {
		t.Fatal("attached node did not receive")
	}
}

func TestPartialDelivery(t *testing.T) {
	b := New(100, 1, 2)
	b.Send(1, 2, 0, "early")
	b.Send(1, 2, 500, "late")
	got := b.Receive(2, 150)
	if len(got) != 1 || got[0].Payload != "early" {
		t.Fatalf("partial delivery: %+v", got)
	}
	got = b.Receive(2, 650)
	if len(got) != 1 || got[0].Payload != "late" {
		t.Fatalf("second delivery: %+v", got)
	}
}
