package backend

import (
	"testing"

	"megamimo/internal/metrics"
)

func TestDirectedDelivery(t *testing.T) {
	b := New(100, 1, 2, 3)
	b.Send(1, 2, 1000, "hello")
	if got := b.Receive(2, 1050); len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	got := b.Receive(2, 1100)
	if len(got) != 1 || got[0].Payload != "hello" || got[0].From != 1 {
		t.Fatalf("Receive = %+v", got)
	}
	if len(b.Receive(2, 2000)) != 0 {
		t.Fatal("message delivered twice")
	}
}

func TestWrongRecipientSeesNothing(t *testing.T) {
	b := New(0, 1, 2, 3)
	b.Send(1, 2, 0, "x")
	if len(b.Receive(3, 10)) != 0 {
		t.Fatal("message leaked to wrong node")
	}
	if b.Pending() != 1 {
		t.Fatal("message vanished")
	}
}

func TestBroadcastFansOut(t *testing.T) {
	b := New(10, 1, 2, 3, 4)
	b.Send(1, Broadcast, 0, 42)
	for _, node := range []int{2, 3, 4} {
		got := b.Receive(node, 10)
		if len(got) != 1 || got[0].Payload != 42 {
			t.Fatalf("node %d: %+v", node, got)
		}
	}
	// Sender does not hear its own broadcast.
	if len(b.Receive(1, 100)) != 0 {
		t.Fatal("sender received own broadcast")
	}
	if b.Pending() != 0 {
		t.Fatalf("%d pending after full fan-out", b.Pending())
	}
}

func TestDeliveryOrder(t *testing.T) {
	b := New(0, 1, 2)
	b.Send(1, 2, 30, "c")
	b.Send(1, 2, 10, "a")
	b.Send(1, 2, 20, "b")
	got := b.Receive(2, 100)
	if len(got) != 3 || got[0].Payload != "a" || got[1].Payload != "b" || got[2].Payload != "c" {
		t.Fatalf("order: %+v", got)
	}
}

func TestUnattachedNode(t *testing.T) {
	b := New(0, 1)
	var dropped metrics.Counter
	b.SetDropCounter(&dropped)
	// A send to a node that is not on the bus is dropped and counted, not
	// queued forever waiting for someone to attach.
	b.Send(1, 9, 0, "x")
	if b.Pending() != 0 {
		t.Fatalf("send to unattached node queued (%d pending)", b.Pending())
	}
	if dropped.Value() != 1 {
		t.Fatalf("drop counter = %d, want 1", dropped.Value())
	}
	b.Attach(9)
	if got := b.Receive(9, 10); got != nil {
		t.Fatalf("late attach resurrected a dropped message: %+v", got)
	}
	b.Send(1, 9, 10, "y")
	if len(b.Receive(9, 20)) != 1 {
		t.Fatal("attached node did not receive")
	}
}

func TestPartialDelivery(t *testing.T) {
	b := New(100, 1, 2)
	b.Send(1, 2, 0, "early")
	b.Send(1, 2, 500, "late")
	got := b.Receive(2, 150)
	if len(got) != 1 || got[0].Payload != "early" {
		t.Fatalf("partial delivery: %+v", got)
	}
	got = b.Receive(2, 650)
	if len(got) != 1 || got[0].Payload != "late" {
		t.Fatalf("second delivery: %+v", got)
	}
}

func TestEqualSentAtTieBreak(t *testing.T) {
	// A burst of same-instant messages (per-stream ACKs after one joint
	// transmission) must drain in exactly send order: the (SentAt, Seq)
	// contract, not an accident of internal bookkeeping.
	b := New(0, 1, 2, 3)
	const at = 1000
	b.Send(1, 2, at, "s0")
	b.Send(3, 2, at, "s1")
	b.Send(1, 2, at, "s2")
	b.Send(3, 2, at, "s3")
	got := b.Receive(2, at)
	if len(got) != 4 {
		t.Fatalf("got %d messages, want 4", len(got))
	}
	for i, m := range got {
		if want := []string{"s0", "s1", "s2", "s3"}[i]; m.Payload != want {
			t.Fatalf("position %d: %v, want %v (full order %+v)", i, m.Payload, want, got)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("Seq not strictly increasing: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
}

func TestTieBreakSurvivesInterleavedTraffic(t *testing.T) {
	// Messages to other nodes and partial drains in between must not
	// perturb the equal-SentAt order seen by one receiver.
	b := New(0, 1, 2, 3)
	b.Send(1, 3, 5, "noise-a")
	b.Send(1, 2, 7, "x")
	b.Send(1, 2, 7, "y")
	b.Send(1, 3, 6, "noise-b")
	b.Send(1, 2, 7, "z")
	if n := len(b.Receive(3, 100)); n != 2 {
		t.Fatalf("noise drain got %d", n)
	}
	got := b.Receive(2, 100)
	if len(got) != 3 || got[0].Payload != "x" || got[1].Payload != "y" || got[2].Payload != "z" {
		t.Fatalf("order after interleaved traffic: %+v", got)
	}
	// Earlier SentAt still wins over any sequence number.
	b.Send(1, 2, 50, "late-sent-first")
	b.Send(1, 2, 40, "early-sent-second")
	got = b.Receive(2, 100)
	if len(got) != 2 || got[0].Payload != "early-sent-second" {
		t.Fatalf("SentAt precedence: %+v", got)
	}
}

func TestBroadcastSeqPerCopy(t *testing.T) {
	// Broadcast fan-out assigns each directed copy its own sequence
	// number in sorted-recipient order, keeping the global order total.
	b := New(0, 1, 2, 3)
	b.Send(1, Broadcast, 0, "b")
	m2, m3 := b.Receive(2, 10), b.Receive(3, 10)
	if len(m2) != 1 || len(m3) != 1 {
		t.Fatal("broadcast lost a copy")
	}
	if m2[0].Seq >= m3[0].Seq {
		t.Fatalf("fan-out seq order: node2=%d node3=%d", m2[0].Seq, m3[0].Seq)
	}
}

func TestDetachPurgesInbound(t *testing.T) {
	b := New(0, 1, 2, 3)
	var dropped metrics.Counter
	b.SetDropCounter(&dropped)
	b.Send(1, 2, 0, "doomed-a")
	b.Send(1, 2, 0, "doomed-b")
	b.Send(1, 3, 0, "survivor")
	b.Detach(2)
	if b.Attached(2) {
		t.Fatal("node still attached after Detach")
	}
	if dropped.Value() != 2 {
		t.Fatalf("purge counted %d drops, want 2", dropped.Value())
	}
	if b.Pending() != 1 {
		t.Fatalf("%d pending after purge, want 1", b.Pending())
	}
	// Sends to the detached node drop and count; other traffic flows.
	b.Send(1, 2, 5, "doomed-c")
	if dropped.Value() != 3 {
		t.Fatalf("send to detached counted %d drops, want 3", dropped.Value())
	}
	if got := b.Receive(3, 100); len(got) != 1 || got[0].Payload != "survivor" {
		t.Fatalf("survivor traffic: %+v", got)
	}
	// Re-attach: the purge is permanent but new traffic delivers.
	b.Attach(2)
	b.Send(1, 2, 10, "fresh")
	if got := b.Receive(2, 100); len(got) != 1 || got[0].Payload != "fresh" {
		t.Fatalf("post-restart traffic: %+v", got)
	}
}

func TestDetachDuringBroadcast(t *testing.T) {
	b := New(0, 1, 2, 3)
	b.Detach(3)
	b.Send(1, Broadcast, 0, "b")
	if len(b.Receive(2, 10)) != 1 {
		t.Fatal("live node missed broadcast")
	}
	b.Attach(3)
	if got := b.Receive(3, 10); got != nil {
		t.Fatalf("detached node got broadcast: %+v", got)
	}
}

// testPolicy drops messages whose payload equals "drop" and delays ones
// whose payload equals "slow".
type testPolicy struct{ delay int64 }

func (p testPolicy) Deliver(m Message) (bool, int64) {
	switch m.Payload {
	case "drop":
		return true, 0
	case "slow":
		return false, p.delay
	}
	return false, 0
}

func TestFaultPolicyDropAndDelay(t *testing.T) {
	b := New(100, 1, 2)
	var dropped metrics.Counter
	b.SetDropCounter(&dropped)
	b.SetFaultPolicy(testPolicy{delay: 50})
	b.Send(1, 2, 0, "drop")
	b.Send(1, 2, 0, "slow")
	b.Send(1, 2, 0, "ok")
	if dropped.Value() != 1 {
		t.Fatalf("policy drop count = %d, want 1", dropped.Value())
	}
	got := b.Receive(2, 100)
	if len(got) != 1 || got[0].Payload != "ok" {
		t.Fatalf("at latency: %+v", got)
	}
	got = b.Receive(2, 149)
	if len(got) != 0 {
		t.Fatalf("delayed message arrived early: %+v", got)
	}
	got = b.Receive(2, 150)
	if len(got) != 1 || got[0].Payload != "slow" {
		t.Fatalf("delayed message missing at latency+delay: %+v", got)
	}
	// Removing the policy restores normal delivery.
	b.SetFaultPolicy(nil)
	b.Send(1, 2, 200, "drop")
	if got := b.Receive(2, 300); len(got) != 1 {
		t.Fatalf("policy removal: %+v", got)
	}
}
