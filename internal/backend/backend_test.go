package backend

import "testing"

func TestDirectedDelivery(t *testing.T) {
	b := New(100, 1, 2, 3)
	b.Send(1, 2, 1000, "hello")
	if got := b.Receive(2, 1050); len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	got := b.Receive(2, 1100)
	if len(got) != 1 || got[0].Payload != "hello" || got[0].From != 1 {
		t.Fatalf("Receive = %+v", got)
	}
	if len(b.Receive(2, 2000)) != 0 {
		t.Fatal("message delivered twice")
	}
}

func TestWrongRecipientSeesNothing(t *testing.T) {
	b := New(0, 1, 2, 3)
	b.Send(1, 2, 0, "x")
	if len(b.Receive(3, 10)) != 0 {
		t.Fatal("message leaked to wrong node")
	}
	if b.Pending() != 1 {
		t.Fatal("message vanished")
	}
}

func TestBroadcastFansOut(t *testing.T) {
	b := New(10, 1, 2, 3, 4)
	b.Send(1, Broadcast, 0, 42)
	for _, node := range []int{2, 3, 4} {
		got := b.Receive(node, 10)
		if len(got) != 1 || got[0].Payload != 42 {
			t.Fatalf("node %d: %+v", node, got)
		}
	}
	// Sender does not hear its own broadcast.
	if len(b.Receive(1, 100)) != 0 {
		t.Fatal("sender received own broadcast")
	}
	if b.Pending() != 0 {
		t.Fatalf("%d pending after full fan-out", b.Pending())
	}
}

func TestDeliveryOrder(t *testing.T) {
	b := New(0, 1, 2)
	b.Send(1, 2, 30, "c")
	b.Send(1, 2, 10, "a")
	b.Send(1, 2, 20, "b")
	got := b.Receive(2, 100)
	if len(got) != 3 || got[0].Payload != "a" || got[1].Payload != "b" || got[2].Payload != "c" {
		t.Fatalf("order: %+v", got)
	}
}

func TestUnattachedNode(t *testing.T) {
	b := New(0, 1)
	b.Send(1, 9, 0, "x")
	if b.Receive(9, 10) != nil {
		t.Fatal("unattached node received")
	}
	b.Attach(9)
	if len(b.Receive(9, 10)) != 1 {
		t.Fatal("attached node did not receive")
	}
}

func TestPartialDelivery(t *testing.T) {
	b := New(100, 1, 2)
	b.Send(1, 2, 0, "early")
	b.Send(1, 2, 500, "late")
	got := b.Receive(2, 150)
	if len(got) != 1 || got[0].Payload != "early" {
		t.Fatalf("partial delivery: %+v", got)
	}
	got = b.Receive(2, 650)
	if len(got) != 1 || got[0].Payload != "late" {
		t.Fatalf("second delivery: %+v", got)
	}
}

func TestEqualSentAtTieBreak(t *testing.T) {
	// A burst of same-instant messages (per-stream ACKs after one joint
	// transmission) must drain in exactly send order: the (SentAt, Seq)
	// contract, not an accident of internal bookkeeping.
	b := New(0, 1, 2, 3)
	const at = 1000
	b.Send(1, 2, at, "s0")
	b.Send(3, 2, at, "s1")
	b.Send(1, 2, at, "s2")
	b.Send(3, 2, at, "s3")
	got := b.Receive(2, at)
	if len(got) != 4 {
		t.Fatalf("got %d messages, want 4", len(got))
	}
	for i, m := range got {
		if want := []string{"s0", "s1", "s2", "s3"}[i]; m.Payload != want {
			t.Fatalf("position %d: %v, want %v (full order %+v)", i, m.Payload, want, got)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("Seq not strictly increasing: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
}

func TestTieBreakSurvivesInterleavedTraffic(t *testing.T) {
	// Messages to other nodes and partial drains in between must not
	// perturb the equal-SentAt order seen by one receiver.
	b := New(0, 1, 2, 3)
	b.Send(1, 3, 5, "noise-a")
	b.Send(1, 2, 7, "x")
	b.Send(1, 2, 7, "y")
	b.Send(1, 3, 6, "noise-b")
	b.Send(1, 2, 7, "z")
	if n := len(b.Receive(3, 100)); n != 2 {
		t.Fatalf("noise drain got %d", n)
	}
	got := b.Receive(2, 100)
	if len(got) != 3 || got[0].Payload != "x" || got[1].Payload != "y" || got[2].Payload != "z" {
		t.Fatalf("order after interleaved traffic: %+v", got)
	}
	// Earlier SentAt still wins over any sequence number.
	b.Send(1, 2, 50, "late-sent-first")
	b.Send(1, 2, 40, "early-sent-second")
	got = b.Receive(2, 100)
	if len(got) != 2 || got[0].Payload != "early-sent-second" {
		t.Fatalf("SentAt precedence: %+v", got)
	}
}

func TestBroadcastSeqPerCopy(t *testing.T) {
	// Broadcast fan-out assigns each directed copy its own sequence
	// number in sorted-recipient order, keeping the global order total.
	b := New(0, 1, 2, 3)
	b.Send(1, Broadcast, 0, "b")
	m2, m3 := b.Receive(2, 10), b.Receive(3, 10)
	if len(m2) != 1 || len(m3) != 1 {
		t.Fatal("broadcast lost a copy")
	}
	if m2[0].Seq >= m3[0].Seq {
		t.Fatalf("fan-out seq order: node2=%d node3=%d", m2[0].Seq, m3[0].Seq)
	}
}
