// Package backend simulates the wired Ethernet backbone connecting
// MegaMIMO APs (§5.2a): every downlink packet is distributed to every AP,
// and the lead AP's control decisions (which packets join a transmission,
// when to fire) travel the same bus. The model is a deterministic
// message-passing fabric with a configurable delivery latency expressed in
// ether samples, so backend latency and air time share one clock.
package backend

import "sort"

// Broadcast is the destination for messages to every node.
const Broadcast = -1

// Message is one bus datagram.
type Message struct {
	From, To int
	SentAt   int64 // ether sample time of transmission
	// Seq is the bus-assigned send sequence number: a total order over
	// every message the bus ever carried, used as the delivery tie-break
	// when two messages share a SentAt (traffic bursts enqueue many ACKs
	// on the same ether sample).
	Seq     uint64
	Payload any
}

// Bus is the shared backbone. Not safe for concurrent use — the simulator
// is single-threaded per network.
type Bus struct {
	// LatencySamples is the delivery latency in ether samples (a GigE hop
	// is tens of microseconds including kernel time; at 10 Msample/s the
	// default 500 samples = 50 µs).
	LatencySamples int64
	nodes          map[int]bool
	pending        []Message
	seq            uint64
}

// New returns a bus with the given node IDs attached.
func New(latencySamples int64, nodeIDs ...int) *Bus {
	b := &Bus{LatencySamples: latencySamples, nodes: make(map[int]bool)}
	for _, id := range nodeIDs {
		b.nodes[id] = true
	}
	return b
}

// Attach registers an additional node.
func (b *Bus) Attach(id int) { b.nodes[id] = true }

// Send queues a message; To may be Broadcast, which fans out one directed
// copy to every other attached node at send time.
func (b *Bus) Send(from, to int, at int64, payload any) {
	if to != Broadcast {
		b.pending = append(b.pending, Message{From: from, To: to, SentAt: at, Seq: b.nextSeq(), Payload: payload})
		return
	}
	ids := make([]int, 0, len(b.nodes))
	for id := range b.nodes {
		if id != from {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids) // deterministic fan-out order
	for _, id := range ids {
		b.pending = append(b.pending, Message{From: from, To: id, SentAt: at, Seq: b.nextSeq(), Payload: payload})
	}
}

func (b *Bus) nextSeq() uint64 {
	b.seq++
	return b.seq
}

// Receive returns every message addressed to node that has been delivered
// by ether time now, removing them from the bus. Delivery order is the
// contractual total order (SentAt, Seq): send-time first, bus sequence
// number as the tie-break, so bursts of same-instant messages (per-stream
// ACKs after a joint transmission) always drain in the order they were
// sent, independent of any internal bookkeeping.
func (b *Bus) Receive(node int, now int64) []Message {
	if !b.nodes[node] {
		return nil
	}
	var out []Message
	kept := b.pending[:0]
	for _, m := range b.pending {
		if m.To == node && m.SentAt+b.LatencySamples <= now {
			out = append(out, m)
			continue
		}
		kept = append(kept, m)
	}
	b.pending = kept
	sort.Slice(out, func(i, j int) bool {
		if out[i].SentAt != out[j].SentAt {
			return out[i].SentAt < out[j].SentAt
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Pending reports the undelivered message count (diagnostics).
func (b *Bus) Pending() int { return len(b.pending) }
