// Package backend simulates the wired Ethernet backbone connecting
// MegaMIMO APs (§5.2a): every downlink packet is distributed to every AP,
// and the lead AP's control decisions (which packets join a transmission,
// when to fire) travel the same bus. The model is a deterministic
// message-passing fabric with a configurable delivery latency expressed in
// ether samples, so backend latency and air time share one clock.
package backend

import (
	"sort"

	"megamimo/internal/metrics"
)

// Broadcast is the destination for messages to every node.
const Broadcast = -1

// Message is one bus datagram.
type Message struct {
	From, To int
	SentAt   int64 // ether sample time of transmission
	// Seq is the bus-assigned send sequence number: a total order over
	// every message the bus ever carried, used as the delivery tie-break
	// when two messages share a SentAt (traffic bursts enqueue many ACKs
	// on the same ether sample).
	Seq     uint64
	Payload any
	// Delay is extra per-message delivery latency in ether samples on top
	// of the bus latency, imposed by an installed FaultPolicy.
	Delay int64
}

// FaultPolicy decides the fate of each directed message at send time: drop
// it outright, or delay its delivery by extra ether samples beyond the bus
// latency. Implementations must be deterministic functions of the message
// (keyed by Seq), never of wall-clock or iteration order, so that a faulty
// bus replays byte-identically at any worker count.
type FaultPolicy interface {
	Deliver(m Message) (drop bool, extraDelaySamples int64)
}

// Bus is the shared backbone. Not safe for concurrent use — the simulator
// is single-threaded per network.
type Bus struct {
	// LatencySamples is the delivery latency in ether samples (a GigE hop
	// is tens of microseconds including kernel time; at 10 Msample/s the
	// default 500 samples = 50 µs).
	LatencySamples int64
	nodes          map[int]bool
	pending        []Message
	seq            uint64
	policy         FaultPolicy
	dropped        *metrics.Counter
}

// New returns a bus with the given node IDs attached.
func New(latencySamples int64, nodeIDs ...int) *Bus {
	b := &Bus{LatencySamples: latencySamples, nodes: make(map[int]bool)}
	for _, id := range nodeIDs {
		b.nodes[id] = true
	}
	return b
}

// Attach registers an additional node.
func (b *Bus) Attach(id int) { b.nodes[id] = true }

// Detach removes a node from the bus (the AP crashed or was isolated) and
// purges its pending inbound messages: a crashed node never drains its
// queue, so leaving them would grow the bus forever and resurrect stale
// control traffic on restart. Purged and future messages to the node count
// against the drop counter.
func (b *Bus) Detach(id int) {
	if !b.nodes[id] {
		return
	}
	delete(b.nodes, id)
	kept := b.pending[:0]
	for _, m := range b.pending {
		if m.To == id {
			b.countDrop()
			continue
		}
		kept = append(kept, m)
	}
	b.pending = kept
}

// Attached reports whether the node is currently on the bus.
func (b *Bus) Attached(id int) bool { return b.nodes[id] }

// SetFaultPolicy installs (or, with nil, removes) the per-message fault
// policy consulted on every directed send.
func (b *Bus) SetFaultPolicy(p FaultPolicy) { b.policy = p }

// SetDropCounter wires the counter incremented for every message the bus
// drops — sends to detached nodes, purges on Detach, and FaultPolicy
// drops (exported as backend_dropped_total).
func (b *Bus) SetDropCounter(c *metrics.Counter) { b.dropped = c }

func (b *Bus) countDrop() {
	if b.dropped != nil {
		b.dropped.Inc()
	}
}

// Send queues a message; To may be Broadcast, which fans out one directed
// copy to every other attached node at send time.
func (b *Bus) Send(from, to int, at int64, payload any) {
	if to != Broadcast {
		b.deliver(Message{From: from, To: to, SentAt: at, Seq: b.nextSeq(), Payload: payload})
		return
	}
	ids := make([]int, 0, len(b.nodes))
	for id := range b.nodes {
		if id != from {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids) // deterministic fan-out order
	for _, id := range ids {
		b.deliver(Message{From: from, To: id, SentAt: at, Seq: b.nextSeq(), Payload: payload})
	}
}

// deliver applies crash semantics and the fault policy to one directed
// message. A message to a detached node is counted and dropped rather than
// queued forever; the policy may drop it or add delivery delay.
func (b *Bus) deliver(m Message) {
	if !b.nodes[m.To] {
		b.countDrop()
		return
	}
	if b.policy != nil {
		drop, extra := b.policy.Deliver(m)
		if drop {
			b.countDrop()
			return
		}
		m.Delay = extra
	}
	b.pending = append(b.pending, m)
}

func (b *Bus) nextSeq() uint64 {
	b.seq++
	return b.seq
}

// Receive returns every message addressed to node that has been delivered
// by ether time now, removing them from the bus. Delivery order is the
// contractual total order (SentAt, Seq): send-time first, bus sequence
// number as the tie-break, so bursts of same-instant messages (per-stream
// ACKs after a joint transmission) always drain in the order they were
// sent, independent of any internal bookkeeping.
func (b *Bus) Receive(node int, now int64) []Message {
	if !b.nodes[node] {
		return nil
	}
	var out []Message
	kept := b.pending[:0]
	for _, m := range b.pending {
		if m.To == node && m.SentAt+b.LatencySamples+m.Delay <= now {
			out = append(out, m)
			continue
		}
		kept = append(kept, m)
	}
	b.pending = kept
	sort.Slice(out, func(i, j int) bool {
		if out[i].SentAt != out[j].SentAt {
			return out[i].SentAt < out[j].SentAt
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Pending reports the undelivered message count (diagnostics).
func (b *Bus) Pending() int { return len(b.pending) }

// Snapshot returns the bus sequence counter and a copy of the in-flight
// messages, in queue order. Payloads are returned as-is; encoding them is
// the checkpoint layer's job, since the bus is payload-agnostic.
func (b *Bus) Snapshot() (seq uint64, pending []Message) {
	return b.seq, append([]Message(nil), b.pending...)
}

// RestoreSnapshot overwrites the sequence counter and in-flight queue.
// Node attachment is not part of the snapshot: the restore path replays
// crash state first (Detach/Attach), then reinstates the queue.
func (b *Bus) RestoreSnapshot(seq uint64, pending []Message) {
	b.seq = seq
	b.pending = append(b.pending[:0], pending...)
}
