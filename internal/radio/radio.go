// Package radio models the analog front end the paper's USRP2 nodes
// provide: a free-running oscillator per node (carrier-frequency offset,
// sampling-frequency offset tied to the same crystal, optional phase
// wander) and transmit-power/noise-figure bookkeeping.
//
// The oscillator is the root cause MegaMIMO exists: every node's carrier
// rotates at its own rate, so distributed transmitters drift apart unless
// the protocol re-synchronizes them. All phases here are expressed in
// radians at the shared simulation ("ether") sample clock.
package radio

import (
	"math"

	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Oscillator is one node's frequency reference. CFO and SFO both derive
// from the same crystal ppm error, as they do in real radios.
type Oscillator struct {
	// PPM is the crystal error in parts per million. 802.11 mandates
	// ±20 ppm; the paper's USRP2s are well within that.
	PPM units.PPM
	// CarrierHz is the RF carrier (2.4 GHz class).
	CarrierHz units.Hertz
	// SampleRate is the nominal baseband sample rate in Hz.
	SampleRate units.Hertz
	// Phase0 is the oscillator phase at ether time zero, radians.
	Phase0 units.Radians
	// WanderStd, when non-zero, adds a Wiener phase-noise walk with this
	// per-sample standard deviation (radians/√sample — a mixed dimension
	// with no named type of its own).
	WanderStd float64

	wander     *rng.Source
	wanderAcc  units.Radians
	wanderTime int64
}

// NewOscillator draws an oscillator with ppm uniform in ±ppmBudget and a
// random initial phase.
func NewOscillator(src *rng.Source, ppmBudget units.PPM, carrierHz, sampleRate units.Hertz) *Oscillator {
	return &Oscillator{
		//lint:ignore units rng draws are dimensionless; the budget bounds re-enter as PPM
		PPM:        units.PPM(src.Uniform(-float64(ppmBudget), float64(ppmBudget))),
		CarrierHz:  carrierHz,
		SampleRate: sampleRate,
		Phase0:     units.Radians(src.PhaseUniform()),
		wander:     src.Split(0x05C1),
	}
}

// FreqOffsetHz returns the carrier frequency offset in Hz.
func (o *Oscillator) FreqOffsetHz() units.Hertz {
	return units.FreqOffset(o.PPM, o.CarrierHz)
}

// CFORadPerSample returns the carrier offset in radians per ether sample.
func (o *Oscillator) CFORadPerSample() units.RadPerSample {
	return units.HzToRadPerSample(o.FreqOffsetHz(), o.SampleRate)
}

// SFORatio returns the sample-clock ratio actual/nominal (1 + ppm·1e-6).
func (o *Oscillator) SFORatio() float64 { return units.SFORatio(o.PPM) }

// PhaseAt returns the oscillator phase at ether sample t: ω·t + θ₀ plus
// any accumulated wander. Wander is evaluated lazily and monotonically;
// calling PhaseAt with decreasing t reuses the last wander value, which is
// accurate to one packet length for the protocols simulated here.
func (o *Oscillator) PhaseAt(t int64) units.Radians {
	p := units.PhaseAdvance(o.CFORadPerSample(), units.Samples(t)) + o.Phase0
	if o.WanderStd > 0 && o.wander != nil {
		if t > o.wanderTime {
			dt := float64(t - o.wanderTime)
			o.wanderAcc += units.Radians(o.WanderStd * math.Sqrt(dt) * o.wander.Norm())
			o.wanderTime = t
		}
		p += o.wanderAcc
	}
	return p
}

// Frontend carries the power bookkeeping for one radio chain.
type Frontend struct {
	// TxPowerDBm is the transmit power delivered to the antenna.
	TxPowerDBm units.Decibels
	// NoiseFigureDB inflates the thermal noise floor.
	NoiseFigureDB units.Decibels
	// BandwidthHz is the occupied bandwidth used for the noise floor.
	BandwidthHz units.Hertz
}

// NoiseFloorDBm returns the receiver noise floor: −174 dBm/Hz + 10·log₁₀(B)
// + NF.
func (f *Frontend) NoiseFloorDBm() units.Decibels {
	return -174 + units.LinearToDB(units.Ratio(f.BandwidthHz, 1)) + f.NoiseFigureDB
}

// Node is one radio device: an oscillator shared by one or more antenna
// chains (a 2-antenna 802.11n AP is one Node with two antennas, exactly
// like the paper's two externally clocked USRP2s).
type Node struct {
	ID       int
	Osc      *Oscillator
	Front    Frontend
	Antennas []int // antenna IDs registered with the air medium
}

// NewNode builds a node with the given antenna IDs and a freshly drawn
// oscillator.
func NewNode(id int, src *rng.Source, ppmBudget units.PPM, carrierHz, sampleRate units.Hertz, antennas ...int) *Node {
	return &Node{
		ID:       id,
		Osc:      NewOscillator(src.Split(uint64(id)+1), ppmBudget, carrierHz, sampleRate),
		Front:    Frontend{TxPowerDBm: 20, NoiseFigureDB: 6, BandwidthHz: sampleRate},
		Antennas: antennas,
	}
}
