package radio

import (
	"math"
	"testing"

	"megamimo/internal/rng"
	"megamimo/internal/units"
)

func TestOscillatorOffsets(t *testing.T) {
	o := &Oscillator{PPM: 2, CarrierHz: 2.4e9, SampleRate: 10e6}
	if got := o.FreqOffsetHz(); units.Abs(got-4800) > 1e-6 {
		t.Fatalf("FreqOffsetHz = %v, want 4800", got)
	}
	want := 2 * math.Pi * 4800 / 10e6
	if got := o.CFORadPerSample(); math.Abs(units.Ratio(got, 1)-want) > 1e-12 {
		t.Fatalf("CFORadPerSample = %v, want %v", got, want)
	}
	if got := o.SFORatio(); math.Abs(got-1.000002) > 1e-12 {
		t.Fatalf("SFORatio = %v", got)
	}
}

func TestPhaseAtLinearWithoutWander(t *testing.T) {
	o := &Oscillator{PPM: -3, CarrierHz: 2.4e9, SampleRate: 10e6, Phase0: 0.5}
	w := o.CFORadPerSample()
	for _, n := range []int64{0, 1, 1000, 1 << 30} {
		want := units.PhaseAdvance(w, units.Samples(n)) + 0.5
		if got := o.PhaseAt(n); units.Abs(got-want) > 1e-6 {
			t.Fatalf("PhaseAt(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestPhaseWanderAccumulates(t *testing.T) {
	src := rng.New(1)
	o := NewOscillator(src, 2, 2.4e9, 10e6)
	o.WanderStd = 1e-3
	base := units.PhaseAdvance(o.CFORadPerSample(), 1e6) + o.Phase0
	p1 := o.PhaseAt(1e6)
	if p1 == base {
		t.Fatal("wander had no effect")
	}
	// Monotonic time: wander accumulates with sqrt scaling, so over many
	// steps the variance grows.
	var drift float64
	last := p1 - base
	for i := int64(2); i < 50; i++ {
		p := o.PhaseAt(i * 1e6)
		lin := units.PhaseAdvance(o.CFORadPerSample(), units.Samples(i*1e6)) + o.Phase0
		d := p - lin
		drift += float64(units.Abs(d - last))
		last = d
	}
	if drift == 0 {
		t.Fatal("wander froze")
	}
}

func TestNewOscillatorWithinBudget(t *testing.T) {
	src := rng.New(7)
	for i := 0; i < 200; i++ {
		o := NewOscillator(src.Split(uint64(i)), 5, 2.4e9, 20e6)
		if units.Abs(o.PPM) > 5 {
			t.Fatalf("ppm %v outside ±5 budget", o.PPM)
		}
		if o.Phase0 < -math.Pi || o.Phase0 >= math.Pi {
			t.Fatalf("phase0 %v out of range", o.Phase0)
		}
	}
}

func TestOscillatorsAreIndependent(t *testing.T) {
	src := rng.New(9)
	a := NewOscillator(src.Split(1), 20, 2.4e9, 10e6)
	b := NewOscillator(src.Split(2), 20, 2.4e9, 10e6)
	if a.PPM == b.PPM {
		t.Fatal("two oscillators drew identical ppm")
	}
}

func TestNoiseFloor(t *testing.T) {
	f := Frontend{NoiseFigureDB: 6, BandwidthHz: 20e6}
	want := units.Decibels(-174 + 10*math.Log10(20e6) + 6)
	if got := f.NoiseFloorDBm(); units.Abs(got-want) > 1e-9 {
		t.Fatalf("NoiseFloorDBm = %v, want %v", got, want)
	}
}

func TestNewNode(t *testing.T) {
	src := rng.New(11)
	n := NewNode(3, src, 2, 2.4e9, 10e6, 6, 7)
	if n.ID != 3 || len(n.Antennas) != 2 || n.Antennas[1] != 7 {
		t.Fatalf("node misbuilt: %+v", n)
	}
	if n.Osc == nil || n.Osc.SampleRate != 10e6 {
		t.Fatal("node oscillator misconfigured")
	}
}
