package radio

import (
	"fmt"

	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// OscState is the serializable mutable state of one Oscillator. Carrier
// and sample rate are construction parameters rebuilt from config; PPM and
// Phase0 are included because fault drills mutate them mid-run (injected
// drift), and the wander walk carries both its accumulator and its rng
// position. The units types marshal as their underlying float64s.
type OscState struct {
	PPM    units.PPM     `json:"ppm"`
	Phase0 units.Radians `json:"phase0"`
	// WanderStd is radians/√sample — a mixed dimension with no named
	// units type (same as the Oscillator field it mirrors).
	WanderStd  float64       `json:"wander_std,omitempty"`
	WanderAcc  units.Radians `json:"wander_acc,omitempty"`
	WanderTime int64         `json:"wander_time,omitempty"`
	Wander     *rng.State    `json:"wander,omitempty"`
}

// Snapshot captures the oscillator's mutable state.
func (o *Oscillator) Snapshot() OscState {
	st := OscState{
		PPM:        o.PPM,
		Phase0:     o.Phase0,
		WanderStd:  o.WanderStd,
		WanderAcc:  o.wanderAcc,
		WanderTime: o.wanderTime,
	}
	if o.wander != nil {
		ws := o.wander.State()
		st.Wander = &ws
	}
	return st
}

// RestoreSnapshot overwrites the oscillator's mutable state from st. The
// wander source is restored only when both sides have one: a snapshot from
// a wander-equipped oscillator cannot restore into one built without.
func (o *Oscillator) RestoreSnapshot(st OscState) error {
	if (st.Wander != nil) != (o.wander != nil) {
		return fmt.Errorf("radio: oscillator wander source mismatch (snapshot has one: %v, target has one: %v)",
			st.Wander != nil, o.wander != nil)
	}
	if st.Wander != nil {
		if err := o.wander.Restore(*st.Wander); err != nil {
			return fmt.Errorf("radio: oscillator wander rng: %w", err)
		}
	}
	o.PPM = st.PPM
	o.Phase0 = st.Phase0
	o.WanderStd = st.WanderStd
	o.wanderAcc = st.WanderAcc
	o.wanderTime = st.WanderTime
	return nil
}
