// Package modulation implements the 802.11 constellation mappings — BPSK,
// QPSK, 16-QAM and 64-QAM with Gray labeling — plus hard-decision and
// soft (log-likelihood ratio) demapping.
//
// All constellations are normalized to unit average symbol energy so rate
// selection can reason about SNR without per-modulation fudge factors.
package modulation

import (
	"fmt"
	"math"
)

// Scheme identifies a constellation.
type Scheme int

const (
	BPSK Scheme = iota
	QPSK
	QAM16
	QAM64
)

// Valid reports whether s is one of the defined constellations. Scheme
// values normally come from phy.MCS.Modulation or ParseScheme, both of
// which only produce valid values; Valid guards the remaining paths.
func (s Scheme) Valid() bool { return s >= BPSK && s <= QAM64 }

// ParseScheme is the validated constructor from a conventional name
// ("BPSK", "QPSK", "16-QAM"/"QAM16", "64-QAM"/"QAM64").
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "BPSK":
		return BPSK, nil
	case "QPSK":
		return QPSK, nil
	case "16-QAM", "QAM16":
		return QAM16, nil
	case "64-QAM", "QAM64":
		return QAM64, nil
	}
	return 0, fmt.Errorf("modulation: unknown scheme %q", name)
}

// String returns the conventional name of the scheme.
func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// BitsPerSymbol returns the number of coded bits carried per symbol, or 0
// for an invalid Scheme (the mapping entry points reject invalid schemes
// with an error before this can matter).
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	return 0
}

// Normalization factors: divide the integer lattice by these so E|x|² = 1.
var (
	norm16 = math.Sqrt(10)
	norm64 = math.Sqrt(42)
	sqrt2  = math.Sqrt(2)
)

// pamGray maps b bits (MSB first) to a Gray-coded PAM level in
// {-(2^b - 1), ..., -1, 1, ..., 2^b - 1} following the 802.11 tables.
func pamGray(bits []byte) float64 {
	switch len(bits) {
	case 1:
		return float64(2*int(bits[0]) - 1) // 0→-1, 1→+1
	case 2:
		// 802.11: 00→-3, 01→-1, 11→+1, 10→+3
		switch bits[0]<<1 | bits[1] {
		case 0b00:
			return -3
		case 0b01:
			return -1
		case 0b11:
			return 1
		default:
			return 3
		}
	case 3:
		// 802.11 64-QAM: 000→-7, 001→-5, 011→-3, 010→-1, 110→+1, 111→+3, 101→+5, 100→+7
		switch bits[0]<<2 | bits[1]<<1 | bits[2] {
		case 0b000:
			return -7
		case 0b001:
			return -5
		case 0b011:
			return -3
		case 0b010:
			return -1
		case 0b110:
			return 1
		case 0b111:
			return 3
		case 0b101:
			return 5
		default:
			return 7
		}
	}
	panic("modulation: bad PAM width")
}

// pamDeGray inverts pamGray by nearest-level slicing.
func pamDeGray(v float64, width int) []byte {
	switch width {
	case 1:
		if v >= 0 {
			return []byte{1}
		}
		return []byte{0}
	case 2:
		switch {
		case v < -2:
			return []byte{0, 0}
		case v < 0:
			return []byte{0, 1}
		case v < 2:
			return []byte{1, 1}
		default:
			return []byte{1, 0}
		}
	case 3:
		switch {
		case v < -6:
			return []byte{0, 0, 0}
		case v < -4:
			return []byte{0, 0, 1}
		case v < -2:
			return []byte{0, 1, 1}
		case v < 0:
			return []byte{0, 1, 0}
		case v < 2:
			return []byte{1, 1, 0}
		case v < 4:
			return []byte{1, 1, 1}
		case v < 6:
			return []byte{1, 0, 1}
		default:
			return []byte{1, 0, 0}
		}
	}
	panic("modulation: bad PAM width")
}

// Map modulates bits (values 0/1, MSB-first per symbol) into complex
// symbols. len(bits) must be a multiple of BitsPerSymbol.
func Map(s Scheme, bits []byte) ([]complex128, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("modulation: unknown scheme %v", s)
	}
	bps := s.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("modulation: %d bits not a multiple of %d", len(bits), bps)
	}
	out := make([]complex128, len(bits)/bps)
	for i := range out {
		chunk := bits[i*bps : (i+1)*bps]
		switch s {
		case BPSK:
			out[i] = complex(pamGray(chunk[:1]), 0)
		case QPSK:
			out[i] = complex(pamGray(chunk[:1])/sqrt2, pamGray(chunk[1:])/sqrt2)
		case QAM16:
			out[i] = complex(pamGray(chunk[:2])/norm16, pamGray(chunk[2:])/norm16)
		case QAM64:
			out[i] = complex(pamGray(chunk[:3])/norm64, pamGray(chunk[3:])/norm64)
		default:
			return nil, fmt.Errorf("modulation: unknown scheme %v", s)
		}
	}
	return out, nil
}

// HardDemap slices symbols back to bits by nearest constellation point. It
// errors on an invalid scheme.
func HardDemap(s Scheme, syms []complex128) ([]byte, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("modulation: unknown scheme %v", s)
	}
	bps := s.BitsPerSymbol()
	out := make([]byte, 0, len(syms)*bps)
	for _, v := range syms {
		switch s {
		case BPSK:
			out = append(out, pamDeGray(real(v), 1)...)
		case QPSK:
			out = append(out, pamDeGray(real(v)*sqrt2, 1)...)
			out = append(out, pamDeGray(imag(v)*sqrt2, 1)...)
		case QAM16:
			out = append(out, pamDeGray(real(v)*norm16, 2)...)
			out = append(out, pamDeGray(imag(v)*norm16, 2)...)
		case QAM64:
			out = append(out, pamDeGray(real(v)*norm64, 3)...)
			out = append(out, pamDeGray(imag(v)*norm64, 3)...)
		}
	}
	return out, nil
}

// SoftDemap produces one LLR per coded bit (positive = bit 0 more likely,
// the convention the Viterbi decoder in internal/fec expects). noiseVar is
// the per-symbol complex noise variance; it scales LLR confidence.
//
// LLRs use the max-log approximation over per-axis PAM sets, which is exact
// for BPSK/QPSK and within a fraction of a dB for 16/64-QAM. It errors on
// an invalid scheme.
func SoftDemap(s Scheme, syms []complex128, noiseVar float64) ([]float64, error) {
	if !s.Valid() {
		return nil, fmt.Errorf("modulation: unknown scheme %v", s)
	}
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	out := make([]float64, 0, len(syms)*s.BitsPerSymbol())
	for _, v := range syms {
		switch s {
		case BPSK:
			out = append(out, -4*real(v)/noiseVar)
		case QPSK:
			out = append(out, -4*real(v)/(sqrt2*noiseVar), -4*imag(v)/(sqrt2*noiseVar))
		case QAM16:
			out = append(out, pamLLR(real(v)*norm16, 2, noiseVar*10)...)
			out = append(out, pamLLR(imag(v)*norm16, 2, noiseVar*10)...)
		case QAM64:
			out = append(out, pamLLR(real(v)*norm64, 3, noiseVar*42)...)
			out = append(out, pamLLR(imag(v)*norm64, 3, noiseVar*42)...)
		}
	}
	return out, nil
}

// pamLLR returns max-log LLRs for one Gray-coded PAM axis with levels at
// odd integers; y is the received value on the integer lattice and nv the
// noise variance on that lattice.
func pamLLR(y float64, width int, nv float64) []float64 {
	nLevels := 1 << width
	llr := make([]float64, width)
	for b := 0; b < width; b++ {
		best0, best1 := math.Inf(1), math.Inf(1)
		for lv := 0; lv < nLevels; lv++ {
			bits := grayBitsForLevel(lv, width)
			x := float64(2*lv + 1 - nLevels)
			d := (y - x) * (y - x)
			if bits[b] == 0 {
				if d < best0 {
					best0 = d
				}
			} else if d < best1 {
				best1 = d
			}
		}
		llr[b] = (best1 - best0) / nv
	}
	return llr
}

// grayBitsForLevel returns the bit label of the PAM level with index lv
// (ascending amplitude order), consistent with pamGray.
func grayBitsForLevel(lv, width int) []byte {
	x := float64(2*lv + 1 - (1 << width))
	return pamDeGray(x, width)
}

// grayTables[width][lv] is grayBitsForLevel(lv, width) precomputed, so the
// scalar demap paths never allocate label slices.
var grayTables = buildGrayTables()

func buildGrayTables() [4][][]byte {
	var out [4][][]byte
	for width := 1; width <= 3; width++ {
		levels := make([][]byte, 1<<width)
		for lv := range levels {
			levels[lv] = grayBitsForLevel(lv, width)
		}
		out[width] = levels
	}
	return out
}

// MapInto is Map with a caller-supplied destination of exactly
// len(bits)/BitsPerSymbol symbols; it allocates nothing.
func MapInto(dst []complex128, s Scheme, bits []byte) error {
	if !s.Valid() {
		return fmt.Errorf("modulation: unknown scheme %v", s)
	}
	bps := s.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return fmt.Errorf("modulation: %d bits not a multiple of %d", len(bits), bps)
	}
	if len(dst) != len(bits)/bps {
		return fmt.Errorf("modulation: destination holds %d symbols, want %d", len(dst), len(bits)/bps)
	}
	for i := range dst {
		chunk := bits[i*bps : (i+1)*bps]
		switch s {
		case BPSK:
			dst[i] = complex(pamGray(chunk[:1]), 0)
		case QPSK:
			dst[i] = complex(pamGray(chunk[:1])/sqrt2, pamGray(chunk[1:])/sqrt2)
		case QAM16:
			dst[i] = complex(pamGray(chunk[:2])/norm16, pamGray(chunk[2:])/norm16)
		case QAM64:
			dst[i] = complex(pamGray(chunk[:3])/norm64, pamGray(chunk[3:])/norm64)
		}
	}
	return nil
}

// slicePAM returns the nearest odd-integer PAM level in ±(2^width − 1).
func slicePAM(v float64, width int) float64 {
	max := float64(int(1)<<width - 1)
	// Nearest odd integer with ties resolved upward, matching pamDeGray's
	// half-open decision intervals: 2·⌊v/2⌋+1, then clamp.
	x := 2*math.Floor(v/2) + 1
	if x > max {
		x = max
	} else if x < -max {
		x = -max
	}
	return x
}

// SlicePoint returns the constellation point nearest to v — the one-symbol
// equivalent of HardDemap followed by Map, without the intermediate bit
// slices. The scheme must be valid (callers validate once per frame).
func SlicePoint(s Scheme, v complex128) complex128 {
	switch s {
	case BPSK:
		return complex(slicePAM(real(v), 1), 0)
	case QPSK:
		return complex(slicePAM(real(v)*sqrt2, 1)/sqrt2, slicePAM(imag(v)*sqrt2, 1)/sqrt2)
	case QAM16:
		return complex(slicePAM(real(v)*norm16, 2)/norm16, slicePAM(imag(v)*norm16, 2)/norm16)
	case QAM64:
		return complex(slicePAM(real(v)*norm64, 3)/norm64, slicePAM(imag(v)*norm64, 3)/norm64)
	}
	return v
}

// AppendHardDemap appends the hard-decision bits for one received symbol to
// dst and returns the extended slice; it allocates nothing beyond dst growth.
// The scheme must be valid.
func AppendHardDemap(dst []byte, s Scheme, v complex128) []byte {
	switch s {
	case BPSK:
		return appendPAMBits(dst, real(v), 1)
	case QPSK:
		dst = appendPAMBits(dst, real(v)*sqrt2, 1)
		return appendPAMBits(dst, imag(v)*sqrt2, 1)
	case QAM16:
		dst = appendPAMBits(dst, real(v)*norm16, 2)
		return appendPAMBits(dst, imag(v)*norm16, 2)
	case QAM64:
		dst = appendPAMBits(dst, real(v)*norm64, 3)
		return appendPAMBits(dst, imag(v)*norm64, 3)
	}
	return dst
}

// appendPAMBits appends the Gray label of the nearest PAM level without the
// intermediate slice pamDeGray would allocate.
func appendPAMBits(dst []byte, v float64, width int) []byte {
	nLevels := 1 << width
	lv := int(math.Round((slicePAM(v, width) + float64(nLevels) - 1) / 2))
	return append(dst, grayTables[width][lv]...)
}

// AppendSoftDemap appends the LLRs for one received symbol to dst and
// returns the extended slice, matching SoftDemap's conventions (positive =
// bit 0 more likely); it allocates nothing beyond dst growth. The scheme
// must be valid.
func AppendSoftDemap(dst []float64, s Scheme, v complex128, noiseVar float64) []float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	switch s {
	case BPSK:
		return append(dst, -4*real(v)/noiseVar)
	case QPSK:
		return append(dst, -4*real(v)/(sqrt2*noiseVar), -4*imag(v)/(sqrt2*noiseVar))
	case QAM16:
		dst = appendPamLLR(dst, real(v)*norm16, 2, noiseVar*10)
		return appendPamLLR(dst, imag(v)*norm16, 2, noiseVar*10)
	case QAM64:
		dst = appendPamLLR(dst, real(v)*norm64, 3, noiseVar*42)
		return appendPamLLR(dst, imag(v)*norm64, 3, noiseVar*42)
	}
	return dst
}

// appendPamLLR is pamLLR appending into dst, using the precomputed Gray
// tables so nothing allocates.
func appendPamLLR(dst []float64, y float64, width int, nv float64) []float64 {
	nLevels := 1 << width
	for b := 0; b < width; b++ {
		best0, best1 := math.Inf(1), math.Inf(1)
		for lv := 0; lv < nLevels; lv++ {
			bits := grayTables[width][lv]
			x := float64(2*lv + 1 - nLevels)
			d := (y - x) * (y - x)
			if bits[b] == 0 {
				if d < best0 {
					best0 = d
				}
			} else if d < best1 {
				best1 = d
			}
		}
		dst = append(dst, (best1-best0)/nv)
	}
	return dst
}
