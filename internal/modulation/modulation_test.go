package modulation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var allSchemes = []Scheme{BPSK, QPSK, QAM16, QAM64}

func TestBitsPerSymbol(t *testing.T) {
	want := map[Scheme]int{BPSK: 1, QPSK: 2, QAM16: 4, QAM64: 6}
	for s, w := range want {
		if got := s.BitsPerSymbol(); got != w {
			t.Errorf("%v BitsPerSymbol = %d, want %d", s, got, w)
		}
	}
}

func TestMapRejectsRaggedInput(t *testing.T) {
	if _, err := Map(QAM16, []byte{1, 0, 1}); err == nil {
		t.Fatal("Map accepted non-multiple bit count")
	}
}

func TestMapHardDemapRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, s := range allSchemes {
		bits := make([]byte, 240*s.BitsPerSymbol()/s.BitsPerSymbol()*s.BitsPerSymbol())
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		syms, err := Map(s, bits)
		if err != nil {
			t.Fatal(err)
		}
		back, err := HardDemap(s, syms)
		if err != nil {
			t.Fatal(err)
		}
		if len(back) != len(bits) {
			t.Fatalf("%v: length %d != %d", s, len(back), len(bits))
		}
		for i := range bits {
			if bits[i] != back[i] {
				t.Fatalf("%v: bit %d flipped without noise", s, i)
			}
		}
	}
}

func TestUnitAveragePower(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, s := range allSchemes {
		n := 6000 * s.BitsPerSymbol()
		bits := make([]byte, n)
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		syms, err := Map(s, bits)
		if err != nil {
			t.Fatal(err)
		}
		var p float64
		for _, v := range syms {
			p += real(v)*real(v) + imag(v)*imag(v)
		}
		p /= float64(len(syms))
		if math.Abs(p-1) > 0.03 {
			t.Errorf("%v: average power %v, want 1", s, p)
		}
	}
}

func TestBPSKKnownPoints(t *testing.T) {
	syms, err := Map(BPSK, []byte{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if syms[0] != -1 || syms[1] != 1 {
		t.Fatalf("BPSK map = %v", syms)
	}
}

func TestQAM16GrayAdjacency(t *testing.T) {
	// Adjacent PAM levels must differ in exactly one bit (Gray property).
	for lv := 0; lv < 3; lv++ {
		a := grayBitsForLevel(lv, 2)
		b := grayBitsForLevel(lv+1, 2)
		diff := 0
		for i := range a {
			if a[i] != b[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("levels %d,%d differ in %d bits", lv, lv+1, diff)
		}
	}
}

func TestQAM64GrayAdjacency(t *testing.T) {
	for lv := 0; lv < 7; lv++ {
		a := grayBitsForLevel(lv, 3)
		b := grayBitsForLevel(lv+1, 3)
		diff := 0
		for i := range a {
			if a[i] != b[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("levels %d,%d differ in %d bits", lv, lv+1, diff)
		}
	}
}

func TestHardDemapWithSmallNoise(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, s := range allSchemes {
		bits := make([]byte, 1200)
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		bits = bits[:len(bits)/s.BitsPerSymbol()*s.BitsPerSymbol()]
		syms, _ := Map(s, bits)
		// Noise well inside half the minimum constellation distance.
		for i := range syms {
			syms[i] += complex(r.NormFloat64()*0.02, r.NormFloat64()*0.02)
		}
		back, err := HardDemap(s, syms)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if bits[i] != back[i] {
				t.Fatalf("%v: flipped under tiny noise", s)
			}
		}
	}
}

func TestSoftDemapSignsMatchHardDecisions(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, s := range allSchemes {
		bits := make([]byte, 1200/s.BitsPerSymbol()*s.BitsPerSymbol())
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		syms, _ := Map(s, bits)
		llr, err := SoftDemap(s, syms, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if len(llr) != len(bits) {
			t.Fatalf("%v: %d LLRs for %d bits", s, len(llr), len(bits))
		}
		for i, b := range bits {
			// Positive LLR ⇒ bit 0; negative ⇒ bit 1.
			if b == 0 && llr[i] < 0 || b == 1 && llr[i] > 0 {
				t.Fatalf("%v: LLR sign disagrees with clean bit %d (llr %v, bit %d)", s, i, llr[i], b)
			}
		}
	}
}

func TestSoftDemapConfidenceScalesWithNoise(t *testing.T) {
	syms, _ := Map(QAM16, []byte{1, 0, 1, 1})
	lowNoise, err := SoftDemap(QAM16, syms, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	highNoise, err := SoftDemap(QAM16, syms, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lowNoise {
		if math.Abs(lowNoise[i]) <= math.Abs(highNoise[i]) {
			t.Fatalf("LLR %d did not grow with SNR", i)
		}
	}
}

// Property: round trip holds for random bits across all schemes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, raw []byte) bool {
		r := rand.New(rand.NewSource(seed))
		s := allSchemes[r.Intn(len(allSchemes))]
		bits := make([]byte, len(raw)/s.BitsPerSymbol()*s.BitsPerSymbol())
		for i := range bits {
			bits[i] = raw[i] & 1
		}
		syms, err := Map(s, bits)
		if err != nil {
			return false
		}
		back, err := HardDemap(s, syms)
		if err != nil {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMapQAM64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	bits := make([]byte, 6*48*100)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(QAM64, bits); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftDemapQAM64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	bits := make([]byte, 6*48*20)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	syms, _ := Map(QAM64, bits)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SoftDemap(QAM64, syms, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScalarPathsMatchSlicePaths(t *testing.T) {
	schemes := []Scheme{BPSK, QPSK, QAM16, QAM64}
	// A deterministic cloud of points covering every decision region plus
	// off-grid noise-like offsets.
	var pts []complex128
	for i := -9; i <= 9; i++ {
		for q := -9; q <= 9; q++ {
			pts = append(pts, complex(float64(i)*0.17, float64(q)*0.17))
		}
	}
	for _, s := range schemes {
		for _, v := range pts {
			hd, err := HardDemap(s, []complex128{v})
			if err != nil {
				t.Fatal(err)
			}
			got := AppendHardDemap(nil, s, v)
			if len(got) != len(hd) {
				t.Fatalf("%v AppendHardDemap len %d want %d", s, len(got), len(hd))
			}
			for i := range hd {
				if got[i] != hd[i] {
					t.Fatalf("%v AppendHardDemap(%v) = %v, want %v", s, v, got, hd)
				}
			}
			mapped, err := Map(s, hd)
			if err != nil {
				t.Fatal(err)
			}
			if sp := SlicePoint(s, v); sp != mapped[0] {
				t.Fatalf("%v SlicePoint(%v) = %v, want %v", s, v, sp, mapped[0])
			}
			for _, nv := range []float64{0.01, 0.3, 2} {
				soft, err := SoftDemap(s, []complex128{v}, nv)
				if err != nil {
					t.Fatal(err)
				}
				gotSoft := AppendSoftDemap(nil, s, v, nv)
				if len(gotSoft) != len(soft) {
					t.Fatalf("%v AppendSoftDemap len %d want %d", s, len(gotSoft), len(soft))
				}
				for i := range soft {
					if gotSoft[i] != soft[i] {
						t.Fatalf("%v AppendSoftDemap(%v, nv=%v) = %v, want %v", s, v, nv, gotSoft, soft)
					}
				}
			}
		}
		// MapInto must agree with Map on every label.
		bps := s.BitsPerSymbol()
		nSyms := 1 << bps
		bits := make([]byte, 0, nSyms*bps)
		for lv := 0; lv < nSyms; lv++ {
			for b := bps - 1; b >= 0; b-- {
				bits = append(bits, byte(lv>>b)&1)
			}
		}
		want, err := Map(s, bits)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, len(want))
		if err := MapInto(got, s, bits); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v MapInto[%d] = %v, want %v", s, i, got[i], want[i])
			}
		}
	}
}

func TestScalarDemapAllocFree(t *testing.T) {
	llr := make([]float64, 0, 64)
	bits := make([]byte, 0, 64)
	n := testing.AllocsPerRun(200, func() {
		llr = AppendSoftDemap(llr[:0], QAM64, 0.3-0.2i, 0.1)
		bits = AppendHardDemap(bits[:0], QAM64, 0.3-0.2i)
		_ = SlicePoint(QAM16, -0.4+0.9i)
	})
	if n > 0 {
		t.Errorf("scalar demap path allocates %.1f times per run", n)
	}
}
