package cmplxs

import (
	"math"
	"math/cmplx"

	"megamimo/internal/units"
)

// Split is the SoA (structure-of-arrays) view of a complex vector: the
// real and imaginary parts live in two parallel []float64 slices. The
// split layout is the internal representation of the hot DSP kernels —
// convolution scratch, FFT batch workspaces — because the inner loops
// become straight-line float adds and multiplies over contiguous
// float64 data, with no per-element complex construction. The
// []complex128 world remains the public API; Pack/Unpack are the only
// sanctioned conversion points, so a Split never leaks past the kernel
// that owns it.
type Split struct {
	Re, Im []float64
}

// NewSplit returns a zeroed Split of length n.
func NewSplit(n int) Split {
	buf := make([]float64, 2*n)
	return Split{Re: buf[:n:n], Im: buf[n:]}
}

// Len returns the vector length (both parts always match).
func (s Split) Len() int { return len(s.Re) }

// Slice returns the sub-vector [lo, hi) sharing the same storage.
func (s Split) Slice(lo, hi int) Split {
	return Split{Re: s.Re[lo:hi], Im: s.Im[lo:hi]}
}

// Zero clears the vector in place.
func (s Split) Zero() {
	for i := range s.Re {
		s.Re[i] = 0
		s.Im[i] = 0
	}
}

// Unpack converts AoS to SoA: dst must be at least as long as a. This is
// the inbound half of the []complex128 API boundary.
func Unpack(dst Split, a []complex128) {
	checkLen(dst.Len(), len(a), len(a))
	re, im := dst.Re[:len(a)], dst.Im[:len(a)]
	for i, v := range a {
		re[i] = real(v)
		im[i] = imag(v)
	}
}

// Pack converts SoA back to AoS: the outbound half of the API boundary.
func Pack(dst []complex128, s Split) {
	checkLen(len(dst), s.Len(), s.Len())
	re, im := s.Re, s.Im
	for i := range re {
		dst[i] = complex(re[i], im[i])
	}
}

// PackAdd accumulates the split vector onto dst: dst[i] += s[i]. Fusing
// the conversion with the accumulation keeps medium summation at one
// pass over the destination.
func PackAdd(dst []complex128, s Split) {
	checkLen(len(dst), s.Len(), s.Len())
	re, im := s.Re, s.Im
	for i := range re {
		dst[i] += complex(re[i], im[i])
	}
}

// MulSplit stores a[i]*b[i] into dst, element-wise over split vectors.
func MulSplit(dst, a, b Split) {
	checkLen(dst.Len(), a.Len(), b.Len())
	ar, ai, br, bi := a.Re, a.Im, b.Re, b.Im
	dr, di := dst.Re[:len(ar)], dst.Im[:len(ar)]
	for i := range ar {
		re := ar[i]*br[i] - ai[i]*bi[i]
		im := ar[i]*bi[i] + ai[i]*br[i]
		dr[i], di[i] = re, im
	}
}

// MulConjSplit stores a[i]*conj(b[i]) into dst over split vectors.
func MulConjSplit(dst, a, b Split) {
	checkLen(dst.Len(), a.Len(), b.Len())
	ar, ai, br, bi := a.Re, a.Im, b.Re, b.Im
	dr, di := dst.Re[:len(ar)], dst.Im[:len(ar)]
	for i := range ar {
		re := ar[i]*br[i] + ai[i]*bi[i]
		im := ai[i]*br[i] - ar[i]*bi[i]
		dr[i], di[i] = re, im
	}
}

// AXPYSplit accumulates dst[i] += s*a[i] over split vectors.
func AXPYSplit(dst Split, s complex128, a Split) {
	checkLen(dst.Len(), a.Len(), a.Len())
	sr, si := real(s), imag(s)
	ar, ai := a.Re, a.Im
	dr, di := dst.Re[:len(ar)], dst.Im[:len(ar)]
	for i := range ar {
		dr[i] += sr*ar[i] - si*ai[i]
		di[i] += sr*ai[i] + si*ar[i]
	}
}

// AddSplit stores a[i]+b[i] into dst over split vectors.
func AddSplit(dst, a, b Split) {
	checkLen(dst.Len(), a.Len(), b.Len())
	ar, ai, br, bi := a.Re, a.Im, b.Re, b.Im
	dr, di := dst.Re[:len(ar)], dst.Im[:len(ar)]
	for i := range ar {
		dr[i] = ar[i] + br[i]
		di[i] = ai[i] + bi[i]
	}
}

// ScaleSplit stores s*a[i] into dst over split vectors.
func ScaleSplit(dst, a Split, s complex128) {
	checkLen(dst.Len(), a.Len(), a.Len())
	sr, si := real(s), imag(s)
	ar, ai := a.Re, a.Im
	dr, di := dst.Re[:len(ar)], dst.Im[:len(ar)]
	for i := range ar {
		dr[i] = sr*ar[i] - si*ai[i]
		di[i] = sr*ai[i] + si*ar[i]
	}
}

// DotSplit returns the inner product sum a[i]*conj(b[i]) over split
// vectors.
func DotSplit(a, b Split) complex128 {
	checkLen(a.Len(), a.Len(), b.Len())
	ar, ai, br, bi := a.Re, a.Im, b.Re, b.Im
	var accR, accI float64
	for i := range ar {
		accR += ar[i]*br[i] + ai[i]*bi[i]
		accI += ai[i]*br[i] - ar[i]*bi[i]
	}
	return complex(accR, accI)
}

// EnergySplit returns sum |a[i]|² over a split vector.
func EnergySplit(a Split) float64 {
	var acc float64
	ar, ai := a.Re, a.Im
	for i := range ar {
		acc += ar[i]*ar[i] + ai[i]*ai[i]
	}
	return acc
}

// RotateSplit stores a[i]*e^{j(phase0 + i*phaseStep)} into dst over split
// vectors — the SoA twin of Rotate, with the same recurrence and the same
// 1024-sample renormalization cadence so both layouts rotate identically.
func RotateSplit(dst, a Split, phase0 units.Radians, phaseStep units.RadPerSample) {
	checkLen(dst.Len(), a.Len(), a.Len())
	//lint:ignore units complex exponentials take the bare scalar; the rotation kernel is a legal stripping boundary
	rotR, rotI := math.Cos(float64(phase0)), math.Sin(float64(phase0))
	//lint:ignore units complex exponentials take the bare scalar; the rotation kernel is a legal stripping boundary
	stepR, stepI := math.Cos(float64(phaseStep)), math.Sin(float64(phaseStep))
	ar, ai := a.Re, a.Im
	dr, di := dst.Re[:len(ar)], dst.Im[:len(ar)]
	for i := range ar {
		dr[i] = ar[i]*rotR - ai[i]*rotI
		di[i] = ar[i]*rotI + ai[i]*rotR
		rotR, rotI = rotR*stepR-rotI*stepI, rotR*stepI+rotI*stepR
		if i&1023 == 1023 {
			m := math.Hypot(rotR, rotI)
			rotR /= m
			rotI /= m
		}
	}
}

// RotateAXPY accumulates dst[i] += a[i]*e^{j(phase0 + i*phaseStep)} onto
// an AoS destination from a split source: the fused oscillator-offset +
// medium-summation kernel. Semantics (recurrence, renormalization) match
// Rotate followed by Add, in one pass.
func RotateAXPY(dst []complex128, a Split, phase0 units.Radians, phaseStep units.RadPerSample) {
	checkLen(len(dst), a.Len(), a.Len())
	rot := cmplx.Exp(complex(0, units.Ratio(phase0, 1)))
	step := cmplx.Exp(complex(0, units.Ratio(phaseStep, 1)))
	ar, ai := a.Re, a.Im
	for i := range ar {
		dst[i] += complex(ar[i], ai[i]) * rot
		rot *= step
		if i&1023 == 1023 {
			rot /= complex(cmplx.Abs(rot), 0)
		}
	}
}
