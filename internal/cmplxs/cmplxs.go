// Package cmplxs provides small kernels over []complex128 slices: the
// element-wise arithmetic, inner products, energy/power accounting and
// phase helpers that the DSP, OFDM and beamforming layers are built on.
//
// All functions that write into a destination slice require the destination
// to be at least as long as the inputs and panic otherwise; silent
// truncation in signal paths hides bugs that later look like RF impairments.
package cmplxs

import (
	"math"
	"math/cmplx"

	"megamimo/internal/units"
)

// Add stores a[i]+b[i] into dst and returns dst. dst may alias a or b.
func Add(dst, a, b []complex128) []complex128 {
	checkLen(len(dst), len(a), len(b))
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a[i]-b[i] into dst and returns dst. dst may alias a or b.
func Sub(dst, a, b []complex128) []complex128 {
	checkLen(len(dst), len(a), len(b))
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Mul stores the element-wise product a[i]*b[i] into dst and returns dst.
func Mul(dst, a, b []complex128) []complex128 {
	checkLen(len(dst), len(a), len(b))
	for i := range a {
		dst[i] = a[i] * b[i]
	}
	return dst
}

// MulConj stores a[i]*conj(b[i]) into dst and returns dst. This is the
// kernel behind channel estimation and correlation.
func MulConj(dst, a, b []complex128) []complex128 {
	checkLen(len(dst), len(a), len(b))
	for i := range a {
		dst[i] = a[i] * cmplx.Conj(b[i])
	}
	return dst
}

// Div stores a[i]/b[i] into dst and returns dst. Division by a zero element
// yields the IEEE result (Inf/NaN components); callers in estimation paths
// guard against zero reference symbols themselves.
func Div(dst, a, b []complex128) []complex128 {
	checkLen(len(dst), len(a), len(b))
	for i := range a {
		dst[i] = a[i] / b[i]
	}
	return dst
}

// Scale stores s*a[i] into dst and returns dst.
func Scale(dst []complex128, a []complex128, s complex128) []complex128 {
	checkLen(len(dst), len(a), len(a))
	for i := range a {
		dst[i] = s * a[i]
	}
	return dst
}

// AXPY accumulates dst[i] += s*a[i] and returns dst, the canonical
// "add a scaled signal into the air" kernel.
func AXPY(dst []complex128, s complex128, a []complex128) []complex128 {
	checkLen(len(dst), len(a), len(a))
	for i := range a {
		dst[i] += s * a[i]
	}
	return dst
}

// Conj stores conj(a[i]) into dst and returns dst.
func Conj(dst, a []complex128) []complex128 {
	checkLen(len(dst), len(a), len(a))
	for i := range a {
		dst[i] = cmplx.Conj(a[i])
	}
	return dst
}

// Dot returns the inner product sum a[i]*conj(b[i]).
func Dot(a, b []complex128) complex128 {
	checkLen(len(a), len(a), len(b))
	var acc complex128
	for i := range a {
		acc += a[i] * cmplx.Conj(b[i])
	}
	return acc
}

// Sum returns the plain sum of the elements of a.
func Sum(a []complex128) complex128 {
	var acc complex128
	for _, v := range a {
		acc += v
	}
	return acc
}

// Energy returns sum |a[i]|^2.
func Energy(a []complex128) float64 {
	var acc float64
	for _, v := range a {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return acc
}

// Power returns the mean of |a[i]|^2, or 0 for an empty slice.
func Power(a []complex128) float64 {
	if len(a) == 0 {
		return 0
	}
	return Energy(a) / float64(len(a))
}

// Rotate stores a[i]*e^{j(phase0 + i*phaseStep)} into dst and returns dst.
// It is the oscillator-offset kernel: phaseStep = 2π·Δf/Fs rotates a signal
// the way a carrier frequency offset of Δf does at sample rate Fs.
func Rotate(dst, a []complex128, phase0 units.Radians, phaseStep units.RadPerSample) []complex128 {
	checkLen(len(dst), len(a), len(a))
	// Recurrence with periodic renormalization: cheap and accurate to
	// well below the phase errors the system is designed to tolerate.
	//lint:ignore units complex exponentials take the bare scalar; the rotation kernel is a legal stripping boundary
	rot := cmplx.Exp(complex(0, float64(phase0)))
	//lint:ignore units complex exponentials take the bare scalar; the rotation kernel is a legal stripping boundary
	step := cmplx.Exp(complex(0, float64(phaseStep)))
	for i := range a {
		dst[i] = a[i] * rot
		rot *= step
		if i&1023 == 1023 {
			rot /= complex(cmplx.Abs(rot), 0)
		}
	}
	return dst
}

// Phase returns the argument of v in (-π, π].
func Phase(v complex128) units.Radians { return units.Radians(cmplx.Phase(v)) }

// WrapPhase wraps an angle into (-π, π].
func WrapPhase(p units.Radians) units.Radians { return units.WrapRadians(p) }

// PhaseDiff returns the wrapped phase difference arg(a)-arg(b) in (-π, π].
func PhaseDiff(a, b complex128) units.Radians {
	return Phase(a * cmplx.Conj(b))
}

// MeanPhase returns the circular mean of the phases of the elements of a,
// weighting each element by its magnitude (a noise-robust phase estimate).
func MeanPhase(a []complex128) units.Radians {
	return Phase(Sum(a))
}

// Expi returns e^{jθ}.
func Expi(theta units.Radians) complex128 {
	//lint:ignore units math.Sincos takes the bare scalar; the rotation kernel is a legal stripping boundary
	s, c := math.Sincos(float64(theta))
	return complex(c, s)
}

// Clone returns a fresh copy of a.
func Clone(a []complex128) []complex128 {
	out := make([]complex128, len(a))
	copy(out, a)
	return out
}

// Zero sets every element of a to 0 and returns a.
func Zero(a []complex128) []complex128 {
	for i := range a {
		a[i] = 0
	}
	return a
}

// MaxAbs returns the largest element magnitude in a, or 0 for empty input.
func MaxAbs(a []complex128) float64 {
	var m float64
	for _, v := range a {
		if ab := cmplx.Abs(v); ab > m {
			m = ab
		}
	}
	return m
}

// DB converts a linear power ratio to decibels.
func DB(linear float64) units.Decibels { return units.Decibels(10 * math.Log10(linear)) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db units.Decibels) float64 { return units.DBToLinear(db) }

func checkLen(dst, a, b int) {
	if a != b {
		panic("cmplxs: input length mismatch")
	}
	if dst < a {
		panic("cmplxs: destination too short")
	}
}
