package cmplxs

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"megamimo/internal/units"
)

const eps = 1e-12

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < 1e-9 }

func TestAddSubMul(t *testing.T) {
	a := []complex128{1 + 2i, 3 - 1i}
	b := []complex128{2 - 2i, -1 + 4i}
	dst := make([]complex128, 2)
	Add(dst, a, b)
	if !approx(dst[0], 3+0i) || !approx(dst[1], 2+3i) {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, a, b)
	if !approx(dst[0], -1+4i) || !approx(dst[1], 4-5i) {
		t.Fatalf("Sub = %v", dst)
	}
	Mul(dst, a, b)
	if !approx(dst[0], (1+2i)*(2-2i)) || !approx(dst[1], (3-1i)*(-1+4i)) {
		t.Fatalf("Mul = %v", dst)
	}
}

func TestAddAliasesDestination(t *testing.T) {
	a := []complex128{1, 2, 3}
	b := []complex128{10, 20, 30}
	Add(a, a, b)
	if a[2] != 33 {
		t.Fatalf("aliased Add = %v", a)
	}
}

func TestMulConjAndDot(t *testing.T) {
	a := []complex128{1 + 1i, 2i}
	b := []complex128{1 - 1i, 3}
	dst := make([]complex128, 2)
	MulConj(dst, a, b)
	if !approx(dst[0], (1+1i)*(1+1i)) || !approx(dst[1], 6i) {
		t.Fatalf("MulConj = %v", dst)
	}
	if got := Dot(a, a); math.Abs(real(got)-6) > eps || math.Abs(imag(got)) > eps {
		t.Fatalf("Dot(a,a) = %v, want 6", got)
	}
}

func TestDivInvertsMul(t *testing.T) {
	a := []complex128{1 + 2i, -3 + 0.5i, 0.25i}
	b := []complex128{2 - 1i, 1 + 1i, -4}
	prod := make([]complex128, 3)
	Mul(prod, a, b)
	back := make([]complex128, 3)
	Div(back, prod, b)
	for i := range a {
		if !approx(back[i], a[i]) {
			t.Fatalf("Div(Mul(a,b),b)[%d] = %v, want %v", i, back[i], a[i])
		}
	}
}

func TestScaleAXPY(t *testing.T) {
	a := []complex128{1, 1i}
	dst := make([]complex128, 2)
	Scale(dst, a, 2i)
	if !approx(dst[0], 2i) || !approx(dst[1], -2) {
		t.Fatalf("Scale = %v", dst)
	}
	AXPY(dst, 1i, a)
	if !approx(dst[0], 3i) || !approx(dst[1], -3) {
		t.Fatalf("AXPY = %v", dst)
	}
}

func TestEnergyPower(t *testing.T) {
	a := []complex128{3 + 4i, 0, 1}
	if got := Energy(a); math.Abs(got-26) > eps {
		t.Fatalf("Energy = %v", got)
	}
	if got := Power(a); math.Abs(got-26.0/3) > eps {
		t.Fatalf("Power = %v", got)
	}
	if Power(nil) != 0 {
		t.Fatal("Power(nil) != 0")
	}
}

func TestRotateMatchesExplicitExponential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 4096
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	phase0, step := units.Radians(0.3), units.RadPerSample(0.001)
	dst := make([]complex128, n)
	Rotate(dst, a, phase0, step)
	for i := 0; i < n; i += 257 {
		want := a[i] * cmplx.Exp(complex(0, float64(phase0)+float64(i)*float64(step)))
		if cmplx.Abs(dst[i]-want) > 1e-8 {
			t.Fatalf("Rotate[%d] = %v, want %v", i, dst[i], want)
		}
	}
}

func TestRotatePreservesEnergy(t *testing.T) {
	a := []complex128{1 + 2i, -1i, 3, 0.5 + 0.5i}
	dst := make([]complex128, len(a))
	Rotate(dst, a, 1.234, 0.777)
	if math.Abs(Energy(dst)-Energy(a)) > 1e-9 {
		t.Fatalf("Rotate changed energy: %v -> %v", Energy(a), Energy(dst))
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-2.5 * math.Pi, -0.5 * math.Pi},
	}
	for _, c := range cases {
		if got := WrapPhase(units.Radians(c.in)); math.Abs(float64(got)-c.want) > 1e-12 {
			t.Errorf("WrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPhaseDiff(t *testing.T) {
	a := Expi(2.0)
	b := Expi(1.5)
	if got := PhaseDiff(a, b); units.Abs(got-0.5) > 1e-12 {
		t.Fatalf("PhaseDiff = %v, want 0.5", got)
	}
	// Wraps across the branch cut.
	a, b = Expi(3.0), Expi(-3.0)
	if got := PhaseDiff(a, b); units.Abs(got-units.Radians(6.0-2*math.Pi)) > 1e-12 {
		t.Fatalf("PhaseDiff wrap = %v", got)
	}
}

func TestMeanPhaseWeightsByMagnitude(t *testing.T) {
	// A huge element at phase 0 dominates a tiny one at phase π/2.
	a := []complex128{100, 1e-6 * Expi(math.Pi/2)}
	if got := MeanPhase(a); units.Abs(got) > 1e-6 {
		t.Fatalf("MeanPhase = %v, want ~0", got)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 10, 25.7} {
		if got := DB(FromDB(units.Decibels(db))); math.Abs(float64(got)-db) > 1e-9 {
			t.Fatalf("DB(FromDB(%v)) = %v", db, got)
		}
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil) != 0")
	}
	if got := MaxAbs([]complex128{1i, 3 + 4i, -2}); math.Abs(got-5) > eps {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := []complex128{1, 2}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestZero(t *testing.T) {
	a := []complex128{1, 2, 3}
	Zero(a)
	for _, v := range a {
		if v != 0 {
			t.Fatalf("Zero left %v", a)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Add(make([]complex128, 1), make([]complex128, 2), make([]complex128, 2))
}

// Property: energy is invariant under conjugation and rotation, additive
// under orthogonal concatenation.
func TestQuickEnergyInvariants(t *testing.T) {
	f := func(re, im []float64) bool {
		n := len(re)
		if len(im) < n {
			n = len(im)
		}
		if n == 0 {
			return true
		}
		a := make([]complex128, n)
		for i := 0; i < n; i++ {
			// Clamp to keep float error bounded.
			a[i] = complex(math.Mod(re[i], 1e3), math.Mod(im[i], 1e3))
		}
		e := Energy(a)
		c := make([]complex128, n)
		Conj(c, a)
		r := make([]complex128, n)
		Rotate(r, a, 0.7, 0.1)
		return math.Abs(Energy(c)-e) < 1e-6*(1+e) && math.Abs(Energy(r)-e) < 1e-6*(1+e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WrapPhase is idempotent and stays in (-π, π].
func TestQuickWrapPhase(t *testing.T) {
	f := func(p float64) bool {
		if math.IsNaN(p) || math.IsInf(p, 0) || math.Abs(p) > 1e6 {
			return true
		}
		w := WrapPhase(units.Radians(p))
		return w > -math.Pi-1e-12 && w <= math.Pi+1e-12 && units.Abs(WrapPhase(w)-w) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRotate(b *testing.B) {
	a := make([]complex128, 8192)
	for i := range a {
		a[i] = complex(float64(i), 1)
	}
	dst := make([]complex128, len(a))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Rotate(dst, a, 0.1, 0.001)
	}
}

func BenchmarkAXPY(b *testing.B) {
	a := make([]complex128, 8192)
	dst := make([]complex128, len(a))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AXPY(dst, 0.5+0.5i, a)
	}
}
