package cmplxs

import (
	"math/cmplx"
	"testing"

	"megamimo/internal/rng"
	"megamimo/internal/units"
)

func randVec(r *rng.Source, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.Uniform(-1, 1), r.Uniform(-1, 1))
	}
	return out
}

func toSplit(a []complex128) Split {
	s := NewSplit(len(a))
	Unpack(s, a)
	return s
}

func fromSplit(s Split) []complex128 {
	out := make([]complex128, s.Len())
	Pack(out, s)
	return out
}

func TestPackUnpackRoundTrip(t *testing.T) {
	a := randVec(rng.New(1), 257)
	got := fromSplit(toSplit(a))
	for i := range a {
		if got[i] != a[i] {
			t.Fatalf("round trip changed element %d: %v != %v", i, got[i], a[i])
		}
	}
}

func TestPackAddAccumulates(t *testing.T) {
	r := rng.New(2)
	a, b := randVec(r, 100), randVec(r, 100)
	dst := append([]complex128(nil), a...)
	PackAdd(dst, toSplit(b))
	for i := range dst {
		if dst[i] != a[i]+b[i] {
			t.Fatalf("element %d: %v != %v", i, dst[i], a[i]+b[i])
		}
	}
}

// TestSplitKernelsMatchAoS checks each SoA kernel against the naive
// complex128 expression, element-exactly: the split layout reorders no
// arithmetic, so results must be bit-identical.
func TestSplitKernelsMatchAoS(t *testing.T) {
	r := rng.New(3)
	const n = 129
	a, b := randVec(r, n), randVec(r, n)
	s := complex(0.7, -0.3)
	sa, sb := toSplit(a), toSplit(b)

	dst := NewSplit(n)
	MulSplit(dst, sa, sb)
	for i, v := range fromSplit(dst) {
		want := complex(real(a[i])*real(b[i])-imag(a[i])*imag(b[i]),
			real(a[i])*imag(b[i])+imag(a[i])*real(b[i]))
		if v != want {
			t.Fatalf("MulSplit[%d]: %v != %v", i, v, want)
		}
	}

	MulConjSplit(dst, sa, sb)
	for i, v := range fromSplit(dst) {
		want := complex(real(a[i])*real(b[i])+imag(a[i])*imag(b[i]),
			imag(a[i])*real(b[i])-real(a[i])*imag(b[i]))
		if v != want {
			t.Fatalf("MulConjSplit[%d]: %v != %v", i, v, want)
		}
	}

	AddSplit(dst, sa, sb)
	for i, v := range fromSplit(dst) {
		if want := a[i] + b[i]; v != want {
			t.Fatalf("AddSplit[%d]: %v != %v", i, v, want)
		}
	}

	ScaleSplit(dst, sa, s)
	for i, v := range fromSplit(dst) {
		want := complex(real(s)*real(a[i])-imag(s)*imag(a[i]),
			real(s)*imag(a[i])+imag(s)*real(a[i]))
		if v != want {
			t.Fatalf("ScaleSplit[%d]: %v != %v", i, v, want)
		}
	}

	Unpack(dst, b)
	AXPYSplit(dst, s, sa)
	for i, v := range fromSplit(dst) {
		// Grouped exactly like the kernel: dst += (s·a) in one expression.
		want := complex(real(b[i])+(real(s)*real(a[i])-imag(s)*imag(a[i])),
			imag(b[i])+(real(s)*imag(a[i])+imag(s)*real(a[i])))
		if v != want {
			t.Fatalf("AXPYSplit[%d]: %v != %v", i, v, want)
		}
	}

	var wantDot complex128
	var accR, accI float64
	for i := range a {
		accR += real(a[i])*real(b[i]) + imag(a[i])*imag(b[i])
		accI += imag(a[i])*real(b[i]) - real(a[i])*imag(b[i])
	}
	wantDot = complex(accR, accI)
	if got := DotSplit(sa, sb); got != wantDot {
		t.Fatalf("DotSplit: %v != %v", got, wantDot)
	}

	var wantE float64
	for _, v := range a {
		wantE += real(v)*real(v) + imag(v)*imag(v)
	}
	if got := EnergySplit(sa); got != wantE {
		t.Fatalf("EnergySplit: %v != %v", got, wantE)
	}
}

// TestRotateSplitMatchesRotate pins the SoA rotation to the AoS kernel:
// same recurrence, same renormalization cadence, so a long vector must
// come out close to identical (the recurrences multiply in different
// representations, so allow a few ULPs).
func TestRotateSplitMatchesRotate(t *testing.T) {
	a := randVec(rng.New(4), 3000) // crosses the 1024-sample renorm twice
	const phase0, step = units.Radians(0.37), units.RadPerSample(0.0021)
	want := make([]complex128, len(a))
	Rotate(want, a, phase0, step)
	dst := NewSplit(len(a))
	RotateSplit(dst, toSplit(a), phase0, step)
	for i, v := range fromSplit(dst) {
		if cmplx.Abs(v-want[i]) > 1e-12 {
			t.Fatalf("RotateSplit[%d]: %v != %v", i, v, want[i])
		}
	}
}

// TestRotateAXPYMatchesRotateThenAdd pins the fused kernel to its
// two-pass equivalent.
func TestRotateAXPYMatchesRotateThenAdd(t *testing.T) {
	r := rng.New(5)
	a, base := randVec(r, 2000), randVec(r, 2000)
	const phase0, step = units.Radians(-1.1), units.RadPerSample(0.00037)
	rotated := make([]complex128, len(a))
	Rotate(rotated, a, phase0, step)
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = base[i] + rotated[i]
	}
	got := append([]complex128(nil), base...)
	RotateAXPY(got, toSplit(a), phase0, step)
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("RotateAXPY[%d]: %v != %v", i, got[i], want[i])
		}
	}
}

func TestSplitSliceSharesStorage(t *testing.T) {
	s := NewSplit(10)
	sub := s.Slice(2, 5)
	sub.Re[0], sub.Im[0] = 7, -7
	if s.Re[2] != 7 || s.Im[2] != -7 {
		t.Fatal("Slice copied instead of sharing storage")
	}
	if sub.Len() != 3 {
		t.Fatalf("Slice length %d, want 3", sub.Len())
	}
	s.Zero()
	if sub.Re[0] != 0 || sub.Im[0] != 0 {
		t.Fatal("Zero missed shared storage")
	}
}
