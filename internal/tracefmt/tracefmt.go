// Package tracefmt serializes the core flight recorder's structured trace
// (core.TraceEvent) to its two on-disk formats — deterministic JSONL and
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing) — and
// provides the trace-analysis primitives behind cmd/megamimo-trace:
// per-kind summaries, per-slave phase-synchronization statistics, span
// durations, and anomaly detection against the paper's budgets.
//
// The serialized schema is versioned (SchemaVersion); the field set is
// frozen by the tracefields lint analyzer, so a reader of version-1 files
// never meets surprise attributes.
package tracefmt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"megamimo/internal/core"
	"megamimo/internal/units"
)

// SchemaVersion is the trace-format version both exporters stamp and both
// readers require. Bump it together with core.TraceAttrs and the
// tracefields analyzer's schema table.
const SchemaVersion = 1

// schemaName identifies the format in headers.
const schemaName = "megamimo-trace"

// Meta describes the run a trace came from — everything the analyzers
// need to convert sample times and CFO estimates into physical units.
type Meta struct {
	// SampleRate is the ether sample rate (Hz); ether timestamps divide by
	// it to give seconds.
	SampleRate units.Hertz
	// CarrierHz is the RF carrier, used to express CFO estimates in ppm.
	CarrierHz units.Hertz
	// APs and Clients size the network (used for track naming).
	APs, Clients int
	// Sync names the synchronization strategy the run used ("" means the
	// default header scheme). Additive in schema v1: old readers ignore it,
	// old files simply omit it.
	Sync string
	// Overflowed counts events the recorder's ring displaced before export;
	// when non-zero the trace is truncated at the head. Additive in v1.
	Overflowed int64
	// OverflowAt is the ether time of the event whose arrival caused the
	// first displacement (meaningful only when Overflowed > 0), so a
	// truncated trace states when its head was lost. Additive in v1.
	OverflowAt int64
}

// jsonEvent is the wire form of one event: flat, fixed field order
// (declaration order drives encoding/json), zero-valued attributes
// omitted. One marshaled jsonEvent per JSONL line; the same struct rides
// in the Chrome events' args, which is what makes the Chrome file
// losslessly re-readable.
type jsonEvent struct {
	Seq             int64              `json:"seq"`
	At              int64              `json:"at"`
	Kind            string             `json:"kind"`
	Ph              string             `json:"ph"`
	Span            int64              `json:"span,omitempty"`
	AP              int                `json:"ap,omitempty"`
	Client          int                `json:"client,omitempty"`
	Stream          int                `json:"stream,omitempty"`
	Pkt             int64              `json:"pkt,omitempty"`
	QueueDepth      int                `json:"queue_depth,omitempty"`
	Bits            int64              `json:"bits,omitempty"`
	PhaseErrRad     units.Radians      `json:"phase_err_rad,omitempty"`
	CFORadPerSample units.RadPerSample `json:"cfo_rad_per_sample,omitempty"`
	EVMSNRdB        units.Decibels     `json:"evm_snr_db,omitempty"`
	MinSubSNRdB     units.Decibels     `json:"min_sub_snr_db,omitempty"`
	NullDepthDB     units.Decibels     `json:"null_depth_db,omitempty"`
	OK              bool               `json:"ok,omitempty"`
	Cause           string             `json:"cause,omitempty"`
	Msg             string             `json:"msg,omitempty"`
}

// header is the first JSONL line (and the Chrome file's otherData).
type header struct {
	Schema     string      `json:"schema"`
	Version    int         `json:"version"`
	SampleRate units.Hertz `json:"sample_rate"`
	CarrierHz  units.Hertz `json:"carrier_hz"`
	APs        int         `json:"aps"`
	Clients    int         `json:"clients"`
	Sync       string      `json:"sync,omitempty"`
	Overflowed int64       `json:"overflowed,omitempty"`
	OverflowAt int64       `json:"overflow_at,omitempty"`
}

// headerFor builds the wire header for a run's Meta.
func headerFor(meta Meta) header {
	return header{
		Schema:     schemaName,
		Version:    SchemaVersion,
		SampleRate: meta.SampleRate,
		CarrierHz:  meta.CarrierHz,
		APs:        meta.APs,
		Clients:    meta.Clients,
		Sync:       meta.Sync,
		Overflowed: meta.Overflowed,
		OverflowAt: meta.OverflowAt,
	}
}

// metaFrom recovers the Meta from a validated wire header.
func metaFrom(h header) Meta {
	return Meta{
		SampleRate: h.SampleRate,
		CarrierHz:  h.CarrierHz,
		APs:        h.APs,
		Clients:    h.Clients,
		Sync:       h.Sync,
		Overflowed: h.Overflowed,
		OverflowAt: h.OverflowAt,
	}
}

// MarshalHeader renders the Meta as the one-line JSONL header, trailing
// newline included — byte-identical to the first line WriteJSONL emits.
func MarshalHeader(meta Meta) ([]byte, error) {
	b, err := json.Marshal(headerFor(meta))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// MarshalEvent renders one event as its JSONL line, trailing newline
// included — byte-identical to the corresponding WriteJSONL line. The
// kind is validated against the closed vocabulary.
func MarshalEvent(e core.TraceEvent) ([]byte, error) {
	if !core.ValidKind(e.Kind) {
		return nil, fmt.Errorf("tracefmt: event kind %q outside the vocabulary", e.Kind)
	}
	b, err := json.Marshal(toJSON(e))
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// phString maps the event phase byte to its wire form.
func phString(ph byte) string {
	switch ph {
	case core.PhBegin:
		return "B"
	case core.PhEnd:
		return "E"
	default:
		return "i"
	}
}

// phByte is the inverse of phString.
func phByte(s string) (byte, error) {
	switch s {
	case "B":
		return core.PhBegin, nil
	case "E":
		return core.PhEnd, nil
	case "i", "":
		return core.PhInstant, nil
	}
	return 0, fmt.Errorf("tracefmt: unknown event phase %q", s)
}

// toJSON flattens one event to its wire form.
func toJSON(e core.TraceEvent) jsonEvent {
	return jsonEvent{
		Seq:             e.Seq,
		At:              e.At,
		Kind:            e.Kind,
		Ph:              phString(e.Ph),
		Span:            e.Span,
		AP:              e.Attrs.AP,
		Client:          e.Attrs.Client,
		Stream:          e.Attrs.Stream,
		Pkt:             e.Attrs.Pkt,
		QueueDepth:      e.Attrs.QueueDepth,
		Bits:            e.Attrs.Bits,
		PhaseErrRad:     e.Attrs.PhaseErrRad,
		CFORadPerSample: e.Attrs.CFORadPerSample,
		EVMSNRdB:        e.Attrs.EVMSNRdB,
		MinSubSNRdB:     e.Attrs.MinSubSNRdB,
		NullDepthDB:     e.Attrs.NullDepthDB,
		OK:              e.Attrs.OK,
		Cause:           e.Attrs.Cause,
		Msg:             e.Msg,
	}
}

// fromJSON rebuilds the core event, validating its kind against the
// closed vocabulary.
func fromJSON(j jsonEvent) (core.TraceEvent, error) {
	if !core.ValidKind(j.Kind) {
		return core.TraceEvent{}, fmt.Errorf("tracefmt: kind %q outside the trace vocabulary", j.Kind)
	}
	ph, err := phByte(j.Ph)
	if err != nil {
		return core.TraceEvent{}, err
	}
	return core.TraceEvent{
		Seq:  j.Seq,
		At:   j.At,
		Kind: j.Kind,
		Ph:   ph,
		Span: j.Span,
		Attrs: core.TraceAttrs{
			AP:              j.AP,
			Client:          j.Client,
			Stream:          j.Stream,
			Pkt:             j.Pkt,
			QueueDepth:      j.QueueDepth,
			Bits:            j.Bits,
			PhaseErrRad:     j.PhaseErrRad,
			CFORadPerSample: j.CFORadPerSample,
			EVMSNRdB:        j.EVMSNRdB,
			MinSubSNRdB:     j.MinSubSNRdB,
			NullDepthDB:     j.NullDepthDB,
			OK:              j.OK,
			Cause:           j.Cause,
		},
		Msg: j.Msg,
	}, nil
}

// WriteJSONL writes the versioned header line followed by one event per
// line. The output is a pure function of (meta, events): field order is
// fixed, floats use Go's shortest representation, nothing depends on map
// iteration — so identical traces serialize byte-identically.
func WriteJSONL(w io.Writer, meta Meta, events []core.TraceEvent) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerFor(meta)); err != nil {
		return err
	}
	for i := range events {
		if !core.ValidKind(events[i].Kind) {
			return fmt.Errorf("tracefmt: event %d has kind %q outside the vocabulary", i, events[i].Kind)
		}
		if err := enc.Encode(toJSON(events[i])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace, checking the header's schema/version
// and every event's kind.
func ReadJSONL(r io.Reader) (Meta, []core.TraceEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Meta{}, nil, err
		}
		return Meta{}, nil, fmt.Errorf("tracefmt: empty trace file")
	}
	meta, err := UnmarshalHeader(sc.Bytes())
	if err != nil {
		return Meta{}, nil, err
	}
	var events []core.TraceEvent
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		e, err := UnmarshalEvent(sc.Bytes())
		if err != nil {
			return Meta{}, nil, fmt.Errorf("tracefmt: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return Meta{}, nil, err
	}
	return meta, events, nil
}

// UnmarshalHeader parses one JSONL header line, validating the schema
// name and version — the inverse of MarshalHeader. Line-level parsing is
// what lets a follower consume a trace that is still being written.
func UnmarshalHeader(line []byte) (Meta, error) {
	var h header
	if err := json.Unmarshal(line, &h); err != nil {
		return Meta{}, fmt.Errorf("tracefmt: bad header line: %w", err)
	}
	if h.Schema != schemaName {
		return Meta{}, fmt.Errorf("tracefmt: schema %q, want %q", h.Schema, schemaName)
	}
	if h.Version != SchemaVersion {
		return Meta{}, fmt.Errorf("tracefmt: schema version %d, reader supports %d", h.Version, SchemaVersion)
	}
	return metaFrom(h), nil
}

// UnmarshalEvent parses one JSONL event line, validating its kind — the
// inverse of MarshalEvent.
func UnmarshalEvent(line []byte) (core.TraceEvent, error) {
	var j jsonEvent
	if err := json.Unmarshal(line, &j); err != nil {
		return core.TraceEvent{}, err
	}
	return fromJSON(j)
}

// Format names a trace serialization.
type Format string

// The supported trace formats.
const (
	FormatJSONL  Format = "jsonl"
	FormatChrome Format = "chrome"
)

// ParseFormat validates a -trace-format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatJSONL, FormatChrome:
		return Format(s), nil
	}
	return "", fmt.Errorf("tracefmt: unknown format %q (want jsonl or chrome)", s)
}

// Write serializes in the given format.
func Write(w io.Writer, format Format, meta Meta, events []core.TraceEvent) error {
	switch format {
	case FormatChrome:
		return WriteChrome(w, meta, events)
	default:
		return WriteJSONL(w, meta, events)
	}
}

// WriteFile serializes a trace to path.
func WriteFile(path string, format Format, meta Meta, events []core.TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, format, meta, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a trace in either format, sniffing which one it is: a
// Chrome file is one JSON object containing "traceEvents"; a JSONL file
// begins with the schema header line.
func ReadFile(path string) (Meta, []core.TraceEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, err
	}
	head := data
	if len(head) > 256 {
		head = head[:256]
	}
	if bytes.Contains(head, []byte(`"traceEvents"`)) {
		return ReadChrome(bytes.NewReader(data))
	}
	return ReadJSONL(bytes.NewReader(data))
}
