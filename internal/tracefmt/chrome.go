package tracefmt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"megamimo/internal/core"
	"megamimo/internal/units"
)

// Chrome trace-event export: one process ("megamimo"), one thread track
// per AP and per client plus a "network" track for protocol-wide spans,
// microsecond timestamps derived from the ether sample clock. The file
// loads directly in Perfetto or chrome://tracing; every event's full
// attribute block rides in args, so ReadChrome recovers the exact trace.

// Thread-track numbering: tid 0 is the network-wide track, APs are
// 1+index, clients are clientTIDBase+index.
const clientTIDBase = 1001

// eventTID routes an event to its track. Per-node telemetry lands on the
// node's own track; span kinds (measure, joint-tx, round, traffic) stay
// on the network track so their begin/end pairs nest on one timeline.
func eventTID(e core.TraceEvent) int {
	switch e.Kind {
	case core.KindSyncHeader, core.KindSlaveRatio:
		return 1 + e.Attrs.AP
	case core.KindDecode, core.KindNullDepth, core.KindDemand,
		core.KindRetransmit, core.KindFeedback:
		return clientTIDBase + e.Attrs.Client
	default:
		return 0
	}
}

// tidName labels a track for the Perfetto sidebar.
func tidName(tid int) string {
	switch {
	case tid == 0:
		return "network"
	case tid >= clientTIDBase:
		return fmt.Sprintf("client %d", tid-clientTIDBase)
	default:
		return fmt.Sprintf("AP %d", tid-1)
	}
}

// chromeEvent is one trace-event object; Args is *jsonEvent for protocol
// events and a name payload for "M" metadata records.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
	Args any     `json:"args,omitempty"`
}

// chromeTrace is the file's top-level object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       header        `json:"otherData"`
}

// metaName is the args payload of thread_name/process_name records.
type metaName struct {
	Name string `json:"name"`
}

// WriteChrome serializes the trace in Chrome trace-event format. Output
// is deterministic: metadata tracks sorted by tid, then events in input
// (sequence) order.
func WriteChrome(w io.Writer, meta Meta, events []core.TraceEvent) error {
	ts := func(at int64) float64 {
		if meta.SampleRate > 0 {
			return units.Duration(units.Ticks(at), meta.SampleRate) * 1e6
		}
		return float64(at)
	}
	tids := map[int]bool{0: true}
	for _, e := range events {
		if !core.ValidKind(e.Kind) {
			return fmt.Errorf("tracefmt: event kind %q outside the vocabulary", e.Kind)
		}
		tids[eventTID(e)] = true
	}
	sorted := make([]int, 0, len(tids))
	for tid := range tids {
		sorted = append(sorted, tid)
	}
	sort.Ints(sorted)

	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       headerFor(meta),
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Args: metaName{Name: "megamimo"},
	})
	for _, tid := range sorted {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid, Args: metaName{Name: tidName(tid)},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Kind,
			Cat:  "protocol",
			Ph:   phString(e.Ph),
			Ts:   ts(e.At),
			Pid:  0,
			Tid:  eventTID(e),
		}
		if e.Ph != core.PhBegin && e.Ph != core.PhEnd {
			ce.S = "t" // thread-scoped instant
		}
		j := toJSON(e)
		ce.Args = &j
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadChrome recovers the trace from a Chrome-format file written by
// WriteChrome, using the full event copies carried in args.
func ReadChrome(r io.Reader) (Meta, []core.TraceEvent, error) {
	var raw struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		OtherData header `json:"otherData"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return Meta{}, nil, fmt.Errorf("tracefmt: chrome trace: %w", err)
	}
	if raw.OtherData.Schema != schemaName {
		return Meta{}, nil, fmt.Errorf("tracefmt: chrome otherData schema %q, want %q", raw.OtherData.Schema, schemaName)
	}
	if raw.OtherData.Version != SchemaVersion {
		return Meta{}, nil, fmt.Errorf("tracefmt: schema version %d, reader supports %d", raw.OtherData.Version, SchemaVersion)
	}
	meta := metaFrom(raw.OtherData)
	var events []core.TraceEvent
	for i, ce := range raw.TraceEvents {
		if ce.Ph == "M" {
			continue
		}
		var j jsonEvent
		if err := json.Unmarshal(ce.Args, &j); err != nil {
			return Meta{}, nil, fmt.Errorf("tracefmt: chrome event %d args: %w", i, err)
		}
		e, err := fromJSON(j)
		if err != nil {
			return Meta{}, nil, fmt.Errorf("tracefmt: chrome event %d: %w", i, err)
		}
		events = append(events, e)
	}
	sort.Slice(events, func(a, b int) bool { return events[a].Seq < events[b].Seq })
	return meta, events, nil
}
