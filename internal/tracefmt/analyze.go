package tracefmt

import (
	"math"
	"slices"
	"sort"

	"megamimo/internal/core"
	"megamimo/internal/units"
)

// Analysis primitives behind cmd/megamimo-trace. Everything here is a
// pure, deterministic function of (meta, events): results come back in
// sorted order, never map order.

// KindCount is one vocabulary entry's population.
type KindCount struct {
	Kind  string
	Count int
}

// Summary is the whole-trace overview.
type Summary struct {
	Events     int
	Spans      int // completed spans (matched begin/end pairs)
	OpenSpans  int // begins without a matching end (truncated recording)
	ByKind     []KindCount
	AtMin      int64
	AtMax      int64
	DurationMs float64 // (AtMax−AtMin)/SampleRate, 0 when no rate known
}

// Summarize computes the overview.
func Summarize(meta Meta, events []core.TraceEvent) *Summary {
	s := &Summary{Events: len(events)}
	counts := map[string]int{}
	open := map[int64]bool{}
	first := true
	for _, e := range events {
		counts[e.Kind]++
		switch e.Ph {
		case core.PhBegin:
			open[e.Span] = true
		case core.PhEnd:
			if open[e.Span] {
				delete(open, e.Span)
				s.Spans++
			}
		}
		if first || e.At < s.AtMin {
			s.AtMin = e.At
		}
		if first || e.At > s.AtMax {
			s.AtMax = e.At
		}
		first = false
	}
	s.OpenSpans = len(open)
	for _, k := range core.Kinds() {
		if counts[k] > 0 {
			s.ByKind = append(s.ByKind, KindCount{Kind: k, Count: counts[k]})
		}
	}
	if meta.SampleRate > 0 && !first {
		s.DurationMs = units.Duration(units.Ticks(s.AtMax-s.AtMin), meta.SampleRate) * 1e3
	}
	return s
}

// PhaseStat aggregates one slave AP's phase-synchronization telemetry
// from its slave-ratio events.
type PhaseStat struct {
	AP int
	N  int
	// Absolute residual phase error (innovation vs. the long-term CFO
	// prediction), radians.
	MedianAbsRad, P95AbsRad, MaxAbsRad units.Radians
	// CFORadPerSample is the mean CFO estimate toward the lead.
	CFORadPerSample units.RadPerSample
	// RelPPM expresses that CFO as a relative carrier offset in parts per
	// million (needs meta.SampleRate and meta.CarrierHz; 0 otherwise).
	RelPPM units.PPM
}

// PhaseStats folds slave-ratio events per AP, sorted by AP index.
func PhaseStats(meta Meta, events []core.TraceEvent) []PhaseStat {
	resid := map[int][]units.Radians{}
	cfoSum := map[int]units.RadPerSample{}
	for _, e := range events {
		if e.Kind != core.KindSlaveRatio {
			continue
		}
		ap := e.Attrs.AP
		resid[ap] = append(resid[ap], units.Abs(e.Attrs.PhaseErrRad))
		cfoSum[ap] += e.Attrs.CFORadPerSample
	}
	aps := make([]int, 0, len(resid))
	for ap := range resid {
		aps = append(aps, ap)
	}
	sort.Ints(aps)
	out := make([]PhaseStat, 0, len(aps))
	for _, ap := range aps {
		out = append(out, phaseStatFor(meta, ap, resid[ap], cfoSum[ap]))
	}
	return out
}

// phaseStatFor folds one AP's accumulated telemetry into its PhaseStat;
// shared between the batch PhaseStats pass and the incremental Monitor.
func phaseStatFor(meta Meta, ap int, rs []units.Radians, cfoSum units.RadPerSample) PhaseStat {
	st := PhaseStat{
		AP:              ap,
		N:               len(rs),
		MedianAbsRad:    quantile(rs, 0.5),
		P95AbsRad:       quantile(rs, 0.95),
		MaxAbsRad:       quantile(rs, 1),
		CFORadPerSample: units.Div(cfoSum, float64(len(rs))),
	}
	if meta.SampleRate > 0 && meta.CarrierHz > 0 {
		// cfo rad/sample → Δf = cfo·rate/2π; ppm = Δf/carrier·1e6.
		st.RelPPM = units.RadPerSampleToPPM(st.CFORadPerSample, meta.CarrierHz, meta.SampleRate)
	}
	return st
}

// SpanStat aggregates completed spans of one kind.
type SpanStat struct {
	Kind                   string
	N                      int
	MedianMs, P95Ms, MaxMs float64
}

// SpanStats matches begin/end pairs by span ID and reports duration
// distributions per kind, ordered by the vocabulary.
func SpanStats(meta Meta, events []core.TraceEvent) []SpanStat {
	type openSpan struct {
		kind string
		at   int64
	}
	open := map[int64]openSpan{}
	durs := map[string][]float64{}
	toMs := func(samples int64) float64 {
		if meta.SampleRate > 0 {
			return units.Duration(units.Ticks(samples), meta.SampleRate) * 1e3
		}
		return float64(samples)
	}
	for _, e := range events {
		switch e.Ph {
		case core.PhBegin:
			open[e.Span] = openSpan{kind: e.Kind, at: e.At}
		case core.PhEnd:
			if b, ok := open[e.Span]; ok && b.kind == e.Kind {
				delete(open, e.Span)
				durs[e.Kind] = append(durs[e.Kind], toMs(e.At-b.at))
			}
		}
	}
	var out []SpanStat
	for _, k := range core.Kinds() {
		ds := durs[k]
		if len(ds) == 0 {
			continue
		}
		out = append(out, SpanStat{
			Kind:     k,
			N:        len(ds),
			MedianMs: quantile(ds, 0.5),
			P95Ms:    quantile(ds, 0.95),
			MaxMs:    quantile(ds, 1),
		})
	}
	return out
}

// Budget holds the anomaly thresholds; zero fields take the defaults.
type Budget struct {
	// PhaseBudgetRad is the paper's nulling budget on residual phase
	// error: π/18 rad (10°) keeps the null within ~1 dB of ideal (§11.1b).
	PhaseBudgetRad units.Radians
	// MaxRelPPM bounds the slave↔lead relative carrier offset. 802.11
	// mandates ±units.Dot11MaxPPM (20 ppm) per oscillator, so a compliant
	// pair stays within twice that relative.
	MaxRelPPM units.PPM
	// NullDegradeDB flags null-depth events this far below the run median.
	NullDegradeDB units.Decibels
	// EVMDegradeDB flags decode events this far below their stream's
	// median error-vector SNR.
	EVMDegradeDB units.Decibels
}

// DefaultBudget returns the paper-derived thresholds.
func DefaultBudget() Budget {
	return Budget{
		PhaseBudgetRad: math.Pi / 18,
		MaxRelPPM:      2 * units.Dot11MaxPPM,
		NullDegradeDB:  3,
		EVMDegradeDB:   6,
	}
}

// withDefaults fills zero fields.
func (b Budget) withDefaults() Budget {
	d := DefaultBudget()
	if b.PhaseBudgetRad <= 0 {
		b.PhaseBudgetRad = d.PhaseBudgetRad
	}
	if b.MaxRelPPM <= 0 {
		b.MaxRelPPM = d.MaxRelPPM
	}
	if b.NullDegradeDB <= 0 {
		b.NullDegradeDB = d.NullDegradeDB
	}
	if b.EVMDegradeDB <= 0 {
		b.EVMDegradeDB = d.EVMDegradeDB
	}
	return b
}

// Anomaly is one budget violation.
type Anomaly struct {
	// Check names the rule: phase-budget, cfo-mandate, null-degradation,
	// evm-degradation, decode-failure, packet-failure.
	Check string
	// AP / Stream locate the offender (−1 when not applicable).
	AP, Stream int
	// Seq is the offending event (−1 for per-AP aggregates).
	Seq int64
	// Value and Threshold quantify the violation.
	Value, Threshold float64
	// Msg is the human-readable description.
	Msg string
}

// String renders one anomaly.
func (a Anomaly) String() string { return a.Msg }

// FindAnomalies checks the trace against the budgets:
//
//   - phase-budget: a slave AP whose median |residual phase error| exceeds
//     the π/18 nulling budget — the sync loop is not holding alignment.
//   - cfo-mandate: a slave AP whose mean CFO toward the lead exceeds the
//     802.11 ±20 ppm oscillator mandate (40 ppm relative).
//   - null-degradation: a null-depth measurement more than NullDegradeDB
//     below the run median.
//   - evm-degradation: a decode more than EVMDegradeDB below its stream's
//     median error-vector SNR.
//   - decode-failure / packet-failure: failed decodes and packets dropped
//     at max attempts.
//
// Results are ordered: per-AP checks by AP, then per-event checks by
// sequence number.
//
// FindAnomalies is the batch face of the incremental Monitor: it feeds
// the events through a monitor (live evaluation off) and returns its
// Anomalies, so the streaming and post-hoc paths cannot drift apart.
func FindAnomalies(meta Meta, events []core.TraceEvent, b Budget) []Anomaly {
	m := NewMonitor(meta, b, 0)
	for _, e := range events {
		m.Observe(e)
	}
	return m.Anomalies()
}

// quantile returns the q-quantile (0..1) of xs by nearest-rank on a
// sorted copy; 0 for empty input. Generic over dimensioned float64
// quantities so per-unit telemetry keeps its type through aggregation.
func quantile[T ~float64](xs []T, q float64) T {
	if len(xs) == 0 {
		return 0
	}
	s := make([]T, len(xs))
	copy(s, xs)
	slices.Sort(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
