package tracefmt

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"megamimo/internal/core"
	"megamimo/internal/metrics"
)

// Streaming trace pipeline: StreamSink serializes events to JSONL as they
// are recorded (instead of waiting for the end-of-run ring export), and
// StreamMerge reproduces core.MergeTraces' deterministic cell ordering
// online, so a streamed multi-cell trace is byte-identical to the buffered
// one at any worker count.

// SinkPolicy selects what a full StreamSink queue does to new events.
type SinkPolicy int

const (
	// SinkBlock makes the emitting goroutine wait for queue space: lossless
	// and deterministic (the default — required for byte-identity with the
	// buffered export), at the price of coupling the simulation to the
	// writer's throughput.
	SinkBlock SinkPolicy = iota
	// SinkDropOldest evicts the oldest queued line to admit the new one,
	// counting the loss (Dropped, trace_sink_dropped_total): the simulation
	// never stalls, the stream keeps the newest events, but it is no longer
	// gap-free.
	SinkDropOldest
)

// String returns the policy's flag spelling.
func (p SinkPolicy) String() string {
	if p == SinkDropOldest {
		return "drop-oldest"
	}
	return "block"
}

// ParseSinkPolicy validates a -sink-policy flag value.
func ParseSinkPolicy(s string) (SinkPolicy, error) {
	switch s {
	case "block", "":
		return SinkBlock, nil
	case "drop-oldest":
		return SinkDropOldest, nil
	}
	return 0, fmt.Errorf("tracefmt: unknown sink policy %q (want block or drop-oldest)", s)
}

// StreamOptions configures a StreamSink's backpressure behavior.
type StreamOptions struct {
	// Policy is the full-queue behavior (default SinkBlock).
	Policy SinkPolicy
	// Queue bounds the number of encoded lines awaiting the writer
	// (0 = 4096).
	Queue int
	// Dropped, when set, is incremented once per line lost to
	// SinkDropOldest eviction (the trace_sink_dropped_total metric).
	Dropped *metrics.Counter
}

// StreamSink is a core.TraceSink that streams events as JSONL through a
// bounded queue serviced by one writer goroutine. The header line is
// written synchronously at construction, so the stream is a valid trace
// file from its first byte; each event line is encoded by MarshalEvent and
// therefore byte-identical to what WriteJSONL would emit.
//
// ConsumeTrace is called under the owning tracer's mutex; the sink only
// encodes and enqueues there (and, under SinkBlock, waits for space) —
// the actual I/O happens on the writer goroutine. A StreamSink is safe
// for concurrent producers (e.g. behind a StreamMerge it is driven by
// one goroutine; attached directly to several tracers it still works).
type StreamSink struct {
	mu      sync.Mutex
	space   sync.Cond // signaled when queue space frees up
	work    sync.Cond // signaled when lines or close arrive
	queue   [][]byte
	policy  SinkPolicy
	limit   int
	dropped int64
	dropCtr *metrics.Counter
	err     error
	closed  bool
	done    chan struct{}
	bw      *bufio.Writer
}

// NewStreamSink writes the header line for meta and starts the writer
// goroutine. Call Close to flush and stop it.
func NewStreamSink(w io.Writer, meta Meta, opts StreamOptions) (*StreamSink, error) {
	line, err := MarshalHeader(meta)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(line); err != nil {
		return nil, err
	}
	limit := opts.Queue
	if limit <= 0 {
		limit = 4096
	}
	s := &StreamSink{
		policy:  opts.Policy,
		limit:   limit,
		dropCtr: opts.Dropped,
		done:    make(chan struct{}),
		bw:      bw,
	}
	s.space.L = &s.mu
	s.work.L = &s.mu
	go s.writeLoop()
	return s, nil
}

// ConsumeTrace encodes one event and enqueues its line, applying the
// backpressure policy when the queue is full. Events after Close, after a
// write error, or with an invalid kind are discarded (invalid kinds also
// record the error; the tracer never hands a sink one).
func (s *StreamSink) ConsumeTrace(e core.TraceEvent) {
	line, err := MarshalEvent(e)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	if s.closed || s.err != nil {
		return
	}
	for len(s.queue) >= s.limit {
		if s.policy == SinkDropOldest {
			s.queue = s.queue[1:]
			s.dropped++
			if s.dropCtr != nil {
				s.dropCtr.Inc()
			}
			break
		}
		s.space.Wait()
		if s.closed || s.err != nil {
			return
		}
	}
	s.queue = append(s.queue, line)
	s.work.Signal()
}

// writeLoop drains the queue onto the buffered writer until Close.
func (s *StreamSink) writeLoop() {
	defer close(s.done)
	s.mu.Lock()
	for {
		for len(s.queue) == 0 && !s.closed {
			s.work.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		batch := s.queue
		s.queue = nil
		s.space.Broadcast()
		s.mu.Unlock()
		var werr error
		for _, line := range batch {
			if _, werr = s.bw.Write(line); werr != nil {
				break
			}
		}
		s.mu.Lock()
		if werr != nil && s.err == nil {
			s.err = werr
			s.space.Broadcast() // unblock producers; they now discard
		}
	}
}

// Close stops the writer after draining the queue, flushes, and returns
// the first error the stream hit (encode, write, or flush).
func (s *StreamSink) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.work.Signal()
		s.space.Broadcast()
	}
	s.mu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if ferr := s.bw.Flush(); ferr != nil && s.err == nil {
		s.err = ferr
	}
	return s.err
}

// Dropped returns the number of lines evicted under SinkDropOldest.
func (s *StreamSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Err returns the first error the stream hit (nil while healthy).
func (s *StreamSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// StreamMerge multiplexes per-cell event streams into one downstream sink
// in exactly the order core.MergeTraces would produce: cells in index
// order, seq renumbered from 0, span IDs offset by the running per-cell
// maximum. The frontier cell's events pass through live; later cells
// buffer until every earlier cell has closed — so with workers=1 nothing
// ever buffers, and with workers=N the downstream bytes are identical.
type StreamMerge struct {
	mu       sync.Mutex
	out      core.TraceSink
	cells    []mergeCell
	frontier int
	seq      int64
	spanBase int64
}

// mergeCell is one cell's merge state.
type mergeCell struct {
	buf     []core.TraceEvent
	closed  bool
	maxSpan int64 // largest pre-offset span ID forwarded so far
}

// NewStreamMerge builds a merge over `cells` input streams feeding out.
func NewStreamMerge(out core.TraceSink, cells int) *StreamMerge {
	return &StreamMerge{out: out, cells: make([]mergeCell, cells)}
}

// Cell returns the sink for cell index i; attach it to that cell's tracer
// (Tracer.SetSink). Events sent to an out-of-range or closed cell are
// discarded.
func (m *StreamMerge) Cell(i int) core.TraceSink { return cellSink{m: m, i: i} }

// cellSink tags incoming events with their cell index.
type cellSink struct {
	m *StreamMerge
	i int
}

func (c cellSink) ConsumeTrace(e core.TraceEvent) { c.m.consume(c.i, e) }

// consume routes one event: forward live at the frontier, buffer behind it.
func (m *StreamMerge) consume(i int, e core.TraceEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.cells) || m.cells[i].closed {
		return
	}
	if i == m.frontier {
		m.forwardLocked(i, e)
		return
	}
	m.cells[i].buf = append(m.cells[i].buf, e)
}

// forwardLocked renumbers one event exactly as core.MergeTraces does and
// hands it downstream.
func (m *StreamMerge) forwardLocked(i int, e core.TraceEvent) {
	if e.Span > m.cells[i].maxSpan {
		m.cells[i].maxSpan = e.Span
	}
	e.Seq = m.seq
	m.seq++
	if e.Span > 0 {
		e.Span += m.spanBase
	}
	m.out.ConsumeTrace(e)
}

// CloseCell declares cell i complete. When the frontier closes, the merge
// advances: each already-closed successor's buffer is flushed downstream
// in order. Close every cell (any order) to drain the merge completely.
func (m *StreamMerge) CloseCell(i int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.cells) || m.cells[i].closed {
		return
	}
	m.cells[i].closed = true
	for m.frontier < len(m.cells) && m.cells[m.frontier].closed {
		m.spanBase += m.cells[m.frontier].maxSpan
		m.frontier++
		if m.frontier < len(m.cells) {
			f := m.frontier
			for _, e := range m.cells[f].buf {
				m.forwardLocked(f, e)
			}
			m.cells[f].buf = nil
		}
	}
}
