package tracefmt

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"megamimo/internal/core"
	"megamimo/internal/metrics"
)

// memSink collects events handed to a core.TraceSink for assertions.
type memSink struct {
	mu  sync.Mutex
	evs []core.TraceEvent
}

func (m *memSink) ConsumeTrace(e core.TraceEvent) {
	m.mu.Lock()
	m.evs = append(m.evs, e)
	m.mu.Unlock()
}

func (m *memSink) events() []core.TraceEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]core.TraceEvent(nil), m.evs...)
}

// TestStreamSinkMatchesWriteJSONL is the byte-identity core: streaming the
// sample events through a StreamSink produces exactly the bytes WriteJSONL
// produces for the same (meta, events).
func TestStreamSinkMatchesWriteJSONL(t *testing.T) {
	meta, events := sampleMeta(), sampleEvents()
	var want bytes.Buffer
	if err := WriteJSONL(&want, meta, events); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	s, err := NewStreamSink(&got, meta, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		s.ConsumeTrace(e)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("streamed JSONL differs from buffered WriteJSONL:\nstream: %q\nbuffer: %q",
			got.String(), want.String())
	}
	if s.Dropped() != 0 {
		t.Fatalf("block-policy sink dropped %d lines", s.Dropped())
	}
}

// TestStreamSinkHeaderFirst checks the stream is a valid trace file from
// its first byte: header precedes any event and round-trips the Meta.
func TestStreamSinkHeaderFirst(t *testing.T) {
	var buf bytes.Buffer
	meta := Meta{SampleRate: 10e6, CarrierHz: 2.437e9, APs: 3, Clients: 3,
		Sync: "beamsync", Overflowed: 5, OverflowAt: 1234}
	s, err := NewStreamSink(&buf, meta, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.ConsumeTrace(core.TraceEvent{Seq: 0, At: 1, Kind: core.KindTraffic, Ph: core.PhInstant})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	gotMeta, evs, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v want %+v", gotMeta, meta)
	}
	if len(evs) != 1 || evs[0].Kind != core.KindTraffic {
		t.Fatalf("events round-trip: %+v", evs)
	}
}

// TestStreamSinkDropOldest checks the lossy policy: a full queue evicts
// the oldest line, counts it, and keeps the newest events.
func TestStreamSinkDropOldest(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("trace_sink_dropped_total")
	blocked := make(chan struct{})
	var buf bytes.Buffer
	bw := &gatedWriter{w: &buf, gate: blocked}
	s, err := NewStreamSink(bw, Meta{}, StreamOptions{
		Policy: SinkDropOldest, Queue: 2, Dropped: ctr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The writer goroutine is blocked on the gate, so lines pile up in the
	// queue: capacity 2 admits the first batch, then evictions begin.
	for i := 0; i < 6; i++ {
		s.ConsumeTrace(core.TraceEvent{Seq: int64(i), At: int64(i), Kind: core.KindTraffic})
	}
	close(blocked)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Dropped() == 0 {
		t.Fatal("drop-oldest under a stalled writer dropped nothing")
	}
	if ctr.Value() != s.Dropped() {
		t.Fatalf("dropped counter %d != sink count %d", ctr.Value(), s.Dropped())
	}
	_, evs, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events survived")
	}
	if last := evs[len(evs)-1].Seq; last != 5 {
		t.Fatalf("newest event lost: last seq %d, want 5", last)
	}
}

// gatedWriter blocks its first Write until gate closes, simulating a slow
// downstream consumer.
type gatedWriter struct {
	w    *bytes.Buffer
	gate chan struct{}
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.gate
	return g.w.Write(p)
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestStreamSinkWriteError checks a failing writer surfaces via Err/Close
// and does not wedge blocked producers.
func TestStreamSinkWriteError(t *testing.T) {
	s, err := NewStreamSink(errWriter{}, Meta{}, StreamOptions{Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.ConsumeTrace(core.TraceEvent{Seq: int64(i), Kind: core.KindTraffic})
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close returned nil after write errors")
	}
}

// TestStreamMergeMatchesMergeTraces feeds three cells' events through a
// StreamMerge in an adversarial interleaving (cells closing out of order,
// late cells streaming before the frontier finishes) and checks the output
// equals core.MergeTraces of the same per-cell recordings.
func TestStreamMergeMatchesMergeTraces(t *testing.T) {
	mkCell := func(seed int64, n int) []core.TraceEvent {
		tr := &core.Tracer{}
		tr.Enable(64)
		for i := 0; i < n; i++ {
			sp := tr.BeginSpan(seed+int64(10*i), core.KindRound, core.TraceAttrs{AP: int(seed)}, "cell")
			tr.Emit(seed+int64(10*i+1), core.KindDecode, core.TraceAttrs{OK: true}, "")
			tr.EndSpan(sp, seed+int64(10*i+2))
		}
		return tr.Events()
	}
	cells := [][]core.TraceEvent{mkCell(100, 3), mkCell(200, 2), mkCell(300, 4)}
	want := core.MergeTraces(cells[0], cells[1], cells[2])

	out := &memSink{}
	m := NewStreamMerge(out, 3)
	// Cell 2 streams fully first, then closes; cell 1 streams and closes;
	// cell 0 (the frontier) streams last — everything must still come out
	// in cell-index order with MergeTraces numbering.
	for _, e := range cells[2] {
		m.Cell(2).ConsumeTrace(e)
	}
	m.CloseCell(2)
	for _, e := range cells[1] {
		m.Cell(1).ConsumeTrace(e)
	}
	m.CloseCell(1)
	for _, e := range cells[0] {
		m.Cell(0).ConsumeTrace(e)
	}
	m.CloseCell(0)

	got := out.events()
	if len(got) != len(want) {
		t.Fatalf("merged %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestStreamMergeLiveFrontier checks the frontier passes through without
// buffering and late closes advance across multiple already-closed cells.
func TestStreamMergeLiveFrontier(t *testing.T) {
	out := &memSink{}
	m := NewStreamMerge(out, 3)
	m.Cell(0).ConsumeTrace(core.TraceEvent{Seq: 0, At: 1, Kind: core.KindTraffic})
	if n := len(out.events()); n != 1 {
		t.Fatalf("frontier event buffered (saw %d downstream)", n)
	}
	m.Cell(1).ConsumeTrace(core.TraceEvent{Seq: 0, At: 2, Kind: core.KindTraffic})
	if n := len(out.events()); n != 1 {
		t.Fatal("non-frontier event leaked downstream before its turn")
	}
	m.CloseCell(1)
	m.CloseCell(2)
	m.CloseCell(0) // closes the frontier; cells 1 and 2 drain in order
	got := out.events()
	if len(got) != 2 {
		t.Fatalf("drained %d events, want 2", len(got))
	}
	if got[1].At != 2 || got[1].Seq != 1 {
		t.Fatalf("cell-1 event misplaced: %+v", got[1])
	}
	// Events after close are discarded, not re-ordered.
	m.Cell(0).ConsumeTrace(core.TraceEvent{Seq: 9, Kind: core.KindTraffic})
	if len(out.events()) != 2 {
		t.Fatal("event for a closed cell was forwarded")
	}
}
