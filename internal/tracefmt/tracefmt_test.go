package tracefmt

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"megamimo/internal/core"
	"megamimo/internal/units"
)

func sampleMeta() Meta {
	return Meta{SampleRate: 20e6, CarrierHz: 2.462e9, APs: 2, Clients: 2}
}

// sampleEvents builds a small synthetic protocol trace with spans,
// telemetry and every attribute class populated somewhere.
func sampleEvents() []core.TraceEvent {
	return []core.TraceEvent{
		{Seq: 0, At: 0, Kind: core.KindMeasure, Ph: core.PhBegin, Span: 1,
			Attrs: core.TraceAttrs{AP: 0}, Msg: "2 measurement packets"},
		{Seq: 1, At: 100, Kind: core.KindSlaveRatio, Ph: core.PhInstant, Span: 1,
			Attrs: core.TraceAttrs{AP: 1, PhaseErrRad: 0.021, CFORadPerSample: 3.1e-5}},
		{Seq: 2, At: 200, Kind: core.KindMeasure, Ph: core.PhEnd, Span: 1,
			Attrs: core.TraceAttrs{AP: 0, OK: true}},
		{Seq: 3, At: 300, Kind: core.KindRound, Ph: core.PhBegin, Span: 2,
			Attrs: core.TraceAttrs{AP: 0, Pkt: 7, QueueDepth: 3}},
		{Seq: 4, At: 310, Kind: core.KindJointTx, Ph: core.PhBegin, Span: 3,
			Attrs: core.TraceAttrs{Bits: 3200}, Msg: "2 streams at MCS 0"},
		{Seq: 5, At: 320, Kind: core.KindSyncHeader, Ph: core.PhInstant, Span: 3,
			Attrs: core.TraceAttrs{AP: 0}},
		{Seq: 6, At: 330, Kind: core.KindSlaveRatio, Ph: core.PhInstant, Span: 3,
			Attrs: core.TraceAttrs{AP: 1, PhaseErrRad: -0.013, CFORadPerSample: 3.2e-5}},
		{Seq: 7, At: 400, Kind: core.KindDecode, Ph: core.PhInstant, Span: 3,
			Attrs: core.TraceAttrs{Client: 0, Stream: 0, EVMSNRdB: 32.5, MinSubSNRdB: 21.0, OK: true}},
		{Seq: 8, At: 401, Kind: core.KindDecode, Ph: core.PhInstant, Span: 3,
			Attrs: core.TraceAttrs{Client: 1, Stream: 1, EVMSNRdB: 30.1, MinSubSNRdB: 19.5, OK: true}},
		{Seq: 9, At: 402, Kind: core.KindNullDepth, Ph: core.PhInstant, Span: 3,
			Attrs: core.TraceAttrs{Client: 1, Stream: 1, NullDepthDB: 38.4}},
		{Seq: 10, At: 450, Kind: core.KindJointTx, Ph: core.PhEnd, Span: 3,
			Attrs: core.TraceAttrs{Bits: 3200, OK: true}, Msg: "2/2 streams delivered"},
		{Seq: 11, At: 460, Kind: core.KindRetransmit, Ph: core.PhInstant, Span: 2,
			Attrs: core.TraceAttrs{Stream: 1, Pkt: 9, Cause: "no-ack"}},
		{Seq: 12, At: 470, Kind: core.KindRound, Ph: core.PhEnd, Span: 2,
			Attrs: core.TraceAttrs{QueueDepth: 1, Bits: 1600, OK: false}},
		{Seq: 13, At: 480, Kind: core.KindDemand, Ph: core.PhInstant,
			Attrs: core.TraceAttrs{Client: 0, Pkt: 11, QueueDepth: 2, Bits: 12000, OK: true}},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	meta, events := sampleMeta(), sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotEvents, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Fatalf("events round-trip mismatch:\ngot  %+v\nwant %+v", gotEvents, events)
	}
	// Re-serializing the parsed trace must be byte-identical: the writer
	// is a pure function of (meta, events).
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, gotMeta, gotEvents); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized JSONL differs from the original bytes")
	}
}

func TestJSONLRejectsUnknownKind(t *testing.T) {
	bad := []core.TraceEvent{{Seq: 0, At: 0, Kind: "mystery", Ph: core.PhInstant}}
	if err := WriteJSONL(&bytes.Buffer{}, sampleMeta(), bad); err == nil {
		t.Fatal("writer accepted a kind outside the vocabulary")
	}
	in := `{"schema":"megamimo-trace","version":1,"sample_rate":1,"carrier_hz":1,"aps":1,"clients":1}
{"seq":0,"at":0,"kind":"mystery","ph":"i"}
`
	if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("reader accepted a kind outside the vocabulary")
	}
}

func TestJSONLRejectsWrongSchemaVersion(t *testing.T) {
	in := `{"schema":"megamimo-trace","version":99}` + "\n"
	if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
	in = `{"schema":"other-format","version":1}` + "\n"
	if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	meta, events := sampleMeta(), sampleEvents()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, meta, events); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotEvents, err := ReadChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta round-trip: got %+v, want %+v", gotMeta, meta)
	}
	if !reflect.DeepEqual(gotEvents, events) {
		t.Fatalf("events round-trip mismatch:\ngot  %+v\nwant %+v", gotEvents, events)
	}
}

// TestChromeStructure checks the file is valid Chrome trace-event JSON
// with per-AP and per-client thread tracks named for the Perfetto UI.
func TestChromeStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleMeta(), sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("chrome output is not one JSON object: %v", err)
	}
	evs, ok := raw["traceEvents"].([]any)
	if !ok || len(evs) == 0 {
		t.Fatal("traceEvents missing or empty")
	}
	names := map[string]bool{}
	var begins, ends int
	for _, v := range evs {
		e := v.(map[string]any)
		switch e["ph"] {
		case "M":
			if args, ok := e["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	for _, want := range []string{"megamimo", "network", "AP 1", "client 0", "client 1"} {
		if !names[want] {
			t.Errorf("missing metadata track name %q (have %v)", want, names)
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("span events unbalanced: %d begins, %d ends", begins, ends)
	}
}

func TestWriteFileReadFileSniffsFormat(t *testing.T) {
	dir := t.TempDir()
	meta, events := sampleMeta(), sampleEvents()
	for _, f := range []Format{FormatJSONL, FormatChrome} {
		path := filepath.Join(dir, "trace-"+string(f))
		if err := WriteFile(path, f, meta, events); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		gotMeta, gotEvents, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if gotMeta != meta || !reflect.DeepEqual(gotEvents, events) {
			t.Fatalf("%s: round-trip through file mismatched", f)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "trace-jsonl")); err != nil {
		t.Fatal(err)
	}
}

func TestParseFormat(t *testing.T) {
	for _, s := range []string{"jsonl", "chrome"} {
		if _, err := ParseFormat(s); err != nil {
			t.Errorf("ParseFormat(%q): %v", s, err)
		}
	}
	if _, err := ParseFormat("csv"); err == nil {
		t.Error("ParseFormat accepted csv")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleMeta(), sampleEvents())
	if s.Events != 14 {
		t.Errorf("Events = %d, want 14", s.Events)
	}
	if s.Spans != 3 {
		t.Errorf("Spans = %d, want 3", s.Spans)
	}
	if s.OpenSpans != 0 {
		t.Errorf("OpenSpans = %d, want 0", s.OpenSpans)
	}
	if s.AtMin != 0 || s.AtMax != 480 {
		t.Errorf("At range [%d, %d], want [0, 480]", s.AtMin, s.AtMax)
	}
	if math.Abs(s.DurationMs-480.0/20e6*1e3) > 1e-12 {
		t.Errorf("DurationMs = %g", s.DurationMs)
	}
	counts := map[string]int{}
	for _, kc := range s.ByKind {
		counts[kc.Kind] = kc.Count
	}
	if counts[core.KindDecode] != 2 || counts[core.KindSlaveRatio] != 2 {
		t.Errorf("per-kind counts wrong: %v", counts)
	}
}

func TestPhaseStats(t *testing.T) {
	ps := PhaseStats(sampleMeta(), sampleEvents())
	if len(ps) != 1 {
		t.Fatalf("got %d phase stats, want 1 (only AP 1 emits slave-ratio)", len(ps))
	}
	st := ps[0]
	if st.AP != 1 || st.N != 2 {
		t.Fatalf("stat = %+v", st)
	}
	if units.Abs(st.MaxAbsRad-0.021) > 1e-12 {
		t.Errorf("MaxAbsRad = %g, want 0.021", st.MaxAbsRad)
	}
	wantCFO := (3.1e-5 + 3.2e-5) / 2
	if math.Abs(units.Ratio(st.CFORadPerSample, 1)-wantCFO) > 1e-12 {
		t.Errorf("CFO = %g, want %g", st.CFORadPerSample, wantCFO)
	}
	// ppm = cfo·rate/(2π·carrier)·1e6
	wantPPM := wantCFO * 20e6 / (2 * math.Pi) / 2.462e9 * 1e6
	if math.Abs(units.Ratio(st.RelPPM, 1)-wantPPM) > 1e-9 {
		t.Errorf("RelPPM = %g, want %g", st.RelPPM, wantPPM)
	}
}

func TestSpanStats(t *testing.T) {
	ss := SpanStats(sampleMeta(), sampleEvents())
	byKind := map[string]SpanStat{}
	for _, s := range ss {
		byKind[s.Kind] = s
	}
	jt, ok := byKind[core.KindJointTx]
	if !ok || jt.N != 1 {
		t.Fatalf("joint-tx span stats missing: %+v", ss)
	}
	wantMs := float64(450-310) / 20e6 * 1e3
	if math.Abs(jt.MaxMs-wantMs) > 1e-12 {
		t.Errorf("joint-tx duration %g ms, want %g", jt.MaxMs, wantMs)
	}
	if _, ok := byKind[core.KindRound]; !ok {
		t.Error("round span stats missing")
	}
}

func TestFindAnomaliesCleanTrace(t *testing.T) {
	got := FindAnomalies(sampleMeta(), sampleEvents(), Budget{})
	// The synthetic trace has one "no-ack" retransmit but no max-attempts
	// failure, phase errors well under π/18, CFO ≈ 0.04 ppm: clean.
	if len(got) != 0 {
		t.Fatalf("clean trace reported anomalies: %v", got)
	}
}

func TestFindAnomaliesFlagsViolations(t *testing.T) {
	meta := sampleMeta()
	events := sampleEvents()
	// Slave AP 1 drifts: blow the phase budget and the ppm mandate.
	// 45 ppm relative at 2.462 GHz carrier, 20 MHz sampling.
	badCFO := units.RadPerSample(45.0 / 1e6 * 2.462e9 * 2 * math.Pi / 20e6)
	for i := range events {
		if events[i].Kind == core.KindSlaveRatio {
			events[i].Attrs.PhaseErrRad = 0.5 // ≫ π/18
			events[i].Attrs.CFORadPerSample = badCFO
		}
	}
	events = append(events,
		core.TraceEvent{Seq: 14, At: 500, Kind: core.KindRetransmit, Ph: core.PhInstant,
			Attrs: core.TraceAttrs{Stream: 0, Pkt: 3, Cause: "max-attempts"}},
		core.TraceEvent{Seq: 15, At: 510, Kind: core.KindDecode, Ph: core.PhInstant,
			Attrs: core.TraceAttrs{Client: 0, Stream: 0, Cause: "decode"}, Msg: "FCS failed"},
	)
	got := FindAnomalies(meta, events, Budget{})
	checks := map[string]int{}
	for _, a := range got {
		checks[a.Check]++
		if a.Msg == "" {
			t.Errorf("anomaly with empty message: %+v", a)
		}
	}
	for _, want := range []string{"phase-budget", "cfo-mandate", "packet-failure", "decode-failure"} {
		if checks[want] == 0 {
			t.Errorf("missing %s anomaly (got %v)", want, checks)
		}
	}
	// The phase-budget anomaly must name the offending slave AP.
	for _, a := range got {
		if a.Check == "phase-budget" && a.AP != 1 {
			t.Errorf("phase-budget anomaly blames AP %d, want 1", a.AP)
		}
		if a.Check == "cfo-mandate" && math.Abs(a.Value-45) > 0.5 {
			t.Errorf("cfo-mandate value %.2f ppm, want ≈45", a.Value)
		}
	}
}

func TestFindAnomaliesEVMAndNullDegradation(t *testing.T) {
	meta := sampleMeta()
	var events []core.TraceEvent
	seq := int64(0)
	add := func(kind string, a core.TraceAttrs) {
		events = append(events, core.TraceEvent{Seq: seq, At: seq * 10, Kind: kind, Ph: core.PhInstant, Attrs: a})
		seq++
	}
	for i := 0; i < 9; i++ {
		add(core.KindDecode, core.TraceAttrs{Stream: 0, EVMSNRdB: 30, OK: true})
		add(core.KindNullDepth, core.TraceAttrs{Stream: 1, NullDepthDB: 40})
	}
	add(core.KindDecode, core.TraceAttrs{Stream: 0, EVMSNRdB: 18, OK: true}) // 12 dB below median
	add(core.KindNullDepth, core.TraceAttrs{Stream: 1, NullDepthDB: 25})     // 15 dB below median
	got := FindAnomalies(meta, events, Budget{})
	checks := map[string]int{}
	for _, a := range got {
		checks[a.Check]++
	}
	if checks["evm-degradation"] != 1 {
		t.Errorf("evm-degradation count %d, want 1 (%v)", checks["evm-degradation"], got)
	}
	if checks["null-degradation"] != 1 {
		t.Errorf("null-degradation count %d, want 1 (%v)", checks["null-degradation"], got)
	}
}

// TestDefaultBudgetMandateConstants pins the anomaly gate's default
// thresholds to the paper-mandated identities: the π/18 (10°) residual
// phase budget from §7's nulling analysis, and a relative CFO bound of
// twice the 802.11 ±20 ppm oscillator tolerance (worst case: both
// oscillators at opposite extremes). If either drifts, the drift must be
// a deliberate, documented decision — update this test alongside it.
func TestDefaultBudgetMandateConstants(t *testing.T) {
	b := DefaultBudget()
	if got, want := b.PhaseBudgetRad, units.Radians(math.Pi/18); got != want {
		t.Errorf("DefaultBudget().PhaseBudgetRad = %v, want π/18 = %v", got, want)
	}
	if got, want := b.PhaseBudgetRad, units.DegreesToRadians(10); units.Abs(got-want) > 1e-15 {
		t.Errorf("DefaultBudget().PhaseBudgetRad = %v, want DegreesToRadians(10) = %v", got, want)
	}
	if got, want := b.MaxRelPPM, 2*units.Dot11MaxPPM; got != want {
		t.Errorf("DefaultBudget().MaxRelPPM = %v, want 2·Dot11MaxPPM = %v", got, want)
	}
}
