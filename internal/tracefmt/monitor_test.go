package tracefmt

import (
	"reflect"
	"testing"

	"megamimo/internal/core"
	psync "megamimo/internal/sync"
	"megamimo/internal/traffic"
	"megamimo/internal/units"
)

// fixtureTrace runs a short closed-loop MegaMIMO workload and returns its
// recorded trace: the same construction as `megamimo-sim -workload cbr`,
// with optional injected oscillator drift (lead −ppm, slaves +ppm) and an
// optional sync strategy (nil = default header scheme).
func fixtureTrace(t *testing.T, driftPPM float64, strategy psync.Strategy) (Meta, []core.TraceEvent) {
	t.Helper()
	cfg := core.DefaultConfig(3, 3, 18, 24)
	cfg.Seed = 7
	if strategy != nil {
		cfg.Sync = strategy
	}
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Trace().Enable(1 << 18)
	if driftPPM != 0 {
		for _, ap := range net.APs {
			if ap.Index == net.Lead().Index {
				ap.Node.Osc.PPM = units.PPM(-driftPPM)
			} else {
				ap.Node.Osc.PPM = units.PPM(driftPPM)
			}
		}
	}
	if err := net.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := core.ComputeZF(net.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	net.SetPrecoder(p)
	// Rate-probe joint transmissions first (the sim's batch path): they
	// emit sync-header/slave-ratio/decode telemetry even when a broken
	// strategy delivers nothing, which is what the gate must catch.
	for i := 0; i < 12; i++ {
		if _, _, err := net.ProbeAndSelectRate(256); err != nil {
			t.Fatal(err)
		}
	}
	profiles := make([]traffic.Profile, net.NumStreams())
	for i := range profiles {
		profiles[i] = traffic.ProfileFor(traffic.CBR, 6e6, 1500)
	}
	eng, err := traffic.New(net, traffic.Config{
		System: traffic.SystemMegaMIMO, Profiles: profiles, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately broken sync strategy can kill every MCS ("mac: no
	// deliverable rate") — the run still leaves the trace the anomaly
	// gate exists to diagnose, exactly like the CI sync-smoke job.
	if _, err := eng.Run(0.05); err != nil {
		t.Logf("fixture run ended early (expected for broken sync): %v", err)
	}
	meta := Meta{
		SampleRate: cfg.SampleRate,
		CarrierHz:  cfg.CarrierHz,
		APs:        3,
		Clients:    3,
		Sync:       net.SyncName(),
	}
	return meta, net.Trace().Events()
}

// checkSet collapses anomalies to the set of check names.
func checkSet(as []Anomaly) map[string]bool {
	s := map[string]bool{}
	for _, a := range as {
		s[a.Check] = true
	}
	return s
}

// trippedSet collapses live violations to the set of check names.
func trippedSet(vs []Violation) map[string]bool {
	s := map[string]bool{}
	for _, v := range vs {
		s[v.Anomaly.Check] = true
	}
	return s
}

// monitorFixtures are the equivalence corpus: a clean run, the 21 ppm
// oscillator-drift run the CI stream-smoke gate uses, and a mistuned
// BeamSync run.
func monitorFixtures(t *testing.T) map[string]struct {
	meta   Meta
	events []core.TraceEvent
} {
	t.Helper()
	out := map[string]struct {
		meta   Meta
		events []core.TraceEvent
	}{}
	cleanMeta, cleanEvs := fixtureTrace(t, 0, nil)
	driftMeta, driftEvs := fixtureTrace(t, 21, nil)
	misMeta, misEvs := fixtureTrace(t, 0, psync.MistunedBeamSync())
	out["clean"] = struct {
		meta   Meta
		events []core.TraceEvent
	}{cleanMeta, cleanEvs}
	out["drift-21ppm"] = struct {
		meta   Meta
		events []core.TraceEvent
	}{driftMeta, driftEvs}
	out["mistuned-beamsync"] = struct {
		meta   Meta
		events []core.TraceEvent
	}{misMeta, misEvs}
	return out
}

// TestMonitorBatchEquivalence is the refactor's safety property: a Monitor
// fed the events one at a time produces exactly FindAnomalies' output —
// same anomalies, same messages, same order — regardless of whether live
// evaluation is on.
func TestMonitorBatchEquivalence(t *testing.T) {
	fixtures := monitorFixtures(t)
	for _, name := range []string{"clean", "drift-21ppm", "mistuned-beamsync"} {
		fx := fixtures[name]
		want := FindAnomalies(fx.meta, fx.events, Budget{})
		for _, window := range []int{0, DefaultMonitorWindow} {
			m := NewMonitor(fx.meta, Budget{}, window)
			for _, e := range fx.events {
				m.ConsumeTrace(e)
			}
			got := m.Anomalies()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s window=%d: incremental Anomalies() diverges from FindAnomalies\n got %d: %v\nwant %d: %v",
					name, window, len(got), got, len(want), want)
			}
		}
	}
}

// TestMonitorOnlineVerdictMatchesBatch checks the live gate agrees with
// the batch verdict on every fixture: healthy exactly when batch finds
// nothing, and when unhealthy the tripped sync checks (phase-budget,
// cfo-mandate) and absolute checks match the batch check set.
func TestMonitorOnlineVerdictMatchesBatch(t *testing.T) {
	fixtures := monitorFixtures(t)
	for _, name := range []string{"clean", "drift-21ppm", "mistuned-beamsync"} {
		fx := fixtures[name]
		batch := FindAnomalies(fx.meta, fx.events, Budget{})
		m := NewMonitor(fx.meta, Budget{}, DefaultMonitorWindow)
		for _, e := range fx.events {
			m.ConsumeTrace(e)
		}
		batchBad, onlineBad := len(batch) > 0, !m.Healthy()
		if batchBad != onlineBad {
			t.Errorf("%s: batch verdict unhealthy=%v but online unhealthy=%v (batch %v, tripped %v)",
				name, batchBad, onlineBad, checkSet(batch), trippedSet(m.Tripped()))
			continue
		}
		bs, ts := checkSet(batch), trippedSet(m.Tripped())
		// The per-AP sync checks and the absolute event checks must agree
		// exactly; the median-relative null/EVM checks may differ at the
		// margin between a sliding and a whole-run median.
		for _, check := range []string{"phase-budget", "cfo-mandate", "decode-failure", "packet-failure"} {
			if bs[check] != ts[check] {
				t.Errorf("%s: check %q batch=%v online=%v", name, check, bs[check], ts[check])
			}
		}
	}
}

// TestMonitorFirstViolation checks the streaming payoff: the drift run's
// first violation is the cfo-mandate trip, stamped with a real ether time
// inside the run, and the mistuned-sync run first trips a sync check.
func TestMonitorFirstViolation(t *testing.T) {
	fixtures := monitorFixtures(t)

	fx := fixtures["drift-21ppm"]
	m := NewMonitor(fx.meta, Budget{}, DefaultMonitorWindow)
	for _, e := range fx.events {
		m.ConsumeTrace(e)
	}
	v, ok := m.FirstViolation()
	if !ok {
		t.Fatal("21 ppm drift run tripped nothing online")
	}
	if v.Anomaly.Check != "cfo-mandate" {
		t.Errorf("drift first violation = %q, want cfo-mandate (tripped %v)",
			v.Anomaly.Check, trippedSet(m.Tripped()))
	}
	if v.At <= 0 || v.At > m.LastAt() {
		t.Errorf("first violation at t=%d outside the run (last t=%d)", v.At, m.LastAt())
	}
	if !checkSet(FindAnomalies(fx.meta, fx.events, Budget{}))["cfo-mandate"] {
		t.Error("batch misses the cfo-mandate anomaly the monitor tripped")
	}

	fx = fixtures["mistuned-beamsync"]
	m = NewMonitor(fx.meta, Budget{}, DefaultMonitorWindow)
	for _, e := range fx.events {
		m.ConsumeTrace(e)
	}
	v, ok = m.FirstViolation()
	if !ok {
		t.Fatal("mistuned BeamSync run tripped nothing online")
	}
	// The mistuned strategy corrupts decodes before its sync window fills,
	// so the temporally-first violation may be a decode failure — but it
	// must be a check batch analysis confirms, and the sync checks must
	// trip too once the window has samples.
	batch := checkSet(FindAnomalies(fx.meta, fx.events, Budget{}))
	if !batch[v.Anomaly.Check] {
		t.Errorf("mistuned first violation %q not confirmed by batch (%v)", v.Anomaly.Check, batch)
	}
	ts := trippedSet(m.Tripped())
	if !ts["phase-budget"] && !ts["cfo-mandate"] {
		t.Errorf("mistuned run never tripped a sync check online (tripped %v)", ts)
	}
}

// TestMonitorAsSinkStreamsLive wires a Monitor directly to a Tracer as its
// sink and checks violations trip during emission, not only at the end.
func TestMonitorAsSinkStreamsLive(t *testing.T) {
	meta := Meta{SampleRate: 10e6, CarrierHz: 2.437e9}
	m := NewMonitor(meta, Budget{}, 16)
	tr := &core.Tracer{}
	tr.SetSink(m)
	tr.Enable(4) // tiny ring: the monitor must see past the overflow
	for i := 0; i < 32; i++ {
		tr.Emit(int64(1000*i), core.KindSlaveRatio,
			core.TraceAttrs{AP: 1, PhaseErrRad: 0.5, CFORadPerSample: 0}, "")
	}
	if m.Healthy() {
		t.Fatal("0.5 rad median residual did not trip the phase budget")
	}
	v, _ := m.FirstViolation()
	if v.Anomaly.Check != "phase-budget" || v.Anomaly.AP != 1 {
		t.Fatalf("first violation %+v, want phase-budget on AP 1", v.Anomaly)
	}
	if m.Events() != 32 {
		t.Fatalf("monitor saw %d events through a 4-slot ring, want all 32", m.Events())
	}
}
