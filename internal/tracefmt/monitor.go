package tracefmt

import (
	"fmt"
	"sort"

	"megamimo/internal/core"
	"megamimo/internal/units"
)

// DefaultMonitorWindow is the sliding-window length (events per AP /
// per stream) live checks evaluate over when the caller does not choose
// one.
const DefaultMonitorWindow = 256

// monitorMinSamples gates live relative checks: a window needs this many
// samples before its median is trusted, so re-acquisition transients and
// cold stream statistics cannot trip a check batch analysis would pass.
const monitorMinSamples = 8

// Violation is one live check trip: the anomaly plus the ether time of
// the event that first tripped it.
type Violation struct {
	Anomaly Anomaly
	// At is the ether sample time of the tripping event.
	At int64
}

// Monitor is the incremental form of FindAnomalies: it consumes events
// one at a time (as a core.TraceSink or via Observe) and serves two
// views of the same stream.
//
// The batch view — Anomalies() — is exactly FindAnomalies over every
// event observed so far: same checks, same thresholds, same messages,
// same order. FindAnomalies itself is implemented on top of it.
//
// The live view — Healthy, FirstViolation, Tripped — evaluates each
// event on arrival (enabled when window > 0): the per-AP phase-budget
// and cfo-mandate checks over a sliding window of the AP's last
// `window` slave-ratio events, the null/EVM degradation checks against
// a sliding median, and the absolute decode/packet-failure checks
// immediately. Each check records the ether timestamp of its first
// violation, which is what /healthz and `megamimo-trace follow` report
// while a run is still in flight.
//
// A Monitor is not safe for concurrent use; as a sink on one tracer it
// is serialized by the tracer's mutex, anything else must wrap it.
type Monitor struct {
	meta   Meta
	b      Budget
	window int

	// Batch accumulators, in arrival order where order matters.
	resid   map[int][]units.Radians
	cfoSum  map[int]units.RadPerSample
	nulls   []nullRec
	decodes []decodeRec
	rtx     []rtxRec
	events  int
	lastAt  int64

	// Live sliding windows and trip state.
	apWin   map[int]*apWindow
	tripped map[string]bool
	trips   []Violation
}

// nullRec is one null-depth measurement in arrival order.
type nullRec struct {
	seq, at int64
	stream  int
	depth   units.Decibels
}

// decodeRec is one decode outcome in arrival order.
type decodeRec struct {
	seq, at int64
	stream  int
	evm     units.Decibels
	cause   string
	msg     string
}

// rtxRec is one max-attempts packet drop.
type rtxRec struct {
	seq, at int64
	stream  int
	pkt     int64
}

// apWindow is one slave AP's sliding phase-sync telemetry.
type apWindow struct {
	resid []units.Radians
	cfo   []units.RadPerSample
	n     int // total observed; min(n, len cap) are live
}

// push adds one sample, displacing the oldest once the window is full.
func (w *apWindow) push(r units.Radians, c units.RadPerSample, window int) {
	if len(w.resid) < window {
		w.resid = append(w.resid, r)
		w.cfo = append(w.cfo, c)
	} else {
		i := w.n % window
		w.resid[i] = r
		w.cfo[i] = c
	}
	w.n++
}

// NewMonitor builds a monitor with the given run metadata and budgets
// (zero budget fields take the defaults, as in FindAnomalies). window
// sets the live sliding-window length; window <= 0 disables live
// evaluation, leaving a pure incremental batch analyzer.
func NewMonitor(meta Meta, b Budget, window int) *Monitor {
	return &Monitor{
		meta:    meta,
		b:       b.withDefaults(),
		window:  window,
		resid:   map[int][]units.Radians{},
		cfoSum:  map[int]units.RadPerSample{},
		apWin:   map[int]*apWindow{},
		tripped: map[string]bool{},
	}
}

// ConsumeTrace implements core.TraceSink.
func (m *Monitor) ConsumeTrace(e core.TraceEvent) { m.Observe(e) }

// Observe folds one event into both views.
func (m *Monitor) Observe(e core.TraceEvent) {
	m.events++
	m.lastAt = e.At
	switch e.Kind {
	case core.KindSlaveRatio:
		ap := e.Attrs.AP
		m.resid[ap] = append(m.resid[ap], units.Abs(e.Attrs.PhaseErrRad))
		m.cfoSum[ap] += e.Attrs.CFORadPerSample
		if m.window > 0 {
			m.observeSlaveRatio(e)
		}
	case core.KindNullDepth:
		m.nulls = append(m.nulls, nullRec{seq: e.Seq, at: e.At, stream: e.Attrs.Stream, depth: e.Attrs.NullDepthDB})
		if m.window > 0 {
			m.observeNullDepth(e)
		}
	case core.KindDecode:
		m.decodes = append(m.decodes, decodeRec{
			seq: e.Seq, at: e.At, stream: e.Attrs.Stream,
			evm: e.Attrs.EVMSNRdB, cause: e.Attrs.Cause, msg: e.Msg,
		})
		if m.window > 0 {
			m.observeDecode(e)
		}
	case core.KindRetransmit:
		if e.Attrs.Cause == "max-attempts" {
			m.rtx = append(m.rtx, rtxRec{seq: e.Seq, at: e.At, stream: e.Attrs.Stream, pkt: e.Attrs.Pkt})
			if m.window > 0 {
				m.trip(e.At, Anomaly{
					Check: "packet-failure", AP: -1, Stream: e.Attrs.Stream, Seq: e.Seq,
					Msg: fmt.Sprintf("packet-failure: stream %d packet %d dropped after max attempts at t=%d",
						e.Attrs.Stream, e.Attrs.Pkt, e.At),
				})
			}
		}
	}
}

// observeSlaveRatio evaluates the per-AP phase-budget and cfo-mandate
// checks over the AP's sliding window.
func (m *Monitor) observeSlaveRatio(e core.TraceEvent) {
	ap := e.Attrs.AP
	w := m.apWin[ap]
	if w == nil {
		w = &apWindow{}
		m.apWin[ap] = w
	}
	w.push(units.Abs(e.Attrs.PhaseErrRad), e.Attrs.CFORadPerSample, m.window)
	if len(w.resid) < monitorMinSamples {
		return
	}
	if med := quantile(w.resid, 0.5); med > m.b.PhaseBudgetRad {
		m.trip(e.At, Anomaly{
			Check: "phase-budget", AP: ap, Stream: -1, Seq: e.Seq,
			Value: units.Ratio(med, 1), Threshold: units.Ratio(m.b.PhaseBudgetRad, 1),
			Msg: fmt.Sprintf("phase-budget: slave AP %d median |phase err| %.4f rad exceeds the π/18 budget (%.4f rad) over %d headers",
				ap, med, m.b.PhaseBudgetRad, len(w.resid)),
		})
	}
	if m.meta.SampleRate > 0 && m.meta.CarrierHz > 0 {
		var sum units.RadPerSample
		for _, c := range w.cfo {
			sum += c
		}
		rel := units.RadPerSampleToPPM(units.Div(sum, float64(len(w.cfo))), m.meta.CarrierHz, m.meta.SampleRate)
		if units.Abs(rel) > m.b.MaxRelPPM {
			m.trip(e.At, Anomaly{
				Check: "cfo-mandate", AP: ap, Stream: -1, Seq: e.Seq,
				Value: units.Ratio(units.Abs(rel), 1), Threshold: units.Ratio(m.b.MaxRelPPM, 1),
				Msg: fmt.Sprintf("cfo-mandate: slave AP %d is %.1f ppm off the lead carrier — outside the 802.11 ±20 ppm mandate (|rel| ≤ %.0f ppm)",
					ap, rel, m.b.MaxRelPPM),
			})
		}
	}
}

// observeNullDepth checks one measurement against the sliding median of
// the last `window` depths.
func (m *Monitor) observeNullDepth(e core.TraceEvent) {
	tail := m.nulls
	if len(tail) > m.window {
		tail = tail[len(tail)-m.window:]
	}
	if len(tail) < monitorMinSamples {
		return
	}
	depths := make([]units.Decibels, len(tail))
	for i, r := range tail {
		depths[i] = r.depth
	}
	med := quantile(depths, 0.5)
	if e.Attrs.NullDepthDB < med-m.b.NullDegradeDB {
		m.trip(e.At, Anomaly{
			Check: "null-degradation", AP: -1, Stream: e.Attrs.Stream, Seq: e.Seq,
			Value: units.Ratio(e.Attrs.NullDepthDB, 1), Threshold: units.Ratio(med-m.b.NullDegradeDB, 1),
			Msg: fmt.Sprintf("null-degradation: stream %d null depth %.1f dB is >%.0f dB below the run median (%.1f dB) at t=%d",
				e.Attrs.Stream, e.Attrs.NullDepthDB, m.b.NullDegradeDB, med, e.At),
		})
	}
}

// observeDecode flags failed decodes immediately and EVM degradation
// against the stream's sliding median.
func (m *Monitor) observeDecode(e core.TraceEvent) {
	if e.Attrs.Cause != "" {
		m.trip(e.At, Anomaly{
			Check: "decode-failure", AP: -1, Stream: e.Attrs.Stream, Seq: e.Seq,
			Msg: fmt.Sprintf("decode-failure: stream %d frame undecodable at t=%d (%s)",
				e.Attrs.Stream, e.At, e.Msg),
		})
		return
	}
	var evms []units.Decibels
	for i := len(m.decodes) - 1; i >= 0 && len(evms) < m.window; i-- {
		r := m.decodes[i]
		if r.stream == e.Attrs.Stream && r.cause == "" {
			evms = append(evms, r.evm)
		}
	}
	if len(evms) < monitorMinSamples {
		return
	}
	med := quantile(evms, 0.5)
	if e.Attrs.EVMSNRdB < med-m.b.EVMDegradeDB {
		m.trip(e.At, Anomaly{
			Check: "evm-degradation", AP: -1, Stream: e.Attrs.Stream, Seq: e.Seq,
			Value: units.Ratio(e.Attrs.EVMSNRdB, 1), Threshold: units.Ratio(med-m.b.EVMDegradeDB, 1),
			Msg: fmt.Sprintf("evm-degradation: stream %d EVM SNR %.1f dB is >%.0f dB below its median (%.1f dB) at t=%d",
				e.Attrs.Stream, e.Attrs.EVMSNRdB, m.b.EVMDegradeDB, med, e.At),
		})
	}
}

// trip records a live violation; only the first per check is kept.
func (m *Monitor) trip(at int64, a Anomaly) {
	if m.tripped[a.Check] {
		return
	}
	m.tripped[a.Check] = true
	m.trips = append(m.trips, Violation{Anomaly: a, At: at})
}

// Healthy reports whether no live check has tripped. With live
// evaluation disabled (window <= 0) it is vacuously true; use
// Anomalies() there.
func (m *Monitor) Healthy() bool { return len(m.trips) == 0 }

// FirstViolation returns the earliest live violation.
func (m *Monitor) FirstViolation() (Violation, bool) {
	if len(m.trips) == 0 {
		return Violation{}, false
	}
	return m.trips[0], true
}

// Tripped returns the first violation of each tripped check, in the
// order they tripped.
func (m *Monitor) Tripped() []Violation {
	return append([]Violation(nil), m.trips...)
}

// Events returns how many events the monitor has observed.
func (m *Monitor) Events() int { return m.events }

// LastAt returns the ether time of the most recent event.
func (m *Monitor) LastAt() int64 { return m.lastAt }

// phaseStats reconstructs the per-AP PhaseStat aggregates from the
// monitor's accumulators, identically to PhaseStats over the full event
// slice.
func (m *Monitor) phaseStats() []PhaseStat {
	aps := make([]int, 0, len(m.resid))
	for ap := range m.resid {
		aps = append(aps, ap)
	}
	sort.Ints(aps)
	out := make([]PhaseStat, 0, len(aps))
	for _, ap := range aps {
		out = append(out, phaseStatFor(m.meta, ap, m.resid[ap], m.cfoSum[ap]))
	}
	return out
}

// Anomalies runs the batch checks over everything observed so far —
// exactly FindAnomalies over the same events: same thresholds, same
// messages, same order (per-AP checks by AP, then per-event checks in
// stream order).
func (m *Monitor) Anomalies() []Anomaly {
	var out []Anomaly
	for _, ps := range m.phaseStats() {
		// Gate on the median, not the p95: the innovation after a lead
		// handoff extrapolates phase over a many-millisecond gap, so a
		// single re-acquisition legitimately produces an O(1) rad
		// transient that the sync header corrects before any joint
		// transmission. A slave whose *median* innovation exceeds the
		// budget is misaligned on every header — that is the real defect.
		if ps.MedianAbsRad > m.b.PhaseBudgetRad {
			out = append(out, Anomaly{
				Check: "phase-budget", AP: ps.AP, Stream: -1, Seq: -1,
				Value: units.Ratio(ps.MedianAbsRad, 1), Threshold: units.Ratio(m.b.PhaseBudgetRad, 1),
				Msg: fmt.Sprintf("phase-budget: slave AP %d median |phase err| %.4f rad exceeds the π/18 budget (%.4f rad) over %d headers",
					ps.AP, ps.MedianAbsRad, m.b.PhaseBudgetRad, ps.N),
			})
		}
		if m.meta.CarrierHz > 0 && units.Abs(ps.RelPPM) > m.b.MaxRelPPM {
			out = append(out, Anomaly{
				Check: "cfo-mandate", AP: ps.AP, Stream: -1, Seq: -1,
				Value: units.Ratio(units.Abs(ps.RelPPM), 1), Threshold: units.Ratio(m.b.MaxRelPPM, 1),
				Msg: fmt.Sprintf("cfo-mandate: slave AP %d is %.1f ppm off the lead carrier — outside the 802.11 ±20 ppm mandate (|rel| ≤ %.0f ppm)",
					ps.AP, ps.RelPPM, m.b.MaxRelPPM),
			})
		}
	}

	// Null-depth degradation vs. the run median.
	if len(m.nulls) > 0 {
		depths := make([]units.Decibels, len(m.nulls))
		for i, r := range m.nulls {
			depths[i] = r.depth
		}
		med := quantile(depths, 0.5)
		for _, r := range m.nulls {
			if r.depth < med-m.b.NullDegradeDB {
				out = append(out, Anomaly{
					Check: "null-degradation", AP: -1, Stream: r.stream, Seq: r.seq,
					Value: units.Ratio(r.depth, 1), Threshold: units.Ratio(med-m.b.NullDegradeDB, 1),
					Msg: fmt.Sprintf("null-degradation: stream %d null depth %.1f dB is >%.0f dB below the run median (%.1f dB) at t=%d",
						r.stream, r.depth, m.b.NullDegradeDB, med, r.at),
				})
			}
		}
	}

	// Per-stream EVM degradation and decode failures.
	evms := map[int][]units.Decibels{}
	for _, r := range m.decodes {
		if r.cause == "" {
			evms[r.stream] = append(evms[r.stream], r.evm)
		}
	}
	medEVM := map[int]units.Decibels{}
	streams := make([]int, 0, len(evms))
	for s := range evms {
		streams = append(streams, s)
	}
	sort.Ints(streams)
	for _, s := range streams {
		medEVM[s] = quantile(evms[s], 0.5)
	}
	for _, r := range m.decodes {
		if r.cause != "" {
			out = append(out, Anomaly{
				Check: "decode-failure", AP: -1, Stream: r.stream, Seq: r.seq,
				Msg: fmt.Sprintf("decode-failure: stream %d frame undecodable at t=%d (%s)",
					r.stream, r.at, r.msg),
			})
			continue
		}
		if med, ok := medEVM[r.stream]; ok && r.evm < med-m.b.EVMDegradeDB {
			out = append(out, Anomaly{
				Check: "evm-degradation", AP: -1, Stream: r.stream, Seq: r.seq,
				Value: units.Ratio(r.evm, 1), Threshold: units.Ratio(med-m.b.EVMDegradeDB, 1),
				Msg: fmt.Sprintf("evm-degradation: stream %d EVM SNR %.1f dB is >%.0f dB below its median (%.1f dB) at t=%d",
					r.stream, r.evm, m.b.EVMDegradeDB, med, r.at),
			})
		}
	}

	// Packets dropped after exhausting retransmissions.
	for _, r := range m.rtx {
		out = append(out, Anomaly{
			Check: "packet-failure", AP: -1, Stream: r.stream, Seq: r.seq,
			Msg: fmt.Sprintf("packet-failure: stream %d packet %d dropped after max attempts at t=%d",
				r.stream, r.pkt, r.at),
		})
	}
	return out
}
