package mac

import (
	"testing"

	"megamimo/internal/backend"
	"megamimo/internal/phy"
)

// dropAllPolicy loses every backbone message — total ACK loss from the
// scheduler's point of view.
type dropAllPolicy struct{}

func (dropAllPolicy) Deliver(backend.Message) (bool, int64) { return true, 0 }

// delayAllPolicy delays every backbone message by a fixed amount.
type delayAllPolicy struct{ extra int64 }

func (p delayAllPolicy) Deliver(backend.Message) (bool, int64) { return false, p.extra }

// TestAckLossFailsPacketsExactlyOnce: under 100% ACK loss every packet
// exhausts MaxAttempts, lands in Failed exactly once, and the failure and
// retransmission counters agree with the per-step results.
func TestAckLossFailsPacketsExactlyOnce(t *testing.T) {
	n := newNet(t, 2, 2, 60)
	s := NewScheduler(n, 3)
	s.MCS = phy.MCS0
	s.MaxAttempts = 3
	s.FillQueue(1, 300, 4) // one packet per stream
	n.Bus.SetFaultPolicy(dropAllPolicy{})

	failedBySeq := make(map[int64]int)
	delivered := 0
	for s.Queue.Len() > 0 {
		res, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		delivered += len(res.Delivered)
		for _, p := range res.Failed {
			failedBySeq[p.Seq]++
			if p.Attempts != s.MaxAttempts {
				t.Fatalf("packet %d failed after %d attempts, want %d", p.Seq, p.Attempts, s.MaxAttempts)
			}
		}
	}
	if delivered != 0 {
		t.Fatalf("%d packets delivered with every ACK dropped", delivered)
	}
	if len(failedBySeq) != 2 {
		t.Fatalf("%d distinct packets failed, want 2", len(failedBySeq))
	}
	for seq, times := range failedBySeq {
		if times != 1 {
			t.Fatalf("packet %d failed %d times, want exactly once", seq, times)
		}
	}
	m := n.Metrics()
	if got := m.Counter("mac_packets_failed_total").Value(); got != 2 {
		t.Fatalf("mac_packets_failed_total = %d, want 2", got)
	}
	if got := m.Counter("mac_packets_delivered_total").Value(); got != 0 {
		t.Fatalf("mac_packets_delivered_total = %d, want 0", got)
	}
	// Each packet burns MaxAttempts-1 requeues before the final failure.
	if got := m.Counter("mac_retransmissions_total").Value(); got != 2*int64(s.MaxAttempts-1) {
		t.Fatalf("mac_retransmissions_total = %d, want %d", got, 2*(s.MaxAttempts-1))
	}
}

// TestLateAckDeliversWithoutRetransmit: ACKs delayed past the ACK timeout
// resolve in a later round's drain — the packet delivers exactly once via
// the late-ACK path instead of burning attempts forever.
func TestLateAckDeliversWithoutRetransmit(t *testing.T) {
	n := newNet(t, 2, 2, 61)
	s := NewScheduler(n, 5)
	s.MCS = phy.MCS0
	// Delay every ACK well past the default timeout (one bus latency + 1)
	// but well inside the next round's service time.
	n.Bus.SetFaultPolicy(delayAllPolicy{extra: 3000})
	s.FillQueue(2, 300, 6) // two packets per stream
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.DeliveredPackets != 4 || st.FailedPackets != 0 {
		t.Fatalf("delivered %d failed %d, want 4/0", st.DeliveredPackets, st.FailedPackets)
	}
	m := n.Metrics()
	if got := m.Counter("mac_packets_delivered_total").Value(); got != 4 {
		t.Fatalf("mac_packets_delivered_total = %d, want 4 (no double delivery)", got)
	}
	// Every round's ACKs missed their own timeout, so each packet was
	// requeued at least once before its late ACK drained.
	if got := m.Counter("mac_retransmissions_total").Value(); got < 2 {
		t.Fatalf("mac_retransmissions_total = %d, want >= 2", got)
	}
}

// TestBackoffGrowsWithAttemptsAndCaps: binary exponential backoff doubles
// the window per failed attempt and saturates at CW × 2^6.
func TestBackoffGrowsWithAttemptsAndCaps(t *testing.T) {
	c := NewContention(10e6, 1)
	mean := func(attempt int) float64 {
		var sum int64
		const trials = 3000
		for i := 0; i < trials; i++ {
			sum += c.BackoffSamplesAttempt(1, attempt)
		}
		return float64(sum) / trials
	}
	m0, m3, m10 := mean(0), mean(3), mean(10)
	if m3 < 4*m0 {
		t.Fatalf("attempt 3 mean %v not ~8x attempt 0 mean %v", m3, m0)
	}
	if m10 < m3 {
		t.Fatalf("backoff shrank past the cap: attempt 10 mean %v < attempt 3 mean %v", m10, m3)
	}
	capSamples := int64((c.CWMinSlots << maxBackoffExp) * c.SlotSamples)
	for i := 0; i < 3000; i++ {
		if d := c.BackoffSamplesAttempt(1, 50); d > capSamples {
			t.Fatalf("draw %d exceeds the CWmax cap %d", d, capSamples)
		}
	}
}

// TestCrashedDesignatedAPFallsBack: a head packet whose designated AP has
// crashed must still be serviced — the scheduler falls back to the
// deterministic re-election order instead of erroring out.
func TestCrashedDesignatedAPFallsBack(t *testing.T) {
	n := newNet(t, 3, 3, 62)
	s := NewScheduler(n, 7)
	s.MCS = phy.MCS0
	s.FillQueue(1, 300, 8)
	// Force every queued packet's nominee to AP 2, then crash it.
	for _, j := range []int{0, 1, 2} {
		if p := s.Queue.NextForStream(j); p != nil {
			p.DesignatedAP = 2
		}
	}
	if err := n.CrashAP(2); err != nil {
		t.Fatal(err)
	}
	res, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if n.Lead().Index == 2 {
		t.Fatal("crashed AP elected lead")
	}
	if len(res.Delivered) == 0 {
		t.Fatal("nothing delivered after designated-AP fallback")
	}
}
