package mac

import (
	"fmt"

	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// CSMA is a slotted CSMA/CA medium simulator: stations with pending frames
// draw a backoff from their contention window, count down on idle slots,
// transmit at zero, and double their window on collision (binary
// exponential backoff). It grounds two §9 design points: the 802.11
// baseline's equal medium share among contenders, and the MegaMIMO lead's
// weighted contention window ("contends on behalf of all slave APs, with
// its contention window weighted by the number of packets in the joint
// transmission"), which makes one joint transmission win the medium as
// often as N queued stations would.
type CSMA struct {
	// SlotSamples is the backoff slot in ether samples.
	SlotSamples int
	// DIFSSamples is the idle sensing time before backoff resumes.
	DIFSSamples int
	// CWMin / CWMax bound the contention window (slots).
	CWMin, CWMax int

	src *rng.Source
}

// NewCSMA returns the 802.11-flavored defaults at the given sample rate.
func NewCSMA(sampleRate units.Hertz, seed int64) *CSMA {
	return &CSMA{
		SlotSamples: int(units.TicksIn(9e-6, sampleRate)),
		DIFSSamples: int(units.TicksIn(34e-6, sampleRate)),
		CWMin:       15,
		CWMax:       1023,
		src:         rng.New(seed),
	}
}

// Station is one contender.
type Station struct {
	// Pending is the number of frames the station wants to send.
	Pending int
	// Weight divides the station's contention window: a MegaMIMO lead
	// carrying W packets contends with CW/W (weight 1 = plain 802.11).
	Weight int

	cw      int
	backoff int
}

// CSMAStats summarizes one run.
type CSMAStats struct {
	// Delivered counts frames per station.
	Delivered []int
	// AirtimeSamples counts each station's successful transmit airtime.
	AirtimeSamples []int64
	// Collisions is the number of collision events.
	Collisions int
	// TotalSamples is the elapsed medium time.
	TotalSamples int64
}

// Share returns station i's fraction of successful airtime.
func (s *CSMAStats) Share(i int) float64 {
	var total int64
	for _, a := range s.AirtimeSamples {
		total += a
	}
	if total == 0 {
		return 0
	}
	return float64(s.AirtimeSamples[i]) / float64(total)
}

// Run simulates until every station drains or maxEvents transmissions
// occur. frameSamples is the fixed frame airtime.
func (c *CSMA) Run(stations []*Station, frameSamples int, maxEvents int) (*CSMAStats, error) {
	if len(stations) == 0 {
		return nil, fmt.Errorf("mac: no stations")
	}
	st := &CSMAStats{
		Delivered:      make([]int, len(stations)),
		AirtimeSamples: make([]int64, len(stations)),
	}
	for _, s := range stations {
		if s.Weight < 1 {
			s.Weight = 1
		}
		s.cw = c.CWMin
		s.backoff = c.draw(s)
	}
	for ev := 0; ev < maxEvents; ev++ {
		active := 0
		for _, s := range stations {
			if s.Pending > 0 {
				active++
			}
		}
		if active == 0 {
			break
		}
		// Advance to the next transmission: the minimum backoff among
		// active stations elapses in idle slots.
		min := 1 << 30
		for _, s := range stations {
			if s.Pending > 0 && s.backoff < min {
				min = s.backoff
			}
		}
		st.TotalSamples += int64(c.DIFSSamples + min*c.SlotSamples)
		var txs []int
		for i, s := range stations {
			if s.Pending == 0 {
				continue
			}
			s.backoff -= min
			if s.backoff == 0 {
				txs = append(txs, i)
			}
		}
		st.TotalSamples += int64(frameSamples)
		if len(txs) == 1 {
			i := txs[0]
			s := stations[i]
			s.Pending--
			st.Delivered[i]++
			st.AirtimeSamples[i] += int64(frameSamples)
			s.cw = c.CWMin
			s.backoff = c.draw(s)
			continue
		}
		// Collision: everyone who transmitted doubles its window.
		st.Collisions++
		for _, i := range txs {
			s := stations[i]
			s.cw = s.cw*2 + 1
			if s.cw > c.CWMax {
				s.cw = c.CWMax
			}
			s.backoff = c.draw(s)
		}
	}
	return st, nil
}

// draw samples a fresh backoff for the station, window divided by its
// weight.
func (c *CSMA) draw(s *Station) int {
	w := s.cw / s.Weight
	if w < 1 {
		w = 1
	}
	return 1 + c.src.Intn(w+1)
}
