package mac

import (
	"testing"

	"megamimo/internal/core"
	"megamimo/internal/phy"
)

func newNet(t *testing.T, nAPs, nClients int, seed int64) *core.Network {
	t.Helper()
	cfg := core.DefaultConfig(nAPs, nClients, 20, 25)
	cfg.Seed = seed
	n, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestQueueSemantics(t *testing.T) {
	var q Queue
	a := &Packet{Stream: 0}
	b := &Packet{Stream: 1}
	c := &Packet{Stream: 0}
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if q.Head() != a || q.Len() != 3 {
		t.Fatal("head/len wrong")
	}
	if q.NextForStream(1) != b {
		t.Fatal("NextForStream wrong")
	}
	q.Requeue(a)
	if q.Head() != b || q.packets[2] != a {
		t.Fatal("Requeue order wrong")
	}
	q.Remove(b)
	if q.Len() != 2 || q.NextForStream(1) != nil {
		t.Fatal("Remove failed")
	}
}

func TestContentionWindowShrinksWithAggregation(t *testing.T) {
	c := NewContention(10e6, 1)
	if c.SlotSamples != 90 {
		t.Fatalf("slot = %d samples", c.SlotSamples)
	}
	var lone, joint int64
	for i := 0; i < 2000; i++ {
		lone += c.BackoffSamples(1)
		joint += c.BackoffSamples(8)
	}
	if joint >= lone {
		t.Fatalf("aggregated backoff %d not smaller than lone %d", joint, lone)
	}
	if c.BackoffSamples(0) < 0 {
		t.Fatal("negative backoff")
	}
}

func TestSchedulerDrainsQueue(t *testing.T) {
	n := newNet(t, 2, 2, 50)
	s := NewScheduler(n, 1)
	s.FillQueue(3, 400, 2) // 3 packets × 2 streams
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.Queue.Len() != 0 {
		t.Fatalf("queue not drained: %d left", s.Queue.Len())
	}
	if st.DeliveredPackets+st.FailedPackets != 6 {
		t.Fatalf("accounting: %d delivered + %d failed != 6", st.DeliveredPackets, st.FailedPackets)
	}
	if st.DeliveredPackets < 5 {
		t.Fatalf("only %d/6 delivered at 20-25 dB", st.DeliveredPackets)
	}
	if st.AirtimeSamples <= 0 || st.Transmissions == 0 {
		t.Fatal("airtime/transmissions not accounted")
	}
	if st.ThroughputBps(10e6) <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestSchedulerRetransmitsAndGivesUp(t *testing.T) {
	// At a pinned absurd rate over weak links, packets exhaust attempts.
	cfg := core.DefaultConfig(2, 2, 5, 7)
	cfg.Seed = 51
	n, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(n, 2)
	s.MCS = phy.MCS7 // 64-QAM 3/4 over ~6 dB links: hopeless
	s.MaxAttempts = 2
	s.FillQueue(1, 300, 3)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.FailedPackets == 0 {
		t.Fatal("expected failures at MCS7 over 5-7 dB links")
	}
	if s.Queue.Len() != 0 {
		t.Fatal("queue should drain via MaxAttempts")
	}
}

func TestSchedulerFairnessAcrossStreams(t *testing.T) {
	n := newNet(t, 3, 3, 52)
	s := NewScheduler(n, 3)
	s.FillQueue(4, 300, 4)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerStreamBits) == 0 {
		t.Fatal("no per-stream accounting")
	}
	for j := 0; j < 3; j++ {
		if st.PerStreamBits[j] == 0 {
			t.Fatalf("stream %d starved", j)
		}
	}
}
