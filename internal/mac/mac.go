// Package mac implements MegaMIMO's link layer (§9): the shared downlink
// queue distributed to every AP over the backbone, designated-AP
// bookkeeping, lead contention with a weighted contention window,
// joint-transmission grouping, asynchronous acknowledgments and
// retransmissions, plus the TDMA round-robin scheduler used to model the
// 802.11 baseline's equal medium share.
package mac

import (
	"fmt"

	"megamimo/internal/core"
	"megamimo/internal/metrics"
	"megamimo/internal/phy"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Packet is one downlink MAC frame.
type Packet struct {
	// Stream is the destination stream (client antenna) index.
	Stream int
	// Payload is the MSDU.
	Payload []byte
	// DesignatedAP is the AP with the strongest link to the destination
	// (§9: every packet has one; the head packet's designated AP leads).
	DesignatedAP int
	// Attempts counts transmissions so far.
	Attempts int
	// Delivered is set once an acknowledgment arrives.
	Delivered bool
	// EnqueuedAt is the ether sample time the packet entered the shared
	// queue; the traffic layer derives per-packet latency from it.
	EnqueuedAt int64
	// Seq is the queue-assigned packet sequence number (1-based, assigned
	// on first Push and stable across requeues) — the flight recorder's
	// packet identity.
	Seq int64
}

// Queue is the shared downlink queue. Every AP sees the same queue because
// every payload rides the Ethernet backbone to every AP.
type Queue struct {
	packets []*Packet
	nextSeq int64
}

// Push appends a packet, assigning its sequence number on first entry.
func (q *Queue) Push(p *Packet) {
	if p.Seq == 0 {
		q.nextSeq++
		p.Seq = q.nextSeq
	}
	q.packets = append(q.packets, p)
}

// Len returns the queue length.
func (q *Queue) Len() int { return len(q.packets) }

// Head returns the head-of-line packet or nil.
func (q *Queue) Head() *Packet {
	if len(q.packets) == 0 {
		return nil
	}
	return q.packets[0]
}

// NextForStream returns the first queued packet for the given stream, or
// nil.
func (q *Queue) NextForStream(stream int) *Packet {
	for _, p := range q.packets {
		if p.Stream == stream {
			return p
		}
	}
	return nil
}

// Remove deletes a specific packet (after its async ACK).
func (q *Queue) Remove(p *Packet) {
	for i, x := range q.packets {
		if x == p {
			q.packets = append(q.packets[:i], q.packets[i+1:]...)
			return
		}
	}
}

// Requeue moves a packet to the back after a failed attempt, keeping it
// eligible for future joint transmissions ("if a packet is not ACKed ...
// combined with other packets in the queue for future concurrent
// transmissions").
func (q *Queue) Requeue(p *Packet) {
	q.Remove(p)
	q.packets = append(q.packets, p)
}

// BySeq returns the queued packet with the given sequence number, or nil.
// The late-ACK path uses it to resolve an acknowledgment that drained
// after its round's ACK timeout.
func (q *Queue) BySeq(seq int64) *Packet {
	for _, p := range q.packets {
		if p.Seq == seq {
			return p
		}
	}
	return nil
}

// DropStream removes and returns every queued packet for a stream (a
// departed client: its demand leaves the shared queue with it).
func (q *Queue) DropStream(stream int) []*Packet {
	var dropped []*Packet
	kept := q.packets[:0]
	for _, p := range q.packets {
		if p.Stream == stream {
			dropped = append(dropped, p)
			continue
		}
		kept = append(kept, p)
	}
	q.packets = kept
	return dropped
}

// Contention models the lead AP's CSMA access: the lead contends on behalf
// of all slaves with its contention window weighted by the number of
// packets in the joint transmission (§9, following [29]).
type Contention struct {
	// CWMinSlots is the base contention window in slots.
	CWMinSlots int
	// SlotSamples is the slot duration in ether samples (9 µs × rate).
	SlotSamples int
	src         *rng.Source
}

// NewContention builds the contention model for the given sample rate.
func NewContention(sampleRate units.Hertz, seed int64) *Contention {
	return &Contention{
		CWMinSlots:  15,
		SlotSamples: int(units.TicksIn(9e-6, sampleRate)),
		src:         rng.New(seed),
	}
}

// BackoffSamples draws the backoff airtime for a joint transmission
// carrying nPackets frames: the window shrinks ∝ 1/nPackets so a joint
// transmission delivering N packets contends like N queued stations.
func (c *Contention) BackoffSamples(nPackets int) int64 {
	return c.BackoffSamplesAttempt(nPackets, 0)
}

// maxBackoffExp caps the exponential backoff at CW × 2⁶ (802.11's
// CWmax/CWmin ratio for CWmin 15, CWmax 1023).
const maxBackoffExp = 6

// BackoffSamplesAttempt draws the backoff airtime for a retry round: the
// window starts at CWMinSlots/nPackets and doubles for every prior failed
// attempt of the head packet, capped at 2^maxBackoffExp — binary
// exponential backoff carried over to the joint queue, so a lossy ACK
// path (faulty backend) spaces retries out instead of hammering the
// medium. Attempt 0 is identical to BackoffSamples.
func (c *Contention) BackoffSamplesAttempt(nPackets, attempt int) int64 {
	if nPackets < 1 {
		nPackets = 1
	}
	w := c.CWMinSlots / nPackets
	if w < 1 {
		w = 1
	}
	if attempt > 0 {
		e := attempt
		if e > maxBackoffExp {
			e = maxBackoffExp
		}
		w <<= uint(e)
	}
	return int64(c.src.Intn(w+1) * c.SlotSamples)
}

// Scheduler drives a core.Network from the shared queue.
type Scheduler struct {
	Net   *core.Network
	Queue Queue
	Cont  *Contention
	// MaxAttempts bounds retransmissions per packet.
	MaxAttempts int
	// MCS overrides rate adaptation when ≥ 0.
	MCS phy.MCS
	// AckTimeoutSamples is how long the lead waits for backbone ACKs
	// after a joint transmission before judging the round. 0 uses the
	// default of one bus latency plus a sample — exactly enough on a
	// healthy backend; an ACK the fault layer delays beyond it surfaces
	// as a late ACK in a later round's drain.
	AckTimeoutSamples int64

	adapted   phy.MCS
	adaptedOK bool

	// Boundary telemetry, resolved once from the network registry.
	mRetx      *metrics.Counter
	mDelivered *metrics.Counter
	mFailed    *metrics.Counter
	qDepth     *metrics.Histogram
}

// NewScheduler wires a scheduler to a network whose measurement phase has
// already run.
func NewScheduler(net *core.Network, seed int64) *Scheduler {
	m := net.Metrics()
	return &Scheduler{
		Net:         net,
		Cont:        NewContention(net.Cfg.SampleRate, seed),
		MaxAttempts: 4,
		MCS:         -1,
		mRetx:       m.Counter("mac_retransmissions_total"),
		mDelivered:  m.Counter("mac_packets_delivered_total"),
		mFailed:     m.Counter("mac_packets_failed_total"),
		qDepth:      m.Histogram("mac_queue_depth", QueueDepthBuckets()),
	}
}

// QueueDepthBuckets returns the shared queue-occupancy histogram bounds
// (powers of two up to 512 packets).
func QueueDepthBuckets() []float64 {
	return []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

// Stats accumulates scheduler outcomes.
type Stats struct {
	DeliveredPackets int
	DeliveredBits    float64
	FailedPackets    int
	Transmissions    int
	AirtimeSamples   int64
	// PerStreamBits tracks goodput per stream for fairness analysis.
	PerStreamBits map[int]float64
}

// ThroughputBps returns delivered goodput over total airtime.
func (s *Stats) ThroughputBps(sampleRate units.Hertz) float64 {
	if s.AirtimeSamples == 0 {
		return 0
	}
	return s.DeliveredBits / units.Duration(units.Ticks(s.AirtimeSamples), sampleRate)
}

// EnsureRate resolves the MCS the scheduler transmits at: the pinned MCS
// when set, otherwise one probe transmission adapts it (cached across
// calls).
func (s *Scheduler) EnsureRate() error {
	if s.MCS >= 0 {
		s.adapted, s.adaptedOK = s.MCS, true
		return nil
	}
	if s.adaptedOK {
		return nil
	}
	mcs, ok, err := s.Net.ProbeAndSelectRate(256)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("mac: no deliverable rate")
	}
	s.adapted, s.adaptedOK = mcs, true
	return nil
}

// StepResult reports one joint-transmission service round.
type StepResult struct {
	// Delivered packets were ACKed this round; Failed exhausted their
	// attempts; Requeued stay in the queue for future joint
	// transmissions.
	Delivered, Failed, Requeued []*Packet
	// AirtimeSamples covers the contention backoff, sync header and
	// frame for this round.
	AirtimeSamples int64
	// DeliveredAt is the ether time the lead read the ACKs — the
	// per-packet delivery timestamp the traffic layer's latency
	// accounting uses.
	DeliveredAt int64
}

// Step performs one service round: group the head-of-line packet with one
// queued same-size packet per other stream, joint-transmit, collect the
// asynchronous ACKs off the backbone, and update the shared queue. A
// closed-loop workload calls Step between arrival pumps; Run loops it to
// drain a batch. An empty queue is a no-op.
func (s *Scheduler) Step() (*StepResult, error) {
	res := &StepResult{DeliveredAt: s.Net.Now()}
	if s.Queue.Len() == 0 {
		return res, nil
	}
	if err := s.EnsureRate(); err != nil {
		return nil, err
	}
	streams := s.Net.NumStreams()
	// Group: head packet plus one queued packet per other stream.
	head := s.Queue.Head()
	group := make([]*Packet, streams)
	group[head.Stream] = head
	size := len(head.Payload)
	for j := 0; j < streams; j++ {
		if j == head.Stream {
			continue
		}
		if p := s.Queue.NextForStream(j); p != nil && len(p.Payload) == size {
			group[j] = p
		}
	}
	payloads := make([][]byte, streams)
	nPkts := 0
	for j, p := range group {
		if p != nil {
			payloads[j] = p.Payload
			nPkts++
		}
	}
	// §9: the head packet's designated AP is nominated lead for this
	// transmission (every AP holds sync state toward every potential
	// lead from the measurement phase); a crashed nominee falls back to
	// the deterministic re-election order.
	lead := s.Net.ElectLead(head.DesignatedAP)
	if err := s.Net.SetLead(lead); err != nil {
		return nil, fmt.Errorf("mac: set lead %d: %w", lead, err)
	}
	res.AirtimeSamples += s.Cont.BackoffSamplesAttempt(nPkts, head.Attempts)
	tr := s.Net.Trace()
	span := tr.BeginSpan(s.Net.Now(), core.KindRound,
		core.TraceAttrs{AP: lead, Pkt: head.Seq, QueueDepth: s.Queue.Len()},
		"%d packets grouped", nPkts)
	txr, err := s.Net.JointTransmit(payloads, s.adapted)
	if err != nil {
		tr.EndSpanAttrs(span, s.Net.Now(), core.TraceAttrs{Cause: "joint-tx"}, "%v", err)
		return nil, err
	}
	res.AirtimeSamples += txr.AirtimeSamples

	// Asynchronous acknowledgments (§9, after MRD/ZipTx): each client
	// that decoded its frame posts an ACK on the backbone; the lead
	// reads them after the backbone latency and updates the shared
	// queue. Frames without an ACK stay queued for future joint
	// transmissions.
	ackAt := s.Net.Now()
	for j, okj := range txr.OK {
		if okj && group[j] != nil {
			s.Net.Bus.Send(1000+j/s.Net.Cfg.AntennasPerClient, lead, ackAt, Ack{Stream: j, Pkt: group[j].Seq})
		}
	}
	wait := s.AckTimeoutSamples
	if wait <= 0 {
		wait = s.Net.Bus.LatencySamples + 1
	}
	s.Net.AdvanceTime(wait)
	acked := make(map[int64]bool)
	var ackSeqs []int64 // arrival order, for the deterministic late-ACK pass
	for _, m := range s.Net.Bus.Receive(lead, s.Net.Now()) {
		if a, ok := m.Payload.(Ack); ok && !acked[a.Pkt] {
			acked[a.Pkt] = true
			ackSeqs = append(ackSeqs, a.Pkt)
		}
	}
	res.DeliveredAt = s.Net.Now()
	var deliveredBits int64
	inGroup := make(map[int64]bool, nPkts)
	for j, p := range group {
		if p == nil {
			continue
		}
		inGroup[p.Seq] = true
		p.Attempts++
		if acked[p.Seq] {
			p.Delivered = true
			s.Queue.Remove(p)
			res.Delivered = append(res.Delivered, p)
			s.mDelivered.Inc()
			deliveredBits += int64(8 * len(p.Payload))
		} else if p.Attempts >= s.MaxAttempts {
			s.Queue.Remove(p)
			res.Failed = append(res.Failed, p)
			s.mFailed.Inc()
			tr.Emit(res.DeliveredAt, core.KindRetransmit,
				core.TraceAttrs{Stream: j, Pkt: p.Seq, Cause: "max-attempts"},
				"stream %d packet dropped after %d attempts", j, p.Attempts)
		} else {
			s.Queue.Requeue(p)
			res.Requeued = append(res.Requeued, p)
			s.mRetx.Inc()
			tr.Emit(res.DeliveredAt, core.KindRetransmit,
				core.TraceAttrs{Stream: j, Pkt: p.Seq, Cause: "no-ack"},
				"stream %d attempt %d not ACKed", j, p.Attempts)
		}
	}
	// Late ACKs: an acknowledgment the backend delayed beyond the ACK
	// timeout drains in a later round. The packet it names was requeued
	// back then; deliver it now instead of burning another transmission.
	for _, seq := range ackSeqs {
		if inGroup[seq] {
			continue
		}
		p := s.Queue.BySeq(seq)
		if p == nil || p.Delivered {
			continue
		}
		p.Delivered = true
		s.Queue.Remove(p)
		res.Delivered = append(res.Delivered, p)
		s.mDelivered.Inc()
		deliveredBits += int64(8 * len(p.Payload))
	}
	s.qDepth.Observe(float64(s.Queue.Len()))
	tr.EndSpanAttrs(span, s.Net.Now(),
		core.TraceAttrs{QueueDepth: s.Queue.Len(), Bits: deliveredBits, OK: len(res.Failed) == 0},
		"%d delivered, %d requeued, %d failed", len(res.Delivered), len(res.Requeued), len(res.Failed))
	return res, nil
}

// Run drains the queue with joint transmissions until it is empty or every
// remaining packet has exhausted its attempts. Rate comes from one probe
// unless MCS pins it.
func (s *Scheduler) Run() (*Stats, error) {
	st := &Stats{PerStreamBits: make(map[int]float64)}
	if err := s.EnsureRate(); err != nil {
		return nil, err
	}
	for s.Queue.Len() > 0 {
		res, err := s.Step()
		if err != nil {
			return nil, err
		}
		st.Transmissions++
		st.AirtimeSamples += res.AirtimeSamples
		for _, p := range res.Delivered {
			st.DeliveredPackets++
			bits := float64(8 * len(p.Payload))
			st.DeliveredBits += bits
			st.PerStreamBits[p.Stream] += bits
		}
		st.FailedPackets += len(res.Failed)
	}
	return st, nil
}

// Ack is the backbone acknowledgment datagram; Pkt names the acknowledged
// packet so a delayed ACK still resolves after the stream has moved on.
// Exported so the checkpoint layer can serialize ACKs still in flight on
// the bus when a snapshot is taken.
type Ack struct {
	Stream int
	Pkt    int64
}

// FillQueue enqueues count packets of size bytes per stream, round-robin,
// with designated APs assigned (the strongest measured link).
func (s *Scheduler) FillQueue(count, size int, seed int64) {
	src := rng.New(seed)
	streams := s.Net.NumStreams()
	for i := 0; i < count; i++ {
		for j := 0; j < streams; j++ {
			s.Queue.Push(&Packet{
				Stream:       j,
				Payload:      src.Bytes(make([]byte, size)),
				DesignatedAP: s.Net.StrongestAP(j),
				EnqueuedAt:   s.Net.Now(),
			})
		}
	}
}
