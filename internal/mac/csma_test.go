package mac

import (
	"math"
	"testing"
)

func TestCSMAEqualContendersShareEqually(t *testing.T) {
	c := NewCSMA(10e6, 1)
	stations := make([]*Station, 4)
	for i := range stations {
		stations[i] = &Station{Pending: 500, Weight: 1}
	}
	st, err := c.Run(stations, 5000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stations {
		if s := st.Share(i); math.Abs(s-0.25) > 0.04 {
			t.Fatalf("station %d share %.3f, want ≈0.25", i, s)
		}
	}
	if st.Collisions == 0 {
		t.Fatal("four contenders never collided — model suspicious")
	}
}

func TestCSMAWeightedLeadWinsProportionally(t *testing.T) {
	// §9 / [29]: a lead carrying 4 packets contends with CW/4 and should
	// win roughly 4x as often as each single-packet station.
	c := NewCSMA(10e6, 2)
	lead := &Station{Pending: 4000, Weight: 4}
	others := []*Station{
		{Pending: 4000, Weight: 1},
		{Pending: 4000, Weight: 1},
	}
	st, err := c.Run(append([]*Station{lead}, others...), 5000, 6000)
	if err != nil {
		t.Fatal(err)
	}
	leadWins := float64(st.Delivered[0])
	otherWins := float64(st.Delivered[1]+st.Delivered[2]) / 2
	ratio := leadWins / otherWins
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("weighted lead won %.1fx as often (want ≈4x)", ratio)
	}
}

func TestCSMADrainsAndStops(t *testing.T) {
	c := NewCSMA(10e6, 3)
	stations := []*Station{{Pending: 5, Weight: 1}, {Pending: 3, Weight: 1}}
	st, err := c.Run(stations, 1000, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered[0] != 5 || st.Delivered[1] != 3 {
		t.Fatalf("delivered %v", st.Delivered)
	}
	if stations[0].Pending != 0 || stations[1].Pending != 0 {
		t.Fatal("queues not drained")
	}
	if st.TotalSamples <= int64(8*1000) {
		t.Fatal("airtime accounting missing overheads")
	}
}

func TestCSMACollisionsGrowWithContention(t *testing.T) {
	rate := func(n int) float64 {
		c := NewCSMA(10e6, 4)
		stations := make([]*Station, n)
		for i := range stations {
			stations[i] = &Station{Pending: 300, Weight: 1}
		}
		st, err := c.Run(stations, 2000, 100000)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range st.Delivered {
			total += d
		}
		return float64(st.Collisions) / float64(total+st.Collisions)
	}
	if r2, r16 := rate(2), rate(16); r16 <= r2 {
		t.Fatalf("collision rate did not grow: %0.3f → %0.3f", r2, r16)
	}
}

func TestCSMAValidation(t *testing.T) {
	c := NewCSMA(10e6, 5)
	if _, err := c.Run(nil, 100, 10); err == nil {
		t.Fatal("no stations accepted")
	}
}

// TestCSMAJointBeatsSequentialAirtime ties the model to the paper's story:
// one weighted joint transmission moving N packets uses less medium time
// than N sequential unicasts of the same frames.
func TestCSMAJointBeatsSequentialAirtime(t *testing.T) {
	const frame = 5000
	// Sequential: 4 stations × 100 frames each.
	c1 := NewCSMA(10e6, 6)
	seq := make([]*Station, 4)
	for i := range seq {
		seq[i] = &Station{Pending: 100, Weight: 1}
	}
	s1, err := c1.Run(seq, frame, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Joint: one lead delivers the same 400 frames as 100 4-packet joint
	// transmissions (each one frame of airtime).
	c2 := NewCSMA(10e6, 7)
	joint := []*Station{{Pending: 100, Weight: 4}}
	s2, err := c2.Run(joint, frame, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if s2.TotalSamples*3 > s1.TotalSamples {
		t.Fatalf("joint airtime %d not ≪ sequential %d", s2.TotalSamples, s1.TotalSamples)
	}
}
