package mac

import (
	"fmt"

	"megamimo/internal/phy"
	"megamimo/internal/rng"
)

// PacketState is the serializable form of one queued packet. Payload bytes
// are not stored: under the traffic engine every packet carries its
// stream's template payload, so the restore path re-binds it by stream and
// validates the length.
type PacketState struct {
	Stream       int   `json:"stream"`
	PayloadLen   int   `json:"payload_len"`
	DesignatedAP int   `json:"designated_ap"`
	Attempts     int   `json:"attempts,omitempty"`
	Delivered    bool  `json:"delivered,omitempty"`
	EnqueuedAt   int64 `json:"enqueued_at"`
	Seq          int64 `json:"seq"`
}

// QueueState is the serializable shared-queue state: the packets in queue
// order plus the sequence counter retransmission identity rides on.
type QueueState struct {
	NextSeq int64         `json:"next_seq"`
	Packets []PacketState `json:"packets"`
}

// Snapshot captures the queue.
func (q *Queue) Snapshot() QueueState {
	st := QueueState{NextSeq: q.nextSeq, Packets: make([]PacketState, len(q.packets))}
	for i, p := range q.packets {
		st.Packets[i] = PacketState{
			Stream:       p.Stream,
			PayloadLen:   len(p.Payload),
			DesignatedAP: p.DesignatedAP,
			Attempts:     p.Attempts,
			Delivered:    p.Delivered,
			EnqueuedAt:   p.EnqueuedAt,
			Seq:          p.Seq,
		}
	}
	return st
}

// RestoreSnapshot overwrites the queue from st. payloadFor returns the
// payload template for a stream; the restored packet aliases it, exactly
// as the traffic engine's enqueue path does.
func (q *Queue) RestoreSnapshot(st QueueState, payloadFor func(stream int) []byte) error {
	packets := make([]*Packet, len(st.Packets))
	for i, ps := range st.Packets {
		payload := payloadFor(ps.Stream)
		if payload == nil {
			return fmt.Errorf("mac: restore queue: no payload template for stream %d", ps.Stream)
		}
		if len(payload) != ps.PayloadLen {
			return fmt.Errorf("mac: restore queue: stream %d payload template is %d bytes, packet %d had %d",
				ps.Stream, len(payload), ps.Seq, ps.PayloadLen)
		}
		packets[i] = &Packet{
			Stream:       ps.Stream,
			Payload:      payload,
			DesignatedAP: ps.DesignatedAP,
			Attempts:     ps.Attempts,
			Delivered:    ps.Delivered,
			EnqueuedAt:   ps.EnqueuedAt,
			Seq:          ps.Seq,
		}
	}
	q.packets = packets
	q.nextSeq = st.NextSeq
	return nil
}

// SrcState snapshots the contention backoff rng.
func (c *Contention) SrcState() rng.State { return c.src.State() }

// RestoreSrc overwrites the contention backoff rng.
func (c *Contention) RestoreSrc(st rng.State) error { return c.src.Restore(st) }

// RateState is the scheduler's resolved-rate cache: restoring it skips the
// re-probe divergence window so a resumed scheduler transmits at exactly
// the MCS the interrupted run had adapted to.
type RateState struct {
	Adapted   int  `json:"adapted"`
	AdaptedOK bool `json:"adapted_ok"`
}

// RateSnapshot captures the adapted-rate cache.
func (s *Scheduler) RateSnapshot() RateState {
	return RateState{Adapted: int(s.adapted), AdaptedOK: s.adaptedOK}
}

// RestoreRate overwrites the adapted-rate cache.
func (s *Scheduler) RestoreRate(st RateState) {
	s.adapted, s.adaptedOK = phy.MCS(st.Adapted), st.AdaptedOK
}
