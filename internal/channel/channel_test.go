package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"megamimo/internal/rng"
)

func TestNewLinkPowerNormalization(t *testing.T) {
	src := rng.New(1)
	const want = 0.25
	var acc float64
	const n = 3000
	for i := 0; i < n; i++ {
		l := NewLink(src.Split(uint64(i)), DefaultIndoor, want, 0)
		acc += l.PowerGain()
	}
	got := acc / n
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("mean power gain %v, want %v", got, want)
	}
}

func TestNewLinkTapCountAndDelay(t *testing.T) {
	src := rng.New(2)
	l := NewLink(src, Params{NTaps: 6, DecaySamples: 2}, 1, 3)
	if len(l.Taps) != 6 || l.Delay != 3 {
		t.Fatalf("taps %d delay %d", len(l.Taps), l.Delay)
	}
	// Degenerate NTaps is repaired.
	l2 := NewLink(src, Params{NTaps: 0}, 1, 0)
	if len(l2.Taps) != 1 {
		t.Fatalf("NTaps 0 produced %d taps", len(l2.Taps))
	}
}

func TestExponentialProfileDecays(t *testing.T) {
	src := rng.New(3)
	p := Params{NTaps: 5, DecaySamples: 1.0}
	sums := make([]float64, p.NTaps)
	const n = 4000
	for i := 0; i < n; i++ {
		l := NewLink(src.Split(uint64(i)), p, 1, 0)
		for m, tap := range l.Taps {
			sums[m] += real(tap)*real(tap) + imag(tap)*imag(tap)
		}
	}
	for m := 1; m < p.NTaps; m++ {
		if sums[m] >= sums[m-1] {
			t.Fatalf("tap %d power %v ≥ tap %d power %v", m, sums[m], m-1, sums[m-1])
		}
	}
}

func TestRicianFirstTapHasLOSBias(t *testing.T) {
	src := rng.New(4)
	// With large K the first tap magnitude barely varies.
	p := Params{NTaps: 1, DecaySamples: 1, RicianK: 100}
	var min, max float64 = math.Inf(1), 0
	for i := 0; i < 500; i++ {
		l := NewLink(src.Split(uint64(i)), p, 1, 0)
		m := cmplx.Abs(l.Taps[0])
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	if max/min > 2 {
		t.Fatalf("K=100 magnitude spread too wide: [%v, %v]", min, max)
	}
}

func TestFreqResponseSingleTapIsFlat(t *testing.T) {
	l := &Link{Taps: []complex128{0.5 - 0.5i}}
	h := l.FreqResponse(64)
	for k, v := range h {
		if cmplx.Abs(v-(0.5-0.5i)) > 1e-12 {
			t.Fatalf("bin %d = %v", k, v)
		}
	}
}

func TestFreqResponseMatchesDFTOfTaps(t *testing.T) {
	src := rng.New(5)
	l := NewLink(src, Params{NTaps: 4, DecaySamples: 1.5}, 1, 0)
	h := l.FreqResponse(64)
	for k := 0; k < 64; k += 7 {
		var want complex128
		for m, tap := range l.Taps {
			want += tap * cmplx.Exp(complex(0, -2*math.Pi*float64(k*m)/64))
		}
		if cmplx.Abs(h[k]-want) > 1e-9 {
			t.Fatalf("bin %d: %v vs %v", k, h[k], want)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	l := &Link{Taps: []complex128{1, 2}, Delay: 1}
	c := l.Clone()
	c.Taps[0] = 9
	if l.Taps[0] != 1 {
		t.Fatal("Clone shares taps")
	}
}

func TestEvolveRhoOneFreezes(t *testing.T) {
	src := rng.New(6)
	l := NewLink(src, DefaultIndoor, 1, 0)
	before := append([]complex128(nil), l.Taps...)
	l.Evolve(src, 1)
	for i := range before {
		if l.Taps[i] != before[i] {
			t.Fatal("rho=1 changed the channel")
		}
	}
}

func TestEvolvePreservesMeanPower(t *testing.T) {
	src := rng.New(7)
	var before, after float64
	for i := 0; i < 2000; i++ {
		l := NewLink(src.Split(uint64(i)), Params{NTaps: 3, DecaySamples: 1}, 1, 0)
		before += l.PowerGain()
		l.Evolve(src, 0.9)
		after += l.PowerGain()
	}
	if math.Abs(after/before-1) > 0.05 {
		t.Fatalf("Evolve changed mean power by %v×", after/before)
	}
}

func TestEvolveDecorrelatesAtRhoZero(t *testing.T) {
	src := rng.New(8)
	var corr complex128
	var norm float64
	for i := 0; i < 2000; i++ {
		l := NewLink(src.Split(uint64(i)), Params{NTaps: 1, DecaySamples: 1}, 1, 0)
		old := l.Taps[0]
		l.Evolve(src, 0)
		corr += old * cmplx.Conj(l.Taps[0])
		norm += cmplx.Abs(old) * cmplx.Abs(l.Taps[0])
	}
	if cmplx.Abs(corr)/norm > 0.1 {
		t.Fatalf("rho=0 left correlation %v", cmplx.Abs(corr)/norm)
	}
}

func TestCoherenceRho(t *testing.T) {
	if got := CoherenceRho(0, 0.25); math.Abs(got-1) > 1e-12 {
		t.Fatalf("rho(0) = %v", got)
	}
	if got := CoherenceRho(0.25, 0.25); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("rho(Tc) = %v", got)
	}
	if CoherenceRho(1, 0) != 0 {
		t.Fatal("zero coherence should return 0")
	}
}
