// Package channel models the wireless propagation between one transmit
// antenna and one receive antenna: a tapped-delay-line with Rayleigh or
// Rician taps and an exponential power-delay profile, an integer-sample
// propagation delay, and Gauss-Markov evolution across the coherence time.
//
// The conference-room scenario the paper evaluates (§10) is frequency
// selective but quasi-static: coherence times are hundreds of
// milliseconds, so a channel snapshot stays valid across many packets —
// exactly the property MegaMIMO's measurement amortization depends on.
package channel

import (
	"math"
	"math/cmplx"

	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Link is the channel from one transmit antenna to one receive antenna.
type Link struct {
	// Taps are the baseband FIR coefficients at sample spacing, including
	// the overall path gain.
	Taps []complex128
	// Delay is the integer propagation delay in samples (line-of-sight
	// distance / c at the sample rate; tens of ns in a conference room,
	// usually 0–1 samples at 10–20 Msample/s).
	Delay int
}

// Params configures link generation.
type Params struct {
	// NTaps is the number of multipath taps (≥ 1).
	NTaps int
	// DecaySamples is the exponential power-delay-profile constant in
	// samples; tap m has mean power ∝ e^{−m/DecaySamples}.
	DecaySamples units.Samples
	// RicianK is the K-factor (linear) of the first tap; 0 means pure
	// Rayleigh, large K approaches a pure LOS channel.
	RicianK float64
}

// DefaultIndoor is a conference-room-like profile: short delay spread
// (well inside the 16-sample cyclic prefix) and a moderate LOS component.
var DefaultIndoor = Params{NTaps: 4, DecaySamples: 1.2, RicianK: 2}

// NewLink draws a link with the given average power gain (linear). The tap
// powers are normalized so E[Σ|tap|²] = powerGain.
func NewLink(src *rng.Source, p Params, powerGain float64, delay int) *Link {
	if p.NTaps < 1 {
		p.NTaps = 1
	}
	weights := make([]float64, p.NTaps)
	var sum float64
	decay := p.DecaySamples
	if decay < 1e-9 {
		decay = 1e-9
	}
	for m := range weights {
		w := math.Exp(units.Ratio(units.Samples(-float64(m)), decay))
		weights[m] = w
		sum += w
	}
	taps := make([]complex128, p.NTaps)
	for m := range taps {
		pw := powerGain * weights[m] / sum
		if m == 0 && p.RicianK > 0 {
			// Rician first tap: fixed LOS component + scattered part.
			los := math.Sqrt(pw * p.RicianK / (1 + p.RicianK))
			nlos := pw / (1 + p.RicianK)
			taps[m] = complex(los, 0)*cmplx.Exp(complex(0, src.PhaseUniform())) + src.ComplexNormal(nlos)
		} else {
			taps[m] = src.ComplexNormal(pw)
		}
	}
	return &Link{Taps: taps, Delay: delay}
}

// PowerGain returns Σ|tap|², the average wideband power gain.
func (l *Link) PowerGain() float64 {
	var acc float64
	for _, t := range l.Taps {
		acc += real(t)*real(t) + imag(t)*imag(t)
	}
	return acc
}

// FreqResponse returns the channel frequency response on an nfft-bin grid:
// H[k] = Σ_m taps[m]·e^{−j2πkm/nfft}. The integer Delay is not included —
// it appears as a timing offset, which OFDM absorbs into the cyclic
// prefix and the estimated per-bin phase slope.
func (l *Link) FreqResponse(nfft int) []complex128 {
	out := make([]complex128, nfft)
	for k := 0; k < nfft; k++ {
		var acc complex128
		for m, tap := range l.Taps {
			ang := -2 * math.Pi * float64(k*m) / float64(nfft)
			acc += tap * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	return out
}

// Clone returns an independent copy of the link.
func (l *Link) Clone() *Link {
	return &Link{Taps: append([]complex128(nil), l.Taps...), Delay: l.Delay}
}

// Evolve advances the link one coherence step using a Gauss-Markov
// innovation: taps ← ρ·taps + √(1−ρ²)·fresh, preserving each tap's mean
// power. ρ = 1 freezes the channel; ρ = J₀(2πf_D·Δt) matches a Doppler
// spectrum to first order.
func (l *Link) Evolve(src *rng.Source, rho float64) {
	if rho >= 1 {
		return
	}
	if rho < 0 {
		rho = 0
	}
	innoVar := 1 - rho*rho
	for m := range l.Taps {
		t := l.Taps[m]
		// The tap's mean power is approximated by its current power; for
		// the slow evolution rates in the experiments the approximation
		// error is negligible against the shadowing variance.
		pw := real(t)*real(t) + imag(t)*imag(t)
		l.Taps[m] = complex(rho, 0)*t + src.ComplexNormal(pw*innoVar)
	}
}

// CoherenceRho converts a coherence time and elapsed time into the
// Gauss-Markov ρ: ρ = e^{−Δt/T_c}.
func CoherenceRho(elapsed, coherence units.Samples) float64 {
	if coherence <= 0 {
		return 0
	}
	return math.Exp(-units.Ratio(elapsed, coherence))
}
