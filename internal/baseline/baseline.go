// Package baseline implements the comparison systems of §11: traditional
// 802.11 unicast, where only one AP transmits at a time and every client
// gets an equal share of the medium (the paper schedules equal shares
// because USRPs cannot carrier-sense), and single-AP transmit beamforming
// for the 802.11n comparison. Both run over the same simulated medium and
// PHY as MegaMIMO, so every comparison is apples to apples.
package baseline

import (
	"fmt"
	"math"

	"megamimo/internal/core"
	"megamimo/internal/matrix"
	"megamimo/internal/ofdm"
	"megamimo/internal/phy"
	"megamimo/internal/rate"
	"megamimo/internal/units"
)

// Unicast models traditional 802.11: each client is served by its
// strongest AP, one transmission at a time.
type Unicast struct {
	Net *core.Network

	// tx/rx are reused across Transmit calls so per-packet workload
	// service doesn't rebuild modulator state every frame.
	tx *phy.TX
	rx *phy.RX
}

// New returns a baseline driver over an already measured network.
func New(net *core.Network) *Unicast {
	return &Unicast{Net: net, tx: phy.NewTX(), rx: phy.NewRX()}
}

// SubcarrierSNR returns the per-occupied-bin linear SNR of the unicast
// link from AP ap (antenna 0) to the given stream, computed from the
// measured channel matrix and the client-reported noise — the inputs
// effective-SNR rate selection uses.
func (u *Unicast) SubcarrierSNR(stream, ap int) ([]float64, error) {
	m := u.Net.Msmt
	if m == nil {
		return nil, fmt.Errorf("baseline: no measurement")
	}
	g := ap * u.Net.Cfg.AntennasPerAP
	nv := u.Net.Cfg.NoiseVar
	if stream < len(m.NoiseVar) && m.NoiseVar[stream] > 0 {
		nv = m.NoiseVar[stream]
	}
	out := make([]float64, len(m.H))
	for i, hm := range m.H {
		v := hm.At(stream, g)
		out[i] = (real(v)*real(v) + imag(v)*imag(v)) / nv
	}
	return out, nil
}

// SelectRate picks the unicast MCS for a stream from its strongest AP,
// applying the same receiver implementation-loss margin the joint
// beamformer's selector uses (both systems predict from measured channels;
// neither prediction includes the receiver's own estimation noise).
func (u *Unicast) SelectRate(stream int) (mcs phy.MCS, ap int, ok bool, err error) {
	ap = u.Net.StrongestAP(stream)
	sub, err := u.SubcarrierSNR(stream, ap)
	if err != nil {
		return 0, 0, false, err
	}
	margin := units.DBToLinear(-u.Net.Cfg.RateMarginDB)
	for i := range sub {
		sub[i] *= margin
	}
	mcs, ok = rate.Select(sub)
	return mcs, ap, ok, nil
}

// Transmit sends one unicast frame from the AP's antenna 0 to the stream's
// client antenna over the air and decodes it — a real 802.11 transmission
// on the shared medium (all other APs stay silent, as CSMA forces).
func (u *Unicast) Transmit(stream, ap int, payload []byte, mcs phy.MCS) (*phy.RxFrame, int64, error) {
	n := u.Net
	if u.tx == nil {
		u.tx, u.rx = phy.NewTX(), phy.NewRX()
	}
	wave, err := u.tx.Frame(payload, mcs)
	if err != nil {
		return nil, 0, err
	}
	start := n.Now() + 64
	apNode := n.APs[ap].Node
	n.Air.Transmit(n.APAntennaID(ap, 0), apNode.Osc, start, wave)
	cl := n.Clients[stream/n.Cfg.AntennasPerClient]
	ant := stream % n.Cfg.AntennasPerClient
	win := n.Air.Observe(n.ClientAntennaID(cl.Index, ant), cl.Node.Osc, start-128, len(wave)+256)
	frame, err := u.rx.Decode(win)
	airtime := int64(len(wave))
	n.AdvanceTime(airtime + 384)
	n.Air.ClearBefore(n.Now())
	if err != nil {
		return nil, airtime, nil // lost frame: airtime still spent
	}
	return frame, airtime, nil
}

// EqualShareThroughput computes the total 802.11 network throughput with
// every stream getting an equal share of the medium at its selected
// unicast rate (§11.2's baseline accounting): Σ_c rate_c / N.
func (u *Unicast) EqualShareThroughput(payloadBytes int) (total float64, perStream []float64, err error) {
	streams := u.Net.NumStreams()
	perStream = make([]float64, streams)
	for s := 0; s < streams; s++ {
		mcs, _, ok, err := u.SelectRate(s)
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			continue // dead spot: zero throughput, still consumes share
		}
		perStream[s] = rate.ThroughputAtMCS(mcs, payloadBytes, u.Net.Cfg.SampleRate) / float64(streams)
		total += perStream[s]
	}
	return total, perStream, nil
}

// SingleAPMIMO is the 802.11n baseline: one AP transmit-beamforms its own
// antennas to one multi-antenna client (an ordinary 2×2 link), clients
// taking equal turns.
type SingleAPMIMO struct {
	Net *core.Network
}

// SubBlock extracts the client×AP sub-channel for one (client, AP) pair:
// rows are the client's antennas, columns the AP's antennas.
func (s *SingleAPMIMO) SubBlock(client, ap int) ([]*matrix.M, error) {
	m := s.Net.Msmt
	if m == nil {
		return nil, fmt.Errorf("baseline: no measurement")
	}
	ac, aa := s.Net.Cfg.AntennasPerClient, s.Net.Cfg.AntennasPerAP
	out := make([]*matrix.M, len(m.H))
	for i, hm := range m.H {
		b := matrix.New(ac, aa)
		for r := 0; r < ac; r++ {
			for c := 0; c < aa; c++ {
				b.Set(r, c, hm.At(client*ac+r, ap*aa+c))
			}
		}
		out[i] = b
	}
	return out, nil
}

// StreamSNR predicts the per-bin per-stream SNR of single-AP eigenmode
// (SVD) beamforming over the sub-block with equal power per stream — what
// a sounding-capable 802.11n link achieves, and the fair "best possible
// one AP" reference (it pays no channel-inversion penalty).
func (s *SingleAPMIMO) StreamSNR(client, ap int) ([][]float64, error) {
	blocks, err := s.SubBlock(client, ap)
	if err != nil {
		return nil, err
	}
	nv := s.Net.Cfg.NoiseVar
	row0 := client * s.Net.Cfg.AntennasPerClient
	if m := s.Net.Msmt; row0 < len(m.NoiseVar) && m.NoiseVar[row0] > 0 {
		nv = m.NoiseVar[row0]
	}
	ac := s.Net.Cfg.AntennasPerClient
	out := make([][]float64, ac)
	for r := range out {
		out[r] = make([]float64, len(blocks))
	}
	nStreams := float64(ac)
	for i, b := range blocks {
		for r, s2 := range singularValuesSquared(b) {
			if r >= ac {
				break
			}
			// Equal power split across eigenmodes, unit total TX power.
			out[r][i] = s2 / nStreams / nv
		}
	}
	return out, nil
}

// singularValuesSquared returns the squared singular values of a small
// matrix in descending order (eigenvalues of AᴴA via closed form for 2×2,
// power iteration fallback otherwise).
func singularValuesSquared(a *matrix.M) []float64 {
	g := a.H().Mul(a)
	n := g.Rows
	if n == 2 {
		tr := real(g.At(0, 0)) + real(g.At(1, 1))
		det := real(g.At(0, 0))*real(g.At(1, 1)) -
			(real(g.At(0, 1))*real(g.At(1, 0)) - imag(g.At(0, 1))*imag(g.At(1, 0)))
		disc := tr*tr - 4*det
		if disc < 0 {
			disc = 0
		}
		rt := math.Sqrt(disc)
		return []float64{(tr + rt) / 2, (tr - rt) / 2}
	}
	// General small-matrix fallback: eigenvalues by repeated deflation
	// with power iteration (sufficient for the ≤4×4 blocks used here).
	out := make([]float64, 0, n)
	work := g.Clone()
	for k := 0; k < n; k++ {
		lambda, vec := powerIteration(work)
		if lambda <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, lambda)
		// Deflate: work -= λ·v·vᴴ.
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				work.Set(r, c, work.At(r, c)-complex(lambda, 0)*vec[r]*conj(vec[c]))
			}
		}
	}
	return out
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }

func powerIteration(g *matrix.M) (float64, []complex128) {
	n := g.Rows
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(1/math.Sqrt(float64(n)), 0)
	}
	var lambda float64
	for it := 0; it < 200; it++ {
		w := g.MulVec(v)
		var norm float64
		for _, x := range w {
			norm += real(x)*real(x) + imag(x)*imag(x)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-18 {
			return 0, v
		}
		for i := range w {
			w[i] /= complex(norm, 0)
		}
		v = w
		lambda = norm
	}
	return lambda, v
}

// Throughput returns the 802.11n baseline total: each client served in
// turn by its strongest AP with 2-stream TX beamforming, equal shares.
func (s *SingleAPMIMO) Throughput(payloadBytes int) (float64, []float64, error) {
	nClients := s.Net.Cfg.NumClients
	per := make([]float64, nClients)
	var total float64
	for c := 0; c < nClients; c++ {
		ap := s.Net.StrongestAP(c * s.Net.Cfg.AntennasPerClient)
		snr, err := s.StreamSNR(c, ap)
		if err != nil {
			return 0, nil, err
		}
		var clientRate float64
		margin := units.DBToLinear(-s.Net.Cfg.RateMarginDB)
		for _, sub := range snr {
			scaled := make([]float64, len(sub))
			for i := range sub {
				scaled[i] = sub[i] * margin
			}
			if mcs, ok := rate.Select(scaled); ok {
				clientRate += rate.ThroughputAtMCS(mcs, payloadBytes, s.Net.Cfg.SampleRate)
			}
		}
		per[c] = clientRate / float64(nClients)
		total += per[c]
	}
	return total, per, nil
}

// OccupiedBinCount is exported for harness sanity checks.
const OccupiedBinCount = ofdm.NData + ofdm.NPilot
