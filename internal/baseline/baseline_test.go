package baseline

import (
	"bytes"
	"testing"

	"megamimo/internal/core"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

func measuredNet(t *testing.T, nAPs, nClients int, seed int64, lo, hi units.Decibels) *core.Network {
	t.Helper()
	cfg := core.DefaultConfig(nAPs, nClients, lo, hi)
	cfg.Seed = seed
	n, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSelectRatePlausible(t *testing.T) {
	n := measuredNet(t, 3, 3, 60, 20, 25)
	u := New(n)
	for s := 0; s < 3; s++ {
		mcs, ap, ok, err := u.SelectRate(s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stream %d: no rate at 20-25 dB", s)
		}
		if mcs < 3 {
			t.Fatalf("stream %d: rate %v too low for 20-25 dB", s, mcs)
		}
		if ap < 0 || ap >= 3 {
			t.Fatalf("bad AP %d", ap)
		}
	}
}

func TestUnicastTransmitDelivers(t *testing.T) {
	n := measuredNet(t, 2, 2, 61, 20, 25)
	u := New(n)
	src := rng.New(9)
	payload := src.Bytes(make([]byte, 800))
	mcs, ap, ok, err := u.SelectRate(0)
	if err != nil || !ok {
		t.Fatalf("rate: %v %v", ok, err)
	}
	frame, airtime, err := u.Transmit(0, ap, payload, mcs)
	if err != nil {
		t.Fatal(err)
	}
	if airtime <= 0 {
		t.Fatal("no airtime")
	}
	if frame == nil || !frame.FCSOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatal("unicast frame not delivered at selected rate")
	}
}

func TestUnicastRateMatchesDelivery(t *testing.T) {
	// The selected unicast rate must actually deliver over the signal
	// path — the baseline and rate table must agree end to end.
	n := measuredNet(t, 2, 2, 62, 12, 16)
	u := New(n)
	src := rng.New(10)
	okCount, trials := 0, 6
	mcs, ap, ok, err := u.SelectRate(1)
	if err != nil || !ok {
		t.Fatalf("rate: %v %v", ok, err)
	}
	for i := 0; i < trials; i++ {
		frame, _, err := u.Transmit(1, ap, src.Bytes(make([]byte, 600)), mcs)
		if err != nil {
			t.Fatal(err)
		}
		if frame != nil && frame.FCSOK {
			okCount++
		}
	}
	if okCount < trials-2 {
		t.Fatalf("selected rate %v delivered only %d/%d", mcs, okCount, trials)
	}
}

func TestEqualShareThroughput(t *testing.T) {
	n := measuredNet(t, 4, 4, 63, 20, 25)
	u := New(n)
	total, per, err := u.EqualShareThroughput(1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("%d per-stream entries", len(per))
	}
	var sum float64
	for _, p := range per {
		sum += p
	}
	if total != sum {
		t.Fatal("total != Σ per-stream")
	}
	// At 20-25 dB on 10 MHz the 802.11 total should sit near the paper's
	// high-SNR anchor (23.6 Mb/s): each stream runs MCS6-7 but only gets a
	// quarter of the medium, so the sum ≈ one full-rate link.
	if total < 15e6 || total > 30e6 {
		t.Fatalf("802.11 total %v Mb/s implausible", total/1e6)
	}
}

func TestEqualShareDeadSpotContributesZero(t *testing.T) {
	n := measuredNet(t, 2, 2, 64, -8, -6)
	u := New(n)
	total, _, err := u.EqualShareThroughput(1500)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("dead-spot network yields %v bps", total)
	}
}

func TestSingleAPMIMOSubBlock(t *testing.T) {
	cfg := core.DefaultConfig(2, 2, 20, 24)
	cfg.AntennasPerAP = 2
	cfg.AntennasPerClient = 2
	cfg.SampleRate = 20e6
	cfg.Seed = 65
	n, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	s := &SingleAPMIMO{Net: n}
	blocks, err := s.SubBlock(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0].Rows != 2 || blocks[0].Cols != 2 {
		t.Fatalf("sub-block %dx%d", blocks[0].Rows, blocks[0].Cols)
	}
	// Sub-block must match the full matrix entries.
	full := n.Msmt.H[7]
	if blocks[7].At(1, 0) != full.At(3, 2) {
		t.Fatal("sub-block extraction misindexed")
	}
	tput, per, err := s.Throughput(1500)
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 || len(per) != 2 {
		t.Fatalf("throughput %v per %v", tput, per)
	}
}
