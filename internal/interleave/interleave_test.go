package interleave

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The four 802.11a symbol sizes: (Ncbps, Nbpsc).
var configs = [][2]int{{48, 1}, {96, 2}, {192, 4}, {288, 6}}

func TestRoundTripAllConfigs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, cfg := range configs {
		it := MustNew(cfg[0], cfg[1])
		bits := make([]byte, cfg[0])
		for i := range bits {
			bits[i] = byte(r.Intn(2))
		}
		inter, err := it.Interleave(bits)
		if err != nil {
			t.Fatal(err)
		}
		back, err := it.Deinterleave(inter)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if back[i] != bits[i] {
				t.Fatalf("cfg %v: round trip failed at %d", cfg, i)
			}
		}
	}
}

func TestPermutationIsBijective(t *testing.T) {
	for _, cfg := range configs {
		it := MustNew(cfg[0], cfg[1])
		seen := make([]bool, cfg[0])
		for _, p := range it.perm {
			if p < 0 || p >= cfg[0] || seen[p] {
				t.Fatalf("cfg %v: not a permutation", cfg)
			}
			seen[p] = true
		}
	}
}

func TestAdjacentBitsSeparated(t *testing.T) {
	// The point of the interleaver: adjacent coded bits must land on
	// well-separated positions (different subcarriers).
	it := MustNew(192, 4) // 16-QAM symbol
	for k := 0; k+1 < 192; k++ {
		d := it.perm[k] - it.perm[k+1]
		if d < 0 {
			d = -d
		}
		// Same subcarrier means |Δposition| < 4.
		if d < 4 {
			t.Fatalf("bits %d and %d land within one subcarrier (Δ=%d)", k, k+1, d)
		}
	}
}

func TestKnownFirstPermutationEntries(t *testing.T) {
	// For BPSK (Ncbps=48, s=1): perm[k] = 3*(k mod 16) + floor(k/16).
	it := MustNew(48, 1)
	for k := 0; k < 48; k++ {
		want := 3*(k%16) + k/16
		if it.perm[k] != want {
			t.Fatalf("perm[%d] = %d, want %d", k, it.perm[k], want)
		}
	}
}

func TestBadParameters(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("accepted ncbps=0")
	}
	if _, err := New(50, 4); err == nil {
		t.Fatal("accepted ncbps not divisible by nbpsc")
	}
	if _, err := New(24, 1); err == nil {
		t.Fatal("accepted ncbps not multiple of 16")
	}
}

func TestBlockSizeValidation(t *testing.T) {
	it := MustNew(48, 1)
	if _, err := it.Interleave(make([]byte, 47)); err == nil {
		t.Fatal("accepted short block")
	}
	if _, err := it.Deinterleave(make([]byte, 49)); err == nil {
		t.Fatal("accepted long block")
	}
	if _, err := it.DeinterleaveLLR(make([]float64, 1)); err == nil {
		t.Fatal("accepted short LLR block")
	}
}

func TestDeinterleaveLLRMatchesBits(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	it := MustNew(288, 6)
	bits := make([]byte, 288)
	llr := make([]float64, 288)
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	inter, _ := it.Interleave(bits)
	for i, b := range inter {
		if b == 0 {
			llr[i] = 1
		} else {
			llr[i] = -1
		}
	}
	dl, err := it.DeinterleaveLLR(llr)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bits {
		if b == 0 && dl[i] != 1 || b == 1 && dl[i] != -1 {
			t.Fatalf("LLR deinterleave mismatch at %d", i)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []byte, cfgIdx uint8) bool {
		cfg := configs[int(cfgIdx)%len(configs)]
		it := MustNew(cfg[0], cfg[1])
		bits := make([]byte, cfg[0])
		for i := range bits {
			if len(raw) > 0 {
				bits[i] = raw[i%len(raw)] & 1
			}
		}
		inter, err := it.Interleave(bits)
		if err != nil {
			return false
		}
		back, err := it.Deinterleave(inter)
		if err != nil {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
