// Package interleave implements the 802.11 per-OFDM-symbol block
// interleaver. The two-permutation design separates adjacent coded bits
// onto non-adjacent subcarriers (first permutation) and alternates them
// between high- and low-reliability constellation bit positions (second),
// so a frequency-selective fade or a weak QAM bit does not wipe out a run
// of consecutive coded bits.
package interleave

import (
	"fmt"
	"sync"
)

// Interleaver holds the precomputed permutation for one (Ncbps, Nbpsc)
// pair: coded bits per symbol and bits per subcarrier.
type Interleaver struct {
	ncbps int
	perm  []int // perm[k] = position after interleaving
	inv   []int
}

// New builds the interleaver for ncbps coded bits per symbol carried on
// subcarriers with nbpsc bits each. ncbps must be a multiple of 16·nbpsc
// is NOT required by the math; only divisibility used below is enforced.
func New(ncbps, nbpsc int) (*Interleaver, error) {
	if ncbps <= 0 || nbpsc <= 0 || ncbps%nbpsc != 0 {
		return nil, fmt.Errorf("interleave: bad parameters ncbps=%d nbpsc=%d", ncbps, nbpsc)
	}
	if ncbps%16 != 0 {
		return nil, fmt.Errorf("interleave: ncbps=%d not a multiple of 16", ncbps)
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	it := &Interleaver{ncbps: ncbps, perm: make([]int, ncbps), inv: make([]int, ncbps)}
	for k := 0; k < ncbps; k++ {
		// First permutation (802.11-1999 17.3.5.6).
		i := (ncbps/16)*(k%16) + k/16
		// Second permutation.
		j := s*(i/s) + (i+ncbps-(16*i)/ncbps)%s
		it.perm[k] = j
		it.inv[j] = k
	}
	return it, nil
}

// MustNew panics on error; for table-driven setup with constant parameters.
func MustNew(ncbps, nbpsc int) *Interleaver {
	it, err := New(ncbps, nbpsc)
	if err != nil {
		panic(err)
	}
	return it
}

// cache holds one shared Interleaver per parameter pair. An Interleaver is
// read-only after construction, so cached instances are safe for concurrent
// use by any number of goroutines.
var cache = struct {
	sync.Mutex
	m map[[2]int]*Interleaver
}{m: make(map[[2]int]*Interleaver)}

// Cached returns the shared interleaver for (ncbps, nbpsc), building it on
// first use. Per-frame PHY paths use this so the permutation tables are not
// rebuilt for every frame.
func Cached(ncbps, nbpsc int) (*Interleaver, error) {
	key := [2]int{ncbps, nbpsc}
	cache.Lock()
	defer cache.Unlock()
	if it := cache.m[key]; it != nil {
		return it, nil
	}
	it, err := New(ncbps, nbpsc)
	if err != nil {
		return nil, err
	}
	cache.m[key] = it
	return it, nil
}

// MustCached is Cached for compile-time-constant parameters.
func MustCached(ncbps, nbpsc int) *Interleaver {
	it, err := Cached(ncbps, nbpsc)
	if err != nil {
		panic(err)
	}
	return it
}

// BlockSize returns the interleaver block length in bits.
func (it *Interleaver) BlockSize() int { return it.ncbps }

// Interleave permutes one block of exactly BlockSize bits.
func (it *Interleaver) Interleave(bits []byte) ([]byte, error) {
	out := make([]byte, len(bits))
	if err := it.InterleaveInto(out, bits); err != nil {
		return nil, err
	}
	return out, nil
}

// InterleaveInto is Interleave with a caller-supplied destination of exactly
// BlockSize bits; it allocates nothing. dst must not alias bits.
func (it *Interleaver) InterleaveInto(dst, bits []byte) error {
	if len(bits) != it.ncbps {
		return fmt.Errorf("interleave: block of %d bits, want %d", len(bits), it.ncbps)
	}
	if len(dst) != it.ncbps {
		return fmt.Errorf("interleave: destination of %d bits, want %d", len(dst), it.ncbps)
	}
	for k, b := range bits {
		dst[it.perm[k]] = b
	}
	return nil
}

// Deinterleave inverts Interleave on one block.
func (it *Interleaver) Deinterleave(bits []byte) ([]byte, error) {
	if len(bits) != it.ncbps {
		return nil, fmt.Errorf("interleave: block of %d bits, want %d", len(bits), it.ncbps)
	}
	out := make([]byte, len(bits))
	for j, b := range bits {
		out[it.inv[j]] = b
	}
	return out, nil
}

// DeinterleaveLLR inverts the permutation on soft values.
func (it *Interleaver) DeinterleaveLLR(llr []float64) ([]float64, error) {
	out := make([]float64, len(llr))
	if err := it.DeinterleaveLLRInto(out, llr); err != nil {
		return nil, err
	}
	return out, nil
}

// DeinterleaveLLRInto is DeinterleaveLLR with a caller-supplied destination
// of exactly BlockSize values; it allocates nothing. dst must not alias llr.
func (it *Interleaver) DeinterleaveLLRInto(dst, llr []float64) error {
	if len(llr) != it.ncbps {
		return fmt.Errorf("interleave: block of %d LLRs, want %d", len(llr), it.ncbps)
	}
	if len(dst) != it.ncbps {
		return fmt.Errorf("interleave: destination of %d LLRs, want %d", len(dst), it.ncbps)
	}
	for j, v := range llr {
		dst[it.inv[j]] = v
	}
	return nil
}
