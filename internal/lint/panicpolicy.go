package lint

import (
	"go/ast"
	"strings"
)

// panicPolicyPkgs are the packages whose exported API must return errors
// instead of panicking: they sit on user-reachable input paths (rate
// selection from measured SNRs, modulation of frame bits, statistics over
// experiment output, the PHY encode/decode pipeline, the fault-injection
// schedule that chaos experiments replay, the pluggable sync strategies
// the closed loop calls on every joint transmission, and the streaming
// telemetry surfaces — sinks and monitors run inside the tracer's record
// path on every event, so a panic there kills the simulation mid-run).
var panicPolicyPkgs = map[string]bool{
	"megamimo/internal/rate":       true,
	"megamimo/internal/modulation": true,
	"megamimo/internal/stats":      true,
	"megamimo/internal/phy":        true,
	"megamimo/internal/fault":      true,
	"megamimo/internal/sync":       true,
	"megamimo/internal/tracefmt":   true,
	"megamimo/internal/metrics":    true,
	"megamimo/internal/obs":        true,
	"megamimo/internal/checkpoint": true,
}

// PanicPolicyAnalyzer flags panic calls lexically inside exported functions
// or methods of the policy packages. Unexported helpers may still panic on
// internal invariants; the exported surface must not. Deliberate invariant
// panics in exported bodies carry a //lint:ignore with the justification.
var PanicPolicyAnalyzer = &Analyzer{
	Name: "panic-policy",
	Doc:  "panic in exported API of internal/{rate,modulation,stats,phy,fault,sync,tracefmt,metrics,obs}",
	Run:  runPanicPolicy,
}

func runPanicPolicy(p *Pass) {
	path := p.Pkg.Path
	if !panicPolicyPkgs[path] && !strings.HasSuffix(path, "testdata/src/panicpolicy") &&
		!strings.HasSuffix(path, "testdata/src/syncpanic") &&
		!strings.HasSuffix(path, "testdata/src/obspanic") {
		return
	}
	info := p.Pkg.Info
	eachFile(p, func(f *ast.File, isTest bool) {
		if isTest {
			return
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if ok && isBuiltin(info, call, "panic") {
					p.Reportf(call.Pos(),
						"exported %s panics; return an error (or validate via a constructor) so callers can recover",
						fd.Name.Name)
				}
				return true
			})
		}
	})
}
