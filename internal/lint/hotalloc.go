package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer flags fresh complex-sample buffer allocations inside
// loops in the hot signal-path packages. A make([]complex128, …) executed
// per symbol or per frame is how the per-transmission allocation count
// reached six figures before the scratch-arena refactor; new code must
// hoist the buffer out of the loop, reuse an owned scratch field, or draw
// from a dsp.Scratch arena. Deliberate allocations (results retained by
// the caller, grow-only reallocation) are suppressed with a //lint:ignore
// hotalloc directive explaining why.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "per-iteration make([]complex128, …) in hot signal-path packages (phy, ofdm, dsp, air, core)",
	Run:  runHotAlloc,
}

// hotAllocPkgs are the packages on the per-sample processing path, where
// allocation rate is a measured performance budget.
var hotAllocPkgs = map[string]bool{
	"megamimo/internal/phy":  true,
	"megamimo/internal/ofdm": true,
	"megamimo/internal/dsp":  true,
	"megamimo/internal/air":  true,
	"megamimo/internal/core": true,
	// The analyzer's own golden-test fixture package.
	"megamimo/internal/lint/testdata/src/hotalloc": true,
}

func runHotAlloc(p *Pass) {
	if !hotAllocPkgs[p.Pkg.Path] {
		return
	}
	info := p.Pkg.Info
	// Nested loops visit the same make twice; report each call site once.
	seen := map[token.Pos]bool{}
	eachFile(p, func(f *ast.File, isTest bool) {
		if isTest {
			return
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || !isBuiltin(info, call, "make") || seen[call.Pos()] {
					return true
				}
				t := info.TypeOf(call)
				if !isComplexSlice(t) {
					return true
				}
				seen[call.Pos()] = true
				p.Reportf(call.Pos(),
					"make(%s, …) inside a loop allocates every iteration on the hot signal path; hoist the buffer, reuse an owned scratch field, or draw from a dsp.Scratch arena",
					types.TypeString(t, types.RelativeTo(p.Pkg.Types)))
				return true
			})
			return true
		})
	})
}

// isComplexSlice reports whether t is a slice of complex samples (directly
// or through a named type).
func isComplexSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsComplex != 0
}
