package lint

import (
	"strings"
	"testing"
)

// TestLoadDirMultiFilePackage checks the loader's whole-package view: a
// type declared in one file resolves in its siblings, so the units
// analyzer reports the float64 strip in each of the two files.
func TestLoadDirMultiFilePackage(t *testing.T) {
	pkgs := loadTestdata(t, "multifile")
	base := pkgs[0]
	nonTest := 0
	for _, f := range base.Files {
		if !base.IsTestFile(f) {
			nonTest++
		}
	}
	if nonTest != 2 {
		t.Fatalf("base package has %d non-test files, want 2", nonTest)
	}
	diags := Run(pkgs, []*Analyzer{UnitsAnalyzer})
	files := map[string]bool{}
	for _, d := range diags {
		if !strings.Contains(d.Message, "strips units.Radians") {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		switch {
		case strings.HasSuffix(d.File, "osc.go"):
			files["osc.go"] = true
		case strings.HasSuffix(d.File, "gain.go"):
			files["gain.go"] = true
		default:
			t.Errorf("diagnostic in unexpected file: %s", d)
		}
	}
	if !files["osc.go"] || !files["gain.go"] {
		t.Errorf("expected one strip diagnostic per file, got %v (diags: %v)", files, diags)
	}
}

// TestLoadDirExternalTestPackage checks that a package foo_test file comes
// back as its own Package whose import of the base package resolved.
func TestLoadDirExternalTestPackage(t *testing.T) {
	pkgs := loadTestdata(t, "multifile")
	if len(pkgs) != 2 {
		t.Fatalf("LoadDir returned %d packages, want base + external test", len(pkgs))
	}
	xtest := pkgs[1]
	if !strings.HasSuffix(xtest.Path, "_test") {
		t.Fatalf("second package path %q does not end in _test", xtest.Path)
	}
	if xtest.Types == nil || len(xtest.Files) == 0 {
		t.Fatal("external test package did not type-check")
	}
	// The import of the base package must have resolved from source.
	found := false
	for _, imp := range xtest.Types.Imports() {
		if imp.Path() == "megamimo/internal/lint/testdata/src/multifile" {
			found = true
		}
	}
	if !found {
		t.Errorf("external test package imports %v; base package missing", xtest.Types.Imports())
	}
}

// TestLoadDirCrossPackageImport checks source-based resolution of
// module-local imports: the violation is only detectable if the sibling
// fixture package's units.Radians signature type-checked.
func TestLoadDirCrossPackageImport(t *testing.T) {
	pkgs := loadTestdata(t, "multipkg")
	diags := Run(pkgs, []*Analyzer{UnitsAnalyzer})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "strips units.Radians") {
		t.Errorf("diagnostic = %s, want a units.Radians strip through the import", diags[0])
	}
}

// TestScopedDirectiveKeepsOtherAnalyzers: //lint:ignore units must not
// silence float-eq on the same line.
func TestScopedDirectiveKeepsOtherAnalyzers(t *testing.T) {
	pkgs := loadTestdata(t, "directivescope")
	diags := Run(pkgs, []*Analyzer{UnitsAnalyzer, FloatEqAnalyzer})
	var haveFloatEq, haveDirective, haveSurvivingStrip bool
	for _, d := range diags {
		switch d.Analyzer {
		case "float-eq":
			haveFloatEq = true
		case "directive":
			haveDirective = true
			if !strings.Contains(d.Message, "needs a reason") {
				t.Errorf("directive message = %q", d.Message)
			}
		case "units":
			haveSurvivingStrip = true
		}
	}
	if !haveFloatEq {
		t.Error("units-scoped directive silenced the float-eq finding on its line")
	}
	if !haveDirective {
		t.Error("reasonless scoped directive (//lint:ignore units) was not reported")
	}
	if !haveSurvivingStrip {
		t.Error("reasonless scoped directive suppressed the units finding under it")
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
}
