package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags == and != between floating-point or complex
// operands in non-test code. Exact float equality silently fails after any
// rounding — in this codebase that reads as a precoder that "almost" nulls
// interference. Comparisons against an exact-zero constant are allowed
// (they are well-defined guards before division or log), as are
// constant-only comparisons.
var FloatEqAnalyzer = &Analyzer{
	Name: "float-eq",
	Doc:  "==/!= on float64 or complex128 values outside tests",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	eachFile(p, func(f *ast.File, isTest bool) {
		if isTest {
			return
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := info.Types[be.X], info.Types[be.Y]
			if !isFloatOrComplex(xt.Type) && !isFloatOrComplex(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // constant folding, exact by definition
			}
			if isExactZero(xt.Value) || isExactZero(yt.Value) {
				return true
			}
			kind := "float"
			if t := xt.Type; t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsComplex != 0 {
					kind = "complex"
				}
			}
			p.Reportf(be.OpPos,
				"%s %s on %s values compares exact bits; use a tolerance (math.Abs(a-b) <= eps) or restructure",
				types.ExprString(be.X), be.Op, kind)
			return true
		})
	})
}

func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}
