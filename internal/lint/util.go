package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, built-ins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// rootObject returns the object at the base of an expression chain:
// x → x, x.f → x's field f doesn't matter, we want the root variable, so
// x[i].f[j:] → x. It returns nil when the root is not a simple identifier.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
