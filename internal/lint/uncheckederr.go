package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErrorAnalyzer flags call statements that silently drop a
// returned error in the command-line drivers and the protocol engine
// (internal/core) — the layers where a swallowed error turns into a wrong
// experiment result instead of a crash. Assigning to _ is an explicit,
// visible discard and is allowed.
var UncheckedErrorAnalyzer = &Analyzer{
	Name: "unchecked-error",
	Doc:  "dropped error returns in cmd/ and internal/core",
	Run:  runUncheckedError,
}

// uncheckedErrExempt lists callees whose error return is noise in
// practice (fmt printing to std streams; bytes/strings writers never fail).
var uncheckedErrExempt = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

func uncheckedErrScope(path string) bool {
	return strings.HasPrefix(path, "megamimo/cmd/") ||
		path == "megamimo/internal/core" ||
		strings.HasSuffix(path, "testdata/src/uncheckederr")
}

func runUncheckedError(p *Pass) {
	if !uncheckedErrScope(p.Pkg.Path) {
		return
	}
	info := p.Pkg.Info
	eachFile(p, func(f *ast.File, isTest bool) {
		if isTest {
			return
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok || !returnsError(info, call) {
				return true
			}
			name := "call"
			if fn := calleeFunc(info, call); fn != nil {
				if uncheckedErrExempt[fn.FullName()] || exemptWriter(fn) {
					return true
				}
				name = fn.Name()
			}
			p.Reportf(call.Pos(),
				"%s returns an error that is silently dropped; handle it or assign to _ explicitly", name)
			return true
		})
	})
}

// exemptWriter reports methods of bytes.Buffer / strings.Builder, whose
// Write* methods are documented to always return a nil error.
func exemptWriter(fn *types.Func) bool {
	full := fn.FullName()
	return strings.HasPrefix(full, "(*bytes.Buffer).") ||
		strings.HasPrefix(full, "(*strings.Builder).")
}

// returnsError reports whether the call's result includes an error value.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
