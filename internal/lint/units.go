package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
)

// UnitsAnalyzer enforces the dimension discipline of internal/units: every
// quantity with a physical dimension (radians, rad/sample, hertz, ppm, dB,
// meters, sample ticks) travels as its defined type, and dimension changes
// go through the package's conversion functions, never through bare type
// conversions. Three rules:
//
//  1. No direct conversion between two different units.* types
//     (units.Radians(cfo) with cfo a units.RadPerSample reinterprets the
//     number without converting the dimension — use units.PhaseAdvance,
//     units.RadiansOver, units.HzToRadPerSample, …).
//  2. No float64(x) cast that strips a units.* type outside internal/units
//     itself. Legal stripping boundaries (trace serialization, math/cmplx
//     calls, rng draws) carry a //lint:ignore units directive with a
//     reason; units.Ratio(x, 1) is the sanctioned cast-free read.
//  3. In the covered signal-path packages, an identifier whose name says it
//     carries a dimension (cfo, phase, ppm, …Hz, …DB, …Rad, …) must not be
//     declared as bare float64 or int64.
//
// Test files are exempt from rules 2 and 3: assertions legitimately compare
// typed quantities against raw constants.
var UnitsAnalyzer = &Analyzer{
	Name: "units",
	Doc:  "dimensional-analysis discipline for internal/units quantities",
	Run:  runUnits,
}

// unitsPkgPath is the package whose defined types the analyzer tracks.
const unitsPkgPath = "megamimo/internal/units"

// unitsCoveredPkgs are the signal-path packages where rule 3's naming
// heuristic applies: everywhere a bare float64 named like a frequency or a
// phase is a latent unit bug, not a coincidence.
var unitsCoveredPkgs = map[string]bool{
	"megamimo/internal/air":      true,
	"megamimo/internal/channel":  true,
	"megamimo/internal/cmplxs":   true,
	"megamimo/internal/core":     true,
	"megamimo/internal/dsp":      true,
	"megamimo/internal/fault":    true,
	"megamimo/internal/geom":     true,
	"megamimo/internal/ofdm":     true,
	"megamimo/internal/phy":      true,
	"megamimo/internal/radio":    true,
	"megamimo/internal/sync":     true,
	"megamimo/internal/tracefmt": true,

	"megamimo/internal/lint/testdata/src/units": true,
}

// unitNameSuffixes are the dimension-bearing name endings rule 3 matches
// after lowercasing and trimming trailing digits.
var unitNameSuffixes = []string{
	"cfo", "phase", "ppm", "hz", "hertz", "db", "dbm",
	"rad", "radians", "deg", "degrees", "meters",
}

// unitNamePrefixes catch compound names that lead with the dimension
// ("cfoWeight", "phaseStep", "ppmBudget").
var unitNamePrefixes = []string{"cfo", "phase", "ppm"}

// unitsType returns the *types.Named for a units.* defined type, or nil.
func unitsType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPkgPath {
		return nil
	}
	return named
}

func runUnits(p *Pass) {
	if p.Pkg.Types != nil && p.Pkg.Types.Path() == unitsPkgPath {
		return // the conversion layer itself may reinterpret freely
	}
	info := p.Pkg.Info
	eachFile(p, func(f *ast.File, isTest bool) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true // ordinary call, not a conversion
			}
			src := info.Types[call.Args[0]].Type
			if src == nil {
				return true
			}
			srcUnit := unitsType(src)
			// Rule 1: units.T1(x) with x already a different units type.
			if dst := unitsType(tv.Type); dst != nil && srcUnit != nil && dst.Obj() != srcUnit.Obj() {
				p.Reportf(call.Pos(),
					"conversion units.%s(x) reinterprets units.%s without converting the dimension; use a units conversion function (PhaseAdvance, RadiansOver, HzToRadPerSample, …)",
					dst.Obj().Name(), srcUnit.Obj().Name())
				return true
			}
			// Rule 2: float64(x) strips a units type outside internal/units.
			if isTest || srcUnit == nil {
				return true
			}
			if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.Float64 {
				p.Reportf(call.Pos(),
					"float64(%s) strips units.%s; use units.Ratio(x, 1) to read the value, or suppress a legal boundary with //lint:ignore units <reason>",
					types.ExprString(call.Args[0]), srcUnit.Obj().Name())
			}
			return true
		})
	})

	// Rule 3: dimension-named identifiers declared as bare float64/int64.
	if !unitsCoveredPkgs[p.Pkg.Types.Path()] {
		return
	}
	for ident, obj := range info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || ident.Name == "_" {
			continue
		}
		b, ok := v.Type().(*types.Basic)
		if !ok || (b.Kind() != types.Float64 && b.Kind() != types.Int64) {
			continue
		}
		if !unitBearingName(ident.Name) {
			continue
		}
		pos := p.Pkg.Fset.Position(ident.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		p.Reportf(ident.Pos(),
			"%s sounds like a dimensioned quantity but is declared as bare %s; give it its units.* type (or //lint:ignore units <reason> if it truly is dimensionless)",
			ident.Name, b.Name())
	}
}

// unitBearingName reports whether a declared name matches the dimension
// heuristic: lowercase it, trim trailing digits, then test the suffix and
// prefix token lists.
func unitBearingName(name string) bool {
	s := strings.ToLower(name)
	s = strings.TrimRightFunc(s, unicode.IsDigit)
	if s == "" {
		return false
	}
	for _, suf := range unitNameSuffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	for _, pre := range unitNamePrefixes {
		if strings.HasPrefix(s, pre) && len(s) > len(pre) {
			return true
		}
	}
	return false
}
