package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TraceFieldsAnalyzer enforces the flight recorder's closed vocabulary and
// frozen attribute schema. Trace consumers (the JSONL/Chrome exporters,
// megamimo-trace, downstream tooling) rely on two invariants that the type
// system alone cannot hold:
//
//  1. Event kinds form a closed set. Every kind argument to Tracer.Emit,
//     Tracer.BeginSpan or Network.trace must be one of the exported Kind*
//     constants — a string literal or computed value would mint a new kind
//     the vocabulary check drops at runtime and readers reject on load.
//  2. The TraceAttrs field set is schema-versioned. The struct must match
//     the frozen v1 field table exactly, and composite literals must use
//     keyed fields from it; growing the struct without bumping
//     tracefmt.SchemaVersion would silently change the wire format.
var TraceFieldsAnalyzer = &Analyzer{
	Name: "tracefields",
	Doc:  "trace kinds outside the Kind* constants, and TraceAttrs writes outside the frozen v1 schema",
	Run:  runTraceFields,
}

// traceDefPkgs are the packages whose Tracer/TraceAttrs definitions the
// analyzer recognizes: the real one plus the golden-test fixtures.
var traceDefPkgs = map[string]bool{
	"megamimo/internal/core":                            true,
	"megamimo/internal/lint/testdata/src/tracefields":   true,
	"megamimo/internal/lint/testdata/src/tracefieldsv2": true,
}

// traceSchemaV1 is the frozen field table of TraceAttrs, version 1 of the
// serialized trace schema. Changing it is a wire-format change: bump
// tracefmt.SchemaVersion, update both exporters and this table together.
var traceSchemaV1 = []struct{ name, typ string }{
	{"AP", "int"},
	{"Client", "int"},
	{"Stream", "int"},
	{"Pkt", "int64"},
	{"QueueDepth", "int"},
	{"Bits", "int64"},
	{"PhaseErrRad", "units.Radians"},
	{"CFORadPerSample", "units.RadPerSample"},
	{"EVMSNRdB", "units.Decibels"},
	{"MinSubSNRdB", "units.Decibels"},
	{"NullDepthDB", "units.Decibels"},
	{"OK", "bool"},
	{"Cause", "string"},
}

// traceSchemaFields is the frozen field-name set, for composite-literal
// checks.
var traceSchemaFields = func() map[string]bool {
	m := make(map[string]bool, len(traceSchemaV1))
	for _, f := range traceSchemaV1 {
		m[f.name] = true
	}
	return m
}()

// traceEmitters maps recognized recording methods to the index of their
// kind argument. EndSpan/EndSpanAttrs close an already-validated span and
// carry no kind.
var traceEmitters = map[string]int{
	"Emit":      1, // (at, kind, attrs, format, ...)
	"BeginSpan": 1,
	"trace":     1, // Network.trace forwards to Tracer.Emit
}

func runTraceFields(p *Pass) {
	info := p.Pkg.Info
	eachFile(p, func(f *ast.File, isTest bool) {
		// Test files exercise the tracer's runtime rejection of bogus
		// kinds on purpose; the lint contract covers production emitters.
		if isTest {
			return
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				checkTraceAttrsDef(p, n)
			case *ast.CompositeLit:
				checkTraceAttrsLit(p, info, n)
			case *ast.CallExpr:
				checkTraceKindArg(p, info, n)
			}
			return true
		})
	})
}

// checkTraceAttrsDef compares a TraceAttrs declaration in a recognized
// package against the frozen v1 schema.
func checkTraceAttrsDef(p *Pass, spec *ast.TypeSpec) {
	if spec.Name.Name != "TraceAttrs" || !traceDefPkgs[p.Pkg.Path] {
		return
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	idx := 0
	for _, field := range st.Fields.List {
		typ := types.ExprString(field.Type)
		names := field.Names
		if len(names) == 0 {
			p.Reportf(field.Pos(), "TraceAttrs embeds %s; the frozen v1 schema has named fields only", typ)
			continue
		}
		for _, name := range names {
			if idx >= len(traceSchemaV1) {
				p.Reportf(name.Pos(),
					"TraceAttrs field %s is not in the frozen v1 trace schema; bump tracefmt.SchemaVersion and update both exporters and the tracefields schema table",
					name.Name)
				continue
			}
			want := traceSchemaV1[idx]
			if name.Name != want.name || typ != want.typ {
				p.Reportf(name.Pos(),
					"TraceAttrs field %d is %s %s; the frozen v1 trace schema has %s %s — bump tracefmt.SchemaVersion to change the wire format",
					idx, name.Name, typ, want.name, want.typ)
			}
			idx++
		}
	}
	if idx < len(traceSchemaV1) && idx > 0 {
		p.Reportf(spec.Pos(),
			"TraceAttrs has %d fields; the frozen v1 trace schema has %d — bump tracefmt.SchemaVersion to change the wire format",
			idx, len(traceSchemaV1))
	}
}

// checkTraceAttrsLit requires TraceAttrs composite literals to use keyed
// fields from the frozen schema.
func checkTraceAttrsLit(p *Pass, info *types.Info, lit *ast.CompositeLit) {
	if !isTraceDefType(info.TypeOf(lit), "TraceAttrs") {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			// One report per literal; every element of an unkeyed literal
			// is positional.
			p.Reportf(el.Pos(), "TraceAttrs literal must use keyed fields; positional values break when the schema version changes")
			return
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if !traceSchemaFields[key.Name] {
			p.Reportf(kv.Pos(),
				"TraceAttrs field %s is not in the frozen v1 trace schema; bump tracefmt.SchemaVersion and update both exporters and the tracefields schema table",
				key.Name)
		}
	}
}

// checkTraceKindArg requires the kind argument of a recording call to be a
// Kind* constant from a recognized package.
func checkTraceKindArg(p *Pass, info *types.Info, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	argIdx, ok := traceEmitters[sel.Sel.Name]
	if !ok || len(call.Args) <= argIdx {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recvName := ""
	switch fn.Name() {
	case "trace":
		recvName = "Network"
	default:
		recvName = "Tracer"
	}
	if !isTraceDefType(sig.Recv().Type(), recvName) {
		return
	}
	arg := call.Args[argIdx]
	var ident *ast.Ident
	switch a := arg.(type) {
	case *ast.Ident:
		ident = a
	case *ast.SelectorExpr:
		ident = a.Sel
	default:
		p.Reportf(arg.Pos(),
			"trace kind must be one of the Kind* constants, not %s; the vocabulary is closed (readers reject unknown kinds)",
			types.ExprString(arg))
		return
	}
	c, ok := info.Uses[ident].(*types.Const)
	if !ok || !strings.HasPrefix(c.Name(), "Kind") || c.Pkg() == nil || !traceDefPkgs[c.Pkg().Path()] {
		p.Reportf(arg.Pos(),
			"trace kind must be one of the Kind* constants, not %s; the vocabulary is closed (readers reject unknown kinds)",
			types.ExprString(arg))
	}
}

// isTraceDefType reports whether t (possibly behind a pointer) is the
// named type `name` declared in a recognized trace-definition package.
func isTraceDefType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && traceDefPkgs[obj.Pkg().Path()]
}
