package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FaultPathAnalyzer guards the fault-injection machinery with two checks the
// type system cannot hold:
//
//  1. Every switch over fault.Kind must name every Kind constant explicitly.
//     A fault schedule is replayed byte-for-byte across worker counts and CI
//     runs; a Kind silently swallowed by a default clause (or by falling out
//     of the switch) turns an injected fault into a no-op and the determinism
//     gate into a false positive. Adding a Kind must be a compile-visible
//     event at every dispatch site, so a default clause does not count as
//     coverage.
//  2. Fault-handling code must not panic. The fault package runs inside the
//     closed loop precisely when the system is already degraded; its job is
//     to keep the experiment deterministic while things break, so it reports
//     errors instead of tearing the process down.
var FaultPathAnalyzer = &Analyzer{
	Name: "faultpath",
	Doc:  "non-exhaustive switches over fault.Kind, and panics inside the fault package",
	Run:  runFaultPath,
}

// faultDefPkgs are the packages whose Kind type the analyzer recognizes:
// the real fault package plus the golden-test fixture.
var faultDefPkgs = map[string]bool{
	"megamimo/internal/fault":                       true,
	"megamimo/internal/lint/testdata/src/faultpath": true,
}

// faultPanicBanPkgs are the packages rule 2's panic ban covers beyond the
// Kind-defining ones: the sync strategies run exactly when the loop is
// degraded (header lost, lead failed over), so they share the fault
// package's degrade-gracefully contract.
var faultPanicBanPkgs = map[string]bool{
	"megamimo/internal/sync": true,
	// The checkpoint loader parses untrusted bytes (truncated, bit-rotted
	// or foreign files) and must always fail with an offset-bearing
	// error, never a panic.
	"megamimo/internal/checkpoint": true,
}

func runFaultPath(p *Pass) {
	info := p.Pkg.Info
	banPanics := faultDefPkgs[p.Pkg.Path] || faultPanicBanPkgs[p.Pkg.Path] ||
		strings.HasSuffix(p.Pkg.Path, "testdata/src/faultpath")
	eachFile(p, func(f *ast.File, isTest bool) {
		// Test files probe invalid kinds and may panic in helpers on
		// purpose; the contract covers production dispatch sites.
		if isTest {
			return
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkFaultKindSwitch(p, info, n)
			case *ast.CallExpr:
				if banPanics && isBuiltin(info, n, "panic") {
					p.Reportf(n.Pos(),
						"panic on the fault-handling path; fault code must degrade gracefully — return an error instead")
				}
			}
			return true
		})
	})
}

// checkFaultKindSwitch requires a switch whose tag is a fault.Kind to carry
// a case for every package-scope Kind constant.
func checkFaultKindSwitch(p *Pass, info *types.Info, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	named := faultKindType(info.TypeOf(sw.Tag))
	if named == nil {
		return
	}
	// Enumerate the closed vocabulary: every package-scope constant of the
	// Kind type, in declaration-independent sorted order.
	scope := named.Obj().Pkg().Scope()
	all := make(map[string]bool)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			all[name] = true
		}
	}
	if len(all) == 0 {
		return
	}
	// Collect the constants the cases name. A default clause deliberately
	// does not substitute: new kinds must be dispatched explicitly.
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			var ident *ast.Ident
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				ident = e
			case *ast.SelectorExpr:
				ident = e.Sel
			default:
				continue
			}
			if c, ok := info.Uses[ident].(*types.Const); ok {
				delete(all, c.Name())
			}
		}
	}
	if len(all) == 0 {
		return
	}
	missing := make([]string, 0, len(all))
	for name := range all {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	p.Reportf(sw.Pos(),
		"switch over %s.Kind is missing cases %s; fault kinds form a closed set and a default clause does not count — every kind must be dispatched explicitly",
		named.Obj().Pkg().Name(), strings.Join(missing, ", "))
}

// faultKindType returns the named Kind type from a recognized fault package,
// or nil when t is anything else.
func faultKindType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || !faultDefPkgs[obj.Pkg().Path()] {
		return nil
	}
	return named
}
