package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// aliasRule describes the aliasing contract of one dst-writing DSP kernel.
// Element-wise kernels (strict == false) tolerate dst fully aliasing a
// source at the same offset but corrupt themselves under a shifted overlap;
// strict kernels (convolution-style, which read sources after writing dst)
// require dst to be disjoint from every source.
type aliasRule struct {
	dst    []int // destination parameter indices
	src    []int // source parameter indices
	strict bool
}

var elementwise3 = aliasRule{dst: []int{0}, src: []int{1, 2}}
var elementwise2 = aliasRule{dst: []int{0}, src: []int{1}}

// aliasRules maps the FullName of each checked function to its contract.
var aliasRules = map[string]aliasRule{
	"megamimo/internal/cmplxs.Add":     elementwise3,
	"megamimo/internal/cmplxs.Sub":     elementwise3,
	"megamimo/internal/cmplxs.Mul":     elementwise3,
	"megamimo/internal/cmplxs.MulConj": elementwise3,
	"megamimo/internal/cmplxs.Div":     elementwise3,
	"megamimo/internal/cmplxs.Scale":   elementwise2,
	"megamimo/internal/cmplxs.Conj":    elementwise2,
	"megamimo/internal/cmplxs.Rotate":  elementwise2,
	"megamimo/internal/cmplxs.AXPY":    {dst: []int{0}, src: []int{2}},

	"(*megamimo/internal/dsp.FFTPlan).Forward": elementwise2,
	"(*megamimo/internal/dsp.FFTPlan).Inverse": elementwise2,

	"megamimo/internal/dsp.ConvolveInto": {dst: []int{0}, src: []int{1, 2}, strict: true},
}

// AliasingAnalyzer flags in-place cmplxs/dsp kernel calls whose destination
// slice overlaps a source slice in a way the kernel's contract forbids.
var AliasingAnalyzer = &Analyzer{
	Name: "aliasing",
	Doc:  "in-place DSP kernels called with overlapping src/dst slices",
	Run:  runAliasing,
}

func runAliasing(p *Pass) {
	info := p.Pkg.Info
	eachFile(p, func(f *ast.File, isTest bool) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			rule, ok := aliasRules[fn.FullName()]
			if !ok {
				return true
			}
			// Method calls: receiver is not in call.Args, so parameter
			// indices map directly for both funcs and methods here.
			for _, di := range rule.dst {
				for _, si := range rule.src {
					if di >= len(call.Args) || si >= len(call.Args) {
						continue
					}
					checkAliasPair(p, info, call, fn.Name(), rule, call.Args[di], call.Args[si])
				}
			}
			return true
		})
	})
}

// overlap verdicts.
type aliasVerdict int

const (
	aliasDistinct  aliasVerdict = iota // provably no overlap, or unrelated bases
	aliasIdentical                     // the same slice expression
	aliasSameStart                     // same base, provably equal low bound
	aliasOverlap                       // same base, shifted or unprovable bounds
)

func checkAliasPair(p *Pass, info *types.Info, call *ast.CallExpr, fname string, rule aliasRule, dst, src ast.Expr) {
	v := classifyAlias(info, dst, src)
	switch {
	case rule.strict && v != aliasDistinct:
		p.Reportf(call.Pos(),
			"%s requires dst to be disjoint from its sources, but %s and %s share backing storage",
			fname, types.ExprString(dst), types.ExprString(src))
	case !rule.strict && v == aliasOverlap:
		p.Reportf(call.Pos(),
			"%s called with dst %s overlapping source %s at a shifted offset; in-place use requires identical (or disjoint) slices",
			fname, types.ExprString(dst), types.ExprString(src))
	}
}

// classifyAlias decides how two slice-typed argument expressions relate.
// The analysis is syntactic plus constant folding: it only claims overlap
// when both expressions are rooted in the same variable.
func classifyAlias(info *types.Info, dst, src ast.Expr) aliasVerdict {
	dst, src = ast.Unparen(dst), ast.Unparen(src)
	if types.ExprString(dst) == types.ExprString(src) {
		if rootObject(info, dst) == nil {
			return aliasDistinct
		}
		return aliasIdentical
	}
	dBase, dLo, dHi := sliceBounds(info, dst)
	sBase, sLo, sHi := sliceBounds(info, src)
	dRoot, sRoot := rootObject(info, dBase), rootObject(info, sBase)
	if dRoot == nil || sRoot == nil || dRoot != sRoot ||
		types.ExprString(dBase) != types.ExprString(sBase) {
		return aliasDistinct
	}
	// Same base array/slice. Compare constant bounds where available.
	if dLo.known && sLo.known {
		if dLo.v == sLo.v {
			return aliasSameStart
		}
		// Disjoint iff one window provably ends before the other begins.
		if dHi.known && dHi.v <= sLo.v || sHi.known && sHi.v <= dLo.v {
			return aliasDistinct
		}
	}
	return aliasOverlap
}

// bound is a possibly-unknown constant slice bound.
type bound struct {
	v     int64
	known bool
}

// sliceBounds splits an argument into its base expression and constant
// [low, high) bounds. A bare expression is its own base with low 0 and
// unknown high; non-constant bounds are unknown.
func sliceBounds(info *types.Info, e ast.Expr) (base ast.Expr, lo, hi bound) {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok {
		return e, bound{v: 0, known: true}, bound{}
	}
	base = se.X
	lo = constBound(info, se.Low, bound{v: 0, known: true})
	hi = constBound(info, se.High, bound{})
	return base, lo, hi
}

func constBound(info *types.Info, e ast.Expr, dflt bound) bound {
	if e == nil {
		return dflt
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return bound{}
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return bound{}
	}
	return bound{v: v, known: true}
}
