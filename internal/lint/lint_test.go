package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadTestdata type-checks one testdata package under its in-module import
// path (so path-scoped analyzers see the right prefix).
func loadTestdata(t *testing.T, dirName string) []*Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", dirName)
	pkgs, err := l.LoadDir(dir, "megamimo/internal/lint/testdata/src/"+dirName)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantsIn collects `// want "substring"` expectations per file:line from
// the testdata sources.
func wantsIn(t *testing.T, pkgs []*Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	seen := make(map[string]bool)
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					key := fmt.Sprintf("%s:%d", name, i+1)
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	return wants
}

// runGolden checks one analyzer against its testdata package: every want
// must be matched by a diagnostic on its line, every diagnostic must have
// a want, and suppressed lines (which carry no want) must stay silent.
func runGolden(t *testing.T, a *Analyzer, dirName string) {
	pkgs := loadTestdata(t, dirName)
	wants := wantsIn(t, pkgs)
	diags := Run(pkgs, []*Analyzer{a})

	matched := make(map[string]int)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		ws := wants[key]
		ok := false
		for i, w := range ws {
			if i >= matched[key] && strings.Contains(d.Message, w) {
				matched[key]++
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		if matched[key] != len(ws) {
			t.Errorf("%s: matched %d of %d expected diagnostics %q", key, matched[key], len(ws), ws)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

func TestAliasingGolden(t *testing.T)    { runGolden(t, AliasingAnalyzer, "aliasing") }
func TestDeterminismGolden(t *testing.T) { runGolden(t, DeterminismAnalyzer, "determinism") }
func TestFloatEqGolden(t *testing.T)     { runGolden(t, FloatEqAnalyzer, "floateq") }
func TestStrictMapGolden(t *testing.T)   { runGolden(t, DeterminismAnalyzer, "strictmap") }
func TestFaultPathGolden(t *testing.T)   { runGolden(t, FaultPathAnalyzer, "faultpath") }
func TestHotAllocGolden(t *testing.T)    { runGolden(t, HotAllocAnalyzer, "hotalloc") }
func TestPanicPolicyGolden(t *testing.T) { runGolden(t, PanicPolicyAnalyzer, "panicpolicy") }
func TestSyncPanicGolden(t *testing.T)   { runGolden(t, PanicPolicyAnalyzer, "syncpanic") }
func TestSyncMapGolden(t *testing.T)     { runGolden(t, DeterminismAnalyzer, "syncmap") }
func TestObsMapGolden(t *testing.T)      { runGolden(t, DeterminismAnalyzer, "obsmap") }
func TestObsPanicGolden(t *testing.T)    { runGolden(t, PanicPolicyAnalyzer, "obspanic") }
func TestUncheckedErrorGolden(t *testing.T) {
	runGolden(t, UncheckedErrorAnalyzer, "uncheckederr")
}
func TestTraceFieldsGolden(t *testing.T) { runGolden(t, TraceFieldsAnalyzer, "tracefields") }
func TestUnitsGolden(t *testing.T)       { runGolden(t, UnitsAnalyzer, "units") }
func TestTraceFieldsSchemaGolden(t *testing.T) {
	runGolden(t, TraceFieldsAnalyzer, "tracefieldsv2")
}

// TestMalformedDirective checks that a reasonless //lint:ignore is reported
// and does not suppress the finding beneath it.
func TestMalformedDirective(t *testing.T) {
	pkgs := loadTestdata(t, "directive")
	diags := Run(pkgs, []*Analyzer{FloatEqAnalyzer})
	var haveDirective, haveFloatEq bool
	for _, d := range diags {
		switch d.Analyzer {
		case "directive":
			haveDirective = true
			if !strings.Contains(d.Message, "needs a reason") {
				t.Errorf("directive message = %q", d.Message)
			}
		case "float-eq":
			haveFloatEq = true
		}
	}
	if !haveDirective {
		t.Error("reasonless //lint:ignore was not reported")
	}
	if !haveFloatEq {
		t.Error("reasonless //lint:ignore suppressed the diagnostic under it")
	}
	if len(diags) != 2 {
		t.Errorf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
}

// TestRepoIsClean is the self-gate: the full analyzer suite over the whole
// module must come back empty, mirroring `megamimo-lint ./...` exiting 0.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

// TestAnalyzerNamesAreUnique guards the scoped-suppression namespace.
func TestAnalyzerNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}
