package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis. When a directory
// contains an external test package (package foo_test), it is loaded as a
// separate Package with the same Dir.
type Package struct {
	Path  string // import path ("_test" suffix for external test packages)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// IsTestFile reports whether f was parsed from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Loader parses and type-checks packages of a single module using only the
// standard library: module-local imports are resolved from source relative
// to the module root, everything else through go/importer's source importer.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string

	std  types.Importer
	deps map[string]*types.Package // memoized import-view (no test files)
}

// NewLoader returns a Loader for the module rooted at dir (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := modulePath(data)
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s", filepath.Join(root, "go.mod"))
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleRoot: root,
		std:        importer.ForCompiler(fset, "source", nil),
		deps:       make(map[string]*types.Package),
	}, nil
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer. Module-local paths are type-checked from
// source (excluding test files); all other paths go to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.checkDir(dir, path, importFiles)
		if err != nil {
			return nil, err
		}
		l.deps[path] = pkg.Types
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// LoadPatterns expands go-list patterns (e.g. "./...") from the module root
// and loads every matched package for analysis, including its test files.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	dirs, err := l.listDirs(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		got, err := l.LoadDir(d.dir, d.importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

type listedDir struct {
	dir        string
	importPath string
}

// listDirs enumerates package directories via `go list -json`.
func (l *Loader) listDirs(patterns []string) ([]listedDir, error) {
	args := append([]string{"list", "-json=Dir,ImportPath"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleRoot
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v: %s", strings.Join(patterns, " "), err, errb.String())
	}
	var dirs []listedDir
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p struct {
			Dir        string
			ImportPath string
		}
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		dirs = append(dirs, listedDir{dir: p.Dir, importPath: p.ImportPath})
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].importPath < dirs[j].importPath })
	return dirs, nil
}

// LoadDir parses and type-checks the package in dir under the given import
// path, test files included. It returns one Package for the base package
// (with in-package test files) and, when present, one for the external
// _test package.
func (l *Loader) LoadDir(dir, importPath string) ([]*Package, error) {
	base, err := l.checkDir(dir, importPath, includeInPackageTests)
	if err != nil {
		return nil, err
	}
	pkgs := []*Package{base}
	xtest, err := l.checkDir(dir, importPath+"_test", onlyExternalTests)
	if err != nil {
		return nil, err
	}
	if xtest != nil && len(xtest.Files) > 0 {
		pkgs = append(pkgs, xtest)
	}
	return pkgs, nil
}

// File-selection modes for checkDir.
type fileMode int

const (
	importFiles           fileMode = iota // non-test files only (import view)
	includeInPackageTests                 // base package plus same-package _test.go files
	onlyExternalTests                     // the external foo_test package
)

// checkDir parses the .go files of dir selected by mode and type-checks
// them as one package. It returns a Package with no Files when the mode
// selects nothing (e.g. no external test package exists).
func (l *Loader) checkDir(dir, importPath string, mode fileMode) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	type parsed struct {
		file   *ast.File
		isTest bool
	}
	var all []parsed
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		all = append(all, parsed{file: f, isTest: strings.HasSuffix(name, "_test.go")})
	}
	// The base package name is whatever the non-test files declare (falling
	// back to test files' unsuffixed name in test-only directories).
	basePkg := ""
	for _, p := range all {
		if !p.isTest {
			basePkg = p.file.Name.Name
			break
		}
	}
	if basePkg == "" {
		for _, p := range all {
			basePkg = strings.TrimSuffix(p.file.Name.Name, "_test")
			break
		}
	}
	var files []*ast.File
	for _, p := range all {
		switch mode {
		case importFiles:
			if !p.isTest && p.file.Name.Name == basePkg {
				files = append(files, p.file)
			}
		case includeInPackageTests:
			if p.file.Name.Name == basePkg {
				files = append(files, p.file)
			}
		case onlyExternalTests:
			if p.isTest && p.file.Name.Name == basePkg+"_test" {
				files = append(files, p.file)
			}
		}
	}
	if len(files) == 0 {
		return &Package{Path: importPath, Dir: dir, Fset: l.Fset}, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
