package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces the repository's replayability contract:
// every random draw in the signal path goes through internal/rng, no code
// consults wall-clock time, and no map iteration order leaks into numeric
// results. A phase error caused by an unseeded generator is experimentally
// indistinguishable from oscillator drift, so these are treated as
// correctness bugs, not style.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "nondeterministic inputs (global math/rand, time.Now, map-order-dependent accumulation) in the signal path",
	Run:  runDeterminism,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. rand.New / rand.NewSource are excluded: they build
// explicitly seeded generators.
var globalRandFuncs = map[string]bool{
	"Float64": true, "Float32": true, "ExpFloat64": true, "NormFloat64": true,
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// rngPkg is the one package allowed to touch math/rand directly.
const rngPkg = "megamimo/internal/rng"

// strictMapPkgs lists packages whose outputs must be byte-identical under
// map-iteration reshuffling with no reduction-shape analysis: workload
// reports, metrics exports, the sync-strategy sweep, and the streaming
// telemetry pipeline (trace serialization, the online monitor, the
// observability endpoints) are diffed verbatim across worker counts in
// CI, so every map range there is suspect unless it is the
// collect-keys-then-sort idiom.
var strictMapPkgs = map[string]bool{
	"megamimo/internal/traffic":                     true,
	"megamimo/internal/metrics":                     true,
	"megamimo/internal/sync":                        true,
	"megamimo/internal/tracefmt":                    true,
	"megamimo/internal/obs":                         true,
	"megamimo/internal/lint/testdata/src/strictmap": true,
	"megamimo/internal/lint/testdata/src/syncmap":   true,
	"megamimo/internal/lint/testdata/src/obsmap":    true,
}

func runDeterminism(p *Pass) {
	info := p.Pkg.Info
	path := p.Pkg.Path
	inRNG := path == rngPkg
	strict := strictMapPkgs[path]
	eachFile(p, func(f *ast.File, isTest bool) {
		if !isTest && !inRNG {
			for _, imp := range f.Imports {
				switch strings.Trim(imp.Path.Value, `"`) {
				case "math/rand", "math/rand/v2":
					p.Reportf(imp.Pos(),
						"math/rand imported outside internal/rng; route randomness through internal/rng so runs are replayable")
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(p, info, n, path, isTest)
			case *ast.BlockStmt:
				if !isTest {
					checkStmtMapRanges(p, info, n.List, strict)
				}
			case *ast.CaseClause:
				if !isTest {
					checkStmtMapRanges(p, info, n.Body, strict)
				}
			case *ast.CommClause:
				if !isTest {
					checkStmtMapRanges(p, info, n.Body, strict)
				}
			}
			return true
		})
	})
}

func checkDeterminismCall(p *Pass, info *types.Info, call *ast.CallExpr, path string, isTest bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		// Package-level draws from the shared source are flagged everywhere,
		// tests included: they make even seeded test runs order-dependent.
		if fn.Type().(*types.Signature).Recv() == nil && globalRandFuncs[fn.Name()] {
			p.Reportf(call.Pos(),
				"rand.%s draws from the process-global source; use internal/rng (or an explicit rand.New(rand.NewSource(seed)) in tests)",
				fn.Name())
		}
	case "time":
		if fn.Name() == "Now" && !isTest && strings.HasPrefix(path, "megamimo/internal/") &&
			path != "megamimo/internal/lint" {
			p.Reportf(call.Pos(),
				"time.Now in the signal path makes runs unreproducible; thread simulated time through explicitly")
		}
	}
}

// checkStmtMapRanges dispatches map-range checking: strict packages get
// the all-or-nothing rule, the rest the reduction-shape analysis.
func checkStmtMapRanges(p *Pass, info *types.Info, stmts []ast.Stmt, strict bool) {
	if strict {
		checkMapRangesStrict(p, info, stmts)
	} else {
		checkMapRanges(p, info, stmts)
	}
}

// checkMapRangesStrict flags every `for … := range m` over a map in a
// strict-determinism package, with one carve-out: a body that is exactly
// one `keys = append(keys, …)` statement into a slice declared outside
// the loop, where a later statement in the same block sorts that slice —
// the canonical collect-keys-then-sort idiom.
func checkMapRangesStrict(p *Pass, info *types.Info, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			continue
		}
		if len(rng.Body.List) == 1 {
			if as, ok := rng.Body.List[0].(*ast.AssignStmt); ok {
				kind, _, obj := mapOrderSensitiveAssign(info, rng, as)
				if kind == "an append" && sortedAfter(info, stmts[i+1:], obj) {
					continue
				}
			}
		}
		p.Reportf(rng.Pos(),
			"map iteration in a strict-determinism package (%s); collect keys into a slice, sort, then index the map",
			p.Pkg.Path)
	}
}

// checkMapRanges flags `for … := range m` statements over maps whose body
// performs an order-sensitive reduction: float/complex compound assignment
// (float addition does not commute in rounding) or appending to a slice
// declared outside the loop (element order then depends on map iteration
// order). The collect-then-sort idiom is recognized: an append target that
// a later statement in the same block passes to a sort.* call is clean.
func checkMapRanges(p *Pass, info *types.Info, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			continue
		}
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			reduction, target, obj := mapOrderSensitiveAssign(info, rng, as)
			if reduction == "" {
				return true
			}
			if reduction == "an append" && sortedAfter(info, stmts[i+1:], obj) {
				return false
			}
			p.Reportf(as.Pos(),
				"map iteration order feeds %s of %q; iterate sorted keys so results are bit-reproducible",
				reduction, target)
			return false
		})
	}
}

// sortedAfter reports whether a later statement sorts the object via the
// sort package, making the collection order irrelevant.
func sortedAfter(info *types.Info, rest []ast.Stmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for _, s := range rest {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
			continue
		}
		if rootObject(info, call.Args[0]) == obj {
			return true
		}
	}
	return false
}

// mapOrderSensitiveAssign classifies an assignment inside a map-range body.
// It returns a description of the order-sensitive reduction ("" if none),
// the printed target expression, and the target's root object.
func mapOrderSensitiveAssign(info *types.Info, rng *ast.RangeStmt, as *ast.AssignStmt) (string, string, types.Object) {
	outside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End())
	}
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
		lhs := as.Lhs[0]
		obj := rootObject(info, lhs)
		if isFloatOrComplex(info.TypeOf(lhs)) && outside(obj) {
			return "a float accumulation", types.ExprString(lhs), obj
		}
	case "=":
		// acc = append(acc, …) with acc declared outside the loop.
		for i, r := range as.Rhs {
			call, ok := ast.Unparen(r).(*ast.CallExpr)
			if !ok || !isBuiltin(info, call, "append") || len(call.Args) == 0 || i >= len(as.Lhs) {
				continue
			}
			lhs := as.Lhs[i]
			obj := rootObject(info, lhs)
			if types.ExprString(lhs) == types.ExprString(call.Args[0]) && outside(obj) {
				return "an append", types.ExprString(lhs), obj
			}
		}
	}
	return "", "", nil
}

func isFloatOrComplex(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
