// Package lint is megamimo's project-specific static-analysis suite: nine
// analyzers tuned to the failure modes that corrupt or slow a
// distributed-MIMO signal path — buffer aliasing in DSP kernels,
// nondeterministic inputs, exact float comparison, per-iteration hot-path
// allocation, panicking APIs, dropped errors, flight-recorder schema
// drift (kinds outside the closed vocabulary, TraceAttrs writes outside
// the frozen versioned field set), fault-path hygiene (non-exhaustive
// fault.Kind switches, panics in fault-handling code), and dimensional
// analysis (unit-bearing quantities travel as internal/units defined
// types; dimension changes go through conversion functions). It is built
// entirely on the standard library (go/ast, go/parser, go/types) so the
// module stays dependency-free.
//
// Diagnostics are suppressed by a trailing or preceding comment of the form
//
//	//lint:ignore reason why this is safe
//	//lint:ignore analyzer-name reason why this is safe
//
// The first word names an analyzer to scope the suppression; otherwise the
// directive silences every analyzer on that line. A reason is mandatory:
// directives without one are themselves reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	p.report(Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		AliasingAnalyzer,
		DeterminismAnalyzer,
		FaultPathAnalyzer,
		FloatEqAnalyzer,
		HotAllocAnalyzer,
		PanicPolicyAnalyzer,
		TraceFieldsAnalyzer,
		UncheckedErrorAnalyzer,
		UnitsAnalyzer,
	}
}

// analyzerNames returns the set of valid analyzer names, for scoped
// //lint:ignore directives.
func analyzerNames(analyzers []*Analyzer) map[string]bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	line     int
	analyzer string // empty = all analyzers
	reason   string
	used     bool
}

// Run applies the analyzers to each package and returns the surviving
// diagnostics sorted by position. Suppressed findings are dropped;
// malformed or scoped-to-unknown-analyzer directives are reported under
// the "directive" pseudo-analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := analyzerNames(analyzers)
	var out []Diagnostic
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		directives, bad := collectDirectives(pkg, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !suppressed(directives, d) {
				out = append(out, d)
			}
		}
		out = append(out, bad...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

const ignorePrefix = "//lint:ignore"

// collectDirectives gathers //lint:ignore comments per file and reports
// malformed ones (no reason) as diagnostics.
func collectDirectives(pkg *Package, known map[string]bool) (map[string][]*ignoreDirective, []Diagnostic) {
	directives := make(map[string][]*ignoreDirective)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				dir := &ignoreDirective{line: pos.Line}
				fields := strings.Fields(rest)
				if len(fields) > 0 && known[fields[0]] {
					dir.analyzer = fields[0]
					fields = fields[1:]
				}
				dir.reason = strings.Join(fields, " ")
				if dir.reason == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "directive",
						Message:  "lint:ignore directive needs a reason (//lint:ignore [analyzer] reason)",
					})
					continue
				}
				directives[pos.Filename] = append(directives[pos.Filename], dir)
			}
		}
	}
	return directives, bad
}

// suppressed reports whether a directive in d's file covers d: a directive
// applies to diagnostics on its own line (trailing comment) and on the
// following line (comment above the statement).
func suppressed(directives map[string][]*ignoreDirective, d Diagnostic) bool {
	for _, dir := range directives[d.File] {
		if dir.analyzer != "" && dir.analyzer != d.Analyzer {
			continue
		}
		if d.Line == dir.line || d.Line == dir.line+1 {
			dir.used = true
			return true
		}
	}
	return false
}

// eachFile walks every file of the package, telling the callback whether
// the file is a test file.
func eachFile(p *Pass, fn func(f *ast.File, isTest bool)) {
	for _, f := range p.Pkg.Files {
		fn(f, p.Pkg.IsTestFile(f))
	}
}
