// Package tracefieldsv2 seeds a schema-drift violation: a TraceAttrs
// declaration that silently diverged from the frozen v1 field table
// without a schema-version bump.
package tracefieldsv2

import "megamimo/internal/units"

// TraceAttrs drifted from v1: Bits narrowed to int and two fields were
// appended without bumping tracefmt.SchemaVersion.
type TraceAttrs struct {
	AP              int
	Client          int
	Stream          int
	Pkt             int64
	QueueDepth      int
	Bits            int // want "frozen v1 trace schema has Bits int64"
	PhaseErrRad     units.Radians
	CFORadPerSample units.RadPerSample
	EVMSNRdB        units.Decibels
	MinSubSNRdB     units.Decibels
	NullDepthDB     units.Decibels
	OK              bool
	Cause           string
	TempC           float64 // want "not in the frozen v1 trace schema"
	RSSI            float64 // want "not in the frozen v1 trace schema"
}
