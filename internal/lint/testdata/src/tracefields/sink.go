package tracefields

// streamSink mirrors the streaming-sink shape: a consumer that re-emits
// forwarded events through a tracer it owns. The vocabulary and schema
// rules apply to it like any other emitter — a sink that mints kinds or
// writes attrs positionally corrupts the stream it relays.
type streamSink struct {
	tr *Tracer
}

// forwardPositional re-records a forwarded event writing the schema
// positionally; a v2 field would silently shift every value on the wire.
func (s *streamSink) forwardPositional() {
	s.tr.Emit(0, KindDecode,
		TraceAttrs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, true, "x"}, // want "keyed"
		"")
}

// forwardMintedKind re-tags the forwarded event with a computed kind.
func (s *streamSink) forwardMintedKind(kind string) {
	s.tr.Emit(0, "sink-"+kind, TraceAttrs{}, "") // want "closed"
}

// forwardClean is the conforming sink: vocabulary kind, keyed attrs.
func (s *streamSink) forwardClean() {
	s.tr.Emit(0, KindDecode, TraceAttrs{Stream: 1, OK: true}, "")
}
