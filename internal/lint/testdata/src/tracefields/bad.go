package tracefields

// notAKind is a constant, but not from the Kind* vocabulary.
const notAKind = "phase-slip"

// emitLiteralKind mints a new kind with a string literal.
func emitLiteralKind(tr *Tracer) {
	tr.Emit(0, "phase-slip", TraceAttrs{}, "") // want "closed"
}

// emitWrongConst uses a constant outside the Kind* set.
func emitWrongConst(tr *Tracer) {
	tr.Emit(0, notAKind, TraceAttrs{}, "") // want "closed"
}

// beginVariableKind computes the kind at runtime.
func beginVariableKind(tr *Tracer, which bool) int64 {
	kind := KindMeasure
	if which {
		kind = KindJointTx
	}
	return tr.BeginSpan(0, kind, TraceAttrs{}, "") // want "closed"
}

// traceConcatKind builds a kind by concatenation through Network.trace.
func traceConcatKind(n *Network) {
	n.trace(0, "joint"+"-tx", TraceAttrs{}, "") // want "closed"
}

// positionalAttrs writes the schema positionally; adding a field would
// silently shift every value.
func positionalAttrs(tr *Tracer) {
	tr.Emit(0, KindDecode,
		TraceAttrs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, true, "x"}, // want "keyed"
		"")
}
