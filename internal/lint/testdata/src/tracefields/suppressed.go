package tracefields

// suppressedKind shows the escape hatch: a scoped directive with a reason
// silences the finding (no want on these lines).
func suppressedKind(tr *Tracer) {
	//lint:ignore tracefields prototype event kind, promoted to the vocabulary next schema bump
	tr.Emit(0, "prototype-kind", TraceAttrs{}, "")
}
