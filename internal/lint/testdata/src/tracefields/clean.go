package tracefields

// emitVocabulary records events with vocabulary constants and keyed
// schema fields — the blessed pattern; no diagnostics.
func emitVocabulary(tr *Tracer, n *Network) {
	tr.Emit(0, KindMeasure, TraceAttrs{AP: 1}, "measurement %d", 1)
	tr.Emit(1, KindDecode, TraceAttrs{Client: 0, Stream: 1, EVMSNRdB: 31.5, OK: true}, "")
	span := tr.BeginSpan(2, KindJointTx, TraceAttrs{Bits: 3200}, "2 streams")
	_ = span
	n.trace(3, KindDecode, TraceAttrs{Cause: "decode"}, "FCS failed")
}

// emptyAttrs is fine: the zero value carries no fields.
func emptyAttrs(tr *Tracer) {
	tr.Emit(4, KindMeasure, TraceAttrs{}, "")
}

// unrelatedEmit is a different Emit on an unrelated type; the analyzer
// only recognizes the trace-definition packages' Tracer.
type logger struct{}

func (l *logger) Emit(at int64, kind string, a TraceAttrs, format string, args ...any) {}

func otherEmitter(l *logger) {
	l.Emit(0, "free-form", TraceAttrs{}, "not a trace event")
}
