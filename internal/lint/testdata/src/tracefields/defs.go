// Package tracefields seeds vocabulary and schema violations for the
// tracefields analyzer's golden test. The definitions mirror the real
// flight recorder in internal/core: a frozen TraceAttrs schema, Kind*
// constants, and the recording methods the analyzer recognizes.
package tracefields

import "megamimo/internal/units"

// TraceAttrs matches the frozen v1 schema exactly (the analyzer checks
// this declaration too).
type TraceAttrs struct {
	AP              int
	Client          int
	Stream          int
	Pkt             int64
	QueueDepth      int
	Bits            int64
	PhaseErrRad     units.Radians
	CFORadPerSample units.RadPerSample
	EVMSNRdB        units.Decibels
	MinSubSNRdB     units.Decibels
	NullDepthDB     units.Decibels
	OK              bool
	Cause           string
}

// The closed kind vocabulary (a subset suffices for the fixture).
const (
	KindMeasure = "measure"
	KindJointTx = "joint-tx"
	KindDecode  = "decode"
)

// Tracer mirrors core.Tracer's recording surface.
type Tracer struct{}

// Emit mirrors core's (*Tracer).Emit.
func (t *Tracer) Emit(at int64, kind string, a TraceAttrs, format string, args ...any) {}

// BeginSpan mirrors core's (*Tracer).BeginSpan.
func (t *Tracer) BeginSpan(at int64, kind string, a TraceAttrs, format string, args ...any) int64 {
	return 0
}

// Network mirrors core.Network's unexported trace helper.
type Network struct{ tr Tracer }

func (n *Network) trace(at int64, kind string, a TraceAttrs, format string, args ...any) {
	//lint:ignore tracefields forwarding wrapper, mirrors core.Network.trace
	n.tr.Emit(at, kind, a, format, args...)
}
