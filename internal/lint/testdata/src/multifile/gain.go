package multifile

// stripThere violates in the second file, through the type declared in
// osc.go — only a loader that type-checks the files together can resolve
// o.phi to units.Radians here.
func stripThere(o osc) float64 {
	return float64(o.phi)
}
