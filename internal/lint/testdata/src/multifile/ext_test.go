// Package multifile_test is an external test package: the loader must
// type-check it as a separate Package that imports the base package by its
// module path.
package multifile_test

import (
	"testing"

	"megamimo/internal/lint/testdata/src/multifile"
)

func TestExported(t *testing.T) {
	if multifile.Exported() != 0 {
		t.Fatal("non-zero")
	}
}
