// Package multifile spreads one type across two files plus an external
// test package, exercising the loader's whole-package view: analyzers must
// see types declared in sibling files and the _test package must load as
// its own Package.
package multifile

import "megamimo/internal/units"

// osc is consumed from gain.go; its field type must be visible there.
type osc struct {
	phi units.Radians
}

// stripHere is the first file's violation.
func stripHere(o osc) float64 {
	return float64(o.phi)
}

// Exported gives the external test package something to call.
func Exported() int { return 0 }
