package faultpath

// Name dispatches every kind explicitly; a trailing default for invalid
// values is fine once the vocabulary is covered.
func Name(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case (KindB): // parenthesized case expressions still count
		return "b"
	case KindC:
		return "c"
	default:
		return "invalid"
	}
}

// Classify switches over a plain int, which the analyzer must leave alone.
func Classify(n int) string {
	switch n {
	case 0:
		return "zero"
	default:
		return "nonzero"
	}
}

// Describe uses a tagless switch, which carries no vocabulary to check.
func Describe(k Kind) string {
	switch {
	case k == KindA:
		return "first"
	default:
		return "rest"
	}
}
