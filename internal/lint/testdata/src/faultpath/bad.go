package faultpath

// Handle leans on a default clause, which must not count as covering the
// two missing kinds.
func Handle(k Kind) string {
	switch k { // want "missing cases KindB, KindC"
	case KindA:
		return "a"
	default:
		return "other"
	}
}

// Partial has no default at all and still misses one kind.
func Partial(k Kind) bool {
	switch k { // want "missing cases KindC"
	case KindA, KindB:
		return true
	}
	return false
}

// Crash panics on the fault-handling path.
func Crash(k Kind) {
	if !valid(k) {
		panic("faultpath: bad kind") // want "panic on the fault-handling path"
	}
}

func valid(k Kind) bool { return k >= KindA && k <= KindC }
