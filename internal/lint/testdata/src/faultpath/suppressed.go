package faultpath

// Legacy predates KindC; the directive records why the gap is deliberate.
func Legacy(k Kind) bool {
	//lint:ignore faultpath fixture: legacy dispatcher predates KindC
	switch k {
	case KindA, KindB:
		return true
	}
	return false
}

// Abort documents its deliberate invariant panic.
func Abort() {
	//lint:ignore faultpath fixture: unreachable invariant
	panic("faultpath: unreachable")
}
