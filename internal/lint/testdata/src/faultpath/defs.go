// Package faultpath seeds fault-path violations for the faultpath
// analyzer's golden test.
package faultpath

// Kind enumerates the fixture's fault kinds — a closed vocabulary, like the
// real fault package's.
type Kind int

// The full fixture vocabulary.
const (
	KindA Kind = iota
	KindB
	KindC
)
