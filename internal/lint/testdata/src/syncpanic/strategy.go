// Package syncpanic seeds a synchronization strategy whose exported
// methods panic, for the panic-policy and faultpath golden tests: strategy
// code runs inside the joint-transmission loop exactly when the system is
// degraded, so it must report errors instead of tearing the process down.
package syncpanic

import "fmt"

// Peer is the per-slave tracking state a strategy mutates.
type Peer struct {
	Ref   []complex128
	RefAt int64
	CFO   float64
}

// Correction is the per-measurement output.
type Correction struct {
	At  int64
	CFO float64
}

// PanickyStrategy measures by assertion instead of by error return.
type PanickyStrategy struct{}

// Measure panics on a missing reference instead of returning an error —
// the exact shape both analyzers must flag.
func (PanickyStrategy) Measure(ps *Peer, cur []complex128, at int64) (Correction, error) {
	if ps.Ref == nil {
		panic("syncpanic: Measure before Init") // want "exported Measure panics"
	}
	if len(cur) != len(ps.Ref) {
		panic(fmt.Sprintf("syncpanic: %d bins, want %d", len(cur), len(ps.Ref))) // want "exported Measure panics"
	}
	return Correction{At: at, CFO: ps.CFO}, nil
}

// Predict panics on a clock running backwards.
func (PanickyStrategy) Predict(ps *Peer, at int64) Correction {
	if at < ps.RefAt {
		panic("syncpanic: time ran backwards") // want "exported Predict panics"
	}
	return Correction{At: at, CFO: ps.CFO}
}

// quietReset is unexported: internal invariant panics are allowed there.
func quietReset(ps *Peer) {
	if ps == nil {
		panic("syncpanic: nil peer")
	}
	ps.Ref = nil
}

// CleanStrategy shows the conforming shape: errors out, never panics.
type CleanStrategy struct{}

// Measure returns an error for every failure mode.
func (CleanStrategy) Measure(ps *Peer, cur []complex128, at int64) (Correction, error) {
	if ps.Ref == nil {
		return Correction{}, fmt.Errorf("syncpanic: measure before init")
	}
	quietReset(ps)
	return Correction{At: at, CFO: ps.CFO}, nil
}
