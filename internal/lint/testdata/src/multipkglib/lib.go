// Package multipkglib is imported by the multipkg fixture: the loader must
// resolve this module-local import from source so the units.Radians return
// type flows across the package boundary.
package multipkglib

import "megamimo/internal/units"

// Phase returns a dimensioned quantity for the importer to mishandle.
func Phase() units.Radians { return 0.5 }
