package uncheckederr

// Suppressed documents a benign drop with a scoped directive.
func Suppressed() {
	//lint:ignore unchecked-error best-effort cleanup, failure is benign here
	fail()
}
