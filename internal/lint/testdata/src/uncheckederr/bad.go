// Package uncheckederr seeds dropped error returns for the unchecked-error
// analyzer's golden test.
package uncheckederr

import "errors"

func fail() error { return errors.New("uncheckederr: boom") }

func pair() (int, error) { return 0, errors.New("uncheckederr: boom") }

// Bad drops errors on the floor.
func Bad() {
	fail()   // want "silently dropped"
	pair()   // want "silently dropped"
	helper() // want "silently dropped"
}

type t struct{}

func (t) apply() error { return nil }

func helper() error {
	var x t
	x.apply() // want "silently dropped"
	return nil
}
