package uncheckederr

import (
	"fmt"
	"os"
)

// Clean handles, explicitly discards, or calls exempt printers.
func Clean() {
	_ = fail()
	if err := fail(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	if _, err := pair(); err != nil {
		fmt.Println(err)
	}
	fmt.Println("done")
	noError()
}

func noError() {}
