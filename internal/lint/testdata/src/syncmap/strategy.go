// Package syncmap seeds a synchronization strategy that folds per-peer
// state out of a map range, for the strict-determinism golden test: the
// sync sweep's comparison table is diffed byte-for-byte across worker
// counts in CI, so any map-iteration order leaking into a correction or a
// summary is a replayability bug.
package syncmap

import "sort"

// Correction is a per-peer phase correction.
type Correction struct {
	Phase float64
	CFO   float64
}

// fuseAll averages the tracked CFO straight out of a map range; float
// addition does not commute, so the fused value depends on iteration
// order.
func fuseAll(peers map[int]*Correction) float64 {
	var acc float64
	for _, c := range peers { // want "strict-determinism package"
		acc += c.CFO
	}
	return acc / float64(len(peers))
}

// worstPeer scans for the largest phase error in map order: ties resolve
// to whichever key the runtime happened to visit first.
func worstPeer(peers map[int]*Correction) int {
	worst, at := -1.0, -1
	for idx, c := range peers { // want "strict-determinism package"
		if c.Phase > worst {
			worst, at = c.Phase, idx
		}
	}
	return at
}

// fuseSorted is the sanctioned shape: collect the keys, sort, then fold in
// deterministic order.
func fuseSorted(peers map[int]*Correction) float64 {
	keys := make([]int, 0, len(peers))
	for idx := range peers {
		keys = append(keys, idx)
	}
	sort.Ints(keys)
	var acc float64
	for _, idx := range keys {
		acc += peers[idx].CFO
	}
	return acc / float64(len(peers))
}
