// Package obsmap seeds streaming-telemetry code shapes for the
// strict-determinism golden test: the sampler and the stream sinks export
// bytes that CI diffs verbatim across worker counts, so any map iteration
// feeding a sample line, an exposition row, or a merge decision is a
// replayability bug, whatever its body computes.
package obsmap

import "sort"

// counterSample is one exported counter reading.
type counterSample struct {
	name  string
	delta int64
}

// sampleUnsorted snapshots a registry map in iteration order: two runs of
// the same simulation serialize the same counters in different byte
// order, and the streamed JSONL no longer diffs clean.
func sampleUnsorted(counters, prev map[string]int64) []counterSample {
	var out []counterSample
	for name, v := range counters { // want "strict-determinism package"
		out = append(out, counterSample{name: name, delta: v - prev[name]})
	}
	return out
}

// worstLane picks the deepest queue straight out of a map range: ties
// resolve to whichever lane the runtime visited first.
func worstLane(depths map[int]int) int {
	worst, at := -1, -1
	for lane, d := range depths { // want "strict-determinism package"
		if d > worst {
			worst, at = d, lane
		}
	}
	return at
}

// sampleSorted is the sanctioned shape: collect the names, sort, then
// index the map in deterministic order.
func sampleSorted(counters, prev map[string]int64) []counterSample {
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]counterSample, 0, len(names))
	for _, name := range names {
		out = append(out, counterSample{name: name, delta: counters[name] - prev[name]})
	}
	return out
}
