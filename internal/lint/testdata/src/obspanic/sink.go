// Package obspanic seeds streaming-monitor code whose exported API
// panics, for the panic-policy golden test: sinks and monitors run inside
// the tracer's record path on every event, so a panic there tears the
// whole simulation down mid-run instead of reporting a degraded stream.
package obspanic

import "fmt"

// Event is the minimal traced event a sink consumes.
type Event struct {
	Seq  int64
	Kind string
}

// PanickySink validates by assertion.
type PanickySink struct {
	closed bool
}

// ConsumeTrace panics on bad input instead of recording an error.
func (s *PanickySink) ConsumeTrace(e Event) {
	if s.closed {
		panic("obspanic: consume after close") // want "exported ConsumeTrace panics"
	}
	if e.Kind == "" {
		panic(fmt.Sprintf("obspanic: event %d has no kind", e.Seq)) // want "exported ConsumeTrace panics"
	}
}

// Observe panics on a sequence number running backwards.
func (s *PanickySink) Observe(e Event) {
	if e.Seq < 0 {
		panic("obspanic: negative seq") // want "exported Observe panics"
	}
}

// reset is unexported: internal invariant panics are allowed there.
func reset(s *PanickySink) {
	if s == nil {
		panic("obspanic: nil sink")
	}
	s.closed = false
}

// CleanSink is the conforming shape: records the first failure and
// discards later events, never panics.
type CleanSink struct {
	err error
}

// ConsumeTrace keeps the stream alive past a bad event.
func (s *CleanSink) ConsumeTrace(e Event) {
	if e.Kind == "" && s.err == nil {
		s.err = fmt.Errorf("obspanic: event %d has no kind", e.Seq)
	}
}

// Err returns the first failure the stream hit.
func (s *CleanSink) Err() error { return s.err }
