package floateq

// gridPoint compares a value copied verbatim from a configured grid; the
// trailing directive documents why exact equality is sound here.
func gridPoint(snrDB float64) bool {
	return snrDB == 10 //lint:ignore float-eq snrDB is copied verbatim from the configured grid, never computed
}
