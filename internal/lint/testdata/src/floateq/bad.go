// Package floateq seeds exact float comparisons for the float-eq
// analyzer's golden test.
package floateq

// equalGain compares measured gains bit-for-bit.
func equalGain(a, b float64) bool {
	return a == b // want "compares exact bits"
}

// driftStopped compares complex channel taps bit-for-bit.
func driftStopped(h, prev complex128) bool {
	return h != prev // want "compares exact bits"
}

// converged compares against a non-zero constant, which rounding can miss.
func converged(snr float64) bool {
	return snr == 12.5 // want "compares exact bits"
}
