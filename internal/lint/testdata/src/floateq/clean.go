package floateq

import "math"

// zeroGuard is the allowed exact-zero comparison before division.
func zeroGuard(h complex128, x complex128) complex128 {
	if h == 0 {
		return 0
	}
	return x / h
}

// tolerant is the recommended comparison shape.
func tolerant(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

// constFold compares two constants, exact by definition.
func constFold() bool {
	const eps = 1e-9
	return eps == 1e-9
}

// intCompare is not a float comparison at all.
func intCompare(a, b int) bool {
	return a == b
}
