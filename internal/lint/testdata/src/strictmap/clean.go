package strictmap

import (
	"fmt"
	"sort"
)

// reportSorted is the canonical idiom the strict rule admits: collect the
// keys in one append statement, sort them, then index the map in slice
// order.
func reportSorted(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, counts[k])
	}
}

// sliceRange shows the rule only bites maps: slice iteration is ordered.
func sliceRange(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}
