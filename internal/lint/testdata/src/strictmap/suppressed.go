package strictmap

// resetAll mutates every value without ever observing order; the
// directive records why that is safe here.
func resetAll(counts map[string]int) {
	//lint:ignore determinism order-free mutation: every value is overwritten with the same constant
	for k := range counts {
		counts[k] = 0
	}
}
