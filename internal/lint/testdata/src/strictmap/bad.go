// Package strictmap exercises the strict-determinism map rule applied to
// internal/traffic and internal/metrics: any map iteration outside the
// collect-keys-then-sort idiom is flagged, whatever its body does.
package strictmap

import (
	"fmt"
	"time"
)

// report prints per-stream counters straight out of a map range — exactly
// the output shape CI diffs across worker counts, so iteration order
// would leak into the bytes.
func report(counts map[string]int) {
	for name, n := range counts { // want "strict-determinism package"
		fmt.Println(name, n)
	}
}

// total looks harmless (integer sum commutes), but the strict rule bans
// the shape, not the arithmetic: the next edit to the body won't re-run
// the reviewer.
func total(counts map[string]int) int {
	sum := 0
	for _, n := range counts { // want "strict-determinism package"
		sum += n
	}
	return sum
}

// collectUnsorted gathers keys but never sorts them, so the carve-out
// does not apply.
func collectUnsorted(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts { // want "strict-determinism package"
		keys = append(keys, k)
	}
	return keys
}

// stamp also checks that the wall-clock ban reaches workload code.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in the signal path"
}
