// Package directive seeds a reasonless lint:ignore, which the framework
// itself reports instead of honoring.
package directive

// missingReason carries a directive with no justification, so the float
// comparison below it still fires and the directive is reported too.
func missingReason(a, b float64) bool {
	//lint:ignore
	return a == b
}
