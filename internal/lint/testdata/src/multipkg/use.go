// Package multipkg imports a sibling fixture package, exercising the
// loader's source-based resolution of module-local imports: the violation
// below is only visible if multipkglib's signature type-checked.
package multipkg

import "megamimo/internal/lint/testdata/src/multipkglib"

// stripImported drops the dimension of a quantity produced one package
// over.
func stripImported() float64 {
	return float64(multipkglib.Phase())
}
