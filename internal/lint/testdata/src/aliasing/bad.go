// Package aliasing seeds overlapping src/dst kernel calls for the aliasing
// analyzer's golden test.
package aliasing

import (
	"megamimo/internal/cmplxs"
	"megamimo/internal/dsp"
)

// shiftedOverlap writes each element one slot behind where it reads it.
func shiftedOverlap(x, b []complex128) {
	cmplxs.Add(x[1:], x, b[1:])          // want "overlapping source"
	cmplxs.Scale(x[2:], x[:len(x)-2], 2) // want "overlapping source"
	cmplxs.AXPY(x[1:], 2, x)             // want "overlapping source"
}

// convolveAliased violates ConvolveInto's strict disjointness contract.
func convolveAliased(x, h []complex128) {
	dsp.ConvolveInto(x, x, h) // want "disjoint"
}

// fftShifted partially overlaps an FFT's dst and src windows.
func fftShifted(p *dsp.FFTPlan, x []complex128) {
	p.Forward(x[1:], x[:len(x)-1]) // want "overlapping source"
}
