package aliasing

import "megamimo/internal/cmplxs"

// suppressedOverlap documents a deliberate overlap; the directive silences
// the analyzer on that line.
func suppressedOverlap(x, b []complex128) {
	cmplxs.Mul(x[1:], x, b) //lint:ignore aliasing deliberate smear for the golden suppression case
}
