package aliasing

import (
	"megamimo/internal/cmplxs"
	"megamimo/internal/dsp"
)

// cleanCalls exercises the aliasing shapes the contracts allow: full
// in-place aliasing, same-start windows, provably disjoint windows, and
// unrelated slices.
func cleanCalls(p *dsp.FFTPlan, x, b, out []complex128) {
	cmplxs.Add(x, x, b)            // full in-place alias is the documented contract
	cmplxs.Add(x[:], x, b)         // same start, same window
	cmplxs.Add(x[:4], x[4:8], b)   // provably disjoint constant windows
	cmplxs.Scale(out, x, 2)        // unrelated slices
	p.Forward(x, x)                // FFT supports full in-place operation
	dsp.ConvolveInto(out, x, b)    // strict contract satisfied
	cmplxs.Rotate(x, x, 0.1, 0.01) // in-place rotate at identical offset
}
