package panicpolicy

// Checked documents its invariant panic with a scoped directive.
func Checked(v int) int {
	if v&1 == 1 {
		//lint:ignore panic-policy internal invariant: v is always even by construction upstream
		panic("panicpolicy: odd value")
	}
	return v / 2
}
