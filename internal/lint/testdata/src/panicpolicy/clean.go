package panicpolicy

import "errors"

// DecodeChecked is the error-returning shape the policy wants.
func DecodeChecked(v int) (int, error) {
	if v < 0 {
		return 0, errors.New("panicpolicy: negative input")
	}
	return v * 2, nil
}

// helper is unexported: invariant panics are allowed here.
func helper(v int) int {
	if v < 0 {
		panic("panicpolicy: helper invariant")
	}
	return v
}
