// Package panicpolicy seeds exported-API panics for the panic-policy
// analyzer's golden test.
package panicpolicy

import "fmt"

// Decode is an exported entry point that panics on bad input.
func Decode(v int) int {
	if v < 0 {
		panic("panicpolicy: negative input") // want "exported Decode panics"
	}
	return v * 2
}

// Widget is an exported type with a panicking exported method.
type Widget struct{ n int }

// Scale panics instead of returning an error.
func (w *Widget) Scale(f int) int {
	if f == 0 {
		panic(fmt.Sprintf("panicpolicy: zero factor for %d", w.n)) // want "exported Scale panics"
	}
	return w.n * f
}
