// Package directivescope exercises //lint:ignore scoping and reason
// enforcement: a directive scoped to one analyzer must not silence
// another on the same line, and a scoped directive still needs a reason.
package directivescope

import "megamimo/internal/units"

// scopedKeepsOthers: the units-scoped suppression covers the float64
// strip, but the exact float comparison on the same line must survive.
func scopedKeepsOthers(phi units.Radians) bool {
	//lint:ignore units reading the raw angle is this fixture's point
	return float64(phi) == 0.25
}

// scopedNeedsReason: naming an analyzer does not excuse the reason; the
// directive is malformed and the strip below it still fires.
func scopedNeedsReason(phi units.Radians) float64 {
	//lint:ignore units
	return float64(phi)
}
