package determinism

import "sort"

// sortedCollect is the collect-then-sort idiom: the append order is erased
// by the sort, so the analyzer stays quiet.
func sortedCollect(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// countValues is order-insensitive (integer counting commutes exactly).
func countValues(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
