package determinism

import "time"

// logStamp's wall-clock read never feeds the signal path, so the directive
// on the line above the call suppresses the finding.
func logStamp() int64 {
	//lint:ignore determinism timestamp only labels a log line, never feeds the signal path
	return time.Now().UnixNano()
}
