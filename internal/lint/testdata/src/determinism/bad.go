// Package determinism seeds nondeterminism violations for the determinism
// analyzer's golden test.
package determinism

import (
	"math/rand" // want "route randomness through internal/rng"
	"time"
)

// jitter draws from the process-global generator.
func jitter() float64 {
	return rand.Float64() // want "process-global source"
}

// stamp consults the wall clock inside the signal path.
func stamp() int64 {
	return time.Now().UnixNano() // want "unreproducible"
}

// reduce accumulates floats in map-iteration order.
func reduce(m map[int]float64) float64 {
	var acc float64
	for _, v := range m {
		acc += v // want "float accumulation"
	}
	return acc
}

// collect leaks map-iteration order into a slice.
func collect(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want "append"
	}
	return keys
}
