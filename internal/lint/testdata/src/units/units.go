// Package unitsfixture seeds violations of all three units-analyzer rules
// plus their sanctioned escapes, for the golden test. It imports the real
// internal/units package so the fixture exercises exactly the types the
// analyzer tracks in production.
package unitsfixture

import (
	"math"

	"megamimo/internal/units"
)

// --- Rule 1: cross-unit reinterpreting conversions ---------------------

// badReinterpret converts one units type straight into another: the number
// survives but the dimension silently changes.
func badReinterpret(cfo units.RadPerSample) units.Radians {
	return units.Radians(cfo) // want "reinterprets units.RadPerSample without converting the dimension"
}

// badHzFromPPM reinterprets in the frequency family too.
func badHzFromPPM(budget units.PPM) units.Hertz {
	return units.Hertz(budget) // want "reinterprets units.PPM without converting the dimension"
}

// goodConversion goes through the conversion layer, which owns the
// carrier/rate arithmetic that actually changes the dimension.
func goodConversion(cfo units.RadPerSample, dt units.Samples) units.Radians {
	return units.PhaseAdvance(cfo, dt)
}

// goodConstruction builds a units value from a raw float64 — that is a
// construction, not a cross-unit conversion, and is always allowed.
func goodConstruction(x float64) units.Radians {
	return units.Radians(x)
}

// --- Rule 2: float64 casts stripping a units type ----------------------

// badStrip drops the dimension on the floor.
func badStrip(phi units.Radians) float64 {
	return float64(phi) // want "strips units.Radians"
}

// badStripTicks also fires for the int64-backed tick type.
func badStripTicks(n units.Ticks) float64 {
	return float64(n) // want "strips units.Ticks"
}

// suppressedStrip is a legal boundary: the directive names the analyzer
// and gives a reason, so the diagnostic is silenced.
func suppressedStrip(phi units.Radians) complex128 {
	//lint:ignore units math/cmplx needs the raw angle
	s, c := math.Sincos(float64(phi))
	return complex(c, s)
}

// goodRead uses the sanctioned cast-free read.
func goodRead(db units.Decibels) float64 {
	return units.Ratio(db, 1)
}

// goodIntStrip: int64-of-Ticks is a width change, not a float strip, and
// stays legal (the backend bus carries bare sample counts).
func goodIntStrip(n units.Ticks) int64 {
	return int64(n)
}

// --- Rule 3: dimension-named identifiers declared bare -----------------

// oscillator mirrors the shape of a radio front-end struct.
type oscillator struct {
	cfo       float64 // want "declared as bare float64"
	carrierHz float64 // want "declared as bare float64"
	snrDB     float64 // want "declared as bare float64"
	phaseStep float64 // want "declared as bare float64"
	//lint:ignore units precision weight of the CFO fusion, not a frequency
	cfoWeight float64
	gain      float64 // dimensionless: no token, no finding
}

// badLocals checks locals and parameters, including int64 timestamps that
// sound like frequencies.
func badLocals(driftPPM float64) float64 { // want "declared as bare float64"
	lastPhase := 0.0     // want "declared as bare float64"
	var spreadDB float64 // want "declared as bare float64"
	return driftPPM + lastPhase + spreadDB
}

// goodLocals carry their dimension in the type, or no dimension at all.
func goodLocals(budget units.PPM) float64 {
	phase0 := units.Radians(0.25)
	weight := 3.0
	return units.Ratio(phase0, 1) * weight * units.Ratio(budget, 1)
}
