// Package hotalloc seeds per-iteration allocation violations for the
// hotalloc analyzer's golden test.
package hotalloc

// samples is a named complex-sample slice; the analyzer sees through it.
type samples []complex128

// perSymbol allocates a fresh buffer every loop iteration.
func perSymbol(nsym int) []complex128 {
	var last []complex128
	for s := 0; s < nsym; s++ {
		buf := make([]complex128, 64) // want "inside a loop"
		buf[0] = complex(float64(s), 0)
		last = buf
	}
	return last
}

// perElement allocates through a named slice type inside a range loop.
func perElement(xs []int) []samples {
	var out []samples
	for _, x := range xs {
		b := make(samples, x) // want "inside a loop"
		out = append(out, b)
	}
	return out
}

// nested allocates in an inner loop; the finding is reported once.
func nested(n int) complex128 {
	var acc complex128
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w := make([]complex128, 8) // want "inside a loop"
			acc += w[0]
		}
	}
	return acc
}
