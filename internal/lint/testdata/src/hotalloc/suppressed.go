package hotalloc

// retained allocates per iteration deliberately: each buffer is returned
// to the caller and retained, so there is nothing to reuse. The scoped
// directive documents that.
func retained(n int) [][]complex128 {
	out := make([][]complex128, 0, n)
	for i := 0; i < n; i++ {
		//lint:ignore hotalloc each buffer is retained by the caller, reuse would alias results
		b := make([]complex128, 16)
		out = append(out, b)
	}
	return out
}
