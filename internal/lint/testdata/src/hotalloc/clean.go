package hotalloc

// hoisted allocates once before the loop and reuses the buffer — the
// pattern the analyzer pushes code toward.
func hoisted(nsym int) complex128 {
	buf := make([]complex128, 64)
	var acc complex128
	for s := 0; s < nsym; s++ {
		buf[0] = complex(float64(s), 0)
		acc += buf[0]
	}
	return acc
}

// otherTypes stay quiet: only complex-sample buffers are on the per-sample
// signal path budget.
func otherTypes(n int) []float64 {
	var last []float64
	for i := 0; i < n; i++ {
		last = make([]float64, 16)
		_ = make([]byte, 32)
	}
	return last
}

// outsideLoop is an ordinary one-shot allocation.
func outsideLoop() []complex128 {
	return make([]complex128, 64)
}
