package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationsSmallScale(t *testing.T) {
	r, err := RunAblations(2, 31)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d ablation rows", len(r.Rows))
	}
	get := func(prefix string) float64 {
		for _, row := range r.Rows {
			if strings.HasPrefix(row[0], prefix) {
				f := strings.Fields(row[1])[0]
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					t.Fatalf("parse %q: %v", row[1], err)
				}
				return v
			}
		}
		t.Fatalf("row %q missing", prefix)
		return 0
	}
	// The paper's core claim: direct measurement beats extrapolation, and
	// the advantage explodes as the channel state ages.
	m50 := get("INR: measure, 50 ms")
	e50 := get("INR: extrapolate, 50 ms")
	if e50 < m50+6 {
		t.Fatalf("extrapolation at 50 ms (%v dB) not clearly worse than measurement (%v dB)", e50, m50)
	}
	e5 := get("INR: extrapolate, 5 ms")
	if e50 < e5 {
		t.Fatalf("extrapolation error did not grow with staleness: %v → %v dB", e5, e50)
	}
	if !strings.Contains(r.String(), "Ablations") {
		t.Fatal("String broken")
	}
}
