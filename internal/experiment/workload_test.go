package experiment

import (
	"testing"

	"megamimo/internal/traffic"
)

func TestWorkloadDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		old := Workers()
		SetWorkers(workers)
		defer SetWorkers(old)
		r, err := RunWorkload([]float64{2, 8}, 2, 2, traffic.Poisson, 0.005, 7)
		if err != nil {
			t.Fatalf("RunWorkload(workers=%d): %v", workers, err)
		}
		return r.String()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("workload sweep diverges across worker counts:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", serial, parallel)
	}
}

func TestWorkloadSaturationGain(t *testing.T) {
	// At a demand far beyond one AP's unicast capacity, joint
	// transmission must deliver more than the equal-share baseline —
	// the paper's headline claim, restated in workload terms.
	r, err := RunWorkload([]float64{16}, 2, 2, traffic.Poisson, 0.01, 11)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	p := r.Points[0]
	if p.MegaMIMOMbps <= 0 {
		t.Fatal("MegaMIMO delivered nothing at saturation")
	}
	if p.MegaMIMOMbps <= p.BaselineMbps {
		t.Fatalf("no saturation gain: MegaMIMO %.2f Mb/s vs 802.11 %.2f Mb/s",
			p.MegaMIMOMbps, p.BaselineMbps)
	}
}
