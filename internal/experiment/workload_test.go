package experiment

import (
	"bytes"
	"testing"

	"megamimo/internal/tracefmt"
	"megamimo/internal/traffic"
)

func TestWorkloadDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		old := Workers()
		SetWorkers(workers)
		defer SetWorkers(old)
		r, err := RunWorkload([]float64{2, 8}, 2, 2, traffic.Poisson, 0.005, 7)
		if err != nil {
			t.Fatalf("RunWorkload(workers=%d): %v", workers, err)
		}
		return r.String()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("workload sweep diverges across worker counts:\n-- workers=1 --\n%s\n-- workers=4 --\n%s", serial, parallel)
	}
}

// TestWorkloadTraceDeterministicAcrossWorkers checks the flight recorder
// inherits the engine's determinism guarantee: the serialized JSONL trace
// of a parallel run is byte-identical to a serial run's.
func TestWorkloadTraceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		old := Workers()
		SetWorkers(workers)
		defer SetWorkers(old)
		_, trace, err := RunWorkloadTrace([]float64{2, 8}, 2, 2, traffic.Poisson, 0.005, 7, 1<<16)
		if err != nil {
			t.Fatalf("RunWorkloadTrace(workers=%d): %v", workers, err)
		}
		if len(trace) == 0 {
			t.Fatalf("RunWorkloadTrace(workers=%d) recorded no events", workers)
		}
		var buf bytes.Buffer
		meta := tracefmt.Meta{SampleRate: 20e6, CarrierHz: 2.462e9, APs: 2, Clients: 2}
		if err := tracefmt.WriteJSONL(&buf, meta, trace); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serialized trace diverges across worker counts: %d vs %d bytes",
			len(serial), len(parallel))
	}
}

func TestWorkloadSaturationGain(t *testing.T) {
	// At a demand far beyond one AP's unicast capacity, joint
	// transmission must deliver more than the equal-share baseline —
	// the paper's headline claim, restated in workload terms.
	r, err := RunWorkload([]float64{16}, 2, 2, traffic.Poisson, 0.01, 11)
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	p := r.Points[0]
	if p.MegaMIMOMbps <= 0 {
		t.Fatal("MegaMIMO delivered nothing at saturation")
	}
	if p.MegaMIMOMbps <= p.BaselineMbps {
		t.Fatalf("no saturation gain: MegaMIMO %.2f Mb/s vs 802.11 %.2f Mb/s",
			p.MegaMIMOMbps, p.BaselineMbps)
	}
}
