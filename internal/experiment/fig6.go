package experiment

import (
	"fmt"
	"math/cmplx"

	"megamimo/internal/cmplxs"
	"megamimo/internal/matrix"
	"megamimo/internal/rng"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// Fig6Point is one (misalignment, SNR) cell of Fig. 6.
type Fig6Point struct {
	MisalignmentRad float64
	SNRdB           float64
	ReductionDB     float64
}

// Fig6Result reproduces "Degradation of SNR due to phase misalignment":
// a 2-transmitter 2-receiver zero-forcing system where the slave's phase
// is offset after the beamforming matrix was computed.
type Fig6Result struct {
	Points []Fig6Point
}

// RunFig6 mirrors §11.1(a): 100 random channel matrices, misalignment
// swept 0–0.5 rad, at average SNRs of 10 and 20 dB. The matrix ensemble is
// drawn serially from one stream; the (SNR, misalignment) grid cells are
// pure functions of the shared read-only ensemble and fan out through the
// engine.
func RunFig6(matrices int, seed int64) *Fig6Result {
	src := rng.New(seed)
	hs := make([]*matrix.M, matrices)
	for i := range hs {
		h := matrix.New(2, 2)
		for j := range h.Data {
			h.Data[j] = src.ComplexNormal(1)
		}
		hs[i] = h
	}
	snrs := []float64{10, 20}
	var misGrid []float64
	for mis := 0.0; mis <= 0.501; mis += 0.05 {
		misGrid = append(misGrid, mis)
	}
	points, _ := MapNamed("fig6-misalignment", len(snrs)*len(misGrid), func(i int) (Fig6Point, error) {
		snrDB := snrs[i/len(misGrid)]
		mis := misGrid[i%len(misGrid)]
		var reductions []float64
		for _, h := range hs {
			r, ok := snrReduction(h, units.Radians(mis), units.Decibels(snrDB))
			if ok {
				reductions = append(reductions, r)
			}
		}
		return Fig6Point{
			MisalignmentRad: mis,
			SNRdB:           snrDB,
			ReductionDB:     stats.Mean(reductions),
		}, nil
	})
	return &Fig6Result{Points: points}
}

// snrReduction computes the per-receiver SINR loss when transmitter 2's
// phase is off by mis radians relative to the beamforming snapshot.
func snrReduction(h *matrix.M, misRad units.Radians, avgSNRdB units.Decibels) (float64, bool) {
	w, err := h.Inverse()
	if err != nil {
		return 0, false
	}
	// Scale the precoder for the per-transmitter power constraint.
	var maxRow float64
	for a := 0; a < 2; a++ {
		var p float64
		for _, v := range w.Row(a) {
			p += real(v)*real(v) + imag(v)*imag(v)
		}
		if p > maxRow {
			maxRow = p
		}
	}
	if maxRow <= 0 {
		return 0, false
	}
	k2 := 1 / maxRow
	// Noise chosen so the zero-misalignment per-client SNR averages the
	// target ("two systems — one in which the average SNR is 10 dB, and
	// other ... 20 dB").
	nv := k2 / cmplxs.FromDB(avgSNRdB)
	// Misaligned effective channel: slave column rotated.
	t := matrix.Identity(2)
	t.Set(1, 1, cmplxs.Expi(misRad))
	eff := h.Mul(t).Mul(w)
	var totalLoss float64
	for c := 0; c < 2; c++ {
		sig := cmplx.Abs(eff.At(c, c))
		sig *= sig
		var intf float64
		for j := 0; j < 2; j++ {
			if j == c {
				continue
			}
			v := cmplx.Abs(eff.At(c, j))
			intf += v * v
		}
		sinr := sig * k2 / (intf*k2 + nv)
		snr0 := k2 / nv // aligned reference: |diag| = 1 exactly
		totalLoss += units.Ratio(cmplxs.DB(snr0/sinr), 1)
	}
	return totalLoss / 2, true
}

// String renders the two series the paper plots.
func (r *Fig6Result) String() string {
	header := []string{"misalignment (rad)", "loss @10 dB", "loss @20 dB"}
	byMis := map[float64][2]float64{}
	var order []float64
	for _, p := range r.Points {
		v := byMis[p.MisalignmentRad]
		//lint:ignore float-eq SNRdB is copied verbatim from the configured {10, 20} dB grid, never computed
		if p.SNRdB == 10 {
			v[0] = p.ReductionDB
		} else {
			v[1] = p.ReductionDB
		}
		if _, seen := byMis[p.MisalignmentRad]; !seen {
			order = append(order, p.MisalignmentRad)
		}
		byMis[p.MisalignmentRad] = v
	}
	var rows [][]string
	for _, m := range order {
		v := byMis[m]
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", m),
			fmt.Sprintf("%.2f dB", v[0]),
			fmt.Sprintf("%.2f dB", v[1]),
		})
	}
	return "Fig 6 — SNR reduction vs phase misalignment (2x2 ZF)\n" + Table(header, rows)
}
