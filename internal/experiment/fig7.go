package experiment

import (
	"fmt"

	"megamimo/internal/core"
	"megamimo/internal/stats"
)

// Fig7Result reproduces "CDF of observed phase misalignment" (§11.1b):
// lead and slave alternate symbols at a receiver with full distributed
// phase synchronization running; the deviation of their relative phase
// from the first round is the misalignment.
type Fig7Result struct {
	DeviationsRad []float64
	MedianRad     float64
	P95Rad        float64
}

// RunFig7 gathers rounds of alternating-symbol measurements across several
// lead/slave placements; each placement is one engine cell with its own
// seeded network.
func RunFig7(placements, roundsPerPlacement int, seed int64) (*Fig7Result, error) {
	cells, err := MapNamed("fig7-coherence", placements, func(p int) ([]float64, error) {
		cfg := core.DefaultConfig(2, 1, 24, 30)
		cfg.Seed = seed + int64(p)*97
		// Real oscillators wander: a modest Wiener phase-noise process
		// (the USRP2's TCXO class) drifts a few hundredths of a radian
		// over the header→symbols turnaround, which is what puts the
		// paper's floor at 0.017 rad rather than the thermal-noise-only
		// value.
		cfg.WanderStd = 2e-4
		n, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := n.Measure(); err != nil {
			return nil, err
		}
		return n.MeasureMisalignment(roundsPerPlacement, 20000)
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	for _, devs := range cells {
		res.DeviationsRad = append(res.DeviationsRad, devs...)
	}
	if len(res.DeviationsRad) > 0 {
		res.MedianRad = stats.Median(res.DeviationsRad)
		res.P95Rad = stats.Percentile(res.DeviationsRad, 95)
	}
	return res, nil
}

// String prints the CDF summary plus sampled points.
func (r *Fig7Result) String() string {
	c := stats.NewCDF(r.DeviationsRad)
	header := []string{"misalignment (rad)", "fraction of runs"}
	var rows [][]string
	for _, pt := range c.Points(11) {
		rows = append(rows, []string{fmt.Sprintf("%.4f", pt[0]), fmt.Sprintf("%.2f", pt[1])})
	}
	return fmt.Sprintf("Fig 7 — CDF of observed phase misalignment\n"+
		"median %.4f rad (paper: 0.017), p95 %.4f rad (paper: 0.05), n=%d\n%s",
		r.MedianRad, r.P95Rad, len(r.DeviationsRad), Table(header, rows))
}
