package experiment

import (
	"fmt"
	"sort"

	"megamimo/internal/baseline"
	"megamimo/internal/core"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// Fig9Point is one (bin, #APs) cell: total network throughput for both
// systems, median across topologies.
type Fig9Point struct {
	Bin          string
	APs          int
	MegaMIMObps  float64
	Dot11bps     float64
	MedianGain   float64
	PerClientGae []float64 // all per-client gains pooled across topologies (feeds Fig 10)
}

// Fig9Result holds the scaling curves; Fig10 reads the pooled per-client
// gains back out of it.
type Fig9Result struct {
	Points []Fig9Point
	// SampleRate used (10 MHz USRP testbed).
	SampleRate float64
}

// topologyRun measures one random topology end to end and returns total and
// per-stream throughputs for MegaMIMO and the 802.11 baseline.
func topologyRun(nAPs int, bin SNRBin, seed int64, txRounds int) (mm float64, mmPer []float64, bl float64, blPer []float64, err error) {
	cfg := core.DefaultConfig(nAPs, nAPs, bin.Lo, bin.Hi)
	cfg.Seed = seed
	cfg.WellConditioned = true
	n, err := core.New(cfg)
	if err != nil {
		return 0, nil, 0, nil, err
	}
	if err := n.Measure(); err != nil {
		return 0, nil, 0, nil, err
	}
	if _, err := n.Precode(cfg.NoiseVar); err != nil {
		return 0, nil, 0, nil, err
	}

	// 802.11 baseline: equal medium share at each client's unicast rate.
	u := baseline.New(n)
	bl, blPer, err = u.EqualShareThroughput(PayloadBytes)
	if err != nil {
		return 0, nil, 0, nil, err
	}

	// MegaMIMO: adapt the rate with a probe, then measure delivered
	// goodput over real joint transmissions, charging the sync header,
	// turnaround and the measurement phase amortized over the ~250 ms
	// coherence time (§5).
	mcs, ok, err := n.ProbeAndSelectRate(256)
	if err != nil {
		return 0, nil, 0, nil, err
	}
	mmPer = make([]float64, nAPs)
	if !ok {
		return 0, mmPer, bl, blPer, nil
	}
	var airtime int64
	perBits := make([]float64, nAPs)
	for round := 0; round < txRounds; round++ {
		payloads := make([][]byte, nAPs)
		for j := range payloads {
			payloads[j] = make([]byte, PayloadBytes)
		}
		res, txErr := n.JointTransmit(payloads, mcs)
		if txErr != nil {
			return 0, nil, 0, nil, txErr
		}
		airtime += res.AirtimeSamples
		for j, okj := range res.OK {
			if okj {
				perBits[j] += float64(8 * PayloadBytes)
			}
		}
	}
	// Measurement overhead amortized: one measurement packet per
	// coherence time, shared across all transmissions inside it.
	const coherenceSamples = 0.25 * USRPSampleRate
	msmtSamples := float64(nAPs*cfg.MeasurementRounds*80 + 2*80*nAPs + 800)
	overhead := 1 + msmtSamples/coherenceSamples
	seconds := units.Duration(units.Ticks(airtime), cfg.SampleRate) * overhead
	for j := range perBits {
		mmPer[j] = perBits[j] / seconds
		mm += mmPer[j]
	}
	return mm, mmPer, bl, blPer, nil
}

// fig9Cell is one measured topology: totals and per-stream throughputs for
// both systems.
type fig9Cell struct {
	mm, bl       float64
	mmPer, blPer []float64
}

// RunFig9 sweeps #APs = #clients across the bins (§11.2), with the given
// number of random topologies per point and joint transmissions per
// topology. Each topology is one engine cell; the per-cell seed depends
// only on the (AP count, topology) coordinates.
func RunFig9(apCounts []int, topologies, txRounds int, seed int64) (*Fig9Result, error) {
	cells, err := MapNamed("fig9-scaling", len(AllBins)*len(apCounts)*topologies, func(i int) (fig9Cell, error) {
		bin := AllBins[i/(len(apCounts)*topologies)]
		nAPs := apCounts[(i/topologies)%len(apCounts)]
		topo := i % topologies
		s := seed + int64(topo)*1009 + int64(nAPs)*13
		mm, mmPer, bl, blPer, err := topologyRun(nAPs, bin, s, txRounds)
		if err != nil {
			return fig9Cell{}, err
		}
		return fig9Cell{mm: mm, bl: bl, mmPer: mmPer, blPer: blPer}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{SampleRate: USRPSampleRate}
	for b, bin := range AllBins {
		for a, nAPs := range apCounts {
			var mmTotals, blTotals, gains []float64
			base := (b*len(apCounts) + a) * topologies
			for topo := 0; topo < topologies; topo++ {
				c := cells[base+topo]
				mmTotals = append(mmTotals, c.mm)
				blTotals = append(blTotals, c.bl)
				for j := range c.mmPer {
					if j < len(c.blPer) && c.blPer[j] > 0 {
						gains = append(gains, c.mmPer[j]/c.blPer[j])
					}
				}
			}
			pt := Fig9Point{
				Bin:          bin.Name,
				APs:          nAPs,
				MegaMIMObps:  stats.Median(mmTotals),
				Dot11bps:     stats.Median(blTotals),
				PerClientGae: gains,
			}
			if len(gains) > 0 {
				pt.MedianGain = stats.Median(gains)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// String prints the throughput-scaling table per bin.
func (r *Fig9Result) String() string {
	out := "Fig 9 — Scaling of throughput with the number of APs\n"
	for _, bin := range AllBins {
		header := []string{"APs(=clients)", "802.11 (Mb/s)", "MegaMIMO (Mb/s)", "median gain"}
		var rows [][]string
		for _, p := range r.Points {
			if p.Bin != bin.Name {
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", p.APs),
				fmt.Sprintf("%.1f", p.Dot11bps/1e6),
				fmt.Sprintf("%.1f", p.MegaMIMObps/1e6),
				fmt.Sprintf("%.1f x", p.MedianGain),
			})
		}
		out += bin.Name + "\n" + Table(header, rows) + "\n"
	}
	return out
}

// Fig10Result is the per-client throughput-gain CDF data (§11.3).
type Fig10Result struct {
	// GainsByAPCount[bin name][#APs] → pooled per-client gains.
	Gains map[string]map[int][]float64
}

// Fig10From derives the fairness CDFs from a Fig 9 run — the paper uses
// the same experiment for both figures.
func Fig10From(r *Fig9Result) *Fig10Result {
	out := &Fig10Result{Gains: map[string]map[int][]float64{}}
	for _, p := range r.Points {
		if out.Gains[p.Bin] == nil {
			out.Gains[p.Bin] = map[int][]float64{}
		}
		out.Gains[p.Bin][p.APs] = append(out.Gains[p.Bin][p.APs], p.PerClientGae...)
	}
	return out
}

// String prints quartiles of the per-client gain distribution for the
// AP counts the paper plots (2, 6, 10 when present).
func (r *Fig10Result) String() string {
	out := "Fig 10 — Fairness: per-client throughput gain CDFs\n"
	for _, bin := range AllBins {
		byN := r.Gains[bin.Name]
		if byN == nil {
			continue
		}
		header := []string{"APs", "p10 gain", "p50 gain", "p90 gain", "n"}
		var rows [][]string
		for _, nAPs := range sortedKeys(byN) {
			g := byN[nAPs]
			if len(g) == 0 {
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", nAPs),
				fmt.Sprintf("%.1f x", stats.Percentile(g, 10)),
				fmt.Sprintf("%.1f x", stats.Percentile(g, 50)),
				fmt.Sprintf("%.1f x", stats.Percentile(g, 90)),
				fmt.Sprintf("%d", len(g)),
			})
		}
		out += bin.Name + "\n" + Table(header, rows) + "\n"
	}
	return out
}

func sortedKeys(m map[int][]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
