package experiment

import (
	"fmt"
	"math"

	"megamimo/internal/core"
	"megamimo/internal/fault"
	"megamimo/internal/stats"
	psync "megamimo/internal/sync"
	"megamimo/internal/traffic"
	"megamimo/internal/units"
)

// This file runs the synchronization-strategy head-to-head (ROADMAP item
// 3): the same drift, chaos and offered-load machinery applied to every
// registered sync.Strategy, a comparison the original papers never did on
// equal footing — JMB's sync header measures per packet, AirSync predicts
// with a Kalman filter, BeamSync calibrates periodically and extrapolates
// between bursts.

// SyncCondition is one column of the head-to-head: an injected oscillator
// drift (lead −ppm, slaves +ppm → 2×ppm relative) or the mixed chaos
// scenario at the drift-free oscillator draws.
type SyncCondition struct {
	// DriftPPM pulls the lead and slave oscillators apart by ±DriftPPM
	// (2×DriftPPM relative). Ignored when Chaos is set.
	DriftPPM float64
	// Chaos replays the seeded mixed fault scenario instead of a drift.
	Chaos bool
}

// Name renders the condition for the comparison table.
func (c SyncCondition) Name() string {
	if c.Chaos {
		return "chaos mixed"
	}
	return fmt.Sprintf("%.0f ppm", c.DriftPPM)
}

// DefaultSyncConditions is the acceptance grid: the 0/10/20 ppm drift
// points plus the mixed chaos scenario.
func DefaultSyncConditions() []SyncCondition {
	return []SyncCondition{
		{DriftPPM: 0},
		{DriftPPM: 10},
		{DriftPPM: 20},
		{Chaos: true},
	}
}

// SyncSweepRow is one (strategy, condition) cell of the comparison:
// phase-error statistics pooled over every slave measurement, delivered
// throughput, and the degradation counters, medians/sums across
// topologies.
type SyncSweepRow struct {
	Strategy  string
	Condition string
	// MedianPhaseErrRad / P95PhaseErrRad summarize |residual phase error|
	// over every slave-ratio event (the π/18 budget bounds the median).
	MedianPhaseErrRad, P95PhaseErrRad float64
	// MegaMIMOMbps is the delivered aggregate throughput (median across
	// topologies).
	MegaMIMOMbps float64
	// DegradedRounds / SyncAbstains are summed across topologies.
	DegradedRounds, SyncAbstains int64
}

// SyncSweepResult is the full strategy × condition grid.
type SyncSweepResult struct {
	NAPs       int
	Topologies int
	Seconds    float64
	Seed       int64
	Conditions []string
	Rows       []SyncSweepRow
}

// syncCell is one (strategy, condition, topology) closed-loop run.
type syncCell struct {
	report    *traffic.Report
	phaseErrs []float64
	degraded  int64
	abstains  int64
}

// syncSweepLoad keeps every stream backlogged (the chaos sweep's load), so
// a strategy that degrades rounds pays visible throughput.
const syncSweepLoad = chaosLoadMbpsPerClient

// runSyncCell builds one network with the given strategy, injects the
// condition, and drives the closed loop for the window, collecting the
// phase-error telemetry from the flight recorder.
func runSyncCell(strategy string, cond SyncCondition, nAPs int, seconds float64, topoSeed, engSeed, planSeed int64) (syncCell, error) {
	var cell syncCell
	strat, err := psync.Parse(strategy)
	if err != nil {
		return cell, err
	}
	cfg := core.DefaultConfig(nAPs, nAPs, HighSNR.Lo, HighSNR.Hi)
	cfg.Seed = topoSeed
	cfg.WellConditioned = true
	cfg.Sync = strat
	n, err := core.New(cfg)
	if err != nil {
		return cell, err
	}
	if !cond.Chaos && cond.DriftPPM > 0 {
		// Lead −ppm, slaves +ppm: 2×ppm relative, the drift the anomaly
		// gate's cfo-mandate measures. Client oscillators keep their draws.
		for _, ap := range n.APs {
			if ap.Index == n.Lead().Index {
				ap.Node.Osc.PPM = units.PPM(-cond.DriftPPM)
			} else {
				ap.Node.Osc.PPM = units.PPM(cond.DriftPPM)
			}
		}
	}
	n.Trace().Enable(1 << 18)
	if _, err := n.MeasureAndPrecode(); err != nil {
		return cell, err
	}
	var plan *fault.Plan
	if cond.Chaos {
		start := n.Now()
		plan = fault.Scenario{
			Seed:       planSeed,
			Start:      start,
			Horizon:    start + int64(units.TicksIn(seconds, n.Cfg.SampleRate)),
			SampleRate: n.Cfg.SampleRate,
			NumAPs:     nAPs,
			NumStreams: n.NumStreams(),
			Intensity:  400,
		}.Plan()
	}
	profiles := make([]traffic.Profile, n.NumStreams())
	for i := range profiles {
		profiles[i] = traffic.NewCBR(syncSweepLoad*1e6, PayloadBytes)
	}
	eng, err := traffic.New(n, traffic.Config{
		System:   traffic.SystemMegaMIMO,
		Profiles: profiles,
		Seed:     engSeed,
		Faults:   plan,
	})
	if err != nil {
		return cell, err
	}
	rep, err := eng.Run(seconds)
	if err != nil {
		// A strategy bad enough that no MCS delivers is a head-to-head
		// result, not an infrastructure failure: score the cell as zero
		// throughput and keep the phase-error telemetry that explains why.
		rep = &traffic.Report{}
	}
	cell.report = rep
	for _, e := range n.Trace().Events() {
		if e.Kind != core.KindSlaveRatio {
			continue
		}
		cell.phaseErrs = append(cell.phaseErrs, math.Abs(units.Ratio(e.Attrs.PhaseErrRad, 1)))
	}
	cell.degraded = n.Metrics().Counter("degraded_rounds_total").Value()
	cell.abstains = n.Metrics().Counter("sync_abstain_total").Value()
	return cell, nil
}

// RunSyncSweep races the given strategies across the condition grid:
// every (strategy, condition) pair runs the offered-load closed loop over
// the same seeded topologies, and the row reports pooled phase-error
// statistics, median throughput and summed degradation counters. Cells run
// on the parallel engine; every seed is a pure function of the cell's
// coordinates and rows aggregate in cell-index order, so the table is
// byte-identical at any worker count.
func RunSyncSweep(strategies []string, conds []SyncCondition, nAPs, topologies int, seconds float64, seed int64) (*SyncSweepResult, error) {
	if len(strategies) == 0 {
		strategies = []string{"header", "airsync", "beamsync"}
	}
	if len(conds) == 0 {
		conds = DefaultSyncConditions()
	}
	nCells := len(strategies) * len(conds) * topologies
	cells, err := MapNamed("syncsweep", nCells, func(i int) (syncCell, error) {
		si := i / (len(conds) * topologies)
		ci := (i / topologies) % len(conds)
		topo := i % topologies
		topoSeed := seed + int64(topo)*7919
		engSeed := seed + int64(si)*104729 + int64(ci)*1299709 + int64(topo)*7919
		planSeed := seed + int64(ci)*15485863 + int64(topo)*7919 + 13
		return runSyncCell(strategies[si], conds[ci], nAPs, seconds, topoSeed, engSeed, planSeed)
	})
	if err != nil {
		return nil, err
	}
	res := &SyncSweepResult{NAPs: nAPs, Topologies: topologies, Seconds: seconds, Seed: seed}
	for _, c := range conds {
		res.Conditions = append(res.Conditions, c.Name())
	}
	for si, strat := range strategies {
		for ci, cond := range conds {
			row := SyncSweepRow{Strategy: strat, Condition: cond.Name()}
			var pooled []float64
			var tput []float64
			for topo := 0; topo < topologies; topo++ {
				c := cells[(si*len(conds)+ci)*topologies+topo]
				pooled = append(pooled, c.phaseErrs...)
				tput = append(tput, c.report.AggregateDeliveredBps/1e6)
				row.DegradedRounds += c.degraded
				row.SyncAbstains += c.abstains
			}
			row.MedianPhaseErrRad = stats.Median(pooled)
			row.P95PhaseErrRad = stats.Percentile(pooled, 95)
			row.MegaMIMOMbps = stats.Median(tput)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// String renders the head-to-head table, one row per (strategy,
// condition), with the π/18 budget marked for reference.
func (r *SyncSweepResult) String() string {
	out := fmt.Sprintf("Sync strategy head-to-head — %d APs, %d topologies, %.3fs windows, seed %d (π/18 = %.4f rad)\n",
		r.NAPs, r.Topologies, r.Seconds, r.Seed, math.Pi/18)
	header := []string{
		"strategy", "condition", "median |Δφ| (rad)", "p95 |Δφ| (rad)",
		"MegaMIMO (Mb/s)", "degraded", "abstains",
	}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Strategy,
			row.Condition,
			fmt.Sprintf("%.4f", row.MedianPhaseErrRad),
			fmt.Sprintf("%.4f", row.P95PhaseErrRad),
			fmt.Sprintf("%.2f", row.MegaMIMOMbps),
			fmt.Sprintf("%d", row.DegradedRounds),
			fmt.Sprintf("%d", row.SyncAbstains),
		})
	}
	return out + Table(header, rows)
}
