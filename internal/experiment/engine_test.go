package experiment

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestMapOrdersResults checks results land at their cell index regardless
// of worker count.
func TestMapOrdersResults(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 7, 64} {
		SetWorkers(w)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", w, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestMapReturnsLowestIndexedError checks the parallel error matches what a
// serial stop-at-first-failure loop reports.
func TestMapReturnsLowestIndexedError(t *testing.T) {
	defer SetWorkers(0)
	errLow := errors.New("cell 3 failed")
	errHigh := errors.New("cell 40 failed")
	f := func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errLow
		case 40:
			return 0, errHigh
		}
		return i, nil
	}
	for _, w := range []int{1, 8} {
		SetWorkers(w)
		out, err := Map(64, f)
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want %v", w, err, errLow)
		}
		if out != nil {
			t.Errorf("workers=%d: results not discarded on error", w)
		}
	}
}

// TestMapEmpty checks the degenerate grids.
func TestMapEmpty(t *testing.T) {
	for _, n := range []int{0, -3} {
		out, err := Map(n, func(i int) (int, error) { return i, nil })
		if err != nil || out != nil {
			t.Errorf("Map(%d) = %v, %v; want nil, nil", n, out, err)
		}
	}
}

// TestMapRunsEveryCellOnce checks no cell is skipped or duplicated under
// contention.
func TestMapRunsEveryCellOnce(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(16)
	var calls [512]atomic.Int32
	if _, err := Map(len(calls), func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("cell %d ran %d times", i, n)
		}
	}
}

// TestSetWorkersClamps checks the accessor semantics.
func TestSetWorkersClamps(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if w := Workers(); w != 3 {
		t.Errorf("Workers() = %d, want 3", w)
	}
	SetWorkers(-5)
	if w := Workers(); w < 1 {
		t.Errorf("Workers() = %d after reset, want >= 1", w)
	}
}
