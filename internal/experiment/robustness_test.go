package experiment

import (
	"megamimo/internal/units"
	"strings"
	"testing"
)

func TestRobustnessSweepSmall(t *testing.T) {
	r, err := RunRobustness([]units.PPM{2, 20}, 2, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("%d points", len(r.Points))
	}
	for _, p := range r.Points {
		// §1: the system must hold phase alignment well inside the 802.11
		// ±20 ppm mandate.
		if p.MisalignMedian > 0.05 {
			t.Fatalf("±%v ppm: misalignment %.4f rad", p.PPMBudget, p.MisalignMedian)
		}
		if p.INRdB > 2 {
			t.Fatalf("±%v ppm: INR %.1f dB", p.PPMBudget, p.INRdB)
		}
		if p.DeliveryRate < 0.6 {
			t.Fatalf("±%v ppm: delivery %.0f%%", p.PPMBudget, 100*p.DeliveryRate)
		}
	}
	if !strings.Contains(r.String(), "Robustness") {
		t.Fatal("String broken")
	}
}
