package experiment

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"megamimo/internal/air"
	"megamimo/internal/checkpoint"
)

// soakTestConfig is a small but non-trivial game-day cell: sustained
// load, a fault storm dense enough to be active across any checkpoint
// boundary, and frequent checkpoints/samples.
func soakTestConfig(t *testing.T) SoakConfig {
	t.Helper()
	return SoakConfig{
		APs: 3, Clients: 3,
		Seed:            7,
		LoadMbps:        12,
		PacketBytes:     200,
		Seconds:         0.03,
		FaultsPerSec:    400,
		SampleEvery:     4,
		CheckpointEvery: 8,
	}
}

// runSoakTo runs a soak writing its artifacts under dir, returning the
// result.
func runSoakTo(t *testing.T, cfg SoakConfig, dir string) *SoakResult {
	t.Helper()
	cfg.CheckpointDir = dir
	cfg.TracePath = filepath.Join(dir, "trace.jsonl")
	cfg.SeriesPath = filepath.Join(dir, "series.jsonl")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	res, err := RunSoak(cfg)
	if cfg.StopAfterRounds > 0 {
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("interrupted soak: got error %v, want ErrInterrupted", err)
		}
	} else if err != nil {
		t.Fatalf("RunSoak: %v", err)
	}
	return res
}

// TestSoakResumeByteIdentity is the harness's core guarantee: interrupt a
// soak mid-run (with the fault storm live), resume from its last
// checkpoint, and the resumed trace/metrics tail must be byte-identical
// to the uninterrupted run — including when the interrupted and resumed
// halves run at different medium worker counts.
func TestSoakResumeByteIdentity(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "workers-1", 4: "workers-4"}[workers], func(t *testing.T) {
			base := soakTestConfig(t)
			root := t.TempDir()

			air.SetWorkers(1)
			defer air.SetWorkers(0)
			full := runSoakTo(t, base, filepath.Join(root, "full"))
			if full.Report == nil || full.Report.Rounds < 24 {
				t.Fatalf("soak too short to interrupt: %+v", full.Report)
			}
			if len(full.Checkpoints) < 2 {
				t.Fatalf("uninterrupted run wrote %d checkpoints, want >= 2", len(full.Checkpoints))
			}

			interrupted := base
			interrupted.StopAfterRounds = 2*base.CheckpointEvery + base.CheckpointEvery/2
			cut := runSoakTo(t, interrupted, filepath.Join(root, "cut"))
			if len(cut.Checkpoints) < 2 {
				t.Fatalf("interrupted run wrote %d checkpoints, want >= 2", len(cut.Checkpoints))
			}
			last := cut.Checkpoints[len(cut.Checkpoints)-1]
			st, _, err := checkpoint.ReadAny(last)
			if err != nil {
				t.Fatalf("ReadAny(%s): %v", last, err)
			}

			// The storm must still have events to replay after the cut,
			// or the "fault storm active across the boundary" claim is
			// vacuous for this seed.
			if st.Engine == nil || st.Engine.Injector == nil {
				t.Fatalf("checkpoint carries no injector state")
			}

			air.SetWorkers(workers)
			resumed := base
			resumed.Resume = last
			tail := runSoakTo(t, resumed, filepath.Join(root, "tail"))
			if tail.Report == nil {
				t.Fatalf("resumed run returned no report")
			}

			fullTrace := readFile(t, filepath.Join(root, "full", "trace.jsonl"))
			tailTrace := readFile(t, filepath.Join(root, "tail", "trace.jsonl"))
			if uint64(len(fullTrace)) != full.TraceBytes {
				t.Fatalf("uninterrupted trace is %d bytes on disk, counter says %d", len(fullTrace), full.TraceBytes)
			}
			if st.TraceBytes > uint64(len(fullTrace)) {
				t.Fatalf("checkpoint trace offset %d beyond uninterrupted trace (%d bytes)", st.TraceBytes, len(fullTrace))
			}
			if want := string(fullTrace[st.TraceBytes:]); want != string(tailTrace) {
				t.Fatalf("resumed trace tail diverges from uninterrupted run (want %d bytes, got %d)\nfirst diff near: %q",
					len(want), len(tailTrace), firstDiff(want, string(tailTrace)))
			}

			fullSeries := readFile(t, filepath.Join(root, "full", "series.jsonl"))
			tailSeries := readFile(t, filepath.Join(root, "tail", "series.jsonl"))
			if want := string(fullSeries[st.SeriesBytes:]); want != string(tailSeries) {
				t.Fatalf("resumed metrics series tail diverges (want %d bytes, got %d)\nfirst diff near: %q",
					len(want), len(tailSeries), firstDiff(want, string(tailSeries)))
			}

			// Latency/jitter accounting must also carry across the
			// boundary: the resumed run's final report is the
			// uninterrupted run's, percentile for percentile.
			if got, want := tail.Report.String(), full.Report.String(); got != want {
				t.Fatalf("resumed report diverges:\n--- uninterrupted\n%s\n--- resumed\n%s", want, got)
			}
		})
	}
}

// TestSoakResumeRejectsMismatchedConfig locks satellite #1: a checkpoint
// from one run identity must not restore into another.
func TestSoakResumeRejectsMismatchedConfig(t *testing.T) {
	base := soakTestConfig(t)
	root := t.TempDir()
	base.StopAfterRounds = base.CheckpointEvery
	cut := runSoakTo(t, base, filepath.Join(root, "cut"))
	if len(cut.Checkpoints) == 0 {
		t.Fatalf("no checkpoint written")
	}

	for _, mut := range []struct {
		name  string
		apply func(*SoakConfig)
	}{
		{"seed", func(c *SoakConfig) { c.Seed++ }},
		{"topology", func(c *SoakConfig) { c.APs++ }},
		{"sync", func(c *SoakConfig) { c.Sync = "airsync" }},
	} {
		t.Run(mut.name, func(t *testing.T) {
			bad := base
			bad.StopAfterRounds = 0
			bad.Resume = cut.Checkpoints[len(cut.Checkpoints)-1]
			mut.apply(&bad)
			_, err := RunSoak(bad)
			if err == nil {
				t.Fatalf("resume under mutated %s config succeeded, want rejection", mut.name)
			}
			if !strings.Contains(err.Error(), "config mismatch") {
				t.Fatalf("rejection error %q does not name the config mismatch", err)
			}
		})
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// firstDiff returns a short window around the first differing byte.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			hi := i + 40
			if hi > n {
				hi = n
			}
			return a[lo:hi] + " != " + b[lo:hi]
		}
	}
	return "length mismatch"
}
