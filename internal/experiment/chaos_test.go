package experiment

import (
	"reflect"
	"testing"

	"megamimo/internal/core"
)

// TestChaosDeterministic: the chaos sweep — including the injected faults,
// the degraded rounds and the merged flight-recorder trace — must be
// byte-identical at any worker count.
func TestChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload pipeline")
	}
	type out struct {
		Res   *ChaosResult
		Trace []core.TraceEvent
	}
	runBoth(t, "chaos", func() (out, error) {
		res, trace, err := RunChaosTrace([]float64{0, 600}, 3, 1, 0.01, 77, 4096)
		return out{res, trace}, err
	})
}

// TestChaosGracefulDegradation: faults must cost delivery, not correctness —
// at high intensity MegaMIMO still delivers a meaningful fraction of offered
// packets, and the fault-path counters prove the degradation machinery ran.
func TestChaosGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload pipeline")
	}
	res, err := RunChaos([]float64{0, 600}, 4, 1, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	calm, storm := res.Points[0], res.Points[1]
	if calm.FaultsInjected != 0 {
		t.Fatalf("intensity 0 injected %d faults", calm.FaultsInjected)
	}
	if calm.MegaMIMODeliveredRate < 0.95 {
		t.Fatalf("fault-free delivered rate %.3f, want ~1", calm.MegaMIMODeliveredRate)
	}
	if storm.FaultsInjected == 0 {
		t.Fatal("high intensity injected nothing")
	}
	if storm.MegaMIMODeliveredRate > calm.MegaMIMODeliveredRate {
		t.Fatalf("faults improved delivery: %.3f > %.3f",
			storm.MegaMIMODeliveredRate, calm.MegaMIMODeliveredRate)
	}
	if storm.MegaMIMODeliveredRate < 0.3 {
		t.Fatalf("delivered rate %.3f under faults — collapse, not degradation",
			storm.MegaMIMODeliveredRate)
	}
	if s := res.String(); s == "" {
		t.Fatal("empty table")
	}
	if b, err := res.JSON(); err != nil || len(b) == 0 {
		t.Fatalf("JSON render: %v", err)
	}
}

// TestChaosDeepEqualReplay: running the identical sweep twice end to end
// yields deep-equal results — nothing inside a cell depends on wall clock or
// global mutable state.
func TestChaosDeepEqualReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload pipeline")
	}
	a, err := RunChaos([]float64{300}, 3, 1, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos([]float64{300}, 3, 1, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay differs:\n%+v\n%+v", a, b)
	}
}
