package experiment

import (
	"fmt"

	"megamimo/internal/cmplxs"
	"megamimo/internal/core"
	"megamimo/internal/phy"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// Fig8Point is the average INR for one (#receivers, SNR bin) cell.
type Fig8Point struct {
	Receivers int
	Bin       string
	INRdB     units.Decibels
}

// Fig8Result reproduces "Accuracy of Phase Alignment": for each topology
// the APs null at one client while transmitting to the others; any power
// at the nulled client is interference from imperfect phase alignment.
type Fig8Result struct {
	Points []Fig8Point
}

// RunFig8 sweeps 2–maxN AP/receiver counts across the three SNR bins,
// averaging the per-victim INR across topologies and victims (§11.1c
// "for each topology, we null at each client, and compute the average
// interference to noise ratio across clients"). One engine cell measures
// one topology; its seed is a pure function of the (bin, #APs, topology)
// coordinates so the grid parallelizes deterministically.
func RunFig8(maxN, topologies int, seed int64) (*Fig8Result, error) {
	if maxN < 2 {
		return &Fig8Result{}, nil
	}
	nCounts := maxN - 1 // AP counts 2..maxN
	cells, err := MapNamed("fig8-sumrate", len(AllBins)*nCounts*topologies, func(i int) ([]float64, error) {
		binIdx := i / (nCounts * topologies)
		nAPs := 2 + (i/topologies)%nCounts
		topo := i % topologies
		bin := AllBins[binIdx]
		cfg := core.DefaultConfig(nAPs, nAPs, bin.Lo, bin.Hi)
		cfg.Seed = seed + int64(topo)*131 + int64(nAPs)*7 + int64(binIdx)
		cfg.WellConditioned = true
		n, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := n.Measure(); err != nil {
			return nil, err
		}
		if _, err := n.Precode(cfg.NoiseVar); err != nil {
			return nil, nil // singular draw
		}
		inrs := make([]float64, 0, nAPs)
		for victim := 0; victim < nAPs; victim++ {
			inr, err := n.NullingINR(victim, 700, phy.MCS0)
			if err != nil {
				return nil, err
			}
			inrs = append(inrs, inr)
		}
		return inrs, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	for b, bin := range AllBins {
		for nAPs := 2; nAPs <= maxN; nAPs++ {
			var inrs []float64
			base := (b*nCounts + nAPs - 2) * topologies
			for topo := 0; topo < topologies; topo++ {
				inrs = append(inrs, cells[base+topo]...)
			}
			if len(inrs) == 0 {
				continue
			}
			res.Points = append(res.Points, Fig8Point{
				Receivers: nAPs,
				Bin:       bin.Name,
				INRdB:     cmplxs.DB(stats.Mean(inrs)),
			})
		}
	}
	return res, nil
}

// String prints the three INR-vs-N series.
func (r *Fig8Result) String() string {
	header := []string{"receivers"}
	for _, b := range AllBins {
		header = append(header, b.Name)
	}
	byN := map[int][]string{}
	var order []int
	for _, p := range r.Points {
		if _, ok := byN[p.Receivers]; !ok {
			order = append(order, p.Receivers)
			byN[p.Receivers] = make([]string, len(AllBins))
		}
		for i, b := range AllBins {
			if p.Bin == b.Name {
				byN[p.Receivers][i] = fmt.Sprintf("%.2f dB", p.INRdB)
			}
		}
	}
	var rows [][]string
	for _, n := range order {
		rows = append(rows, append([]string{fmt.Sprintf("%d", n)}, byN[n]...))
	}
	return "Fig 8 — INR at a nulled client vs number of receivers\n" + Table(header, rows)
}

// SlopePerPair returns the average INR growth in dB per added AP-client
// pair for the given bin (the paper reports ≈0.13 dB at high SNR).
func (r *Fig8Result) SlopePerPair(bin string) float64 {
	var xs []Fig8Point
	for _, p := range r.Points {
		if p.Bin == bin {
			xs = append(xs, p)
		}
	}
	if len(xs) < 2 {
		return 0
	}
	first, last := xs[0], xs[len(xs)-1]
	return units.Ratio(last.INRdB-first.INRdB, 1) / float64(last.Receivers-first.Receivers)
}
