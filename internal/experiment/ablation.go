package experiment

import (
	"fmt"
	"math"

	"megamimo/internal/cmplxs"
	"megamimo/internal/core"
	"megamimo/internal/phy"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// AblationResult compares design variants on the nulling INR after a
// configurable staleness interval.
type AblationResult struct {
	Rows [][2]string // label, value
}

// RunAblations exercises the design decisions DESIGN.md calls out:
//
//  1. direct per-packet phase measurement vs frequency-offset
//     extrapolation (the paper's core claim), at two staleness horizons;
//  2. interleaved-measurement averaging depth (2 vs 8 rounds);
//  3. pure zero-forcing vs MMSE regularization on iid Rayleigh channels.
func RunAblations(draws int, seed int64) (*AblationResult, error) {
	res := &AblationResult{}

	// Each draw is one engine cell; a NaN marks a singular draw to skip.
	inrRun := func(mod func(*core.Config), wait int64) (float64, error) {
		cells, err := MapNamed("ablation-inr", draws, func(d int) (float64, error) {
			cfg := core.DefaultConfig(3, 3, 18, 24)
			cfg.Seed = seed + int64(d)*211
			cfg.WellConditioned = true
			if mod != nil {
				mod(&cfg)
			}
			n, err := core.New(cfg)
			if err != nil {
				return 0, err
			}
			if err := n.Measure(); err != nil {
				return 0, err
			}
			if _, err := n.Precode(cfg.NoiseVar); err != nil {
				return math.NaN(), nil
			}
			if wait > 0 {
				n.AdvanceTime(wait)
			}
			inr, err := n.NullingINR(0, 700, phy.MCS0)
			if err != nil {
				return 0, err
			}
			return units.Ratio(cmplxs.DB(inr), 1), nil
		})
		if err != nil {
			return 0, err
		}
		var vals []float64
		for _, v := range cells {
			if !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		return stats.Mean(vals), nil
	}

	type cell struct {
		label string
		mod   func(*core.Config)
		wait  int64
	}
	cells := []cell{
		{"measure, 5 ms stale", nil, 50000},
		{"extrapolate, 5 ms stale", func(c *core.Config) { c.ExtrapolatePhase = true }, 50000},
		{"measure, 50 ms stale", nil, 500000},
		{"extrapolate, 50 ms stale", func(c *core.Config) { c.ExtrapolatePhase = true }, 500000},
		{"2 measurement rounds", func(c *core.Config) { c.MeasurementRounds = 2 }, 0},
		{"8 measurement rounds", func(c *core.Config) { c.MeasurementRounds = 8 }, 0},
	}
	for _, c := range cells {
		v, err := inrRun(c.mod, c.wait)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, [2]string{"INR: " + c.label, fmt.Sprintf("%.1f dB", v)})
	}

	// ZF vs MMSE on iid Rayleigh (WellConditioned off): adapted-rate joint
	// throughput.
	tput := func(lambdaTimesNv float64) (float64, error) {
		cells, err := MapNamed("ablation-precoder", draws, func(d int) (float64, error) {
			cfg := core.DefaultConfig(5, 5, 18, 24)
			cfg.Seed = seed + int64(d)*431
			n, err := core.New(cfg)
			if err != nil {
				return 0, err
			}
			if err := n.Measure(); err != nil {
				return 0, err
			}
			if _, err := n.Precode(lambdaTimesNv * cfg.NoiseVar); err != nil {
				return math.NaN(), nil
			}
			mcs, ok, err := n.ProbeAndSelectRate(256)
			if err != nil {
				return 0, err
			}
			if !ok {
				return 0, nil
			}
			payloads := make([][]byte, 5)
			for j := range payloads {
				payloads[j] = make([]byte, PayloadBytes)
			}
			r, err := n.JointTransmit(payloads, mcs)
			if err != nil {
				return 0, err
			}
			return r.GoodputBits() / units.Duration(units.Ticks(r.AirtimeSamples), cfg.SampleRate) / 1e6, nil
		})
		if err != nil {
			return 0, err
		}
		var vals []float64
		for _, v := range cells {
			if !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		return stats.Mean(vals), nil
	}
	for _, lam := range []float64{0, 4} {
		v, err := tput(lam)
		if err != nil {
			return nil, err
		}
		label := "pure ZF"
		if lam > 0 {
			label = fmt.Sprintf("MMSE λ=%.0f·nv", lam)
		}
		res.Rows = append(res.Rows, [2]string{"iid-Rayleigh 5x5 throughput, " + label, fmt.Sprintf("%.1f Mb/s", v)})
	}
	return res, nil
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	header := []string{"ablation", "result"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row[0], row[1]})
	}
	return "Ablations — design-choice comparisons\n" + Table(header, rows)
}
