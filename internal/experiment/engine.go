package experiment

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// The experiment engine fans the independent cells of each figure runner —
// one (topology, seed, SNR bin, AP count) combination per cell — across a
// worker pool. Every cell derives its randomness from a seed that is a pure
// function of the cell's static coordinates (never of earlier results), and
// results are collected by cell index, so the assembled output is
// byte-identical whether the grid runs on one worker or sixteen.

// workerCount is the configured fan-out; 0 means "use GOMAXPROCS".
var workerCount atomic.Int32

// SetWorkers fixes the number of concurrent cells the engine evaluates.
// n <= 0 restores the default (GOMAXPROCS at call time). Safe to call
// concurrently with running experiments; in-flight Map calls keep the
// worker count they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int32(n))
}

// Workers reports the effective fan-out Map will use.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates f(0), …, f(n-1) across Workers() goroutines and returns the
// results in index order. f must be safe to call concurrently and must
// depend only on its index (cells own their networks, RNGs and scratch).
//
// Error semantics match a serial loop that stops at the first failure: Map
// returns the error from the lowest-indexed failing cell, so a parallel run
// fails with the same error a one-worker run does. On error the results are
// discarded.
func Map[T any](n int, f func(i int) (T, error)) ([]T, error) {
	return MapNamed("experiment", n, f)
}

// MapNamed is Map with a profiling name: each cell runs under
// runtime/pprof labels (experiment=name, cell=index), so CPU profiles of
// the engine break down by figure runner and by cell instead of showing
// one anonymous worker pool. The labels cost nothing when no profile is
// being collected.
func MapNamed[T any](name string, n int, f func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	labeled := func(i int) (v T, err error) {
		pprof.Do(context.Background(), pprof.Labels("experiment", name, "cell", strconv.Itoa(i)), func(context.Context) {
			v, err = f(i)
		})
		return v, err
	}
	out := make([]T, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			v, err := labeled(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next unclaimed cell
		errIdx  atomic.Int64 // lowest failing cell index, n = none
		errOnce sync.Mutex
		firstEr error
		wg      sync.WaitGroup
	)
	errIdx.Store(int64(n))
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				// Cells are claimed in index order, so once a failure is
				// recorded every cell below it is already claimed; stopping
				// here cannot hide a lower-indexed error.
				if i >= n || int64(i) > errIdx.Load() {
					return
				}
				v, err := labeled(i)
				if err != nil {
					errOnce.Lock()
					if int64(i) < errIdx.Load() {
						errIdx.Store(int64(i))
						firstEr = err
					}
					errOnce.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if errIdx.Load() < int64(n) {
		return nil, firstEr
	}
	return out, nil
}
