package experiment

import (
	"megamimo/internal/units"
	"reflect"
	"testing"
)

// The parallel engine must be invisible in the output: every figure runner
// produces deep-equal results (and identical rendered tables) on one worker
// and on many. Configs here are the smallest that exercise every cell
// boundary (multiple bins, AP counts, topologies), so the whole file stays
// fast enough for the -race CI run.

// runBoth runs fn at one and at four workers and compares the results.
func runBoth[T any](t *testing.T, name string, fn func() (T, error)) {
	t.Helper()
	defer SetWorkers(0)
	SetWorkers(1)
	serial, err := fn()
	if err != nil {
		t.Fatalf("%s serial: %v", name, err)
	}
	SetWorkers(4)
	parallel, err := fn()
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("%s: parallel result differs from serial\nserial:   %+v\nparallel: %+v", name, serial, parallel)
	}
	if s, p := render(serial), render(parallel); s != p {
		t.Errorf("%s: rendered output differs\nserial:\n%s\nparallel:\n%s", name, s, p)
	}
}

// render calls String() when the result has one.
func render(v any) string {
	if s, ok := v.(interface{ String() string }); ok {
		return s.String()
	}
	return ""
}

func TestFig6Deterministic(t *testing.T) {
	runBoth(t, "fig6", func() (*Fig6Result, error) { return RunFig6(8, 1), nil })
}

func TestFig7Deterministic(t *testing.T) {
	runBoth(t, "fig7", func() (*Fig7Result, error) { return RunFig7(3, 4, 1) })
}

func TestFig8Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	runBoth(t, "fig8", func() (*Fig8Result, error) { return RunFig8(3, 2, 1) })
}

func TestFig9Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	runBoth(t, "fig9", func() (*Fig9Result, error) { return RunFig9([]int{2, 3}, 2, 1, 1) })
}

func TestFig11Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	runBoth(t, "fig11", func() (*Fig11Result, error) { return RunFig11([]int{2}, 1, 1) })
}

func TestFig12Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	runBoth(t, "fig12", func() (*Fig12Result, error) { return RunFig12(2, 1, 1) })
}

func TestAblationsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	runBoth(t, "ablations", func() (*AblationResult, error) { return RunAblations(2, 1) })
}

func TestRobustnessDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	runBoth(t, "robustness", func() (*RobustnessResult, error) {
		return RunRobustness([]units.PPM{2, 20}, 2, 1)
	})
}

func TestAmortizationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	runBoth(t, "amortization", func() (*AmortizationResult, error) {
		return RunAmortization([]int{1, 4}, 2, 1)
	})
}
