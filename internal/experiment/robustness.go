package experiment

import (
	"fmt"

	"megamimo/internal/cmplxs"
	"megamimo/internal/core"
	"megamimo/internal/phy"
	"megamimo/internal/stats"
)

// RobustnessPoint is one oscillator-quality cell.
type RobustnessPoint struct {
	PPMBudget      float64
	MisalignMedian float64
	INRdB          float64
	DeliveryRate   float64
}

// RobustnessResult sweeps the crystal-error budget from laboratory-grade
// to the full 802.11 mandate (±20 ppm, §1: "several orders of magnitude
// smaller than the mandated 802.11 tolerance") and reports how the
// distributed phase sync holds up.
type RobustnessResult struct {
	Points []RobustnessPoint
}

// RunRobustness measures misalignment, nulling INR and joint delivery at
// each ppm budget.
func RunRobustness(budgets []float64, draws int, seed int64) (*RobustnessResult, error) {
	res := &RobustnessResult{}
	for _, ppm := range budgets {
		var mis, inrs, okRates []float64
		for d := 0; d < draws; d++ {
			// Misalignment (Fig. 7 machinery, 2 APs, 1 client).
			mcfg := core.DefaultConfig(2, 1, 24, 30)
			mcfg.Seed = seed + int64(d)*353
			mcfg.PPMBudget = ppm
			mn, err := core.New(mcfg)
			if err != nil {
				return nil, err
			}
			if err := mn.Measure(); err != nil {
				return nil, err
			}
			devs, err := mn.MeasureMisalignment(12, 20000)
			if err != nil {
				return nil, err
			}
			mis = append(mis, devs...)

			// INR + delivery (3×3 joint).
			cfg := core.DefaultConfig(3, 3, 18, 24)
			cfg.Seed = seed + int64(d)*353 + 7
			cfg.PPMBudget = ppm
			cfg.WellConditioned = true
			n, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			if err := n.Measure(); err != nil {
				return nil, err
			}
			p, err := core.ComputeZF(n.Msmt, cfg.NoiseVar)
			if err != nil {
				continue
			}
			n.SetPrecoder(p)
			inr, err := n.NullingINR(0, 700, phy.MCS0)
			if err != nil {
				return nil, err
			}
			inrs = append(inrs, cmplxs.DB(inr))
			mcs, ok, err := n.ProbeAndSelectRate(256)
			if err != nil {
				return nil, err
			}
			if !ok {
				okRates = append(okRates, 0)
				continue
			}
			payloads := make([][]byte, 3)
			for j := range payloads {
				payloads[j] = make([]byte, PayloadBytes)
			}
			r, err := n.JointTransmit(payloads, mcs)
			if err != nil {
				return nil, err
			}
			delivered := 0
			for _, o := range r.OK {
				if o {
					delivered++
				}
			}
			okRates = append(okRates, float64(delivered)/3)
		}
		pt := RobustnessPoint{PPMBudget: ppm}
		if len(mis) > 0 {
			pt.MisalignMedian = stats.Median(mis)
		}
		pt.INRdB = stats.Mean(inrs)
		pt.DeliveryRate = stats.Mean(okRates)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// String renders the sweep.
func (r *RobustnessResult) String() string {
	header := []string{"ppm budget", "misalign median (rad)", "INR (dB)", "delivery"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("±%.1f", p.PPMBudget),
			fmt.Sprintf("%.4f", p.MisalignMedian),
			fmt.Sprintf("%.1f", p.INRdB),
			fmt.Sprintf("%.0f%%", 100*p.DeliveryRate),
		})
	}
	return "Robustness — distributed phase sync vs oscillator quality\n" + Table(header, rows)
}
