package experiment

import (
	"fmt"

	"megamimo/internal/cmplxs"
	"megamimo/internal/core"
	"megamimo/internal/phy"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// RobustnessPoint is one oscillator-quality cell.
type RobustnessPoint struct {
	PPMBudget      units.PPM
	MisalignMedian float64
	INRdB          float64
	DeliveryRate   float64
}

// RobustnessResult sweeps the crystal-error budget from laboratory-grade
// to the full 802.11 mandate (±20 ppm, §1: "several orders of magnitude
// smaller than the mandated 802.11 tolerance") and reports how the
// distributed phase sync holds up.
type RobustnessResult struct {
	Points []RobustnessPoint
}

// robustnessCell is one (ppm budget, draw) measurement; hasINR/hasOK mark
// which aggregates this draw contributes to (a singular precoder draw
// contributes only misalignment).
type robustnessCell struct {
	mis    []float64
	inr    float64
	hasINR bool
	okRate float64
	hasOK  bool
}

// RunRobustness measures misalignment, nulling INR and joint delivery at
// each ppm budget. One engine cell covers one (budget, draw) pair; the
// seed intentionally repeats across budgets so the sweep is a paired
// comparison over the same channel draws.
func RunRobustness(budgets []units.PPM, draws int, seed int64) (*RobustnessResult, error) {
	cells, err := MapNamed("robustness", len(budgets)*draws, func(i int) (robustnessCell, error) {
		ppm := budgets[i/draws]
		d := i % draws
		var out robustnessCell
		// Misalignment (Fig. 7 machinery, 2 APs, 1 client).
		mcfg := core.DefaultConfig(2, 1, 24, 30)
		mcfg.Seed = seed + int64(d)*353
		mcfg.PPMBudget = ppm
		mn, err := core.New(mcfg)
		if err != nil {
			return out, err
		}
		if err := mn.Measure(); err != nil {
			return out, err
		}
		devs, err := mn.MeasureMisalignment(12, 20000)
		if err != nil {
			return out, err
		}
		out.mis = devs

		// INR + delivery (3×3 joint).
		cfg := core.DefaultConfig(3, 3, 18, 24)
		cfg.Seed = seed + int64(d)*353 + 7
		cfg.PPMBudget = ppm
		cfg.WellConditioned = true
		n, err := core.New(cfg)
		if err != nil {
			return out, err
		}
		if err := n.Measure(); err != nil {
			return out, err
		}
		if _, err := n.Precode(cfg.NoiseVar); err != nil {
			return out, nil // singular draw
		}
		inr, err := n.NullingINR(0, 700, phy.MCS0)
		if err != nil {
			return out, err
		}
		out.inr, out.hasINR = units.Ratio(cmplxs.DB(inr), 1), true
		mcs, ok, err := n.ProbeAndSelectRate(256)
		if err != nil {
			return out, err
		}
		if !ok {
			out.hasOK = true
			return out, nil
		}
		payloads := make([][]byte, 3)
		for j := range payloads {
			payloads[j] = make([]byte, PayloadBytes)
		}
		r, err := n.JointTransmit(payloads, mcs)
		if err != nil {
			return out, err
		}
		delivered := 0
		for _, o := range r.OK {
			if o {
				delivered++
			}
		}
		out.okRate, out.hasOK = float64(delivered)/3, true
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &RobustnessResult{}
	for b, ppm := range budgets {
		var mis, inrs, okRates []float64
		for d := 0; d < draws; d++ {
			c := cells[b*draws+d]
			mis = append(mis, c.mis...)
			if c.hasINR {
				inrs = append(inrs, c.inr)
			}
			if c.hasOK {
				okRates = append(okRates, c.okRate)
			}
		}
		pt := RobustnessPoint{PPMBudget: ppm}
		if len(mis) > 0 {
			pt.MisalignMedian = stats.Median(mis)
		}
		pt.INRdB = stats.Mean(inrs)
		pt.DeliveryRate = stats.Mean(okRates)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// String renders the sweep.
func (r *RobustnessResult) String() string {
	header := []string{"ppm budget", "misalign median (rad)", "INR (dB)", "delivery"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("±%.1f", p.PPMBudget),
			fmt.Sprintf("%.4f", p.MisalignMedian),
			fmt.Sprintf("%.1f", p.INRdB),
			fmt.Sprintf("%.0f%%", 100*p.DeliveryRate),
		})
	}
	return "Robustness — distributed phase sync vs oscillator quality\n" + Table(header, rows)
}
