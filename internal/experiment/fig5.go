package experiment

import (
	"fmt"

	"megamimo/internal/geom"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Fig5Result reproduces "Testbed Topology": the conference-room floor plan
// with AP locations on the perimeter ledges and client locations scattered
// across the room, from which every run samples a random subset.
type Fig5Result struct {
	Topology *geom.Topology
	Room     geom.Room
}

// RunFig5 samples a placement at the paper's scale (10 AP candidates,
// 10 client locations).
func RunFig5(seed int64) *Fig5Result {
	src := rng.New(seed)
	room := geom.ConferenceRoom
	top := geom.SampleTopology(src, room, geom.DefaultIndoor, 10, 10)
	return &Fig5Result{Topology: top, Room: room}
}

// String renders the floor plan plus the link-budget summary.
func (r *Fig5Result) String() string {
	out := "Fig 5 — Testbed topology (A = AP on perimeter ledge, c = client)\n"
	out += r.Topology.Map(r.Room, 64, 18)
	header := []string{"client", "closest AP (m)", "farthest AP (m)", "best-link SNR (dB)"}
	var rows [][]string
	for c := range r.Topology.Clients {
		minD, maxD := units.Meters(1e9), units.Meters(0)
		bestSNR := units.Decibels(-1e9)
		for a := range r.Topology.APs {
			d := r.Topology.Clients[c].Distance(r.Topology.APs[a])
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
			if snr := r.Topology.SNRdB(geom.DefaultIndoor, c, a, 20, -90); snr > bestSNR {
				bestSNR = snr
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%.1f", minD),
			fmt.Sprintf("%.1f", maxD),
			fmt.Sprintf("%.1f", bestSNR),
		})
	}
	return out + Table(header, rows)
}
