package experiment

import (
	"math"
	"strings"
	"testing"
)

// quickSweep is the smallest grid covering the acceptance surface: all
// three shipping strategies across 0/10/20 ppm drift plus the mixed chaos
// scenario.
func quickSweep() (*SyncSweepResult, error) {
	return RunSyncSweep(nil, nil, 2, 2, 0.005, 1)
}

func TestSyncSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed-loop grid")
	}
	runBoth(t, "syncsweep", quickSweep)
}

// TestSyncSweepCoversAcceptanceGrid checks the default table shape: three
// strategies × (three drift points + chaos), every cell populated.
func TestSyncSweepCoversAcceptanceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed-loop grid")
	}
	r, err := quickSweep()
	if err != nil {
		t.Fatal(err)
	}
	wantConds := []string{"0 ppm", "10 ppm", "20 ppm", "chaos mixed"}
	wantStrats := []string{"header", "airsync", "beamsync"}
	if len(r.Rows) != len(wantConds)*len(wantStrats) {
		t.Fatalf("got %d rows, want %d", len(r.Rows), len(wantConds)*len(wantStrats))
	}
	i := 0
	for _, s := range wantStrats {
		for _, c := range wantConds {
			row := r.Rows[i]
			i++
			if row.Strategy != s || row.Condition != c {
				t.Errorf("row %d is (%s, %s), want (%s, %s)", i-1, row.Strategy, row.Condition, s, c)
			}
			if row.MegaMIMOMbps <= 0 {
				t.Errorf("(%s, %s): no throughput delivered", s, c)
			}
			if !(row.MedianPhaseErrRad >= 0) || !(row.P95PhaseErrRad >= row.MedianPhaseErrRad) {
				t.Errorf("(%s, %s): malformed phase stats median=%v p95=%v",
					s, c, row.MedianPhaseErrRad, row.P95PhaseErrRad)
			}
		}
	}
	out := r.String()
	for _, want := range append(wantConds, wantStrats...) {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

// TestSyncSweepPhaseBudget is the head-to-head property the paper's §7
// budget imposes: every shipping strategy holds its median |phase error|
// inside π/18 at relative drifts up to the 20 ppm point.
func TestSyncSweepPhaseBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed-loop grid")
	}
	r, err := quickSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Condition == "chaos mixed" {
			continue // chaos rows include deliberately corrupted headers
		}
		if row.MedianPhaseErrRad > math.Pi/18 {
			t.Errorf("(%s, %s): median |phase err| %.4f rad exceeds the π/18 budget",
				row.Strategy, row.Condition, row.MedianPhaseErrRad)
		}
	}
}

// TestSyncSweepMistunedVariantDegrades pins the CI canary's mechanism: the
// deliberately mistuned BeamSync inflates its CFO estimate ~100× relative
// to the correctly tuned one under the same drift.
func TestSyncSweepMistunedVariantDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("full closed-loop grid")
	}
	conds := []SyncCondition{{DriftPPM: 10}}
	r, err := RunSyncSweep([]string{"beamsync", "beamsync-mistuned"}, conds, 2, 2, 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	tuned, mistuned := r.Rows[0], r.Rows[1]
	if mistuned.MedianPhaseErrRad <= tuned.MedianPhaseErrRad {
		t.Errorf("mistuned median %.4f rad not worse than tuned %.4f rad",
			mistuned.MedianPhaseErrRad, tuned.MedianPhaseErrRad)
	}
}
