package experiment

import (
	"strings"
	"testing"
)

func TestAmortizationOverheadShrinks(t *testing.T) {
	r, err := RunAmortization([]int{1, 8}, 2, 51)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("%d points", len(r.Points))
	}
	every, amortized := r.Points[0], r.Points[1]
	if every.OverheadFraction <= amortized.OverheadFraction {
		t.Fatalf("overhead did not shrink: %.2f → %.2f", every.OverheadFraction, amortized.OverheadFraction)
	}
	if amortized.ThroughputBps <= every.ThroughputBps {
		t.Fatalf("amortization did not raise throughput: %.1f → %.1f Mb/s",
			every.ThroughputBps/1e6, amortized.ThroughputBps/1e6)
	}
	// §5's qualitative claim: with many packets per measurement the
	// overhead becomes small.
	if amortized.OverheadFraction > 0.25 {
		t.Fatalf("amortized overhead still %.0f%%", 100*amortized.OverheadFraction)
	}
	if !strings.Contains(r.String(), "Amortization") {
		t.Fatal("String broken")
	}
}
