package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The testdata goldens are the exact bytes `megamimo-bench -quick
// -workers=1 fig8` / `fig9` printed BEFORE the synchronization loop moved
// behind the sync.Strategy interface. The header strategy is the paper's
// scheme verbatim, so the refactored pipeline must reproduce them
// byte-for-byte: any drift here means the extraction changed a float
// operation, not just moved it.

// quickFig8 renders fig8 exactly as the CLI's -quick path does.
func quickFig8() (string, error) {
	r, err := RunFig8(6, 1, 1)
	if err != nil {
		return "", err
	}
	return fmt.Sprintln(r) +
		fmt.Sprintf("high-SNR INR slope: %.3f dB per AP-client pair (paper: ~0.13)\n\n",
			r.SlopePerPair(HighSNR.Name)), nil
}

// quickFig9 renders fig9 exactly as the CLI's -quick path does.
func quickFig9() (string, error) {
	r, err := RunFig9([]int{2, 3, 4, 5, 6}, 2, 2, 1)
	if err != nil {
		return "", err
	}
	return fmt.Sprintln(r), nil
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output diverged from the pre-refactor golden %s\n--- want\n%s--- got\n%s", path, want, got)
	}
}

func TestHeaderSyncMatchesPreRefactorFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	defer SetWorkers(0)
	SetWorkers(1)
	out, err := quickFig8()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden-fig8.txt", out)
}

func TestHeaderSyncMatchesPreRefactorFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement pipeline")
	}
	defer SetWorkers(0)
	SetWorkers(1)
	out, err := quickFig9()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden-fig9.txt", out)
}
