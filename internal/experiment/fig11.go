package experiment

import (
	"fmt"

	"megamimo/internal/core"
	"megamimo/internal/rate"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// Fig11Point is one (#APs, link SNR) diversity-throughput sample.
type Fig11Point struct {
	APs       int
	LinkSNRdB units.Decibels
	MegaMIMO  float64 // bit/s with coherent diversity
	Dot11     float64 // bit/s single 802.11 transmitter
}

// Fig11Result reproduces "Diversity Throughput" (§11.4): all APs transmit
// the same packet coherently to one client; the received amplitudes add,
// so even a 0 dB client can carry real throughput.
type Fig11Result struct {
	Points []Fig11Point
}

// RunFig11 sweeps the per-AP link SNR from 0 to 25 dB for the given AP
// counts, averaging over several channel draws per point. Each channel
// draw is one engine cell with a seed derived from its (AP count, SNR,
// draw) coordinates.
func RunFig11(apCounts []int, draws int, seed int64) (*Fig11Result, error) {
	var snrGrid []units.Decibels
	for snr := units.Decibels(0); snr <= 25.01; snr += 2.5 {
		snrGrid = append(snrGrid, snr)
	}
	type cell struct{ mm, bl float64 }
	cells, err := MapNamed("fig11-dot11n", len(apCounts)*len(snrGrid)*draws, func(i int) (cell, error) {
		nAPs := apCounts[i/(len(snrGrid)*draws)]
		snr := snrGrid[(i/draws)%len(snrGrid)]
		d := i % draws
		cfg := core.DefaultConfig(nAPs, 1, snr, snr+0.5)
		cfg.Seed = seed + int64(d)*733 + int64(nAPs)*17 + int64(snr*10)
		cfg.LinkSpreadDB = 0.5 // "roughly similar SNRs to all APs"
		n, err := core.New(cfg)
		if err != nil {
			return cell{}, err
		}
		if err := n.Measure(); err != nil {
			return cell{}, err
		}
		mmT, blT, err := diversityThroughput(n, snr)
		if err != nil {
			return cell{}, err
		}
		return cell{mm: mmT, bl: blT}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for a, nAPs := range apCounts {
		for s, snr := range snrGrid {
			var mm, bl []float64
			base := (a*len(snrGrid) + s) * draws
			for d := 0; d < draws; d++ {
				mm = append(mm, cells[base+d].mm)
				bl = append(bl, cells[base+d].bl)
			}
			res.Points = append(res.Points, Fig11Point{
				APs:       nAPs,
				LinkSNRdB: snr,
				MegaMIMO:  stats.Mean(mm),
				Dot11:     stats.Mean(bl),
			})
		}
	}
	return res, nil
}

// diversityThroughput selects the diversity rate from the measured
// channels, verifies it with real coherent transmissions, and returns the
// delivered goodput plus the single-transmitter 802.11 reference.
func diversityThroughput(n *core.Network, linkSNR units.Decibels) (mm, bl float64, err error) {
	margin := units.DBToLinear(-n.Cfg.RateMarginDB)
	sub := core.DiversitySubcarrierSNR(n.Msmt, 0, n.Cfg.NoiseVar)
	for i := range sub {
		sub[i] *= margin
	}
	// ARF-style fallback: at deep-fade SNRs the noisy channel estimate
	// biases (Σ|ĥ|)² upward, so a failed rate steps down a tier before
	// the throughput sample is taken.
	const trials = 3
	if mcs, ok := rate.Select(sub); ok {
		for {
			delivered := 0
			var airtime int64
			for t := 0; t < trials; t++ {
				res, err := n.DiversityTransmit(0, make([]byte, PayloadBytes), mcs)
				if err != nil {
					return 0, 0, err
				}
				airtime += res.AirtimeSamples
				if res.OK[0] {
					delivered++
				}
			}
			if airtime > 0 {
				mm = float64(delivered*8*PayloadBytes) / units.Duration(units.Ticks(airtime), n.Cfg.SampleRate)
			}
			if delivered > 0 || mcs == 0 {
				break
			}
			mcs--
		}
	}
	// 802.11 reference: one transmitter at the raw link SNR.
	if mcs, ok := rate.SelectFlat(linkSNR - n.Cfg.RateMarginDB); ok {
		bl = rate.ThroughputAtMCS(mcs, PayloadBytes, n.Cfg.SampleRate)
	}
	return mm, bl, nil
}

// String prints throughput vs SNR for each AP count plus the 802.11 line.
func (r *Fig11Result) String() string {
	header := []string{"eff. SNR (dB)"}
	counts := map[int]bool{}
	var order []int
	for _, p := range r.Points {
		if !counts[p.APs] {
			counts[p.APs] = true
			order = append(order, p.APs)
		}
	}
	for _, n := range order {
		header = append(header, fmt.Sprintf("%d APs (Mb/s)", n))
	}
	header = append(header, "802.11 (Mb/s)")
	bySNR := map[units.Decibels][]string{}
	var snrs []units.Decibels
	for _, p := range r.Points {
		if _, ok := bySNR[p.LinkSNRdB]; !ok {
			snrs = append(snrs, p.LinkSNRdB)
			bySNR[p.LinkSNRdB] = make([]string, len(order)+1)
		}
		for i, n := range order {
			if p.APs == n {
				bySNR[p.LinkSNRdB][i] = fmt.Sprintf("%.1f", p.MegaMIMO/1e6)
			}
		}
		bySNR[p.LinkSNRdB][len(order)] = fmt.Sprintf("%.1f", p.Dot11/1e6)
	}
	var rows [][]string
	for _, s := range snrs {
		rows = append(rows, append([]string{fmt.Sprintf("%.1f", s)}, bySNR[s]...))
	}
	return "Fig 11 — Diversity throughput vs SNR\n" + Table(header, rows)
}
