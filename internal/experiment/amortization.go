package experiment

import (
	"fmt"

	"megamimo/internal/core"
	"megamimo/internal/phy"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// AmortizationPoint is one re-measurement cadence.
type AmortizationPoint struct {
	// PacketsPerMeasure is how many joint transmissions share one channel
	// measurement phase.
	PacketsPerMeasure int
	// OverheadFraction is measurement airtime / total airtime.
	OverheadFraction float64
	// ThroughputBps is delivered goodput over total airtime (measurement
	// included).
	ThroughputBps float64
}

// AmortizationResult quantifies §5's overhead claim: "a single channel
// measurement phase can be followed by multiple data transmissions",
// amortizing its cost over the channel coherence time (hundreds of
// milliseconds indoors ≈ hundreds of packets).
type AmortizationResult struct {
	Points []AmortizationPoint
}

// amortCell is one (period, draw) run; ok is false when no packet went out
// (the draw contributes nothing to the averages).
type amortCell struct {
	overhead, tput float64
	ok             bool
}

// RunAmortization measures total throughput when re-measuring every
// `period` packets, for each period, on a static channel. One engine cell
// runs one (period, draw) pair; the seed repeats across periods so every
// cadence is timed on the same channel draws.
func RunAmortization(periods []int, draws int, seed int64) (*AmortizationResult, error) {
	cells, err := MapNamed("amortization", len(periods)*draws, func(i int) (amortCell, error) {
		period := periods[i/draws]
		d := i % draws
		cfg := core.DefaultConfig(4, 4, 18, 24)
		cfg.Seed = seed + int64(d)*617
		cfg.WellConditioned = true
		n, err := core.New(cfg)
		if err != nil {
			return amortCell{}, err
		}
		var dataAir, msmtAir int64
		var bits float64
		const totalPackets = 16
		sent := 0
		var mcs int = -1
		for sent < totalPackets {
			before := n.Now()
			if err := n.Measure(); err != nil {
				return amortCell{}, err
			}
			// The cached precode path pays full inversions only on the
			// first pass; later re-measurements of this static channel are
			// rank-1 Sherman–Morrison updates.
			if _, err := n.Precode(cfg.NoiseVar); err != nil {
				return amortCell{}, err
			}
			msmtAir += n.Now() - before
			if mcs < 0 {
				m, ok, err := n.ProbeAndSelectRate(256)
				if err != nil {
					return amortCell{}, err
				}
				if !ok {
					break
				}
				mcs = int(m)
			}
			for k := 0; k < period && sent < totalPackets; k++ {
				payloads := make([][]byte, 4)
				for j := range payloads {
					payloads[j] = make([]byte, PayloadBytes)
				}
				r, err := n.JointTransmit(payloads, phy.MCS(mcs))
				if err != nil {
					return amortCell{}, err
				}
				dataAir += r.AirtimeSamples
				bits += r.GoodputBits()
				sent++
			}
		}
		total := dataAir + msmtAir
		if total == 0 {
			return amortCell{}, nil
		}
		return amortCell{
			overhead: float64(msmtAir) / float64(total),
			tput:     bits / units.Duration(units.Ticks(total), cfg.SampleRate),
			ok:       true,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AmortizationResult{}
	for p, period := range periods {
		var tputs, overheads []float64
		for d := 0; d < draws; d++ {
			c := cells[p*draws+d]
			if !c.ok {
				continue
			}
			overheads = append(overheads, c.overhead)
			tputs = append(tputs, c.tput)
		}
		res.Points = append(res.Points, AmortizationPoint{
			PacketsPerMeasure: period,
			OverheadFraction:  stats.Mean(overheads),
			ThroughputBps:     stats.Mean(tputs),
		})
	}
	return res, nil
}

// String renders the amortization table.
func (r *AmortizationResult) String() string {
	header := []string{"packets per measurement", "measurement overhead", "throughput (Mb/s)"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.PacketsPerMeasure),
			fmt.Sprintf("%.1f%%", 100*p.OverheadFraction),
			fmt.Sprintf("%.1f", p.ThroughputBps/1e6),
		})
	}
	return "Amortization — measurement overhead vs re-measurement cadence (§5)\n" + Table(header, rows)
}
