package experiment

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"megamimo/internal/checkpoint"
	"megamimo/internal/core"
	"megamimo/internal/fault"
	"megamimo/internal/metrics"
	"megamimo/internal/obs"
	psync "megamimo/internal/sync"
	"megamimo/internal/tracefmt"
	"megamimo/internal/traffic"
	"megamimo/internal/units"
)

// The game-day soak harness: one MegaMIMO cell under sustained heavy load
// and a seeded fault storm, run for a long horizon with periodic
// checkpoints. A killed run resumes from its latest checkpoint and the
// resumed trace/metrics tail is byte-identical to the uninterrupted run —
// at any -workers count, with the storm active across the boundary. The
// streaming sinks here are deliberately synchronous: every event is
// encoded and counted on the sim goroutine, so the logical stream
// position recorded in each checkpoint is exact.

// ErrInterrupted is the sentinel a StopAfterRounds soak run returns: the
// in-process stand-in for kill -9 that the resume tests use.
var ErrInterrupted = errors.New("experiment: soak interrupted")

// SoakConfig parameterizes RunSoak. The identity fields (everything that
// shapes the simulation itself, not where its artifacts land) are hashed
// into each checkpoint's config digest; a resume under a different
// identity is rejected.
type SoakConfig struct {
	APs, Clients     int
	SNRLoDB, SNRHiDB float64
	Seed             int64
	// Sync names the synchronization strategy (psync.Parse spelling;
	// empty = the paper's header scheme).
	Sync string
	// LoadMbps is the sustained per-client offered load.
	LoadMbps    float64
	PacketBytes int
	// Seconds is the simulated horizon.
	Seconds float64
	// FaultsPerSec, when > 0, schedules a fault.Scenario storm at that
	// expected event rate over the window.
	FaultsPerSec float64
	// SampleEvery is the metrics time-series cadence in service rounds.
	SampleEvery int
	// CheckpointEvery writes a checkpoint every N service rounds into
	// CheckpointDir (0 = no checkpointing).
	CheckpointEvery int
	CheckpointDir   string
	// Resume, when set, restores from this checkpoint file and runs the
	// remaining window instead of starting fresh.
	Resume string
	// TracePath/SeriesPath stream the flight recorder and the sampled
	// metrics series as JSONL. A resumed run writes only the tail (no
	// trace header): splicing it onto the uninterrupted file at the
	// checkpoint's recorded offset reproduces it byte-for-byte.
	TracePath  string
	SeriesPath string
	// DriftPPM, when nonzero, injects oscillator drift at DriftAtSeconds
	// into the run: lead −ppm, slave APs +ppm (2×ppm relative) — the
	// bisect drill's anomaly source.
	DriftPPM       float64
	DriftAtSeconds float64
	// Server, when set, receives trace events, sampled metrics, and
	// checkpoint publications for /healthz.
	Server *obs.Server
	// StopAfterRounds, when > 0, aborts the run with ErrInterrupted at
	// the first OnRound at or past that round (after any checkpoint due
	// there) — the resume tests' in-process interrupt.
	StopAfterRounds int
}

// withDefaults fills the zero-value identity fields so a CLI run and a
// test run with the same intent hash to the same digest.
func (c SoakConfig) withDefaults() SoakConfig {
	if c.APs <= 0 {
		c.APs = 4
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.SNRLoDB == 0 && c.SNRHiDB == 0 {
		c.SNRLoDB, c.SNRHiDB = 18, 24
	}
	if c.LoadMbps <= 0 {
		c.LoadMbps = 8
	}
	if c.PacketBytes <= 0 {
		c.PacketBytes = 1500
	}
	if c.Seconds <= 0 {
		c.Seconds = 0.25
	}
	return c
}

// soakIdentity is the digest-relevant subset of SoakConfig, marshaled
// canonically (fixed field order) for hashing and embedded in every
// checkpoint for mismatch diagnostics.
type soakIdentity struct {
	APs             int     `json:"aps"`
	Clients         int     `json:"clients"`
	SNRLoDB         float64 `json:"snr_lo_db"`
	SNRHiDB         float64 `json:"snr_hi_db"`
	Seed            int64   `json:"seed"`
	Sync            string  `json:"sync"`
	LoadMbps        float64 `json:"load_mbps"`
	PacketBytes     int     `json:"packet_bytes"`
	Seconds         float64 `json:"seconds"`
	FaultsPerSec    float64 `json:"faults_per_sec"`
	SampleEvery     int     `json:"sample_every"`
	CheckpointEvery int     `json:"checkpoint_every"`
	DriftPPM        float64 `json:"drift_ppm"`
	DriftAtSeconds  float64 `json:"drift_at_seconds"`
}

// IdentityJSON renders the canonical config JSON whose SHA-256 guards
// every checkpoint of this run.
func (c SoakConfig) IdentityJSON() ([]byte, error) {
	c = c.withDefaults()
	return json.Marshal(soakIdentity{
		APs: c.APs, Clients: c.Clients,
		SNRLoDB: c.SNRLoDB, SNRHiDB: c.SNRHiDB,
		Seed: c.Seed, Sync: c.Sync,
		LoadMbps: c.LoadMbps, PacketBytes: c.PacketBytes,
		Seconds: c.Seconds, FaultsPerSec: c.FaultsPerSec,
		SampleEvery: c.SampleEvery, CheckpointEvery: c.CheckpointEvery,
		DriftPPM: c.DriftPPM, DriftAtSeconds: c.DriftAtSeconds,
	})
}

// SoakResult reports one soak run.
type SoakResult struct {
	// Report is the closed-loop outcome (nil when interrupted).
	Report *traffic.Report
	// Checkpoints lists the checkpoint files this run wrote, in order.
	Checkpoints []string
	// TraceBytes/SeriesBytes are the final logical stream positions.
	TraceBytes, SeriesBytes uint64
	// Rounds is the service-round count at exit.
	Rounds int
	// Resumed reports whether the run restored from a checkpoint.
	Resumed bool
}

// countingTraceSink encodes and writes trace events synchronously,
// tracking the logical byte position of the stream. The position advances
// even if the disk write fails, so checkpoint contents stay a pure
// function of the simulation.
type countingTraceSink struct {
	bw  *bufio.Writer // nil = count only
	n   *uint64
	err error
}

func (s *countingTraceSink) ConsumeTrace(e core.TraceEvent) {
	line, err := tracefmt.MarshalEvent(e)
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	*s.n += uint64(len(line))
	if s.bw != nil && s.err == nil {
		if _, werr := s.bw.Write(line); werr != nil {
			s.err = werr
		}
	}
}

// RunSoak drives the game-day soak: build the cell, apply the load and
// the storm, checkpoint every CheckpointEvery rounds — or, with Resume
// set, rebuild identically, overwrite with the checkpointed state, and
// serve out the remaining window. Returns ErrInterrupted (with partial
// results) when StopAfterRounds fires.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	cfgJSON, err := cfg.IdentityJSON()
	if err != nil {
		return nil, err
	}
	var resumeSt *checkpoint.State
	if cfg.Resume != "" {
		if resumeSt, err = checkpoint.Read(cfg.Resume, cfgJSON); err != nil {
			return nil, err
		}
	}

	// Rebuild path — identical for fresh and resumed runs: everything a
	// checkpoint does not capture must come out of this path bit-for-bit.
	ccfg := core.DefaultConfig(cfg.APs, cfg.Clients, units.Decibels(cfg.SNRLoDB), units.Decibels(cfg.SNRHiDB))
	ccfg.Seed = cfg.Seed
	if ccfg.Sync, err = psync.Parse(cfg.Sync); err != nil {
		return nil, err
	}
	net, err := core.New(ccfg)
	if err != nil {
		return nil, err
	}
	net.Trace().Enable(1 << 20)
	if _, err := net.MeasureAndPrecode(); err != nil {
		return nil, err
	}
	start := net.Now()
	window := int64(units.TicksIn(cfg.Seconds, ccfg.SampleRate))
	var plan *fault.Plan
	if cfg.FaultsPerSec > 0 {
		plan = fault.Scenario{
			Seed: cfg.Seed, Start: start, Horizon: start + window,
			SampleRate: ccfg.SampleRate, NumAPs: cfg.APs,
			NumStreams: net.NumStreams(), Intensity: cfg.FaultsPerSec,
		}.Plan()
	}
	profiles := make([]traffic.Profile, net.NumStreams())
	for i := range profiles {
		profiles[i] = traffic.NewCBR(cfg.LoadMbps*1e6, cfg.PacketBytes)
	}
	sampler := metrics.NewSampler(net.Metrics())
	// Register the checkpoint counters before any sampling so both runs'
	// series carry them from the first point.
	mWrites := net.Metrics().Counter("checkpoint_writes_total")
	mBytes := net.Metrics().Counter("checkpoint_bytes_total")

	driftAt := start + int64(units.TicksIn(cfg.DriftAtSeconds, ccfg.SampleRate))
	applyDrift := func() {
		// Idempotent SET, replayed every round past the trigger: the
		// restored clock alone decides whether drift is in effect, so a
		// resume needs no extra "was it applied" flag.
		if cfg.DriftPPM == 0 || net.Now() < driftAt {
			return
		}
		lead := net.Lead().Index
		for _, ap := range net.APs {
			if ap.Index == lead {
				ap.Node.Osc.PPM = units.PPM(-cfg.DriftPPM)
			} else {
				ap.Node.Osc.PPM = units.PPM(cfg.DriftPPM)
			}
		}
	}

	res := &SoakResult{Resumed: resumeSt != nil}
	var traceN, seriesN uint64
	if resumeSt != nil {
		traceN, seriesN = resumeSt.TraceBytes, resumeSt.SeriesBytes
	}

	var eng *traffic.Engine
	tcfg := traffic.Config{
		System: traffic.SystemMegaMIMO, Profiles: profiles, Seed: cfg.Seed + 1,
		Faults: plan, Sampler: sampler, SampleEvery: cfg.SampleEvery,
		OnRound: func(rounds int) error {
			applyDrift()
			if cfg.CheckpointEvery > 0 && rounds%cfg.CheckpointEvery == 0 {
				st, err := checkpoint.Capture(net, eng, traceN, seriesN)
				if err != nil {
					return err
				}
				path := filepath.Join(cfg.CheckpointDir, fmt.Sprintf("soak-%08d.ckpt", rounds))
				nb, err := checkpoint.Write(path, cfgJSON, st)
				if err != nil {
					return err
				}
				mWrites.Inc()
				mBytes.Add(nb)
				res.Checkpoints = append(res.Checkpoints, path)
				if cfg.Server != nil {
					cfg.Server.PublishCheckpoint(path, net.Now())
				}
			}
			if cfg.StopAfterRounds > 0 && rounds >= cfg.StopAfterRounds {
				return ErrInterrupted
			}
			return nil
		},
	}
	if eng, err = traffic.New(net, tcfg); err != nil {
		return nil, err
	}

	if resumeSt != nil {
		// The probe inside Prepare replays deterministically; everything
		// it mutated is then overwritten from the checkpoint.
		if err := eng.Prepare(); err != nil {
			return nil, err
		}
		if err := resumeSt.Restore(net, eng); err != nil {
			return nil, err
		}
		// The restored registry predates the very write that produced the
		// checkpoint being resumed (captures happen before their own
		// write); account for it so the counters match the uninterrupted
		// run from the first resumed sample.
		fi, err := os.Stat(cfg.Resume)
		if err != nil {
			return nil, err
		}
		mWrites.Inc()
		mBytes.Add(fi.Size())
		if cfg.Server != nil {
			cfg.Server.PublishCheckpoint(cfg.Resume, resumeSt.Now)
		}
	}

	// Streaming surfaces attach only now, after any restore, so rebuild
	// events never leak into the resumed stream. A fresh run's trace file
	// opens with the format header; a resumed tail file carries none.
	meta := tracefmt.Meta{
		SampleRate: ccfg.SampleRate, CarrierHz: ccfg.CarrierHz,
		APs: cfg.APs, Clients: cfg.Clients, Sync: net.SyncName(),
	}
	ts := &countingTraceSink{n: &traceN}
	var traceFile, seriesFile *os.File
	var traceBW, seriesBW *bufio.Writer
	if cfg.TracePath != "" {
		if traceFile, err = os.Create(cfg.TracePath); err != nil {
			return nil, err
		}
		traceBW = bufio.NewWriter(traceFile)
		ts.bw = traceBW
	}
	if resumeSt == nil {
		line, err := tracefmt.MarshalHeader(meta)
		if err != nil {
			return nil, err
		}
		traceN += uint64(len(line))
		if traceBW != nil {
			if _, err := traceBW.Write(line); err != nil {
				return nil, err
			}
		}
	}
	if cfg.SeriesPath != "" {
		if seriesFile, err = os.Create(cfg.SeriesPath); err != nil {
			return nil, err
		}
		seriesBW = bufio.NewWriter(seriesFile)
	}
	sampler.OnSample = func(sm metrics.Sample) {
		line, err := metrics.MarshalSample(sm)
		if err != nil {
			return
		}
		seriesN += uint64(len(line))
		if seriesBW != nil {
			_, _ = seriesBW.Write(line)
		}
		if cfg.Server != nil {
			_ = cfg.Server.PublishMetrics(net.Metrics())
		}
	}
	sinks := []core.TraceSink{core.TraceSink(ts)}
	if cfg.Server != nil {
		sinks = append(sinks, cfg.Server)
	}
	net.Trace().SetSink(core.TeeSinks(sinks...))

	var rep *traffic.Report
	var runErr error
	if resumeSt != nil {
		rep, runErr = eng.ResumeRun()
	} else {
		rep, runErr = eng.Run(cfg.Seconds)
	}

	var closeErr error
	for _, bw := range []*bufio.Writer{traceBW, seriesBW} {
		if bw != nil {
			if err := bw.Flush(); err != nil && closeErr == nil {
				closeErr = err
			}
		}
	}
	for _, f := range []*os.File{traceFile, seriesFile} {
		if f != nil {
			if err := f.Close(); err != nil && closeErr == nil {
				closeErr = err
			}
		}
	}
	res.Report = rep
	res.TraceBytes, res.SeriesBytes = traceN, seriesN
	if rep != nil {
		res.Rounds = rep.Rounds
	}
	if runErr != nil {
		res.Report = nil
		return res, runErr
	}
	if ts.err != nil {
		return res, fmt.Errorf("soak: trace stream: %w", ts.err)
	}
	if closeErr != nil {
		return res, fmt.Errorf("soak: close streams: %w", closeErr)
	}
	return res, nil
}
