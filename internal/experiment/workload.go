package experiment

import (
	"fmt"

	"megamimo/internal/core"
	"megamimo/internal/stats"
	"megamimo/internal/tracefmt"
	"megamimo/internal/traffic"
)

// WorkloadPoint is one offered-load step of the demand sweep: delivered
// throughput, fairness and tail latency for both systems, medians across
// topologies.
type WorkloadPoint struct {
	// OfferedMbpsPerClient is the per-client demand at this step.
	OfferedMbpsPerClient float64
	// Delivered aggregate throughput (Mb/s), median across topologies.
	MegaMIMOMbps, BaselineMbps float64
	// Jain fairness over per-client delivered throughput.
	MegaMIMOFairness, BaselineFairness float64
	// Median p95 delivery latency (ms); NaN when nothing was delivered.
	MegaMIMOP95Ms, BaselineP95Ms float64
}

// WorkloadResult is the full offered-load vs delivered-throughput curve —
// the user-demand view of the paper's thesis: as demand grows past what
// one AP can carry, MegaMIMO keeps delivering while 802.11 saturates.
type WorkloadResult struct {
	NAPs    int
	Kind    traffic.Kind
	Seconds float64
	Points  []WorkloadPoint
}

// workloadCell is one (load, topology) run of both systems. trace holds
// the MegaMIMO network's flight-recorder events when tracing is on.
type workloadCell struct {
	mm, bl *traffic.Report
	trace  []core.TraceEvent
}

// runWorkloadCell builds two identically seeded networks over the same
// topology and drives each system's engine closed-loop for the window.
// traceLimit > 0 enables the MegaMIMO network's flight recorder with that
// ring size and returns its events; the baseline run is never traced (it
// has no joint rounds to record, and tracing it would double the volume
// without adding protocol telemetry).
func runWorkloadCell(nAPs int, kind traffic.Kind, loadBps float64, seconds float64, topoSeed, engSeed int64, traceLimit int, sink core.TraceSink) (workloadCell, error) {
	run := func(sys traffic.System) (*traffic.Report, []core.TraceEvent, error) {
		cfg := core.DefaultConfig(nAPs, nAPs, HighSNR.Lo, HighSNR.Hi)
		cfg.Seed = topoSeed
		cfg.WellConditioned = true
		n, err := core.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if traceLimit > 0 && sys == traffic.SystemMegaMIMO {
			if sink != nil {
				n.Trace().SetSink(sink)
			}
			n.Trace().Enable(traceLimit)
		}
		if _, err := n.MeasureAndPrecode(); err != nil {
			return nil, nil, err
		}
		profiles := make([]traffic.Profile, n.NumStreams())
		for i := range profiles {
			profiles[i] = traffic.ProfileFor(kind, loadBps, PayloadBytes)
		}
		eng, err := traffic.New(n, traffic.Config{
			System:   sys,
			Profiles: profiles,
			Seed:     engSeed,
		})
		if err != nil {
			return nil, nil, err
		}
		rep, err := eng.Run(seconds)
		if err != nil {
			return nil, nil, err
		}
		return rep, n.Trace().Events(), nil
	}
	mm, trace, err := run(traffic.SystemMegaMIMO)
	if err != nil {
		return workloadCell{}, err
	}
	bl, _, err := run(traffic.SystemTDMA)
	if err != nil {
		return workloadCell{}, err
	}
	return workloadCell{mm: mm, bl: bl, trace: trace}, nil
}

// RunWorkload sweeps per-client offered load and reports delivered
// throughput for MegaMIMO vs the 802.11 equal-share baseline, medians
// across random topologies. Cells run on the parallel engine; each cell's
// seeds depend only on its (load, topology) coordinates, so the result is
// byte-identical at any worker count.
func RunWorkload(loadsMbps []float64, nAPs, topologies int, kind traffic.Kind, seconds float64, seed int64) (*WorkloadResult, error) {
	res, _, err := RunWorkloadTrace(loadsMbps, nAPs, topologies, kind, seconds, seed, 0)
	return res, err
}

// RunWorkloadTrace is RunWorkload with the flight recorder on:
// traceLimit > 0 enables each cell's MegaMIMO tracer with that ring size
// and returns the merged trace. Cells record independently and the merge
// walks them in cell-index order (core.MergeTraces renumbers sequence
// numbers and offsets span IDs), so the returned trace — like the result —
// is byte-identical at any worker count.
func RunWorkloadTrace(loadsMbps []float64, nAPs, topologies int, kind traffic.Kind, seconds float64, seed int64, traceLimit int) (*WorkloadResult, []core.TraceEvent, error) {
	cells, err := MapNamed("workload", len(loadsMbps)*topologies, func(i int) (workloadCell, error) {
		loadIdx := i / topologies
		topo := i % topologies
		topoSeed := seed + int64(topo)*7919
		engSeed := seed + int64(loadIdx)*104729 + int64(topo)*7919
		return runWorkloadCell(nAPs, kind, loadsMbps[loadIdx]*1e6, seconds, topoSeed, engSeed, traceLimit, nil)
	})
	if err != nil {
		return nil, nil, err
	}
	var trace []core.TraceEvent
	if traceLimit > 0 {
		cellTraces := make([][]core.TraceEvent, len(cells))
		for i, c := range cells {
			cellTraces[i] = c.trace
		}
		trace = core.MergeTraces(cellTraces...)
	}
	return aggregateWorkload(cells, loadsMbps, topologies, nAPs, kind, seconds), trace, nil
}

// RunWorkloadStreamed is RunWorkloadTrace with the flight recorder
// streaming live: each cell's tracer feeds its lane of a StreamMerge and
// the merged, renumbered events reach `out` while cells are still
// running. The merge replays core.MergeTraces' ordering online, so for
// ring sizes that never overflow the streamed output is byte-identical
// to the buffered RunWorkloadTrace export at any worker count. Cells
// that finish out of order buffer inside the merge until the frontier
// reaches them; `out` itself is always driven by one call at a time.
func RunWorkloadStreamed(loadsMbps []float64, nAPs, topologies int, kind traffic.Kind, seconds float64, seed int64, traceLimit int, out core.TraceSink) (*WorkloadResult, error) {
	merge := tracefmt.NewStreamMerge(out, len(loadsMbps)*topologies)
	cells, err := MapNamed("workload", len(loadsMbps)*topologies, func(i int) (workloadCell, error) {
		// Close the lane even on error so the merge still drains.
		defer merge.CloseCell(i)
		loadIdx := i / topologies
		topo := i % topologies
		topoSeed := seed + int64(topo)*7919
		engSeed := seed + int64(loadIdx)*104729 + int64(topo)*7919
		return runWorkloadCell(nAPs, kind, loadsMbps[loadIdx]*1e6, seconds, topoSeed, engSeed, traceLimit, merge.Cell(i))
	})
	if err != nil {
		return nil, err
	}
	return aggregateWorkload(cells, loadsMbps, topologies, nAPs, kind, seconds), nil
}

// aggregateWorkload folds per-cell reports into the demand-sweep curve.
func aggregateWorkload(cells []workloadCell, loadsMbps []float64, topologies, nAPs int, kind traffic.Kind, seconds float64) *WorkloadResult {
	res := &WorkloadResult{NAPs: nAPs, Kind: kind, Seconds: seconds}
	for li, load := range loadsMbps {
		var mmT, blT, mmF, blF, mmL, blL []float64
		for topo := 0; topo < topologies; topo++ {
			c := cells[li*topologies+topo]
			mmT = append(mmT, c.mm.AggregateDeliveredBps/1e6)
			blT = append(blT, c.bl.AggregateDeliveredBps/1e6)
			mmF = append(mmF, c.mm.Fairness)
			blF = append(blF, c.bl.Fairness)
			mmL = append(mmL, maxP95(c.mm))
			blL = append(blL, maxP95(c.bl))
		}
		res.Points = append(res.Points, WorkloadPoint{
			OfferedMbpsPerClient: load,
			MegaMIMOMbps:         stats.Median(mmT),
			BaselineMbps:         stats.Median(blT),
			MegaMIMOFairness:     stats.Median(mmF),
			BaselineFairness:     stats.Median(blF),
			MegaMIMOP95Ms:        stats.Median(mmL),
			BaselineP95Ms:        stats.Median(blL),
		})
	}
	return res
}

// maxP95 returns the worst per-client p95 latency of a run (0 when no
// client delivered anything).
func maxP95(r *traffic.Report) float64 {
	var worst float64
	for _, c := range r.Clients {
		// NaN (nothing delivered) never compares greater, so it is
		// skipped naturally.
		if c.P95LatencyMs > worst {
			worst = c.P95LatencyMs
		}
	}
	return worst
}

// String renders the saturation table.
func (r *WorkloadResult) String() string {
	out := fmt.Sprintf("Demand sweep — %d APs, %s arrivals, %.3fs windows\n", r.NAPs, r.Kind, r.Seconds)
	header := []string{
		"offered/client (Mb/s)", "802.11 (Mb/s)", "MegaMIMO (Mb/s)", "gain",
		"fair 802.11", "fair MM", "p95 802.11 (ms)", "p95 MM (ms)",
	}
	var rows [][]string
	for _, p := range r.Points {
		gain := "-"
		if p.BaselineMbps > 0 {
			gain = fmt.Sprintf("%.1f x", p.MegaMIMOMbps/p.BaselineMbps)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.OfferedMbpsPerClient),
			fmt.Sprintf("%.2f", p.BaselineMbps),
			fmt.Sprintf("%.2f", p.MegaMIMOMbps),
			gain,
			fmt.Sprintf("%.3f", p.BaselineFairness),
			fmt.Sprintf("%.3f", p.MegaMIMOFairness),
			fmt.Sprintf("%.2f", p.BaselineP95Ms),
			fmt.Sprintf("%.2f", p.MegaMIMOP95Ms),
		})
	}
	return out + Table(header, rows)
}
