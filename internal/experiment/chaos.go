package experiment

import (
	"encoding/json"
	"fmt"

	"megamimo/internal/core"
	"megamimo/internal/fault"
	"megamimo/internal/stats"
	"megamimo/internal/traffic"
	"megamimo/internal/units"
)

// ChaosPoint is one fault-intensity step of the chaos sweep: delivery under
// a seeded fault schedule of that intensity for MegaMIMO vs the 802.11
// baseline, medians across topologies, plus the fault-path counters summed
// over the MegaMIMO cells.
type ChaosPoint struct {
	// IntensityPerSec is the expected injected faults per simulated second.
	IntensityPerSec float64
	// Delivered aggregate throughput (Mb/s), median across topologies.
	MegaMIMOMbps, BaselineMbps float64
	// DeliveredRate is delivered packets / offered packets (median).
	MegaMIMODeliveredRate, BaselineDeliveredRate float64
	// Jain fairness over per-client delivered throughput (median).
	MegaMIMOFairness, BaselineFairness float64
	// Fault-path counters from the MegaMIMO runs, summed across topologies.
	FaultsInjected, LeadFailovers, SyncAbstains, DegradedRounds, BackendDropped int64
}

// ChaosResult is the full fault-intensity sweep: how gracefully each system
// degrades as the same seeded fault schedule intensifies.
type ChaosResult struct {
	NAPs       int
	Topologies int
	Seconds    float64
	Seed       int64
	Points     []ChaosPoint
}

// JSON renders the result deterministically for the CI determinism gate.
func (r *ChaosResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// chaosCounters names the fault-path counters a chaos cell reports, in the
// order chaosCell.counters stores them.
var chaosCounters = []string{
	"fault_injected_total",
	"lead_failovers_total",
	"sync_abstain_total",
	"degraded_rounds_total",
	"backend_dropped_total",
}

// chaosCell is one (intensity, topology) run of both systems under the same
// fault plan.
type chaosCell struct {
	mm, bl   *traffic.Report
	counters [5]int64
	trace    []core.TraceEvent
}

// chaosLoadMbpsPerClient keeps every stream backlogged enough that a fault
// window always costs visible delivery, without saturating the fault-free
// baseline.
const chaosLoadMbpsPerClient = 6.0

// runChaosCell builds two identically seeded networks over one topology,
// materializes the fault schedule once, and replays it against each system.
func runChaosCell(nAPs int, intensity, seconds float64, topoSeed, engSeed, planSeed int64, traceLimit int) (chaosCell, error) {
	var cell chaosCell
	run := func(sys traffic.System) (*traffic.Report, *core.Network, error) {
		cfg := core.DefaultConfig(nAPs, nAPs, HighSNR.Lo, HighSNR.Hi)
		cfg.Seed = topoSeed
		cfg.WellConditioned = true
		n, err := core.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		if traceLimit > 0 && sys == traffic.SystemMegaMIMO {
			n.Trace().Enable(traceLimit)
		}
		if _, err := n.MeasureAndPrecode(); err != nil {
			return nil, nil, err
		}
		start := n.Now()
		plan := fault.Scenario{
			Seed:       planSeed,
			Start:      start,
			Horizon:    start + int64(units.TicksIn(seconds, n.Cfg.SampleRate)),
			SampleRate: n.Cfg.SampleRate,
			NumAPs:     nAPs,
			NumStreams: n.NumStreams(),
			Intensity:  intensity,
		}.Plan()
		profiles := make([]traffic.Profile, n.NumStreams())
		for i := range profiles {
			profiles[i] = traffic.NewCBR(chaosLoadMbpsPerClient*1e6, PayloadBytes)
		}
		eng, err := traffic.New(n, traffic.Config{
			System:   sys,
			Profiles: profiles,
			Seed:     engSeed,
			Faults:   plan,
		})
		if err != nil {
			return nil, nil, err
		}
		rep, err := eng.Run(seconds)
		if err != nil {
			return nil, nil, err
		}
		return rep, n, nil
	}
	mm, n, err := run(traffic.SystemMegaMIMO)
	if err != nil {
		return cell, err
	}
	cell.mm = mm
	cell.trace = n.Trace().Events()
	for i, name := range chaosCounters {
		cell.counters[i] = n.Metrics().Counter(name).Value()
	}
	if cell.bl, _, err = run(traffic.SystemTDMA); err != nil {
		return cell, err
	}
	return cell, nil
}

// RunChaos sweeps fault intensity and reports how each system degrades.
// Cells run on the parallel engine; every seed is a pure function of the
// cell's (intensity, topology) coordinates, and every in-cell random fault
// decision is a hash of the plan seed and a message identity, so the sweep
// is byte-identical at any worker count.
func RunChaos(intensities []float64, nAPs, topologies int, seconds float64, seed int64) (*ChaosResult, error) {
	res, _, err := RunChaosTrace(intensities, nAPs, topologies, seconds, seed, 0)
	return res, err
}

// RunChaosTrace is RunChaos with the flight recorder on: traceLimit > 0
// enables each cell's MegaMIMO tracer with that ring size and returns the
// merged trace (cells merge in index order, so it is worker-count
// independent like the result).
func RunChaosTrace(intensities []float64, nAPs, topologies int, seconds float64, seed int64, traceLimit int) (*ChaosResult, []core.TraceEvent, error) {
	cells, err := MapNamed("chaos", len(intensities)*topologies, func(i int) (chaosCell, error) {
		ii := i / topologies
		topo := i % topologies
		topoSeed := seed + int64(topo)*7919
		engSeed := seed + int64(ii)*104729 + int64(topo)*7919
		planSeed := seed + int64(ii)*15485863 + int64(topo)*7919 + 13
		return runChaosCell(nAPs, intensities[ii], seconds, topoSeed, engSeed, planSeed, traceLimit)
	})
	if err != nil {
		return nil, nil, err
	}
	var trace []core.TraceEvent
	if traceLimit > 0 {
		cellTraces := make([][]core.TraceEvent, len(cells))
		for i, c := range cells {
			cellTraces[i] = c.trace
		}
		trace = core.MergeTraces(cellTraces...)
	}
	res := &ChaosResult{NAPs: nAPs, Topologies: topologies, Seconds: seconds, Seed: seed}
	for ii, intensity := range intensities {
		var mmT, blT, mmR, blR, mmF, blF []float64
		p := ChaosPoint{IntensityPerSec: intensity}
		for topo := 0; topo < topologies; topo++ {
			c := cells[ii*topologies+topo]
			mmT = append(mmT, c.mm.AggregateDeliveredBps/1e6)
			blT = append(blT, c.bl.AggregateDeliveredBps/1e6)
			mmR = append(mmR, deliveredRate(c.mm))
			blR = append(blR, deliveredRate(c.bl))
			mmF = append(mmF, c.mm.Fairness)
			blF = append(blF, c.bl.Fairness)
			p.FaultsInjected += c.counters[0]
			p.LeadFailovers += c.counters[1]
			p.SyncAbstains += c.counters[2]
			p.DegradedRounds += c.counters[3]
			p.BackendDropped += c.counters[4]
		}
		p.MegaMIMOMbps = stats.Median(mmT)
		p.BaselineMbps = stats.Median(blT)
		p.MegaMIMODeliveredRate = stats.Median(mmR)
		p.BaselineDeliveredRate = stats.Median(blR)
		p.MegaMIMOFairness = stats.Median(mmF)
		p.BaselineFairness = stats.Median(blF)
		res.Points = append(res.Points, p)
	}
	return res, trace, nil
}

// deliveredRate is delivered packets over offered packets (1 when nothing
// was offered).
func deliveredRate(r *traffic.Report) float64 {
	var off, del int
	for _, c := range r.Clients {
		off += c.OfferedPackets
		del += c.DeliveredPackets
	}
	if off == 0 {
		return 1
	}
	return float64(del) / float64(off)
}

// String renders the degradation table.
func (r *ChaosResult) String() string {
	out := fmt.Sprintf("Chaos sweep — %d APs, %d topologies, %.3fs windows, seed %d\n",
		r.NAPs, r.Topologies, r.Seconds, r.Seed)
	header := []string{
		"faults/s", "802.11 (Mb/s)", "MegaMIMO (Mb/s)", "del 802.11", "del MM",
		"fair MM", "failovers", "abstains", "degraded", "bus drops",
	}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.IntensityPerSec),
			fmt.Sprintf("%.2f", p.BaselineMbps),
			fmt.Sprintf("%.2f", p.MegaMIMOMbps),
			fmt.Sprintf("%.3f", p.BaselineDeliveredRate),
			fmt.Sprintf("%.3f", p.MegaMIMODeliveredRate),
			fmt.Sprintf("%.3f", p.MegaMIMOFairness),
			fmt.Sprintf("%d", p.LeadFailovers),
			fmt.Sprintf("%d", p.SyncAbstains),
			fmt.Sprintf("%d", p.DegradedRounds),
			fmt.Sprintf("%d", p.BackendDropped),
		})
	}
	return out + Table(header, rows)
}
