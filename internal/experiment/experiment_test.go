package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestFig6MatchesPaperAnchor(t *testing.T) {
	r := RunFig6(100, 1)
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	// Paper: "a phase misalignment as small as 0.35 radians can cause an
	// SNR reduction of almost 8 dB at an SNR of 20 dB".
	var at035x20, at0x20, at035x10 float64
	for _, p := range r.Points {
		if math.Abs(p.MisalignmentRad-0.35) < 0.026 {
			if p.SNRdB == 20 {
				at035x20 = p.ReductionDB
			} else {
				at035x10 = p.ReductionDB
			}
		}
		if p.MisalignmentRad == 0 && p.SNRdB == 20 {
			at0x20 = p.ReductionDB
		}
	}
	if at035x20 < 5 || at035x20 > 11 {
		t.Fatalf("loss at 0.35 rad, 20 dB = %.1f dB (paper ≈8)", at035x20)
	}
	if math.Abs(at0x20) > 0.3 {
		t.Fatalf("loss at zero misalignment = %.2f dB", at0x20)
	}
	// Higher SNR suffers more from misalignment (paper's observation).
	if at035x20 <= at035x10 {
		t.Fatalf("20 dB loss %.1f not worse than 10 dB loss %.1f", at035x20, at035x10)
	}
	if !strings.Contains(r.String(), "Fig 6") {
		t.Fatal("String broken")
	}
}

func TestFig6Monotone(t *testing.T) {
	r := RunFig6(60, 2)
	prev := -1.0
	for _, p := range r.Points {
		if p.SNRdB != 20 {
			continue
		}
		if p.ReductionDB < prev-0.5 {
			t.Fatalf("loss not monotone at %.2f rad", p.MisalignmentRad)
		}
		prev = p.ReductionDB
	}
}

func TestFig7SmallScale(t *testing.T) {
	r, err := RunFig7(2, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DeviationsRad) != 22 {
		t.Fatalf("%d deviations", len(r.DeviationsRad))
	}
	if r.MedianRad > 0.05 {
		t.Fatalf("median misalignment %.4f rad (paper 0.017)", r.MedianRad)
	}
	if r.P95Rad > 0.15 {
		t.Fatalf("p95 misalignment %.4f rad (paper 0.05)", r.P95Rad)
	}
	if !strings.Contains(r.String(), "median") {
		t.Fatal("String broken")
	}
}

func TestFig8SmallScale(t *testing.T) {
	r, err := RunFig8(3, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 { // N ∈ {2,3} × 3 bins
		t.Fatalf("%d points", len(r.Points))
	}
	for _, p := range r.Points {
		// Paper: INR stays below ~1.5 dB; allow slack for the tiny sample.
		if p.INRdB > 4 {
			t.Fatalf("INR %.1f dB at N=%d %s", p.INRdB, p.Receivers, p.Bin)
		}
	}
	_ = r.SlopePerPair(HighSNR.Name)
	if !strings.Contains(r.String(), "Fig 8") {
		t.Fatal("String broken")
	}
}

func TestFig9SmallScaleShowsScaling(t *testing.T) {
	r, err := RunFig9([]int{2, 4}, 2, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range AllBins {
		var g2, g4, bl float64
		for _, p := range r.Points {
			if p.Bin != bin.Name {
				continue
			}
			if p.APs == 2 {
				g2 = p.MegaMIMObps
			}
			if p.APs == 4 {
				g4 = p.MegaMIMObps
				bl = p.Dot11bps
			}
		}
		if g4 <= g2 {
			t.Fatalf("%s: throughput did not scale (2 APs %.1f, 4 APs %.1f Mb/s)", bin.Name, g2/1e6, g4/1e6)
		}
		if bl <= 0 {
			t.Fatalf("%s: zero 802.11 baseline", bin.Name)
		}
		gain := g4 / bl
		if gain < 2 || gain > 5.5 {
			t.Fatalf("%s: 4-AP gain %.1fx outside plausible band", bin.Name, gain)
		}
	}
	f10 := Fig10From(r)
	if len(f10.Gains) == 0 || !strings.Contains(f10.String(), "Fig 10") {
		t.Fatal("Fig 10 derivation broken")
	}
}

func TestFig11DeadSpotRescue(t *testing.T) {
	r, err := RunFig11([]int{2, 8}, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	var mm8at0, bl, mm8at25 float64
	for _, p := range r.Points {
		if p.APs == 8 && p.LinkSNRdB == 0 {
			mm8at0, bl = p.MegaMIMO, p.Dot11
		}
		if p.APs == 8 && p.LinkSNRdB == 25 {
			mm8at25 = p.MegaMIMO
		}
	}
	if bl != 0 {
		t.Fatalf("802.11 at 0 dB delivers %.1f Mb/s", bl/1e6)
	}
	// Paper: 10 APs at 0 dB reach ≈21 Mb/s; 8 APs must reach well above 0.
	if mm8at0 < 5e6 {
		t.Fatalf("8-AP diversity at 0 dB only %.1f Mb/s", mm8at0/1e6)
	}
	if mm8at25 < mm8at0 {
		t.Fatal("diversity throughput decreased with SNR")
	}
	if !strings.Contains(r.String(), "Fig 11") {
		t.Fatal("String broken")
	}
}

func TestFig12And13SmallScale(t *testing.T) {
	r, err := RunFig12(2, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		if p.Dot11nBps <= 0 || p.MegaMIMOBps <= 0 {
			t.Fatalf("%s: degenerate throughputs %v %v", p.Bin, p.Dot11nBps, p.MegaMIMOBps)
		}
		// Paper observed 1.67–1.83 mean against a theoretical 2; our
		// simulated baseline lacks some of the testbed's real-world
		// advantages, so accept a band around 2.
		if p.MeanGain < 1.2 || p.MeanGain > 2.7 {
			t.Fatalf("%s: gain %.2fx outside plausible band", p.Bin, p.MeanGain)
		}
	}
	f13 := Fig13From(r)
	if len(f13.Gains) == 0 || !strings.Contains(f13.String(), "Fig 13") {
		t.Fatal("Fig 13 derivation broken")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestFig5TopologyRendering(t *testing.T) {
	r := RunFig5(1)
	if len(r.Topology.APs) != 10 || len(r.Topology.Clients) != 10 {
		t.Fatalf("topology %d/%d", len(r.Topology.APs), len(r.Topology.Clients))
	}
	out := r.String()
	if !strings.Contains(out, "Fig 5") || !strings.Contains(out, "A") || !strings.Contains(out, "c") {
		t.Fatalf("rendering broken:\n%s", out)
	}
}
