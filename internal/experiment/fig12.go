package experiment

import (
	"fmt"

	"megamimo/internal/baseline"
	"megamimo/internal/core"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// Fig12Point is one SNR bin's 802.11n-testbed comparison.
type Fig12Point struct {
	Bin         string
	Dot11nBps   float64
	MegaMIMOBps float64
	MeanGain    float64
}

// Fig12Result reproduces "Throughput achieved using MegaMIMO on
// off-the-shelf 802.11n cards" (§11.5): two 2-antenna APs jointly serve
// two 2-antenna clients (4 concurrent streams) against an 802.11n TDMA
// baseline, using the §6 reference-antenna channel-measurement trick.
type Fig12Result struct {
	Points []Fig12Point
	// Gains pools every run's total-throughput gain for Fig 13's CDF.
	Gains []float64
}

// fig12Cell is one measured placement; skipped marks a singular draw that
// contributes nothing to the bin's averages.
type fig12Cell struct {
	mm, bl  float64
	skipped bool
}

// RunFig12 runs `topologies` random placements per bin on the 20 MHz
// 802.11n configuration. Each placement is one engine cell seeded from its
// (bin, topology) coordinates.
func RunFig12(topologies, txRounds int, seed int64) (*Fig12Result, error) {
	cells, err := MapNamed("fig12-diversity", len(AllBins)*topologies, func(i int) (fig12Cell, error) {
		binIdx := i / topologies
		topo := i % topologies
		bin := AllBins[binIdx]
		cfg := core.DefaultConfig(2, 2, bin.Lo, bin.Hi)
		cfg.AntennasPerAP = 2
		cfg.AntennasPerClient = 2
		cfg.SampleRate = Dot11nSampleRate
		cfg.Seed = seed + int64(topo)*577 + int64(binIdx)*3
		cfg.WellConditioned = true
		// The Intel 5300 reports CSI in a signed fixed-point format.
		cfg.CSIQuantBits = 7
		n, err := core.New(cfg)
		if err != nil {
			return fig12Cell{}, err
		}
		// §6: off-the-shelf clients are measured with the
		// reference-antenna trick, not the interleaved packet.
		if err := n.MeasureDot11n(); err != nil {
			return fig12Cell{}, err
		}
		if _, err := n.Precode(cfg.NoiseVar); err != nil {
			return fig12Cell{skipped: true}, nil
		}

		// Baseline: each 2-antenna client served in turn by its
		// strongest AP with single-AP 2-stream beamforming.
		sap := &baseline.SingleAPMIMO{Net: n}
		bl, _, err := sap.Throughput(PayloadBytes)
		if err != nil {
			return fig12Cell{}, err
		}

		mcs, ok, err := n.ProbeAndSelectRate(256)
		if err != nil {
			return fig12Cell{}, err
		}
		var mm float64
		if ok {
			var airtime int64
			var bits float64
			for round := 0; round < txRounds; round++ {
				payloads := make([][]byte, 4)
				for j := range payloads {
					payloads[j] = make([]byte, PayloadBytes)
				}
				r, err := n.JointTransmit(payloads, mcs)
				if err != nil {
					return fig12Cell{}, err
				}
				airtime += r.AirtimeSamples
				bits += r.GoodputBits()
			}
			if airtime > 0 {
				mm = bits / units.Duration(units.Ticks(airtime), cfg.SampleRate)
			}
		}
		return fig12Cell{mm: mm, bl: bl}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{}
	for b, bin := range AllBins {
		var mms, bls, gains []float64
		for topo := 0; topo < topologies; topo++ {
			c := cells[b*topologies+topo]
			if c.skipped {
				continue
			}
			mms = append(mms, c.mm)
			bls = append(bls, c.bl)
			if c.bl > 0 {
				gains = append(gains, c.mm/c.bl)
			}
		}
		if len(mms) == 0 {
			continue
		}
		pt := Fig12Point{
			Bin:         bin.Name,
			Dot11nBps:   stats.Mean(bls),
			MegaMIMOBps: stats.Mean(mms),
		}
		if len(gains) > 0 {
			pt.MeanGain = stats.Mean(gains)
			res.Gains = append(res.Gains, gains...)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// String prints the grouped-bar data of Fig 12.
func (r *Fig12Result) String() string {
	header := []string{"SNR bin", "802.11n (Mb/s)", "MegaMIMO (Mb/s)", "mean gain"}
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Bin,
			fmt.Sprintf("%.1f", p.Dot11nBps/1e6),
			fmt.Sprintf("%.1f", p.MegaMIMOBps/1e6),
			fmt.Sprintf("%.2f x", p.MeanGain),
		})
	}
	return "Fig 12 — 802.11n testbed throughput (2x 2-antenna APs → 2x 2-antenna clients)\n" +
		Table(header, rows)
}

// Fig13Result is the CDF of the 802.11n throughput gain (§11.5's fairness
// check: 1.65–2× across all runs, median 1.8×).
type Fig13Result struct {
	Gains []float64
}

// Fig13From reuses the Fig 12 runs.
func Fig13From(r *Fig12Result) *Fig13Result { return &Fig13Result{Gains: r.Gains} }

// String prints the gain CDF summary.
func (r *Fig13Result) String() string {
	if len(r.Gains) == 0 {
		return "Fig 13 — no data"
	}
	c := stats.NewCDF(r.Gains)
	header := []string{"throughput gain", "fraction of runs"}
	var rows [][]string
	for _, pt := range c.Points(9) {
		rows = append(rows, []string{fmt.Sprintf("%.2f x", pt[0]), fmt.Sprintf("%.2f", pt[1])})
	}
	return fmt.Sprintf("Fig 13 — CDF of 802.11n throughput gain\nmedian %.2fx (paper: 1.8x), range %.2f-%.2fx (paper: 1.65-2x)\n%s",
		stats.Median(r.Gains), c.Quantile(0), c.Quantile(1), Table(header, rows))
}
