package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"megamimo/internal/tracefmt"
	"megamimo/internal/traffic"
)

// TestWorkloadStreamedByteIdentical is the streaming pipeline's core
// determinism property: the JSONL a live StreamSink receives through the
// StreamMerge — at one worker and at four — is byte-for-byte the file the
// buffered RunWorkloadTrace + WriteJSONL path would have written, and the
// sweep results agree too. Ring size is large enough that nothing
// overflows (overflow is the one legitimate divergence: the stream keeps
// everything, the ring only the tail).
func TestWorkloadStreamedByteIdentical(t *testing.T) {
	defer SetWorkers(0)
	loads := []float64{2, 6}
	const (
		nAPs, topos = 2, 2
		seconds     = 0.01
		seed        = 3
		limit       = 1 << 16
	)
	meta := tracefmt.Meta{
		SampleRate: 20e6, CarrierHz: 2.437e9,
		APs: nAPs, Clients: nAPs,
	}

	SetWorkers(1)
	wantRes, events, err := RunWorkloadTrace(loads, nAPs, topos, traffic.CBR, seconds, seed, limit)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("buffered workload trace is empty; fixture records nothing")
	}
	var want bytes.Buffer
	if err := tracefmt.WriteJSONL(&want, meta, events); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		SetWorkers(workers)
		var got bytes.Buffer
		sink, err := tracefmt.NewStreamSink(&got, meta, tracefmt.StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWorkloadStreamed(loads, nAPs, topos, traffic.CBR, seconds, seed, limit, sink)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := sink.Close(); err != nil {
			t.Fatalf("workers=%d close: %v", workers, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("workers=%d: streamed JSONL differs from buffered export (%d vs %d bytes)",
				workers, got.Len(), want.Len())
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("workers=%d: streamed sweep result differs from buffered", workers)
		}
	}
}
