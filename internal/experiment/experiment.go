// Package experiment reproduces every figure of the paper's evaluation
// (§11): each RunFigN function regenerates the corresponding plot's series
// from full protocol simulations and returns printable rows. The harness
// conventions follow §11's methodology — random topologies per point, SNR
// binned low (6–12 dB), medium (12–18 dB), high (>18 dB), 1500-byte
// packets, and medians across runs.
package experiment

import (
	"fmt"
	"strings"

	"megamimo/internal/core"
	"megamimo/internal/units"
)

// SNRBin is one of the paper's three evaluation bands.
type SNRBin struct {
	Name   string
	Lo, Hi units.Decibels
}

// The paper's bands (§11.1c): low 6–12 dB, medium 12–18 dB, high >18 dB.
var (
	LowSNR    = SNRBin{"Low SNR (6-12 dB)", 6, 12}
	MediumSNR = SNRBin{"Medium SNR (12-18 dB)", 12, 18}
	HighSNR   = SNRBin{"High SNR (>18 dB)", 18, 24}
	AllBins   = []SNRBin{HighSNR, MediumSNR, LowSNR}
)

// Defaults shared by the runners.
const (
	// PayloadBytes matches §10: "APs transmit 1500 byte packets".
	PayloadBytes = 1500
	// USRPSampleRate is the software-radio testbed's 10 MHz channel.
	USRPSampleRate = 10e6
	// Dot11nSampleRate is the 802.11n testbed's 20 MHz channel.
	Dot11nSampleRate = 20e6
)

// networkForBin builds a measured MegaMIMO network with clients inside the
// SNR bin. ZF regularization follows the MMSE rule (λ = noise), which
// recovers on Rayleigh-ish simulated channels the conditioning the paper's
// LOS-heavy conference room gave physically (see DESIGN.md §4).
func networkForBin(nAPs, nClients int, bin SNRBin, seed int64) (*core.Network, error) {
	cfg := core.DefaultConfig(nAPs, nClients, bin.Lo, bin.Hi)
	cfg.Seed = seed
	n, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := n.Measure(); err != nil {
		return nil, err
	}
	return n, nil
}

// Table renders aligned rows for terminal output.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
