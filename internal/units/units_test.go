package units

import (
	"math"
	"testing"
)

// close reports near-equality with a relative tolerance suited to
// round-tripped float64 arithmetic.
func closeTo(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*scale
}

func TestWrapRadians(t *testing.T) {
	cases := []struct{ in, want Radians }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{3 * math.Pi, math.Pi},
		{-3.5 * math.Pi, 0.5 * math.Pi},
		{7.25 * math.Pi, -0.75 * math.Pi},
	}
	for _, c := range cases {
		if got := WrapRadians(c.in); !closeTo(float64(got), float64(c.want)) {
			t.Errorf("WrapRadians(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, p := range []Radians{-100.3, -1, 0.5, 17.9, 1e4} {
		w := WrapRadians(p)
		if w <= -math.Pi || w > math.Pi {
			t.Errorf("WrapRadians(%v) = %v outside (-π, π]", p, w)
		}
	}
}

func TestPhaseAdvanceRoundTrip(t *testing.T) {
	w := RadPerSample(3.7e-4)
	dt := Samples(12345)
	phi := PhaseAdvance(w, dt)
	if got := RadiansOver(phi, dt); !closeTo(float64(got), float64(w)) {
		t.Errorf("RadiansOver(PhaseAdvance(w, dt), dt) = %v, want %v", got, w)
	}
}

func TestFrequencyConversionsRoundTrip(t *testing.T) {
	const (
		carrier = Hertz(2.437e9)
		rate    = Hertz(10e6)
	)
	ppm := PPM(13.25)
	off := FreqOffset(ppm, carrier)
	if want := 2.437e9 * 13.25e-6; !closeTo(float64(off), want) {
		t.Errorf("FreqOffset = %v, want %v", off, want)
	}
	w := HzToRadPerSample(off, rate)
	if got := RadPerSampleToHz(w, rate); !closeTo(float64(got), float64(off)) {
		t.Errorf("RadPerSampleToHz(HzToRadPerSample(off)) = %v, want %v", got, off)
	}
	if got := PPMToRadPerSample(ppm, carrier, rate); got != w {
		t.Errorf("PPMToRadPerSample = %v, want the FreqOffset∘HzToRadPerSample composition %v", got, w)
	}
	if got := RadPerSampleToPPM(w, carrier, rate); !closeTo(float64(got), float64(ppm)) {
		t.Errorf("RadPerSampleToPPM(PPMToRadPerSample(ppm)) = %v, want %v", got, ppm)
	}
}

// TestMandateConstants locks the paper's numeric gates: the π/18 phase
// budget is exactly 10°, and the ±40 ppm relative-CFO mandate is exactly
// twice the 802.11 per-oscillator tolerance. The trace anomaly gate
// (tracefmt.DefaultBudget) builds its thresholds from these identities;
// a drifted constant on either side breaks this test.
func TestMandateConstants(t *testing.T) {
	if got := RadiansToDegrees(math.Pi / 18); !closeTo(got, 10) {
		t.Errorf("π/18 rad = %v°, want 10°", got)
	}
	if got := DegreesToRadians(10); !closeTo(float64(got), math.Pi/18) {
		t.Errorf("10° = %v rad, want π/18", got)
	}
	if Dot11MaxPPM != 20 {
		t.Errorf("Dot11MaxPPM = %v, want the 802.11 ±20 ppm mandate", Dot11MaxPPM)
	}
	if rel := 2 * Dot11MaxPPM; rel != 40 {
		t.Errorf("worst-case relative CFO = %v ppm, want 40", rel)
	}
	// At the default 2.437 GHz carrier and 10 MS/s, 40 ppm must survive a
	// rad/sample round trip: this is the exact conversion chain the
	// anomaly detector applies to traced CFO estimates.
	w := PPMToRadPerSample(2*Dot11MaxPPM, 2.437e9, 10e6)
	if got := RadPerSampleToPPM(w, 2.437e9, 10e6); !closeTo(float64(got), 40) {
		t.Errorf("40 ppm → rad/sample → ppm = %v, want 40", got)
	}
}

func TestDecibels(t *testing.T) {
	for _, db := range []Decibels{-30, -3, 0, 3, 10, 25.5} {
		lin := DBToLinear(db)
		if got := LinearToDB(lin); !closeTo(float64(got), float64(db)) {
			t.Errorf("LinearToDB(DBToLinear(%v)) = %v", db, got)
		}
	}
	if got := DBToLinear(10); !closeTo(got, 10) {
		t.Errorf("DBToLinear(10) = %v, want 10", got)
	}
	if got := LinearToDB(100); !closeTo(float64(got), 20) {
		t.Errorf("LinearToDB(100) = %v, want 20", got)
	}
}

func TestSFORatio(t *testing.T) {
	if got := SFORatio(20); !closeTo(got, 1.00002) {
		t.Errorf("SFORatio(20) = %v, want 1.00002", got)
	}
	if got := SFORatio(-20); !closeTo(got, 0.99998) {
		t.Errorf("SFORatio(-20) = %v, want 0.99998", got)
	}
}

func TestDurationTicks(t *testing.T) {
	if got := Duration(10_000_000, 10e6); got != 1 {
		t.Errorf("Duration(1e7 ticks @ 10 MHz) = %v s, want 1", got)
	}
	if got := TicksIn(0.01, 10e6); got != 100_000 {
		t.Errorf("TicksIn(0.01 s @ 10 MHz) = %v, want 100000", got)
	}
	// Truncation, not rounding: matches the int64 casts it replaced.
	if got := TicksIn(0.99999999e-6, 10e6); got != 9 {
		t.Errorf("TicksIn truncates: got %v, want 9", got)
	}
}

func TestGenericHelpers(t *testing.T) {
	if got := Abs(Radians(-0.5)); got != 0.5 {
		t.Errorf("Abs = %v", got)
	}
	if got := Scale(Decibels(3), 2); got != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := Div(Radians(1), 4); got != 0.25 {
		t.Errorf("Div = %v", got)
	}
	if got := Ratio(Meters(6), Meters(4)); got != 1.5 {
		t.Errorf("Ratio = %v", got)
	}
}
