// Package units defines the dimension types the signal path carries —
// phases, frequencies, oscillator errors, powers and geometry — and the
// only sanctioned conversions between them.
//
// JMB's correctness hangs on numeric invariants with physical dimensions:
// the π/18 phase-error budget, the ±40 ppm relative-CFO mandate, the
// 2π·Δf/Fs conversion between a frequency offset and a per-sample phase
// step. Carried as bare float64 those invariants are one missed factor
// away from silently corrupting joint transmission. Each quantity is
// therefore a defined type: the compiler rejects mixed-dimension
// arithmetic outright, and the `units` lint analyzer rejects what the
// compiler cannot see — cross-dimension conversions that bypass the
// functions below, float64 casts that strip a dimension, and new
// unit-named identifiers declared as bare float64.
//
// Contract: this package is the only place allowed to strip a dimension
// type to float64. Every function here documents its formula; the
// formulas are locked by round-trip tests so refactors cannot drift the
// constants. Elsewhere, a cast to float64 needs a `//lint:ignore units
// <reason>` escape, legal only at serialization boundaries (see DESIGN.md
// §10).
package units

import "math"

// Radians is an angle or phase.
type Radians float64

// RadPerSample is a phase step per ether sample — the discrete-time form
// of a frequency offset (ω = 2π·Δf/Fs).
type RadPerSample float64

// Hertz is a frequency or rate in cycles per second.
type Hertz float64

// PPM is a relative frequency error in parts per million, the natural
// unit of crystal tolerance (802.11 mandates ±20 ppm per oscillator).
type PPM float64

// Decibels is a logarithmic power ratio (10·log₁₀ of a linear ratio).
// dB and dBm values share the type: adding a gain in dB to a power in
// dBm is dimensionally sound, multiplying two of them is not.
type Decibels float64

// Samples is a (possibly fractional) duration measured in ether samples.
type Samples float64

// Ticks is a discrete ether-clock sample count — timestamps and integer
// durations on the simulation clock.
type Ticks int64

// Meters is a distance.
type Meters float64

// Dot11MaxPPM is the per-oscillator crystal tolerance 802.11 mandates.
// The relative CFO between two compliant nodes is at most twice this;
// the trace anomaly gate's default MaxRelPPM derives from it.
const Dot11MaxPPM PPM = 20

// WrapRadians wraps an angle into (-π, π].
func WrapRadians(p Radians) Radians {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// PhaseAdvance returns the phase a rotation of w accumulates over dt
// samples: θ = ω·Δt.
func PhaseAdvance(w RadPerSample, dt Samples) Radians {
	return Radians(float64(w) * float64(dt))
}

// RadiansOver is the inverse of PhaseAdvance: the per-sample rate that
// accumulates phi over dt samples.
func RadiansOver(phi Radians, dt Samples) RadPerSample {
	return RadPerSample(float64(phi) / float64(dt))
}

// FreqOffset returns the absolute carrier offset a crystal error of ppm
// produces at the given carrier: Δf = f_c·ppm·10⁻⁶.
func FreqOffset(ppm PPM, carrier Hertz) Hertz {
	return Hertz(float64(carrier) * float64(ppm) * 1e-6)
}

// HzToRadPerSample converts a frequency offset to a per-sample phase
// step at the given sample rate: ω = 2π·Δf/Fs.
func HzToRadPerSample(off, rate Hertz) RadPerSample {
	return RadPerSample(2 * math.Pi * float64(off) / float64(rate))
}

// RadPerSampleToHz is the inverse of HzToRadPerSample: Δf = ω·Fs/2π.
func RadPerSampleToHz(w RadPerSample, rate Hertz) Hertz {
	return Hertz(float64(w) * float64(rate) / (2 * math.Pi))
}

// PPMToRadPerSample composes FreqOffset and HzToRadPerSample:
// ω = 2π·(f_c·ppm·10⁻⁶)/Fs.
func PPMToRadPerSample(ppm PPM, carrier, rate Hertz) RadPerSample {
	return HzToRadPerSample(FreqOffset(ppm, carrier), rate)
}

// RadPerSampleToPPM expresses a per-sample phase step as a relative
// carrier error: ppm = ω·Fs/2π/f_c·10⁶. The formula (and its evaluation
// order) matches the trace anomaly gate's historical computation exactly.
func RadPerSampleToPPM(w RadPerSample, carrier, rate Hertz) PPM {
	return PPM(float64(w) * float64(rate) / (2 * math.Pi) / float64(carrier) * 1e6)
}

// SFORatio returns the sample-clock ratio actual/nominal for a crystal
// error of ppm: 1 + ppm·10⁻⁶. CFO and SFO derive from the same crystal.
func SFORatio(ppm PPM) float64 { return 1 + float64(ppm)*1e-6 }

// DBToLinear converts decibels to a linear power ratio: 10^(dB/10).
func DBToLinear(db Decibels) float64 { return math.Pow(10, float64(db)/10) }

// LinearToDB converts a linear power ratio to decibels: 10·log₁₀(x).
func LinearToDB(linear float64) Decibels { return Decibels(10 * math.Log10(linear)) }

// DegreesToRadians converts an angle in degrees: θ = deg·π/180.
func DegreesToRadians(deg float64) Radians { return Radians(deg * math.Pi / 180) }

// RadiansToDegrees is the inverse of DegreesToRadians.
func RadiansToDegrees(r Radians) float64 { return float64(r) * 180 / math.Pi }

// Duration converts an ether-sample count to seconds at the given rate.
func Duration(n Ticks, rate Hertz) float64 { return float64(n) / float64(rate) }

// TicksIn returns the whole ether samples in the given duration
// (truncating, like the int64 conversion it replaces).
func TicksIn(seconds float64, rate Hertz) Ticks {
	return Ticks(seconds * float64(rate))
}

// Abs returns the absolute value of a dimensioned quantity.
func Abs[T ~float64](x T) T { return T(math.Abs(float64(x))) }

// Scale multiplies a dimensioned quantity by a dimensionless factor.
func Scale[T ~float64](x T, k float64) T { return T(float64(x) * k) }

// Div divides a dimensioned quantity by a dimensionless factor.
func Div[T ~float64](x T, k float64) T { return T(float64(x) / k) }

// Ratio returns the dimensionless ratio of two same-dimension
// quantities. It accepts the integer tick types too, so durations compare
// without a bare float64 cast.
func Ratio[T ~float64 | ~int64](num, den T) float64 { return float64(num) / float64(den) }
