package fault

import (
	"reflect"
	"testing"

	"megamimo/internal/backend"
	"megamimo/internal/core"
)

func testScenario(seed int64) Scenario {
	return Scenario{
		Seed:       seed,
		Start:      10_000,
		Horizon:    510_000,
		SampleRate: 10e6,
		NumAPs:     4,
		NumStreams: 4,
		Intensity:  10e6 * 40 / 500_000, // 40 events over the window
	}
}

func TestScenarioPlanDeterministic(t *testing.T) {
	a := testScenario(42).Plan()
	b := testScenario(42).Plan()
	if len(a.Events) == 0 {
		t.Fatal("scenario produced no events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	c := testScenario(43).Plan()
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestScenarioPlanWellFormed(t *testing.T) {
	s := testScenario(7)
	p := s.Plan()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	window := s.Horizon - s.Start
	lastAt := s.Start + (window*6)/10
	lastEnd := s.Start + (window*8)/10
	for i, e := range p.Events {
		if e.At < s.Start || e.At > lastAt {
			t.Fatalf("event %d fires at %d, outside [%d, %d]", i, e.At, s.Start, lastAt)
		}
		if e.Until > lastEnd {
			t.Fatalf("event %d effect runs to %d, past the 80%% cutoff %d", i, e.Until, lastEnd)
		}
		if i > 0 && e.At < p.Events[i-1].At {
			t.Fatalf("events not sorted: %d then %d", p.Events[i-1].At, e.At)
		}
	}
}

func TestPlanValidateRejectsMalformed(t *testing.T) {
	p := &Plan{Events: []Event{{At: 10, Kind: Kind(99)}}}
	if p.Validate() == nil {
		t.Fatal("invalid kind accepted")
	}
	p = &Plan{Events: []Event{{At: 10, Until: 5, Kind: KindBackendDrop}}}
	if p.Validate() == nil {
		t.Fatal("until before at accepted")
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k.Valid(); k++ {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).Valid() {
		t.Fatal("kind 99 claims to be valid")
	}
	if Kind(99).String() != "fault.Kind(99)" {
		t.Fatalf("invalid kind string: %q", Kind(99).String())
	}
}

func TestPolicyDropDeterministicAndCalibrated(t *testing.T) {
	p := NewPolicy(11)
	p.SetDrop(0.3, 1_000_000)
	drops := 0
	const trials = 4000
	for seq := uint64(0); seq < trials; seq++ {
		m := backend.Message{Seq: seq, SentAt: 100}
		drop1, _ := p.Deliver(m)
		drop2, _ := p.Deliver(m)
		if drop1 != drop2 {
			t.Fatalf("seq %d: drop decision not deterministic", seq)
		}
		if drop1 {
			drops++
		}
	}
	rate := float64(drops) / trials
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("drop rate %.3f, want ~0.30", rate)
	}
	// Outside the window nothing drops.
	if drop, _ := p.Deliver(backend.Message{Seq: 1, SentAt: 1_000_000}); drop {
		t.Fatal("dropped outside the window")
	}
}

func TestPolicyDelayAndJitter(t *testing.T) {
	p := NewPolicy(5)
	p.SetDelay(200, 1000)
	p.SetJitter(100, 1000)
	m := backend.Message{Seq: 77, SentAt: 500}
	_, d1 := p.Deliver(m)
	_, d2 := p.Deliver(m)
	if d1 != d2 {
		t.Fatal("delay not deterministic")
	}
	if d1 < 200 || d1 > 300 {
		t.Fatalf("extra delay %d, want in [200, 300]", d1)
	}
	if _, d := p.Deliver(backend.Message{Seq: 77, SentAt: 2000}); d != 0 {
		t.Fatalf("delay %d outside the window", d)
	}
}

func TestPolicyIsolation(t *testing.T) {
	p := NewPolicy(9)
	p.Isolate(2, 1000)
	if drop, _ := p.Deliver(backend.Message{From: 2, To: 0, SentAt: 500}); !drop {
		t.Fatal("outbound traffic from isolated node delivered")
	}
	if drop, _ := p.Deliver(backend.Message{From: 0, To: 2, SentAt: 500}); !drop {
		t.Fatal("inbound traffic to isolated node delivered")
	}
	if drop, _ := p.Deliver(backend.Message{From: 0, To: 1, SentAt: 500}); drop {
		t.Fatal("bystander traffic dropped")
	}
	if drop, _ := p.Deliver(backend.Message{From: 2, To: 0, SentAt: 1500}); drop {
		t.Fatal("isolation outlived its window")
	}
	// A shorter overlapping isolation must not shrink the window.
	p.Isolate(2, 800)
	if drop, _ := p.Deliver(backend.Message{From: 2, To: 0, SentAt: 900}); !drop {
		t.Fatal("re-isolation shrank the window")
	}
}

func testNet(t *testing.T, nAPs int) *core.Network {
	t.Helper()
	cfg := core.DefaultConfig(nAPs, nAPs, 18, 24)
	cfg.Seed = 31
	n, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInjectorCrashAndAutoRestart(t *testing.T) {
	n := testNet(t, 3)
	plan := &Plan{Seed: 1, Events: []Event{
		{At: 100, Kind: KindAPCrash, AP: 2, Until: 500},
	}}
	in := NewInjector(n, plan)
	if fired := in.Apply(50); len(fired) != 0 {
		t.Fatalf("events fired early: %v", fired)
	}
	fired := in.Apply(100)
	if len(fired) != 1 || fired[0].Kind != KindAPCrash {
		t.Fatalf("crash did not fire: %v", fired)
	}
	if n.APLive(2) {
		t.Fatal("AP 2 still live after crash")
	}
	if at, ok := in.NextAt(); !ok || at != 500 {
		t.Fatalf("restart not scheduled: at=%d ok=%v", at, ok)
	}
	fired = in.Apply(600)
	if len(fired) != 1 || fired[0].Kind != KindAPRestart {
		t.Fatalf("restart did not fire: %v", fired)
	}
	if !n.APLive(2) {
		t.Fatal("AP 2 still down after scheduled restart")
	}
	if got := n.Metrics().Counter("fault_injected_total").Value(); got != 2 {
		t.Fatalf("fault_injected_total = %d, want 2", got)
	}
}

func TestInjectorLeadFailover(t *testing.T) {
	n := testNet(t, 3)
	in := NewInjector(n, &Plan{Seed: 1, Events: []Event{
		{At: 10, Kind: KindLeadFail},
	}})
	if n.Lead().Index != 0 {
		t.Fatal("unexpected initial lead")
	}
	if fired := in.Apply(10); len(fired) != 1 {
		t.Fatalf("lead-fail did not fire: %v", fired)
	}
	if n.APLive(0) {
		t.Fatal("old lead still live")
	}
	if n.Lead().Index != 1 {
		t.Fatalf("re-elected lead %d, want lowest live index 1", n.Lead().Index)
	}
	if got := n.Metrics().Counter("lead_failovers_total").Value(); got != 1 {
		t.Fatalf("lead_failovers_total = %d, want 1", got)
	}
}

func TestInjectorRefusesLastLiveAP(t *testing.T) {
	n := testNet(t, 2)
	in := NewInjector(n, &Plan{Seed: 1, Events: []Event{
		{At: 10, Kind: KindAPCrash, AP: 0},
		{At: 20, Kind: KindAPCrash, AP: 1},
	}})
	fired := in.Apply(50)
	if len(fired) != 1 || fired[0].AP != 0 {
		t.Fatalf("fired %v, want only the first crash", fired)
	}
	if !n.APLive(1) {
		t.Fatal("last live AP went down")
	}
}

func TestInjectorClientChurn(t *testing.T) {
	n := testNet(t, 2)
	in := NewInjector(n, &Plan{Seed: 1, Events: []Event{
		{At: 10, Kind: KindClientLeave, Stream: 1, Until: 40},
	}})
	fired := in.Apply(10)
	if len(fired) != 1 || fired[0].Kind != KindClientLeave {
		t.Fatalf("leave did not fire: %v", fired)
	}
	if at, ok := in.NextAt(); !ok || at != 40 {
		t.Fatalf("rejoin not scheduled: at=%d ok=%v", at, ok)
	}
	fired = in.Apply(40)
	if len(fired) != 1 || fired[0].Kind != KindClientJoin || fired[0].Stream != 1 {
		t.Fatalf("rejoin wrong: %v", fired)
	}
}

func TestInjectorBackendFaultsConfigureBus(t *testing.T) {
	n := testNet(t, 2)
	in := NewInjector(n, &Plan{Seed: 3, Events: []Event{
		{At: 0, Kind: KindBackendDrop, Param: 1.0, Until: 1000},
	}})
	in.Apply(0)
	// With drop probability 1, every backhaul message inside the window is
	// lost and counted.
	n.Bus.Send(0, 1, 100, "x")
	if got := n.Metrics().Counter("backend_dropped_total").Value(); got != 1 {
		t.Fatalf("backend_dropped_total = %d, want 1", got)
	}
}
