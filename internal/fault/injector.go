package fault

import (
	"megamimo/internal/core"
	"megamimo/internal/metrics"
	"megamimo/internal/units"
)

// Injector applies a Plan to a live network as the ether clock advances.
// It owns the bus fault policy, fires each plan event when its time comes,
// and auto-schedules recoveries (restart after a crash with Until set,
// rejoin after a leave). Network-level events (crash, restart, sync
// corruption) apply through core, which emits the fault/recovery trace
// events and failover metrics; backend and churn events are traced here.
// Churn events are also returned from Apply so the traffic engine can
// update its per-stream state.
type Injector struct {
	net    *core.Network
	policy *Policy
	events []Event // plan events, sorted by At
	next   int
	queued []Event // runtime-scheduled recoveries, sorted by At
	mInj   *metrics.Counter
}

// NewInjector wires a plan onto the network: the bus gets the plan's fault
// policy, and the injector is ready to Apply events as time advances.
func NewInjector(n *core.Network, plan *Plan) *Injector {
	evs := append([]Event(nil), plan.Events...)
	in := &Injector{
		net:    n,
		policy: NewPolicy(plan.Seed),
		events: evs,
		mInj:   n.Metrics().Counter("fault_injected_total"),
	}
	p := &Plan{Seed: plan.Seed, Events: in.events}
	p.Sort()
	n.Bus.SetFaultPolicy(in.policy)
	return in
}

// NextAt returns the firing time of the next pending event, if any. The
// traffic engine uses it to bound idle time-skips so faults and
// recoveries never fire late.
func (in *Injector) NextAt() (int64, bool) {
	at := int64(0)
	ok := false
	if in.next < len(in.events) {
		at, ok = in.events[in.next].At, true
	}
	if len(in.queued) > 0 && (!ok || in.queued[0].At < at) {
		at, ok = in.queued[0].At, true
	}
	return at, ok
}

// Apply fires every event due at or before now, in time order (plan events
// win ties against scheduled recoveries), and returns the events that took
// effect. Events that cannot apply — crashing the last live AP, restarting
// a live AP — are skipped, never fatal.
func (in *Injector) Apply(now int64) []Event {
	var fired []Event
	for {
		ev, ok := in.pop(now)
		if !ok {
			return fired
		}
		if in.apply(ev) {
			in.mInj.Inc()
			fired = append(fired, ev)
		}
	}
}

// pop removes and returns the earliest event due by now.
func (in *Injector) pop(now int64) (Event, bool) {
	havePlan := in.next < len(in.events) && in.events[in.next].At <= now
	haveQ := len(in.queued) > 0 && in.queued[0].At <= now
	switch {
	case havePlan && (!haveQ || in.events[in.next].At <= in.queued[0].At):
		ev := in.events[in.next]
		in.next++
		return ev, true
	case haveQ:
		ev := in.queued[0]
		in.queued = in.queued[1:]
		return ev, true
	}
	return Event{}, false
}

// schedule inserts a runtime recovery event, keeping queued sorted by At
// with insertion order as the tie-break.
func (in *Injector) schedule(ev Event) {
	i := len(in.queued)
	for i > 0 && in.queued[i-1].At > ev.At {
		i--
	}
	in.queued = append(in.queued, Event{})
	copy(in.queued[i+1:], in.queued[i:])
	in.queued[i] = ev
}

// apply executes one event, reporting whether it took effect.
func (in *Injector) apply(ev Event) bool {
	n := in.net
	switch ev.Kind {
	case KindAPCrash:
		return in.crash(ev.AP, ev.Until)
	case KindLeadFail:
		return in.crash(n.Lead().Index, ev.Until)
	case KindAPRestart:
		return n.RestartAP(ev.AP) == nil
	case KindBackendDrop:
		in.policy.SetDrop(ev.Param, ev.Until)
		in.traceFault(ev)
	case KindBackendDelay:
		in.policy.SetDelay(units.Ticks(ev.Param), ev.Until)
		in.traceFault(ev)
	case KindBackendJitter:
		in.policy.SetJitter(units.Ticks(ev.Param), ev.Until)
		in.traceFault(ev)
	case KindBackendPartition:
		in.policy.Isolate(ev.AP, ev.Until)
		in.traceFault(ev)
	case KindSyncCorrupt:
		return n.CorruptSync(ev.AP, ev.Until) == nil
	case KindClientLeave:
		if ev.Until > 0 {
			in.schedule(Event{At: ev.Until, Kind: KindClientJoin, Stream: ev.Stream})
		}
		in.traceFault(ev)
	case KindClientJoin:
		n.Trace().Emit(ev.At, core.KindRecovery, core.TraceAttrs{Stream: ev.Stream, Cause: ev.Kind.String()},
			"client stream %d rejoined", ev.Stream)
	}
	return true
}

// crash takes an AP down and schedules its restart when the event carries
// an outage window. Crashing the last live AP is refused by core and
// skipped here.
func (in *Injector) crash(ap int, until int64) bool {
	if err := in.net.CrashAP(ap); err != nil {
		return false
	}
	if until > 0 {
		in.schedule(Event{At: until, Kind: KindAPRestart, AP: ap})
	}
	return true
}

// traceFault records a backend/churn fault event (network-level faults are
// traced inside core where the state change happens).
func (in *Injector) traceFault(ev Event) {
	in.net.Trace().Emit(ev.At, core.KindFault, core.TraceAttrs{AP: ev.AP, Stream: ev.Stream, Cause: ev.Kind.String()},
		"injected %s", ev)
}
