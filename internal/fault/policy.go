package fault

import (
	"megamimo/internal/backend"
	"megamimo/internal/units"
)

// Policy is the backend.FaultPolicy the injector installs on the bus. All
// state is windowed — a drop probability, a fixed extra delay, a jitter
// bound and a set of isolated nodes, each active while the message's
// SentAt is inside the window — and every per-message random decision is a
// splitmix64 hash of (plan seed, message Seq, decision tag). Hashing
// instead of drawing from a stream makes the decision a pure function of
// the message: the bus can deliver to nodes in any order, experiment
// workers can run any interleaving, and the same message always meets the
// same fate.
type Policy struct {
	seed    uint64
	dropP   float64
	dropTil int64
	delayN  units.Ticks
	delTil  int64
	jitterN units.Ticks
	jitTil  int64
	// isolated maps bus node ID -> isolation end time. Lookups only;
	// never ranged (map order must not matter anywhere in the fault path).
	isolated map[int]int64
}

// NewPolicy returns an inert policy keyed by the plan seed.
func NewPolicy(seed int64) *Policy {
	return &Policy{seed: uint64(seed), isolated: make(map[int]int64)}
}

// SetDrop makes the bus drop each message with probability p while
// SentAt < until.
func (p *Policy) SetDrop(prob float64, until int64) { p.dropP, p.dropTil = prob, until }

// SetDelay adds a fixed extra delivery delay while SentAt < until.
func (p *Policy) SetDelay(samples units.Ticks, until int64) { p.delayN, p.delTil = samples, until }

// SetJitter adds a per-message uniform delay in [0, samples] while
// SentAt < until.
func (p *Policy) SetJitter(samples units.Ticks, until int64) { p.jitterN, p.jitTil = samples, until }

// Isolate partitions a bus node: every message to or from it sent before
// until is dropped.
func (p *Policy) Isolate(node int, until int64) {
	if until > p.isolated[node] {
		p.isolated[node] = until
	}
}

// Deliver implements backend.FaultPolicy.
func (p *Policy) Deliver(m backend.Message) (bool, int64) {
	if u, ok := p.isolated[m.From]; ok && m.SentAt < u {
		return true, 0
	}
	if u, ok := p.isolated[m.To]; ok && m.SentAt < u {
		return true, 0
	}
	if p.dropP > 0 && m.SentAt < p.dropTil && p.u01(m.Seq, tagDrop) < p.dropP {
		return true, 0
	}
	var extra int64
	if m.SentAt < p.delTil {
		extra += int64(p.delayN)
	}
	if p.jitterN > 0 && m.SentAt < p.jitTil {
		//lint:ignore units the backend bus wire format carries bare sample counts
		extra += int64(p.u01(m.Seq, tagJitter) * float64(p.jitterN+1))
	}
	return false, extra
}

// Decision tags separate the drop roll from the jitter draw for the same
// message.
const (
	tagDrop   = 0x9e3779b97f4a7c15
	tagJitter = 0xd1342543de82ef95
)

// u01 hashes (seed, seq, tag) to a uniform float64 in [0, 1).
func (p *Policy) u01(seq uint64, tag uint64) float64 {
	x := splitmix64(p.seed ^ splitmix64(seq^tag))
	return float64(x>>11) / (1 << 53)
}

// splitmix64 is the standard 64-bit finalizer-quality mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
