package fault

import (
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Scenario generates a randomized-but-seeded Plan: Intensity faults per
// simulated second drawn over [Start, Horizon), kinds weighted toward the
// interesting degradation paths, every effect window closed well before
// the horizon so the run ends in a recovered steady state. The same
// Scenario always yields the same Plan — generation consumes a private
// rng.Source in a fixed draw order.
type Scenario struct {
	Seed       int64
	Start      int64       // first eligible ether sample
	Horizon    int64       // end of the run window
	SampleRate units.Hertz // ether sample rate
	NumAPs     int
	NumStreams int
	Intensity  float64 // expected fault events per simulated second
}

// Plan materializes the scenario's fault schedule.
func (s Scenario) Plan() *Plan {
	p := &Plan{Seed: s.Seed}
	window := s.Horizon - s.Start
	if window <= 0 || s.SampleRate <= 0 || s.Intensity <= 0 {
		return p
	}
	n := int(s.Intensity*float64(window)/units.Ratio(s.SampleRate, 1) + 0.5)
	src := rng.New(s.Seed)
	// Faults land in the first 60% of the window and every effect ends by
	// 80%, leaving a tail of recovered steady state.
	lastAt := s.Start + (window*6)/10
	lastEnd := s.Start + (window*8)/10
	// An effect shorter than a couple of traffic rounds is invisible: the
	// injector applies the fault and its recovery in the same between-rounds
	// call, so nothing ever degrades. Floor every outage at ~2 ms of samples
	// — window-proportional durations collapse below that on quick runs —
	// shrunk only when even the 80% confinement cannot fit it.
	minOutage := int64(2e-3 * units.Ratio(s.SampleRate, 1))
	if fit := lastEnd - s.Start; minOutage > fit {
		minOutage = fit
	}
	for i := 0; i < n; i++ {
		at := s.Start + int64(src.Uniform(0.05, 0.6)*float64(window))
		outage := int64(src.Uniform(0.05, 0.2) * float64(window))
		if outage < minOutage {
			outage = minOutage
		}
		if at > lastAt {
			at = lastAt
		}
		// Slide the fault earlier rather than truncating the outage, so the
		// effect keeps its full duration inside the confinement window.
		if at+outage > lastEnd {
			at = lastEnd - outage
			if at < s.Start {
				at = s.Start
			}
		}
		until := at + outage
		if until > lastEnd {
			until = lastEnd
		}
		u := src.Float64()
		ev := Event{At: at, Until: until}
		switch {
		case u < 0.20 && s.NumAPs > 1:
			ev.Kind = KindAPCrash
			ev.AP = src.Intn(s.NumAPs)
		case u < 0.30 && s.NumAPs > 1:
			ev.Kind = KindLeadFail
		case u < 0.45 && s.NumAPs > 1:
			ev.Kind = KindSyncCorrupt
			ev.AP = src.Intn(s.NumAPs)
		case u < 0.60:
			ev.Kind = KindBackendDrop
			ev.Param = src.Uniform(0.05, 0.35)
		case u < 0.70:
			ev.Kind = KindBackendDelay
			ev.Param = src.Uniform(20e-6, 100e-6) * units.Ratio(s.SampleRate, 1)
		case u < 0.80:
			ev.Kind = KindBackendJitter
			ev.Param = src.Uniform(20e-6, 150e-6) * units.Ratio(s.SampleRate, 1)
		case u < 0.90 && s.NumAPs > 1:
			ev.Kind = KindBackendPartition
			ev.AP = src.Intn(s.NumAPs)
		case s.NumStreams > 0:
			ev.Kind = KindClientLeave
			ev.Stream = src.Intn(s.NumStreams)
		default:
			ev.Kind = KindBackendDrop
			ev.Param = 0.2
		}
		p.Events = append(p.Events, ev)
	}
	p.Sort()
	return p
}
