package fault

import (
	"fmt"
	"sort"

	"megamimo/internal/units"
)

// IsolationState is one partitioned bus node and its isolation end time.
type IsolationState struct {
	Node  int   `json:"node"`
	Until int64 `json:"until"`
}

// PolicyState is the serializable windowed state of a bus fault Policy.
// The seed is not included: it is part of the plan the restore path
// rebuilds the injector from, and the per-message decisions are pure
// hashes of it.
type PolicyState struct {
	DropP   float64          `json:"drop_p,omitempty"`
	DropTil int64            `json:"drop_til,omitempty"`
	DelayN  int64            `json:"delay_n,omitempty"`
	DelTil  int64            `json:"del_til,omitempty"`
	JitterN int64            `json:"jitter_n,omitempty"`
	JitTil  int64            `json:"jit_til,omitempty"`
	Iso     []IsolationState `json:"iso,omitempty"`
}

// Snapshot captures the policy's windowed state, isolations sorted by node
// for a stable encoding.
func (p *Policy) Snapshot() PolicyState {
	st := PolicyState{
		DropP:   p.dropP,
		DropTil: p.dropTil,
		DelayN:  int64(p.delayN),
		DelTil:  p.delTil,
		JitterN: int64(p.jitterN),
		JitTil:  p.jitTil,
	}
	for node, until := range p.isolated {
		st.Iso = append(st.Iso, IsolationState{Node: node, Until: until})
	}
	sort.Slice(st.Iso, func(i, j int) bool { return st.Iso[i].Node < st.Iso[j].Node })
	return st
}

// RestoreSnapshot overwrites the policy's windowed state.
func (p *Policy) RestoreSnapshot(st PolicyState) {
	p.dropP, p.dropTil = st.DropP, st.DropTil
	p.delayN, p.delTil = units.Ticks(st.DelayN), st.DelTil
	p.jitterN, p.jitTil = units.Ticks(st.JitterN), st.JitTil
	p.isolated = make(map[int]int64, len(st.Iso))
	for _, iso := range st.Iso {
		p.isolated[iso.Node] = iso.Until
	}
}

// InjectorState is the serializable runtime state of an Injector built
// from a given plan: the cursor into the sorted plan events, the
// runtime-scheduled recoveries still pending, and the bus policy windows.
type InjectorState struct {
	Next   int         `json:"next"`
	Queued []Event     `json:"queued,omitempty"`
	Policy PolicyState `json:"policy"`
}

// Snapshot captures the injector's runtime state.
func (in *Injector) Snapshot() InjectorState {
	return InjectorState{
		Next:   in.next,
		Queued: append([]Event(nil), in.queued...),
		Policy: in.policy.Snapshot(),
	}
}

// RestoreSnapshot overwrites the injector's runtime state. The injector
// must have been rebuilt from the same plan the snapshot was taken under;
// the cursor is validated against the plan length.
func (in *Injector) RestoreSnapshot(st InjectorState) error {
	if st.Next < 0 || st.Next > len(in.events) {
		return fmt.Errorf("fault: restore injector: cursor %d out of range for a %d-event plan", st.Next, len(in.events))
	}
	in.next = st.Next
	in.queued = append([]Event(nil), st.Queued...)
	in.policy.RestoreSnapshot(st.Policy)
	return nil
}
