// Package fault is the deterministic fault-injection layer: a seeded,
// ether-clock-driven schedule of failures (AP crashes, lead failure,
// lossy/slow backhaul, sync-header corruption, client churn) that the
// simulator replays byte-identically at any worker count. A Plan is pure
// data — typed events pinned to ether sample times — and every random
// decision downstream (per-message drop rolls, jitter draws) is a hash of
// the plan seed and the message sequence number, never of iteration order,
// so the same seed always produces the same faults, the same degraded
// rounds and the same recovery trace. Fault-handling code must never
// panic: injection runs inside long experiment sweeps, and a fault that
// cannot apply (crashing the last live AP, restarting an AP that never
// crashed) is skipped or reported, not fatal. The faultpath lint analyzer
// enforces both properties.
package fault

import (
	"fmt"
	"sort"
)

// Kind enumerates the fault event types. Switches over Kind must be
// exhaustive (faultpath analyzer): adding a kind here forces every handler
// to decide what it means for them.
type Kind int

const (
	// KindAPCrash takes AP (field AP) off the air and off the bus until a
	// KindAPRestart (auto-scheduled when Until > 0). If the crashed AP was
	// the lead, the network re-elects deterministically.
	KindAPCrash Kind = iota
	// KindAPRestart re-attaches a crashed AP.
	KindAPRestart
	// KindLeadFail crashes whichever AP is the lead at apply time.
	KindLeadFail
	// KindBackendDrop makes the bus drop each message with probability
	// Param while the window [At, Until) is active.
	KindBackendDrop
	// KindBackendDelay adds Param ether samples of delivery latency to
	// every message in the window.
	KindBackendDelay
	// KindBackendJitter adds a per-message uniform delay in [0, Param]
	// ether samples in the window.
	KindBackendJitter
	// KindBackendPartition isolates one bus node (field AP holds the bus
	// node ID): all its traffic, both directions, is dropped until Until.
	KindBackendPartition
	// KindSyncCorrupt makes AP's sync-header measurements fail until
	// Until, exercising the extrapolate-then-abstain path.
	KindSyncCorrupt
	// KindClientLeave removes a client stream (field Stream) from the
	// workload: queued packets are purged, arrivals discarded.
	KindClientLeave
	// KindClientJoin re-activates a departed client stream.
	KindClientJoin
)

// numKinds is intentionally an untyped int, not a Kind: it is a count,
// never a case.
const numKinds = int(KindClientJoin) + 1

// Valid reports whether k names a defined fault kind.
func (k Kind) Valid() bool { return k >= 0 && int(k) < numKinds }

// String returns the stable wire/trace name of the kind.
func (k Kind) String() string {
	switch k {
	case KindAPCrash:
		return "ap-crash"
	case KindAPRestart:
		return "ap-restart"
	case KindLeadFail:
		return "lead-fail"
	case KindBackendDrop:
		return "backend-drop"
	case KindBackendDelay:
		return "backend-delay"
	case KindBackendJitter:
		return "backend-jitter"
	case KindBackendPartition:
		return "backend-partition"
	case KindSyncCorrupt:
		return "sync-corrupt"
	case KindClientLeave:
		return "client-leave"
	case KindClientJoin:
		return "client-join"
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	At   int64 // ether sample time the fault fires
	Kind Kind
	// AP is the target AP index (crash/restart/sync kinds) or bus node ID
	// (partition); unused otherwise.
	AP int
	// Stream is the target client stream for churn kinds.
	Stream int
	// Param is the kind-specific magnitude: drop probability, delay or
	// jitter bound in ether samples.
	Param float64
	// Until ends windowed effects (backend faults, sync corruption) and,
	// for crash/leave kinds, auto-schedules the matching recovery event.
	// Zero means no scheduled end.
	Until int64
}

func (e Event) String() string {
	s := fmt.Sprintf("%s at=%d", e.Kind, e.At)
	switch e.Kind {
	case KindAPCrash, KindAPRestart, KindSyncCorrupt, KindBackendPartition:
		s += fmt.Sprintf(" ap=%d", e.AP)
	case KindClientLeave, KindClientJoin:
		s += fmt.Sprintf(" stream=%d", e.Stream)
	case KindBackendDrop, KindBackendDelay, KindBackendJitter:
		s += fmt.Sprintf(" param=%g", e.Param)
	case KindLeadFail:
		// target resolved at apply time
	}
	if e.Until > 0 {
		s += fmt.Sprintf(" until=%d", e.Until)
	}
	return s
}

// Plan is a complete fault schedule: the seed that keys every downstream
// random decision, and the events in firing order. A Plan is inert data;
// an Injector applies it to a live network.
type Plan struct {
	Seed   int64
	Events []Event
}

// Sort orders the events by firing time, preserving the relative order of
// events that share an instant (stable, so plan construction order is the
// tie-break and replay is exact).
func (p *Plan) Sort() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
}

// Validate reports the first malformed event, or nil.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if !e.Kind.Valid() {
			return fmt.Errorf("fault: event %d: invalid kind %d", i, int(e.Kind))
		}
		if e.Until != 0 && e.Until < e.At {
			return fmt.Errorf("fault: event %d (%s): until %d before at %d", i, e.Kind, e.Until, e.At)
		}
	}
	return nil
}
