// Package dsp supplies the signal-processing primitives beneath the OFDM
// PHY: power-of-two FFT/IFFT, correlation and convolution kernels, and a
// fractional-delay resampler used to model sampling-frequency offset.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFTPlan caches twiddle factors and the bit-reversal permutation for a
// fixed power-of-two transform size, so per-symbol transforms allocate
// nothing.
type FFTPlan struct {
	n       int
	logn    int
	rev     []int        // bit-reversal permutation
	twiddle []complex128 // e^{-j2πk/n} for k < n/2
}

// NewFFTPlan returns a plan for size n, which must be a power of two ≥ 2.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two ≥ 2", n)
	}
	p := &FFTPlan{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int(bits.Reverse(uint(i)) >> (bits.UintSize - p.logn))
	}
	p.twiddle = make([]complex128, n/2)
	for k := 0; k < n/2; k++ {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.twiddle[k] = complex(c, s)
	}
	return p, nil
}

// MustFFTPlan is NewFFTPlan that panics on error; for compile-time-constant
// sizes such as the 64-point OFDM transform.
func MustFFTPlan(n int) *FFTPlan {
	p, err := NewFFTPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the transform size.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the DFT of src into dst (both length n). dst and src may
// alias. The transform is unnormalized: Forward∘Inverse = identity because
// Inverse divides by n.
func (p *FFTPlan) Forward(dst, src []complex128) {
	p.transform(dst, src, false)
}

// Inverse computes the inverse DFT of src into dst, scaled by 1/n.
func (p *FFTPlan) Inverse(dst, src []complex128) {
	p.transform(dst, src, true)
	scale := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

func (p *FFTPlan) transform(dst, src []complex128, inverse bool) {
	n := p.n
	if len(src) != n || len(dst) < n {
		panic("dsp: FFT buffer length mismatch")
	}
	// Bit-reversed copy (handles aliasing because rev is an involution set
	// of swaps when dst == src; when distinct we copy directly).
	if &dst[0] == &src[0] {
		for i, j := range p.rev {
			if i < j {
				dst[i], dst[j] = dst[j], dst[i]
			}
		}
	} else {
		for i, j := range p.rev {
			dst[i] = src[j]
		}
	}
	// Iterative Cooley-Tukey.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				a := dst[start+k]
				b := dst[start+k+half] * w
				dst[start+k] = a + b
				dst[start+k+half] = a - b
			}
		}
	}
}

// FFT is a convenience wrapper that allocates a result and a plan for
// one-off transforms (tests, setup paths).
func FFT(src []complex128) []complex128 {
	p := MustFFTPlan(len(src))
	dst := make([]complex128, len(src))
	p.Forward(dst, src)
	return dst
}

// IFFT is the inverse convenience wrapper for FFT.
func IFFT(src []complex128) []complex128 {
	p := MustFFTPlan(len(src))
	dst := make([]complex128, len(src))
	p.Inverse(dst, src)
	return dst
}
