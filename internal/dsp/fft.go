// Package dsp supplies the signal-processing primitives beneath the OFDM
// PHY: power-of-two FFT/IFFT, correlation and convolution kernels, and a
// fractional-delay resampler used to model sampling-frequency offset.
package dsp

import (
	"fmt"
	"math"
	"math/bits"

	"megamimo/internal/cmplxs"
)

// FFTPlan caches twiddle factors and the bit-reversal permutation for a
// fixed power-of-two transform size, so per-symbol transforms allocate
// nothing.
//
// Twiddles are stored per stage, contiguously, in both forward and
// conjugated (inverse) form: stage size 2h reads its h factors from
// tw[h-1 : 2h-1]. The butterfly loops therefore run stride-1 with no
// direction branch, and the k = 0 butterfly (w = 1) is peeled so the
// common term costs two adds instead of a complex multiply.
type FFTPlan struct {
	n    int
	logn int
	rev  []int32 // bit-reversal permutation
	twF  []complex128
	twI  []complex128
	// Split (SoA) twin of the twiddle tables for the kernels that keep
	// their data in split layout.
	twFS, twIS cmplxs.Split
}

// NewFFTPlan returns a plan for size n, which must be a power of two ≥ 2.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two ≥ 2", n)
	}
	p := &FFTPlan{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int32, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse(uint(i)) >> (bits.UintSize - p.logn))
	}
	p.twF = make([]complex128, n-1)
	p.twI = make([]complex128, n-1)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		for k := 0; k < half; k++ {
			s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(size))
			p.twF[half-1+k] = complex(c, s)
			p.twI[half-1+k] = complex(c, -s)
		}
	}
	p.twFS = cmplxs.NewSplit(n - 1)
	p.twIS = cmplxs.NewSplit(n - 1)
	cmplxs.Unpack(p.twFS, p.twF)
	cmplxs.Unpack(p.twIS, p.twI)
	return p, nil
}

// MustFFTPlan is NewFFTPlan that panics on error; for compile-time-constant
// sizes such as the 64-point OFDM transform.
func MustFFTPlan(n int) *FFTPlan {
	p, err := NewFFTPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Size returns the transform size.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes the DFT of src into dst (both length n). dst and src may
// alias. The transform is unnormalized: Forward∘Inverse = identity because
// Inverse divides by n.
func (p *FFTPlan) Forward(dst, src []complex128) {
	p.check(dst, src)
	p.reorder(dst, src)
	p.butterflies(dst[:p.n], p.twF)
}

// Inverse computes the inverse DFT of src into dst, scaled by 1/n. The
// scaling rides along with the bit-reversal copy, so the whole inverse is
// the same number of passes as the forward transform.
func (p *FFTPlan) Inverse(dst, src []complex128) {
	p.check(dst, src)
	scale := complex(1/float64(p.n), 0)
	if &dst[0] == &src[0] {
		for i, j := range p.rev {
			if i < int(j) {
				dst[i], dst[j] = dst[j], dst[i]
			}
		}
		for i := range dst[:p.n] {
			dst[i] *= scale
		}
	} else {
		for i, j := range p.rev {
			dst[i] = src[j] * scale
		}
	}
	p.butterflies(dst[:p.n], p.twI)
}

// ForwardBatch computes independent DFTs of every n-length frame packed
// contiguously in src into dst (len(src) must be a multiple of n; dst and
// src may alias). Batching all symbols of a round into one call over a
// single scratch arena keeps the plan's tables hot instead of re-entering
// the transform once per symbol.
func (p *FFTPlan) ForwardBatch(dst, src []complex128) {
	p.checkBatch(dst, src)
	for off := 0; off < len(src); off += p.n {
		p.Forward(dst[off:off+p.n], src[off:off+p.n])
	}
}

// InverseBatch is ForwardBatch for the scaled inverse transform.
func (p *FFTPlan) InverseBatch(dst, src []complex128) {
	p.checkBatch(dst, src)
	for off := 0; off < len(src); off += p.n {
		p.Inverse(dst[off:off+p.n], src[off:off+p.n])
	}
}

// ForwardSplit computes the DFT over a split (SoA) vector in place after a
// bit-reversed copy from src. It is the split-layout twin of Forward for
// callers whose data already lives in split form.
func (p *FFTPlan) ForwardSplit(dst, src cmplxs.Split) {
	p.reorderSplit(dst, src)
	p.butterfliesSplit(dst, p.twFS)
}

// InverseSplit is ForwardSplit for the scaled inverse transform.
func (p *FFTPlan) InverseSplit(dst, src cmplxs.Split) {
	p.reorderSplit(dst, src)
	scale := 1 / float64(p.n)
	dr, di := dst.Re[:p.n], dst.Im[:p.n]
	for i := range dr {
		dr[i] *= scale
		di[i] *= scale
	}
	p.butterfliesSplit(dst, p.twIS)
}

func (p *FFTPlan) check(dst, src []complex128) {
	if len(src) != p.n || len(dst) < p.n {
		panic("dsp: FFT buffer length mismatch")
	}
}

func (p *FFTPlan) checkBatch(dst, src []complex128) {
	if len(src)%p.n != 0 || len(dst) < len(src) {
		panic("dsp: FFT batch length mismatch")
	}
}

// reorder performs the bit-reversed copy (or in-place swap set when dst
// and src alias).
func (p *FFTPlan) reorder(dst, src []complex128) {
	if &dst[0] == &src[0] {
		for i, j := range p.rev {
			if i < int(j) {
				dst[i], dst[j] = dst[j], dst[i]
			}
		}
	} else {
		for i, j := range p.rev {
			dst[i] = src[j]
		}
	}
}

func (p *FFTPlan) reorderSplit(dst, src cmplxs.Split) {
	n := p.n
	if src.Len() != n || dst.Len() < n {
		panic("dsp: FFT buffer length mismatch")
	}
	sr, si := src.Re, src.Im
	dr, di := dst.Re, dst.Im
	if &dr[0] == &sr[0] {
		for i, j := range p.rev {
			if i < int(j) {
				dr[i], dr[j] = dr[j], dr[i]
				di[i], di[j] = di[j], di[i]
			}
		}
	} else {
		for i, j := range p.rev {
			dr[i] = sr[j]
			di[i] = si[j]
		}
	}
}

// butterflies runs the iterative Cooley-Tukey stages over bit-reversed
// data with the given direction's per-stage twiddle table.
func (p *FFTPlan) butterflies(dst []complex128, tw []complex128) {
	n := p.n
	// Stage size 2: every twiddle is 1.
	for i := 0; i < n; i += 2 {
		a, b := dst[i], dst[i+1]
		dst[i], dst[i+1] = a+b, a-b
	}
	for size := 4; size <= n; size <<= 1 {
		half := size >> 1
		stw := tw[half-1 : 2*half-1]
		for start := 0; start < n; start += size {
			// k = 0: w = 1, no multiply.
			a, b := dst[start], dst[start+half]
			dst[start], dst[start+half] = a+b, a-b
			lo := dst[start+1 : start+half]
			hi := dst[start+half+1 : start+size]
			for k := range lo {
				a := lo[k]
				b := hi[k] * stw[k+1]
				lo[k] = a + b
				hi[k] = a - b
			}
		}
	}
}

func (p *FFTPlan) butterfliesSplit(dst cmplxs.Split, tw cmplxs.Split) {
	n := p.n
	dr, di := dst.Re[:n], dst.Im[:n]
	for i := 0; i < n; i += 2 {
		ar, ai, br, bi := dr[i], di[i], dr[i+1], di[i+1]
		dr[i], di[i] = ar+br, ai+bi
		dr[i+1], di[i+1] = ar-br, ai-bi
	}
	for size := 4; size <= n; size <<= 1 {
		half := size >> 1
		twr := tw.Re[half-1 : 2*half-1]
		twi := tw.Im[half-1 : 2*half-1]
		for start := 0; start < n; start += size {
			ar, ai, br, bi := dr[start], di[start], dr[start+half], di[start+half]
			dr[start], di[start] = ar+br, ai+bi
			dr[start+half], di[start+half] = ar-br, ai-bi
			for k := 1; k < half; k++ {
				i, j := start+k, start+k+half
				wr, wi := twr[k], twi[k]
				xr, xi := dr[j], di[j]
				br := xr*wr - xi*wi
				bi := xr*wi + xi*wr
				ar, ai := dr[i], di[i]
				dr[i], di[i] = ar+br, ai+bi
				dr[j], di[j] = ar-br, ai-bi
			}
		}
	}
}

// FFT is a convenience wrapper that allocates a result and a plan for
// one-off transforms (tests, setup paths).
func FFT(src []complex128) []complex128 {
	p := MustFFTPlan(len(src))
	dst := make([]complex128, len(src))
	p.Forward(dst, src)
	return dst
}

// IFFT is the inverse convenience wrapper for FFT.
func IFFT(src []complex128) []complex128 {
	p := MustFFTPlan(len(src))
	dst := make([]complex128, len(src))
	p.Inverse(dst, src)
	return dst
}
