package dsp

import "testing"

func TestPlanForCachesAndTransforms(t *testing.T) {
	p1, err := PlanFor(64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanFor(64)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("PlanFor(64) did not return the cached plan")
	}
	if _, err := PlanFor(63); err == nil {
		t.Error("PlanFor(63) should reject a non-power-of-two size")
	}
	// The cached plan must round-trip like a fresh one.
	src := make([]complex128, 64)
	src[3] = 2 + 1i
	freq := make([]complex128, 64)
	p1.Forward(freq, src)
	back := make([]complex128, 64)
	p1.Inverse(back, freq)
	for i := range src {
		if d := back[i] - src[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
			t.Fatalf("round trip differs at %d: %v != %v", i, back[i], src[i])
		}
	}
}

func TestScratchReusesAndZeroes(t *testing.T) {
	var s Scratch
	a := s.Complex(8)
	b := s.Complex(16)
	if len(a) != 8 || len(b) != 16 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	a[0], b[15] = 1, 2
	s.Reset()
	if s.Live() != 0 {
		t.Fatalf("Live() = %d after Reset", s.Live())
	}
	a2 := s.Complex(8)
	if &a2[0] != &a[0] {
		t.Error("same-size buffer was not reused after Reset")
	}
	if a2[0] != 0 {
		t.Error("reused buffer was not zeroed")
	}
	b2 := s.Complex(16)
	if b2[15] != 0 {
		t.Error("second reused buffer was not zeroed")
	}
}

func TestScratchGrowsWithinCycle(t *testing.T) {
	var s Scratch
	s.Complex(4)
	s.Reset()
	// A bigger request in the same slot must reallocate, not truncate.
	big := s.Complex(32)
	if len(big) != 32 {
		t.Fatalf("len = %d, want 32", len(big))
	}
	s.Reset()
	again := s.Complex(32)
	if &again[0] != &big[0] {
		t.Error("grown buffer was not kept for reuse")
	}
}

func TestScratchAllocFreeSteadyState(t *testing.T) {
	var s Scratch
	warm := func() {
		s.Reset()
		s.Complex(64)
		s.Complex(80)
	}
	warm()
	n := testing.AllocsPerRun(100, warm)
	if n > 0 {
		t.Errorf("steady-state Scratch cycle allocates %.1f times", n)
	}
}
