package dsp

import "math/cmplx"

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1). This is the multipath-channel kernel: x is the
// transmitted sample stream and h the tap vector.
func Convolve(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, hv := range h {
		if hv == 0 {
			continue
		}
		for j, xv := range x {
			out[i+j] += hv * xv
		}
	}
	return out
}

// ConvolveInto writes the convolution of x and h into dst, which must have
// length ≥ len(x)+len(h)-1, accumulating into existing contents (so several
// transmitters can be summed onto one receive buffer). It returns the
// number of samples touched.
func ConvolveInto(dst, x, h []complex128) int {
	n := len(x) + len(h) - 1
	if len(x) == 0 || len(h) == 0 {
		return 0
	}
	if len(dst) < n {
		panic("dsp: ConvolveInto destination too short")
	}
	for i, hv := range h {
		if hv == 0 {
			continue
		}
		for j, xv := range x {
			dst[i+j] += hv * xv
		}
	}
	return n
}

// CrossCorrelate returns c[k] = Σ_i x[i+k]·conj(ref[i]) for
// k in [0, len(x)-len(ref)], the sliding correlation used for packet
// detection against a known preamble.
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	for k := range out {
		var acc complex128
		win := x[k : k+len(ref)]
		for i, r := range ref {
			acc += win[i] * cmplx.Conj(r)
		}
		out[k] = acc
	}
	return out
}

// AutoCorrelateLag returns a[k] = Σ_{i=k..k+win-1} x[i]·conj(x[i+lag]) for
// each window start k — the Schmidl-Cox style metric behind coarse timing
// and CFO estimation on a periodic preamble.
func AutoCorrelateLag(x []complex128, lag, win int) []complex128 {
	if lag <= 0 || win <= 0 || len(x) < lag+win {
		return nil
	}
	out := make([]complex128, len(x)-lag-win+1)
	// Sliding update: each step adds one product and removes another.
	var acc complex128
	for i := 0; i < win; i++ {
		acc += x[i] * cmplx.Conj(x[i+lag])
	}
	out[0] = acc
	for k := 1; k < len(out); k++ {
		acc -= x[k-1] * cmplx.Conj(x[k-1+lag])
		acc += x[k+win-1] * cmplx.Conj(x[k+win-1+lag])
		out[k] = acc
	}
	return out
}

// MovingAverage returns the win-point moving average of the real signal x
// (length len(x)-win+1), used for normalizing detection metrics.
func MovingAverage(x []float64, win int) []float64 {
	if win <= 0 || len(x) < win {
		return nil
	}
	out := make([]float64, len(x)-win+1)
	var acc float64
	for i := 0; i < win; i++ {
		acc += x[i]
	}
	out[0] = acc / float64(win)
	for k := 1; k < len(out); k++ {
		acc += x[k+win-1] - x[k-1]
		out[k] = acc / float64(win)
	}
	return out
}

// Resample performs linear-interpolation resampling of x at a rate ratio
// r = Fs_out/Fs_in, producing floor((len(x)-1)*r)+1 samples. A ratio just
// below or above 1 models a sampling-frequency offset between transmitter
// and receiver clocks; linear interpolation is accurate to well below the
// noise floor for the sub-ppm-per-packet drifts the simulator injects.
func Resample(x []complex128, ratio float64) []complex128 {
	if len(x) < 2 || ratio <= 0 {
		return nil
	}
	n := int(float64(len(x)-1)*ratio) + 1
	out := make([]complex128, n)
	step := 1 / ratio
	for i := 0; i < n; i++ {
		pos := float64(i) * step
		k := int(pos)
		if k >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := complex(pos-float64(k), 0)
		out[i] = x[k]*(1-frac) + x[k+1]*frac
	}
	return out
}

// FractionalDelay delays x by d samples (0 ≤ d < 1) using linear
// interpolation; integer delays are the caller's job (slice offsets).
func FractionalDelay(x []complex128, d float64) []complex128 {
	if d == 0 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	if d < 0 || d >= 1 {
		panic("dsp: FractionalDelay wants 0 ≤ d < 1")
	}
	out := make([]complex128, len(x))
	fd := complex(d, 0)
	prev := complex128(0)
	for i, v := range x {
		out[i] = prev*fd + v*(1-fd)
		prev = v
	}
	return out
}
