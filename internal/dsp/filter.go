package dsp

import (
	"math/cmplx"

	"megamimo/internal/cmplxs"
)

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1). This is the multipath-channel kernel: x is the
// transmitted sample stream and h the tap vector.
func Convolve(x, h []complex128) []complex128 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]complex128, len(x)+len(h)-1)
	for i, hv := range h {
		if hv == 0 {
			continue
		}
		for j, xv := range x {
			out[i+j] += hv * xv
		}
	}
	return out
}

// ConvolveInto writes the convolution of x and h into dst, which must have
// length ≥ len(x)+len(h)-1, accumulating into existing contents (so several
// transmitters can be summed onto one receive buffer). It returns the
// number of samples touched.
//
// The kernel runs output-oriented: one pass over dst accumulating every
// tap, rather than one full pass over dst per tap. For the short tap
// vectors of indoor channel models that roughly halves the memory
// traffic, which is what this loop is bound by.
func ConvolveInto(dst, x, h []complex128) int {
	n := len(x) + len(h) - 1
	if len(x) == 0 || len(h) == 0 {
		return 0
	}
	if len(dst) < n {
		panic("dsp: ConvolveInto destination too short")
	}
	nx, nh := len(x), len(h)
	if nh == 4 && nx >= 4 {
		// The dominant case (4-tap indoor models), fully unrolled.
		h0, h1, h2, h3 := h[0], h[1], h[2], h[3]
		dst[0] += h0 * x[0]
		dst[1] += h0*x[1] + h1*x[0]
		dst[2] += h0*x[2] + h1*x[1] + h2*x[0]
		for o := 3; o < nx; o++ {
			dst[o] += h0*x[o] + h1*x[o-1] + h2*x[o-2] + h3*x[o-3]
		}
		dst[nx] += h1*x[nx-1] + h2*x[nx-2] + h3*x[nx-3]
		dst[nx+1] += h2*x[nx-1] + h3*x[nx-2]
		dst[nx+2] += h3 * x[nx-1]
		return n
	}
	for o := 0; o < n; o++ {
		tLo, tHi := o-nx+1, o+1
		if tLo < 0 {
			tLo = 0
		}
		if tHi > nh {
			tHi = nh
		}
		var acc complex128
		for t := tLo; t < tHi; t++ {
			acc += h[t] * x[o-t]
		}
		dst[o] += acc
	}
	return n
}

// ConvolveSplitInto writes the convolution of x and h into the split
// destination, accumulating like ConvolveInto. The SoA destination is for
// kernels that keep working on the result in split form (the air medium
// convolves, then rotates and sums), so the conversion back to
// []complex128 happens once, fused with the final accumulation.
func ConvolveSplitInto(dst cmplxs.Split, x, h []complex128) int {
	n := len(x) + len(h) - 1
	if len(x) == 0 || len(h) == 0 {
		return 0
	}
	if dst.Len() < n {
		panic("dsp: ConvolveSplitInto destination too short")
	}
	nx, nh := len(x), len(h)
	dr, di := dst.Re, dst.Im
	if nh == 4 && nx >= 4 {
		h0, h1, h2, h3 := h[0], h[1], h[2], h[3]
		h0r, h0i := real(h0), imag(h0)
		h1r, h1i := real(h1), imag(h1)
		h2r, h2i := real(h2), imag(h2)
		h3r, h3i := real(h3), imag(h3)
		acc := func(o int, v complex128) {
			dr[o] += real(v)
			di[o] += imag(v)
		}
		acc(0, h0*x[0])
		acc(1, h0*x[1]+h1*x[0])
		acc(2, h0*x[2]+h1*x[1]+h2*x[0])
		for o := 3; o < nx; o++ {
			x0, x1, x2, x3 := x[o], x[o-1], x[o-2], x[o-3]
			x0r, x0i := real(x0), imag(x0)
			x1r, x1i := real(x1), imag(x1)
			x2r, x2i := real(x2), imag(x2)
			x3r, x3i := real(x3), imag(x3)
			// Parenthesized per tap so each term rounds exactly like the
			// complex multiply in ConvolveInto: the two layouts produce
			// bit-identical convolutions.
			dr[o] += (h0r*x0r - h0i*x0i) + (h1r*x1r - h1i*x1i) +
				(h2r*x2r - h2i*x2i) + (h3r*x3r - h3i*x3i)
			di[o] += (h0r*x0i + h0i*x0r) + (h1r*x1i + h1i*x1r) +
				(h2r*x2i + h2i*x2r) + (h3r*x3i + h3i*x3r)
		}
		acc(nx, h1*x[nx-1]+h2*x[nx-2]+h3*x[nx-3])
		acc(nx+1, h2*x[nx-1]+h3*x[nx-2])
		acc(nx+2, h3*x[nx-1])
		return n
	}
	for o := 0; o < n; o++ {
		tLo, tHi := o-nx+1, o+1
		if tLo < 0 {
			tLo = 0
		}
		if tHi > nh {
			tHi = nh
		}
		var acc complex128
		for t := tLo; t < tHi; t++ {
			acc += h[t] * x[o-t]
		}
		dr[o] += real(acc)
		di[o] += imag(acc)
	}
	return n
}

// ConvolveRotateAdd fuses the multipath convolution with the carrier
// rotation and the medium summation: for k in [0, len(dst)) it accumulates
//
//	dst[k] += (Σ_t h[t]·x[oLo+k-t]) · rot_k,   rot_{k+1} = rot_k·step
//
// i.e. the window [oLo, oLo+len(dst)) of the full convolution of x and h,
// rotated by a per-sample phase recurrence, added onto the receiver's ether
// buffer in one pass with no intermediate convolution scratch. The window
// must satisfy 0 ≤ oLo and oLo+len(dst) ≤ len(x)+len(h)-1; the air medium
// clamps it to the observation overlap, so emissions mostly outside the
// window only pay for the samples a receiver actually hears.
func ConvolveRotateAdd(dst, x, h []complex128, oLo int, rot, step complex128) {
	if len(x) == 0 || len(h) == 0 || len(dst) == 0 {
		return
	}
	nx, nh := len(x), len(h)
	oHi := oLo + len(dst)
	if oLo < 0 || oHi > nx+nh-1 {
		panic("dsp: ConvolveRotateAdd window out of range")
	}
	if nh == 4 && nx >= 4 {
		// The dominant case (4-tap indoor models), fully unrolled.
		h0, h1, h2, h3 := h[0], h[1], h[2], h[3]
		k, o := 0, oLo
		for ; o < 3 && o < oHi; o++ {
			acc := h0 * x[o]
			if o >= 1 {
				acc += h1 * x[o-1]
			}
			if o >= 2 {
				acc += h2 * x[o-2]
			}
			dst[k] += acc * rot
			rot *= step
			k++
		}
		iHi := oHi
		if iHi > nx {
			iHi = nx
		}
		for ; o < iHi; o++ {
			acc := h0*x[o] + h1*x[o-1] + h2*x[o-2] + h3*x[o-3]
			dst[k] += acc * rot
			rot *= step
			k++
		}
		for ; o < oHi; o++ {
			var acc complex128
			if o-1 < nx {
				acc += h1 * x[o-1]
			}
			if o-2 < nx {
				acc += h2 * x[o-2]
			}
			acc += h3 * x[o-3]
			dst[k] += acc * rot
			rot *= step
			k++
		}
		return
	}
	k := 0
	for o := oLo; o < oHi; o++ {
		tLo, tHi := o-nx+1, o+1
		if tLo < 0 {
			tLo = 0
		}
		if tHi > nh {
			tHi = nh
		}
		var acc complex128
		for t := tLo; t < tHi; t++ {
			acc += h[t] * x[o-t]
		}
		dst[k] += acc * rot
		rot *= step
		k++
	}
}

// CrossCorrelate returns c[k] = Σ_i x[i+k]·conj(ref[i]) for
// k in [0, len(x)-len(ref)], the sliding correlation used for packet
// detection against a known preamble.
func CrossCorrelate(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	for k := range out {
		var acc complex128
		win := x[k : k+len(ref)]
		for i, r := range ref {
			acc += win[i] * cmplx.Conj(r)
		}
		out[k] = acc
	}
	return out
}

// AutoCorrelateLag returns a[k] = Σ_{i=k..k+win-1} x[i]·conj(x[i+lag]) for
// each window start k — the Schmidl-Cox style metric behind coarse timing
// and CFO estimation on a periodic preamble.
func AutoCorrelateLag(x []complex128, lag, win int) []complex128 {
	if lag <= 0 || win <= 0 || len(x) < lag+win {
		return nil
	}
	out := make([]complex128, len(x)-lag-win+1)
	// Sliding update: each step adds one product and removes another.
	var acc complex128
	for i := 0; i < win; i++ {
		acc += x[i] * cmplx.Conj(x[i+lag])
	}
	out[0] = acc
	for k := 1; k < len(out); k++ {
		acc -= x[k-1] * cmplx.Conj(x[k-1+lag])
		acc += x[k+win-1] * cmplx.Conj(x[k+win-1+lag])
		out[k] = acc
	}
	return out
}

// MovingAverage returns the win-point moving average of the real signal x
// (length len(x)-win+1), used for normalizing detection metrics.
func MovingAverage(x []float64, win int) []float64 {
	if win <= 0 || len(x) < win {
		return nil
	}
	out := make([]float64, len(x)-win+1)
	var acc float64
	for i := 0; i < win; i++ {
		acc += x[i]
	}
	out[0] = acc / float64(win)
	for k := 1; k < len(out); k++ {
		acc += x[k+win-1] - x[k-1]
		out[k] = acc / float64(win)
	}
	return out
}

// Resample performs linear-interpolation resampling of x at a rate ratio
// r = Fs_out/Fs_in, producing floor((len(x)-1)*r)+1 samples. A ratio just
// below or above 1 models a sampling-frequency offset between transmitter
// and receiver clocks; linear interpolation is accurate to well below the
// noise floor for the sub-ppm-per-packet drifts the simulator injects.
func Resample(x []complex128, ratio float64) []complex128 {
	if len(x) < 2 || ratio <= 0 {
		return nil
	}
	n := int(float64(len(x)-1)*ratio) + 1
	out := make([]complex128, n)
	step := 1 / ratio
	for i := 0; i < n; i++ {
		pos := float64(i) * step
		k := int(pos)
		if k >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := complex(pos-float64(k), 0)
		out[i] = x[k]*(1-frac) + x[k+1]*frac
	}
	return out
}

// FractionalDelay delays x by d samples (0 ≤ d < 1) using linear
// interpolation; integer delays are the caller's job (slice offsets).
func FractionalDelay(x []complex128, d float64) []complex128 {
	if d == 0 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out
	}
	if d < 0 || d >= 1 {
		panic("dsp: FractionalDelay wants 0 ≤ d < 1")
	}
	out := make([]complex128, len(x))
	fd := complex(d, 0)
	prev := complex128(0)
	for i, v := range x {
		out[i] = prev*fd + v*(1-fd)
		prev = v
	}
	return out
}
