package dsp

import "math"

// Spectrum computes a Welch-style averaged power spectral density of x:
// the signal is cut into half-overlapping Hann-windowed segments of length
// fftSize (a power of two), each segment's periodogram is computed, and
// the results are averaged. The output has fftSize bins ordered like the
// FFT (DC first, negative frequencies in the upper half) with units of
// power per bin. It is the diagnostic behind waveform inspection in the
// simulator (occupied bandwidth, spectral leakage, interference spotting).
func Spectrum(x []complex128, fftSize int) ([]float64, error) {
	plan, err := NewFFTPlan(fftSize)
	if err != nil {
		return nil, err
	}
	if len(x) < fftSize {
		padded := make([]complex128, fftSize)
		copy(padded, x)
		x = padded
	}
	window := hann(fftSize)
	var winPow float64
	for _, w := range window {
		winPow += w * w
	}
	out := make([]float64, fftSize)
	buf := make([]complex128, fftSize)
	freq := make([]complex128, fftSize)
	hop := fftSize / 2
	segments := 0
	for start := 0; start+fftSize <= len(x); start += hop {
		for i := 0; i < fftSize; i++ {
			buf[i] = x[start+i] * complex(window[i], 0)
		}
		plan.Forward(freq, buf)
		for i, v := range freq {
			out[i] += real(v)*real(v) + imag(v)*imag(v)
		}
		segments++
	}
	if segments == 0 {
		segments = 1
	}
	scale := 1 / (float64(segments) * winPow)
	for i := range out {
		out[i] *= scale
	}
	return out, nil
}

// hann returns the n-point Hann window.
func hann(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return out
}

// OccupiedBandwidth returns the fraction of total spectral power inside
// the logical bin range [-k, k] of a Spectrum result (99%-style occupancy
// checks for the OFDM mask).
func OccupiedBandwidth(psd []float64, k int) float64 {
	n := len(psd)
	if n == 0 {
		return 0
	}
	var inside, total float64
	for i, p := range psd {
		total += p
		logical := i
		if logical >= n/2 {
			logical -= n
		}
		if logical >= -k && logical <= k {
			inside += p
		}
	}
	if total == 0 {
		return 0
	}
	return inside / total
}
