package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestConvolveKnown(t *testing.T) {
	x := []complex128{1, 2, 3}
	h := []complex128{1, -1}
	got := Convolve(x, h)
	want := []complex128{1, 1, 1, -3}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Convolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := []complex128{1 + 1i, 2, -3i}
	got := Convolve(x, []complex128{1})
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("identity convolution altered signal")
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []complex128{1}) != nil || Convolve([]complex128{1}, nil) != nil {
		t.Fatal("empty convolution should be nil")
	}
}

func TestConvolveIntoAccumulates(t *testing.T) {
	dst := make([]complex128, 4)
	x := []complex128{1, 1, 1}
	h := []complex128{2, 0}
	ConvolveInto(dst, x, h)
	ConvolveInto(dst, x, h)
	for i := 0; i < 3; i++ {
		if dst[i] != 4 {
			t.Fatalf("dst = %v", dst)
		}
	}
}

func TestConvolveCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := randSignal(r, 37)
	h := randSignal(r, 9)
	a, b := Convolve(x, h), Convolve(h, x)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatal("convolution does not commute")
		}
	}
}

func TestCrossCorrelatePeakAtOffset(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ref := randSignal(r, 32)
	x := make([]complex128, 200)
	off := 77
	copy(x[off:], ref)
	c := CrossCorrelate(x, ref)
	best, bestAbs := -1, 0.0
	for k, v := range c {
		if a := cmplx.Abs(v); a > bestAbs {
			best, bestAbs = k, a
		}
	}
	if best != off {
		t.Fatalf("correlation peak at %d, want %d", best, off)
	}
}

func TestAutoCorrelateLagDetectsPeriodicity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	period := randSignal(r, 16)
	// Periodic region [64, 64+4*16) inside noise.
	x := randSignal(r, 192)
	for rep := 0; rep < 4; rep++ {
		copy(x[64+rep*16:64+(rep+1)*16], period)
	}
	m := AutoCorrelateLag(x, 16, 32)
	best, bestAbs := -1, 0.0
	for k, v := range m {
		if a := cmplx.Abs(v); a > bestAbs {
			best, bestAbs = k, a
		}
	}
	if best < 60 || best > 84 {
		t.Fatalf("periodicity metric peak at %d, want near 64", best)
	}
}

func TestAutoCorrelateLagPhaseEncodesCFO(t *testing.T) {
	// A pure rotation applied to a periodic signal shows up as the phase
	// of the lag-autocorrelation: phase = -lag·2πΔf/Fs.
	n, lag := 128, 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(i%lag)/float64(lag)))
	}
	step := 0.01 // rad/sample
	for i := range x {
		x[i] *= cmplx.Exp(complex(0, step*float64(i)))
	}
	m := AutoCorrelateLag(x, lag, 64)
	got := cmplx.Phase(m[0])
	want := -step * float64(lag)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("lag-corr phase = %v, want %v", got, want)
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(x, 3)
	want := []float64{2, 3, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MovingAverage = %v", got)
		}
	}
	if MovingAverage(x, 6) != nil {
		t.Fatal("window larger than input should be nil")
	}
}

func TestResampleUnitRatio(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	x := randSignal(r, 100)
	y := Resample(x, 1.0)
	if len(y) != len(x) {
		t.Fatalf("len = %d", len(y))
	}
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("unit resample altered sample %d", i)
		}
	}
}

func TestResampleLinearRamp(t *testing.T) {
	// A linear ramp is reproduced exactly by linear interpolation.
	x := make([]complex128, 50)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	y := Resample(x, 2.0)
	for i := range y {
		want := float64(i) / 2
		if math.Abs(real(y[i])-want) > 1e-9 {
			t.Fatalf("Resample ramp [%d] = %v, want %v", i, real(y[i]), want)
		}
	}
}

func TestResamplePPMDrift(t *testing.T) {
	// 100 ppm over 10k samples ⇒ ~1 extra sample.
	x := make([]complex128, 10000)
	y := Resample(x, 1+100e-6)
	if len(y)-len(x) < 0 || len(y)-len(x) > 2 {
		t.Fatalf("drift sample count: %d -> %d", len(x), len(y))
	}
}

func TestFractionalDelayRamp(t *testing.T) {
	x := make([]complex128, 20)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	y := FractionalDelay(x, 0.25)
	// After warmup, y[i] = i - 0.25.
	for i := 2; i < len(y); i++ {
		if math.Abs(real(y[i])-(float64(i)-0.25)) > 1e-9 {
			t.Fatalf("FractionalDelay[%d] = %v", i, real(y[i]))
		}
	}
}

func TestFractionalDelayZero(t *testing.T) {
	x := []complex128{1, 2, 3}
	y := FractionalDelay(x, 0)
	y[0] = 99
	if x[0] != 1 {
		t.Fatal("FractionalDelay(0) must copy")
	}
}

func BenchmarkConvolve(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randSignal(r, 4096)
	h := randSignal(r, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Convolve(x, h)
	}
}

func BenchmarkAutoCorrelateLag(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randSignal(r, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AutoCorrelateLag(x, 16, 64)
	}
}

// TestConvolveRotateAddMatchesTwoPass pins the fused medium kernel to its
// unfused reference — convolve into scratch, rotate, accumulate —
// bit-exactly: acc·rot associates identically to conv[i]·rot, so the
// fusion must not change a single bit, for the unrolled 4-tap path and
// the general-tap path, across every window placement.
func TestConvolveRotateAddMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	randv := func(n int) []complex128 {
		out := make([]complex128, n)
		for i := range out {
			out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return out
	}
	for _, nh := range []int{1, 3, 4, 7} {
		x := randv(50)
		h := randv(nh)
		full := Convolve(x, h)
		rot0 := cmplx.Exp(complex(0, 0.3))
		step := cmplx.Exp(complex(0, 0.01))
		for _, win := range [][2]int{{0, len(full)}, {0, 10}, {5, 20}, {len(full) - 7, len(full)}, {13, 13}} {
			lo, hi := win[0], win[1]
			want := randv(hi - lo)
			got := append([]complex128(nil), want...)
			// Reference: two-pass on the same window.
			rot := rot0
			for k := lo; k < hi; k++ {
				want[k-lo] += full[k] * rot
				rot *= step
			}
			ConvolveRotateAdd(got, x, h, lo, rot0, step)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("nh=%d window [%d,%d) sample %d: fused %v != two-pass %v", nh, lo, hi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestConvolveRotateAddWindowBounds(t *testing.T) {
	x, h := make([]complex128, 10), make([]complex128, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range window did not panic")
		}
	}()
	ConvolveRotateAdd(make([]complex128, 5), x, h, 9, 1, 1) // 9+5 > 13
}
