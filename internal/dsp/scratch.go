package dsp

import "sync"

// planCache holds one immutable FFTPlan per transform size. An FFTPlan is
// read-only after construction (Forward/Inverse only read its tables), so a
// cached plan may be shared by any number of goroutines; the cache itself is
// guarded by a mutex. PlanFor exists so per-symbol code paths never rebuild
// twiddle tables: plan construction allocates, transforms do not.
var planCache = struct {
	sync.Mutex
	m map[int]*FFTPlan
}{m: make(map[int]*FFTPlan)}

// PlanFor returns the shared FFT plan for size n (a power of two ≥ 2),
// building and caching it on first use. The returned plan must be treated
// as read-only; it is safe for concurrent use.
func PlanFor(n int) (*FFTPlan, error) {
	planCache.Lock()
	defer planCache.Unlock()
	if p := planCache.m[n]; p != nil {
		return p, nil
	}
	p, err := NewFFTPlan(n)
	if err != nil {
		return nil, err
	}
	planCache.m[n] = p
	return p, nil
}

// MustPlanFor is PlanFor for compile-time-constant sizes.
func MustPlanFor(n int) *FFTPlan {
	p, err := PlanFor(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Scratch is a grow-only arena of complex128 buffers for hot signal paths.
// Complex hands out zeroed buffers in call order; Reset recycles every
// buffer at once. After the first cycle with a given call pattern the arena
// allocates nothing: each Complex call reuses the block the same call got
// last cycle (blocks grow monotonically when a cycle asks for more).
//
// Buffers are only valid until the next Reset — callers must copy anything
// that outlives the cycle. A Scratch is not safe for concurrent use; the
// intended ownership is one Scratch per simulated network, which keeps
// independent networks goroutine-independent.
type Scratch struct {
	blocks [][]complex128
	next   int
}

// Complex returns a zeroed buffer of length n, valid until Reset.
func (s *Scratch) Complex(n int) []complex128 {
	if s.next < len(s.blocks) && cap(s.blocks[s.next]) >= n {
		b := s.blocks[s.next][:n]
		s.next++
		for i := range b {
			b[i] = 0
		}
		return b
	}
	b := make([]complex128, n)
	if s.next < len(s.blocks) {
		s.blocks[s.next] = b
	} else {
		s.blocks = append(s.blocks, b)
	}
	s.next++
	return b
}

// Reset recycles every buffer handed out since the last Reset. All slices
// previously returned by Complex become invalid.
func (s *Scratch) Reset() { s.next = 0 }

// Live reports how many buffers are checked out in the current cycle
// (diagnostics and tests).
func (s *Scratch) Live() int { return s.next }
