package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for i, v := range x {
			ang := -2 * math.Pi * float64(k*i) / float64(n)
			acc += v * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	return out
}

func randSignal(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 128} {
		x := randSignal(r, n)
		got := FFT(x)
		want := naiveDFT(x)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 64, 1024} {
		x := randSignal(r, n)
		back := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d round trip [%d]: %v != %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randSignal(r, 64)
	want := FFT(x)
	p := MustFFTPlan(64)
	buf := append([]complex128(nil), x...)
	p.Forward(buf, buf)
	for i := range buf {
		if cmplx.Abs(buf[i]-want[i]) > 1e-9 {
			t.Fatalf("in-place FFT differs at %d", i)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 64)
	x[0] = 1
	for i, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	n := 64
	x := make([]complex128, n)
	k0 := 5
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k0*i)/float64(n)))
	}
	got := FFT(x)
	for k, v := range got {
		want := complex128(0)
		if k == k0 {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-8 {
			t.Fatalf("tone bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := randSignal(r, 256)
	X := FFT(x)
	var et, ef float64
	for i := range x {
		et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		ef += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
	}
	if math.Abs(ef/float64(len(x))-et) > 1e-6*et {
		t.Fatalf("Parseval violated: time %v freq/N %v", et, ef/float64(len(x)))
	}
}

func TestNewFFTPlanRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100} {
		if _, err := NewFFTPlan(n); err == nil {
			t.Fatalf("NewFFTPlan(%d) accepted", n)
		}
	}
}

// Property: linearity of the transform.
func TestQuickFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randSignal(r, 64), randSignal(r, 64)
		a := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, 64)
		for i := range sum {
			sum[i] = x[i] + a*y[i]
		}
		fs := FFT(sum)
		fx, fy := FFT(x), FFT(y)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fx[i]+a*fy[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: circular time shift is a per-bin phase ramp in frequency.
func TestQuickFFTShiftTheorem(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		x := randSignal(r, n)
		s := 1 + r.Intn(n-1)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i+s)%n]
		}
		fx, fsh := FFT(x), FFT(shifted)
		for k := range fx {
			ramp := cmplx.Exp(complex(0, 2*math.Pi*float64(k*s)/float64(n)))
			if cmplx.Abs(fsh[k]-fx[k]*ramp) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFFT64(b *testing.B) {
	p := MustFFTPlan(64)
	x := randSignal(rand.New(rand.NewSource(1)), 64)
	dst := make([]complex128, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	p := MustFFTPlan(1024)
	x := randSignal(rand.New(rand.NewSource(1)), 1024)
	dst := make([]complex128, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, x)
	}
}
