package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestSpectrumSingleTone(t *testing.T) {
	n := 4096
	x := make([]complex128, n)
	k0 := 10
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*float64(k0*i)/64))
	}
	psd, err := Spectrum(x, 64)
	if err != nil {
		t.Fatal(err)
	}
	best, bestP := -1, 0.0
	for i, p := range psd {
		if p > bestP {
			best, bestP = i, p
		}
	}
	if best != k0 {
		t.Fatalf("tone peak at bin %d, want %d", best, k0)
	}
	// Hann leakage: bins far away must be tens of dB down.
	if psd[32] > bestP*1e-4 {
		t.Fatalf("far-bin leakage too high: %v vs peak %v", psd[32], bestP)
	}
}

func TestSpectrumWhiteNoiseIsFlat(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := make([]complex128, 1<<15)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	psd, err := Spectrum(x, 64)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, p := range psd {
		mean += p
	}
	mean /= float64(len(psd))
	for i, p := range psd {
		if p < mean*0.6 || p > mean*1.6 {
			t.Fatalf("noise PSD bin %d = %v vs mean %v", i, p, mean)
		}
	}
}

func TestSpectrumRejectsBadSize(t *testing.T) {
	if _, err := Spectrum(make([]complex128, 100), 63); err == nil {
		t.Fatal("non-power-of-two size accepted")
	}
}

func TestSpectrumShortInputPadded(t *testing.T) {
	psd, err := Spectrum(make([]complex128, 10), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(psd) != 64 {
		t.Fatalf("len %d", len(psd))
	}
}

func TestOccupiedBandwidth(t *testing.T) {
	// All power at logical bin +3.
	psd := make([]float64, 64)
	psd[3] = 1
	if got := OccupiedBandwidth(psd, 2); got != 0 {
		t.Fatalf("OBW(2) = %v", got)
	}
	if got := OccupiedBandwidth(psd, 3); got != 1 {
		t.Fatalf("OBW(3) = %v", got)
	}
	// Negative logical bin −5 lives at index 64−5.
	psd2 := make([]float64, 64)
	psd2[59] = 1
	if got := OccupiedBandwidth(psd2, 5); got != 1 {
		t.Fatalf("OBW negative bin = %v", got)
	}
	if OccupiedBandwidth(nil, 3) != 0 {
		t.Fatal("empty PSD")
	}
}

func TestOFDMSignalOccupiesExpectedBand(t *testing.T) {
	// An OFDM frame's energy must live inside ±26 subcarriers — the
	// diagnostic this function exists for.
	r := rand.New(rand.NewSource(2))
	x := randSignal(r, 64)
	// Synthesize a crude multicarrier signal on bins ±1..±20.
	n := 8192
	sig := make([]complex128, n)
	for k := -20; k <= 20; k++ {
		if k == 0 {
			continue
		}
		amp := complex(r.NormFloat64(), r.NormFloat64())
		for i := 0; i < n; i++ {
			sig[i] += amp * cmplx.Exp(complex(0, 2*math.Pi*float64(k*i)/64))
		}
	}
	_ = x
	psd, err := Spectrum(sig, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := OccupiedBandwidth(psd, 22); got < 0.98 {
		t.Fatalf("in-band fraction %v", got)
	}
}
