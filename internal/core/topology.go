package core

import (
	"fmt"
	"math"

	"megamimo/internal/channel"
	"megamimo/internal/geom"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// TopologyConfig builds a network from physical geometry instead of target
// SNR bands: AP and client positions come from the paper's conference-room
// layout (Fig. 5), link gains from log-distance path loss with shadowing,
// and propagation delays from the actual distances.
type TopologyConfig struct {
	// Base carries everything except the link budget (SNRRangeDB,
	// LinkSpreadDB and WellConditioned are ignored).
	Base Config
	// Room is the deployment area; zero value uses geom.ConferenceRoom.
	Room geom.Room
	// PathLoss is the propagation model; zero value uses geom.DefaultIndoor.
	PathLoss geom.PathLoss
	// TxPowerDBm and NoiseFloorDBm set the link budget ends.
	TxPowerDBm, NoiseFloorDBm units.Decibels
}

// NewFromTopology samples a placement and builds the network with
// geometry-derived links. The returned topology reports the positions and
// per-link SNRs actually drawn.
func NewFromTopology(tc TopologyConfig) (*Network, *geom.Topology, error) {
	cfg := tc.Base
	if cfg.NumAPs < 1 || cfg.NumClients < 1 {
		return nil, nil, fmt.Errorf("core: need at least one AP and one client")
	}
	room := tc.Room
	if room.Width == 0 {
		room = geom.ConferenceRoom
	}
	pl := tc.PathLoss
	if pl.RefLossDB == 0 {
		pl = geom.DefaultIndoor
	}
	if tc.TxPowerDBm == 0 {
		tc.TxPowerDBm = 20
	}
	if tc.NoiseFloorDBm == 0 {
		tc.NoiseFloorDBm = -90
	}
	// Build the network with a placeholder band; then overwrite every
	// AP→client link with the geometry-derived one.
	cfg.SNRRangeDB = [2]units.Decibels{15, 16}
	cfg.WellConditioned = false
	n, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	src := rng.New(n.Cfg.Seed).Split(0x6E01)
	top := geom.SampleTopology(src, room, pl, n.Cfg.NumAPs, n.Cfg.NumClients)
	for c := 0; c < n.Cfg.NumClients; c++ {
		for a := 0; a < n.Cfg.NumAPs; a++ {
			snr := top.SNRdB(pl, c, a, tc.TxPowerDBm, tc.NoiseFloorDBm)
			gain := n.Cfg.NoiseVar * units.DBToLinear(snr)
			delay := int(math.Round(units.Ratio(top.PropagationDelaySamples(c, a, n.Cfg.SampleRate), 1)))
			for am := 0; am < n.Cfg.AntennasPerAP; am++ {
				for cm := 0; cm < n.Cfg.AntennasPerClient; cm++ {
					l := channel.NewLink(src.Split(linkSeed(a, am, c, cm)^0xF00), n.Cfg.ChannelParams, gain, delay)
					n.Air.SetLink(n.APAntennaID(a, am), n.ClientAntennaID(c, cm), l)
				}
			}
		}
	}
	return n, top, nil
}
