package core

import (
	"math/rand"
	"testing"

	"megamimo/internal/matrix"
)

// randomMeasurement builds a synthetic measurement with iid Gaussian
// channel entries on nbins bins.
func randomMeasurement(rng *rand.Rand, nbins, streams, txAnts int) *Measurement {
	m := &Measurement{
		Bins: make([]int, nbins),
		H:    make([]*matrix.M, nbins),
	}
	for b := 0; b < nbins; b++ {
		m.Bins[b] = b + 1
		h := matrix.New(streams, txAnts)
		for i := range h.Data {
			h.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		m.H[b] = h
	}
	return m
}

// perturb returns a copy of m with every channel entry nudged by a
// Gaussian delta of the given scale — the "small per-round drift" the
// incremental precoder is built for.
func perturb(rng *rand.Rand, m *Measurement, scale float64) *Measurement {
	out := &Measurement{Bins: m.Bins, H: make([]*matrix.M, len(m.H))}
	for b, h := range m.H {
		nh := h.Clone()
		for i := range nh.Data {
			nh.Data[i] += complex(scale*rng.NormFloat64(), scale*rng.NormFloat64())
		}
		out.H[b] = nh
	}
	return out
}

// maxWeightDiff returns the largest entry-wise |a-b| across all bins.
func maxWeightDiff(t *testing.T, a, b *Precoder) float64 {
	t.Helper()
	if len(a.W) != len(b.W) {
		t.Fatalf("precoder bin counts differ: %d vs %d", len(a.W), len(b.W))
	}
	var worst float64
	for i := range a.W {
		wa, wb := a.W[i], b.W[i]
		if len(wa.Data) != len(wb.Data) {
			t.Fatalf("bin %d weight shapes differ", i)
		}
		for k := range wa.Data {
			d := wa.Data[k] - wb.Data[k]
			if m := real(d)*real(d) + imag(d)*imag(d); m > worst*worst {
				worst = mathSqrtTest(m)
			}
		}
	}
	return worst
}

func mathSqrtTest(x float64) float64 {
	// Newton is plenty here and avoids importing math for one call.
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		g = 0.5 * (g + x/g)
	}
	return g
}

// TestZFCacheMatchesFullReinversion is the Sherman–Morrison property test:
// across a sequence of random small channel deltas, the incrementally
// updated precoder matches a full ComputeZF re-inversion within 1e-9.
func TestZFCacheMatchesFullReinversion(t *testing.T) {
	for _, shape := range []struct{ streams, txAnts int }{{3, 3}, {3, 5}, {4, 8}} {
		rng := rand.New(rand.NewSource(7))
		c := NewZFCache()
		m := randomMeasurement(rng, 12, shape.streams, shape.txAnts)
		const lambda = 0.01
		if _, err := c.Compute(m, lambda); err != nil {
			t.Fatalf("%dx%d: initial compute: %v", shape.streams, shape.txAnts, err)
		}
		for round := 0; round < 20; round++ {
			m = perturb(rng, m, 0.01)
			inc, err := c.Compute(m, lambda)
			if err != nil {
				t.Fatalf("%dx%d round %d: incremental compute: %v", shape.streams, shape.txAnts, round, err)
			}
			full, err := ComputeZF(m, lambda)
			if err != nil {
				t.Fatalf("%dx%d round %d: full compute: %v", shape.streams, shape.txAnts, round, err)
			}
			if d := maxWeightDiff(t, inc, full); d > 1e-9 {
				t.Fatalf("%dx%d round %d: incremental precoder drifted %.3g from full re-inversion", shape.streams, shape.txAnts, round, d)
			}
		}
		e := c.entries[zfFullMask]
		if e.incrementalBins == 0 {
			t.Fatalf("%dx%d: no bin ever took the incremental path", shape.streams, shape.txAnts)
		}
		// The initial compute pays one full inversion per bin; the 20 small
		// perturbation rounds should almost all ride rank-1 updates.
		if e.fullInversions > len(m.H)+e.incrementalBins/4 {
			t.Fatalf("%dx%d: %d full inversions vs %d incremental bins — cache not amortizing", shape.streams, shape.txAnts, e.fullInversions, e.incrementalBins)
		}
	}
}

// TestZFCacheLargeDriftFallsBack forces the drift gate: replacing the
// channel wholesale must re-invert every bin rather than trust
// Sherman–Morrison far outside its small-delta regime.
func TestZFCacheLargeDriftFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewZFCache()
	m := randomMeasurement(rng, 8, 3, 5)
	if _, err := c.Compute(m, 0); err != nil {
		t.Fatal(err)
	}
	before := c.entries[zfFullMask].fullInversions
	m2 := randomMeasurement(rng, 8, 3, 5) // a completely new draw
	p, err := c.Compute(m2, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := c.entries[zfFullMask]
	if e.fullInversions != before+len(m2.H) {
		t.Fatalf("wholesale channel change re-inverted %d bins, want all %d", e.fullInversions-before, len(m2.H))
	}
	full, err := ComputeZF(m2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxWeightDiff(t, p, full); d > 1e-12 {
		t.Fatalf("fallback precoder differs from ComputeZF by %.3g", d)
	}
}

// TestShermanMorrisonConditioningFallback drives the update kernel into a
// denominator below zfCondFloor — a delta that steers the Gram matrix
// toward singularity — and checks it refuses and leaves the inverse
// untouched.
func TestShermanMorrisonConditioningFallback(t *testing.T) {
	// Rows (1,0) and (1,eps) are nearly parallel; moving row 1 to
	// (1, eps·kappa) multiplies det(G) by ~kappa², so the Sherman–Morrison
	// denominator lands at ~kappa — far below the conditioning floor.
	const eps, kappa = 1e-2, 1e-8
	hOld := matrix.New(2, 2)
	hOld.Set(0, 0, 1)
	hOld.Set(1, 0, 1)
	hOld.Set(1, 1, complex(eps, 0))
	hNew := hOld.Clone()
	hNew.Set(1, 1, complex(eps*kappa, 0))

	gi, err := gram(hOld, 0).Inverse()
	if err != nil {
		t.Fatal(err)
	}
	snapshot := gi.Clone()
	updates := 0
	if shermanMorrison(gi, hOld, hNew, &updates) {
		t.Fatal("near-singular update was accepted; want conditioning fallback")
	}
	if updates != 0 {
		t.Fatalf("refused update still counted %d corrections", updates)
	}
	for i := range gi.Data {
		if gi.Data[i] != snapshot.Data[i] {
			t.Fatal("refused update modified the cached inverse")
		}
	}
	// Sanity: the drift gate alone would have let this delta through.
	var driftSq, normSq float64
	for i, v := range hOld.Data {
		d := hNew.Data[i] - v
		driftSq += real(d)*real(d) + imag(d)*imag(d)
		normSq += real(v)*real(v) + imag(v)*imag(v)
	}
	if driftSq > zfDriftLimit*zfDriftLimit*normSq {
		t.Fatal("test delta trips the drift gate; it no longer exercises the conditioning floor")
	}
}

// TestZFCacheMaskedEntries exercises the unified degraded-weight path: the
// same cache serves per-mask rebuilds and keeps them incremental across
// measurements.
func TestZFCacheMaskedEntries(t *testing.T) {
	cfg := DefaultConfig(4, 4, 18, 24)
	cfg.Seed = 3
	cfg.WellConditioned = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	if err := n.CrashAP(2); err != nil {
		t.Fatal(err)
	}
	mask, full := n.participationMask()
	if mask == full {
		t.Fatal("crash did not change the participation mask")
	}
	mw1, err := n.weightsForMask(mask)
	if err != nil {
		t.Fatal(err)
	}
	// Same measurement, same mask: the cached maskedWeights comes back.
	mw2, err := n.weightsForMask(mask)
	if err != nil {
		t.Fatal(err)
	}
	if mw1 != mw2 {
		t.Fatal("repeated degraded lookup rebuilt instead of hitting the cache")
	}
	if e := n.zf.entries[mask]; e == nil {
		t.Fatal("degraded rebuild did not land in the unified ZF cache")
	}
	// A fresh measurement invalidates the built weights but keeps the
	// entry, so the rebuild can update incrementally. (Measuring needs
	// every AP on the air, so bounce the crash around it.)
	if err := n.RestartAP(2); err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	if err := n.CrashAP(2); err != nil {
		t.Fatal(err)
	}
	mw3, err := n.weightsForMask(mask)
	if err != nil {
		t.Fatal(err)
	}
	if mw3 == mw1 {
		t.Fatal("degraded weights not rebuilt after a fresh measurement")
	}
}
