package core

import (
	"math/cmplx"
	"testing"

	"megamimo/internal/rng"
)

// TestWirelessFeedbackMatchesBackbone: the uplink-delivered H must agree
// with the Ethernet-delivered H to float32 wire precision (same estimation
// path, same values).
func TestWirelessFeedbackMatchesBackbone(t *testing.T) {
	build := func(wireless bool) *Network {
		cfg := DefaultConfig(2, 2, 20, 25)
		cfg.Seed = 130
		cfg.WirelessFeedback = wireless
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Measure(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	eth := build(false)
	air := build(true)
	for i := range eth.Msmt.H {
		for r := 0; r < eth.Msmt.H[i].Rows; r++ {
			for c := 0; c < eth.Msmt.H[i].Cols; c++ {
				a, b := eth.Msmt.H[i].At(r, c), air.Msmt.H[i].At(r, c)
				if cmplx.Abs(a-b) > 1e-5 {
					t.Fatalf("bin %d H[%d][%d]: %v vs %v", eth.Msmt.Bins[i], r, c, a, b)
				}
			}
		}
	}
}

// TestWirelessFeedbackEndToEnd: full protocol including the real CSI
// uplink still beamforms.
func TestWirelessFeedbackEndToEnd(t *testing.T) {
	cfg := DefaultConfig(3, 3, 18, 24)
	cfg.Seed = 131
	cfg.WellConditioned = true
	cfg.WirelessFeedback = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	mcs, ok, err := n.ProbeAndSelectRate(300)
	if err != nil || !ok {
		t.Fatalf("rate: %v %v", ok, err)
	}
	src := rng.New(7)
	payloads := [][]byte{
		src.Bytes(make([]byte, 400)),
		src.Bytes(make([]byte, 400)),
		src.Bytes(make([]byte, 400)),
	}
	res, err := n.JointTransmit(payloads, mcs)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, okj := range res.OK {
		if okj {
			delivered++
		}
	}
	if delivered < 2 {
		t.Fatalf("only %d/3 streams after wireless-feedback measurement", delivered)
	}
}

// TestUplinkReciprocity: the uplink link object is the downlink one.
func TestUplinkReciprocity(t *testing.T) {
	cfg := DefaultConfig(2, 2, 18, 24)
	cfg.Seed = 132
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	down := n.Air.Link(n.APAntennaID(1, 0), n.ClientAntennaID(0, 0))
	up := n.Air.Link(n.ClientAntennaID(0, 0), n.APAntennaID(1, 0))
	if down == nil || up == nil || down != up {
		t.Fatal("uplink is not the reciprocal downlink object")
	}
}

// TestCSIQuantizationKnob: moderate fixed-point CSI must not break the
// joint beamforming on the main measurement path.
func TestCSIQuantizationKnob(t *testing.T) {
	cfg := DefaultConfig(3, 3, 18, 24)
	cfg.Seed = 133
	cfg.WellConditioned = true
	cfg.CSIQuantBits = 7
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	mcs, ok, err := n.ProbeAndSelectRate(300)
	if err != nil || !ok {
		t.Fatalf("rate: %v %v", ok, err)
	}
	src := rng.New(11)
	payloads := [][]byte{
		src.Bytes(make([]byte, 400)),
		src.Bytes(make([]byte, 400)),
		src.Bytes(make([]byte, 400)),
	}
	res, err := n.JointTransmit(payloads, mcs)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, okj := range res.OK {
		if okj {
			delivered++
		}
	}
	if delivered < 2 {
		t.Fatalf("only %d/3 streams with 7-bit CSI", delivered)
	}
}
