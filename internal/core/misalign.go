package core

import (
	"fmt"
	"math/cmplx"

	"megamimo/internal/cmplxs"
	"megamimo/internal/ofdm"
	"megamimo/internal/units"
)

// MeasureMisalignment reproduces the §11.1(b) experiment: the lead and the
// first slave alternate OFDM symbols at a receiver, with the slave running
// its full distributed phase correction before joining. The receiver
// estimates both channels each round and tracks the relative phase; the
// deviation from the first round is the phase misalignment the paper
// histograms in Fig. 7 (median 0.017 rad, p95 0.05 rad).
//
// gapSamples idles between rounds (oscillators keep drifting), and the
// returned slice holds one |deviation| per round after the first.
func (n *Network) MeasureMisalignment(rounds int, gapSamples int64) ([]float64, error) {
	if len(n.APs) < 2 || len(n.Clients) < 1 {
		return nil, fmt.Errorf("core: misalignment needs 2 APs and a client")
	}
	slave := n.Slaves()[0]
	if slave.syncTo(n.Lead().Index).Ref == nil {
		return nil, fmt.Errorf("core: run Measure first")
	}
	lead := n.Lead()
	cl := n.Clients[0]
	train := symbolWave()
	dem := ofdm.NewDemodulator()
	bins := occupiedBins()

	var refProd []complex128
	haveRef := false
	var out []float64
	// Round-loop scratch, fully rewritten every round.
	mod := ofdm.NewModulator()
	g := make([]complex128, ofdm.NFFT)
	sw := make([]complex128, ofdm.SymbolLen)
	slaveWave := make([]complex128, ofdm.SymbolLen)
	for r := 0; r < rounds; r++ {
		// Lead sync header; slave derives its correction exactly as it
		// would for a data transmission.
		t1 := n.now + 64
		n.Air.Transmit(n.APAntennaID(lead.Index, 0), lead.Node.Osc, t1, ofdm.Preamble())
		c, err := n.slaveMeasureRatio(slave, t1)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", r, err)
		}
		n.trace(c.At, KindSlaveRatio,
			TraceAttrs{AP: slave.Index, PhaseErrRad: c.Residual, CFORadPerSample: c.CFO},
			"misalignment round %d", r)

		// Alternating symbol pairs (§11.1b: "each transmitter's
		// transmission consists of pairs of an OFDM symbol followed by an
		// OFDM symbol length of silence", offset by one symbol): the lead
		// occupies even slots, the corrected slave odd slots, for `pairs`
		// repetitions averaged at the receiver.
		const pairs = 4
		tA := t1 + int64(ofdm.PreambleLen) + int64(n.Cfg.TriggerDelaySamples)
		// Slave symbol with the per-bin ratio applied in frequency domain.
		freq := ltfRef()
		for i := range g {
			g[i] = freq[i] * c.Ratio[i]
		}
		if err := mod.RawSymbolInto(sw, g); err != nil {
			return nil, err
		}
		for k := 0; k < pairs; k++ {
			tL := tA + int64(2*k*ofdm.SymbolLen)
			tS := tL + int64(ofdm.SymbolLen)
			n.Air.Transmit(n.APAntennaID(lead.Index, 0), lead.Node.Osc, tL, train)
			phase0 := units.PhaseAdvance(c.CFO, units.Samples((tS-c.At)+(c.RefAt-n.Msmt.RefMid)))
			// Air.Transmit copies, so the rotated wave can reuse one buffer.
			cmplxs.Rotate(slaveWave, sw, phase0, c.CFO)
			n.Air.Transmit(n.APAntennaID(slave.Index, 0), slave.Node.Osc, tS, slaveWave)
		}

		// Receiver: estimate both channels per pair and form the per-bin
		// product p[b] = ĥ_slave·conj(ĥ_lead), averaged across pairs. The
		// deviation versus round 0 is measured per bin and combined
		// coherently — comparing the scalar sum Σp[b] across rounds would
		// lose accuracy whenever the two channels' delay difference sweeps
		// the product phase across the band and the sum nearly cancels.
		win := n.Air.Observe(n.ClientAntennaID(cl.Index, 0), cl.Node.Osc, tA, 2*pairs*ofdm.SymbolLen+32)
		//lint:ignore hotalloc round 0's product is retained as refProd across all later rounds
		prod := make([]complex128, ofdm.NFFT)
		for k := 0; k < pairs; k++ {
			fLead, err := dem.Freq(win[2*k*ofdm.SymbolLen:])
			if err != nil {
				return nil, err
			}
			fSlave, err := dem.Freq(win[(2*k+1)*ofdm.SymbolLen:])
			if err != nil {
				return nil, err
			}
			for _, b := range bins {
				prod[b] += fSlave[b] * cmplx.Conj(fLead[b])
			}
		}
		if !haveRef {
			refProd = prod
			haveRef = true
		} else {
			var acc complex128
			for _, b := range bins {
				acc += prod[b] * cmplx.Conj(refProd[b])
			}
			dev := cmplx.Phase(acc)
			if dev < 0 {
				dev = -dev
			}
			out = append(out, dev)
		}
		n.now = tA + int64(2*pairs*ofdm.SymbolLen) + 256 + gapSamples
		n.Air.ClearBefore(n.now)
	}
	return out, nil
}
