package core

import (
	"fmt"
	"strings"
	"sync"

	"megamimo/internal/metrics"
	"megamimo/internal/units"
)

// Trace event kinds: the closed vocabulary of the protocol timeline.
// Kind values are part of the versioned trace format (tracefmt.SchemaVersion;
// megamimo-trace and the CI trace-smoke gate key on them), so they are
// exported constants rather than ad-hoc strings, and the tracer rejects —
// and counts — anything outside the set.
const (
	// KindMeasure marks channel-measurement protocol steps (§5.1); the
	// whole measurement phase is one span of this kind.
	KindMeasure = "measure"
	// KindSyncHeader marks the lead AP's sync-header emission (§5.2).
	KindSyncHeader = "sync-header"
	// KindSlaveRatio marks a slave's phase-correction measurement (§5.2b).
	// Its attrs carry the phase-sync telemetry: the residual phase error
	// (innovation against the long-term CFO prediction) and the current
	// CFO estimate toward the lead.
	KindSlaveRatio = "slave-ratio"
	// KindJointTx spans a joint data transmission (§5.2c) from sync header
	// to the end of the data frame.
	KindJointTx = "joint-tx"
	// KindDecode marks one client antenna's decode outcome with its
	// error-vector SNR telemetry.
	KindDecode = "decode"
	// KindFeedback marks CSI feedback traffic (§5.1b).
	KindFeedback = "feedback"
	// KindTraffic marks workload-engine run boundaries (internal/traffic).
	KindTraffic = "traffic"
	// KindMetrics marks telemetry snapshots (internal/metrics exports).
	KindMetrics = "metrics"
	// KindRound spans one MAC service round (internal/mac): grouping,
	// joint transmission, asynchronous ACK collection, queue update.
	KindRound = "round"
	// KindNullDepth marks a zero-forcing null-depth measurement at a
	// victim stream (§11.1c).
	KindNullDepth = "null-depth"
	// KindRetransmit marks a packet that was not ACKed, with its cause.
	KindRetransmit = "retransmit"
	// KindDemand marks workload arrivals entering (or drop-tailing at) the
	// shared queue (internal/traffic).
	KindDemand = "demand"
	// KindFault marks an injected or detected fault: AP crash, backend
	// loss/delay window, sync-header corruption, a slave abstaining from a
	// joint transmission, a degraded (N−1) round, client departure.
	KindFault = "fault"
	// KindRecovery marks the matching recovery: AP restart, lead
	// failover completing, client rejoin.
	KindRecovery = "recovery"
)

// validKinds is the closed set ValidKind and emit check against.
var validKinds = map[string]bool{
	KindMeasure:    true,
	KindSyncHeader: true,
	KindSlaveRatio: true,
	KindJointTx:    true,
	KindDecode:     true,
	KindFeedback:   true,
	KindTraffic:    true,
	KindMetrics:    true,
	KindRound:      true,
	KindNullDepth:  true,
	KindRetransmit: true,
	KindDemand:     true,
	KindFault:      true,
	KindRecovery:   true,
}

// ValidKind reports whether kind belongs to the trace vocabulary.
func ValidKind(kind string) bool { return validKinds[kind] }

// Kinds returns the full trace vocabulary in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(validKinds))
	for _, k := range []string{
		KindDecode, KindDemand, KindFault, KindFeedback, KindJointTx,
		KindMeasure, KindMetrics, KindNullDepth, KindRecovery,
		KindRetransmit, KindRound, KindSlaveRatio, KindSyncHeader,
		KindTraffic,
	} {
		out = append(out, k)
	}
	return out
}

// Event phases: instant events and span boundaries. The values follow the
// Chrome trace-event format so the exporter maps them directly.
const (
	// PhInstant is a point event.
	PhInstant byte = 'i'
	// PhBegin opens a span.
	PhBegin byte = 'B'
	// PhEnd closes a span.
	PhEnd byte = 'E'
)

// TraceAttrs is the fixed, machine-readable attribute block carried by
// every trace event — schema v1 of the flight-recorder format (described
// in DESIGN.md §8 and frozen by the tracefields lint analyzer; adding or
// retyping a field requires bumping tracefmt.SchemaVersion and the
// analyzer's schema table together).
//
// There is deliberately no map: the schema is closed so exports are
// byte-stable and tooling never discovers surprise keys. Fields are
// interpreted per kind — a consumer reads only the fields its event kind
// defines (e.g. PhaseErrRad on slave-ratio events, EVMSNRdB on decode
// events); everything else keeps its zero value.
type TraceAttrs struct {
	// AP is the access-point index the event concerns.
	AP int
	// Client is the client index the event concerns.
	Client int
	// Stream is the destination stream (client antenna) index.
	Stream int
	// Pkt is the MAC packet sequence number.
	Pkt int64
	// QueueDepth is the shared downlink queue occupancy.
	QueueDepth int
	// Bits counts payload bits involved in the event.
	Bits int64
	// PhaseErrRad is the residual phase error in radians: on slave-ratio
	// events, the innovation of the measured inter-oscillator phase
	// against the long-term CFO prediction — the quantity the paper's
	// π/18 nulling budget bounds.
	PhaseErrRad units.Radians
	// CFORadPerSample is a carrier-frequency-offset estimate in radians
	// per ether sample (slave→lead on slave-ratio events, residual after
	// correction on decode events).
	CFORadPerSample units.RadPerSample
	// EVMSNRdB is the post-equalization error-vector SNR in dB.
	EVMSNRdB units.Decibels
	// MinSubSNRdB is the worst per-subcarrier error-vector SNR in dB —
	// the compact per-subcarrier EVM summary (a collapsed null shows up
	// here first).
	MinSubSNRdB units.Decibels
	// NullDepthDB is the zero-forcing null depth in dB (−INR; larger is
	// deeper).
	NullDepthDB units.Decibels
	// OK flags the event's outcome (decode FCS, span success).
	OK bool
	// Cause names a failure or retransmit reason ("no-ack",
	// "max-attempts", "decode", "queue-cap").
	Cause string
}

// TraceEvent is one structured protocol event.
type TraceEvent struct {
	// Seq is the tracer-assigned emission sequence number (gap-free per
	// recording until the ring overflows; merged traces renumber).
	Seq int64
	// At is the ether sample time the event refers to.
	At int64
	// Kind is one of the Kind* constants above.
	Kind string
	// Ph is the event phase: PhInstant, PhBegin or PhEnd.
	Ph byte
	// Span ties the event to a span: for PhBegin/PhEnd it is the span's
	// own ID; for instants it is the innermost span open at emission time
	// (0 = none).
	Span int64
	// Attrs is the fixed typed attribute block.
	Attrs TraceAttrs
	// Msg is the optional human-readable detail.
	Msg string
}

// SpanID identifies one span within a recording; 0 is the null span.
type SpanID int64

// TraceSink receives a live copy of every event the Tracer records, in
// emission (seq) order, the moment it enters the ring. A sink turns the
// flight recorder from a post-hoc ring into a streaming pipeline: the ring
// keeps the bounded recent tail for end-of-run export while the sink sees
// the unbounded full stream (including events the ring later displaces).
//
// ConsumeTrace is called with the tracer's mutex held, from whatever
// goroutine emitted the event (a Network is single-threaded, so for one
// network that is one goroutine). Implementations must be fast, must not
// call back into the Tracer, and own their own synchronization if they
// are shared across tracers.
type TraceSink interface {
	ConsumeTrace(e TraceEvent)
}

// teeSink fans events out to several sinks in order.
type teeSink struct{ sinks []TraceSink }

func (t teeSink) ConsumeTrace(e TraceEvent) {
	for _, s := range t.sinks {
		s.ConsumeTrace(e)
	}
}

// TeeSinks combines sinks into one that forwards every event to each
// non-nil sink in argument order. Nil (and no) sinks collapse to nil.
func TeeSinks(sinks ...TraceSink) TraceSink {
	out := make([]TraceSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return teeSink{sinks: out}
}

// spanFrame is one open span on the tracer's stack.
type spanFrame struct {
	id   SpanID
	kind string
}

// Tracer is the flight recorder: a bounded ring of structured events. The
// zero value discards everything; call Enable to start recording. It is
// safe for concurrent use (parallel experiment workers may share one),
// though each Network normally owns its own.
type Tracer struct {
	mu       sync.Mutex
	enabled  bool
	limit    int
	buf      []TraceEvent
	head     int // oldest element once the ring is full
	seq      int64
	next     SpanID
	active   []spanFrame
	dropped  int64
	overflow int64

	// overflowAt is the ether time of the event whose arrival displaced
	// the first ring entry; hasOverflowAt distinguishes it from t=0.
	overflowAt    int64
	hasOverflowAt bool

	// sink, when set, receives every validated event as it is recorded.
	// It deliberately survives Enable: a long-lived streaming pipeline
	// keeps observing across recording resets (e.g. the chaos steady-tail
	// re-Enable), while the ring starts over.
	sink TraceSink

	// Optional observability-of-the-observer hooks, wired by the owning
	// Network to its metrics registry.
	dropCtr     *metrics.Counter
	overflowCtr *metrics.Counter
}

// Enable starts a fresh recording holding up to limit events (0 = 4096).
// When the ring fills, the oldest events are overwritten so the most
// recent `limit` events — the interesting tail — are always retained;
// Overflowed reports how many were displaced.
func (t *Tracer) Enable(limit int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if limit <= 0 {
		limit = 4096
	}
	t.enabled = true
	t.limit = limit
	t.buf = t.buf[:0]
	t.head = 0
	t.seq = 0
	t.next = 0
	t.active = t.active[:0]
	t.dropped = 0
	t.overflow = 0
	t.overflowAt = 0
	t.hasOverflowAt = false
}

// SetSink attaches (or with nil, detaches) a live event sink. The sink
// receives every validated event in seq order, including events the ring
// later displaces, and is invoked under the tracer's mutex — see the
// TraceSink contract. Unlike the ring, the sink survives Enable.
func (t *Tracer) SetSink(s TraceSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = s
}

// TracerState is the serializable part of the flight recorder: the event
// and span counters a resumed run must continue from so a streamed trace
// stays byte-identical across the checkpoint boundary. The ring buffer
// itself is deliberately not captured — the resumed ring restarts empty
// and only holds post-resume events; the streaming sink is the
// byte-identical surface.
type TracerState struct {
	Seq           int64 `json:"seq"`
	NextSpan      int64 `json:"next_span"`
	Dropped       int64 `json:"dropped,omitempty"`
	Overflow      int64 `json:"overflow,omitempty"`
	OverflowAt    int64 `json:"overflow_at,omitempty"`
	HasOverflowAt bool  `json:"has_overflow_at,omitempty"`
}

// Snapshot captures the tracer counters. It fails when any span is open:
// checkpoints are only taken at quiescent round boundaries, and a snapshot
// with a live span could never restore its matching End.
func (t *Tracer) Snapshot() (TracerState, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.active) > 0 {
		return TracerState{}, fmt.Errorf("core: tracer snapshot with %d open span(s); checkpoint only at round boundaries", len(t.active))
	}
	return TracerState{
		Seq:           t.seq,
		NextSpan:      int64(t.next),
		Dropped:       t.dropped,
		Overflow:      t.overflow,
		OverflowAt:    t.overflowAt,
		HasOverflowAt: t.hasOverflowAt,
	}, nil
}

// RestoreSnapshot overwrites the tracer counters and empties the ring, so
// the next recorded event continues the interrupted run's seq/span
// numbering exactly. The sink attachment is untouched (attach it after
// restoring, or the rebuild's events would leak into the stream).
func (t *Tracer) RestoreSnapshot(st TracerState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.buf[:0]
	t.head = 0
	t.active = t.active[:0]
	t.seq = st.Seq
	t.next = SpanID(st.NextSpan)
	t.dropped = st.Dropped
	t.overflow = st.Overflow
	t.overflowAt = st.OverflowAt
	t.hasOverflowAt = st.HasOverflowAt
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enabled
}

// Events returns a copy of the recorded timeline, oldest first.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	out = append(out, t.buf[:t.head]...)
	return out
}

// Dropped returns the number of events rejected for a kind outside the
// vocabulary — the observer's own error counter (also exported as the
// trace_dropped_total metric when the tracer belongs to a Network).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Overflowed returns the number of events displaced by ring wrap-around
// (also exported as the trace_overflow_total metric).
func (t *Tracer) Overflowed() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overflow
}

// FirstOverflowAt returns the ether time of the event whose arrival first
// displaced a ring entry, and whether an overflow has happened at all.
// Exports embed it in the trace Meta so a truncated recording states when
// its head was lost instead of failing silently.
func (t *Tracer) FirstOverflowAt() (int64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overflowAt, t.hasOverflowAt
}

// Emit records one instant event. Events with a kind outside the Kind*
// vocabulary are rejected and counted (Dropped, trace_dropped_total), so
// the timeline stays machine-parseable and the drop is visible. The
// message is formatted only when the tracer is enabled.
func (t *Tracer) Emit(at int64, kind string, a TraceAttrs, format string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(at, kind, PhInstant, 0, a, format, args...)
}

// BeginSpan opens a span and records its begin event. Instants emitted
// before the matching EndSpan attach to it. Returns 0 (a no-op handle)
// when the tracer is disabled or the kind is invalid.
func (t *Tracer) BeginSpan(at int64, kind string, a TraceAttrs, format string, args ...any) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled {
		return 0
	}
	if !validKinds[kind] {
		t.dropLocked()
		return 0
	}
	t.next++
	id := t.next
	t.active = append(t.active, spanFrame{id: id, kind: kind})
	t.recordLocked(at, kind, PhBegin, int64(id), a, format, args...)
	return id
}

// EndSpan closes a span opened by BeginSpan. EndSpan(0, …) is a no-op.
func (t *Tracer) EndSpan(id SpanID, at int64) {
	t.EndSpanAttrs(id, at, TraceAttrs{}, "")
}

// EndSpanAttrs closes a span and attaches outcome attributes to its end
// event.
func (t *Tracer) EndSpanAttrs(id SpanID, at int64, a TraceAttrs, format string, args ...any) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled {
		return
	}
	for i := len(t.active) - 1; i >= 0; i-- {
		if t.active[i].id != id {
			continue
		}
		kind := t.active[i].kind
		t.active = append(t.active[:i], t.active[i+1:]...)
		t.recordLocked(at, kind, PhEnd, int64(id), a, format, args...)
		return
	}
}

// emitLocked validates and records one instant, attaching the innermost
// open span.
func (t *Tracer) emitLocked(at int64, kind string, ph byte, span int64, a TraceAttrs, format string, args ...any) {
	if !t.enabled {
		return
	}
	if !validKinds[kind] {
		t.dropLocked()
		return
	}
	if span == 0 && len(t.active) > 0 {
		span = int64(t.active[len(t.active)-1].id)
	}
	t.recordLocked(at, kind, ph, span, a, format, args...)
}

// dropLocked counts one unknown-kind rejection.
func (t *Tracer) dropLocked() {
	t.dropped++
	if t.dropCtr != nil {
		t.dropCtr.Inc()
	}
}

// recordLocked appends one validated event to the ring.
func (t *Tracer) recordLocked(at int64, kind string, ph byte, span int64, a TraceAttrs, format string, args ...any) {
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	e := TraceEvent{Seq: t.seq, At: at, Kind: kind, Ph: ph, Span: span, Attrs: a, Msg: msg}
	t.seq++
	if len(t.buf) < t.limit {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.head] = e
		t.head = (t.head + 1) % t.limit
		t.overflow++
		if !t.hasOverflowAt {
			t.overflowAt = e.At
			t.hasOverflowAt = true
		}
		if t.overflowCtr != nil {
			t.overflowCtr.Inc()
		}
	}
	if t.sink != nil {
		t.sink.ConsumeTrace(e)
	}
}

// String renders one event for the human timeline (-trace).
func (e TraceEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-12d %-12s", e.At, e.Kind)
	switch e.Ph {
	case PhBegin:
		b.WriteString(" [begin")
	case PhEnd:
		b.WriteString(" [end")
	default:
		if e.Span > 0 {
			fmt.Fprintf(&b, " [in s%d]", e.Span)
		}
	}
	if e.Ph == PhBegin || e.Ph == PhEnd {
		fmt.Fprintf(&b, " s%d]", e.Span)
	}
	if e.Msg != "" {
		b.WriteString(" ")
		b.WriteString(e.Msg)
	}
	return b.String()
}

// MergeTraces concatenates per-cell recordings (e.g. one per parallel
// experiment cell, in cell-index order) into one timeline, renumbering
// sequence numbers and offsetting span IDs so they stay unique. The
// result depends only on the input order, never on worker scheduling.
func MergeTraces(cells ...[]TraceEvent) []TraceEvent {
	var total int
	for _, evs := range cells {
		total += len(evs)
	}
	out := make([]TraceEvent, 0, total)
	var seq, spanBase int64
	for _, evs := range cells {
		var maxSpan int64
		for _, e := range evs {
			if e.Span > maxSpan {
				maxSpan = e.Span
			}
			e.Seq = seq
			seq++
			if e.Span > 0 {
				e.Span += spanBase
			}
			out = append(out, e)
		}
		spanBase += maxSpan
	}
	return out
}

// Trace returns the network's tracer (always non-nil).
func (n *Network) Trace() *Tracer {
	if n.tracer == nil {
		n.initTracer()
	}
	return n.tracer
}

// initTracer builds the tracer with its self-observability counters.
func (n *Network) initTracer() {
	n.tracer = &Tracer{}
	if n.metrics != nil {
		n.tracer.dropCtr = n.metrics.Counter("trace_dropped_total")
		n.tracer.overflowCtr = n.metrics.Counter("trace_overflow_total")
	}
}

// trace emits one instant event from inside the protocol (nil-safe).
func (n *Network) trace(at int64, kind string, a TraceAttrs, format string, args ...any) {
	//lint:ignore tracefields forwarding wrapper; callers pass Kind* constants and Emit re-validates
	n.tracer.Emit(at, kind, a, format, args...)
}
