package core

import (
	"fmt"
	"sync"
)

// TraceEvent is one protocol event for diagnostics.
type TraceEvent struct {
	// At is the ether sample time the event refers to.
	At int64
	// Kind is a stable short identifier ("measure", "sync-header",
	// "slave-ratio", "joint-tx", "decode", "feedback").
	Kind string
	// Msg is the human-readable detail.
	Msg string
}

// Tracer collects protocol events. The zero value discards everything;
// call Enable to start recording. Network methods emit events through it,
// so a simulation run can be replayed as a timeline (megamimo-sim -trace).
type Tracer struct {
	mu      sync.Mutex
	enabled bool
	events  []TraceEvent
	limit   int
}

// Enable starts recording up to limit events (0 = 4096).
func (t *Tracer) Enable(limit int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if limit <= 0 {
		limit = 4096
	}
	t.enabled = true
	t.limit = limit
	t.events = t.events[:0]
}

// Events returns a copy of the recorded timeline.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

func (t *Tracer) emit(at int64, kind, format string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled || len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, TraceEvent{At: at, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// String renders the timeline.
func (e TraceEvent) String() string {
	return fmt.Sprintf("t=%-12d %-12s %s", e.At, e.Kind, e.Msg)
}

// Trace returns the network's tracer (always non-nil).
func (n *Network) Trace() *Tracer {
	if n.tracer == nil {
		n.tracer = &Tracer{}
	}
	return n.tracer
}

func (n *Network) tracef(at int64, kind, format string, args ...any) {
	if n.tracer != nil {
		n.tracer.emit(at, kind, format, args...)
	}
}
