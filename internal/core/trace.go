package core

import (
	"fmt"
	"sync"
)

// Trace event kinds: the closed vocabulary of the protocol timeline.
// Kind values are part of the trace format (megamimo-sim -trace filters
// and tooling key on them), so they are exported constants rather than
// ad-hoc strings, and the tracer rejects anything outside the set.
const (
	// KindMeasure marks channel-measurement protocol steps (§5.1).
	KindMeasure = "measure"
	// KindSyncHeader marks the lead AP's sync-header emission (§5.2).
	KindSyncHeader = "sync-header"
	// KindSlaveRatio marks a slave's phase-correction measurement (§5.2b).
	KindSlaveRatio = "slave-ratio"
	// KindJointTx marks a joint data transmission (§5.2c).
	KindJointTx = "joint-tx"
	// KindDecode marks client-side decode outcomes.
	KindDecode = "decode"
	// KindFeedback marks CSI feedback traffic (§5.1b).
	KindFeedback = "feedback"
	// KindTraffic marks workload-engine events (internal/traffic): run
	// boundaries, saturation onsets, queue-cap drops.
	KindTraffic = "traffic"
	// KindMetrics marks telemetry snapshots (internal/metrics exports).
	KindMetrics = "metrics"
)

// validKinds is the closed set ValidKind and emit check against.
var validKinds = map[string]bool{
	KindMeasure:    true,
	KindSyncHeader: true,
	KindSlaveRatio: true,
	KindJointTx:    true,
	KindDecode:     true,
	KindFeedback:   true,
	KindTraffic:    true,
	KindMetrics:    true,
}

// ValidKind reports whether kind belongs to the trace vocabulary.
func ValidKind(kind string) bool { return validKinds[kind] }

// TraceEvent is one protocol event for diagnostics.
type TraceEvent struct {
	// At is the ether sample time the event refers to.
	At int64
	// Kind is one of the Kind* constants above.
	Kind string
	// Msg is the human-readable detail.
	Msg string
}

// Tracer collects protocol events. The zero value discards everything;
// call Enable to start recording. Network methods emit events through it,
// so a simulation run can be replayed as a timeline (megamimo-sim -trace).
type Tracer struct {
	mu      sync.Mutex
	enabled bool
	events  []TraceEvent
	limit   int
}

// Enable starts recording up to limit events (0 = 4096).
func (t *Tracer) Enable(limit int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if limit <= 0 {
		limit = 4096
	}
	t.enabled = true
	t.limit = limit
	t.events = t.events[:0]
}

// Events returns a copy of the recorded timeline.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Emit records one event from outside the core package (the traffic
// engine and the metrics exporters use it). Events with a kind outside
// the Kind* vocabulary are rejected — silently dropped, never recorded —
// so the timeline stays machine-parseable.
func (t *Tracer) Emit(at int64, kind, format string, args ...any) {
	t.emit(at, kind, format, args...)
}

func (t *Tracer) emit(at int64, kind, format string, args ...any) {
	if t == nil || !validKinds[kind] {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled || len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, TraceEvent{At: at, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// String renders the timeline.
func (e TraceEvent) String() string {
	return fmt.Sprintf("t=%-12d %-12s %s", e.At, e.Kind, e.Msg)
}

// Trace returns the network's tracer (always non-nil).
func (n *Network) Trace() *Tracer {
	if n.tracer == nil {
		n.tracer = &Tracer{}
	}
	return n.tracer
}

func (n *Network) tracef(at int64, kind, format string, args ...any) {
	if n.tracer != nil {
		n.tracer.emit(at, kind, format, args...)
	}
}
