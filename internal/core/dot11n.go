package core

import (
	"fmt"
	"math/cmplx"

	"megamimo/internal/cmplxs"
	"megamimo/internal/csi"
	"megamimo/internal/ofdm"
	psync "megamimo/internal/sync"
	"megamimo/internal/units"
)

// MeasureDot11n runs the §6 channel-measurement procedure for
// off-the-shelf 802.11n clients, which cannot receive MegaMIMO's custom
// interleaved measurement packet. The network "tricks" each client into
// measuring two channels at a time with a series of two-stream soundings:
// every sounding carries the reference antenna (the lead's antenna 0) plus
// one other antenna, under an orthogonal ±1 cover across two training
// symbols (the HT-LTF structure). The repeated reference-antenna
// measurements give the client its own accumulated phase offset to the
// lead (Δφ(L1,R)); each slave measures its offset to the lead from the
// sounding's sync header (Δφ(L1,S)); their difference re-references every
// slave-antenna measurement to the first sounding's time — §6.2 verbatim.
//
// The combining at the client uses the client's single CFO estimate from
// the sync header, exactly like a real 802.11n receiver that believes one
// transmitter sent the packet; the residual slave-to-lead oscillator
// offset over the two-symbol cover is therefore part of the measured
// channel error, one reason the paper's 802.11n gains are 1.67–1.83×
// rather than the theoretical 2×.
func (n *Network) MeasureDot11n() error {
	lead := n.Lead()
	refAnt := lead.Index * n.Cfg.AntennasPerAP // global index of L1
	totalAnts := n.NumTxAntennas()
	if totalAnts < 2 {
		return fmt.Errorf("core: 802.11n measurement needs ≥ 2 antennas")
	}
	train := symbolWave()
	trainNeg := cmplxs.Scale(make([]complex128, len(train)), train, -1)
	ref := ltfRef()
	bins := occupiedBins()

	// Sounding slots: slot 0 pairs L1 with the next lead antenna (or, for
	// single-antenna leads, with the first slave antenna), later slots
	// cover the remaining antennas. Every slot also re-sounds L1.
	others := make([]int, 0, totalAnts-1)
	for g := 0; g < totalAnts; g++ {
		if g != refAnt {
			others = append(others, g)
		}
	}

	type clientState struct {
		hRef0  []complex128 // L1 channel at slot 0
		est    [][]complex128
		report *csi.Report
	}
	states := make(map[[2]int]*clientState)
	for _, cl := range n.Clients {
		for cm := 0; cm < n.Cfg.AntennasPerClient; cm++ {
			states[[2]int{cl.Index, cm}] = &clientState{
				est: make([][]complex128, totalAnts),
			}
		}
	}
	slaveDelta := make(map[int][]complex128) // AP index → ΔL1S per slot? folded below

	var t0Sym int64
	for slot, g := range others {
		apOwner := g / n.Cfg.AntennasPerAP
		antOfOwner := g % n.Cfg.AntennasPerAP
		tH := n.now + 64
		// Sync header from L1 (the legacy symbols of a mixed-mode frame).
		n.Air.Transmit(n.APAntennaID(lead.Index, 0), lead.Node.Osc, tH, ofdm.Preamble())

		// Slaves track their lead offset from the header.
		for _, ap := range n.Slaves() {
			if slot == 0 {
				if err := n.slaveCaptureHeaderReference(ap, tH); err != nil {
					return fmt.Errorf("slave %d header reference: %w", ap.Index, err)
				}
				slaveDelta[ap.Index] = unitVector()
			} else {
				c, err := n.slaveMeasureRatio(ap, tH)
				if err != nil {
					return fmt.Errorf("slave %d slot %d: %w", ap.Index, slot, err)
				}
				slaveDelta[ap.Index] = c.Ratio
			}
		}

		// Two-symbol orthogonal sounding: L1 sends [T, T]; antenna g sends
		// [T, −T].
		tS := tH + int64(ofdm.PreambleLen) + int64(n.Cfg.TriggerDelaySamples)
		if slot == 0 {
			t0Sym = tS
		}
		n.Air.Transmit(n.APAntennaID(lead.Index, 0), lead.Node.Osc, tS, train)
		n.Air.Transmit(n.APAntennaID(lead.Index, 0), lead.Node.Osc, tS+int64(ofdm.SymbolLen), train)
		ownerNode := n.APs[apOwner].Node
		n.Air.Transmit(n.APAntennaID(apOwner, antOfOwner), ownerNode.Osc, tS, train)
		n.Air.Transmit(n.APAntennaID(apOwner, antOfOwner), ownerNode.Osc, tS+int64(ofdm.SymbolLen), trainNeg)

		// Clients: estimate both channels from the sounding, then rotate
		// to slot 0 using the reference-antenna trick.
		for _, cl := range n.Clients {
			for cm := 0; cm < n.Cfg.AntennasPerClient; cm++ {
				st := states[[2]int{cl.Index, cm}]
				winStart := tH - winLead
				winLen := int(tS-winStart) + 2*ofdm.SymbolLen + 64
				win := n.Air.Observe(n.ClientAntennaID(cl.Index, cm), cl.Node.Osc, winStart, winLen)
				var cfo units.RadPerSample
				if sync, err := ofdm.Detect(win[:ofdm.PreambleLen+winLead+192], 0.5); err == nil {
					cfo = sync.CFO
				} else {
					// Deep-fade antenna: fall back to the trigger schedule
					// and a direct lag-64 CFO over the known LTF position
					// (noisy but unbiased; the reference-antenna rotation
					// only needs it within ambiguity bounds).
					cfo = lag64CFO(win, winLead+ofdm.STFLen+ofdm.LTFGuard)
				}
				symIdx := int(tS - winStart)
				h1, err := n.estimateSymbolChannel(win, symIdx, symIdx, cfo, ref, bins)
				if err != nil {
					return err
				}
				h2, err := n.estimateSymbolChannel(win, symIdx+ofdm.SymbolLen, symIdx, cfo, ref, bins)
				if err != nil {
					return err
				}
				//lint:ignore hotalloc retained in per-slot state (hRef0/est) across the measurement
				hRef := make([]complex128, ofdm.NFFT)
				//lint:ignore hotalloc retained in per-slot state (hRef0/est) across the measurement
				hOther := make([]complex128, ofdm.NFFT)
				for _, b := range bins {
					hRef[b] = (h1[b] + h2[b]) / 2
					hOther[b] = (h1[b] - h2[b]) / 2
				}
				ofdm.SmoothChannel(hRef)
				ofdm.SmoothChannel(hOther)
				if slot == 0 {
					st.hRef0 = hRef
					st.est[refAnt] = hRef
					st.est[g] = hOther
					continue
				}
				// Δφ(L1, R) between this slot and slot 0.
				deltaL1R := psync.FitRatio(hRef, st.hRef0)
				// Rotate the new antenna's channel back:
				// corrected = est · conj(ΔL1R) · ΔL1S (ΔL1S = 1 for lead
				// antennas — same oscillator as the reference).
				//lint:ignore hotalloc the corrected estimate is retained in st.est for the report
				corr := make([]complex128, ofdm.NFFT)
				var ds []complex128
				if apOwner != lead.Index {
					ds = slaveDelta[apOwner]
				}
				for _, b := range bins {
					c := cmplx.Conj(deltaL1R[b])
					if ds != nil {
						c *= ds[b]
					}
					corr[b] = hOther[b] * c
				}
				st.est[g] = corr
			}
		}
		n.now = tS + 2*int64(ofdm.SymbolLen) + 256
		n.Air.ClearBefore(n.now)
	}

	// Assemble CSI reports (the clients' firmware hands back H; the lead
	// already holds the slave deltas it used above).
	var reports []*csi.Report
	for _, cl := range n.Clients {
		for cm := 0; cm < n.Cfg.AntennasPerClient; cm++ {
			st := states[[2]int{cl.Index, cm}]
			rep := &csi.Report{
				Client:     cl.Index,
				RxAnt:      cm,
				TxAnts:     make([]int, totalAnts),
				H:          st.est,
				NoiseVar:   n.Cfg.NoiseVar,
				MeasuredAt: t0Sym,
			}
			for g := 0; g < totalAnts; g++ {
				rep.TxAnts[g] = n.APAntennaID(g/n.Cfg.AntennasPerAP, g%n.Cfg.AntennasPerAP)
			}
			if n.Cfg.CSIQuantBits > 0 {
				csi.QuantizeReport(rep, n.Cfg.CSIQuantBits)
			}
			reports = append(reports, rep)
		}
	}
	msmt, err := n.assembleMeasurement(t0Sym, reports)
	if err != nil {
		return err
	}
	msmt.RefMid = t0Sym
	n.Msmt = msmt
	return nil
}

// slaveCaptureHeaderReference is slaveCaptureReference for a bare sync
// header (no interleaved block): the reference channel and a coarse CFO
// come from the header alone; the precision-weighted tracker refines the
// CFO across subsequent slots.
func (n *Network) slaveCaptureHeaderReference(ap *AP, t0 int64) error {
	winStart := t0 - winLead
	win := n.Air.Observe(n.APAntennaID(ap.Index, 0), ap.Node.Osc, winStart, ofdm.PreambleLen+winLead+192)
	sync, err := ofdm.Detect(win, 0.5)
	if err != nil {
		return err
	}
	sync.LTFStart = winLead + ofdm.STFLen
	sync.PayloadStart = winLead + ofdm.PreambleLen
	h, err := ofdm.EstimateChannelLTF(win, sync)
	if err != nil {
		return err
	}
	ps := ap.syncTo(n.Lead().Index)
	// One-symbol baseline: the strategy seeds its precision weight as
	// Baseline².
	n.sync.Init(ps, psync.RefCapture{
		Ref:      h,
		RefAt:    winStart + ltfPhaseOffset,
		CFO:      sync.CFO,
		Baseline: float64(ofdm.NFFT),
	})
	return nil
}

// lag64CFO estimates the carrier offset from the two identical LTF
// repetitions at a known position, without detection.
func lag64CFO(win []complex128, ltf1 int) units.RadPerSample {
	if ltf1 < 0 || ltf1+2*ofdm.NFFT > len(win) {
		return 0
	}
	var acc complex128
	for i := 0; i < ofdm.NFFT; i++ {
		acc += win[ltf1+i] * cmplx.Conj(win[ltf1+ofdm.NFFT+i])
	}
	return units.RadiansOver(units.Radians(-cmplx.Phase(acc)), units.Samples(ofdm.NFFT))
}

// unitVector returns an all-ones per-bin vector on the occupied carriers.
func unitVector() []complex128 {
	out := make([]complex128, ofdm.NFFT)
	for _, b := range occupiedBins() {
		out[b] = 1
	}
	return out
}
