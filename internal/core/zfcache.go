package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"megamimo/internal/matrix"
)

// This file makes zero-forcing incremental. ComputeZF re-inverts every
// occupied bin from scratch; between consecutive measurements of the same
// network the channel rows drift by small deltas (oscillator phase, slow
// fading), so the Gram inverse of the previous round is one or two rank-1
// Sherman–Morrison updates away from the new one. A ZFCache keeps the
// per-bin inverses — for the full array and for every degraded
// participation mask — and updates them in place, falling back to a full
// re-inversion whenever the drift is large, the update count exceeds its
// error budget, or a Sherman–Morrison denominator signals that the update
// grazes singularity.

const (
	// zfMaxUpdates bounds the rank-1 updates accumulated per bin before a
	// full re-inversion refreshes the factorization; Sherman–Morrison error
	// compounds multiplicatively, so the budget keeps the incremental
	// inverse within a few ULPs of the direct one.
	zfMaxUpdates = 64
	// zfDriftLimit is the relative per-bin channel drift ‖ΔH‖/‖H‖ beyond
	// which the change is no longer an "update": a full inversion is both
	// cheaper than row-by-row corrections and numerically safer.
	zfDriftLimit = 0.25
	// zfCondFloor guards each Sherman–Morrison denominator 1 + yᴴG⁻¹x.
	// A magnitude below the floor means the updated Gram is close to
	// singular through this factorization path; the bin re-inverts fully.
	zfCondFloor = 1e-6
)

// zfEntry caches one participation mask's factorization state across
// measurements.
type zfEntry struct {
	// lambdaBits is the regularizer the inverses were built with, compared
	// bit-exactly: any change in λ invalidates the factorization.
	lambdaBits uint64
	h          []*matrix.M // per-bin channel the inverses correspond to
	gi         []*matrix.M // per-bin (H·Hᴴ + λI)⁻¹
	updates    []int       // rank-1 updates accumulated per bin
	pre        *Precoder   // precoder built from gi
	mw         *maskedWeights
	// builtFor identifies the measurement pre was assembled from, so
	// repeated precodes of an unchanged measurement are free. For masked
	// entries it points at the derived sub-measurement; src tracks the
	// network-level measurement that sub was extracted from.
	builtFor *Measurement
	src      *Measurement
	// fullInversions / incrementalBins count how bins were refreshed
	// (diagnostics and tests).
	fullInversions  int
	incrementalBins int
}

// ZFCache holds incremental zero-forcing state for one network: one entry
// per participation mask (zfFullMask for the whole array), unifying the
// steady-state precoder path with the N−1 degraded-round rebuilds that
// previously kept their own per-measurement cache.
type ZFCache struct {
	entries map[uint64]*zfEntry
}

// zfFullMask keys the full-participation entry.
const zfFullMask = ^uint64(0)

// NewZFCache returns an empty cache.
func NewZFCache() *ZFCache {
	return &ZFCache{entries: make(map[uint64]*zfEntry)}
}

// Compute returns the zero-forcing precoder for m, reusing the cached
// per-bin Gram inverses when the channel moved only slightly since the
// previous call. The result matches ComputeZF(m, lambda) to floating-point
// accuracy (the property tests bound the difference at 1e-9).
func (c *ZFCache) Compute(m *Measurement, lambda float64) (*Precoder, error) {
	e, err := c.entry(zfFullMask, m, lambda)
	if err != nil {
		return nil, err
	}
	return e.pre, nil
}

// Precode computes the zero-forcing precoder for the current measurement
// through the network's incremental cache and installs it on every AP. It
// is the cached equivalent of ComputeZF + SetPrecoder: the first call (and
// any call after a large channel change) pays the full per-bin inversions,
// while steady-state re-measurements cost two rank-1 updates per changed
// channel row.
func (n *Network) Precode(lambda float64) (*Precoder, error) {
	if n.zf == nil {
		n.zf = NewZFCache()
	}
	p, err := n.zf.Compute(n.Msmt, lambda)
	if err != nil {
		return nil, err
	}
	n.SetPrecoder(p)
	return p, nil
}

// entry returns the up-to-date cache entry for a mask, refreshing the
// inverses (incrementally where possible) and the derived precoder.
func (c *ZFCache) entry(mask uint64, m *Measurement, lambda float64) (*zfEntry, error) {
	if m == nil || len(m.H) == 0 {
		return nil, fmt.Errorf("core: no measurement to precode from")
	}
	streams, txAnts := m.H[0].Rows, m.H[0].Cols
	if txAnts < streams {
		return nil, fmt.Errorf("core: %d tx antennas cannot serve %d streams", txAnts, streams)
	}
	e := c.entries[mask]
	lb := math.Float64bits(lambda)
	if e != nil && e.builtFor == m && e.lambdaBits == lb {
		return e, nil
	}
	fresh := e == nil || e.lambdaBits != lb || len(e.h) != len(m.H) ||
		e.h[0].Rows != streams || e.h[0].Cols != txAnts
	if fresh {
		e = &zfEntry{
			lambdaBits: lb,
			h:          make([]*matrix.M, len(m.H)),
			gi:         make([]*matrix.M, len(m.H)),
			updates:    make([]int, len(m.H)),
		}
		c.entries[mask] = e
	}
	for i, h := range m.H {
		if !fresh && e.updates[i] < zfMaxUpdates && shermanMorrison(e.gi[i], e.h[i], h, &e.updates[i]) {
			e.incrementalBins++
		} else {
			g := gram(h, lambda)
			gi, err := g.Inverse()
			if err != nil {
				return nil, fmt.Errorf("core: bin %d: %w", m.Bins[i], err)
			}
			e.gi[i] = gi
			e.updates[i] = 0
			e.fullInversions++
		}
		e.h[i] = h.Clone()
	}
	pre, err := precoderFromInverses(m, e.gi)
	if err != nil {
		return nil, err
	}
	e.pre = pre
	e.mw = nil
	e.builtFor = m
	return e, nil
}

// gram builds G = H·Hᴴ + λI (streams × streams).
func gram(h *matrix.M, lambda float64) *matrix.M {
	g := h.Mul(h.H())
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+complex(lambda, 0))
	}
	return g
}

// shermanMorrison updates gi — the inverse of gram(hOld, λ) — in place so
// it inverts gram(hNew, λ), applying two rank-1 corrections per changed
// channel row: changing row r of H perturbs row r and column r of the Gram
// matrix, G' = G + e_r·uᴴ + v·e_rᴴ with u = H·δᴴ and v = u + e_r·‖δ‖²
// evaluated against the updated row. It reports false — leaving gi
// untouched — when the drift is too large or a denominator falls under
// zfCondFloor, and adds the applied corrections to *updates.
func shermanMorrison(gi, hOld, hNew *matrix.M, updates *int) bool {
	var driftSq, normSq float64
	for i, v := range hOld.Data {
		d := hNew.Data[i] - v
		driftSq += real(d)*real(d) + imag(d)*imag(d)
		normSq += real(v)*real(v) + imag(v)*imag(v)
	}
	if driftSq == 0 {
		return true
	}
	if normSq == 0 || driftSq > zfDriftLimit*zfDriftLimit*normSq {
		return false
	}
	n := gi.Rows
	cols := hOld.Cols
	// Work on a copy so a mid-row fallback never leaves gi half-updated.
	work := gi.Clone()
	// cur tracks the channel with already-processed rows replaced, since u
	// for a later row must see the earlier rows' new values.
	cur := hOld.Clone()
	// Per-row scratch, hoisted out of the row loop.
	u := make([]complex128, n)
	uhg := make([]complex128, n)
	gv := make([]complex128, n)
	rowR := make([]complex128, n)
	applied := 0
	for r := 0; r < hOld.Rows; r++ {
		rowOld := cur.Row(r)
		rowNew := hNew.Row(r)
		var deltaSq float64
		for j := range rowOld {
			d := rowNew[j] - rowOld[j]
			deltaSq += real(d)*real(d) + imag(d)*imag(d)
		}
		if deltaSq == 0 {
			continue
		}
		// u_i = Σ_j cur[i][j]·conj(δ_j); v = u except v_r = u_r + ‖δ‖².
		for i := 0; i < n; i++ {
			var acc complex128
			ci := cur.Row(i)
			for j := 0; j < cols; j++ {
				acc += ci[j] * cmplx.Conj(rowNew[j]-rowOld[j])
			}
			u[i] = acc
		}
		// First correction: G + e_r·uᴴ.
		// (G')⁻¹ = Gi − (Gi·e_r)(uᴴ·Gi)/(1 + uᴴ·Gi·e_r), uhg_j = (uᴴ·Gi)_j.
		for j := 0; j < n; j++ {
			var acc complex128
			for i := 0; i < n; i++ {
				acc += cmplx.Conj(u[i]) * work.At(i, j)
			}
			uhg[j] = acc
		}
		den := 1 + uhg[r]
		if cmplx.Abs(den) < zfCondFloor {
			return false
		}
		for i := 0; i < n; i++ {
			gir := work.At(i, r)
			if gir == 0 {
				continue
			}
			f := gir / den
			for j := 0; j < n; j++ {
				work.Set(i, j, work.At(i, j)-f*uhg[j])
			}
		}
		// Second correction: + v·e_rᴴ with v = u + e_r·‖δ‖²; gv_i = (Gi·v)_i.
		u[r] += complex(deltaSq, 0)
		for i := 0; i < n; i++ {
			var acc complex128
			for j := 0; j < n; j++ {
				acc += work.At(i, j) * u[j]
			}
			gv[i] = acc
		}
		den = 1 + gv[r]
		if cmplx.Abs(den) < zfCondFloor {
			return false
		}
		copy(rowR, work.Row(r))
		for i := 0; i < n; i++ {
			f := gv[i] / den
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				work.Set(i, j, work.At(i, j)-f*rowR[j])
			}
		}
		copy(cur.Row(r), rowNew)
		applied += 2
	}
	copy(gi.Data, work.Data)
	*updates += applied
	return true
}

// precoderFromInverses assembles W = k·Hᴴ·(H·Hᴴ+λI)⁻¹ per bin with the
// same per-antenna power normalization as ComputeZF. (For any λ this right
// form equals ComputeZF's left form (HᴴH+λI)⁻¹Hᴴ mathematically; only
// floating-point rounding differs.)
func precoderFromInverses(m *Measurement, gi []*matrix.M) (*Precoder, error) {
	streams, txAnts := m.H[0].Rows, m.H[0].Cols
	p := &Precoder{Bins: m.Bins, W: make([]*matrix.M, len(m.H)), Streams: streams, TxAnts: txAnts}
	perAnt := make([]float64, txAnts)
	for i, h := range m.H {
		w := h.H().Mul(gi[i])
		p.W[i] = w
		for a := 0; a < txAnts; a++ {
			row := w.Row(a)
			var pw float64
			for _, v := range row {
				pw += real(v)*real(v) + imag(v)*imag(v)
			}
			perAnt[a] += pw
		}
	}
	maxP := 0.0
	for a := range perAnt {
		perAnt[a] /= float64(len(m.H))
		if perAnt[a] > maxP {
			maxP = perAnt[a]
		}
	}
	if maxP <= 0 {
		return nil, fmt.Errorf("core: degenerate precoder (zero channel)")
	}
	p.PowerScale = 1 / math.Sqrt(maxP)
	s := complex(p.PowerScale, 0)
	for _, w := range p.W {
		for i := range w.Data {
			w.Data[i] *= s
		}
	}
	return p, nil
}
