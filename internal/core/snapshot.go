package core

import (
	"fmt"
	"sort"

	"megamimo/internal/air"
	"megamimo/internal/radio"
	"megamimo/internal/rng"
	psync "megamimo/internal/sync"
)

// This file is the network's checkpoint surface: Snapshot captures every
// piece of state that evolves after construction + Measure + Precode, and
// RestoreSnapshot overwrites a freshly rebuilt network with it. Everything
// NOT captured here — links, the measurement, precoder weights, the
// ZFCache, PHY scratch — is a deterministic function of (config, seed,
// measurement) and is recreated bit-identically by replaying the build
// path; DESIGN.md §14 documents the split.

// SyncPeerState is one AP's synchronization state toward one potential
// lead, addressed by (AP, Toward). Peer is sync's flat all-exported state
// union; Ref is deep-copied on capture and restore.
type SyncPeerState struct {
	AP     int
	Toward int
	Peer   psync.Peer
}

// NetworkState is the mutable post-build state of a Network. The bus is
// captured separately by the checkpoint layer (its in-flight payloads need
// type-aware encoding the core cannot do), as is the metrics registry.
type NetworkState struct {
	Now      int64
	Rng      rng.State
	Crashed  []bool
	SyncLoss []int64
	Abstain  []bool
	IsLead   []bool
	// Oscs holds every node oscillator in node order: APs 0..N−1, then
	// clients 0..M−1. Oscillator PPM is mutable state here because drift
	// drills inject it mid-run.
	Oscs   []radio.OscState
	Tracer TracerState
	Peers  []SyncPeerState
	Air    air.State
}

// Snapshot captures the network's mutable state. It fails when a trace
// span is still open (mid-round); checkpoint at round boundaries only.
func (n *Network) Snapshot() (*NetworkState, error) {
	tr, err := n.tracer.Snapshot()
	if err != nil {
		return nil, err
	}
	st := &NetworkState{
		Now:      n.now,
		Rng:      n.rng.State(),
		Crashed:  append([]bool(nil), n.crashed...),
		SyncLoss: append([]int64(nil), n.syncLossUntil...),
		Abstain:  append([]bool(nil), n.abstain...),
		IsLead:   make([]bool, len(n.APs)),
		Oscs:     make([]radio.OscState, 0, len(n.APs)+len(n.Clients)),
		Tracer:   tr,
		Air:      n.Air.Snapshot(),
	}
	for i, ap := range n.APs {
		st.IsLead[i] = ap.IsLead
		st.Oscs = append(st.Oscs, ap.Node.Osc.Snapshot())
	}
	for _, c := range n.Clients {
		st.Oscs = append(st.Oscs, c.Node.Osc.Snapshot())
	}
	for i, ap := range n.APs {
		towards := make([]int, 0, len(ap.syncs))
		for toward := range ap.syncs {
			towards = append(towards, toward)
		}
		sort.Ints(towards)
		for _, toward := range towards {
			p := *ap.syncs[toward]
			p.Ref = append([]complex128(nil), p.Ref...)
			st.Peers = append(st.Peers, SyncPeerState{AP: i, Toward: toward, Peer: p})
		}
	}
	return st, nil
}

// RestoreSnapshot overwrites a rebuilt network's mutable state with st.
// The network must have been rebuilt along the same path the checkpointed
// run took (same config, seed, Measure, Precode), so that everything not
// in the snapshot already matches; callers enforce that with the config
// digest in the checkpoint header. Metrics and the bus are restored by the
// checkpoint layer afterwards.
func (n *Network) RestoreSnapshot(st *NetworkState) error {
	if len(st.Crashed) != len(n.APs) || len(st.IsLead) != len(n.APs) ||
		len(st.SyncLoss) != len(n.APs) || len(st.Abstain) != len(n.APs) {
		return fmt.Errorf("core: restore: snapshot has %d APs, network has %d", len(st.Crashed), len(n.APs))
	}
	if want := len(n.APs) + len(n.Clients); len(st.Oscs) != want {
		return fmt.Errorf("core: restore: snapshot has %d oscillators, network has %d nodes", len(st.Oscs), want)
	}
	if err := n.rng.Restore(st.Rng); err != nil {
		return fmt.Errorf("core: restore network rng: %w", err)
	}
	n.now = st.Now
	copy(n.syncLossUntil, st.SyncLoss)
	copy(n.abstain, st.Abstain)
	// Crash state replays through the bus attachment so a crashed AP stays
	// detached; the drop counters this bumps are overwritten when the
	// metrics registry restores afterwards.
	for i, down := range st.Crashed {
		if down == n.crashed[i] {
			continue
		}
		n.crashed[i] = down
		if down {
			n.Bus.Detach(i)
		} else {
			n.Bus.Attach(i)
		}
	}
	for i, ap := range n.APs {
		ap.IsLead = st.IsLead[i]
		if err := ap.Node.Osc.RestoreSnapshot(st.Oscs[i]); err != nil {
			return fmt.Errorf("core: restore AP %d oscillator: %w", i, err)
		}
	}
	for i, c := range n.Clients {
		if err := c.Node.Osc.RestoreSnapshot(st.Oscs[len(n.APs)+i]); err != nil {
			return fmt.Errorf("core: restore client %d oscillator: %w", i, err)
		}
	}
	for _, ap := range n.APs {
		ap.syncs = nil
	}
	for _, ps := range st.Peers {
		if ps.AP < 0 || ps.AP >= len(n.APs) {
			return fmt.Errorf("core: restore: sync peer for AP %d, network has %d", ps.AP, len(n.APs))
		}
		p := n.APs[ps.AP].syncTo(ps.Toward)
		*p = ps.Peer
		p.Ref = append([]complex128(nil), ps.Peer.Ref...)
	}
	n.tracer.RestoreSnapshot(st.Tracer)
	if err := n.Air.RestoreSnapshot(st.Air, n.OscForAntenna); err != nil {
		return fmt.Errorf("core: restore medium: %w", err)
	}
	return nil
}

// OscForAntenna maps a transmit antenna ID back to its owning node's
// oscillator (nil when the ID is not part of the antenna plan). The medium
// restore path uses it to re-bind in-flight emissions.
func (n *Network) OscForAntenna(tx int) *radio.Oscillator {
	if tx >= clientAntBase {
		c := (tx - clientAntBase) / n.Cfg.AntennasPerClient
		if c >= 0 && c < len(n.Clients) {
			return n.Clients[c].Node.Osc
		}
		return nil
	}
	if tx < 0 {
		return nil
	}
	ap := tx / n.Cfg.AntennasPerAP
	if ap < len(n.APs) {
		return n.APs[ap].Node.Osc
	}
	return nil
}
