package core

import (
	"fmt"
	"math/cmplx"
	"sync"

	"megamimo/internal/cmplxs"
	"megamimo/internal/csi"
	"megamimo/internal/matrix"
	"megamimo/internal/ofdm"
	psync "megamimo/internal/sync"
	"megamimo/internal/units"
)

// Measurement is one channel snapshot: the estimated H for every occupied
// subcarrier, referenced to a single ether time (§5.1: "all these channels
// have to be measured at the same time").
type Measurement struct {
	// At is the ether time of the lead's sync header (packet start).
	At int64
	// RefMid is the phase reference time of the H estimates: the center of
	// the interleaved measurement block. Referencing the center minimizes
	// the lever arm that multiplies residual per-AP CFO estimation error
	// into per-column phase error (the same reason the paper interleaves
	// the symbols "so that the correction of the channels to a common
	// reference time has minimal error", §5.3).
	RefMid int64
	// Bins lists the occupied FFT bins carrying estimates.
	Bins []int
	// H[i] is the streams × txAntennas channel matrix on Bins[i].
	H []*matrix.M
	// NoiseVar is each stream's reported noise variance.
	NoiseVar []float64

	binIndex map[int]int
}

// Matrix returns the channel matrix for an FFT bin, or nil.
func (m *Measurement) Matrix(bin int) *matrix.M {
	if i, ok := m.binIndex[bin]; ok {
		return m.H[i]
	}
	return nil
}

// schedule pins every transmission of the measurement packet (Fig. 3).
type schedule struct {
	t0       int64 // sync header start
	acqStart int64 // first CFO-block (acquisition) symbol
	csStart  int64 // first interleaved channel symbol
	nAPs     int
	antsPer  int
	rounds   int
}

const (
	headerGap = 80 // silence between header and CFO blocks
	symLen    = ofdm.SymbolLen
)

// cfoBlockSyms is the per-AP CFO block length in symbol slots: a
// 16-periodic acquisition symbol (STF segment) for unambiguous coarse CFO
// up to the full 802.11 ±20 ppm mandate, then two known training symbols
// whose pair phase refines it.
const cfoBlockSyms = 3

func (n *Network) measurementSchedule(t0 int64) schedule {
	s := schedule{
		t0:      t0,
		nAPs:    n.Cfg.NumAPs,
		antsPer: n.Cfg.AntennasPerAP,
		rounds:  n.Cfg.MeasurementRounds,
	}
	s.acqStart = t0 + ofdm.PreambleLen + headerGap
	s.csStart = s.acqStart + int64(cfoBlockSyms*symLen*s.nAPs) + headerGap
	return s
}

// end returns the first sample after the measurement packet.
func (s schedule) end() int64 {
	total := s.nAPs * s.antsPer
	return s.csStart + int64(s.rounds*total*symLen)
}

// refMid returns the phase-reference time: the center of the interleaved
// block.
func (s schedule) refMid() int64 {
	total := s.nAPs * s.antsPer
	return s.csStart + int64(s.rounds*total*symLen/2)
}

// cfoSymbolAt returns the start of CFO-block slot rep (0 = STF segment,
// 1 and 2 = training symbols) of AP a.
func (s schedule) cfoSymbolAt(a, rep int) int64 {
	return s.acqStart + int64((cfoBlockSyms*a+rep)*symLen)
}

// csSymbolAt returns the start of the interleaved symbol for global tx
// antenna g in round r.
func (s schedule) csSymbolAt(r, g int) int64 {
	total := s.nAPs * s.antsPer
	return s.csStart + int64((r*total+g)*symLen)
}

// Measure runs the full channel-measurement phase (§5.1): the lead sends a
// sync header; every AP transmits CFO-estimation symbols and interleaved
// channel-measurement symbols; slaves capture their reference channel from
// the lead; clients estimate every AP channel rotated to the common
// reference time and feed CSI back over the backbone; the lead assembles H
// and distributes precoder rows.
func (n *Network) Measure() error {
	all := make([]int, len(n.Clients))
	for i := range all {
		all[i] = i
	}
	return n.MeasureDecoupled([][]int{all}, 0)
}

// MeasureDecoupled measures the channels to different client groups in
// separate measurement packets separated by gapSamples (§7: a client that
// joins later must not force everyone to be re-measured). Each later
// group's slave columns are rotated back to the first packet's reference
// time using the lead→slave reference channels, exactly the appendix
// construction: the slave measures its lead channel in both packets, the
// phase advance between them is (ω_lead − ω_slave)·Δt, and conjugating it
// re-references the new rows.
func (n *Network) MeasureDecoupled(groups [][]int, gapSamples int64) error {
	n.mMeasurements.Inc()
	if len(groups) == 0 {
		return fmt.Errorf("core: no measurement groups")
	}
	for i, down := range n.crashed {
		if down {
			return fmt.Errorf("core: Measure with AP %d crashed (restart it first)", i)
		}
	}
	lead := n.Lead()
	train := symbolWave()
	var reports []*csi.Report
	type uplinkJob struct {
		rep *csi.Report
		ant int
	}
	var pendingUplink []uplinkJob
	var mid0 int64
	span := n.tracer.BeginSpan(n.now, KindMeasure, TraceAttrs{AP: lead.Index},
		"%d measurement packets, lead AP %d", len(groups), lead.Index)
	for gi, group := range groups {
		t0 := n.now + 256
		sched := n.measurementSchedule(t0)
		n.trace(t0, KindMeasure, TraceAttrs{AP: lead.Index, Pkt: int64(gi)},
			"packet %d: header by AP %d, %d CFO blocks, %d rounds x %d antennas, clients %v",
			gi, lead.Index, sched.nAPs, sched.rounds, sched.nAPs*sched.antsPer, group)

		// (a) Collecting measurements: post every transmission.
		n.Air.Transmit(n.APAntennaID(lead.Index, 0), lead.Node.Osc, t0, ofdm.Preamble())
		stf80 := acquisitionWave()
		for _, ap := range n.APs {
			// CFO block from antenna 0: STF segment + two training symbols.
			n.Air.Transmit(n.APAntennaID(ap.Index, 0), ap.Node.Osc, sched.cfoSymbolAt(ap.Index, 0), stf80)
			for rep := 1; rep < cfoBlockSyms; rep++ {
				n.Air.Transmit(n.APAntennaID(ap.Index, 0), ap.Node.Osc, sched.cfoSymbolAt(ap.Index, rep), train)
			}
			// Interleaved channel symbols from every antenna, every round.
			for m := 0; m < n.Cfg.AntennasPerAP; m++ {
				g := ap.Index*n.Cfg.AntennasPerAP + m
				for r := 0; r < n.Cfg.MeasurementRounds; r++ {
					n.Air.Transmit(n.APAntennaID(ap.Index, m), ap.Node.Osc, sched.csSymbolAt(r, g), train)
				}
			}
		}

		// (c) Slave reference handling.
		corr := make(map[int][]complex128) // AP index → per-bin column correction
		if gi == 0 {
			mid0 = sched.refMid()
			// Every AP — the current lead included — builds sync state
			// toward every potential lead, so §9's per-transmission lead
			// nomination needs no re-measurement.
			for _, ap := range n.APs {
				if err := n.slaveCaptureReference(ap, sched); err != nil {
					return fmt.Errorf("AP %d reference capture: %w", ap.Index, err)
				}
			}
		} else {
			for _, ap := range n.Slaves() {
				mc, err := n.slaveMeasureRatio(ap, t0)
				if err != nil {
					return fmt.Errorf("slave %d decoupled reference: %w", ap.Index, err)
				}
				n.trace(mc.At, KindSlaveRatio,
					TraceAttrs{AP: ap.Index, PhaseErrRad: mc.Residual, CFORadPerSample: mc.CFO},
					"AP %d: decoupled re-reference", ap.Index)
				// The ratio is the phase the slave's oscillator gained on
				// the lead between the two reference points; extending it
				// from that gap to the reference-midpoint gap gives the
				// factor that re-references the new rows' columns
				// (X_i = e^{j(ω_lead−ω_i)Δ}; X_lead = 1).
				lever := float64(sched.refMid()-mid0) - float64(mc.At-mc.RefAt)
				factor := cmplxs.Expi(units.PhaseAdvance(mc.CFO, units.Samples(lever)))
				//lint:ignore hotalloc the re-referenced column correction is retained in corr for the caller
				c := make([]complex128, ofdm.NFFT)
				for b, v := range mc.Ratio {
					c[b] = v * factor
				}
				corr[ap.Index] = c
			}
		}

		// (b) Group clients estimate H and feed back CSI.
		for _, ci := range group {
			cl := n.Clients[ci]
			for cm := 0; cm < n.Cfg.AntennasPerClient; cm++ {
				rep, err := n.clientEstimate(cl, cm, sched)
				if err != nil {
					return fmt.Errorf("client %d ant %d estimate: %w", cl.Index, cm, err)
				}
				if n.Cfg.CSIQuantBits > 0 {
					csi.QuantizeReport(rep, n.Cfg.CSIQuantBits)
				}
				// Re-reference slave columns of later groups (done at the
				// lead in the real system; the correction factors travel
				// the backbone with the slave's reference measurements).
				if gi > 0 {
					for _, ap := range n.Slaves() {
						c := corr[ap.Index]
						for m := 0; m < n.Cfg.AntennasPerAP; m++ {
							g := ap.Index*n.Cfg.AntennasPerAP + m
							for b := range rep.H[g] {
								rep.H[g][b] *= c[b]
							}
						}
					}
				}
				if n.Cfg.WirelessFeedback {
					pendingUplink = append(pendingUplink, uplinkJob{rep: rep, ant: cm})
				} else {
					n.Bus.Send(1000+cl.Index, lead.Index, sched.end(), rep)
				}
			}
		}
		n.now = sched.end() + 64 + gapSamples
		n.Air.ClearBefore(n.now)
	}

	// Feedback: over the real wireless uplink when configured, otherwise
	// over the modeled backbone.
	if n.Cfg.WirelessFeedback {
		asm := csi.NewAssembler()
		for _, job := range pendingUplink {
			got, err := n.uplinkDeliver(job.rep, job.ant, asm)
			if err != nil {
				return err
			}
			if got != nil {
				reports = append(reports, got)
			}
		}
	}
	// Lead assembles H after the backbone feedback arrives.
	n.now += n.Bus.LatencySamples + 1
	msgs := n.Bus.Receive(lead.Index, n.now)
	for _, m := range msgs {
		if r, ok := m.Payload.(*csi.Report); ok {
			reports = append(reports, r)
		}
	}
	msmt, err := n.assembleMeasurement(mid0, reports)
	if err != nil {
		return err
	}
	msmt.RefMid = mid0
	n.Msmt = msmt
	n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{AP: lead.Index, OK: true},
		"H assembled: %dx%d on %d bins, reference t=%d, %d reports",
		msmt.H[0].Rows, msmt.H[0].Cols, len(msmt.Bins), msmt.RefMid, len(reports))
	return nil
}

// ltfPhaseOffset is where EstimateChannelLTF's phase-reference sample (the
// first long-training sample) sits relative to the slave observation
// window start.
const ltfPhaseOffset = winLead + ofdm.STFLen + ofdm.LTFGuard

// slaveCaptureReference has AP ap observe the whole measurement packet and
// build phase-synchronization state toward *every* other AP: the current
// lead's reference comes from its sync header; every other potential
// lead's reference comes from its CFO block and interleaved symbols —
// which is what lets §9's per-transmission lead nomination work without a
// fresh measurement phase. Each peer's long-term CFO is initialized from a
// packet-wide fine estimate (a baseline of thousands of samples, so the
// rad/sample error is orders of magnitude below a single header's lag-64
// estimate).
func (n *Network) slaveCaptureReference(ap *AP, sched schedule) error {
	winStart := sched.t0 - winLead
	winLen := int(sched.end()-winStart) + 64
	win := n.Air.Observe(n.APAntennaID(ap.Index, 0), ap.Node.Osc, winStart, winLen)
	lead := n.Lead()
	var sync *ofdm.Sync
	if ap.Index != lead.Index {
		// The current lead cannot hear its own header (half duplex); every
		// other AP acquires it for the header-based reference.
		s, err := ofdm.Detect(win[:ofdm.PreambleLen+winLead+192], 0.5)
		if err != nil {
			return err
		}
		// Pin the trigger-synchronized timing so the reference and the
		// per-packet measurements share a sample-exact phase origin (see
		// slaveMeasureRatio).
		s.LTFStart = winLead + ofdm.STFLen
		s.PayloadStart = winLead + ofdm.PreambleLen
		sync = s
	}
	dem := n.dem
	ref := ltfRef()
	bins := occupiedBins()
	total := sched.nAPs * sched.antsPer

	for _, peer := range n.APs {
		if peer.Index == ap.Index {
			continue
		}
		ps := ap.syncTo(peer.Index)
		g := peer.Index * sched.antsPer // peer antenna 0's global index

		// Coarse CFO: the header for the lead, the CFO block otherwise.
		var cfo units.RadPerSample
		if peer.Index == lead.Index {
			cfo = sync.CFO
		} else {
			c, err := cfoFromBlock(dem, win, winLead, peer.Index, sched, bins)
			if err != nil {
				return err
			}
			cfo = c
		}

		// Packet-wide fine CFO from the peer's interleaved symbols,
		// refined exactly like the clients do: every round is derotated to
		// a common reference (the peer's first interleaved symbol), so the
		// round-to-round phase drift is the small residual offset, free of
		// 2π ambiguity.
		base := int(sched.csSymbolAt(0, g) - winStart)
		var ests [][]complex128
		for iter := 0; iter < 3; iter++ {
			ests = make([][]complex128, sched.rounds)
			for r := 0; r < sched.rounds; r++ {
				idx := int(sched.csSymbolAt(r, g) - winStart)
				e, err := n.estimateSymbolChannel(win, idx, base, cfo, ref, bins)
				if err != nil {
					return err
				}
				ests[r] = e
			}
			var racc complex128
			for r := 0; r+1 < sched.rounds; r++ {
				for _, b := range bins {
					racc += ests[r+1][b] * cmplx.Conj(ests[r][b])
				}
			}
			if sched.rounds > 1 {
				cfo += units.RadiansOver(units.Radians(cmplx.Phase(racc)), units.Samples(total*symLen))
			}
		}

		var refChan []complex128
		var refAt int64
		if peer.Index == lead.Index {
			h, err := ofdm.EstimateChannelLTF(win, sync)
			if err != nil {
				return err
			}
			refChan = h
			refAt = winStart + ltfPhaseOffset
		} else {
			// The per-round estimates share the common reference already;
			// average and denoise.
			//lint:ignore hotalloc the averaged estimate is retained as the peer reference across rounds
			avg := make([]complex128, ofdm.NFFT)
			for _, e := range ests {
				for _, b := range bins {
					avg[b] += e[b]
				}
			}
			cmplxs.Scale(avg, avg, complex(1/float64(len(ests)), 0))
			ofdm.SmoothChannel(avg)
			refChan = avg
			refAt = winStart + int64(base)
		}
		// The fine estimate's effective baseline is the interleaved block
		// span; the strategy seeds its precision weight from it and lets
		// the reference itself be the first phase snapshot (phase(ĥ/ĥ) = 0
		// at refAt) so the very next packet already fuses a long baseline.
		span := float64((sched.rounds - 1) * total * symLen)
		n.sync.Init(ps, psync.RefCapture{Ref: refChan, RefAt: refAt, CFO: cfo, Baseline: span})
	}
	return nil
}

// clientEstimate processes the whole measurement packet at one client
// antenna: per-AP CFO from the CFO blocks, iteratively refined with the
// interleaved symbols, and per-antenna channel estimates rotated to the
// reference time t0.
func (n *Network) clientEstimate(cl *Client, rxAnt int, sched schedule) (*csi.Report, error) {
	winStart := sched.t0 - winLead
	winLen := int(sched.end()-winStart) + 64
	rxID := n.ClientAntennaID(cl.Index, rxAnt)
	win := n.Air.Observe(rxID, cl.Node.Osc, winStart, winLen)

	// Acquire the lead header for timing; t0Idx is where the header begins
	// in the window. Deep-fade clients (Fig. 11's 0 dB dead spots) cannot
	// detect the preamble, so they fall back to the protocol schedule —
	// legitimate, because the measurement timing is trigger-synchronized
	// infrastructure state, and a few samples of timing error only add a
	// per-client phase slope that the client's own equalizer absorbs.
	t0Idx := winLead
	if sync, err := ofdm.Detect(win[:ofdm.PreambleLen+256], 0.5); err == nil {
		t0Idx = sync.PayloadStart - ofdm.PreambleLen
	}

	dem := n.dem
	ref := ltfRef()
	bins := occupiedBins()
	total := sched.nAPs * sched.antsPer

	report := &csi.Report{
		Client:     cl.Index,
		RxAnt:      rxAnt,
		TxAnts:     make([]int, total),
		H:          make([][]complex128, total),
		MeasuredAt: sched.t0,
	}

	var noiseAcc float64
	var noiseN int
	for a := 0; a < sched.nAPs; a++ {
		// Coarse CFO: lag-16 over the AP's 16-periodic acquisition symbol
		// (unambiguous to ±π/16 rad/sample ≈ ±80 ppm relative at 10 MHz),
		// refined by the training pair's lag-80 phase.
		cfo, err := cfoFromBlock(dem, win, t0Idx, a, sched, bins)
		if err != nil {
			return nil, err
		}

		// Iteratively refined per-round estimates for each antenna of AP a,
		// phase referenced at the interleaved-block center.
		midIdx := t0Idx + int(sched.refMid()-sched.t0)
		ests := make([][][]complex128, sched.antsPer) // [ant][round][bin]
		for iter := 0; iter < 2; iter++ {
			for m := 0; m < sched.antsPer; m++ {
				g := a*sched.antsPer + m
				ests[m] = make([][]complex128, sched.rounds)
				for r := 0; r < sched.rounds; r++ {
					idx := t0Idx + int(sched.csSymbolAt(r, g)-sched.t0)
					h, err := n.estimateSymbolChannel(win, idx, midIdx, cfo, ref, bins)
					if err != nil {
						return nil, err
					}
					ests[m][r] = h
				}
			}
			// Residual CFO from round-to-round phase drift (spacing
			// total·symLen samples), averaged over antennas and rounds.
			if iter == 0 && sched.rounds > 1 {
				var racc complex128
				for m := 0; m < sched.antsPer; m++ {
					for r := 0; r+1 < sched.rounds; r++ {
						for _, b := range bins {
							racc += ests[m][r+1][b] * cmplx.Conj(ests[m][r][b])
						}
					}
				}
				cfo += units.RadiansOver(units.Radians(cmplx.Phase(racc)), units.Samples(total*symLen))
			}
		}
		// Average rounds; accumulate the cross-round spread as the noise
		// estimate; denoise across bins.
		for m := 0; m < sched.antsPer; m++ {
			g := a*sched.antsPer + m
			//lint:ignore hotalloc the averaged estimate is retained in report.H
			avg := make([]complex128, ofdm.NFFT)
			for _, h := range ests[m] {
				cmplxs.Add(avg, avg, h)
			}
			cmplxs.Scale(avg, avg, complex(1/float64(sched.rounds), 0))
			for _, h := range ests[m] {
				for _, b := range bins {
					d := h[b] - avg[b]
					noiseAcc += real(d)*real(d) + imag(d)*imag(d)
					noiseN++
				}
			}
			ofdm.SmoothChannel(avg)
			report.TxAnts[g] = n.APAntennaID(a, m)
			report.H[g] = avg
		}
	}
	if noiseN > 0 && sched.rounds > 1 {
		// Sample variance of the per-round estimates; each round estimate
		// carries the full per-bin noise (|LTF bin| = 1).
		report.NoiseVar = noiseAcc / float64(noiseN) * float64(sched.rounds) / float64(sched.rounds-1)
	} else {
		report.NoiseVar = n.Cfg.NoiseVar
	}
	cl.NoiseVarEst = report.NoiseVar
	return report, nil
}

// symbolFreq demodulates the 80-sample symbol at window index idx.
func symbolFreq(dem *ofdm.Demodulator, win []complex128, idx int) ([]complex128, error) {
	if idx < 0 || idx+symLen > len(win) {
		return nil, fmt.Errorf("core: symbol window [%d, %d) out of range", idx, idx+symLen)
	}
	return dem.Freq(win[idx : idx+symLen])
}

// ltfRef caches the immutable LTF frequency reference used by every
// channel estimate.
var ltfRefOnce struct {
	sync.Once
	f []complex128
}

func ltfRef() []complex128 {
	ltfRefOnce.Do(func() { ltfRefOnce.f = ofdm.LTFFreq() })
	return ltfRefOnce.f
}

// estimateSymbolChannel derotates the symbol at window index idx by cfo —
// phase referenced to window index refIdx, so every symbol shares one
// reference and residual CFO error is multiplied only by (idx − refIdx) —
// demodulates it and divides by the known training values. The returned
// estimate is freshly allocated (callers retain it across rounds); the
// rotate/demod scratch lives on the network.
func (n *Network) estimateSymbolChannel(win []complex128, idx, refIdx int, cfo units.RadPerSample, ref []complex128, bins []int) ([]complex128, error) {
	if idx < 0 || idx+symLen > len(win) {
		return nil, fmt.Errorf("core: symbol window [%d, %d) out of range", idx, idx+symLen)
	}
	if n.estBuf == nil {
		n.estBuf = make([]complex128, symLen)
		n.estFreq = make([]complex128, ofdm.NFFT)
	}
	cmplxs.Rotate(n.estBuf, win[idx:idx+symLen], units.PhaseAdvance(-cfo, units.Samples(idx-refIdx)), -cfo)
	if err := n.dem.FreqInto(n.estFreq, n.estBuf); err != nil {
		return nil, err
	}
	h := make([]complex128, ofdm.NFFT)
	for _, b := range bins {
		h[b] = n.estFreq[b] / ref[b]
	}
	return h, nil
}

// assembleMeasurement builds per-bin channel matrices from the CSI reports
// (rows ordered by stream = client·antsPerClient + rxAnt).
func (n *Network) assembleMeasurement(t0 int64, reports []*csi.Report) (*Measurement, error) {
	streams := n.NumStreams()
	txAnts := n.NumTxAntennas()
	if len(reports) != streams {
		return nil, fmt.Errorf("core: %d CSI reports for %d streams", len(reports), streams)
	}
	bins := occupiedBins()
	m := &Measurement{
		At:       t0,
		Bins:     bins,
		H:        make([]*matrix.M, len(bins)),
		NoiseVar: make([]float64, streams),
		binIndex: make(map[int]int, len(bins)),
	}
	for i, b := range bins {
		m.binIndex[b] = i
		m.H[i] = matrix.New(streams, txAnts)
	}
	for _, rep := range reports {
		row := rep.Client*n.Cfg.AntennasPerClient + rep.RxAnt
		if row < 0 || row >= streams {
			return nil, fmt.Errorf("core: CSI report for unknown stream %d", row)
		}
		m.NoiseVar[row] = rep.NoiseVar
		for g, h := range rep.H {
			for i, b := range bins {
				m.H[i].Set(row, g, h[b])
			}
		}
	}
	return m, nil
}

// occBins caches the FFT bins carrying data or pilots; the layout is
// static, so one read-only slice serves every network and goroutine.
var occBins = func() []int {
	ks := ofdm.OccupiedCarriers()
	out := make([]int, len(ks))
	for i, k := range ks {
		out[i] = ofdm.Bin(k)
	}
	return out
}()

// occupiedBins returns the FFT bins carrying data or pilots. The returned
// slice is shared and must not be modified.
func occupiedBins() []int { return occBins }

// acquisitionWave is the 80-sample 16-periodic coarse-CFO segment each AP
// prepends to its CFO block. The wave is immutable and computed once;
// Air.Transmit copies it, so sharing across networks is safe.
var acquisitionWaveOnce struct {
	sync.Once
	w []complex128
}

func acquisitionWave() []complex128 {
	acquisitionWaveOnce.Do(func() {
		acquisitionWaveOnce.w = ofdm.STF()[:symLen]
	})
	return acquisitionWaveOnce.w
}

// cfoFromBlock estimates AP a's carrier offset from its CFO block inside a
// measurement-packet window whose t0 sits at index t0Idx: lag-16 over the
// acquisition symbol gives the unambiguous coarse value; the training
// pair's lag-80 phase refines it.
func cfoFromBlock(dem *ofdm.Demodulator, win []complex128, t0Idx, a int, sched schedule, bins []int) (units.RadPerSample, error) {
	stfIdx := t0Idx + int(sched.cfoSymbolAt(a, 0)-sched.t0)
	if stfIdx < 0 || stfIdx+symLen > len(win) {
		return 0, fmt.Errorf("core: CFO block out of window")
	}
	var acc complex128
	for i := 0; i < symLen-16; i++ {
		acc += win[stfIdx+i] * cmplx.Conj(win[stfIdx+i+16])
	}
	coarse := units.RadiansOver(units.Radians(-cmplx.Phase(acc)), 16)
	f1, err := symbolFreq(dem, win, t0Idx+int(sched.cfoSymbolAt(a, 1)-sched.t0))
	if err != nil {
		return 0, err
	}
	f2, err := symbolFreq(dem, win, t0Idx+int(sched.cfoSymbolAt(a, 2)-sched.t0))
	if err != nil {
		return 0, err
	}
	var pacc complex128
	for _, b := range bins {
		pacc += f2[b] * cmplx.Conj(f1[b])
	}
	resid := cmplxs.WrapPhase(units.Radians(cmplx.Phase(pacc)) - units.PhaseAdvance(coarse, symLen))
	return coarse + units.RadiansOver(resid, symLen), nil
}
