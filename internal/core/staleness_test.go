package core

import (
	"testing"

	"megamimo/internal/channel"
	"megamimo/internal/rng"
)

// TestStaleChannelOnlyHurtsItsOwnClient verifies §9's loss decoupling:
// "if APs have stale channel information to a client, only the packet to
// that client is affected, and packets at other clients will still be
// received correctly."
func TestStaleChannelOnlyHurtsItsOwnClient(t *testing.T) {
	cfg := DefaultConfig(3, 3, 20, 25)
	cfg.Seed = 120
	cfg.WellConditioned = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	mcs, ok, err := n.ProbeAndSelectRate(300)
	if err != nil || !ok {
		t.Fatalf("rate: %v %v", ok, err)
	}

	// Decorrelate client 0's channels almost completely: its measurement
	// is now badly stale.
	n.EvolveClientLinks(0, 0.2)

	src := rng.New(9)
	staleOK, freshOK := 0, 0
	const trials = 6
	for i := 0; i < trials; i++ {
		payloads := [][]byte{
			src.Bytes(make([]byte, 400)),
			src.Bytes(make([]byte, 400)),
			src.Bytes(make([]byte, 400)),
		}
		res, err := n.JointTransmit(payloads, mcs)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK[0] {
			staleOK++
		}
		if res.OK[1] {
			freshOK++
		}
		if res.OK[2] {
			freshOK++
		}
	}
	// The stale client's own stream should be badly hurt...
	if staleOK > trials/2 {
		t.Fatalf("stale client still delivered %d/%d — channel aging ineffective?", staleOK, trials)
	}
	// ...while the other clients keep decoding: their own channels (and
	// the nulls protecting them, which live in the rows of H that are
	// still fresh) are unaffected.
	if freshOK < 2*trials-2 {
		t.Fatalf("fresh clients delivered only %d/%d — staleness leaked across clients", freshOK, 2*trials)
	}
}

// TestRemeasureRestoresStaleClient confirms a fresh measurement phase
// recovers the aged client.
func TestRemeasureRestoresStaleClient(t *testing.T) {
	cfg := DefaultConfig(2, 2, 20, 25)
	cfg.Seed = 121
	cfg.WellConditioned = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	n.EvolveClientLinks(0, 0.1)
	// Re-measure: the new snapshot sees the evolved channel.
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	mcs, ok, err := n.ProbeAndSelectRate(300)
	if err != nil || !ok {
		t.Fatalf("rate: %v %v", ok, err)
	}
	src := rng.New(10)
	delivered := 0
	for i := 0; i < 4; i++ {
		payloads := [][]byte{src.Bytes(make([]byte, 400)), src.Bytes(make([]byte, 400))}
		res, err := n.JointTransmit(payloads, mcs)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK[0] {
			delivered++
		}
	}
	if delivered < 3 {
		t.Fatalf("re-measurement did not restore client 0: %d/4", delivered)
	}
}

// TestCoherenceRhoDrivesEvolution sanity-checks the aging hook against the
// channel package's coherence mapping.
func TestCoherenceRhoDrivesEvolution(t *testing.T) {
	cfg := DefaultConfig(2, 1, 20, 25)
	cfg.Seed = 122
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := n.Air.Link(n.APAntennaID(0, 0), n.ClientAntennaID(0, 0))
	before := append([]complex128(nil), l.Taps...)
	// ρ for 1 ms elapsed with a 250 ms coherence time ≈ 0.996: near freeze.
	n.EvolveClientLinks(0, channel.CoherenceRho(0.001, 0.25))
	var diff, ref float64
	for i := range before {
		d := l.Taps[i] - before[i]
		diff += real(d)*real(d) + imag(d)*imag(d)
		ref += real(before[i])*real(before[i]) + imag(before[i])*imag(before[i])
	}
	if diff/ref > 0.05 {
		t.Fatalf("1 ms of aging changed the channel by %.1f%%", 100*diff/ref)
	}
}
