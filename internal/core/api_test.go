package core

import (
	"testing"

	"megamimo/internal/phy"
)

// API-edge tests: every misuse path must fail loudly and cleanly.

func TestJointTransmitValidation(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 24, 150)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	// Wrong payload count.
	if _, err := n.JointTransmit([][]byte{{1}}, phy.MCS0); err == nil {
		t.Fatal("wrong payload count accepted")
	}
	// Mismatched payload sizes break frame alignment.
	if _, err := n.JointTransmit([][]byte{make([]byte, 100), make([]byte, 200)}, phy.MCS0); err == nil {
		t.Fatal("mismatched sizes accepted")
	}
	// All-silent transmission is meaningless.
	if _, err := n.JointTransmit(make([][]byte, 2), phy.MCS0); err == nil {
		t.Fatal("all-nil payloads accepted")
	}
	// Invalid MCS surfaces the PHY error.
	if _, err := n.JointTransmit([][]byte{make([]byte, 100), make([]byte, 100)}, phy.MCS(11)); err == nil {
		t.Fatal("invalid MCS accepted")
	}
}

func TestDiversityTransmitValidation(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 24, 151)
	if _, err := n.DiversityTransmit(0, make([]byte, 10), phy.MCS0); err == nil {
		t.Fatal("diversity before Measure accepted")
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.DiversityTransmit(9, make([]byte, 10), phy.MCS0); err == nil {
		t.Fatal("out-of-range stream accepted")
	}
}

func TestNullingINRValidation(t *testing.T) {
	cfg := DefaultConfig(1, 1, 18, 24)
	cfg.Seed = 152
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.NullingINR(0, 100, phy.MCS0); err == nil {
		t.Fatal("single-stream INR accepted")
	}
}

func TestMeasurementMatrixAccessor(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 24, 153)
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	if m := n.Msmt.Matrix(n.Msmt.Bins[0]); m == nil || m.Rows != 2 {
		t.Fatal("Matrix accessor broken")
	}
	if n.Msmt.Matrix(0) != nil { // DC is never occupied
		t.Fatal("Matrix returned estimate for DC")
	}
}

func TestMeasureDecoupledValidation(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 24, 154)
	if err := n.MeasureDecoupled(nil, 0); err == nil {
		t.Fatal("empty groups accepted")
	}
	// Groups that do not cover every client leave streams unreported.
	if err := n.MeasureDecoupled([][]int{{0}}, 0); err == nil {
		t.Fatal("partial coverage accepted")
	}
}

func TestComputeZFValidation(t *testing.T) {
	if _, err := ComputeZF(nil, 0); err == nil {
		t.Fatal("nil measurement accepted")
	}
	// More streams than antennas cannot be zero-forced.
	cfg := DefaultConfig(1, 2, 18, 24)
	cfg.Seed = 155
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeZF(n.Msmt, 0); err == nil {
		t.Fatal("overloaded spatial dimensions accepted")
	}
}

func TestSetLeadOutOfRangeErrors(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 24, 156)
	if err := n.SetLead(99); err == nil {
		t.Fatal("SetLead(99) accepted an out-of-range index")
	}
	if err := n.SetLead(-1); err == nil {
		t.Fatal("SetLead(-1) accepted a negative index")
	}
	if n.Lead().Index != 0 {
		t.Fatalf("failed SetLead moved the lead to %d", n.Lead().Index)
	}
	if err := n.SetLead(1); err != nil {
		t.Fatalf("SetLead(1): %v", err)
	}
	if n.Lead().Index != 1 {
		t.Fatal("SetLead(1) failed")
	}
}

func TestAdvanceTimeAndNow(t *testing.T) {
	n := buildNet(t, 1, 1, 18, 24, 157)
	t0 := n.Now()
	n.AdvanceTime(12345)
	if n.Now() != t0+12345 {
		t.Fatal("AdvanceTime arithmetic wrong")
	}
}
