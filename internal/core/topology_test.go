package core

import (
	"testing"

	"megamimo/internal/geom"
	"megamimo/internal/phy"
	"megamimo/internal/rng"
)

func TestNewFromTopologyBuildsWorkingNetwork(t *testing.T) {
	tc := TopologyConfig{Base: DefaultConfig(3, 3, 0, 0)}
	tc.Base.Seed = 82
	n, top, err := NewFromTopology(tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.APs) != 3 || len(top.Clients) != 3 {
		t.Fatalf("topology %d/%d", len(top.APs), len(top.Clients))
	}
	// Links must reflect geometry: every AP→client link installed.
	for c := 0; c < 3; c++ {
		for a := 0; a < 3; a++ {
			l := n.Air.Link(n.APAntennaID(a, 0), n.ClientAntennaID(c, 0))
			if l == nil || l.PowerGain() <= 0 {
				t.Fatalf("missing link %d→%d", a, c)
			}
		}
	}
	// Full protocol runs end to end over geometric links.
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, tc.Base.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	mcs, ok, err := n.ProbeAndSelectRate(300)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("this placement has no deliverable joint rate (acceptable draw)")
	}
	src := rng.New(1)
	payloads := [][]byte{src.Bytes(make([]byte, 300)), src.Bytes(make([]byte, 300)), src.Bytes(make([]byte, 300))}
	res, err := n.JointTransmit(payloads, mcs)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, okj := range res.OK {
		if okj {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered over geometric topology")
	}
}

func TestNewFromTopologyCloserIsStronger(t *testing.T) {
	// Statistically, the closest AP should usually be the strongest.
	agree := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		tc := TopologyConfig{Base: DefaultConfig(4, 1, 0, 0)}
		tc.Base.Seed = 90 + int64(i)
		tc.PathLoss = geom.PathLoss{RefLossDB: 40, Exponent: 2.8, ShadowSigmaDB: 0.5}
		n, top, err := NewFromTopology(tc)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Measure(); err != nil {
			t.Fatal(err)
		}
		best := n.StrongestAP(0)
		closest, d := 0, top.Clients[0].Distance(top.APs[0])
		for a := 1; a < 4; a++ {
			if dd := top.Clients[0].Distance(top.APs[a]); dd < d {
				closest, d = a, dd
			}
		}
		if best == closest {
			agree++
		}
	}
	if agree < trials*6/10 {
		t.Fatalf("strongest AP agreed with closest only %d/%d times", agree, trials)
	}
}

func TestNewFromTopologyDefaults(t *testing.T) {
	tc := TopologyConfig{Base: DefaultConfig(2, 1, 0, 0)}
	tc.Base.Seed = 99
	n, _, err := NewFromTopology(tc)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cfg.NumAPs != 2 {
		t.Fatal("config lost")
	}
	if _, _, err := NewFromTopology(TopologyConfig{}); err == nil {
		t.Fatal("empty topology config accepted")
	}
	_ = phy.MCS0
}
