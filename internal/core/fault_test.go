package core

import (
	"math"
	"testing"

	"megamimo/internal/phy"
	"megamimo/internal/rng"
)

// buildFaultNet builds a well-conditioned N×N network with measurement and
// precoder installed, ready for joint transmission.
func buildFaultNet(t *testing.T, n int, seed int64) *Network {
	t.Helper()
	cfg := DefaultConfig(n, n, 18, 24)
	cfg.Seed = seed
	cfg.WellConditioned = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestCrashAPIEdges(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 24, 160)
	if err := n.CrashAP(9); err == nil {
		t.Fatal("out-of-range crash accepted")
	}
	if err := n.RestartAP(0); err == nil {
		t.Fatal("restart of a live AP accepted")
	}
	if err := n.CrashAP(1); err != nil {
		t.Fatal(err)
	}
	if err := n.CrashAP(1); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := n.CrashAP(0); err == nil {
		t.Fatal("crashed the last live AP")
	}
	if err := n.Measure(); err == nil {
		t.Fatal("Measure ran with a crashed AP")
	}
	if err := n.RestartAP(1); err != nil {
		t.Fatal(err)
	}
	if !n.APLive(1) || n.LiveAPs() != 2 {
		t.Fatal("restart did not restore liveness")
	}
	if err := n.CorruptSync(9, 100); err == nil {
		t.Fatal("out-of-range CorruptSync accepted")
	}
}

func TestElectLeadOrder(t *testing.T) {
	n := buildNet(t, 4, 4, 18, 24, 161)
	if got := n.ElectLead(2); got != 2 {
		t.Fatalf("live preferred AP not elected: %d", got)
	}
	if err := n.CrashAP(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CrashAP(1); err != nil {
		t.Fatal(err)
	}
	if got := n.ElectLead(1); got != 2 {
		t.Fatalf("elected %d, want lowest live index 2", got)
	}
	if err := n.SetLead(1); err == nil {
		t.Fatal("SetLead accepted a crashed AP")
	}
}

// TestCrashedSlaveDegradedRound: with one slave down, the lead re-zero-forces
// over the survivors. The three surviving antennas can serve three streams;
// the highest stream index is shed for the round, and everyone else keeps
// their nulls and their data.
func TestCrashedSlaveDegradedRound(t *testing.T) {
	n := buildFaultNet(t, 4, 170)
	if err := n.CrashAP(3); err != nil {
		t.Fatal(err)
	}
	if n.Lead().Index != 0 {
		t.Fatal("slave crash moved the lead")
	}
	src := rng.New(9)
	payloads := make([][]byte, 4)
	for j := range payloads {
		payloads[j] = src.Bytes(make([]byte, 300))
	}
	res, err := n.JointTransmit(payloads, phy.MCS0)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK[3] {
		t.Fatal("shed stream 3 delivered with no antenna budget for it")
	}
	for j := 0; j < 3; j++ {
		if !res.OK[j] {
			t.Fatalf("surviving stream %d failed in the degraded round", j)
		}
	}
	if got := n.Metrics().Counter("degraded_rounds_total").Value(); got < 1 {
		t.Fatalf("degraded_rounds_total = %d, want >= 1", got)
	}
}

// TestLeadCrashFailover: crashing the lead re-elects the lowest live index
// within the same round, and joint transmission keeps working over the
// survivors.
func TestLeadCrashFailover(t *testing.T) {
	n := buildFaultNet(t, 4, 171)
	if err := n.CrashAP(0); err != nil {
		t.Fatal(err)
	}
	if n.Lead().Index != 1 {
		t.Fatalf("lead after failover = %d, want 1", n.Lead().Index)
	}
	if got := n.Metrics().Counter("lead_failovers_total").Value(); got != 1 {
		t.Fatalf("lead_failovers_total = %d, want 1", got)
	}
	src := rng.New(10)
	payloads := make([][]byte, 4)
	for j := range payloads {
		payloads[j] = src.Bytes(make([]byte, 300))
	}
	res, err := n.JointTransmit(payloads, phy.MCS0)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for _, ok := range res.OK {
		if ok {
			delivered++
		}
	}
	if delivered < 3 {
		t.Fatalf("only %d/4 streams delivered under the failover lead", delivered)
	}
}

// TestRestartRecoversFullStrength: after a crash, restart and a fresh
// measurement bring the network back to full-rank transmission (and the
// degraded-weights cache must not leak stale rebuilds into it).
func TestRestartRecoversFullStrength(t *testing.T) {
	n := buildFaultNet(t, 3, 172)
	if err := n.CrashAP(2); err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	payloads := make([][]byte, 3)
	for j := range payloads {
		payloads[j] = src.Bytes(make([]byte, 300))
	}
	if _, err := n.JointTransmit(payloads, phy.MCS0); err != nil {
		t.Fatal(err)
	}
	if err := n.RestartAP(2); err != nil {
		t.Fatal(err)
	}
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	res, err := n.JointTransmit(payloads, phy.MCS0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range payloads {
		if !res.OK[j] {
			t.Fatalf("stream %d failed after restart + remeasure", j)
		}
	}
	if got := n.Metrics().Counter("degraded_rounds_total").Value(); got != 1 {
		t.Fatalf("degraded_rounds_total = %d after recovery, want exactly the one degraded round", got)
	}
}

// TestSyncAbstainKeepsNulls: a slave with corrupted sync and no staleness
// budget withholds its antennas, and the re-zero-forced survivors keep the
// victim's null deep instead of spraying misphased energy into it.
func TestSyncAbstainKeepsNulls(t *testing.T) {
	cfg := DefaultConfig(3, 3, 18, 24)
	cfg.Seed = 173
	cfg.WellConditioned = true
	cfg.SyncStalenessSamples = 1 // no extrapolation budget: fail → abstain
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	if err := n.CorruptSync(2, n.Now()+100_000_000); err != nil {
		t.Fatal(err)
	}
	inr, err := n.NullingINR(0, 400, phy.MCS0)
	if err != nil {
		t.Fatal(err)
	}
	if inrDB := 10 * math.Log10(inr); inrDB > 3 {
		t.Fatalf("INR %.1f dB with an abstaining slave — nulls not holding", inrDB)
	}
	if got := n.Metrics().Counter("sync_abstain_total").Value(); got < 1 {
		t.Fatalf("sync_abstain_total = %d, want >= 1", got)
	}
	if got := n.Metrics().Counter("degraded_rounds_total").Value(); got < 1 {
		t.Fatalf("degraded_rounds_total = %d, want >= 1", got)
	}
}

// TestSyncExtrapolateWithinBudget: with a recent good measurement inside the
// staleness budget, a slave that loses the sync header extrapolates from its
// long-term CFO instead of abstaining, and delivery continues at full rank.
func TestSyncExtrapolateWithinBudget(t *testing.T) {
	n := buildFaultNet(t, 2, 174) // default SyncStalenessSamples budget
	src := rng.New(12)
	payloads := [][]byte{src.Bytes(make([]byte, 300)), src.Bytes(make([]byte, 300))}
	// One good round records the phase snapshot the fallback extrapolates
	// from.
	if _, err := n.JointTransmit(payloads, phy.MCS0); err != nil {
		t.Fatal(err)
	}
	if err := n.CorruptSync(1, n.Now()+100_000_000); err != nil {
		t.Fatal(err)
	}
	res, err := n.JointTransmit(payloads, phy.MCS0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range payloads {
		if !res.OK[j] {
			t.Fatalf("stream %d failed under sync extrapolation", j)
		}
	}
	if got := n.Metrics().Counter("sync_abstain_total").Value(); got != 0 {
		t.Fatalf("sync_abstain_total = %d inside the budget, want 0", got)
	}
	if got := n.Metrics().Counter("degraded_rounds_total").Value(); got != 0 {
		t.Fatalf("degraded_rounds_total = %d inside the budget, want 0", got)
	}
}
