package core

import (
	"fmt"

	"megamimo/internal/csi"
	"megamimo/internal/ofdm"
	"megamimo/internal/phy"
)

// Wireless CSI feedback (§5.1b: "the receivers then communicate these
// estimated channels back to the transmitters over the wireless channel").
// The modeled Ethernet path (default) carries the same values; this path
// additionally pays the real uplink cost: serialization into PSDUs, base
// rate airtime, decoding at the lead AP, and retransmissions on loss.

// feedbackMCS is the uplink rate — CSI rides at base rate like management
// traffic.
const feedbackMCS = phy.MCS0

// feedbackChunkBytes bounds each CSI frame's payload.
const feedbackChunkBytes = 1400

// uplinkDeliver transmits one client's CSI report to the lead AP over the
// air, retrying lost chunks, and feeds the assembler. It returns the
// completed report once every chunk has landed.
func (n *Network) uplinkDeliver(rep *csi.Report, fromAnt int, asm *csi.Assembler) (*csi.Report, error) {
	chunks, err := rep.MarshalChunks(occupiedBins(), feedbackChunkBytes)
	if err != nil {
		return nil, err
	}
	lead := n.Lead()
	cl := n.Clients[rep.Client]
	tx := phy.NewTX()
	rx := phy.NewRX()
	var done *csi.Report
	for _, chunk := range chunks {
		const maxAttempts = 4
		delivered := false
		for attempt := 0; attempt < maxAttempts && !delivered; attempt++ {
			wave, err := tx.Frame(chunk, feedbackMCS)
			if err != nil {
				return nil, err
			}
			start := n.now + 64
			n.Air.Transmit(n.ClientAntennaID(rep.Client, fromAnt), cl.Node.Osc, start, wave)
			win := n.Air.Observe(n.APAntennaID(lead.Index, 0), lead.Node.Osc, start-winLead, len(wave)+winLead+192)
			n.now = start + int64(len(wave)) + 256
			n.Air.ClearBefore(n.now)
			frame, err := rx.Decode(win)
			if err != nil || !frame.FCSOK {
				continue // lost: retransmit
			}
			got, err := asm.Feed(frame.Payload, n.NumTxAntennas(), ofdm.NFFT)
			if err != nil {
				return nil, fmt.Errorf("core: uplink CSI parse: %w", err)
			}
			if got != nil {
				done = got
			}
			delivered = true
		}
		if !delivered {
			return nil, fmt.Errorf("core: uplink CSI chunk lost after retries (client %d)", rep.Client)
		}
		n.trace(n.now, KindFeedback,
			TraceAttrs{Client: rep.Client, AP: lead.Index, Bits: int64(8 * len(chunk)), OK: true},
			"CSI chunk from client %d", rep.Client)
	}
	return done, nil
}
