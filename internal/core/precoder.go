package core

import (
	"fmt"
	"math"
	"math/cmplx"

	"megamimo/internal/matrix"
	"megamimo/internal/ofdm"
)

// Precoder holds per-subcarrier transmit weights for the joint
// transmission: W maps stream symbols to AP-antenna signals on each
// occupied bin, already scaled by the per-antenna power constraint (the
// paper's k in "APs multiply the signals by kH⁻¹", §9).
type Precoder struct {
	// Bins are the occupied FFT bins (same order as the Measurement).
	Bins []int
	// W[i] is the txAnts × streams weight matrix on Bins[i], including
	// PowerScale.
	W []*matrix.M
	// PowerScale is the scalar k; each client's effective per-bin signal
	// amplitude after zero-forcing is exactly k.
	PowerScale float64
	// Streams and TxAnts record the dimensions.
	Streams, TxAnts int
}

// ComputeZF builds the zero-forcing precoder W = k·H⁻¹ (pseudo-inverse
// when H is not square) from a channel measurement. lambda regularizes the
// inverse (0 = pure ZF; the stream noise variance yields an MMSE-flavored
// precoder useful at low SNR).
func ComputeZF(m *Measurement, lambda float64) (*Precoder, error) {
	if m == nil || len(m.H) == 0 {
		return nil, fmt.Errorf("core: no measurement to precode from")
	}
	streams, txAnts := m.H[0].Rows, m.H[0].Cols
	if txAnts < streams {
		return nil, fmt.Errorf("core: %d tx antennas cannot serve %d streams", txAnts, streams)
	}
	p := &Precoder{Bins: m.Bins, W: make([]*matrix.M, len(m.H)), Streams: streams, TxAnts: txAnts}
	// Per-antenna average transmit power before scaling.
	perAnt := make([]float64, txAnts)
	for i, h := range m.H {
		w, err := h.PseudoInverse(lambda)
		if err != nil {
			return nil, fmt.Errorf("core: bin %d: %w", m.Bins[i], err)
		}
		p.W[i] = w
		for a := 0; a < txAnts; a++ {
			row := w.Row(a)
			var pw float64
			for _, v := range row {
				pw += real(v)*real(v) + imag(v)*imag(v)
			}
			perAnt[a] += pw
		}
	}
	maxP := 0.0
	for a := range perAnt {
		perAnt[a] /= float64(len(m.H))
		if perAnt[a] > maxP {
			maxP = perAnt[a]
		}
	}
	if maxP <= 0 {
		return nil, fmt.Errorf("core: degenerate precoder (zero channel)")
	}
	p.PowerScale = 1 / math.Sqrt(maxP)
	s := complex(p.PowerScale, 0)
	for _, w := range p.W {
		for i := range w.Data {
			w.Data[i] *= s
		}
	}
	return p, nil
}

// ComputeDiversity builds the coherent-combining precoder of §8: every AP
// antenna transmits the single stream with weight h*/|h| per bin — full
// per-antenna power, phases aligned at the chosen stream's receiver.
func ComputeDiversity(m *Measurement, stream int) (*Precoder, error) {
	if m == nil || len(m.H) == 0 {
		return nil, fmt.Errorf("core: no measurement to precode from")
	}
	streams, txAnts := m.H[0].Rows, m.H[0].Cols
	if stream < 0 || stream >= streams {
		return nil, fmt.Errorf("core: diversity stream %d out of range", stream)
	}
	p := &Precoder{Bins: m.Bins, W: make([]*matrix.M, len(m.H)), Streams: 1, TxAnts: txAnts, PowerScale: 1}
	for i, h := range m.H {
		w := matrix.New(txAnts, 1)
		for a := 0; a < txAnts; a++ {
			g := h.At(stream, a)
			if ab := cmplx.Abs(g); ab > 1e-12 {
				w.Set(a, 0, cmplx.Conj(g)/complex(ab, 0))
			}
		}
		p.W[i] = w
	}
	return p, nil
}

// GainColumn returns the 64-bin per-subcarrier gain vector that transmit
// antenna txAnt applies to stream's frame (zeros outside occupied bins) —
// the argument to phy.SynthesizeWithGain.
func (p *Precoder) GainColumn(txAnt, stream int) []complex128 {
	gain := make([]complex128, ofdm.NFFT)
	for i, b := range p.Bins {
		gain[b] = p.W[i].At(txAnt, stream)
	}
	return gain
}

// EffectiveSubcarrierSNR predicts each stream's per-bin SNR after
// zero-forcing: |k|²/noiseVar on every occupied bin (§9's rate selection:
// "the effective channel is kH⁻¹H = kI, giving signal strength k² at each
// client").
func (p *Precoder) EffectiveSubcarrierSNR(noiseVar float64) []float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	out := make([]float64, len(p.Bins))
	snr := p.PowerScale * p.PowerScale / noiseVar
	for i := range out {
		out[i] = snr
	}
	return out
}

// DiversitySubcarrierSNR predicts the per-bin SNR of the diversity mode
// for the given measurement and stream: (Σ_a |h_a|)² / noiseVar per bin.
func DiversitySubcarrierSNR(m *Measurement, stream int, noiseVar float64) []float64 {
	if noiseVar <= 0 {
		noiseVar = 1e-12
	}
	out := make([]float64, len(m.H))
	for i, h := range m.H {
		var amp float64
		for a := 0; a < h.Cols; a++ {
			amp += cmplx.Abs(h.At(stream, a))
		}
		out[i] = amp * amp / noiseVar
	}
	return out
}
