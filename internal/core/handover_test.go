package core

import (
	"math"
	"testing"

	"megamimo/internal/phy"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// TestLeadHandoverKeepsBeamforming validates §9's per-transmission lead
// nomination: after one measurement phase, any AP can lead a joint
// transmission because every AP captured sync state toward every potential
// lead from the same measurement packet.
func TestLeadHandoverKeepsBeamforming(t *testing.T) {
	cfg := DefaultConfig(3, 3, 18, 24)
	cfg.Seed = 71
	cfg.WellConditioned = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	mcs, ok, err := n.ProbeAndSelectRate(300)
	if err != nil || !ok {
		t.Fatalf("rate: %v %v", ok, err)
	}
	src := rng.New(5)
	for _, leadIdx := range []int{0, 1, 2, 0, 2} {
		if err := n.SetLead(leadIdx); err != nil {
			t.Fatalf("SetLead(%d): %v", leadIdx, err)
		}
		payloads := make([][]byte, 3)
		for j := range payloads {
			payloads[j] = src.Bytes(make([]byte, 400))
		}
		res, err := n.JointTransmit(payloads, mcs)
		if err != nil {
			t.Fatalf("lead %d: %v", leadIdx, err)
		}
		delivered := 0
		for _, okj := range res.OK {
			if okj {
				delivered++
			}
		}
		if delivered < 2 {
			t.Fatalf("lead %d: only %d/3 streams delivered", leadIdx, delivered)
		}
	}
}

// TestLeadHandoverNullsHold checks the nulls survive a lead change: the
// INR with a non-default lead must stay in the same regime as the original.
func TestLeadHandoverNullsHold(t *testing.T) {
	cfg := DefaultConfig(3, 3, 18, 24)
	cfg.Seed = 73
	cfg.WellConditioned = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, cfg.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	inr0, err := n.NullingINR(0, 400, phy.MCS0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetLead(2); err != nil {
		t.Fatalf("SetLead(2): %v", err)
	}
	inr2, err := n.NullingINR(0, 400, phy.MCS0)
	if err != nil {
		t.Fatal(err)
	}
	d0, d2 := 10*math.Log10(inr0), 10*math.Log10(inr2)
	t.Logf("INR lead0 %.1f dB, lead2 %.1f dB", d0, d2)
	if d2 > d0+6 || d2 > 3 {
		t.Fatalf("nulls degraded after handover: %.1f dB vs %.1f dB", d2, d0)
	}
}

// TestPeerSyncCFOAccuracyAllPairs verifies every AP's CFO estimate toward
// every other AP, not just slaves toward the default lead.
func TestPeerSyncCFOAccuracyAllPairs(t *testing.T) {
	cfg := DefaultConfig(4, 1, 20, 24)
	cfg.Seed = 74
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	for _, ap := range n.APs {
		for _, peer := range n.APs {
			if ap.Index == peer.Index {
				continue
			}
			want := peer.Node.Osc.CFORadPerSample() - ap.Node.Osc.CFORadPerSample()
			got := ap.syncTo(peer.Index).CFO
			if units.Abs(got-want) > 1e-4 {
				t.Fatalf("AP %d → %d: cfo %v, true %v", ap.Index, peer.Index, got, want)
			}
		}
	}
}
