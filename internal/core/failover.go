package core

import (
	"fmt"

	"megamimo/internal/matrix"
)

// This file holds the graceful-degradation machinery: AP crash/restart
// state, deterministic lead re-election, injected sync-header corruption,
// and the N−1 zero-forcing rebuild used when a subset of APs participates
// in a joint transmission (crash or sync-abstain). The fault package
// drives these through its Injector; handover_test proves nulls survive a
// planned lead change, and this path extends that to unplanned ones.

// APLive reports whether AP i exists and has not crashed.
func (n *Network) APLive(i int) bool {
	return i >= 0 && i < len(n.crashed) && !n.crashed[i]
}

// LiveAPs counts the APs currently on the air.
func (n *Network) LiveAPs() int {
	live := 0
	for _, down := range n.crashed {
		if !down {
			live++
		}
	}
	return live
}

// ElectLead returns preferred when it names a live AP and otherwise the
// lowest live index — the deterministic re-election order (every AP can
// compute it locally from the shared crash view, so no extra backend
// round-trip is modeled).
func (n *Network) ElectLead(preferred int) int {
	if preferred >= 0 && preferred < len(n.APs) && !n.crashed[preferred] {
		return preferred
	}
	for i := range n.APs {
		if !n.crashed[i] {
			return i
		}
	}
	return 0
}

// CrashAP takes an AP off the air and off the bus. Its pending backend
// messages are purged (and counted as backend drops), and if it was the
// lead, the lowest live index takes over immediately — re-election within
// the same round, counted by lead_failovers_total. Crashing the last live
// AP is refused: the simulation has no one left to model.
func (n *Network) CrashAP(i int) error {
	if i < 0 || i >= len(n.APs) {
		return fmt.Errorf("core: CrashAP(%d): no such AP (have %d)", i, len(n.APs))
	}
	if n.crashed[i] {
		return fmt.Errorf("core: CrashAP(%d): already crashed", i)
	}
	if n.LiveAPs() == 1 {
		return fmt.Errorf("core: CrashAP(%d): refusing to crash the last live AP", i)
	}
	wasLead := n.APs[i].IsLead
	n.crashed[i] = true
	n.APs[i].IsLead = false
	n.Bus.Detach(i)
	n.trace(n.now, KindFault, TraceAttrs{AP: i, Cause: "ap-crash"}, "AP %d crashed", i)
	if wasLead {
		next := n.ElectLead(-1)
		n.APs[next].IsLead = true
		n.mLeadFailovers.Inc()
		n.trace(n.now, KindRecovery, TraceAttrs{AP: next, Cause: "lead-failover"},
			"lead AP %d crashed; AP %d took over", i, next)
	}
	return nil
}

// RestartAP brings a crashed AP back: re-attached to the bus, eligible to
// lead and to join transmissions again. Its sync state survives from
// before the crash, so its first rounds ride the staleness budget (or
// abstain) until a fresh measurement.
func (n *Network) RestartAP(i int) error {
	if i < 0 || i >= len(n.APs) {
		return fmt.Errorf("core: RestartAP(%d): no such AP (have %d)", i, len(n.APs))
	}
	if !n.crashed[i] {
		return fmt.Errorf("core: RestartAP(%d): not crashed", i)
	}
	n.crashed[i] = false
	n.Bus.Attach(i)
	n.trace(n.now, KindRecovery, TraceAttrs{AP: i, Cause: "ap-restart"}, "AP %d restarted", i)
	return nil
}

// CorruptSync makes AP i's sync-header measurements fail until the given
// ether time, exercising the extrapolate-then-abstain path without
// touching the medium.
func (n *Network) CorruptSync(i int, until int64) error {
	if i < 0 || i >= len(n.APs) {
		return fmt.Errorf("core: CorruptSync(%d): no such AP (have %d)", i, len(n.APs))
	}
	if until > n.syncLossUntil[i] {
		n.syncLossUntil[i] = until
	}
	n.trace(n.now, KindFault, TraceAttrs{AP: i, Cause: "sync-corrupt"},
		"AP %d sync headers corrupted until t=%d", i, until)
	return nil
}

// maskedWeights is one N−1 zero-forcing rebuild: per-antenna gain columns
// recomputed over a subset of APs. gain[globalAnt][stream] is nil when the
// antenna sits on a non-participating AP or the stream was shed.
type maskedWeights struct {
	gain   [][][]complex128
	served int
}

// participationMask returns the bitmask of APs joining the current round
// (live and not abstaining) and the full-strength mask for comparison.
func (n *Network) participationMask() (mask, full uint64) {
	for i := range n.APs {
		full |= 1 << uint(i)
		if !n.crashed[i] && !n.abstain[i] {
			mask |= 1 << uint(i)
		}
	}
	return mask, full
}

// weightsForMask returns (building and caching if needed) the degraded
// precoder for a participation mask: the lead re-zero-forces over the
// surviving AP antennas only. When the survivors have fewer antennas than
// streams, the highest stream indices are shed — those clients miss this
// round and the MAC retransmits — so the remaining clients keep their
// nulls instead of every client losing them. The rebuilds live in the
// network's ZFCache keyed by mask, so when the same degradation recurs
// after a re-measurement the per-bin inverses update incrementally
// (Sherman–Morrison) instead of re-inverting from scratch.
func (n *Network) weightsForMask(mask uint64) (*maskedWeights, error) {
	if n.Msmt == nil {
		return nil, fmt.Errorf("core: no measurement to rebuild a degraded precoder from")
	}
	if n.zf == nil {
		n.zf = NewZFCache()
	}
	if e := n.zf.entries[mask]; e != nil && e.src == n.Msmt && e.mw != nil {
		return e.mw, nil
	}
	aa := n.Cfg.AntennasPerAP
	ants := make([]int, 0, n.NumTxAntennas())
	for i := range n.APs {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		for m := 0; m < aa; m++ {
			ants = append(ants, i*aa+m)
		}
	}
	if len(ants) == 0 {
		return nil, fmt.Errorf("core: no participating AP antennas in mask %#x", mask)
	}
	streams := n.NumStreams()
	served := streams
	if len(ants) < served {
		served = len(ants)
	}
	sub := &Measurement{
		At:       n.Msmt.At,
		RefMid:   n.Msmt.RefMid,
		Bins:     n.Msmt.Bins,
		NoiseVar: n.Msmt.NoiseVar,
		H:        make([]*matrix.M, len(n.Msmt.H)),
	}
	for b, hm := range n.Msmt.H {
		h := matrix.New(served, len(ants))
		for r := 0; r < served; r++ {
			for c, g := range ants {
				h.Set(r, c, hm.At(r, g))
			}
		}
		sub.H[b] = h
	}
	e, err := n.zf.entry(mask, sub, 0)
	if err != nil {
		return nil, fmt.Errorf("core: degraded precoder for mask %#x: %w", mask, err)
	}
	p := e.pre
	mw := &maskedWeights{served: served, gain: make([][][]complex128, n.NumTxAntennas())}
	for c, g := range ants {
		mw.gain[g] = make([][]complex128, streams)
		for j := 0; j < served; j++ {
			mw.gain[g][j] = p.GainColumn(c, j)
		}
	}
	e.mw = mw
	e.src = n.Msmt
	return mw, nil
}
