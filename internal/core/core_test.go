package core

import (
	"bytes"
	"math"
	"math/cmplx"
	"testing"

	"megamimo/internal/phy"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// buildNet is the shared test constructor.
func buildNet(t *testing.T, nAPs, nClients int, snrLo, snrHi units.Decibels, seed int64) *Network {
	t.Helper()
	cfg := DefaultConfig(nAPs, nClients, snrLo, snrHi)
	cfg.Seed = seed
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestAntennaIDsDisjoint(t *testing.T) {
	n := buildNet(t, 4, 4, 15, 20, 1)
	seen := map[int]bool{}
	for a := 0; a < 4; a++ {
		id := n.APAntennaID(a, 0)
		if seen[id] {
			t.Fatalf("duplicate antenna id %d", id)
		}
		seen[id] = true
	}
	for c := 0; c < 4; c++ {
		id := n.ClientAntennaID(c, 0)
		if seen[id] {
			t.Fatalf("duplicate antenna id %d", id)
		}
		seen[id] = true
	}
}

func TestLeadElection(t *testing.T) {
	n := buildNet(t, 3, 3, 15, 20, 1)
	if n.Lead().Index != 0 || len(n.Slaves()) != 2 {
		t.Fatal("default lead wrong")
	}
	if err := n.SetLead(2); err != nil {
		t.Fatalf("SetLead(2): %v", err)
	}
	if n.Lead().Index != 2 {
		t.Fatal("SetLead failed")
	}
	for _, s := range n.Slaves() {
		if s.Index == 2 {
			t.Fatal("lead listed among slaves")
		}
	}
}

func TestMeasureProducesConsistentChannelEstimates(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 22, 3)
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	m := n.Msmt
	if m == nil || len(m.H) == 0 {
		t.Fatal("no measurement")
	}
	// Compare estimated |H| against the genie channel frequency response
	// (phases differ by the per-node oscillator phases, magnitudes must
	// match).
	for c := 0; c < 2; c++ {
		for a := 0; a < 2; a++ {
			genie := n.Air.Link(n.APAntennaID(a, 0), n.ClientAntennaID(c, 0)).FreqResponse(64)
			var err2, ref2 float64
			for i, b := range m.Bins {
				ge := cmplx.Abs(genie[b])
				est := cmplx.Abs(m.H[i].At(c, a))
				err2 += (ge - est) * (ge - est)
				ref2 += ge * ge
			}
			if err2/ref2 > 0.02 {
				t.Fatalf("client %d AP %d: |H| estimate error %.1f%%", c, a, 100*err2/ref2)
			}
		}
	}
	// Slaves must hold a reference channel.
	for _, s := range n.Slaves() {
		if s.syncTo(n.Lead().Index).Ref == nil {
			t.Fatalf("slave %d missing reference state", s.Index)
		}
	}
}

func TestMeasuredCFOMatchesOscillators(t *testing.T) {
	n := buildNet(t, 3, 1, 20, 22, 4)
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	lead := n.Lead()
	for _, s := range n.Slaves() {
		want := lead.Node.Osc.CFORadPerSample() - s.Node.Osc.CFORadPerSample()
		got := s.syncTo(lead.Index).CFO
		if units.Abs(got-want) > 5e-5 {
			t.Fatalf("slave %d CFO estimate %v, true %v", s.Index, got, want)
		}
	}
}

func TestJointTransmitBeforeMeasureFails(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 22, 5)
	_, err := n.JointTransmit(make([][]byte, 2), phy.MCS2)
	if err == nil {
		t.Fatal("transmit without measurement accepted")
	}
}

func TestJointTransmitTwoByTwo(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 24, 6)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	src := rng.New(99)
	payloads := [][]byte{src.Bytes(make([]byte, 700)), src.Bytes(make([]byte, 700))}
	res, err := n.JointTransmit(payloads, phy.MCS2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if !res.OK[j] {
			snr := units.Decibels(-1)
			if res.Frames[j] != nil {
				snr = res.Frames[j].SNRdB
			}
			t.Fatalf("stream %d failed (frame SNR %v dB)", j, snr)
		}
		if !bytes.Equal(res.Frames[j].Payload, payloads[j]) {
			t.Fatalf("stream %d payload corrupted", j)
		}
	}
}

func TestJointTransmitConcurrentStreamsDiffer(t *testing.T) {
	// The whole point: different payloads delivered at the same time on
	// the same channel.
	n := buildNet(t, 3, 3, 18, 24, 7)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	// Closed-loop link adaptation: probe, then run at the adapted rate
	// (the zero-forcing power penalty k² — the paper's K factor — and the
	// realized residual interference decide what each client sustains).
	mcs, ok, err := n.ProbeAndSelectRate(400)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no deliverable MCS")
	}
	src := rng.New(123)
	const trials = 5
	delivered := make([]int, 3)
	for trial := 0; trial < trials; trial++ {
		payloads := [][]byte{
			src.Bytes(make([]byte, 500)),
			src.Bytes(make([]byte, 500)),
			src.Bytes(make([]byte, 500)),
		}
		res, err := n.JointTransmit(payloads, mcs)
		if err != nil {
			t.Fatal(err)
		}
		for j := range payloads {
			if res.OK[j] {
				if !bytes.Equal(res.Frames[j].Payload, payloads[j]) {
					t.Fatalf("stream %d delivered corrupted payload", j)
				}
				delivered[j]++
			}
		}
	}
	// Different data must flow concurrently to every client; occasional
	// per-packet losses are ordinary link behavior handled by retransmit.
	for j, d := range delivered {
		if d < 3 {
			t.Fatalf("stream %d delivered only %d/%d at adapted rate %v", j, d, trials, mcs)
		}
	}
}

func TestRepeatedTransmissionsAmortizeOneMeasurement(t *testing.T) {
	// §5: "a single channel measurement phase can be followed by multiple
	// data transmissions" — the direct phase measurement must keep nulls
	// intact over many packets and tens of milliseconds.
	n := buildNet(t, 2, 2, 18, 24, 8)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	for pkt := 0; pkt < 8; pkt++ {
		payloads := [][]byte{src.Bytes(make([]byte, 400)), src.Bytes(make([]byte, 400))}
		res, err := n.JointTransmit(payloads, phy.MCS2)
		if err != nil {
			t.Fatal(err)
		}
		for j := range payloads {
			if !res.OK[j] {
				t.Fatalf("packet %d stream %d failed", pkt, j)
			}
		}
		// Idle gap between packets: oscillators keep drifting.
		n.AdvanceTime(20000) // 2 ms at 10 MHz
	}
}

func TestNullingINRIsSmall(t *testing.T) {
	n := buildNet(t, 3, 3, 18, 24, 9)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	inr, err := n.NullingINR(0, 400, phy.MCS2)
	if err != nil {
		t.Fatal(err)
	}
	inrDB := 10 * math.Log10(inr)
	// Paper Fig. 8: INR stays below ~1.5 dB even with 10 pairs; for 3 it
	// should be small. Allow slack but catch gross misalignment.
	if inrDB > 3 {
		t.Fatalf("INR %v dB — nulls not holding", inrDB)
	}
}

func TestZFPrecoderDiagonalizesMeasuredChannel(t *testing.T) {
	n := buildNet(t, 3, 3, 18, 22, 10)
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Msmt.H {
		prod := n.Msmt.H[i].Mul(p.W[i])
		for r := 0; r < prod.Rows; r++ {
			for c := 0; c < prod.Cols; c++ {
				v := cmplx.Abs(prod.At(r, c))
				if r == c && math.Abs(v-p.PowerScale) > 1e-6*p.PowerScale {
					t.Fatalf("bin %d diag %v != k %v", n.Msmt.Bins[i], v, p.PowerScale)
				}
				if r != c && v > 1e-9 {
					t.Fatalf("bin %d off-diag %v", n.Msmt.Bins[i], v)
				}
			}
		}
	}
}

func TestDiversityPrecoderUnitWeights(t *testing.T) {
	n := buildNet(t, 4, 1, 10, 14, 11)
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeDiversity(n.Msmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.W {
		for a := 0; a < p.TxAnts; a++ {
			if m := cmplx.Abs(p.W[i].At(a, 0)); math.Abs(m-1) > 1e-9 {
				t.Fatalf("diversity weight magnitude %v", m)
			}
		}
	}
	if _, err := ComputeDiversity(n.Msmt, 5); err == nil {
		t.Fatal("out-of-range stream accepted")
	}
}
