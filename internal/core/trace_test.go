package core

import (
	"strings"
	"testing"
)

func TestTracerRecordsProtocolTimeline(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 140)
	n.Trace().Enable(100)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{make([]byte, 200), make([]byte, 200)}
	if _, err := n.JointTransmit(payloads, 0); err != nil {
		t.Fatal(err)
	}
	evs := n.Trace().Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[string]bool{}
	var prev int64 = -1
	for _, e := range evs {
		kinds[e.Kind] = true
		if e.At < prev {
			t.Fatalf("timeline not monotone: %v", e)
		}
		prev = e.At
		if !strings.Contains(e.String(), e.Kind) {
			t.Fatalf("String missing kind: %q", e.String())
		}
	}
	for _, want := range []string{"measure", "sync-header", "slave-ratio", "joint-tx"} {
		if !kinds[want] {
			t.Fatalf("missing %q events (got %v)", want, kinds)
		}
	}
}

func TestTracerDisabledIsFree(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 141)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	if evs := n.Trace().Events(); len(evs) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(evs))
	}
}

func TestTracerLimit(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 142)
	n.Trace().Enable(2)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Trace().Events()); got > 2 {
		t.Fatalf("limit ignored: %d events", got)
	}
}

func TestTraceKindConstantsAreValid(t *testing.T) {
	for _, k := range []string{
		KindMeasure, KindSyncHeader, KindSlaveRatio, KindJointTx,
		KindDecode, KindFeedback, KindTraffic, KindMetrics,
	} {
		if !ValidKind(k) {
			t.Errorf("exported kind constant %q not in the valid set", k)
		}
	}
	if ValidKind("") || ValidKind("Joint-Tx") || ValidKind("joint_tx") {
		t.Error("ValidKind accepted a kind outside the vocabulary")
	}
}

func TestTracerRejectsUnknownKinds(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(16)
	tr.Emit(1, "bogus-kind", "must be dropped")
	tr.Emit(2, "JOINT-TX", "case matters; must be dropped")
	tr.Emit(3, KindTraffic, "legit workload event %d", 7)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want only the valid one: %v", len(evs), evs)
	}
	if evs[0].Kind != KindTraffic || !strings.Contains(evs[0].Msg, "legit workload event 7") {
		t.Fatalf("surviving event wrong: %+v", evs[0])
	}
}
