package core

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerRecordsProtocolTimeline(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 140)
	n.Trace().Enable(200)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{make([]byte, 200), make([]byte, 200)}
	if _, err := n.JointTransmit(payloads, 0); err != nil {
		t.Fatal(err)
	}
	evs := n.Trace().Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[string]bool{}
	var prev int64 = -1
	open := map[int64]string{} // span id → kind
	for _, e := range evs {
		kinds[e.Kind] = true
		if e.At < prev {
			t.Fatalf("timeline not monotone: %v", e)
		}
		prev = e.At
		if !strings.Contains(e.String(), e.Kind) {
			t.Fatalf("String missing kind: %q", e.String())
		}
		switch e.Ph {
		case PhBegin:
			if e.Span == 0 {
				t.Fatalf("begin event without span id: %+v", e)
			}
			open[e.Span] = e.Kind
		case PhEnd:
			if open[e.Span] != e.Kind {
				t.Fatalf("end event %+v closes span of kind %q", e, open[e.Span])
			}
			delete(open, e.Span)
		case PhInstant:
		default:
			t.Fatalf("unknown phase %q in %+v", string(e.Ph), e)
		}
	}
	if len(open) != 0 {
		t.Fatalf("unbalanced spans left open: %v", open)
	}
	for _, want := range []string{"measure", "sync-header", "slave-ratio", "joint-tx", "decode"} {
		if !kinds[want] {
			t.Fatalf("missing %q events (got %v)", want, kinds)
		}
	}
}

// TestTracerSlaveRatioTelemetry checks the phase-sync telemetry rides on
// the slave-ratio events: a finite residual and a CFO estimate close to
// the true inter-oscillator offset.
func TestTracerSlaveRatioTelemetry(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 143)
	n.Trace().Enable(500)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{make([]byte, 200), make([]byte, 200)}
	for i := 0; i < 3; i++ {
		if _, err := n.JointTransmit(payloads, 0); err != nil {
			t.Fatal(err)
		}
	}
	lead, slave := n.Lead(), n.Slaves()[0]
	// The sync peer states CFO estimates ω_peer − ω_self = ω_lead − ω_slave.
	trueCFO := lead.Node.Osc.CFORadPerSample() - slave.Node.Osc.CFORadPerSample()
	seen := 0
	for _, e := range n.Trace().Events() {
		if e.Kind != KindSlaveRatio {
			continue
		}
		seen++
		if e.Attrs.AP != slave.Index {
			t.Fatalf("slave-ratio event for AP %d, want %d", e.Attrs.AP, slave.Index)
		}
		if d := e.Attrs.CFORadPerSample - trueCFO; d > 1e-4 || d < -1e-4 {
			t.Errorf("CFO attr %.3e, true %.3e", e.Attrs.CFORadPerSample, trueCFO)
		}
		if e.Attrs.PhaseErrRad > 1 || e.Attrs.PhaseErrRad < -1 {
			t.Errorf("implausible phase residual %.3f rad", e.Attrs.PhaseErrRad)
		}
	}
	if seen == 0 {
		t.Fatal("no slave-ratio events")
	}
}

func TestTracerDisabledIsFree(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 141)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	if evs := n.Trace().Events(); len(evs) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(evs))
	}
}

// TestTracerRing checks the satellite fix: at the limit the tracer keeps
// the most recent events (the interesting tail), not the oldest, and
// counts the overflow.
func TestTracerRing(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(8)
	for i := 0; i < 20; i++ {
		tr.Emit(int64(i), KindTraffic, TraceAttrs{Pkt: int64(i)}, "")
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	for i, e := range evs {
		if want := int64(12 + i); e.At != want || e.Attrs.Pkt != want || e.Seq != want {
			t.Fatalf("ring slot %d = %+v, want the tail event t=%d", i, e, want)
		}
	}
	if got := tr.Overflowed(); got != 12 {
		t.Fatalf("Overflowed() = %d, want 12", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d, want 0", got)
	}
}

// TestTracerLimitDuringProtocol keeps the end-to-end flavor of the old
// limit test: a tiny ring over a real measurement keeps only `limit`
// events and reports the displaced count.
func TestTracerLimitDuringProtocol(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 142)
	n.Trace().Enable(2)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	evs := n.Trace().Events()
	if len(evs) != 2 {
		t.Fatalf("limit ignored: %d events", len(evs))
	}
	// The retained tail must be the *latest* events.
	if n.Trace().Overflowed() == 0 {
		t.Fatal("expected overflow on a 2-event ring")
	}
	if evs[0].Seq+1 != evs[1].Seq {
		t.Fatalf("tail not contiguous: %+v", evs)
	}
}

func TestTraceKindConstantsAreValid(t *testing.T) {
	for _, k := range Kinds() {
		if !ValidKind(k) {
			t.Errorf("exported kind constant %q not in the valid set", k)
		}
	}
	if len(Kinds()) != 14 {
		t.Errorf("Kinds() lists %d kinds, want 14", len(Kinds()))
	}
	if ValidKind("") || ValidKind("Joint-Tx") || ValidKind("joint_tx") {
		t.Error("ValidKind accepted a kind outside the vocabulary")
	}
}

func TestTracerRejectsUnknownKinds(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(16)
	tr.Emit(1, "bogus-kind", TraceAttrs{}, "must be dropped")
	tr.Emit(2, "JOINT-TX", TraceAttrs{}, "case matters; must be dropped")
	if id := tr.BeginSpan(3, "bogus-span", TraceAttrs{}, ""); id != 0 {
		t.Fatalf("BeginSpan accepted an unknown kind (id %d)", id)
	}
	tr.Emit(4, KindTraffic, TraceAttrs{}, "legit workload event %d", 7)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want only the valid one: %v", len(evs), evs)
	}
	if evs[0].Kind != KindTraffic || !strings.Contains(evs[0].Msg, "legit workload event 7") {
		t.Fatalf("surviving event wrong: %+v", evs[0])
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
}

// TestTraceDroppedMetric checks the observer's own error counter reaches
// the network metrics registry (trace_dropped_total).
func TestTraceDroppedMetric(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 144)
	n.Trace().Enable(16)
	n.Trace().Emit(1, "not-a-kind", TraceAttrs{}, "")
	if got := n.Metrics().Counter("trace_dropped_total").Value(); got != 1 {
		t.Fatalf("trace_dropped_total = %d, want 1", got)
	}
	for i := 0; i < 20; i++ {
		n.Trace().Emit(int64(i), KindMetrics, TraceAttrs{}, "")
	}
	if got := n.Metrics().Counter("trace_overflow_total").Value(); got != 4 {
		t.Fatalf("trace_overflow_total = %d, want 4", got)
	}
}

// TestTracerSpansAttachInstants checks instants inherit the innermost
// open span and EndSpan pops the right frame even out of order.
func TestTracerSpansAttachInstants(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(32)
	outer := tr.BeginSpan(0, KindRound, TraceAttrs{}, "")
	inner := tr.BeginSpan(1, KindJointTx, TraceAttrs{}, "")
	tr.Emit(2, KindDecode, TraceAttrs{}, "")
	tr.EndSpan(inner, 3)
	tr.Emit(4, KindRetransmit, TraceAttrs{}, "")
	tr.EndSpan(outer, 5)
	tr.Emit(6, KindTraffic, TraceAttrs{}, "")
	evs := tr.Events()
	byAt := map[int64]TraceEvent{}
	for _, e := range evs {
		byAt[e.At] = e
	}
	if got := byAt[2].Span; got != int64(inner) {
		t.Errorf("instant inside inner span has span %d, want %d", got, inner)
	}
	if got := byAt[4].Span; got != int64(outer) {
		t.Errorf("instant after inner end has span %d, want %d", got, outer)
	}
	if got := byAt[6].Span; got != 0 {
		t.Errorf("instant outside spans has span %d, want 0", got)
	}
	if byAt[3].Kind != KindJointTx || byAt[3].Ph != PhEnd {
		t.Errorf("inner end event wrong: %+v", byAt[3])
	}
	// Ending an unknown / already-closed span is a no-op.
	tr.EndSpan(inner, 7)
	tr.EndSpan(0, 8)
	if got := len(tr.Events()); got != len(evs) {
		t.Errorf("no-op EndSpan recorded events: %d -> %d", len(evs), got)
	}
}

// TestTracerConcurrentSpans exercises concurrent begin/emit/end from
// parallel workers under -race (experiment workers may share a tracer).
func TestTracerConcurrentSpans(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := tr.BeginSpan(int64(i), KindRound, TraceAttrs{AP: w}, "")
				tr.Emit(int64(i), KindDecode, TraceAttrs{AP: w}, "")
				tr.EndSpan(id, int64(i)+1)
			}
		}(w)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != 8*50*3 {
		t.Fatalf("recorded %d events, want %d", len(evs), 8*50*3)
	}
	seen := map[int64]bool{}
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestMergeTraces(t *testing.T) {
	a := &Tracer{}
	a.Enable(16)
	sa := a.BeginSpan(0, KindRound, TraceAttrs{}, "cell a")
	a.EndSpan(sa, 1)
	b := &Tracer{}
	b.Enable(16)
	sb := b.BeginSpan(0, KindRound, TraceAttrs{}, "cell b")
	b.Emit(1, KindDecode, TraceAttrs{}, "")
	b.EndSpan(sb, 2)
	merged := MergeTraces(a.Events(), b.Events())
	if len(merged) != 5 {
		t.Fatalf("merged %d events, want 5", len(merged))
	}
	for i, e := range merged {
		if e.Seq != int64(i) {
			t.Fatalf("merged seq not renumbered: %+v at %d", e, i)
		}
	}
	if merged[0].Span == merged[2].Span {
		t.Fatal("span ids collide across cells")
	}
	if merged[3].Span != merged[2].Span {
		t.Fatal("cell b instant lost its span after offsetting")
	}
}

// collectSink is a test TraceSink that keeps every event it is handed.
type collectSink struct{ evs []TraceEvent }

func (c *collectSink) ConsumeTrace(e TraceEvent) { c.evs = append(c.evs, e) }

// TestTracerSinkSeesFullStream checks the streaming contract: a sink
// receives every validated event in seq order, including events the ring
// later displaces, and skips rejected kinds.
func TestTracerSinkSeesFullStream(t *testing.T) {
	tr := &Tracer{}
	sink := &collectSink{}
	tr.SetSink(sink)
	tr.Enable(4)
	for i := 0; i < 10; i++ {
		tr.Emit(int64(i), KindTraffic, TraceAttrs{Pkt: int64(i)}, "")
	}
	tr.Emit(10, "bogus-kind", TraceAttrs{}, "")
	if len(tr.Events()) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(tr.Events()))
	}
	if len(sink.evs) != 10 {
		t.Fatalf("sink saw %d events, want the full stream of 10", len(sink.evs))
	}
	for i, e := range sink.evs {
		if e.Seq != int64(i) || e.At != int64(i) {
			t.Fatalf("sink event %d = %+v, want seq/at %d", i, e, i)
		}
	}
}

// TestTracerSinkSurvivesEnable pins the pipeline semantics: Enable resets
// the ring and seq but keeps the attached sink observing.
func TestTracerSinkSurvivesEnable(t *testing.T) {
	tr := &Tracer{}
	sink := &collectSink{}
	tr.SetSink(sink)
	tr.Enable(8)
	tr.Emit(1, KindTraffic, TraceAttrs{}, "first window")
	tr.Enable(8)
	tr.Emit(2, KindTraffic, TraceAttrs{}, "second window")
	if len(sink.evs) != 2 {
		t.Fatalf("sink saw %d events across Enable, want 2", len(sink.evs))
	}
	if sink.evs[1].Seq != 0 {
		t.Fatalf("second window seq = %d, want a fresh 0 after Enable", sink.evs[1].Seq)
	}
	tr.SetSink(nil)
	tr.Emit(3, KindTraffic, TraceAttrs{}, "after detach")
	if len(sink.evs) != 2 {
		t.Fatal("detached sink still receiving events")
	}
}

func TestTeeSinks(t *testing.T) {
	a, b := &collectSink{}, &collectSink{}
	if TeeSinks() != nil || TeeSinks(nil, nil) != nil {
		t.Fatal("empty tee should collapse to nil")
	}
	if got := TeeSinks(a); got != TraceSink(a) {
		t.Fatal("single-sink tee should return the sink itself")
	}
	tee := TeeSinks(a, nil, b)
	tee.ConsumeTrace(TraceEvent{Seq: 7, Kind: KindDecode})
	if len(a.evs) != 1 || len(b.evs) != 1 || a.evs[0].Seq != 7 || b.evs[0].Seq != 7 {
		t.Fatalf("tee fan-out wrong: a=%d b=%d", len(a.evs), len(b.evs))
	}
}

// TestTracerFirstOverflowAt checks the truncation-visibility satellite:
// the ether time of the event that displaced the first ring entry is
// recorded once, and Enable clears it.
func TestTracerFirstOverflowAt(t *testing.T) {
	tr := &Tracer{}
	tr.Enable(3)
	if _, ok := tr.FirstOverflowAt(); ok {
		t.Fatal("fresh tracer claims an overflow")
	}
	for i := 0; i < 3; i++ {
		tr.Emit(int64(100+i), KindTraffic, TraceAttrs{}, "")
	}
	if _, ok := tr.FirstOverflowAt(); ok {
		t.Fatal("exactly-full ring claims an overflow")
	}
	tr.Emit(500, KindTraffic, TraceAttrs{}, "")
	tr.Emit(600, KindTraffic, TraceAttrs{}, "")
	at, ok := tr.FirstOverflowAt()
	if !ok || at != 500 {
		t.Fatalf("FirstOverflowAt() = %d,%v; want 500,true (first displacing event)", at, ok)
	}
	tr.Enable(3)
	if _, ok := tr.FirstOverflowAt(); ok {
		t.Fatal("Enable did not clear the overflow timestamp")
	}
}
