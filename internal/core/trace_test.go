package core

import (
	"strings"
	"testing"
)

func TestTracerRecordsProtocolTimeline(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 140)
	n.Trace().Enable(100)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{make([]byte, 200), make([]byte, 200)}
	if _, err := n.JointTransmit(payloads, 0); err != nil {
		t.Fatal(err)
	}
	evs := n.Trace().Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[string]bool{}
	var prev int64 = -1
	for _, e := range evs {
		kinds[e.Kind] = true
		if e.At < prev {
			t.Fatalf("timeline not monotone: %v", e)
		}
		prev = e.At
		if !strings.Contains(e.String(), e.Kind) {
			t.Fatalf("String missing kind: %q", e.String())
		}
	}
	for _, want := range []string{"measure", "sync-header", "slave-ratio", "joint-tx"} {
		if !kinds[want] {
			t.Fatalf("missing %q events (got %v)", want, kinds)
		}
	}
}

func TestTracerDisabledIsFree(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 141)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	if evs := n.Trace().Events(); len(evs) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(evs))
	}
}

func TestTracerLimit(t *testing.T) {
	n := buildNet(t, 2, 2, 20, 25, 142)
	n.Trace().Enable(2)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Trace().Events()); got > 2 {
		t.Fatalf("limit ignored: %d events", got)
	}
}
