package core

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"megamimo/internal/phy"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

func TestMisalignmentSmall(t *testing.T) {
	// §11.1(b): the distributed phase sync must keep the lead/slave
	// relative phase within a few hundredths of a radian across rounds.
	n := buildNet(t, 2, 1, 26, 30, 21)
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	devs, err := n.MeasureMisalignment(40, 20000) // 2 ms gaps
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 39 {
		t.Fatalf("%d deviations", len(devs))
	}
	sort.Float64s(devs)
	median := devs[len(devs)/2]
	p95 := devs[int(float64(len(devs))*0.95)]
	t.Logf("misalignment: median %.4f rad, p95 %.4f rad (paper: 0.017 / 0.05)", median, p95)
	if median > 0.05 {
		t.Fatalf("median misalignment %.4f rad too large", median)
	}
	if p95 > 0.15 {
		t.Fatalf("p95 misalignment %.4f rad too large", p95)
	}
}

func TestDiversityTransmitRescuesWeakClient(t *testing.T) {
	// §8 / Fig. 11: coherent combining from several APs reaches a client
	// whose individual links are too weak for a single AP.
	cfg := DefaultConfig(6, 1, 4, 7) // ~5 dB per-AP links
	cfg.Seed = 22
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Measure(); err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	payload := src.Bytes(make([]byte, 700))
	res, err := n.DiversityTransmit(0, payload, phy.MCS2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK[0] || !bytes.Equal(res.Frames[0].Payload, payload) {
		t.Fatal("diversity transmission failed at QPSK with 6 APs on ~5 dB links")
	}
	// The frame SNR should reflect coherent gain: well above any single
	// link (≈5 dB + 10·log10(36) ≈ 20 dB; demand at least 12).
	if res.Frames[0].SNRdB < 12 {
		t.Fatalf("diversity SNR %.1f dB shows no coherent gain", res.Frames[0].SNRdB)
	}
}

func TestDiversitySNRScalesQuadratically(t *testing.T) {
	// N APs aligned in phase give ~N² received power (paper: "coherent
	// diversity ... multiplicative increase in the SNR of N²").
	snr := func(nAPs int) float64 {
		cfg := DefaultConfig(nAPs, 1, 10, 11)
		cfg.Seed = 23
		cfg.LinkSpreadDB = 0.1
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Measure(); err != nil {
			t.Fatal(err)
		}
		src := rng.New(5)
		res, err := n.DiversityTransmit(0, src.Bytes(make([]byte, 400)), phy.MCS0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Frames[0] == nil {
			t.Fatal("no frame")
		}
		return units.Ratio(res.Frames[0].SNRdB, 1)
	}
	s2, s8 := snr(2), snr(8)
	gain := s8 - s2
	// N² scaling predicts 20·log10(8/2) ≈ 12 dB; allow generous slack for
	// fading and the receiver's EVM floor.
	t.Logf("diversity SNR: 2 APs %.1f dB, 8 APs %.1f dB (Δ %.1f, theory ≈12)", s2, s8, gain)
	if gain < 6 {
		t.Fatalf("diversity gain %.1f dB far from quadratic scaling", gain)
	}
}

func TestDecoupledMeasurementStillBeamforms(t *testing.T) {
	// §7: channels to client 0 and client 1 measured in separate packets
	// 30 ms apart must still yield working joint nulls.
	cfg := DefaultConfig(2, 2, 18, 24)
	cfg.Seed = 24
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.MeasureDecoupled([][]int{{0}, {1}}, 300000); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	src := rng.New(7)
	payloads := [][]byte{src.Bytes(make([]byte, 600)), src.Bytes(make([]byte, 600))}
	delivered := 0
	for trial := 0; trial < 4; trial++ {
		res, err := n.JointTransmit(payloads, phy.MCS2)
		if err != nil {
			t.Fatal(err)
		}
		if res.OK[0] && res.OK[1] {
			delivered++
		}
	}
	if delivered < 3 {
		t.Fatalf("decoupled measurement delivered both streams in only %d/4 transmissions", delivered)
	}
}

func TestDecoupledMatchesJointMeasurementQuality(t *testing.T) {
	// The INR with decoupled measurement should stay in the same regime as
	// a single-shot measurement.
	joint := buildNet(t, 3, 3, 18, 24, 25)
	if _, err := joint.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	inrJ, err := joint.NullingINR(0, 400, phy.MCS2)
	if err != nil {
		t.Fatal(err)
	}
	dec := buildNet(t, 3, 3, 18, 24, 25)
	if err := dec.MeasureDecoupled([][]int{{0, 1}, {2}}, 100000); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(dec.Msmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec.SetPrecoder(p)
	inrD, err := dec.NullingINR(0, 400, phy.MCS2)
	if err != nil {
		t.Fatal(err)
	}
	dJ, dD := 10*math.Log10(inrJ), 10*math.Log10(inrD)
	t.Logf("INR joint %.1f dB, decoupled %.1f dB", dJ, dD)
	if dD > dJ+4 {
		t.Fatalf("decoupled measurement degrades INR: %.1f vs %.1f dB", dD, dJ)
	}
}

func TestProbeAndSelectRateRunsEndToEnd(t *testing.T) {
	n := buildNet(t, 2, 2, 18, 24, 26)
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	mcs, ok, err := n.ProbeAndSelectRate(300)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("probe found no rate at 18-24 dB")
	}
	if mcs < phy.MCS1 {
		t.Fatalf("adapted rate %v implausibly low for 18-24 dB links", mcs)
	}
}

func TestGoodputBits(t *testing.T) {
	r := &TxResult{
		Frames: []*phy.RxFrame{{Payload: make([]byte, 100)}, {Payload: make([]byte, 100)}},
		OK:     []bool{true, false},
	}
	if got := r.GoodputBits(); got != 800 {
		t.Fatalf("GoodputBits = %v", got)
	}
}
