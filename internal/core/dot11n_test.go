package core

import (
	"bytes"
	"math/cmplx"
	"testing"

	"megamimo/internal/csi"
	"megamimo/internal/phy"
	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// dot11nConfig mirrors the paper's second testbed: two 2-antenna APs, two
// 2-antenna clients, 20 MHz.
func dot11nConfig(seed int64, snrLo, snrHi units.Decibels) Config {
	cfg := DefaultConfig(2, 2, snrLo, snrHi)
	cfg.AntennasPerAP = 2
	cfg.AntennasPerClient = 2
	cfg.SampleRate = 20e6
	cfg.TriggerDelaySamples = 1500
	cfg.Seed = seed
	return cfg
}

func TestMeasureDot11nMatchesGenieMagnitudes(t *testing.T) {
	cfg := dot11nConfig(31, 20, 24)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.MeasureDot11n(); err != nil {
		t.Fatal(err)
	}
	m := n.Msmt
	if m == nil || m.H[0].Rows != 4 || m.H[0].Cols != 4 {
		t.Fatalf("802.11n measurement shape wrong")
	}
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			cl, cm := row/2, row%2
			ap, am := col/2, col%2
			genie := n.Air.Link(n.APAntennaID(ap, am), n.ClientAntennaID(cl, cm)).FreqResponse(64)
			var err2, ref2 float64
			for i, b := range m.Bins {
				d := cmplx.Abs(m.H[i].At(row, col)) - cmplx.Abs(genie[b])
				err2 += d * d
				ref2 += cmplx.Abs(genie[b]) * cmplx.Abs(genie[b])
			}
			if err2/ref2 > 0.05 {
				t.Fatalf("H[%d][%d]: |H| error %.1f%%", row, col, 100*err2/ref2)
			}
		}
	}
}

func TestDot11nJointTransmitFourStreams(t *testing.T) {
	// Two 2-antenna APs serve two 2-antenna clients with four concurrent
	// streams — the paper's "combine two 2x2 MIMO systems to create a 4x4
	// MIMO system".
	cfg := dot11nConfig(32, 22, 26)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.MeasureDot11n(); err != nil {
		t.Fatal(err)
	}
	p, err := ComputeZF(n.Msmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	mcs, ok, err := n.ProbeAndSelectRate(300)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no rate deliverable over the 802.11n path")
	}
	src := rng.New(41)
	delivered := make([]int, 4)
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		payloads := make([][]byte, 4)
		for j := range payloads {
			payloads[j] = src.Bytes(make([]byte, 400))
		}
		res, err := n.JointTransmit(payloads, mcs)
		if err != nil {
			t.Fatal(err)
		}
		for j := range payloads {
			if res.OK[j] {
				if !bytes.Equal(res.Frames[j].Payload, payloads[j]) {
					t.Fatalf("stream %d corrupted", j)
				}
				delivered[j]++
			}
		}
	}
	for j, d := range delivered {
		if d < 3 {
			t.Fatalf("stream %d delivered %d/%d at %v", j, d, trials, mcs)
		}
	}
}

func TestDot11nRequiresTwoAntennasTotal(t *testing.T) {
	cfg := DefaultConfig(1, 1, 20, 24)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.MeasureDot11n(); err == nil {
		t.Fatal("single-antenna network accepted")
	}
}

func TestDot11nCSIQuantizationTolerated(t *testing.T) {
	// Intel 5300 CSI is fixed point; 8-bit quantization must not break
	// beamforming.
	cfg := dot11nConfig(33, 22, 26)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.MeasureDot11n(); err != nil {
		t.Fatal(err)
	}
	// Quantize each bin matrix row-wise, as the firmware would.
	for bi := range n.Msmt.H {
		for r := 0; r < n.Msmt.H[bi].Rows; r++ {
			row := n.Msmt.H[bi].Row(r)
			copy(row, csi.Quantize(row, 8))
		}
	}
	p, err := ComputeZF(n.Msmt, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.SetPrecoder(p)
	src := rng.New(43)
	payloads := make([][]byte, 4)
	for j := range payloads {
		payloads[j] = src.Bytes(make([]byte, 300))
	}
	res, err := n.JointTransmit(payloads, phy.MCS0)
	if err != nil {
		t.Fatal(err)
	}
	okCount := 0
	for _, ok := range res.OK {
		if ok {
			okCount++
		}
	}
	if okCount < 3 {
		t.Fatalf("only %d/4 streams survived 8-bit CSI quantization", okCount)
	}
}
