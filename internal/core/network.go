// Package core implements MegaMIMO itself: the distributed phase
// synchronization protocol (§4–5), joint zero-forcing multi-user
// beamforming across independent APs, the diversity mode (§8), decoupled
// per-receiver channel measurement (§7 and the appendix), and the 802.11n
// compatibility path (§6).
//
// The package drives real signal paths end to end: every channel estimate
// the protocol uses is measured from samples observed on the shared air
// medium (internal/air) by the node that owns it, with that node's own
// oscillator impairments — no genie state crosses between nodes except
// over the modeled Ethernet backend, exactly as in the paper's testbed.
package core

import (
	"fmt"
	"math"
	"sync"

	"megamimo/internal/air"
	"megamimo/internal/backend"
	"megamimo/internal/channel"
	"megamimo/internal/dsp"
	"megamimo/internal/matrix"
	"megamimo/internal/metrics"
	"megamimo/internal/ofdm"
	"megamimo/internal/phy"
	"megamimo/internal/radio"
	"megamimo/internal/rng"
	psync "megamimo/internal/sync"
	"megamimo/internal/units"
)

// Config assembles a MegaMIMO network.
type Config struct {
	// NumAPs and NumClients size the network; the paper's headline
	// experiments use NumAPs == NumClients.
	NumAPs, NumClients int
	// AntennasPerAP / AntennasPerClient: 1 for the USRP testbed, 2 for the
	// 802.11n testbed.
	AntennasPerAP, AntennasPerClient int
	// SampleRate: 10 MHz (USRP testbed) or 20 MHz (802.11n testbed).
	SampleRate units.Hertz
	// CarrierHz is the RF carrier, default 2.437 GHz (channel 6).
	CarrierHz units.Hertz
	// PPMBudget bounds each node's crystal error (uniform ±budget).
	// Real deployed radios sit near ±2 ppm; 802.11 allows
	// units.Dot11MaxPPM (20).
	PPMBudget units.PPM
	// NoiseVar is the per-sample noise variance at every receiver.
	NoiseVar float64
	// SNRRangeDB is the target client SNR band [lo, hi] (the paper's
	// low 6–12, medium 12–18, high 18–25); per-client mean SNR is drawn
	// uniformly inside it and per-AP link gains vary ±LinkSpreadDB around
	// that mean.
	SNRRangeDB [2]units.Decibels
	// LinkSpreadDB is the per-link gain variation around the client mean.
	LinkSpreadDB units.Decibels
	// APLinkSNRdB is the lead→slave link SNR (APs are infrastructure on
	// ledges with strong mutual links).
	APLinkSNRdB units.Decibels
	// ChannelParams shapes the multipath profile.
	ChannelParams channel.Params
	// WellConditioned draws the AP→client matrix from a Haar-unitary
	// mixing ensemble (scaled by per-client gains, plus mild extra
	// multipath) instead of iid Rayleigh links. The paper's conference
	// room measured channels it calls "random and well conditioned"
	// (§11.2) — a property iid Rayleigh draws lack at N×N, where
	// zero-forcing pays a heavy-tailed inversion penalty the testbed did
	// not observe. The experiment harness enables this for the throughput
	// figures; microbenchmarks run both ways.
	WellConditioned bool
	// TriggerDelaySamples is t∆, the fixed turnaround between the lead's
	// sync header and the joint data transmission (§10: 150 µs).
	TriggerDelaySamples int
	// MeasurementRounds is the number of interleaved channel-measurement
	// repetitions averaged by the clients (§5.1: "repeated ... to reduce
	// the impact of noise").
	MeasurementRounds int
	// RateMarginDB backs the idealized zero-forcing SNR prediction (k²/N)
	// off before the MCS table lookup, covering receiver implementation
	// loss (channel-estimation noise, pilot jitter, residual CFO).
	RateMarginDB units.Decibels
	// ExtrapolatePhase is the ablation switch for the paper's central
	// design decision (§1, §5.2): when set, slaves skip the per-packet
	// direct phase measurement and predict their correction as Δω̂·t from
	// the measurement-time reference alone. Frequency-offset estimation
	// error then accumulates without bound across packets — the failure
	// mode MegaMIMO exists to avoid.
	ExtrapolatePhase bool
	// CSIQuantBits, when positive, quantizes every client CSI report to a
	// signed fixed-point format with this many magnitude bits before it is
	// fed back — the Intel 5300's firmware behavior (§6: the 802.11n
	// testbed obtains CSI from the card's quantized reports).
	CSIQuantBits int
	// WirelessFeedback carries CSI reports over the real wireless uplink
	// (serialized into base-rate frames decoded by the lead AP, with
	// retransmissions) instead of the modeled Ethernet shortcut. §5.1b:
	// "the receivers then communicate these estimated channels back to
	// the transmitters over the wireless channel."
	WirelessFeedback bool
	// ModelSFO enables sampling-frequency-offset simulation in the medium.
	ModelSFO bool
	// WanderStd adds Wiener oscillator phase noise (rad/√sample).
	WanderStd float64
	// SyncStalenessSamples is the sync-abstain staleness budget: when a
	// slave's per-packet sync-header measurement fails, it may fall back
	// to CFO extrapolation only while its last good measurement is at most
	// this many ether samples old; beyond the budget (or when 0) the slave
	// withholds its antennas from the joint transmission rather than fire
	// with a garbage phase ratio.
	SyncStalenessSamples units.Ticks
	// Sync selects the distributed phase-synchronization strategy (the
	// measure→predict→correct loop of internal/sync). nil selects the
	// paper's sync-header scheme.
	Sync psync.Strategy
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's USRP testbed at a given size and SNR
// band.
func DefaultConfig(nAPs, nClients int, snrLo, snrHi units.Decibels) Config {
	return Config{
		NumAPs:              nAPs,
		NumClients:          nClients,
		AntennasPerAP:       1,
		AntennasPerClient:   1,
		SampleRate:          10e6,
		CarrierHz:           2.437e9,
		PPMBudget:           2,
		NoiseVar:            1e-3,
		SNRRangeDB:          [2]units.Decibels{snrLo, snrHi},
		LinkSpreadDB:        3,
		APLinkSNRdB:         32,
		ChannelParams:       channel.DefaultIndoor,
		TriggerDelaySamples: 1500, // 150 µs at 10 MHz
		MeasurementRounds:   4,
		RateMarginDB:        3.0,
		// 10 ms at 10 MHz: a handful of rounds of CFO extrapolation before
		// a sync-starved slave must abstain.
		SyncStalenessSamples: 100_000,
		Seed:                 1,
	}
}

// AP is one access point.
type AP struct {
	Index int
	Node  *radio.Node
	// IsLead marks the elected lead AP (§4: "declare one transmitter the
	// lead").
	IsLead bool

	// syncs holds this AP's phase-synchronization state toward every
	// other AP that might lead a transmission (§9 nominates the
	// head-of-queue packet's designated AP as lead, so every AP keeps a
	// reference to every potential lead, captured from the same
	// measurement packet). The state machine lives in the network's
	// sync.Strategy; the AP only owns the per-peer state.
	syncs map[int]*psync.Peer

	// weights hold this AP's precoder rows after the lead distributes the
	// beamforming matrix: weights[ownAnt][stream][bin].
	weights [][][]complex128
}

// syncTo returns (allocating if needed) the AP's sync state toward peer.
func (ap *AP) syncTo(peer int) *psync.Peer {
	if ap.syncs == nil {
		ap.syncs = make(map[int]*psync.Peer)
	}
	s := ap.syncs[peer]
	if s == nil {
		s = &psync.Peer{}
		ap.syncs[peer] = s
	}
	return s
}

// Client is one receiver.
type Client struct {
	Index int
	Node  *radio.Node
	rx    *phy.RX
	// NoiseVarEst is the client's own noise estimate, reported with CSI.
	NoiseVarEst float64
}

// Network owns the medium, the nodes and the global clock.
type Network struct {
	Cfg     Config
	Air     *air.Air
	Bus     *backend.Bus
	APs     []*AP
	Clients []*Client

	now    int64
	rng    *rng.Source
	tracer *Tracer
	// sync is the phase-synchronization strategy every slave runs toward
	// its lead (Cfg.Sync, defaulted to the paper's header scheme).
	sync psync.Strategy

	// metrics is the network's telemetry registry; the m* fields cache the
	// boundary instruments so hot-path recording is a field increment, not
	// a map lookup (the JointTransmit alloc budget covers this path).
	metrics           *metrics.Registry
	mJointTx          *metrics.Counter
	mSyncHeaders      *metrics.Counter
	mSyncHeaderSmpls  *metrics.Counter
	mDecodeFailures   *metrics.Counter
	mFCSFailures      *metrics.Counter
	mStreamsDelivered *metrics.Counter
	mMeasurements     *metrics.Counter
	mLeadFailovers    *metrics.Counter
	mSyncAbstain      *metrics.Counter
	mDegradedRounds   *metrics.Counter

	// Fault state (internal/fault drives it through CrashAP/RestartAP/
	// CorruptSync). crashed marks APs that are off the air and off the
	// bus; syncLossUntil makes an AP's sync-header measurements fail until
	// the given ether time; abstain is per-round scratch marking slaves
	// that withheld their antennas from the current joint transmission.
	crashed       []bool
	syncLossUntil []int64
	abstain       []bool
	// zf caches per-bin Gram inverses for the full array and for every
	// degraded participation mask, updated incrementally across
	// measurements (Sherman–Morrison) instead of re-inverted per round.
	zf *ZFCache

	// tx and dem are the network's reusable PHY pipelines, and arena the
	// per-network scratch for hot-path buffers. A Network is single-threaded,
	// so owning them here keeps independent networks goroutine-independent
	// while eliminating per-transmission churn.
	tx    *phy.TX
	dem   *ofdm.Demodulator
	arena dsp.Scratch
	// estBuf/estFreq are the symbol-channel-estimation scratch pair
	// (lazily sized in estimateSymbolChannel).
	estBuf  []complex128
	estFreq []complex128

	// Msmt is the latest channel-measurement state (H estimate and the
	// reference time); nil until Measure runs.
	Msmt *Measurement
}

const clientAntBase = 10000

// APAntennaID returns the air antenna ID for AP ap, antenna m.
func (n *Network) APAntennaID(ap, m int) int { return ap*n.Cfg.AntennasPerAP + m }

// ClientAntennaID returns the air antenna ID for client c, antenna m.
func (n *Network) ClientAntennaID(c, m int) int {
	return clientAntBase + c*n.Cfg.AntennasPerClient + m
}

// NumStreams returns the total concurrent streams (client antennas).
func (n *Network) NumStreams() int { return n.Cfg.NumClients * n.Cfg.AntennasPerClient }

// NumTxAntennas returns the total AP antennas.
func (n *Network) NumTxAntennas() int { return n.Cfg.NumAPs * n.Cfg.AntennasPerAP }

// Now returns the current ether time in samples.
func (n *Network) Now() int64 { return n.now }

// SyncName reports the active synchronization strategy's registry name.
func (n *Network) SyncName() string { return n.sync.Name() }

// AdvanceTime moves the clock forward (test hook / idle periods).
func (n *Network) AdvanceTime(samples int64) { n.now += samples }

// New builds a network: nodes with independent oscillators, Rayleigh/Rician
// links sized to the configured SNR band, and an Ethernet bus.
func New(cfg Config) (*Network, error) {
	if cfg.NumAPs < 1 || cfg.NumClients < 1 {
		return nil, fmt.Errorf("core: need at least one AP and one client")
	}
	if cfg.AntennasPerAP < 1 {
		cfg.AntennasPerAP = 1
	}
	if cfg.AntennasPerClient < 1 {
		cfg.AntennasPerClient = 1
	}
	if cfg.MeasurementRounds < 2 {
		cfg.MeasurementRounds = 2
	}
	src := rng.New(cfg.Seed)
	n := &Network{
		Cfg: cfg,
		Air: air.New(air.Config{
			SampleRate: cfg.SampleRate,
			NoiseVar:   cfg.NoiseVar,
			ModelSFO:   cfg.ModelSFO,
			Seed:       cfg.Seed + 7,
		}),
		rng: src,
		tx:  phy.NewTX(),
		dem: ofdm.NewDemodulator(),
	}
	n.sync = cfg.Sync
	if n.sync == nil {
		n.sync = psync.Header()
	}
	n.initMetrics()
	n.initTracer()
	busIDs := make([]int, 0, cfg.NumAPs)
	for a := 0; a < cfg.NumAPs; a++ {
		ants := make([]int, cfg.AntennasPerAP)
		for m := range ants {
			ants[m] = n.APAntennaID(a, m)
		}
		node := radio.NewNode(a, src.Split(uint64(a)+100), cfg.PPMBudget, cfg.CarrierHz, cfg.SampleRate, ants...)
		node.Osc.WanderStd = cfg.WanderStd
		n.APs = append(n.APs, &AP{Index: a, Node: node, IsLead: a == 0})
		busIDs = append(busIDs, a)
	}
	for c := 0; c < cfg.NumClients; c++ {
		ants := make([]int, cfg.AntennasPerClient)
		for m := range ants {
			ants[m] = n.ClientAntennaID(c, m)
		}
		node := radio.NewNode(1000+c, src.Split(uint64(c)+500), cfg.PPMBudget, cfg.CarrierHz, cfg.SampleRate, ants...)
		node.Osc.WanderStd = cfg.WanderStd
		n.Clients = append(n.Clients, &Client{Index: c, Node: node, rx: phy.NewRX()})
		busIDs = append(busIDs, 1000+c)
	}
	n.Bus = backend.New(int64(units.TicksIn(50e-6, cfg.SampleRate)), busIDs...) // 50 µs backbone hop
	n.Bus.SetDropCounter(n.metrics.Counter("backend_dropped_total"))
	n.crashed = make([]bool, cfg.NumAPs)
	n.syncLossUntil = make([]int64, cfg.NumAPs)
	n.abstain = make([]bool, cfg.NumAPs)
	n.buildLinks(src.Split(0xC4A))
	return n, nil
}

// buildLinks draws every AP→client link inside the SNR band and the
// lead→slave reference links.
func (n *Network) buildLinks(src *rng.Source) {
	cfg := n.Cfg
	var mix *matrix.M
	if cfg.WellConditioned {
		mix = haarMixing(src.Split(0x4AA2), n.NumStreams(), n.NumTxAntennas())
	}
	for c := 0; c < cfg.NumClients; c++ {
		//lint:ignore units rng draws are dimensionless; the SNR band re-enters as the drawn mean in dB
		meanSNR := src.Uniform(float64(cfg.SNRRangeDB[0]), float64(cfg.SNRRangeDB[1]))
		for a := 0; a < cfg.NumAPs; a++ {
			for am := 0; am < cfg.AntennasPerAP; am++ {
				for cm := 0; cm < cfg.AntennasPerClient; cm++ {
					var l *channel.Link
					if mix != nil {
						gain := cfg.NoiseVar * pow10(meanSNR/10)
						row := c*cfg.AntennasPerClient + cm
						col := a*cfg.AntennasPerAP + am
						l = mixedLink(src.Split(linkSeed(a, am, c, cm)), gain, mix.At(row, col), n.NumTxAntennas())
					} else {
						//lint:ignore units rng draws are dimensionless; the spread bound re-enters as dB around the mean
						snr := meanSNR + src.Uniform(-float64(cfg.LinkSpreadDB), float64(cfg.LinkSpreadDB))
						gain := cfg.NoiseVar * pow10(snr/10)
						l = channel.NewLink(src.Split(linkSeed(a, am, c, cm)), cfg.ChannelParams, gain, 0)
					}
					n.Air.SetLink(n.APAntennaID(a, am), n.ClientAntennaID(c, cm), l)
				}
			}
		}
	}
	// Lead (and any AP that may become lead) to every other AP: strong
	// infrastructure links, reciprocal.
	for a := 0; a < cfg.NumAPs; a++ {
		for b := 0; b < cfg.NumAPs; b++ {
			if a == b {
				continue
			}
			gain := cfg.NoiseVar * units.DBToLinear(cfg.APLinkSNRdB)
			l := channel.NewLink(src.Split(0xAB0000+uint64(a*64+b)), cfg.ChannelParams, gain, 0)
			n.Air.SetLink(n.APAntennaID(a, 0), n.APAntennaID(b, 0), l)
		}
	}
	// Uplink reciprocity: the client→AP channel is the same physical link
	// object as the downlink, so fading and evolution stay consistent.
	for c := 0; c < cfg.NumClients; c++ {
		for a := 0; a < cfg.NumAPs; a++ {
			for am := 0; am < cfg.AntennasPerAP; am++ {
				for cm := 0; cm < cfg.AntennasPerClient; cm++ {
					if l := n.Air.Link(n.APAntennaID(a, am), n.ClientAntennaID(c, cm)); l != nil {
						n.Air.SetLink(n.ClientAntennaID(c, cm), n.APAntennaID(a, am), l)
					}
				}
			}
		}
	}
}

// haarMixing draws an approximately Haar-distributed unitary (via
// Gram-Schmidt on an iid Gaussian matrix) and returns its top-left
// rows×cols block, the conditioning-friendly spatial mixing structure.
func haarMixing(src *rng.Source, rows, cols int) *matrix.M {
	n := rows
	if cols > n {
		n = cols
	}
	g := matrix.New(n, n)
	for i := range g.Data {
		g.Data[i] = src.ComplexNormal(1)
	}
	// Modified Gram-Schmidt over columns.
	for c := 0; c < n; c++ {
		col := g.Col(c)
		for p := 0; p < c; p++ {
			prev := g.Col(p)
			var dot complex128
			for i := range col {
				dot += col[i] * complex(real(prev[i]), -imag(prev[i]))
			}
			for i := range col {
				col[i] -= dot * prev[i]
			}
		}
		var norm float64
		for _, v := range col {
			norm += real(v)*real(v) + imag(v)*imag(v)
		}
		norm = math.Sqrt(norm)
		for i := range col {
			col[i] /= complex(norm, 0)
		}
		for r := 0; r < n; r++ {
			g.Set(r, c, col[r])
		}
	}
	out := matrix.New(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.Set(r, c, g.At(r, c))
		}
	}
	return out
}

// mixedLink builds a link whose dominant tap realizes one entry of the
// scaled mixing matrix (so the per-bin network matrix is well conditioned)
// plus two weak scattered taps (−13 dB total) for realistic mild frequency
// selectivity.
func mixedLink(src *rng.Source, clientGain float64, mixEntry complex128, txAnts int) *channel.Link {
	// A unitary's entries carry power 1/dim; scale so the link's average
	// power gain is clientGain (each AP contributes clientGain; the array
	// sums to N·clientGain, the joint transmission's power advantage).
	main := complex(math.Sqrt(clientGain*float64(txAnts)*0.95), 0) * mixEntry
	taps := []complex128{
		main,
		src.ComplexNormal(clientGain * 0.03),
		src.ComplexNormal(clientGain * 0.02),
	}
	return &channel.Link{Taps: taps}
}

func linkSeed(a, am, c, cm int) uint64 {
	return uint64(a)<<24 | uint64(am)<<16 | uint64(c)<<8 | uint64(cm)
}

func pow10(x float64) float64 { return math.Pow(10, x) }

// initMetrics creates the registry and resolves the boundary instruments
// once, so recording on the signal path never performs a name lookup.
func (n *Network) initMetrics() {
	n.metrics = metrics.NewRegistry()
	n.mJointTx = n.metrics.Counter("core_joint_tx_total")
	n.mSyncHeaders = n.metrics.Counter("core_sync_headers_total")
	n.mSyncHeaderSmpls = n.metrics.Counter("core_sync_header_samples_total")
	n.mDecodeFailures = n.metrics.Counter("phy_decode_failures_total")
	n.mFCSFailures = n.metrics.Counter("phy_fcs_failures_total")
	n.mStreamsDelivered = n.metrics.Counter("core_streams_delivered_total")
	n.mMeasurements = n.metrics.Counter("core_measurements_total")
	n.mLeadFailovers = n.metrics.Counter("lead_failovers_total")
	n.mSyncAbstain = n.metrics.Counter("sync_abstain_total")
	n.mDegradedRounds = n.metrics.Counter("degraded_rounds_total")
}

// Metrics returns the network's telemetry registry (always non-nil).
func (n *Network) Metrics() *metrics.Registry {
	if n.metrics == nil {
		n.initMetrics()
	}
	return n.metrics
}

// Lead returns the lead AP. A crashed AP never leads: if none is marked
// (or the marked lead crashed) the lowest live index stands in.
func (n *Network) Lead() *AP {
	for _, ap := range n.APs {
		if ap.IsLead && !n.crashed[ap.Index] {
			return ap
		}
	}
	for _, ap := range n.APs {
		if !n.crashed[ap.Index] {
			return ap
		}
	}
	return n.APs[0]
}

// Slaves returns all live non-lead APs.
func (n *Network) Slaves() []*AP {
	out := make([]*AP, 0, len(n.APs)-1)
	for _, ap := range n.APs {
		if !ap.IsLead && !n.crashed[ap.Index] {
			out = append(out, ap)
		}
	}
	return out
}

// SetLead re-elects the lead AP (§9: the designated AP of the head-of-queue
// packet leads each transmission). It returns an error — leaving the
// current lead in place — when the index is out of range or names a
// crashed AP; callers that merely prefer an AP use ElectLead to fall back
// deterministically instead.
func (n *Network) SetLead(index int) error {
	if index < 0 || index >= len(n.APs) {
		return fmt.Errorf("core: SetLead(%d): no such AP (have %d)", index, len(n.APs))
	}
	if n.crashed[index] {
		return fmt.Errorf("core: SetLead(%d): AP is crashed", index)
	}
	for _, ap := range n.APs {
		ap.IsLead = ap.Index == index
	}
	return nil
}

// EvolveClientLinks ages every AP→client link of one client with the
// Gauss-Markov coherence model (ρ = 1 freezes; channel.CoherenceRho maps
// elapsed time to ρ). Used to study measurement staleness: §9 notes stale
// channel state to one client corrupts only that client's packets.
func (n *Network) EvolveClientLinks(client int, rho float64) {
	src := n.rng.Split(0xE701 + uint64(client)<<8 + uint64(n.now))
	for a := 0; a < n.Cfg.NumAPs; a++ {
		for am := 0; am < n.Cfg.AntennasPerAP; am++ {
			for cm := 0; cm < n.Cfg.AntennasPerClient; cm++ {
				if l := n.Air.Link(n.APAntennaID(a, am), n.ClientAntennaID(client, cm)); l != nil {
					l.Evolve(src, rho)
				}
			}
		}
	}
}

// StrongestAP returns the live AP with the highest measured wideband gain
// to the given stream (the packet's "designated AP", §9). It falls back to
// the lowest live AP when no measurement exists, and never nominates a
// crashed AP.
func (n *Network) StrongestAP(stream int) int {
	if n.Msmt == nil {
		return n.ElectLead(0)
	}
	best, bestPow := n.ElectLead(0), -1.0
	for a := 0; a < n.Cfg.NumAPs; a++ {
		if n.crashed[a] {
			continue
		}
		var pow float64
		for m := 0; m < n.Cfg.AntennasPerAP; m++ {
			g := a*n.Cfg.AntennasPerAP + m
			for _, hm := range n.Msmt.H {
				v := hm.At(stream, g)
				pow += real(v)*real(v) + imag(v)*imag(v)
			}
		}
		if pow > bestPow {
			best, bestPow = a, pow
		}
	}
	return best
}

// symbolWave returns one known OFDM training symbol (the LTF sequence on
// its 52 bins) used for CFO blocks and interleaved measurement. The wave is
// immutable and computed once; Air.Transmit copies it, so sharing across
// networks (and goroutines) is safe.
var symbolWaveOnce struct {
	sync.Once
	w []complex128
}

func symbolWave() []complex128 {
	symbolWaveOnce.Do(func() {
		mod := ofdm.NewModulator()
		sym, err := mod.RawSymbol(ofdm.LTFFreq())
		if err != nil {
			panic(err)
		}
		symbolWaveOnce.w = sym
	})
	return symbolWaveOnce.w
}
