package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"megamimo/internal/cmplxs"
	"megamimo/internal/ofdm"
	"megamimo/internal/phy"
	"megamimo/internal/rate"
	"megamimo/internal/units"
)

// winLead is the observation-window lead-in used consistently by slaves and
// clients so every phase reference lines up (see measurement.go).
const winLead = 128

// TxResult reports one joint transmission.
type TxResult struct {
	// Frames holds each stream's decoded frame (nil when that stream was
	// silent or decoding failed entirely).
	Frames []*phy.RxFrame
	// OK marks streams whose frame decoded with a valid FCS.
	OK []bool
	// AirtimeSamples covers the sync header and the frame (the software
	// trigger turnaround is excluded; see JointTransmit).
	AirtimeSamples int64
	// MCS is the rate used.
	MCS phy.MCS
	// PayloadBytes is the per-stream payload size.
	PayloadBytes int
}

// GoodputBits returns the successfully delivered payload bits.
func (r *TxResult) GoodputBits() float64 {
	var bits float64
	for i, ok := range r.OK {
		if ok && r.Frames[i] != nil {
			bits += float64(8 * len(r.Frames[i].Payload))
		}
	}
	return bits
}

// SetPrecoder distributes precoder rows to every AP over the backbone
// (logical distribution — the lead computes W and each AP keeps its rows).
func (n *Network) SetPrecoder(p *Precoder) {
	for _, ap := range n.APs {
		ap.weights = make([][][]complex128, n.Cfg.AntennasPerAP)
		for m := 0; m < n.Cfg.AntennasPerAP; m++ {
			g := ap.Index*n.Cfg.AntennasPerAP + m
			ap.weights[m] = make([][]complex128, p.Streams)
			for j := 0; j < p.Streams; j++ {
				ap.weights[m][j] = p.GainColumn(g, j)
			}
		}
	}
}

// MeasureAndPrecode runs the measurement phase and installs the ZF
// precoder, the normal setup sequence for multiplexed transmission.
func (n *Network) MeasureAndPrecode() (*Precoder, error) {
	if err := n.Measure(); err != nil {
		return nil, err
	}
	return n.Precode(0)
}

// JointTransmit delivers one payload per stream concurrently from all APs
// (§5.2). A nil payload silences that stream while its nulls remain
// enforced (used by the INR experiments). All non-nil payloads must have
// equal length so the frames stay time aligned.
func (n *Network) JointTransmit(payloads [][]byte, mcs phy.MCS) (*TxResult, error) {
	streams := n.NumStreams()
	if len(payloads) != streams {
		return nil, fmt.Errorf("core: %d payloads for %d streams", len(payloads), streams)
	}
	if n.Msmt == nil {
		return nil, fmt.Errorf("core: JointTransmit before Measure")
	}
	for _, ap := range n.APs {
		if n.crashed[ap.Index] {
			continue
		}
		if ap.weights == nil {
			return nil, fmt.Errorf("core: AP %d has no precoder rows", ap.Index)
		}
	}
	// Build the per-stream frames (every AP has every payload via the
	// backbone, §5.2a).
	tx := n.tx
	frames := make([]*phy.FrameSymbols, streams)
	frameLen := -1
	for j, p := range payloads {
		if p == nil {
			continue
		}
		f, err := tx.FrameSymbols(p, mcs)
		if err != nil {
			return nil, err
		}
		if frameLen >= 0 && f.SampleLen() != frameLen {
			return nil, fmt.Errorf("core: stream %d frame length %d != %d (pad payloads equal)", j, f.SampleLen(), frameLen)
		}
		frameLen = f.SampleLen()
		frames[j] = f
	}
	if frameLen < 0 {
		return nil, fmt.Errorf("core: all streams silent")
	}

	span := n.tracer.BeginSpan(n.now, KindJointTx, TraceAttrs{Bits: int64(8 * payloadLen(payloads))},
		"%d streams at %v", streams, mcs)
	_, tD, err := n.postJointFrames(tx, frames)
	if err != nil {
		n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{Cause: "post"}, "%v", err)
		return nil, err
	}

	// 4. Clients decode their streams.
	res := &TxResult{
		Frames:       make([]*phy.RxFrame, streams),
		OK:           make([]bool, streams),
		MCS:          mcs,
		PayloadBytes: payloadLen(payloads),
		// Airtime charges the sync header plus the frame. The trigger
		// turnaround t∆ is a software-radio artifact (§10: "based on the
		// maximum delay of our software implementation") excluded from
		// throughput accounting, as the paper's measured ≈0.9N gains
		// imply; in the 802.11n design the sync header is the packet's
		// own legacy preamble (§6.1), so this is the hardware cost.
		AirtimeSamples: int64(ofdm.PreambleLen) + int64(frameLen),
	}
	for _, cl := range n.Clients {
		for cm := 0; cm < n.Cfg.AntennasPerClient; cm++ {
			j := cl.Index*n.Cfg.AntennasPerClient + cm
			if frames[j] == nil {
				continue
			}
			win := n.Air.Observe(n.ClientAntennaID(cl.Index, cm), cl.Node.Osc, tD-winLead, frameLen+winLead+128)
			f, err := cl.rx.Decode(win)
			if err != nil {
				n.mDecodeFailures.Inc()
				n.trace(tD, KindDecode, TraceAttrs{Client: cl.Index, Stream: j, Cause: "decode"},
					"stream %d: %v", j, err)
				continue
			}
			res.Frames[j] = f
			res.OK[j] = f.FCSOK
			if !f.FCSOK {
				n.mFCSFailures.Inc()
			}
			n.traceDecode(tD, cl.Index, j, f)
		}
	}
	okCount := 0
	for _, o := range res.OK {
		if o {
			okCount++
		}
	}
	n.mJointTx.Inc()
	n.mStreamsDelivered.Add(int64(okCount))
	n.now = tD + int64(frameLen) + 256
	n.Air.ClearBefore(n.now)
	n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{Bits: int64(res.GoodputBits()), OK: okCount == streams},
		"%d/%d streams delivered, airtime %d samples", okCount, streams, res.AirtimeSamples)
	return res, nil
}

// traceDecode emits one client antenna's decode-quality telemetry.
func (n *Network) traceDecode(at int64, client, stream int, f *phy.RxFrame) {
	if !n.tracer.Enabled() {
		return
	}
	minSub := math.Inf(1)
	for _, s := range f.SubcarrierSNR {
		if s < minSub {
			minSub = s
		}
	}
	minDB := units.Decibels(60)
	if minSub > 0 && !math.IsInf(minSub, 1) {
		minDB = units.LinearToDB(minSub)
		if minDB > 60 {
			minDB = 60
		}
	}
	n.trace(at, KindDecode, TraceAttrs{
		Client:          client,
		Stream:          stream,
		EVMSNRdB:        f.SNRdB,
		MinSubSNRdB:     minDB,
		CFORadPerSample: f.ResidualCFO,
		OK:              f.FCSOK,
	}, "")
}

// postJointFrames runs the transmission side of a joint frame: lead sync
// header (1), slave phase-correction measurement (2), and the precoded,
// phase-corrected emission from every AP antenna at the trigger time (3).
// frames[j] pairs with ap.weights[m][j]; nil frames are silent streams.
// It returns the header time t1 and data start tD.
func (n *Network) postJointFrames(tx *phy.TX, frames []*phy.FrameSymbols) (t1, tD int64, err error) {
	// 1. Lead sync header.
	t1 = n.now + 64
	lead := n.Lead()
	n.Air.Transmit(n.APAntennaID(lead.Index, 0), lead.Node.Osc, t1, ofdm.Preamble())
	n.mSyncHeaders.Inc()
	n.mSyncHeaderSmpls.Add(int64(ofdm.PreambleLen))
	n.trace(t1, KindSyncHeader, TraceAttrs{AP: lead.Index}, "lead AP %d", lead.Index)

	// 2. Slaves measure the lead's current channel and derive their phase
	//    correction (§5.2b).
	type correction struct {
		ratio []complex128       // per-bin ĥ(t)/ĥ(0)
		curAt int64              // phase-reference time of the new measurement
		refAt int64              // phase-reference time of the stored reference
		cfo   units.RadPerSample // averaged ω_lead − ω_self
	}
	corr := make(map[int]*correction, len(n.APs))
	for i := range n.abstain {
		n.abstain[i] = false
	}
	for _, ap := range n.Slaves() {
		ratio, curAt, resid, mErr := n.slaveMeasureRatio(ap, t1)
		ps := ap.syncTo(lead.Index)
		if mErr != nil {
			// A slave that cannot measure its phase correction falls back
			// to CFO extrapolation while its last good measurement is
			// inside the staleness budget; beyond it the slave abstains —
			// withholding its antennas beats firing with a garbage phase
			// ratio, which would fill every client's null (§5.2b).
			budget := n.Cfg.SyncStalenessSamples
			if ps.hasPhase && budget > 0 && units.Ticks(t1-ps.lastAt) <= budget {
				curAt = t1 - winLead + ltfPhaseOffset
				ratio = extrapolateRatio(ps, curAt)
				resid = 0
				n.trace(t1, KindFault, TraceAttrs{AP: ap.Index, Cause: "sync-extrapolate"},
					"slave %d lost the sync header (last good measurement %d samples ago): %v",
					ap.Index, t1-ps.lastAt, mErr)
			} else {
				n.abstain[ap.Index] = true
				n.mSyncAbstain.Inc()
				n.trace(t1, KindFault, TraceAttrs{AP: ap.Index, Cause: "sync-abstain"},
					"slave %d withholds its antennas: %v", ap.Index, mErr)
				continue
			}
		}
		corr[ap.Index] = &correction{ratio: ratio, curAt: curAt, refAt: ps.refAt, cfo: ps.cfo}
		if mErr != nil {
			continue
		}
		// The flight recorder's phase-sync telemetry: the innovation of this
		// packet's measured phase against the long-term CFO prediction is the
		// residual phase error the π/18 nulling budget (§11.1b) bounds.
		n.trace(curAt, KindSlaveRatio,
			TraceAttrs{AP: ap.Index, PhaseErrRad: resid, CFORadPerSample: ps.cfo},
			"AP %d: Δφ measured over %d samples", ap.Index, curAt-ps.refAt)
	}

	// Participation: crashed and abstaining APs sit this round out. At
	// full strength the pre-distributed precoder applies untouched; a
	// degraded round re-zero-forces over the survivors (nil weight columns
	// mark shed streams) and is counted and traced.
	mask, full := n.participationMask()
	var mw *maskedWeights
	if mask != full {
		if len(frames) == n.NumStreams() {
			mw, err = n.weightsForMask(mask)
			if err != nil {
				return 0, 0, err
			}
		}
		// Diversity/per-stream precoders need no rebuild: each antenna's
		// weight is independent, so missing antennas just go dark.
		n.mDegradedRounds.Inc()
		n.trace(t1, KindFault, TraceAttrs{Cause: "degraded-round"},
			"degraded transmission: %d/%d APs participating", bits.OnesCount64(mask), len(n.APs))
	}

	// 3. Joint data transmission after the fixed turnaround t∆ (§10).
	tD = t1 + int64(ofdm.PreambleLen) + int64(n.Cfg.TriggerDelaySamples)
	frameLen := 0
	for _, f := range frames {
		if f != nil {
			frameLen = f.SampleLen()
			break
		}
	}
	// Arena-backed waveform buffers: Air.Transmit copies its input, so one
	// waveform buffer and one per-stream gain block serve every antenna, and
	// the whole block is recycled on the next cycle's Reset. Each antenna's
	// waveform is synthesized jointly — the streams sum in the frequency
	// domain and one batched IFFT covers the whole frame — so the synthesis
	// cost scales with symbols, not streams × symbols.
	n.arena.Reset()
	wave := n.arena.Complex(frameLen)
	gainArena := n.arena.Complex(len(frames) * ofdm.NFFT)
	gains := make([][]complex128, len(frames))
	for _, ap := range n.APs {
		if n.crashed[ap.Index] || n.abstain[ap.Index] {
			continue
		}
		c := corr[ap.Index]
		for m := 0; m < n.Cfg.AntennasPerAP; m++ {
			if len(ap.weights) <= m {
				return 0, 0, fmt.Errorf("core: AP %d antenna %d has no weights", ap.Index, m)
			}
			if len(ap.weights[m]) != len(frames) {
				return 0, 0, fmt.Errorf("core: AP %d has %d weight columns for %d frames", ap.Index, len(ap.weights[m]), len(frames))
			}
			for j := range frames {
				gains[j] = nil
				if frames[j] == nil {
					continue
				}
				w := ap.weights[m][j]
				if mw != nil {
					w = mw.gain[ap.Index*n.Cfg.AntennasPerAP+m][j]
					if w == nil {
						continue // stream shed in this degraded round
					}
				}
				if c == nil {
					// The lead needs no phase correction: its precoder row
					// applies untouched, no copy.
					gains[j] = w
					continue
				}
				g := gainArena[j*ofdm.NFFT : (j+1)*ofdm.NFFT]
				for i := range g {
					g[i] = w[i] * c.ratio[i]
				}
				gains[j] = g
			}
			if !tx.SynthesizeJointInto(wave, frames, gains) {
				continue
			}
			if c != nil {
				// Intra-packet tracking with the long-term averaged CFO
				// (§5.3): extrapolate the measured phase from the ratio's
				// reference window to every data sample, including the
				// constant offset between the slave's reference window and
				// the H estimates' reference time (the interleaved-block
				// center).
				phase0 := units.PhaseAdvance(c.cfo, units.Samples((tD-c.curAt)+(c.refAt-n.Msmt.RefMid)))
				cmplxs.Rotate(wave, wave, phase0, c.cfo)
			}
			n.Air.Transmit(n.APAntennaID(ap.Index, m), ap.Node.Osc, tD, wave)
		}
	}
	return t1, tD, nil
}

// DiversityTransmit has every AP transmit the same payload coherently to
// one stream's receiver (§8): each antenna weights the signal by h*/|h|
// per subcarrier, so the received amplitudes add — an N² SNR gain that
// rescues clients no single AP can reach. It installs the diversity
// precoder, so call SetPrecoder (or MeasureAndPrecode) before returning to
// multiplexed transmission.
func (n *Network) DiversityTransmit(stream int, payload []byte, mcs phy.MCS) (*TxResult, error) {
	if n.Msmt == nil {
		return nil, fmt.Errorf("core: DiversityTransmit before Measure")
	}
	p, err := ComputeDiversity(n.Msmt, stream)
	if err != nil {
		return nil, err
	}
	n.SetPrecoder(p)
	tx := n.tx
	f, err := tx.FrameSymbols(payload, mcs)
	if err != nil {
		return nil, err
	}
	frames := []*phy.FrameSymbols{f}
	span := n.tracer.BeginSpan(n.now, KindJointTx, TraceAttrs{Stream: stream, Bits: int64(8 * len(payload))},
		"diversity to stream %d at %v", stream, mcs)
	_, tD, err := n.postJointFrames(tx, frames)
	if err != nil {
		n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{Cause: "post"}, "%v", err)
		return nil, err
	}
	frameLen := f.SampleLen()
	res := &TxResult{
		Frames:         make([]*phy.RxFrame, 1),
		OK:             make([]bool, 1),
		MCS:            mcs,
		PayloadBytes:   len(payload),
		AirtimeSamples: int64(ofdm.PreambleLen) + int64(frameLen), // see JointTransmit
	}
	cl := n.Clients[stream/n.Cfg.AntennasPerClient]
	ant := stream % n.Cfg.AntennasPerClient
	win := n.Air.Observe(n.ClientAntennaID(cl.Index, ant), cl.Node.Osc, tD-winLead, frameLen+winLead+128)
	if fr, err := cl.rx.Decode(win); err == nil {
		res.Frames[0] = fr
		res.OK[0] = fr.FCSOK
		if !fr.FCSOK {
			n.mFCSFailures.Inc()
		}
		n.traceDecode(tD, cl.Index, stream, fr)
	} else {
		n.mDecodeFailures.Inc()
		n.trace(tD, KindDecode, TraceAttrs{Client: cl.Index, Stream: stream, Cause: "decode"},
			"stream %d: %v", stream, err)
	}
	n.now = tD + int64(frameLen) + 256
	n.Air.ClearBefore(n.now)
	n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{Bits: int64(res.GoodputBits()), OK: res.OK[0]},
		"delivered=%v, airtime %d samples", res.OK[0], res.AirtimeSamples)
	return res, nil
}

// slaveMeasureRatio observes the lead's sync header at t1 and returns the
// per-bin ratio ĥ(t1)/ĥ(0) — the direct phase-offset measurement that
// avoids accumulating error (§5.2b) — plus the window reference time and
// the residual phase error (the innovation against the long-term CFO
// prediction, the flight recorder's phase-sync statistic; 0 on the
// extrapolation ablation, which measures nothing).
func (n *Network) slaveMeasureRatio(ap *AP, t1 int64) ([]complex128, int64, units.Radians, error) {
	ps := ap.syncTo(n.Lead().Index)
	if ps.ref == nil {
		return nil, 0, 0, fmt.Errorf("no reference channel toward AP %d (run Measure first)", n.Lead().Index)
	}
	winStart := t1 - winLead
	curAt := winStart + ltfPhaseOffset
	if n.Cfg.ExtrapolatePhase {
		// Ablation: predict Δφ = Δω̂·Δt instead of measuring it. Any error
		// in Δω̂ accumulates linearly with time since the measurement
		// phase (§5.2's "large accumulated errors over time").
		return extrapolateRatio(ps, curAt), curAt, 0, nil
	}
	if n.syncLossUntil[ap.Index] > t1 {
		return nil, 0, 0, fmt.Errorf("sync header corrupted (injected, until t=%d)", n.syncLossUntil[ap.Index])
	}
	win := n.Air.Observe(n.APAntennaID(ap.Index, 0), ap.Node.Osc, winStart, ofdm.PreambleLen+winLead+192)
	sync, err := ofdm.Detect(win, 0.5)
	if err != nil {
		return nil, 0, 0, err
	}
	// The schedule is trigger-synchronized (SourceSync-grade timing), so
	// pin the LTF position; correlation peaks a sample off between the two
	// measurements would otherwise alias into per-bin phase slope errors.
	sync.LTFStart = winLead + ofdm.STFLen
	sync.PayloadStart = winLead + ofdm.PreambleLen
	cur, err := ofdm.EstimateChannelLTF(win, sync)
	if err != nil {
		return nil, 0, 0, err
	}
	slopeMeas, q := ratioComponents(cur, ps.ref)
	slope := ps.trackSlope(slopeMeas, float64(curAt-ps.refAt))
	ratio := composeRatio(q, slope)
	resid := ps.trackCFO(ratio, curAt)
	return ratio, curAt, resid, nil
}

// extrapolateRatio predicts a slave's phase correction from the long-term
// CFO estimate alone: Δφ = Δω̂·Δt on every occupied bin. It is the
// ExtrapolatePhase ablation's correction and the bounded-staleness
// fallback when a sync-header measurement fails.
func extrapolateRatio(ps *peerSync, curAt int64) []complex128 {
	ratio := make([]complex128, ofdm.NFFT)
	phase := units.PhaseAdvance(ps.cfo, units.Samples(curAt-ps.refAt))
	for _, b := range occupiedBins() {
		ratio[b] = cmplxs.Expi(phase)
	}
	return ratio
}

// trackSlope fuses a per-packet slope measurement into the long-term
// sampling-offset rate (precision weighted by baseline, like trackCFO) and
// returns the slope to apply for this packet.
func (ps *peerSync) trackSlope(meas, dt float64) float64 {
	if dt <= 0 {
		return meas
	}
	rateMeas := meas / dt
	w := dt * dt
	const weightCap = 1e11
	total := ps.srateWeight + w
	ps.srate = (ps.srateWeight*ps.srate + w*rateMeas) / total
	ps.srateWeight = math.Min(total, weightCap)
	return ps.srate * dt
}

// ratioComponents extracts the slave correction's parts from two channel
// snapshots. The true ratio ĥ(t)/ĥ(0) is the same pure phase on every
// subcarrier (§5.2 — the lead→slave channel is static; only the
// oscillators moved) plus a linear phase slope across subcarriers
// contributed by the sampling offset (§5.2: "any offset in the sampling
// frequency just adds to the phase error in each OFDM subcarrier").
// Fitting scalar-plus-slope instead of taking per-bin ratios averages the
// estimation noise across all 52 occupied bins and keeps faded bins from
// poisoning the correction. It returns the measured slope and the per-bin
// product vector for composeRatio.
func ratioComponents(cur, ref []complex128) (float64, []complex128) {
	bins := occupiedBins()
	q := make([]complex128, ofdm.NFFT)
	for _, b := range bins {
		q[b] = cur[b] * cmplx.Conj(ref[b])
	}
	// Slope across subcarriers: a coarse lag-1 estimate resolves the 2π
	// ambiguity of a much lower-noise lag-13 estimate (averaging over many
	// well-separated pairs instead of effectively differencing the band
	// edges).
	ks := occCarriers
	inBand := occCarrierSet
	var lag1 complex128
	for i := 0; i+1 < len(ks); i++ {
		if ks[i+1] != ks[i]+1 {
			continue // skip the DC gap
		}
		lag1 += q[ofdm.Bin(ks[i+1])] * cmplx.Conj(q[ofdm.Bin(ks[i])])
	}
	coarse := cmplx.Phase(lag1)
	const lag = 13
	var lagAcc complex128
	for _, k := range ks {
		if !inBand[k+lag] {
			continue
		}
		lagAcc += q[ofdm.Bin(k+lag)] * cmplx.Conj(q[ofdm.Bin(k)])
	}
	slope := coarse
	if lagAcc != 0 {
		resid := cmplxs.WrapPhase(units.Radians(cmplx.Phase(lagAcc) - coarse*lag))
		slope = (coarse*lag + units.Ratio(resid, 1)) / lag
	}
	return slope, q
}

// occCarriers and occCarrierSet cache the static occupied-carrier layout so
// per-packet ratio fits don't rebuild it. Both are read-only after init.
var occCarriers = ofdm.OccupiedCarriers()
var occCarrierSet = func() map[int]bool {
	m := make(map[int]bool, len(occCarriers))
	for _, k := range occCarriers {
		m[k] = true
	}
	return m
}()

// composeRatio builds the per-bin unit-magnitude correction from the
// product vector and a slope: the common phase is fit after removing the
// slope, then re-applied per carrier.
func composeRatio(q []complex128, slope float64) []complex128 {
	ks := occCarriers
	var acc complex128
	for _, k := range ks {
		acc += q[ofdm.Bin(k)] * cmplxs.Expi(units.Radians(-slope*float64(k)))
	}
	common := cmplxs.Phase(acc)
	ratio := make([]complex128, ofdm.NFFT)
	for _, k := range ks {
		ratio[ofdm.Bin(k)] = cmplxs.Expi(common + units.Radians(slope*float64(k)))
	}
	return ratio
}

// fitRatio is the single-shot form: per-packet slope, no tracking (used
// where no long-term state exists, e.g. the client side of the §6.2
// reference-antenna trick).
func fitRatio(cur, ref []complex128) []complex128 {
	slope, q := ratioComponents(cur, ref)
	return composeRatio(q, slope)
}

// trackCFO refines the slave's long-term CFO with the phase advance of the
// ratio between consecutive packets: Δφ/Δt over a baseline of thousands of
// samples, which is how "a simple long term average for the frequency
// offset" (§1) reaches intra-packet accuracy. The current estimate
// resolves the 2π ambiguity; measurements fuse precision-weighted
// (variance ∝ 1/Δt²), and the total weight is capped so slow oscillator
// wander is still tracked. Very long idle gaps (where ambiguity
// resolution would be unsafe) only reset the phase snapshot. It returns the
// measured innovation (the phase the prediction missed by, rad) as the
// residual-phase-error telemetry; 0 when no fusion happened.
func (ps *peerSync) trackCFO(ratio []complex128, at int64) units.Radians {
	var sum complex128
	for _, v := range ratio {
		sum += v
	}
	phase := cmplxs.Phase(sum)
	defer func() {
		ps.lastPhase = phase
		ps.lastAt = at
		ps.hasPhase = true
	}()
	if !ps.hasPhase {
		return 0
	}
	dt := float64(at - ps.lastAt)
	if dt <= 0 || dt > 2e5 {
		return 0
	}
	predicted := units.PhaseAdvance(ps.cfo, units.Samples(dt))
	resid := cmplxs.WrapPhase(phase - ps.lastPhase - predicted)
	meas := units.RadiansOver(predicted+resid, units.Samples(dt))
	wMeas := dt * dt
	const weightCap = 1e11 // forget beyond ~(300k samples)² so wander tracks
	total := ps.cfoWeight + wMeas
	ps.cfo = units.Div(units.Scale(ps.cfo, ps.cfoWeight)+units.Scale(meas, wMeas), total)
	ps.cfoWeight = math.Min(total, weightCap)
	return resid
}

func payloadLen(payloads [][]byte) int {
	for _, p := range payloads {
		if p != nil {
			return len(p)
		}
	}
	return 0
}

// SelectJointMCS picks the common MCS for a joint transmission from the
// zero-forcing effective SNR of every stream (§9), returning ok=false when
// even the lowest rate is undeliverable for some stream.
func (n *Network) SelectJointMCS(p *Precoder) (phy.MCS, bool) {
	best := phy.MCS7
	ok := true
	margin := units.DBToLinear(-n.Cfg.RateMarginDB)
	for s := 0; s < p.Streams; s++ {
		nv := n.Cfg.NoiseVar
		if n.Msmt != nil && s < len(n.Msmt.NoiseVar) && n.Msmt.NoiseVar[s] > 0 {
			nv = n.Msmt.NoiseVar[s]
		}
		sub := p.EffectiveSubcarrierSNR(nv)
		for i := range sub {
			sub[i] *= margin
		}
		mcs, o := rate.Select(sub)
		if !o {
			ok = false
			continue
		}
		if mcs < best {
			best = mcs
		}
	}
	return best, ok
}

// SelectRateFromResult performs closed-loop rate adaptation: each decoded
// frame's per-subcarrier error-vector SNR — which already includes
// residual inter-stream interference and receiver implementation loss —
// feeds the effective-SNR selector (§9: clients report channels and noise;
// the APs map per-subcarrier SNR to a rate). A stream whose probe produced
// no frame at all vetoes (ok = false).
func (n *Network) SelectRateFromResult(res *TxResult) (phy.MCS, bool) {
	best := phy.MCS7
	ok := true
	marginLin := math.Pow(10, -2.0/10) // 2 dB safety on measured SNR
	for _, f := range res.Frames {
		if f == nil {
			ok = false
			continue
		}
		sub := make([]float64, len(f.SubcarrierSNR))
		for i, s := range f.SubcarrierSNR {
			sub[i] = s * marginLin
		}
		mcs, o := rate.Select(sub)
		if !o {
			// Margin pushed a marginal link just under the base rate; the
			// probe itself decoded (f != nil), so BPSK 1/2 demonstrably
			// works — accept it when the unmargined SNR clears it.
			if _, o2 := rate.Select(f.SubcarrierSNR); o2 && f.FCSOK {
				mcs = phy.MCS0
			} else {
				ok = false
				continue
			}
		}
		if mcs < best {
			best = mcs
		}
	}
	return best, ok
}

// ProbeAndSelectRate sends one low-rate probe transmission to every stream
// and adapts the joint MCS from the realized quality.
func (n *Network) ProbeAndSelectRate(payloadBytes int) (phy.MCS, bool, error) {
	streams := n.NumStreams()
	payloads := make([][]byte, streams)
	src := n.rng.Split(uint64(n.now) ^ 0x9E0B)
	for j := range payloads {
		payloads[j] = src.Bytes(make([]byte, payloadBytes))
	}
	res, err := n.JointTransmit(payloads, phy.MCS0)
	if err != nil {
		return 0, false, err
	}
	mcs, ok := n.SelectRateFromResult(res)
	return mcs, ok, nil
}

// NullingINR runs a joint transmission with the victim stream silenced and
// returns the interference-to-noise ratio measured at the victim (linear):
// the §11.1c metric. Phase misalignment is the only thing that leaks
// power into the null.
func (n *Network) NullingINR(victim int, payloadBytes int, mcs phy.MCS) (float64, error) {
	streams := n.NumStreams()
	if streams < 2 {
		return 0, fmt.Errorf("core: INR needs ≥ 2 streams")
	}
	payloads := make([][]byte, streams)
	src := n.rng.Split(uint64(n.now))
	for j := range payloads {
		if j == victim {
			continue
		}
		payloads[j] = src.Bytes(make([]byte, payloadBytes))
	}
	// Stash the data-transmission window before running (the transmission
	// advances the clock).
	startBefore := n.now
	res, err := n.JointTransmit(payloads, mcs)
	if err != nil {
		return 0, err
	}
	// Re-observe the data region cleanly at the victim and measure the
	// interference the way an OFDM receiver experiences it: per-symbol FFT
	// with the cyclic prefix stripped, averaged over the occupied bins.
	// (The CP splice carries an un-nulled linear-convolution transient —
	// real beamforming hardware has it too — but no receiver ever looks at
	// those samples.)
	tD := startBefore + 64 + int64(ofdm.PreambleLen) + int64(n.Cfg.TriggerDelaySamples)
	frameLen := int(res.AirtimeSamples) - int(ofdm.PreambleLen)
	cl := n.Clients[victim/n.Cfg.AntennasPerClient]
	ant := victim % n.Cfg.AntennasPerClient
	obs := n.Air.ObserveClean(n.ClientAntennaID(cl.Index, ant), cl.Node.Osc, tD+int64(ofdm.PreambleLen), frameLen-ofdm.PreambleLen)
	bins := occupiedBins()
	freq := make([]complex128, ofdm.NFFT)
	var acc float64
	var cnt int
	for s := 0; (s+1)*ofdm.SymbolLen <= len(obs); s++ {
		if err := n.dem.FreqInto(freq, obs[s*ofdm.SymbolLen:]); err != nil {
			break
		}
		for _, b := range bins {
			v := freq[b]
			acc += real(v)*real(v) + imag(v)*imag(v)
			cnt++
		}
	}
	if cnt == 0 {
		return 0, fmt.Errorf("core: INR window empty")
	}
	// The demodulator's unitary scaling makes per-bin noise power equal
	// the per-sample noise variance, so this is interference-per-bin over
	// noise-per-bin — the receiver's own SNR-reduction view.
	inr := acc / float64(cnt) / n.Cfg.NoiseVar
	if inr > 0 {
		n.trace(tD, KindNullDepth,
			TraceAttrs{Client: victim / n.Cfg.AntennasPerClient, Stream: victim, NullDepthDB: -units.LinearToDB(inr)},
			"victim stream %d", victim)
	}
	return inr, nil
}
