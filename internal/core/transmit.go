package core

import (
	"fmt"
	"math"
	"math/bits"

	"megamimo/internal/cmplxs"
	"megamimo/internal/ofdm"
	"megamimo/internal/phy"
	"megamimo/internal/rate"
	psync "megamimo/internal/sync"
	"megamimo/internal/units"
)

// winLead is the observation-window lead-in used consistently by slaves and
// clients so every phase reference lines up (see measurement.go).
const winLead = 128

// TxResult reports one joint transmission.
type TxResult struct {
	// Frames holds each stream's decoded frame (nil when that stream was
	// silent or decoding failed entirely).
	Frames []*phy.RxFrame
	// OK marks streams whose frame decoded with a valid FCS.
	OK []bool
	// AirtimeSamples covers the sync header and the frame (the software
	// trigger turnaround is excluded; see JointTransmit).
	AirtimeSamples int64
	// MCS is the rate used.
	MCS phy.MCS
	// PayloadBytes is the per-stream payload size.
	PayloadBytes int
}

// GoodputBits returns the successfully delivered payload bits.
func (r *TxResult) GoodputBits() float64 {
	var bits float64
	for i, ok := range r.OK {
		if ok && r.Frames[i] != nil {
			bits += float64(8 * len(r.Frames[i].Payload))
		}
	}
	return bits
}

// SetPrecoder distributes precoder rows to every AP over the backbone
// (logical distribution — the lead computes W and each AP keeps its rows).
func (n *Network) SetPrecoder(p *Precoder) {
	for _, ap := range n.APs {
		ap.weights = make([][][]complex128, n.Cfg.AntennasPerAP)
		for m := 0; m < n.Cfg.AntennasPerAP; m++ {
			g := ap.Index*n.Cfg.AntennasPerAP + m
			ap.weights[m] = make([][]complex128, p.Streams)
			for j := 0; j < p.Streams; j++ {
				ap.weights[m][j] = p.GainColumn(g, j)
			}
		}
	}
}

// MeasureAndPrecode runs the measurement phase and installs the ZF
// precoder, the normal setup sequence for multiplexed transmission.
func (n *Network) MeasureAndPrecode() (*Precoder, error) {
	if err := n.Measure(); err != nil {
		return nil, err
	}
	return n.Precode(0)
}

// JointTransmit delivers one payload per stream concurrently from all APs
// (§5.2). A nil payload silences that stream while its nulls remain
// enforced (used by the INR experiments). All non-nil payloads must have
// equal length so the frames stay time aligned.
func (n *Network) JointTransmit(payloads [][]byte, mcs phy.MCS) (*TxResult, error) {
	streams := n.NumStreams()
	if len(payloads) != streams {
		return nil, fmt.Errorf("core: %d payloads for %d streams", len(payloads), streams)
	}
	if n.Msmt == nil {
		return nil, fmt.Errorf("core: JointTransmit before Measure")
	}
	for _, ap := range n.APs {
		if n.crashed[ap.Index] {
			continue
		}
		if ap.weights == nil {
			return nil, fmt.Errorf("core: AP %d has no precoder rows", ap.Index)
		}
	}
	// Build the per-stream frames (every AP has every payload via the
	// backbone, §5.2a).
	tx := n.tx
	frames := make([]*phy.FrameSymbols, streams)
	frameLen := -1
	for j, p := range payloads {
		if p == nil {
			continue
		}
		f, err := tx.FrameSymbols(p, mcs)
		if err != nil {
			return nil, err
		}
		if frameLen >= 0 && f.SampleLen() != frameLen {
			return nil, fmt.Errorf("core: stream %d frame length %d != %d (pad payloads equal)", j, f.SampleLen(), frameLen)
		}
		frameLen = f.SampleLen()
		frames[j] = f
	}
	if frameLen < 0 {
		return nil, fmt.Errorf("core: all streams silent")
	}

	span := n.tracer.BeginSpan(n.now, KindJointTx, TraceAttrs{Bits: int64(8 * payloadLen(payloads))},
		"%d streams at %v", streams, mcs)
	_, tD, err := n.postJointFrames(tx, frames)
	if err != nil {
		n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{Cause: "post"}, "%v", err)
		return nil, err
	}

	// 4. Clients decode their streams.
	res := &TxResult{
		Frames:       make([]*phy.RxFrame, streams),
		OK:           make([]bool, streams),
		MCS:          mcs,
		PayloadBytes: payloadLen(payloads),
		// Airtime charges the sync header plus the frame. The trigger
		// turnaround t∆ is a software-radio artifact (§10: "based on the
		// maximum delay of our software implementation") excluded from
		// throughput accounting, as the paper's measured ≈0.9N gains
		// imply; in the 802.11n design the sync header is the packet's
		// own legacy preamble (§6.1), so this is the hardware cost.
		AirtimeSamples: int64(ofdm.PreambleLen) + int64(frameLen),
	}
	for _, cl := range n.Clients {
		for cm := 0; cm < n.Cfg.AntennasPerClient; cm++ {
			j := cl.Index*n.Cfg.AntennasPerClient + cm
			if frames[j] == nil {
				continue
			}
			win := n.Air.Observe(n.ClientAntennaID(cl.Index, cm), cl.Node.Osc, tD-winLead, frameLen+winLead+128)
			f, err := cl.rx.Decode(win)
			if err != nil {
				n.mDecodeFailures.Inc()
				n.trace(tD, KindDecode, TraceAttrs{Client: cl.Index, Stream: j, Cause: "decode"},
					"stream %d: %v", j, err)
				continue
			}
			res.Frames[j] = f
			res.OK[j] = f.FCSOK
			if !f.FCSOK {
				n.mFCSFailures.Inc()
			}
			n.traceDecode(tD, cl.Index, j, f)
		}
	}
	okCount := 0
	for _, o := range res.OK {
		if o {
			okCount++
		}
	}
	n.mJointTx.Inc()
	n.mStreamsDelivered.Add(int64(okCount))
	n.now = tD + int64(frameLen) + 256
	n.Air.ClearBefore(n.now)
	n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{Bits: int64(res.GoodputBits()), OK: okCount == streams},
		"%d/%d streams delivered, airtime %d samples", okCount, streams, res.AirtimeSamples)
	return res, nil
}

// traceDecode emits one client antenna's decode-quality telemetry.
func (n *Network) traceDecode(at int64, client, stream int, f *phy.RxFrame) {
	if !n.tracer.Enabled() {
		return
	}
	minSub := math.Inf(1)
	for _, s := range f.SubcarrierSNR {
		if s < minSub {
			minSub = s
		}
	}
	minDB := units.Decibels(60)
	if minSub > 0 && !math.IsInf(minSub, 1) {
		minDB = units.LinearToDB(minSub)
		if minDB > 60 {
			minDB = 60
		}
	}
	n.trace(at, KindDecode, TraceAttrs{
		Client:          client,
		Stream:          stream,
		EVMSNRdB:        f.SNRdB,
		MinSubSNRdB:     minDB,
		CFORadPerSample: f.ResidualCFO,
		OK:              f.FCSOK,
	}, "")
}

// postJointFrames runs the transmission side of a joint frame: lead sync
// header (1), slave phase-correction measurement (2), and the precoded,
// phase-corrected emission from every AP antenna at the trigger time (3).
// frames[j] pairs with ap.weights[m][j]; nil frames are silent streams.
// It returns the header time t1 and data start tD.
func (n *Network) postJointFrames(tx *phy.TX, frames []*phy.FrameSymbols) (t1, tD int64, err error) {
	// 1. Lead sync header.
	t1 = n.now + 64
	lead := n.Lead()
	n.Air.Transmit(n.APAntennaID(lead.Index, 0), lead.Node.Osc, t1, ofdm.Preamble())
	n.mSyncHeaders.Inc()
	n.mSyncHeaderSmpls.Add(int64(ofdm.PreambleLen))
	n.trace(t1, KindSyncHeader, TraceAttrs{AP: lead.Index}, "lead AP %d", lead.Index)

	// 2. Slaves measure the lead's current channel and derive their phase
	//    correction (§5.2b) through the configured sync.Strategy.
	corr := make(map[int]*psync.Correction, len(n.APs))
	for i := range n.abstain {
		n.abstain[i] = false
	}
	for _, ap := range n.Slaves() {
		mc, mErr := n.slaveMeasureRatio(ap, t1)
		ps := ap.syncTo(lead.Index)
		if mErr != nil {
			// A slave that cannot measure its phase correction falls back
			// to the strategy's prediction while the strategy still trusts
			// it (inside the staleness budget); beyond that the slave
			// abstains — withholding its antennas beats firing with a
			// garbage phase ratio, which would fill every client's null
			// (§5.2b).
			if n.sync.Confidence(ps, t1, n.Cfg.SyncStalenessSamples) > 0 {
				mc = n.sync.Predict(ps, t1-winLead+ltfPhaseOffset)
				n.trace(t1, KindFault, TraceAttrs{AP: ap.Index, Cause: "sync-extrapolate"},
					"slave %d lost the sync header (last good measurement %d samples ago): %v",
					ap.Index, t1-ps.LastAt, mErr)
			} else {
				n.abstain[ap.Index] = true
				n.mSyncAbstain.Inc()
				n.trace(t1, KindFault, TraceAttrs{AP: ap.Index, Cause: "sync-abstain"},
					"slave %d withholds its antennas: %v", ap.Index, mErr)
				continue
			}
		}
		c := mc
		corr[ap.Index] = &c
		if mErr != nil {
			continue
		}
		// The flight recorder's phase-sync telemetry: the innovation of this
		// packet's measured phase against the strategy's prediction is the
		// residual phase error the π/18 nulling budget (§11.1b) bounds.
		n.trace(c.At, KindSlaveRatio,
			TraceAttrs{AP: ap.Index, PhaseErrRad: c.Residual, CFORadPerSample: c.CFO},
			"AP %d: Δφ measured over %d samples", ap.Index, c.At-c.RefAt)
	}

	// Participation: crashed and abstaining APs sit this round out. At
	// full strength the pre-distributed precoder applies untouched; a
	// degraded round re-zero-forces over the survivors (nil weight columns
	// mark shed streams) and is counted and traced.
	mask, full := n.participationMask()
	var mw *maskedWeights
	if mask != full {
		if len(frames) == n.NumStreams() {
			mw, err = n.weightsForMask(mask)
			if err != nil {
				return 0, 0, err
			}
		}
		// Diversity/per-stream precoders need no rebuild: each antenna's
		// weight is independent, so missing antennas just go dark.
		n.mDegradedRounds.Inc()
		n.trace(t1, KindFault, TraceAttrs{Cause: "degraded-round"},
			"degraded transmission: %d/%d APs participating", bits.OnesCount64(mask), len(n.APs))
	}

	// 3. Joint data transmission after the fixed turnaround t∆ (§10).
	tD = t1 + int64(ofdm.PreambleLen) + int64(n.Cfg.TriggerDelaySamples)
	frameLen := 0
	for _, f := range frames {
		if f != nil {
			frameLen = f.SampleLen()
			break
		}
	}
	// Arena-backed waveform buffers: Air.Transmit copies its input, so one
	// waveform buffer and one per-stream gain block serve every antenna, and
	// the whole block is recycled on the next cycle's Reset. Each antenna's
	// waveform is synthesized jointly — the streams sum in the frequency
	// domain and one batched IFFT covers the whole frame — so the synthesis
	// cost scales with symbols, not streams × symbols.
	n.arena.Reset()
	wave := n.arena.Complex(frameLen)
	gainArena := n.arena.Complex(len(frames) * ofdm.NFFT)
	gains := make([][]complex128, len(frames))
	for _, ap := range n.APs {
		if n.crashed[ap.Index] || n.abstain[ap.Index] {
			continue
		}
		c := corr[ap.Index]
		for m := 0; m < n.Cfg.AntennasPerAP; m++ {
			if len(ap.weights) <= m {
				return 0, 0, fmt.Errorf("core: AP %d antenna %d has no weights", ap.Index, m)
			}
			if len(ap.weights[m]) != len(frames) {
				return 0, 0, fmt.Errorf("core: AP %d has %d weight columns for %d frames", ap.Index, len(ap.weights[m]), len(frames))
			}
			for j := range frames {
				gains[j] = nil
				if frames[j] == nil {
					continue
				}
				w := ap.weights[m][j]
				if mw != nil {
					w = mw.gain[ap.Index*n.Cfg.AntennasPerAP+m][j]
					if w == nil {
						continue // stream shed in this degraded round
					}
				}
				if c == nil {
					// The lead needs no phase correction: its precoder row
					// applies untouched, no copy.
					gains[j] = w
					continue
				}
				g := gainArena[j*ofdm.NFFT : (j+1)*ofdm.NFFT]
				for i := range g {
					g[i] = w[i] * c.Ratio[i]
				}
				gains[j] = g
			}
			if !tx.SynthesizeJointInto(wave, frames, gains) {
				continue
			}
			if c != nil {
				// Intra-packet tracking with the long-term averaged CFO
				// (§5.3): extrapolate the measured phase from the ratio's
				// reference window to every data sample, including the
				// constant offset between the slave's reference window and
				// the H estimates' reference time (the interleaved-block
				// center).
				phase0 := units.PhaseAdvance(c.CFO, units.Samples((tD-c.At)+(c.RefAt-n.Msmt.RefMid)))
				cmplxs.Rotate(wave, wave, phase0, c.CFO)
			}
			n.Air.Transmit(n.APAntennaID(ap.Index, m), ap.Node.Osc, tD, wave)
		}
	}
	return t1, tD, nil
}

// DiversityTransmit has every AP transmit the same payload coherently to
// one stream's receiver (§8): each antenna weights the signal by h*/|h|
// per subcarrier, so the received amplitudes add — an N² SNR gain that
// rescues clients no single AP can reach. It installs the diversity
// precoder, so call SetPrecoder (or MeasureAndPrecode) before returning to
// multiplexed transmission.
func (n *Network) DiversityTransmit(stream int, payload []byte, mcs phy.MCS) (*TxResult, error) {
	if n.Msmt == nil {
		return nil, fmt.Errorf("core: DiversityTransmit before Measure")
	}
	p, err := ComputeDiversity(n.Msmt, stream)
	if err != nil {
		return nil, err
	}
	n.SetPrecoder(p)
	tx := n.tx
	f, err := tx.FrameSymbols(payload, mcs)
	if err != nil {
		return nil, err
	}
	frames := []*phy.FrameSymbols{f}
	span := n.tracer.BeginSpan(n.now, KindJointTx, TraceAttrs{Stream: stream, Bits: int64(8 * len(payload))},
		"diversity to stream %d at %v", stream, mcs)
	_, tD, err := n.postJointFrames(tx, frames)
	if err != nil {
		n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{Cause: "post"}, "%v", err)
		return nil, err
	}
	frameLen := f.SampleLen()
	res := &TxResult{
		Frames:         make([]*phy.RxFrame, 1),
		OK:             make([]bool, 1),
		MCS:            mcs,
		PayloadBytes:   len(payload),
		AirtimeSamples: int64(ofdm.PreambleLen) + int64(frameLen), // see JointTransmit
	}
	cl := n.Clients[stream/n.Cfg.AntennasPerClient]
	ant := stream % n.Cfg.AntennasPerClient
	win := n.Air.Observe(n.ClientAntennaID(cl.Index, ant), cl.Node.Osc, tD-winLead, frameLen+winLead+128)
	if fr, err := cl.rx.Decode(win); err == nil {
		res.Frames[0] = fr
		res.OK[0] = fr.FCSOK
		if !fr.FCSOK {
			n.mFCSFailures.Inc()
		}
		n.traceDecode(tD, cl.Index, stream, fr)
	} else {
		n.mDecodeFailures.Inc()
		n.trace(tD, KindDecode, TraceAttrs{Client: cl.Index, Stream: stream, Cause: "decode"},
			"stream %d: %v", stream, err)
	}
	n.now = tD + int64(frameLen) + 256
	n.Air.ClearBefore(n.now)
	n.tracer.EndSpanAttrs(span, n.now, TraceAttrs{Bits: int64(res.GoodputBits()), OK: res.OK[0]},
		"delivered=%v, airtime %d samples", res.OK[0], res.AirtimeSamples)
	return res, nil
}

// slaveMeasureRatio observes the lead's sync header at t1 and runs the
// configured sync.Strategy's Measure on it: the per-bin ratio ĥ(t1)/ĥ(0)
// is the direct phase-offset measurement that avoids accumulating error
// (§5.2b); the correction's Residual is the innovation against the
// strategy's prediction, the flight recorder's phase-sync statistic (0 on
// the extrapolation ablation, which measures nothing).
func (n *Network) slaveMeasureRatio(ap *AP, t1 int64) (psync.Correction, error) {
	ps := ap.syncTo(n.Lead().Index)
	if ps.Ref == nil {
		return psync.Correction{}, fmt.Errorf("no reference channel toward AP %d (run Measure first)", n.Lead().Index)
	}
	winStart := t1 - winLead
	curAt := winStart + ltfPhaseOffset
	if n.Cfg.ExtrapolatePhase {
		// Ablation: predict Δφ = Δω̂·Δt instead of measuring it. Any error
		// in Δω̂ accumulates linearly with time since the measurement
		// phase (§5.2's "large accumulated errors over time").
		return n.sync.Predict(ps, curAt), nil
	}
	if n.syncLossUntil[ap.Index] > t1 {
		return psync.Correction{}, fmt.Errorf("sync header corrupted (injected, until t=%d)", n.syncLossUntil[ap.Index])
	}
	win := n.Air.Observe(n.APAntennaID(ap.Index, 0), ap.Node.Osc, winStart, ofdm.PreambleLen+winLead+192)
	sync, err := ofdm.Detect(win, 0.5)
	if err != nil {
		return psync.Correction{}, err
	}
	// The schedule is trigger-synchronized (SourceSync-grade timing), so
	// pin the LTF position; correlation peaks a sample off between the two
	// measurements would otherwise alias into per-bin phase slope errors.
	sync.LTFStart = winLead + ofdm.STFLen
	sync.PayloadStart = winLead + ofdm.PreambleLen
	cur, err := ofdm.EstimateChannelLTF(win, sync)
	if err != nil {
		return psync.Correction{}, err
	}
	return n.sync.Measure(ps, cur, curAt)
}

func payloadLen(payloads [][]byte) int {
	for _, p := range payloads {
		if p != nil {
			return len(p)
		}
	}
	return 0
}

// SelectJointMCS picks the common MCS for a joint transmission from the
// zero-forcing effective SNR of every stream (§9), returning ok=false when
// even the lowest rate is undeliverable for some stream.
func (n *Network) SelectJointMCS(p *Precoder) (phy.MCS, bool) {
	best := phy.MCS7
	ok := true
	margin := units.DBToLinear(-n.Cfg.RateMarginDB)
	for s := 0; s < p.Streams; s++ {
		nv := n.Cfg.NoiseVar
		if n.Msmt != nil && s < len(n.Msmt.NoiseVar) && n.Msmt.NoiseVar[s] > 0 {
			nv = n.Msmt.NoiseVar[s]
		}
		sub := p.EffectiveSubcarrierSNR(nv)
		for i := range sub {
			sub[i] *= margin
		}
		mcs, o := rate.Select(sub)
		if !o {
			ok = false
			continue
		}
		if mcs < best {
			best = mcs
		}
	}
	return best, ok
}

// SelectRateFromResult performs closed-loop rate adaptation: each decoded
// frame's per-subcarrier error-vector SNR — which already includes
// residual inter-stream interference and receiver implementation loss —
// feeds the effective-SNR selector (§9: clients report channels and noise;
// the APs map per-subcarrier SNR to a rate). A stream whose probe produced
// no frame at all vetoes (ok = false).
func (n *Network) SelectRateFromResult(res *TxResult) (phy.MCS, bool) {
	best := phy.MCS7
	ok := true
	marginLin := math.Pow(10, -2.0/10) // 2 dB safety on measured SNR
	for _, f := range res.Frames {
		if f == nil {
			ok = false
			continue
		}
		sub := make([]float64, len(f.SubcarrierSNR))
		for i, s := range f.SubcarrierSNR {
			sub[i] = s * marginLin
		}
		mcs, o := rate.Select(sub)
		if !o {
			// Margin pushed a marginal link just under the base rate; the
			// probe itself decoded (f != nil), so BPSK 1/2 demonstrably
			// works — accept it when the unmargined SNR clears it.
			if _, o2 := rate.Select(f.SubcarrierSNR); o2 && f.FCSOK {
				mcs = phy.MCS0
			} else {
				ok = false
				continue
			}
		}
		if mcs < best {
			best = mcs
		}
	}
	return best, ok
}

// ProbeAndSelectRate sends one low-rate probe transmission to every stream
// and adapts the joint MCS from the realized quality.
func (n *Network) ProbeAndSelectRate(payloadBytes int) (phy.MCS, bool, error) {
	streams := n.NumStreams()
	payloads := make([][]byte, streams)
	src := n.rng.Split(uint64(n.now) ^ 0x9E0B)
	for j := range payloads {
		payloads[j] = src.Bytes(make([]byte, payloadBytes))
	}
	res, err := n.JointTransmit(payloads, phy.MCS0)
	if err != nil {
		return 0, false, err
	}
	mcs, ok := n.SelectRateFromResult(res)
	return mcs, ok, nil
}

// NullingINR runs a joint transmission with the victim stream silenced and
// returns the interference-to-noise ratio measured at the victim (linear):
// the §11.1c metric. Phase misalignment is the only thing that leaks
// power into the null.
func (n *Network) NullingINR(victim int, payloadBytes int, mcs phy.MCS) (float64, error) {
	streams := n.NumStreams()
	if streams < 2 {
		return 0, fmt.Errorf("core: INR needs ≥ 2 streams")
	}
	payloads := make([][]byte, streams)
	src := n.rng.Split(uint64(n.now))
	for j := range payloads {
		if j == victim {
			continue
		}
		payloads[j] = src.Bytes(make([]byte, payloadBytes))
	}
	// Stash the data-transmission window before running (the transmission
	// advances the clock).
	startBefore := n.now
	res, err := n.JointTransmit(payloads, mcs)
	if err != nil {
		return 0, err
	}
	// Re-observe the data region cleanly at the victim and measure the
	// interference the way an OFDM receiver experiences it: per-symbol FFT
	// with the cyclic prefix stripped, averaged over the occupied bins.
	// (The CP splice carries an un-nulled linear-convolution transient —
	// real beamforming hardware has it too — but no receiver ever looks at
	// those samples.)
	tD := startBefore + 64 + int64(ofdm.PreambleLen) + int64(n.Cfg.TriggerDelaySamples)
	frameLen := int(res.AirtimeSamples) - int(ofdm.PreambleLen)
	cl := n.Clients[victim/n.Cfg.AntennasPerClient]
	ant := victim % n.Cfg.AntennasPerClient
	obs := n.Air.ObserveClean(n.ClientAntennaID(cl.Index, ant), cl.Node.Osc, tD+int64(ofdm.PreambleLen), frameLen-ofdm.PreambleLen)
	bins := occupiedBins()
	freq := make([]complex128, ofdm.NFFT)
	var acc float64
	var cnt int
	for s := 0; (s+1)*ofdm.SymbolLen <= len(obs); s++ {
		if err := n.dem.FreqInto(freq, obs[s*ofdm.SymbolLen:]); err != nil {
			break
		}
		for _, b := range bins {
			v := freq[b]
			acc += real(v)*real(v) + imag(v)*imag(v)
			cnt++
		}
	}
	if cnt == 0 {
		return 0, fmt.Errorf("core: INR window empty")
	}
	// The demodulator's unitary scaling makes per-bin noise power equal
	// the per-sample noise variance, so this is interference-per-bin over
	// noise-per-bin — the receiver's own SNR-reduction view.
	inr := acc / float64(cnt) / n.Cfg.NoiseVar
	if inr > 0 {
		n.trace(tD, KindNullDepth,
			TraceAttrs{Client: victim / n.Cfg.AntennasPerClient, Stream: victim, NullDepthDB: -units.LinearToDB(inr)},
			"victim stream %d", victim)
	}
	return inr, nil
}
