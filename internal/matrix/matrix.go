// Package matrix implements the dense complex linear algebra MegaMIMO's
// beamforming needs: matrix products, Hermitian transpose, inversion by
// partially pivoted Gaussian elimination, regularized (Tikhonov)
// pseudo-inverse, and norm/conditioning diagnostics.
//
// Matrices are small here — an N-AP MegaMIMO network inverts an N×N (or
// (N·ants)×(N·ants)) channel matrix, with N ≤ a few tens — so clarity wins
// over blocking and the package stays allocation-honest rather than clever.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// ErrSingular is returned when elimination meets a pivot smaller than the
// singularity threshold, i.e. the channel matrix cannot be inverted.
var ErrSingular = errors.New("matrix: singular matrix")

// M is a dense rows×cols complex matrix in row-major order.
type M struct {
	Rows, Cols int
	Data       []complex128 // len Rows*Cols, row-major
}

// New returns a zero rows×cols matrix.
func New(rows, cols int) *M {
	if rows <= 0 || cols <= 0 {
		panic("matrix: non-positive dimension")
	}
	return &M{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]complex128) *M {
	if len(rows) == 0 {
		panic("matrix: no rows")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("matrix: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *M {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at (r, c).
func (m *M) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *M) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice sharing the matrix backing store.
func (m *M) Row(r int) []complex128 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Col returns a copy of the c-th column.
func (m *M) Col(c int) []complex128 {
	out := make([]complex128, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.At(r, c)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *M) Clone() *M {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equalish reports whether m and b have the same shape and all elements
// within tol of each other.
func (m *M) Equalish(b *M, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Mul returns m·b.
func (m *M) Mul(b *M) *M {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			orow := out.Row(i)
			for j := range brow {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// MulVec returns m·x as a new slice.
func (m *M) MulVec(x []complex128) []complex128 {
	if m.Cols != len(x) {
		panic("matrix: MulVec shape mismatch")
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var acc complex128
		for j, v := range row {
			acc += v * x[j]
		}
		out[i] = acc
	}
	return out
}

// Add returns m+b.
func (m *M) Add(b *M) *M {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: Add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns m-b.
func (m *M) Sub(b *M) *M {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: Sub shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *M) Scale(s complex128) *M {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// H returns the Hermitian (conjugate) transpose of m.
func (m *M) H() *M {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, cmplx.Conj(m.At(r, c)))
		}
	}
	return out
}

// T returns the plain transpose of m.
func (m *M) T() *M {
	out := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

// FrobeniusNorm returns sqrt(sum |m_ij|^2).
func (m *M) FrobeniusNorm() float64 {
	var acc float64
	for _, v := range m.Data {
		acc += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(acc)
}

// MaxAbs returns the largest element magnitude.
func (m *M) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Inverse returns m⁻¹ computed by Gaussian elimination with partial
// pivoting. It returns ErrSingular when a pivot falls below a scale-aware
// threshold.
func (m *M) Inverse() (*M, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("matrix: Inverse of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	// Augment [A | I] and reduce in place.
	a := m.Clone()
	inv := Identity(n)
	scale := a.MaxAbs()
	if scale == 0 {
		return nil, ErrSingular
	}
	tol := scale * float64(n) * 1e-14
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at/below the diagonal.
		pivRow, pivAbs := col, cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if ab := cmplx.Abs(a.At(r, col)); ab > pivAbs {
				pivRow, pivAbs = r, ab
			}
		}
		if pivAbs <= tol {
			return nil, ErrSingular
		}
		if pivRow != col {
			swapRows(a, pivRow, col)
			swapRows(inv, pivRow, col)
		}
		pivInv := 1 / a.At(col, col)
		scaleRow(a, col, pivInv)
		scaleRow(inv, col, pivInv)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(a, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

// PseudoInverse returns the regularized right/left pseudo-inverse of m.
// For a square well-conditioned matrix with lambda = 0 it equals Inverse.
// lambda is the Tikhonov regularizer added to the Gram matrix diagonal;
// a beamformer uses the noise power here to get an MMSE precoder.
func (m *M) PseudoInverse(lambda float64) (*M, error) {
	h := m.H()
	if m.Rows >= m.Cols {
		// Left pseudo-inverse: (AᴴA + λI)⁻¹ Aᴴ.
		gram := h.Mul(m)
		for i := 0; i < gram.Rows; i++ {
			gram.Set(i, i, gram.At(i, i)+complex(lambda, 0))
		}
		gi, err := gram.Inverse()
		if err != nil {
			return nil, err
		}
		return gi.Mul(h), nil
	}
	// Right pseudo-inverse: Aᴴ (AAᴴ + λI)⁻¹.
	gram := m.Mul(h)
	for i := 0; i < gram.Rows; i++ {
		gram.Set(i, i, gram.At(i, i)+complex(lambda, 0))
	}
	gi, err := gram.Inverse()
	if err != nil {
		return nil, err
	}
	return h.Mul(gi), nil
}

// ConditionEstimate returns ‖A‖_F·‖A⁻¹‖_F, a cheap upper-bound style
// conditioning diagnostic (≥ the true 2-norm condition number / n).
func (m *M) ConditionEstimate() (float64, error) {
	inv, err := m.Inverse()
	if err != nil {
		return math.Inf(1), err
	}
	return m.FrobeniusNorm() * inv.FrobeniusNorm(), nil
}

// String renders the matrix for debugging.
func (m *M) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		b.WriteString("[ ")
		for c := 0; c < m.Cols; c++ {
			fmt.Fprintf(&b, "%6.3f%+6.3fi ", real(m.At(r, c)), imag(m.At(r, c)))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func swapRows(m *M, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(m *M, r int, s complex128) {
	row := m.Row(r)
	for i := range row {
		row[i] *= s
	}
}

// axpyRow does row[dst] += f*row[src].
func axpyRow(m *M, dst, src int, f complex128) {
	d, s := m.Row(dst), m.Row(src)
	for i := range d {
		d[i] += f * s[i]
	}
}
