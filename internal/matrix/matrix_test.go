package matrix

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(r *rand.Rand, n int) *M {
	m := New(n, n)
	for i := range m.Data {
		m.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randomMatrix(r, 4)
	if !a.Mul(Identity(4)).Equalish(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !Identity(4).Mul(a).Equalish(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]complex128{{1, 2i}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1i, 0}})
	got := a.Mul(b)
	want := FromRows([][]complex128{{-2, 1}, {4i, 3}})
	if !got.Equalish(want, 1e-12) {
		t.Fatalf("Mul =\n%v want\n%v", got, want)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randomMatrix(r, 5)
	x := make([]complex128, 5)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	xm := New(5, 1)
	copy(xm.Data, x)
	want := a.Mul(xm)
	got := a.MulVec(x)
	for i := range got {
		if cmplx.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for n := 1; n <= 12; n++ {
		a := randomMatrix(r, n)
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !a.Mul(inv).Equalish(Identity(n), 1e-8) {
			t.Fatalf("n=%d: A·A⁻¹ != I:\n%v", n, a.Mul(inv))
		}
		if !inv.Mul(a).Equalish(Identity(n), 1e-8) {
			t.Fatalf("n=%d: A⁻¹·A != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	z := New(3, 3)
	if _, err := z.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix err = %v", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Fatal("no error for non-square Inverse")
	}
}

func TestInverseNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]complex128{{0, 1}, {1, 0}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equalish(a, 1e-12) {
		t.Fatalf("inverse of permutation = %v", inv)
	}
}

func TestHermitian(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2}, {3i, 4 - 2i}})
	h := a.H()
	if h.At(0, 1) != -3i || h.At(1, 0) != 2 || h.At(0, 0) != 1-1i {
		t.Fatalf("H =\n%v", h)
	}
	if !a.H().H().Equalish(a, 0) {
		t.Fatal("Hᴴ != A")
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]complex128{{1, 2, 3}, {4, 5, 6}})
	tr := a.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T =\n%v", tr)
	}
}

func TestPseudoInverseSquareMatchesInverse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomMatrix(r, 6)
	pinv, err := a.PseudoInverse(0)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !pinv.Equalish(inv, 1e-6) {
		t.Fatal("pinv(A) != inv(A) for square A")
	}
}

func TestPseudoInverseTall(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := New(6, 3)
	for i := range a.Data {
		a.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	pinv, err := a.PseudoInverse(0)
	if err != nil {
		t.Fatal(err)
	}
	// Left inverse: pinv(A)·A = I (3x3).
	if !pinv.Mul(a).Equalish(Identity(3), 1e-8) {
		t.Fatalf("pinv·A != I:\n%v", pinv.Mul(a))
	}
}

func TestPseudoInverseWide(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := New(3, 6)
	for i := range a.Data {
		a.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	pinv, err := a.PseudoInverse(0)
	if err != nil {
		t.Fatal(err)
	}
	// Right inverse: A·pinv(A) = I (3x3).
	if !a.Mul(pinv).Equalish(Identity(3), 1e-8) {
		t.Fatalf("A·pinv != I:\n%v", a.Mul(pinv))
	}
}

func TestPseudoInverseRegularizationShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randomMatrix(r, 4)
	p0, err := a.PseudoInverse(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := a.PseudoInverse(10)
	if err != nil {
		t.Fatal(err)
	}
	if p1.FrobeniusNorm() >= p0.FrobeniusNorm() {
		t.Fatalf("regularized norm %v >= unregularized %v", p1.FrobeniusNorm(), p0.FrobeniusNorm())
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{1, 1}, {1, 1}})
	if got := a.Add(b).At(1, 1); got != 5 {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b).At(0, 0); got != 0 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2i).At(0, 1); got != 4i {
		t.Fatalf("Scale = %v", got)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	a := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v", got)
	}
}

func TestConditionEstimate(t *testing.T) {
	// Identity has Frobenius condition estimate n.
	got, err := Identity(4).ConditionEstimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("cond(I) = %v, want 4", got)
	}
	if _, err := FromRows([][]complex128{{1, 1}, {1, 1}}).ConditionEstimate(); err == nil {
		t.Fatal("singular matrix should error")
	}
}

func TestRowColClone(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	if got := a.Col(1); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Col = %v", got)
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	a.Row(0)[0] = 7
	if a.At(0, 0) != 7 {
		t.Fatal("Row should share storage")
	}
}

// Property: (AB)ᴴ = BᴴAᴴ for random matrices.
func TestQuickHermitianOfProduct(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(5)
		a, b := randomMatrix(rr, n), randomMatrix(rr, n)
		return a.Mul(b).H().Equalish(b.H().Mul(a.H()), 1e-9)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: inverse of a product is the reversed product of inverses.
func TestQuickInverseOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(4)
		a, b := randomMatrix(rr, n), randomMatrix(rr, n)
		ab, err1 := a.Mul(b).Inverse()
		ai, err2 := a.Inverse()
		bi, err3 := b.Inverse()
		if err1 != nil || err2 != nil || err3 != nil {
			return true // singular draw: vacuous
		}
		return ab.Equalish(bi.Mul(ai), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInverse8x8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randomMatrix(r, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Inverse(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul10x10(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := randomMatrix(r, 10)
	y := randomMatrix(r, 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}
