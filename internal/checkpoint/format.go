// Package checkpoint implements the versioned, CRC-guarded snapshot
// format behind the resumable soak harness: a checkpoint file captures
// the complete deterministic state of a running simulation (network,
// traffic engine, bus, fault injector, metrics, rng streams) so a killed
// run can be resumed and replay a byte-identical trace/metrics tail.
//
// The container is deliberately dumb: a fixed binary header guards a
// single JSON payload.
//
//	offset  size  field
//	     0     8  magic "MMCKPT1\n"
//	     8     4  format version (big endian)
//	    12    32  SHA-256 digest of the run's canonical config JSON
//	    44     8  payload length in bytes (big endian)
//	    52     4  CRC-32 (IEEE) of the payload (big endian)
//	    56     —  payload (JSON State)
//
// The digest is in the header so a resume against the wrong run
// (different topology, seed, or sync strategy) is rejected before any
// payload is parsed; the payload also embeds the config JSON itself so
// the mismatch error can name the fields that differ. Every load-path
// failure — truncation, bit rot, version skew — is returned as an error
// carrying the byte offset of the damage; the loader never panics.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"reflect"
	"sort"
)

const (
	// Magic opens every checkpoint file.
	Magic = "MMCKPT1\n"
	// Version is the current format version; bump it on any payload
	// schema change that an older reader would misinterpret.
	Version = 1

	headerLen = 56
	offMagic  = 0
	offVer    = 8
	offDigest = 12
	offLen    = 44
	offCRC    = 52
	offBody   = 56
)

// Digest hashes a run's canonical config JSON — the identity a resume is
// checked against.
func Digest(cfgJSON []byte) [32]byte { return sha256.Sum256(cfgJSON) }

// Write atomically writes st as a checkpoint file stamped with the
// digest of cfgJSON (which is also embedded in the payload). It returns
// the total file size, the harness's checkpoint_bytes_total increment.
func Write(path string, cfgJSON []byte, st *State) (int64, error) {
	st.Config = json.RawMessage(cfgJSON)
	payload, err := json.Marshal(st)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: encode payload: %w", err)
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf[offMagic:], Magic)
	binary.BigEndian.PutUint32(buf[offVer:], Version)
	digest := Digest(cfgJSON)
	copy(buf[offDigest:], digest[:])
	binary.BigEndian.PutUint64(buf[offLen:], uint64(len(payload)))
	binary.BigEndian.PutUint32(buf[offCRC:], crc32.ChecksumIEEE(payload))
	copy(buf[offBody:], payload)
	// Atomic publish: a reader (or a kill -9) never sees a half-written
	// checkpoint under the final name.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return int64(len(buf)), nil
}

// ReadAny loads a checkpoint without checking whose run it belongs to,
// returning the state and the embedded config JSON. Integrity (magic,
// version, length, CRC) is still fully enforced. The bisect walker uses
// it; resume paths must use Read.
func ReadAny(path string) (*State, []byte, error) {
	st, _, err := read(path)
	if err != nil {
		return nil, nil, err
	}
	return st, []byte(st.Config), nil
}

// Read loads a checkpoint and verifies it was taken under exactly the
// given run configuration, rejecting a resume across a different
// topology, seed, or sync strategy with an error naming the fields that
// differ.
func Read(path string, cfgJSON []byte) (*State, error) {
	st, digest, err := read(path)
	if err != nil {
		return nil, err
	}
	if want := Digest(cfgJSON); digest != want {
		return nil, fmt.Errorf("checkpoint %s: config mismatch (header digest at offset %d): checkpoint was taken under a different run configuration%s — refusing to resume",
			path, offDigest, diffConfigs([]byte(st.Config), cfgJSON))
	}
	return st, nil
}

// read performs the shared integrity-checked load.
func read(path string) (*State, [32]byte, error) {
	var digest [32]byte
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, digest, err
	}
	if len(data) < headerLen {
		return nil, digest, fmt.Errorf("checkpoint %s: truncated at byte offset %d: %d bytes, header needs %d",
			path, len(data), len(data), headerLen)
	}
	if string(data[offMagic:offMagic+len(Magic)]) != Magic {
		return nil, digest, fmt.Errorf("checkpoint %s: bad magic at byte offset %d: not a checkpoint file", path, offMagic)
	}
	if v := binary.BigEndian.Uint32(data[offVer:]); v != Version {
		return nil, digest, fmt.Errorf("checkpoint %s: unsupported format version %d at byte offset %d (reader supports %d)",
			path, v, offVer, Version)
	}
	copy(digest[:], data[offDigest:offDigest+32])
	plen := binary.BigEndian.Uint64(data[offLen:])
	if got := uint64(len(data) - headerLen); plen != got {
		return nil, digest, fmt.Errorf("checkpoint %s: truncated payload at byte offset %d: header says %d bytes, file holds %d",
			path, offBody+int(min64(plen, got)), plen, got)
	}
	payload := data[offBody:]
	wantCRC := binary.BigEndian.Uint32(data[offCRC:])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, digest, fmt.Errorf("checkpoint %s: corrupted payload (CRC 0x%08x, header at byte offset %d says 0x%08x; payload spans offsets %d..%d)",
			path, got, offCRC, wantCRC, offBody, len(data))
	}
	var st State
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, digest, fmt.Errorf("checkpoint %s: decode payload at byte offset %d: %w", path, offBody, err)
	}
	return &st, digest, nil
}

// diffConfigs names the top-level config fields that differ between the
// checkpoint's embedded config and the resuming run's, so the mismatch
// error says "seed, sync" instead of only two hashes. Best-effort: an
// undecodable side yields no field list.
func diffConfigs(stored, current []byte) string {
	var a, b map[string]any
	if json.Unmarshal(stored, &a) != nil || json.Unmarshal(current, &b) != nil {
		return ""
	}
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	var differ []string
	for k := range keys {
		if !reflect.DeepEqual(a[k], b[k]) {
			differ = append(differ, k)
		}
	}
	if len(differ) == 0 {
		return ""
	}
	sort.Strings(differ)
	return fmt.Sprintf(" (differs in: %v)", differ)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
