package checkpoint

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"megamimo/internal/core"
	"megamimo/internal/traffic"
	"megamimo/internal/units"
)

func writeTestCheckpoint(t *testing.T, cfgJSON []byte) (string, int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.ckpt")
	n, err := Write(path, cfgJSON, &State{Now: 42, Rounds: 7, TraceBytes: 1234})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	return path, n
}

// TestFormatRoundTrip locks the container: what Write puts down, Read
// gets back, and the byte count matches the file.
func TestFormatRoundTrip(t *testing.T) {
	cfg := []byte(`{"seed":1}`)
	path, n := writeTestCheckpoint(t, cfg)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != n {
		t.Fatalf("Write reported %d bytes, file is %d", n, fi.Size())
	}
	st, err := Read(path, cfg)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if st.Now != 42 || st.Rounds != 7 || st.TraceBytes != 1234 {
		t.Fatalf("round-trip lost fields: %+v", st)
	}
	if string(st.Config) != string(cfg) {
		t.Fatalf("embedded config %q, want %q", st.Config, cfg)
	}
	st2, gotCfg, err := ReadAny(path)
	if err != nil {
		t.Fatalf("ReadAny: %v", err)
	}
	if st2.Now != st.Now || string(gotCfg) != string(cfg) {
		t.Fatalf("ReadAny disagrees with Read")
	}
}

// TestFormatCorruptionDetection locks satellite #2: every corruption mode
// is detected, reported with a byte offset, and never panics the loader.
func TestFormatCorruptionDetection(t *testing.T) {
	cfg := []byte(`{"seed":1}`)
	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantSub string
	}{
		{"truncated-header", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "bad magic"},
		{"future-version", func(b []byte) []byte { b[11] = 99; return b }, "unsupported format version"},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }, "truncated payload"},
		{"flipped-payload-bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, "CRC"},
		{"flipped-crc", func(b []byte) []byte { b[52] ^= 0x01; return b }, "CRC"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, _ := writeTestCheckpoint(t, cfg)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = Read(path, cfg)
			if err == nil {
				t.Fatalf("corrupted checkpoint loaded cleanly")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "offset") {
				t.Fatalf("error %q carries no byte offset", err)
			}
		})
	}
}

// TestDigestMismatchNamesFields locks satellite #1's diagnostics: the
// rejection error names the differing config fields, not just two hashes.
func TestDigestMismatchNamesFields(t *testing.T) {
	cfg := []byte(`{"seed":1,"aps":4}`)
	path, _ := writeTestCheckpoint(t, cfg)
	_, err := Read(path, []byte(`{"seed":2,"aps":4}`))
	if err == nil {
		t.Fatalf("mismatched config accepted")
	}
	if !strings.Contains(err.Error(), "config mismatch") || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("error %q should report a config mismatch naming 'seed'", err)
	}
	if strings.Contains(err.Error(), "aps") {
		t.Fatalf("error %q names 'aps', which did not differ", err)
	}
}

// TestCpxRoundTrip locks the complex wire encoding, including exact
// float64 round-tripping through JSON.
func TestCpxRoundTrip(t *testing.T) {
	in := Cpx{complex(1.0/3.0, -2.718281828459045), complex(0, 1e-300), complex(-0, 42)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Cpx
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v != %v", out, in)
	}
	if err := json.Unmarshal([]byte(`[1,2,3]`), &out); err == nil {
		t.Fatalf("odd-length scalar list accepted")
	}
}

// buildCell is a minimal measured network + engine for boundary tests.
func buildCell(t *testing.T, onRound func(int) error) (*core.Network, *traffic.Engine) {
	t.Helper()
	cfg := core.DefaultConfig(2, 2, units.Decibels(18), units.Decibels(24))
	cfg.Seed = 11
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Trace().Enable(1 << 16)
	if _, err := net.MeasureAndPrecode(); err != nil {
		t.Fatal(err)
	}
	profiles := make([]traffic.Profile, net.NumStreams())
	for i := range profiles {
		profiles[i] = traffic.NewCBR(10e6, 200)
	}
	eng, err := traffic.New(net, traffic.Config{
		System:   traffic.SystemMegaMIMO,
		Profiles: profiles,
		Seed:     12,
		OnRound:  onRound,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, eng
}

// TestResumeEquivalenceAcrossBoundary locks satellite #4 at the package
// level: an engine captured mid-run and restored into a fresh build
// finishes with exactly the uninterrupted run's latency and jitter
// accounting — the window's percentile math sees one continuous stream of
// deliveries, not two halves.
func TestResumeEquivalenceAcrossBoundary(t *testing.T) {
	const window = 0.008
	net1, eng1 := buildCell(t, nil)
	_ = net1
	full, err := eng1.Run(window)
	if err != nil {
		t.Fatal(err)
	}
	if full.Rounds < 6 {
		t.Fatalf("window too short: %d rounds", full.Rounds)
	}

	cutAt := full.Rounds / 2
	var captured *State
	interrupted := errTestInterrupt{}
	var net2 *core.Network
	var eng2 *traffic.Engine
	net2, eng2 = buildCell(t, func(rounds int) error {
		if rounds != cutAt {
			return nil
		}
		st, err := Capture(net2, eng2, 0, 0)
		if err != nil {
			t.Errorf("Capture: %v", err)
			return err
		}
		captured = st
		return interrupted
	})
	if _, err := eng2.Run(window); err != interrupted {
		t.Fatalf("interrupted run: got %v", err)
	}
	if captured == nil {
		t.Fatalf("hook never captured")
	}

	// Round-trip through the on-disk format, as a real resume would.
	cfgJSON := []byte(`{"test":"boundary"}`)
	path := filepath.Join(t.TempDir(), "mid.ckpt")
	if _, err := Write(path, cfgJSON, captured); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(path, cfgJSON)
	if err != nil {
		t.Fatal(err)
	}

	net3, eng3 := buildCell(t, nil)
	if err := eng3.Prepare(); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Restore(net3, eng3); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	resumed, err := eng3.ResumeRun()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.String(), full.String(); got != want {
		t.Fatalf("resumed report diverges from uninterrupted run:\n--- full\n%s\n--- resumed\n%s", want, got)
	}
	for i := range full.Clients {
		if math.Float64bits(full.Clients[i].JitterMs) != math.Float64bits(resumed.Clients[i].JitterMs) {
			t.Fatalf("stream %d jitter: resumed %v, want %v", i, resumed.Clients[i].JitterMs, full.Clients[i].JitterMs)
		}
	}
}

// errTestInterrupt is a sentinel error type for the capture hook.
type errTestInterrupt struct{}

func (errTestInterrupt) Error() string { return "test interrupt" }
