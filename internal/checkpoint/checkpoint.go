package checkpoint

import (
	"encoding/json"
	"fmt"

	"megamimo/internal/air"
	"megamimo/internal/backend"
	"megamimo/internal/core"
	"megamimo/internal/mac"
	"megamimo/internal/metrics"
	"megamimo/internal/radio"
	"megamimo/internal/rng"
	psync "megamimo/internal/sync"
	"megamimo/internal/traffic"
)

// Cpx is a complex slice on the wire: [re0, im0, re1, im1, ...]. JSON has
// no complex type and float64 round-trips exactly through encoding/json,
// so this is lossless.
type Cpx []complex128

// MarshalJSON flattens to interleaved float64 pairs.
func (c Cpx) MarshalJSON() ([]byte, error) {
	flat := make([]float64, 0, 2*len(c))
	for _, z := range c {
		flat = append(flat, real(z), imag(z))
	}
	return json.Marshal(flat)
}

// UnmarshalJSON rebuilds the complex slice from interleaved pairs.
func (c *Cpx) UnmarshalJSON(b []byte) error {
	var flat []float64
	if err := json.Unmarshal(b, &flat); err != nil {
		return err
	}
	if len(flat)%2 != 0 {
		return fmt.Errorf("checkpoint: complex slice has %d scalars (odd)", len(flat))
	}
	out := make(Cpx, len(flat)/2)
	for i := range out {
		out[i] = complex(flat[2*i], flat[2*i+1])
	}
	*c = out
	return nil
}

// peerWire is one sync-peer entry: the flat Peer state with its complex
// reference channel lifted out into the wire encoding.
type peerWire struct {
	AP     int        `json:"ap"`
	Toward int        `json:"toward"`
	Ref    Cpx        `json:"ref,omitempty"`
	Peer   psync.Peer `json:"peer"` // Ref nilled before encode
}

// emissionWire is one in-flight medium emission.
type emissionWire struct {
	Tx      int   `json:"tx"`
	Start   int64 `json:"start"`
	Samples Cpx   `json:"samples"`
}

// airWire is the shared-medium state.
type airWire struct {
	Noise     rng.State      `json:"noise"`
	Emissions []emissionWire `json:"emissions,omitempty"`
}

// netWire is core.NetworkState with its complex-valued members rewritten
// into wire types.
type netWire struct {
	Now      int64            `json:"now"`
	Rng      rng.State        `json:"rng"`
	Crashed  []bool           `json:"crashed"`
	SyncLoss []int64          `json:"sync_loss"`
	Abstain  []bool           `json:"abstain"`
	IsLead   []bool           `json:"is_lead"`
	Oscs     []radio.OscState `json:"oscs"`
	Tracer   core.TracerState `json:"tracer"`
	Peers    []peerWire       `json:"peers,omitempty"`
	Air      airWire          `json:"air"`
}

// busMsgWire is one in-flight backbone message. The payload is encoded by
// kind: the only payload type alive during a traffic run is the MAC ACK.
type busMsgWire struct {
	From   int      `json:"from"`
	To     int      `json:"to"`
	SentAt int64    `json:"sent_at"`
	Seq    uint64   `json:"seq"`
	Delay  int64    `json:"delay,omitempty"`
	Kind   string   `json:"kind"`
	Ack    *mac.Ack `json:"ack,omitempty"`
}

// busWire is the backbone queue state.
type busWire struct {
	Seq     uint64       `json:"seq"`
	Pending []busMsgWire `json:"pending,omitempty"`
}

// State is the complete checkpoint payload: everything that must be
// overwritten onto a deterministically rebuilt simulation to continue it
// bit-for-bit. Config is the run's canonical config JSON, embedded by
// Write for mismatch diagnostics.
type State struct {
	Now    int64 `json:"now"`
	Rounds int   `json:"rounds"`
	// TraceBytes/SeriesBytes are the logical byte counts of the trace and
	// metrics-series streams at capture time — the offsets a resumed run's
	// tail files splice onto.
	TraceBytes  uint64 `json:"trace_bytes"`
	SeriesBytes uint64 `json:"series_bytes"`

	Net     netWire               `json:"net"`
	Engine  *traffic.EngineState  `json:"engine"`
	Bus     busWire               `json:"bus"`
	Metrics metrics.RegistryState `json:"metrics"`
	Config  json.RawMessage       `json:"config,omitempty"`
}

// Capture snapshots a quiescent (between service rounds) simulation.
// traceBytes/seriesBytes are the harness's logical stream positions.
func Capture(net *core.Network, eng *traffic.Engine, traceBytes, seriesBytes uint64) (*State, error) {
	ns, err := net.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	seq, pending := net.Bus.Snapshot()
	bus, err := encodeBus(seq, pending)
	if err != nil {
		return nil, err
	}
	es := eng.Snapshot()
	return &State{
		Now:         ns.Now,
		Rounds:      es.Rounds,
		TraceBytes:  traceBytes,
		SeriesBytes: seriesBytes,
		Net:         encodeNet(ns),
		Engine:      es,
		Bus:         bus,
		Metrics:     net.Metrics().Snapshot(),
	}, nil
}

// Restore overwrites a freshly rebuilt simulation with the checkpointed
// state. The network must have been rebuilt along the identical path the
// checkpointed run took (core.New + Measure + Precode + traffic.New +
// Prepare, same config and seed — Read's digest check guards this), and
// sinks must be attached only AFTER Restore so rebuild-time events never
// leak into the resumed stream. Order matters inside: the bus queue is
// reinstated after the network replays crash detachments, and the metrics
// registry is restored last so every increment the rebuild itself made is
// wiped back to the captured totals.
func (st *State) Restore(net *core.Network, eng *traffic.Engine) error {
	ns, err := decodeNet(&st.Net)
	if err != nil {
		return err
	}
	if err := net.RestoreSnapshot(ns); err != nil {
		return err
	}
	if eng != nil {
		if st.Engine == nil {
			return fmt.Errorf("checkpoint: payload has no engine state")
		}
		if err := eng.RestoreSnapshot(st.Engine); err != nil {
			return err
		}
	}
	seq, pending, err := decodeBus(st.Bus)
	if err != nil {
		return err
	}
	net.Bus.RestoreSnapshot(seq, pending)
	if err := net.Metrics().RestoreSnapshot(st.Metrics); err != nil {
		return err
	}
	return nil
}

// encodeNet rewrites a core snapshot into wire form.
func encodeNet(ns *core.NetworkState) netWire {
	w := netWire{
		Now:      ns.Now,
		Rng:      ns.Rng,
		Crashed:  ns.Crashed,
		SyncLoss: ns.SyncLoss,
		Abstain:  ns.Abstain,
		IsLead:   ns.IsLead,
		Oscs:     ns.Oscs,
		Tracer:   ns.Tracer,
		Air: airWire{
			Noise:     ns.Air.Noise,
			Emissions: make([]emissionWire, len(ns.Air.Emissions)),
		},
	}
	for i, em := range ns.Air.Emissions {
		w.Air.Emissions[i] = emissionWire{Tx: em.Tx, Start: em.Start, Samples: Cpx(em.Samples)}
	}
	for _, ps := range ns.Peers {
		p := ps.Peer
		ref := Cpx(p.Ref)
		p.Ref = nil
		w.Peers = append(w.Peers, peerWire{AP: ps.AP, Toward: ps.Toward, Ref: ref, Peer: p})
	}
	return w
}

// decodeNet rebuilds the core snapshot from wire form.
func decodeNet(w *netWire) (*core.NetworkState, error) {
	ns := &core.NetworkState{
		Now:      w.Now,
		Rng:      w.Rng,
		Crashed:  w.Crashed,
		SyncLoss: w.SyncLoss,
		Abstain:  w.Abstain,
		IsLead:   w.IsLead,
		Oscs:     w.Oscs,
		Tracer:   w.Tracer,
		Air: air.State{
			Noise:     w.Air.Noise,
			Emissions: make([]air.EmissionState, len(w.Air.Emissions)),
		},
	}
	for i, em := range w.Air.Emissions {
		ns.Air.Emissions[i] = air.EmissionState{Tx: em.Tx, Start: em.Start, Samples: em.Samples}
	}
	for _, pw := range w.Peers {
		p := pw.Peer
		p.Ref = pw.Ref
		ns.Peers = append(ns.Peers, core.SyncPeerState{AP: pw.AP, Toward: pw.Toward, Peer: p})
	}
	return ns, nil
}

// encodeBus rewrites the backbone queue, typing each in-flight payload.
// An unrecognized payload type fails the capture loudly rather than
// writing a checkpoint that cannot faithfully resume.
func encodeBus(seq uint64, pending []backend.Message) (busWire, error) {
	w := busWire{Seq: seq}
	for _, m := range pending {
		mw := busMsgWire{From: m.From, To: m.To, SentAt: m.SentAt, Seq: m.Seq, Delay: m.Delay}
		switch p := m.Payload.(type) {
		case mac.Ack:
			mw.Kind = "mac-ack"
			ack := p
			mw.Ack = &ack
		default:
			return busWire{}, fmt.Errorf("checkpoint: in-flight bus message %d carries unserializable payload %T", m.Seq, m.Payload)
		}
		w.Pending = append(w.Pending, mw)
	}
	return w, nil
}

// decodeBus rebuilds the backbone queue.
func decodeBus(w busWire) (uint64, []backend.Message, error) {
	pending := make([]backend.Message, 0, len(w.Pending))
	for _, mw := range w.Pending {
		m := backend.Message{From: mw.From, To: mw.To, SentAt: mw.SentAt, Seq: mw.Seq, Delay: mw.Delay}
		switch mw.Kind {
		case "mac-ack":
			if mw.Ack == nil {
				return 0, nil, fmt.Errorf("checkpoint: bus message %d is a mac-ack with no ack body", mw.Seq)
			}
			m.Payload = *mw.Ack
		default:
			return 0, nil, fmt.Errorf("checkpoint: bus message %d has unknown payload kind %q", mw.Seq, mw.Kind)
		}
		pending = append(pending, m)
	}
	return w.Seq, pending, nil
}
