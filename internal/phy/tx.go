package phy

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"megamimo/internal/dsp"
	"megamimo/internal/fec"
	"megamimo/internal/interleave"
	"megamimo/internal/modulation"
	"megamimo/internal/ofdm"
	"megamimo/internal/scramble"
	"megamimo/internal/units"
)

// MaxPSDU is the largest payload (before FCS) a frame can carry; the
// 12-bit LENGTH field covers payload+FCS.
const MaxPSDU = 4095 - 4

// scramblerSeed is the fixed initial scrambler state. 802.11 randomizes it
// per frame and carries it in the SERVICE field; a fixed seed keeps the
// simulation deterministic and is announced in SERVICE the same way.
const scramblerSeed = 0x5d

// FrameSymbols is the frequency-domain representation of a complete PPDU:
// the known preamble bins plus one 64-bin vector per OFDM symbol (SIGNAL
// first). A joint beamformer applies per-subcarrier complex gains to this
// representation and synthesizes per-transmitter waveforms from it.
type FrameSymbols struct {
	Symbols [][]complex128 // per-symbol 64-bin frequency vectors
	MCS     MCS
	PSDULen int // bytes, including FCS
}

// NumSymbols returns the data-field symbol count including SIGNAL.
func (f *FrameSymbols) NumSymbols() int { return len(f.Symbols) }

// SampleLen returns the time-domain frame length in samples.
func (f *FrameSymbols) SampleLen() int {
	return ofdm.PreambleLen + len(f.Symbols)*ofdm.SymbolLen
}

// AirtimeSeconds returns the frame duration at the given sample rate.
func (f *FrameSymbols) AirtimeSeconds(sampleRate units.Hertz) float64 {
	return float64(f.SampleLen()) / units.Ratio(sampleRate, 1)
}

// TX encodes payloads into PPDUs. A TX owns reusable scratch buffers, so it
// is not safe for concurrent use; each simulated network keeps its own.
type TX struct {
	mod *ofdm.Modulator
	// Per-symbol synthesis scratch (fixed OFDM sizes).
	gainFreq []complex128 // gain-multiplied 64-bin symbol
	stfF     []complex128 // gained STF bins
	ltfF     []complex128 // gained LTF bins
	stfT     []complex128 // one STF period, time domain
	ltfT     []complex128 // one LTF period, time domain
	mapBuf   []complex128 // 48 mapped data values per symbol
	blockBuf []byte       // interleaved coded bits per symbol (grow-only)
	// Joint-synthesis scratch: all accumulated symbol bins of one frame,
	// transformed with a single batched IFFT (grow-only).
	jointFreq []complex128
}

// NewTX returns a transmitter pipeline.
func NewTX() *TX {
	return &TX{
		mod:      ofdm.NewModulator(),
		gainFreq: make([]complex128, ofdm.NFFT),
		stfF:     make([]complex128, ofdm.NFFT),
		ltfF:     make([]complex128, ofdm.NFFT),
		stfT:     make([]complex128, ofdm.NFFT),
		ltfT:     make([]complex128, ofdm.NFFT),
		mapBuf:   make([]complex128, ofdm.NData),
	}
}

// FrameSymbols encodes payload (with a CRC-32 FCS appended) at the given
// MCS and returns the frequency-domain frame.
func (tx *TX) FrameSymbols(payload []byte, mcs MCS) (*FrameSymbols, error) {
	if !mcs.Valid() {
		return nil, fmt.Errorf("phy: invalid MCS %d", int(mcs))
	}
	if len(payload) > MaxPSDU {
		return nil, fmt.Errorf("phy: payload %d bytes exceeds %d", len(payload), MaxPSDU)
	}
	psdu := make([]byte, len(payload)+4)
	copy(psdu, payload)
	binary.LittleEndian.PutUint32(psdu[len(payload):], crc32.ChecksumIEEE(payload))

	info := mcs.info()
	// SIGNAL: RATE(4) + R(1) + LENGTH(12) + PARITY(1) = 18 info bits; the
	// convolutional tail forms the remaining 6 of the 24-bit field.
	sigBits := make([]byte, 0, 18)
	for i := 3; i >= 0; i-- {
		sigBits = append(sigBits, (info.signal>>i)&1)
	}
	sigBits = append(sigBits, 0) // reserved
	length := len(psdu)
	for i := 0; i < 12; i++ { // LSB first per the standard
		sigBits = append(sigBits, byte((length>>i)&1))
	}
	var par byte
	for _, b := range sigBits {
		par ^= b
	}
	sigBits = append(sigBits, par)
	sigCoded := fec.Encode(sigBits, fec.Rate12)
	if len(sigCoded) != 48 {
		//lint:ignore panic-policy internal invariant: 18 info bits + tail always code to 48 bits
		panic("phy: SIGNAL encoding produced wrong length")
	}
	sigIl := interleave.MustCached(48, 1)
	sigInter, err := sigIl.Interleave(sigCoded)
	if err != nil {
		return nil, err
	}
	sigSyms, err := modulation.Map(modulation.BPSK, sigInter)
	if err != nil {
		return nil, err
	}

	// DATA field: SERVICE(16 zeros) + PSDU bits + pad to symbol boundary,
	// scrambled; the encoder's zero tail plays the standard's tail bits.
	nInfoBits := 16 + 8*len(psdu)
	nsym := (nInfoBits + 6 + info.ndbps - 1) / info.ndbps
	padded := nsym*info.ndbps - 6
	bits := make([]byte, padded)
	for i := 0; i < 8*len(psdu); i++ {
		bits[16+i] = (psdu[i/8] >> (i % 8)) & 1 // LSB-first per octet
	}
	scramble.New(scramblerSeed).Apply(bits)
	coded := fec.Encode(bits, info.rate)
	if len(coded) != nsym*info.ncbps {
		//lint:ignore panic-policy internal invariant: the pad computation above sizes bits to fill nsym symbols exactly
		panic(fmt.Sprintf("phy: coded length %d != %d symbols × %d", len(coded), nsym, info.ncbps))
	}

	il := interleave.MustCached(info.ncbps, info.scheme.BitsPerSymbol())
	if cap(tx.blockBuf) < info.ncbps {
		tx.blockBuf = make([]byte, info.ncbps)
	}
	block := tx.blockBuf[:info.ncbps]
	out := &FrameSymbols{MCS: mcs, PSDULen: len(psdu)}
	out.Symbols = make([][]complex128, 0, 1+nsym)
	// SIGNAL symbol (pilot polarity index 0; data symbols continue from 1).
	freq, err := dataSymbolFreq(sigSyms, 0)
	if err != nil {
		return nil, err
	}
	out.Symbols = append(out.Symbols, freq)
	for s := 0; s < nsym; s++ {
		if err := il.InterleaveInto(block, coded[s*info.ncbps:(s+1)*info.ncbps]); err != nil {
			return nil, err
		}
		if err := modulation.MapInto(tx.mapBuf, info.scheme, block); err != nil {
			return nil, err
		}
		freq, err := dataSymbolFreq(tx.mapBuf, s+1)
		if err != nil {
			return nil, err
		}
		out.Symbols = append(out.Symbols, freq)
	}
	return out, nil
}

// dataSymbolFreq places 48 data values and the pilots for symbol index n
// onto a 64-bin grid. The returned slice is freshly allocated: it is
// retained in FrameSymbols.Symbols for the life of the frame.
func dataSymbolFreq(data []complex128, n int) ([]complex128, error) {
	if len(data) != ofdm.NData {
		return nil, fmt.Errorf("phy: %d data subcarriers", len(data))
	}
	freq := make([]complex128, ofdm.NFFT)
	for i, k := range ofdm.DataCarriers {
		freq[ofdm.Bin(k)] = data[i]
	}
	ref := ofdm.PilotReference(n)
	for i, k := range ofdm.PilotCarriers {
		freq[ofdm.Bin(k)] = ref[i]
	}
	return freq, nil
}

// Synthesize converts a frequency-domain frame to time-domain samples with
// unit spatial gain.
func (tx *TX) Synthesize(f *FrameSymbols) []complex128 {
	return tx.SynthesizeWithGain(f, nil)
}

// SynthesizeWithGain builds the transmit waveform, applying an optional
// per-FFT-bin complex gain to every symbol including the preamble. This is
// the beamforming hook: passing the precoder column for one (AP, client)
// pair yields that AP's contribution to that client's frame. Passing nil
// applies unit gain.
func (tx *TX) SynthesizeWithGain(f *FrameSymbols, gain []complex128) []complex128 {
	out := make([]complex128, f.SampleLen())
	tx.SynthesizeWithGainInto(out, f, gain)
	return out
}

// SynthesizeWithGainInto is SynthesizeWithGain writing into a caller-owned
// destination of length ≥ f.SampleLen(); it allocates nothing, which is what
// the joint-transmission hot path needs (one waveform per AP antenna per
// client per frame). It returns the filled prefix dst[:f.SampleLen()].
func (tx *TX) SynthesizeWithGainInto(dst []complex128, f *FrameSymbols, gain []complex128) []complex128 {
	if gain != nil && len(gain) != ofdm.NFFT {
		//lint:ignore panic-policy documented precondition, a caller bug rather than bad input; silent truncation would masquerade as an RF impairment
		panic("phy: gain must have one entry per FFT bin")
	}
	if len(dst) < f.SampleLen() {
		//lint:ignore panic-policy documented precondition, a caller bug rather than bad input
		panic(fmt.Sprintf("phy: destination holds %d samples, frame needs %d", len(dst), f.SampleLen()))
	}
	tx.synthPreambleWithGainInto(dst[:ofdm.PreambleLen], gain)
	off := ofdm.PreambleLen
	for _, freq := range f.Symbols {
		src := freq
		if gain != nil {
			for i := range tx.gainFreq {
				tx.gainFreq[i] = freq[i] * gain[i]
			}
			src = tx.gainFreq
		}
		if err := tx.mod.RawSymbolInto(dst[off:off+ofdm.SymbolLen], src); err != nil {
			//lint:ignore panic-policy internal invariant: src is always an NFFT-length vector built above
			panic(err)
		}
		off += ofdm.SymbolLen
	}
	return dst[:f.SampleLen()]
}

// SynthesizeJointInto builds one AP antenna's combined joint-transmission
// waveform directly in the frequency domain: the per-stream precoder gains
// multiply each stream's symbol bins, the gained bins of all streams sum
// per symbol, and ONE batched IFFT converts the whole frame — instead of a
// full per-stream synthesis followed by a time-domain sum. The preamble
// comes from the summed gains (the transform is linear, so gaining the
// preamble by Σ_j g_j equals summing per-stream gained preambles). gains[j]
// must be nil (silent/shed stream) or an NFFT-length vector, one per frame;
// a nil frames[j] is silent regardless of its gain. All participating
// frames must agree on symbol count (JointTransmit pads payloads equal).
// It reports whether any stream contributed; when false, dst is untouched
// and the antenna stays dark.
func (tx *TX) SynthesizeJointInto(dst []complex128, frames []*FrameSymbols, gains [][]complex128) bool {
	if len(gains) != len(frames) {
		//lint:ignore panic-policy documented precondition, a caller bug rather than bad input
		panic("phy: SynthesizeJointInto wants one gain vector per frame")
	}
	nsym := 0
	for j, f := range frames {
		if f == nil || gains[j] == nil {
			continue
		}
		if len(gains[j]) != ofdm.NFFT {
			//lint:ignore panic-policy documented precondition, a caller bug rather than bad input; silent truncation would masquerade as an RF impairment
			panic("phy: gain must have one entry per FFT bin")
		}
		if nsym != 0 && f.NumSymbols() != nsym {
			//lint:ignore panic-policy documented precondition: JointTransmit already pads payloads to equal frame lengths
			panic("phy: joint frames disagree on symbol count")
		}
		nsym = f.NumSymbols()
	}
	if nsym == 0 {
		return false
	}
	frameLen := ofdm.PreambleLen + nsym*ofdm.SymbolLen
	if len(dst) < frameLen {
		//lint:ignore panic-policy documented precondition, a caller bug rather than bad input
		panic(fmt.Sprintf("phy: destination holds %d samples, frame needs %d", len(dst), frameLen))
	}
	nf := nsym * ofdm.NFFT
	if cap(tx.jointFreq) < nf {
		tx.jointFreq = make([]complex128, nf)
	}
	comb := tx.jointFreq[:nf]
	for i := range comb {
		comb[i] = 0
	}
	gainSum := tx.gainFreq
	for i := range gainSum {
		gainSum[i] = 0
	}
	for j, f := range frames {
		g := gains[j]
		if f == nil || g == nil {
			continue
		}
		for i := range gainSum {
			gainSum[i] += g[i]
		}
		for s, freq := range f.Symbols {
			acc := comb[s*ofdm.NFFT : (s+1)*ofdm.NFFT]
			for i := range acc {
				acc[i] += freq[i] * g[i]
			}
		}
	}
	tx.synthPreambleWithGainInto(dst[:ofdm.PreambleLen], gainSum)
	plan := dsp.MustPlanFor(ofdm.NFFT)
	plan.InverseBatch(comb, comb)
	scale := complex(math.Sqrt(ofdm.NFFT), 0)
	off := ofdm.PreambleLen
	for s := 0; s < nsym; s++ {
		body := comb[s*ofdm.NFFT : (s+1)*ofdm.NFFT]
		out := dst[off : off+ofdm.SymbolLen]
		for i, v := range body {
			out[ofdm.CPLen+i] = v * scale
		}
		copy(out[:ofdm.CPLen], out[ofdm.SymbolLen-ofdm.CPLen:])
		off += ofdm.SymbolLen
	}
	return true
}

// basePreambleFreq lazily computes the ungained STF/LTF frequency
// definitions once; they are immutable reference vectors shared by every TX.
var basePreambleFreq struct {
	once sync.Once
	stf  []complex128
	ltf  []complex128
}

func preambleFreqBase() (stf, ltf []complex128) {
	basePreambleFreq.once.Do(func() {
		// Reconstruct the STF bins from the reference preamble: FFT of one
		// period-64 window of the STF.
		plan := dsp.MustPlanFor(ofdm.NFFT)
		f := make([]complex128, ofdm.NFFT)
		plan.Forward(f, ofdm.STF()[:ofdm.NFFT])
		scale := complex(1/math.Sqrt(ofdm.NFFT), 0)
		for i := range f {
			f[i] *= scale
		}
		basePreambleFreq.stf = f
		basePreambleFreq.ltf = ofdm.LTFFreq()
	})
	return basePreambleFreq.stf, basePreambleFreq.ltf
}

// synthPreambleWithGainInto reproduces the STF/LTF time structure from
// their frequency definitions with a per-bin gain applied, writing the
// ofdm.PreambleLen samples into dst without allocating.
func (tx *TX) synthPreambleWithGainInto(dst []complex128, gain []complex128) {
	stfBase, ltfBase := preambleFreqBase()
	for i := 0; i < ofdm.NFFT; i++ {
		if gain != nil {
			tx.stfF[i] = stfBase[i] * gain[i]
			tx.ltfF[i] = ltfBase[i] * gain[i]
		} else {
			tx.stfF[i] = stfBase[i]
			tx.ltfF[i] = ltfBase[i]
		}
	}
	plan := dsp.MustPlanFor(ofdm.NFFT)
	scale := complex(math.Sqrt(ofdm.NFFT), 0)
	plan.Inverse(tx.stfT, tx.stfF)
	plan.Inverse(tx.ltfT, tx.ltfF)
	for i := 0; i < ofdm.NFFT; i++ {
		tx.stfT[i] *= scale
		tx.ltfT[i] *= scale
	}
	n := 0
	for i := 0; i < ofdm.STFLen; i++ {
		dst[n] = tx.stfT[i%ofdm.NFFT]
		n++
	}
	n += copy(dst[n:], tx.ltfT[ofdm.NFFT-ofdm.LTFGuard:])
	n += copy(dst[n:], tx.ltfT)
	copy(dst[n:], tx.ltfT)
}

// Frame is the one-call TX path: payload → waveform at unit gain.
func (tx *TX) Frame(payload []byte, mcs MCS) ([]complex128, error) {
	f, err := tx.FrameSymbols(payload, mcs)
	if err != nil {
		return nil, err
	}
	return tx.Synthesize(f), nil
}
