// Package phy assembles the full 802.11a/g-style PHY pipeline on top of
// internal/ofdm: scramble → convolutional code → interleave → QAM map →
// OFDM, with a SIGNAL header, FCS, and the matching receive chain
// (detection, CFO correction, channel estimation, equalization, soft
// Viterbi). It also exposes the frequency-domain frame representation that
// MegaMIMO's joint beamformer precodes per subcarrier.
package phy

import (
	"fmt"

	"megamimo/internal/fec"
	"megamimo/internal/modulation"
	"megamimo/internal/units"
)

// MCS is a modulation-and-coding-scheme index, 0–7, in 802.11a rate order.
type MCS int

// The eight 802.11a rates.
const (
	MCS0   MCS = iota // BPSK 1/2   (6 Mb/s at 20 MHz)
	MCS1              // BPSK 3/4   (9)
	MCS2              // QPSK 1/2   (12)
	MCS3              // QPSK 3/4   (18)
	MCS4              // 16-QAM 1/2 (24)
	MCS5              // 16-QAM 3/4 (36)
	MCS6              // 64-QAM 2/3 (48)
	MCS7              // 64-QAM 3/4 (54)
	NumMCS = 8
)

type mcsInfo struct {
	scheme modulation.Scheme
	rate   fec.Rate
	ndbps  int  // data bits per OFDM symbol
	ncbps  int  // coded bits per OFDM symbol
	signal byte // RATE bits in the SIGNAL field (802.11-1999 table 80)
}

var mcsTable = [NumMCS]mcsInfo{
	{modulation.BPSK, fec.Rate12, 24, 48, 0b1101},
	{modulation.BPSK, fec.Rate34, 36, 48, 0b1111},
	{modulation.QPSK, fec.Rate12, 48, 96, 0b0101},
	{modulation.QPSK, fec.Rate34, 72, 96, 0b0111},
	{modulation.QAM16, fec.Rate12, 96, 192, 0b1001},
	{modulation.QAM16, fec.Rate34, 144, 192, 0b1011},
	{modulation.QAM64, fec.Rate23, 192, 288, 0b0001},
	{modulation.QAM64, fec.Rate34, 216, 288, 0b0011},
}

// Valid reports whether m is a defined MCS index.
func (m MCS) Valid() bool { return m >= 0 && m < NumMCS }

func (m MCS) info() mcsInfo {
	if !m.Valid() {
		panic(fmt.Sprintf("phy: invalid MCS %d", int(m)))
	}
	return mcsTable[m]
}

// Modulation returns the constellation of this MCS.
func (m MCS) Modulation() modulation.Scheme { return m.info().scheme }

// CodeRate returns the convolutional code rate of this MCS.
func (m MCS) CodeRate() fec.Rate { return m.info().rate }

// DataBitsPerSymbol returns N_DBPS.
func (m MCS) DataBitsPerSymbol() int { return m.info().ndbps }

// CodedBitsPerSymbol returns N_CBPS.
func (m MCS) CodedBitsPerSymbol() int { return m.info().ncbps }

// BitRate returns the PHY data rate in bits/s at the given sample rate
// (e.g. 54e6/80·216 at 20 Msample/s).
func (m MCS) BitRate(sampleRate units.Hertz) float64 {
	return float64(m.info().ndbps) * units.Ratio(sampleRate, 1) / 80.0
}

// String names the MCS, e.g. "16-QAM 3/4".
func (m MCS) String() string {
	if !m.Valid() {
		return fmt.Sprintf("MCS(%d)", int(m))
	}
	i := m.info()
	return fmt.Sprintf("%v %v", i.scheme, i.rate)
}

// mcsFromSignalBits reverses the RATE field mapping.
func mcsFromSignalBits(bits byte) (MCS, error) {
	for i, info := range mcsTable {
		if info.signal == bits {
			return MCS(i), nil
		}
	}
	return 0, fmt.Errorf("phy: unknown RATE bits %04b", bits)
}
