package phy

import (
	"bytes"
	"testing"

	"megamimo/internal/rng"
)

// TestPayloadSizeExtremes covers the smallest and largest frames.
func TestPayloadSizeExtremes(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	for _, size := range []int{0, 1, 2, 37, MaxPSDU} {
		src := rng.New(int64(size) + 1)
		payload := src.Bytes(make([]byte, size))
		wave, err := tx.Frame(payload, MCS4)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		stream := make([]complex128, 200+len(wave)+50)
		copy(stream[200:], wave)
		n := rng.New(int64(size) + 2)
		for i := range stream {
			stream[i] += n.ComplexNormal(1e-5)
		}
		f, err := rx.Decode(stream)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !f.FCSOK || !bytes.Equal(f.Payload, payload) {
			t.Fatalf("size %d: round trip failed", size)
		}
	}
}

// TestAllMCSAllOddSizes matrix-tests frames whose bit counts hit every
// padding branch of every MCS.
func TestAllMCSAllOddSizes(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	src := rng.New(7)
	for m := MCS0; m < NumMCS; m++ {
		for _, size := range []int{1, 26, 27, 28, 29} {
			payload := src.Bytes(make([]byte, size))
			wave, err := tx.Frame(payload, m)
			if err != nil {
				t.Fatalf("%v size %d: %v", m, size, err)
			}
			stream := make([]complex128, 150+len(wave)+30)
			copy(stream[150:], wave)
			noise := rng.New(int64(int(m)*100 + size))
			for i := range stream {
				stream[i] += noise.ComplexNormal(1e-6)
			}
			f, err := rx.Decode(stream)
			if err != nil {
				t.Fatalf("%v size %d: %v", m, size, err)
			}
			if !f.FCSOK || !bytes.Equal(f.Payload, payload) {
				t.Fatalf("%v size %d: corrupted", m, size)
			}
		}
	}
}

// TestDecodeTruncatedStream must fail cleanly, not panic.
func TestDecodeTruncatedStream(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	payload := rng.New(1).Bytes(make([]byte, 500))
	wave, _ := tx.Frame(payload, MCS2)
	// Cut the stream in the middle of the data field.
	stream := make([]complex128, 100+len(wave)/2)
	copy(stream[100:], wave[:len(wave)/2])
	if f, err := rx.Decode(stream); err == nil && f.FCSOK {
		t.Fatal("truncated frame decoded with valid FCS")
	}
}

// TestDecodeBackToBackFrames: the receiver must decode the first frame
// from a stream containing two.
func TestDecodeBackToBackFrames(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	src := rng.New(3)
	p1 := src.Bytes(make([]byte, 300))
	p2 := src.Bytes(make([]byte, 300))
	w1, _ := tx.Frame(p1, MCS2)
	w2, _ := tx.Frame(p2, MCS2)
	stream := make([]complex128, 100+len(w1)+40+len(w2)+40)
	copy(stream[100:], w1)
	copy(stream[100+len(w1)+40:], w2)
	n := rng.New(4)
	for i := range stream {
		stream[i] += n.ComplexNormal(1e-6)
	}
	f, err := rx.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !f.FCSOK || !bytes.Equal(f.Payload, p1) {
		t.Fatal("first of two frames not decoded")
	}
}

// TestSignalFieldRejectsGarbageLength: a corrupted SIGNAL should error or
// fail FCS, never panic or return garbage as valid.
func TestSignalFieldRobustness(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	payload := rng.New(5).Bytes(make([]byte, 200))
	wave, _ := tx.Frame(payload, MCS2)
	// Heavily corrupt the SIGNAL symbol region (just after the preamble).
	n := rng.New(6)
	for i := 320; i < 400; i++ {
		wave[i] = n.ComplexNormal(1)
	}
	stream := make([]complex128, 100+len(wave)+40)
	copy(stream[100:], wave)
	if f, err := rx.Decode(stream); err == nil && f.FCSOK && !bytes.Equal(f.Payload, payload) {
		t.Fatal("corrupted SIGNAL produced a confidently wrong frame")
	}
}

// TestBitRateLadderAt10MHz pins the USRP testbed rates (half of 20 MHz).
func TestBitRateLadderAt10MHz(t *testing.T) {
	want := []float64{3e6, 4.5e6, 6e6, 9e6, 12e6, 18e6, 24e6, 27e6}
	for m := MCS0; m < NumMCS; m++ {
		if got := m.BitRate(10e6); got != want[m] {
			t.Fatalf("%v at 10 MHz = %v, want %v", m, got, want[m])
		}
	}
}
