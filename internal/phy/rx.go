package phy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/cmplx"

	"megamimo/internal/cmplxs"
	"megamimo/internal/fec"
	"megamimo/internal/interleave"
	"megamimo/internal/modulation"
	"megamimo/internal/ofdm"
	"megamimo/internal/scramble"
	"megamimo/internal/units"
)

// Frame decode errors.
var (
	ErrBadSignal = errors.New("phy: SIGNAL field failed parity or rate check")
	ErrTruncated = errors.New("phy: sample stream ends before frame does")
)

// RxFrame is the result of decoding one PPDU.
type RxFrame struct {
	Payload []byte // PSDU minus FCS (valid content only when FCSOK)
	MCS     MCS
	FCSOK   bool
	// SNRdB is the post-equalization error-vector SNR averaged over the
	// data field — the "effective channel" quality the client reports.
	SNRdB units.Decibels
	// EVM is the rms error-vector magnitude over the data field (linear,
	// relative to the unit constellation) — the flight recorder's decode
	// quality telemetry in its raw form (SNRdB is its log view).
	EVM float64
	// ResidualCFO is the carrier offset left after the preamble-based
	// correction, measured from the pilot-tracked common-phase drift
	// across data symbols.
	ResidualCFO units.RadPerSample
	// SubcarrierSNR holds the per-data-subcarrier linear SNR estimate
	// (48 entries) for effective-SNR rate selection feedback.
	SubcarrierSNR []float64
	// Channel is the 64-bin channel estimate from the LTF.
	Channel []complex128
	// Sync carries acquisition details (timing, CFO).
	Sync *ofdm.Sync
	// CommonPhases records the pilot-tracked common phase per data symbol,
	// used by the phase-alignment experiments.
	CommonPhases []units.Radians
}

// RX decodes PPDUs from sample streams. An RX owns reusable scratch
// buffers, so it is not safe for concurrent use; each simulated receiver
// keeps its own.
type RX struct {
	dem *ofdm.Demodulator
	// DetectThreshold is the normalized preamble metric cutoff (default 0.5).
	DetectThreshold float64
	// Grow-only decode scratch, reused across frames.
	freqBuf []complex128 // one demodulated symbol, 64 bins
	eqdBuf  []complex128 // one equalized symbol, 48 values
	payload []complex128 // CFO-derotated payload window
	freqAll []complex128 // batch-demodulated data-field bins, nsym×64
	symLLR  []float64    // per-symbol LLRs before deinterleaving
	deilBuf []float64    // per-symbol LLRs after deinterleaving
	llrBuf  []float64    // whole-frame LLR stream
	scNum   []float64    // per-subcarrier EVM accumulator
	scCnt   []float64
	dec     fec.Decoder // reusable Viterbi trellis scratch
}

// NewRX returns a receiver pipeline.
func NewRX() *RX {
	return &RX{
		dem:             ofdm.NewDemodulator(),
		DetectThreshold: 0.5,
		freqBuf:         make([]complex128, ofdm.NFFT),
		eqdBuf:          make([]complex128, ofdm.NData),
		scNum:           make([]float64, ofdm.NData),
		scCnt:           make([]float64, ofdm.NData),
	}
}

// Decode acquires and decodes the first frame in rx.
func (r *RX) Decode(rx []complex128) (*RxFrame, error) {
	sync, err := ofdm.Detect(rx, r.DetectThreshold)
	if err != nil {
		return nil, err
	}
	return r.DecodeAt(rx, sync)
}

// DecodeAt decodes a frame whose preamble has already been acquired.
func (r *RX) DecodeAt(rx []complex128, sync *ofdm.Sync) (*RxFrame, error) {
	h, err := ofdm.EstimateChannelLTF(rx, sync)
	if err != nil {
		return nil, err
	}
	eq, err := ofdm.NewEqualizer(h)
	if err != nil {
		return nil, err
	}
	noiseVar := estimateNoiseFromLTF(rx, sync)

	// Derotate the whole payload once with the estimated CFO, phase
	// referenced consistently with the channel estimate (at the first LTF
	// sample).
	ltf1 := sync.LTFStart + ofdm.LTFGuard
	if cap(r.payload) < len(rx)-sync.PayloadStart {
		r.payload = make([]complex128, len(rx)-sync.PayloadStart)
	}
	payload := r.payload[:len(rx)-sync.PayloadStart]
	cmplxs.Rotate(payload, rx[sync.PayloadStart:], units.PhaseAdvance(-sync.CFO, units.Samples(sync.PayloadStart-ltf1)), -sync.CFO)

	// SIGNAL symbol.
	if len(payload) < ofdm.SymbolLen {
		return nil, ErrTruncated
	}
	if err := r.dem.FreqInto(r.freqBuf, payload); err != nil {
		return nil, err
	}
	if err := eq.SymbolInto(r.eqdBuf, r.freqBuf); err != nil {
		return nil, err
	}
	mcs, psduLen, err := parseSignal(r.eqdBuf)
	if err != nil {
		return nil, err
	}
	out := &RxFrame{MCS: mcs, Channel: h, Sync: sync}
	out.CommonPhases = append(out.CommonPhases, eq.CommonPhase())

	info := mcs.info()
	nInfoBits := 16 + 8*psduLen
	nsym := (nInfoBits + 6 + info.ndbps - 1) / info.ndbps
	if len(payload) < (1+nsym)*ofdm.SymbolLen {
		return nil, ErrTruncated
	}

	il := interleave.MustCached(info.ncbps, info.scheme.BitsPerSymbol())
	if cap(r.llrBuf) < nsym*info.ncbps {
		r.llrBuf = make([]float64, 0, nsym*info.ncbps)
	}
	llr := r.llrBuf[:0]
	if cap(r.deilBuf) < info.ncbps {
		r.deilBuf = make([]float64, info.ncbps)
	}
	deil := r.deilBuf[:info.ncbps]
	var evmAcc float64
	var evmN int
	scSNRNum := r.scNum
	scSNRCnt := r.scCnt
	for i := range scSNRNum {
		scSNRNum[i], scSNRCnt[i] = 0, 0
	}
	// The whole data field demodulates in one batched FFT call; the
	// per-symbol loop below then works over slices of the bin block.
	if cap(r.freqAll) < nsym*ofdm.NFFT {
		r.freqAll = make([]complex128, nsym*ofdm.NFFT)
	}
	freqAll := r.freqAll[:nsym*ofdm.NFFT]
	if err := r.dem.FreqBatchInto(freqAll, payload[ofdm.SymbolLen:], nsym); err != nil {
		return nil, err
	}
	for s := 0; s < nsym; s++ {
		if err := eq.SymbolInto(r.eqdBuf, freqAll[s*ofdm.NFFT:(s+1)*ofdm.NFFT]); err != nil {
			return nil, err
		}
		out.CommonPhases = append(out.CommonPhases, eq.CommonPhase())
		// Per-subcarrier soft demap with channel-weighted noise.
		symLLR := r.symLLR[:0]
		for i, v := range r.eqdBuf {
			b := ofdm.Bin(ofdm.DataCarriers[i])
			g2 := real(h[b])*real(h[b]) + imag(h[b])*imag(h[b])
			nv := noiseVar
			if g2 > 1e-12 {
				nv = noiseVar / g2
			}
			symLLR = modulation.AppendSoftDemap(symLLR, info.scheme, v, nv)
			// EVM against the hard decision.
			e := v - modulation.SlicePoint(info.scheme, v)
			ep := real(e)*real(e) + imag(e)*imag(e)
			evmAcc += ep
			evmN++
			scSNRNum[i] += ep
			scSNRCnt[i]++
		}
		r.symLLR = symLLR
		if err := il.DeinterleaveLLRInto(deil, symLLR); err != nil {
			return nil, err
		}
		llr = append(llr, deil...)
	}
	r.llrBuf = llr

	padded := nsym*info.ndbps - 6
	bits, err := r.dec.DecodeSoft(llr, padded, info.rate)
	if err != nil {
		return nil, err
	}
	scramble.New(scramblerSeed).Apply(bits)
	psdu := make([]byte, psduLen)
	for i := 0; i < 8*psduLen; i++ {
		psdu[i/8] |= (bits[16+i] & 1) << (i % 8)
	}
	body := psdu[:psduLen-4]
	gotFCS := binary.LittleEndian.Uint32(psdu[psduLen-4:])
	out.FCSOK = gotFCS == crc32.ChecksumIEEE(body)
	out.Payload = body

	if evmN > 0 && evmAcc > 0 {
		out.SNRdB = units.LinearToDB(float64(evmN) / evmAcc)
		out.EVM = math.Sqrt(evmAcc / float64(evmN))
	} else {
		out.SNRdB = 60
		out.EVM = 1e-3
	}
	if len(out.CommonPhases) >= 2 {
		var drift units.Radians
		for i := 1; i < len(out.CommonPhases); i++ {
			drift += cmplxs.WrapPhase(out.CommonPhases[i] - out.CommonPhases[i-1])
		}
		out.ResidualCFO = units.RadiansOver(units.Div(drift, float64(len(out.CommonPhases)-1)), ofdm.SymbolLen)
	}
	out.SubcarrierSNR = make([]float64, ofdm.NData)
	for i := range out.SubcarrierSNR {
		if scSNRNum[i] > 0 && scSNRCnt[i] > 0 {
			out.SubcarrierSNR[i] = scSNRCnt[i] / scSNRNum[i]
		} else {
			out.SubcarrierSNR[i] = 1e6
		}
	}
	return out, nil
}

// parseSignal decodes the already-equalized SIGNAL symbol.
func parseSignal(eqd []complex128) (MCS, int, error) {
	hard, err := modulation.HardDemap(modulation.BPSK, eqd)
	if err != nil {
		return 0, 0, err
	}
	il := interleave.MustCached(48, 1)
	coded, err := il.Deinterleave(hard)
	if err != nil {
		return 0, 0, err
	}
	bits, err := fec.DecodeHard(coded, 18, fec.Rate12)
	if err != nil {
		return 0, 0, err
	}
	var par byte
	for _, b := range bits {
		par ^= b
	}
	if par != 0 {
		return 0, 0, ErrBadSignal
	}
	var rateBits byte
	for i := 0; i < 4; i++ {
		rateBits = rateBits<<1 | bits[i]
	}
	mcs, err := mcsFromSignalBits(rateBits)
	if err != nil {
		return 0, 0, ErrBadSignal
	}
	length := 0
	for i := 0; i < 12; i++ {
		length |= int(bits[5+i]) << i
	}
	if length < 4 || length > MaxPSDU+4 {
		return 0, 0, fmt.Errorf("%w: length %d", ErrBadSignal, length)
	}
	return mcs, length, nil
}

// estimateNoiseFromLTF measures noise variance from the difference of the
// two identical long-training symbols: Var(n) = E|L1-L2|²/2 per sample.
func estimateNoiseFromLTF(rx []complex128, sync *ofdm.Sync) float64 {
	l1 := sync.LTFStart + ofdm.LTFGuard
	if l1+2*ofdm.NFFT > len(rx) {
		return 1e-6
	}
	var acc float64
	for i := 0; i < ofdm.NFFT; i++ {
		// Derotate the CFO between the repetitions before differencing.
		//lint:ignore units complex exponential takes the bare scalar at this derotation
		d := rx[l1+i] - rx[l1+ofdm.NFFT+i]*cmplx.Exp(complex(0, float64(units.PhaseAdvance(-sync.CFO, ofdm.NFFT))))
		acc += real(d)*real(d) + imag(d)*imag(d)
	}
	nv := acc / (2 * ofdm.NFFT)
	if nv < 1e-12 {
		nv = 1e-12
	}
	return nv
}
