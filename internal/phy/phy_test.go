package phy

import (
	"bytes"
	"math"
	"megamimo/internal/units"
	"testing"

	"megamimo/internal/cmplxs"
	"megamimo/internal/dsp"
	"megamimo/internal/ofdm"
	"megamimo/internal/rng"
)

func TestMCSTable(t *testing.T) {
	// 20 MHz bit rates must be the classic 802.11a ladder.
	want := []float64{6e6, 9e6, 12e6, 18e6, 24e6, 36e6, 48e6, 54e6}
	for m := MCS0; m < NumMCS; m++ {
		if got := m.BitRate(20e6); math.Abs(got-want[m]) > 1 {
			t.Errorf("%v BitRate = %v, want %v", m, got, want[m])
		}
		// Consistency: ncbps = 48 × bits/subcarrier; ndbps = ncbps × rate.
		info := m.info()
		if info.ncbps != 48*info.scheme.BitsPerSymbol() {
			t.Errorf("%v ncbps inconsistent", m)
		}
		if got := float64(info.ncbps) * info.rate.Fraction(); math.Abs(got-float64(info.ndbps)) > 1e-9 {
			t.Errorf("%v ndbps inconsistent", m)
		}
	}
	if MCS(-1).Valid() || MCS(8).Valid() {
		t.Error("Valid accepts out-of-range MCS")
	}
}

func TestSignalBitsRoundTrip(t *testing.T) {
	for m := MCS0; m < NumMCS; m++ {
		got, err := mcsFromSignalBits(m.info().signal)
		if err != nil || got != m {
			t.Errorf("signal bits round trip for %v: %v, %v", m, got, err)
		}
	}
	if _, err := mcsFromSignalBits(0b0000); err == nil {
		t.Error("accepted invalid RATE bits")
	}
}

func TestFrameRejectsOversizedPayload(t *testing.T) {
	if _, err := NewTX().FrameSymbols(make([]byte, MaxPSDU+1), MCS0); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, err := NewTX().FrameSymbols([]byte{1}, MCS(9)); err == nil {
		t.Fatal("invalid MCS accepted")
	}
}

func TestLoopbackCleanChannelAllMCS(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	s := rng.New(1)
	payload := s.Bytes(make([]byte, 600))
	for m := MCS0; m < NumMCS; m++ {
		wave, err := tx.Frame(payload, m)
		if err != nil {
			t.Fatal(err)
		}
		stream := make([]complex128, 300+len(wave)+100)
		copy(stream[300:], wave)
		// A trickle of noise so detection normalization is well posed.
		n := rng.New(int64(m) + 2)
		for i := range stream {
			stream[i] += n.ComplexNormal(1e-6)
		}
		frame, err := rx.Decode(stream)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if frame.MCS != m {
			t.Fatalf("MCS decoded as %v, want %v", frame.MCS, m)
		}
		if !frame.FCSOK {
			t.Fatalf("%v: FCS failed on clean channel", m)
		}
		if !bytes.Equal(frame.Payload, payload) {
			t.Fatalf("%v: payload corrupted", m)
		}
	}
}

func TestLoopbackWithChannelCFOAndNoise(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	s := rng.New(3)
	payload := s.Bytes(make([]byte, 1500))
	wave, err := tx.Frame(payload, MCS4) // 16-QAM 1/2
	if err != nil {
		t.Fatal(err)
	}
	taps := []complex128{0.85, 0.25 - 0.15i, 0.05i}
	conv := dsp.Convolve(wave, taps)
	stream := make([]complex128, 200+len(conv)+50)
	copy(stream[200:], conv)
	cmplxs.Rotate(stream, stream, 0.7, 0.003) // ~6 kHz CFO at 10 MHz class rates
	for i := range stream {
		stream[i] += s.ComplexNormal(2e-3) // ≈27 dB pre-channel SNR
	}
	frame, err := rx.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.FCSOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatalf("frame corrupted through channel (FCSOK=%v)", frame.FCSOK)
	}
	if frame.SNRdB < 10 {
		t.Fatalf("implausible SNR estimate %v dB", frame.SNRdB)
	}
}

func TestLoopbackHighOrderMCSNeedsHighSNR(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	s := rng.New(4)
	payload := s.Bytes(make([]byte, 400))
	wave, err := tx.Frame(payload, MCS7)
	if err != nil {
		t.Fatal(err)
	}
	// At ~8 dB SNR, 64-QAM 3/4 must fail; at ~30 dB it must pass.
	run := func(noiseVar float64) bool {
		stream := make([]complex128, 100+len(wave)+50)
		copy(stream[100:], wave)
		n := rng.New(5)
		for i := range stream {
			stream[i] += n.ComplexNormal(noiseVar)
		}
		frame, err := rx.Decode(stream)
		return err == nil && frame.FCSOK && bytes.Equal(frame.Payload, payload)
	}
	// Signal power on occupied samples ≈ 52/64 ≈ 0.81.
	if !run(0.81 / cmplxs.FromDB(30)) {
		t.Fatal("MCS7 failed at 30 dB")
	}
	if run(0.81 / cmplxs.FromDB(8)) {
		t.Fatal("MCS7 succeeded at 8 dB — noise model suspicious")
	}
}

func TestFCSDetectsCorruption(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	s := rng.New(6)
	payload := s.Bytes(make([]byte, 300))
	wave, _ := tx.Frame(payload, MCS2)
	stream := make([]complex128, 100+len(wave)+20)
	copy(stream[100:], wave)
	n := rng.New(7)
	for i := range stream {
		stream[i] += n.ComplexNormal(1e-6)
	}
	// Burst-corrupt a mid-payload region beyond what the code corrects.
	for i := 1200; i < 1600 && 100+i < len(stream); i++ {
		stream[100+i] = 0
	}
	frame, err := rx.Decode(stream)
	if err != nil {
		t.Skip("corruption broke sync entirely; acceptable")
	}
	if frame.FCSOK && !bytes.Equal(frame.Payload, payload) {
		t.Fatal("FCS passed on corrupted payload")
	}
}

func TestSynthesizeWithGainScalesWaveform(t *testing.T) {
	tx := NewTX()
	s := rng.New(8)
	f, err := tx.FrameSymbols(s.Bytes(make([]byte, 100)), MCS2)
	if err != nil {
		t.Fatal(err)
	}
	unit := tx.Synthesize(f)
	gain := make([]complex128, ofdm.NFFT)
	for i := range gain {
		gain[i] = 0.5i
	}
	scaled := tx.SynthesizeWithGain(f, gain)
	if len(scaled) != len(unit) {
		t.Fatal("length changed with gain")
	}
	for i := range unit {
		if d := scaled[i] - unit[i]*0.5i; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
			t.Fatalf("flat gain not equivalent to scalar multiply at %d", i)
		}
	}
}

func TestSynthesizeWithFrequencySelectiveGainDecodes(t *testing.T) {
	// A per-bin gain acts like a pre-applied channel; the receiver must
	// absorb it into its channel estimate and still decode.
	tx, rx := NewTX(), NewRX()
	s := rng.New(9)
	payload := s.Bytes(make([]byte, 500))
	f, err := tx.FrameSymbols(payload, MCS3)
	if err != nil {
		t.Fatal(err)
	}
	gain := make([]complex128, ofdm.NFFT)
	for i := range gain {
		gain[i] = cmplxs.Expi(units.Radians(0.1*float64(i))) * complex(0.8+0.2*math.Sin(float64(i)), 0)
	}
	wave := tx.SynthesizeWithGain(f, gain)
	stream := make([]complex128, 150+len(wave)+50)
	copy(stream[150:], wave)
	n := rng.New(10)
	for i := range stream {
		stream[i] += n.ComplexNormal(1e-5)
	}
	frame, err := rx.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !frame.FCSOK || !bytes.Equal(frame.Payload, payload) {
		t.Fatal("frequency-selective gain broke decoding")
	}
}

func TestAirtimeAndSampleLen(t *testing.T) {
	tx := NewTX()
	f, err := tx.FrameSymbols(make([]byte, 100), MCS0)
	if err != nil {
		t.Fatal(err)
	}
	wave := tx.Synthesize(f)
	if len(wave) != f.SampleLen() {
		t.Fatalf("SampleLen %d != synthesized %d", f.SampleLen(), len(wave))
	}
	// (16+832+6)/24 = 36 symbols + SIGNAL.
	if f.NumSymbols() != 37 {
		t.Fatalf("NumSymbols = %d, want 37", f.NumSymbols())
	}
	wantAir := float64(f.SampleLen()) / 20e6
	if got := f.AirtimeSeconds(20e6); math.Abs(got-wantAir) > 1e-12 {
		t.Fatalf("airtime %v", got)
	}
}

func TestSubcarrierSNRPopulated(t *testing.T) {
	tx, rx := NewTX(), NewRX()
	s := rng.New(11)
	wave, _ := tx.Frame(s.Bytes(make([]byte, 800)), MCS2)
	stream := make([]complex128, 100+len(wave)+20)
	copy(stream[100:], wave)
	n := rng.New(12)
	for i := range stream {
		stream[i] += n.ComplexNormal(8e-3) // ≈20 dB
	}
	frame, err := rx.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.SubcarrierSNR) != ofdm.NData {
		t.Fatalf("%d subcarrier SNRs", len(frame.SubcarrierSNR))
	}
	for i, snr := range frame.SubcarrierSNR {
		db := 10 * math.Log10(snr)
		if db < 5 || db > 45 {
			t.Fatalf("subcarrier %d SNR %v dB implausible for a 20 dB link", i, db)
		}
	}
}

func BenchmarkTXFrame1500B(b *testing.B) {
	tx := NewTX()
	payload := rng.New(1).Bytes(make([]byte, 1500))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Frame(payload, MCS7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRXDecode1500B(b *testing.B) {
	tx, rx := NewTX(), NewRX()
	payload := rng.New(1).Bytes(make([]byte, 1500))
	wave, _ := tx.Frame(payload, MCS7)
	stream := make([]complex128, 200+len(wave)+50)
	copy(stream[200:], wave)
	n := rng.New(2)
	for i := range stream {
		stream[i] += n.ComplexNormal(1e-4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rx.Decode(stream); err != nil {
			b.Fatal(err)
		}
	}
}
