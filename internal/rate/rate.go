// Package rate implements effective-SNR rate selection (Halperin et al.
// [13], the algorithm MegaMIMO's link layer uses, §9): per-subcarrier SNRs
// are collapsed to one "effective SNR" through the modulation's BER curve,
// and the highest MCS whose delivery threshold the effective SNR clears is
// chosen. Because the BER average is taken in probability space rather
// than dB space, a faded subcarrier costs exactly what it costs the
// decoder, which is what makes the prediction accurate on
// frequency-selective channels.
package rate

import (
	"math"

	"megamimo/internal/modulation"
	"megamimo/internal/phy"
	"megamimo/internal/units"
)

// Q is the Gaussian tail function Q(x) = P(N(0,1) > x).
func Q(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// invQ inverts Q by bisection on [0, 40].
func invQ(p float64) float64 {
	if p >= 0.5 {
		return 0
	}
	if p <= 0 {
		return 40
	}
	lo, hi := 0.0, 40.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if Q(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// BER returns the uncoded bit error rate of the scheme at symbol SNR γ
// (linear), using the standard Gray-mapped approximations. An invalid
// scheme reports 0.5 — coin-flip bits — so rate selection degrades to
// "undecodable" instead of crashing on corrupt feedback.
func BER(s modulation.Scheme, snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	switch s {
	case modulation.BPSK:
		return Q(math.Sqrt(2 * snr))
	case modulation.QPSK:
		return Q(math.Sqrt(snr))
	case modulation.QAM16:
		return 0.75 * Q(math.Sqrt(snr/5))
	case modulation.QAM64:
		return (7.0 / 12.0) * Q(math.Sqrt(snr/21))
	}
	return 0.5
}

// invBER returns the symbol SNR at which the scheme reaches the given BER,
// or +Inf for an invalid scheme (no finite SNR delivers it).
func invBER(s modulation.Scheme, ber float64) float64 {
	switch s {
	case modulation.BPSK:
		x := invQ(ber)
		return x * x / 2
	case modulation.QPSK:
		x := invQ(ber)
		return x * x
	case modulation.QAM16:
		x := invQ(ber / 0.75)
		return 5 * x * x
	case modulation.QAM64:
		x := invQ(ber * 12 / 7)
		return 21 * x * x
	}
	return math.Inf(1)
}

// EffectiveSNRdB collapses per-subcarrier linear SNRs into the effective
// SNR (dB) for the given modulation: the flat-channel SNR that would give
// the same average BER.
func EffectiveSNRdB(subSNR []float64, s modulation.Scheme) float64 {
	if len(subSNR) == 0 {
		return math.Inf(-1)
	}
	var acc float64
	for _, g := range subSNR {
		acc += BER(s, g)
	}
	avg := acc / float64(len(subSNR))
	if avg <= 1e-15 {
		// Below any meaningful BER: report the dB-domain mean, which is
		// conservative and finite.
		var sum float64
		for _, g := range subSNR {
			sum += 10 * math.Log10(math.Max(g, 1e-12))
		}
		return sum / float64(len(subSNR))
	}
	return 10 * math.Log10(invBER(s, avg))
}

// Thresholds are the minimum effective SNR (dB) at which each MCS delivers
// with high probability, the table-lookup step of [13]. The values are the
// classic 802.11a waterfall ladder, validated against this repository's
// own PHY in rate_test.go (each MCS decodes reliably at threshold+1 dB and
// fails well below threshold−2 dB).
var Thresholds = [phy.NumMCS]float64{
	2.0,  // BPSK 1/2
	3.0,  // BPSK 3/4
	4.5,  // QPSK 1/2
	6.5,  // QPSK 3/4
	10.0, // 16-QAM 1/2
	12.5, // 16-QAM 3/4
	17.0, // 64-QAM 2/3
	18.5, // 64-QAM 3/4
}

// Select returns the highest MCS whose threshold the per-subcarrier SNRs
// clear, and ok=false if even the lowest does not.
func Select(subSNR []float64) (mcs phy.MCS, ok bool) {
	best, found := phy.MCS0, false
	for m := phy.MCS0; m < phy.NumMCS; m++ {
		eff := EffectiveSNRdB(subSNR, m.Modulation())
		if eff >= Thresholds[m] {
			best, found = m, true
		}
	}
	return best, found
}

// SelectFlat is Select for a frequency-flat channel at the given SNR (dB).
func SelectFlat(snrDB units.Decibels) (phy.MCS, bool) {
	return Select([]float64{units.DBToLinear(snrDB)})
}

// Throughput returns the expected MAC-layer throughput (bit/s) of
// transmitting payloadBytes frames at the selected MCS over a link with
// the given per-subcarrier SNRs, accounting for preamble and header
// airtime. It returns 0 when no MCS is deliverable.
func Throughput(subSNR []float64, payloadBytes int, sampleRate units.Hertz) float64 {
	mcs, ok := Select(subSNR)
	if !ok {
		return 0
	}
	return ThroughputAtMCS(mcs, payloadBytes, sampleRate)
}

// ThroughputAtMCS returns goodput at a fixed MCS: payload bits divided by
// the full frame airtime (preamble + SIGNAL + data symbols).
func ThroughputAtMCS(mcs phy.MCS, payloadBytes int, sampleRate units.Hertz) float64 {
	psduBits := 8 * (payloadBytes + 4) // + FCS
	ndbps := mcs.DataBitsPerSymbol()
	nsym := (16 + psduBits + 6 + ndbps - 1) / ndbps
	samples := 320 + 80*(1+nsym) // preamble + SIGNAL + data
	airtime := float64(samples) / units.Ratio(sampleRate, 1)
	return float64(8*payloadBytes) / airtime
}
