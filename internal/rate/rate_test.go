package rate

import (
	"math"
	"megamimo/internal/units"
	"testing"

	"megamimo/internal/cmplxs"
	"megamimo/internal/modulation"
	"megamimo/internal/phy"
	"megamimo/internal/rng"
)

func TestQFunction(t *testing.T) {
	if got := Q(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Q(0) = %v", got)
	}
	// Q(1.2816) ≈ 0.1.
	if got := Q(1.2816); math.Abs(got-0.1) > 1e-3 {
		t.Fatalf("Q(1.2816) = %v", got)
	}
	if Q(10) > 1e-20 {
		t.Fatal("Q(10) too large")
	}
}

func TestInvQRoundTrip(t *testing.T) {
	for _, p := range []float64{0.4, 0.1, 1e-3, 1e-6, 1e-9} {
		x := invQ(p)
		if math.Abs(Q(x)-p)/p > 1e-6 {
			t.Fatalf("Q(invQ(%v)) = %v", p, Q(x))
		}
	}
	if invQ(0.6) != 0 {
		t.Fatal("invQ above 0.5 should clamp to 0")
	}
}

func TestBERMonotonicity(t *testing.T) {
	schemes := []modulation.Scheme{modulation.BPSK, modulation.QPSK, modulation.QAM16, modulation.QAM64}
	for _, s := range schemes {
		prev := 1.0
		for db := -5.0; db <= 35; db += 1 {
			b := BER(s, cmplxs.FromDB(units.Decibels(db)))
			if b > prev+1e-15 {
				t.Fatalf("%v BER not monotone at %v dB", s, db)
			}
			prev = b
		}
	}
	// Higher-order modulations are worse at the same SNR.
	g := cmplxs.FromDB(12)
	if !(BER(modulation.BPSK, g) < BER(modulation.QPSK, g) &&
		BER(modulation.QPSK, g) < BER(modulation.QAM16, g) &&
		BER(modulation.QAM16, g) < BER(modulation.QAM64, g)) {
		t.Fatal("BER ordering across schemes violated")
	}
}

func TestInvBERRoundTrip(t *testing.T) {
	schemes := []modulation.Scheme{modulation.BPSK, modulation.QPSK, modulation.QAM16, modulation.QAM64}
	for _, s := range schemes {
		for _, db := range []float64{3, 10, 20, 28} {
			g := cmplxs.FromDB(units.Decibels(db))
			b := BER(s, g)
			if b <= 0 || b >= 0.5 {
				continue
			}
			back := invBER(s, b)
			if math.Abs(10*math.Log10(back)-db) > 0.01 {
				t.Fatalf("%v: invBER(BER(%v dB)) = %v dB", s, db, 10*math.Log10(back))
			}
		}
	}
}

func TestEffectiveSNRFlatChannelIsIdentity(t *testing.T) {
	for _, db := range []float64{5, 12, 20} {
		sub := make([]float64, 48)
		for i := range sub {
			sub[i] = cmplxs.FromDB(units.Decibels(db))
		}
		got := EffectiveSNRdB(sub, modulation.QPSK)
		if math.Abs(got-db) > 0.05 {
			t.Fatalf("flat %v dB → effective %v dB", db, got)
		}
	}
}

func TestEffectiveSNRPenalizesFades(t *testing.T) {
	// 47 subcarriers at 20 dB, one in a deep fade: effective SNR must drop
	// far below the dB-average.
	sub := make([]float64, 48)
	for i := range sub {
		sub[i] = cmplxs.FromDB(20)
	}
	sub[7] = cmplxs.FromDB(-5)
	eff := EffectiveSNRdB(sub, modulation.QAM16)
	if eff > 16 {
		t.Fatalf("effective SNR %v dB ignores the fade", eff)
	}
	dbAvg := (47*20.0 - 5.0) / 48
	if eff >= dbAvg {
		t.Fatalf("effective %v ≥ dB-average %v", eff, dbAvg)
	}
}

func TestSelectLadder(t *testing.T) {
	// Sweep SNR: the selected MCS must be non-decreasing and hit both ends.
	last := phy.MCS0
	sawNone := false
	for db := -2.0; db <= 30; db += 0.5 {
		mcs, ok := SelectFlat(units.Decibels(db))
		if !ok {
			sawNone = true
			continue
		}
		if mcs < last {
			t.Fatalf("MCS ladder not monotone at %v dB: %v after %v", db, mcs, last)
		}
		last = mcs
	}
	if !sawNone {
		t.Fatal("very low SNR should select nothing")
	}
	if last != phy.MCS7 {
		t.Fatalf("30 dB tops out at %v", last)
	}
}

// TestThresholdsAgainstRealPHY cross-validates the lookup table against
// this repository's own PHY: at threshold+1.5 dB each MCS must decode
// nearly always; at threshold−3 dB it must fail most of the time.
func TestThresholdsAgainstRealPHY(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY sweep")
	}
	tx, rx := phy.NewTX(), phy.NewRX()
	src := rng.New(42)
	run := func(m phy.MCS, snrDB float64, trials int) float64 {
		payload := src.Bytes(make([]byte, 200))
		wave, err := tx.Frame(payload, m)
		if err != nil {
			t.Fatal(err)
		}
		// Occupied-carrier sample power of the synthesized waveform.
		var p float64
		for _, v := range wave[320:] {
			p += real(v)*real(v) + imag(v)*imag(v)
		}
		p /= float64(len(wave) - 320)
		nv := p / cmplxs.FromDB(units.Decibels(snrDB))
		okCount := 0
		for tr := 0; tr < trials; tr++ {
			stream := make([]complex128, 100+len(wave)+20)
			copy(stream[100:], wave)
			n := src.Split(uint64(int(m)*1000 + tr))
			for i := range stream {
				stream[i] += n.ComplexNormal(nv)
			}
			f, err := rx.Decode(stream)
			if err == nil && f.FCSOK {
				okCount++
			}
		}
		return float64(okCount) / float64(trials)
	}
	for m := phy.MCS0; m < phy.NumMCS; m++ {
		above := run(m, Thresholds[m]+1.5, 10)
		below := run(m, Thresholds[m]-3, 10)
		if above < 0.8 {
			t.Errorf("%v: delivery %.0f%% at threshold+1.5 dB", m, 100*above)
		}
		if below > 0.4 {
			t.Errorf("%v: delivery %.0f%% at threshold−3 dB", m, 100*below)
		}
	}
}

func TestThroughputAccounting(t *testing.T) {
	// 1500 B at MCS7, 20 MHz: 56 data symbols + SIGNAL + preamble
	// = (320+80·57)/20e6 s for 12000 payload bits.
	got := ThroughputAtMCS(phy.MCS7, 1500, 20e6)
	nsym := (16 + 8*1504 + 6 + 215) / 216
	want := 12000.0 / (float64(320+80*(1+nsym)) / 20e6)
	if math.Abs(got-want) > 1 {
		t.Fatalf("throughput %v, want %v", got, want)
	}
	// Must be below the raw PHY rate.
	if got >= phy.MCS7.BitRate(20e6) {
		t.Fatal("goodput exceeds PHY rate")
	}
}

func TestThroughputZeroWhenUndeliverable(t *testing.T) {
	sub := []float64{cmplxs.FromDB(-10)}
	if got := Throughput(sub, 1500, 10e6); got != 0 {
		t.Fatalf("throughput %v at −10 dB", got)
	}
}

func TestSelectMatchesPaper80211Anchors(t *testing.T) {
	// §11.2: 802.11 at high SNR (>18 dB) ≈ 23.6 Mb/s on the 10 MHz
	// testbed, medium ≈ 14.9, low ≈ 7.75. Check the selector lands on the
	// MCS tiers that produce those numbers (±30%).
	anchors := []struct {
		snrDB float64
		mbps  float64
	}{{22, 23.6}, {15.5, 14.9}, {9.5, 7.75}}
	for _, a := range anchors {
		mcs, ok := SelectFlat(units.Decibels(a.snrDB))
		if !ok {
			t.Fatalf("nothing selected at %v dB", a.snrDB)
		}
		got := ThroughputAtMCS(mcs, 1500, 10e6) / 1e6
		if got < 0.7*a.mbps || got > 1.3*a.mbps {
			t.Errorf("at %v dB: %v → %.1f Mb/s, paper anchor %.1f", a.snrDB, mcs, got, a.mbps)
		}
	}
}
