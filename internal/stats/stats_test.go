package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2.1380899) > 1e-6 {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("degenerate cases wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Median([]float64{7}); got != 7 {
		t.Fatalf("Median single = %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	got := Percentiles(xs, 0, 50, 100, 25)
	want := []float64{1, 3, 5, 2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Must agree with the one-shot Percentile on every requested point.
	for _, p := range []float64{0, 10, 33, 50, 90, 100} {
		if one, many := Percentile(xs, p), Percentiles(xs, p)[0]; math.Abs(one-many) > 1e-12 {
			t.Errorf("P%v: Percentile=%v Percentiles=%v", p, one, many)
		}
	}
	for _, v := range Percentiles(nil, 50, 95) {
		if !math.IsNaN(v) {
			t.Fatalf("empty input percentile = %v, want NaN", v)
		}
	}
	// Input must stay unmodified.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatal("Percentiles sorted its input in place")
	}
}

func TestJainFairness(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{10, 10, 10, 10}, 1},                // perfect fairness
		{[]float64{1, 0, 0, 0}, 0.25},                 // one client hogs: 1/n
		{[]float64{4, 2}, (6 * 6) / (2.0 * (16 + 4))}, // hand-computed
		{nil, 0},
		{[]float64{0, 0}, 0},
	}
	for _, c := range cases {
		if got := JainFairness(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainFairness(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
	// Index is scale invariant.
	a := JainFairness([]float64{1, 2, 3})
	b := JainFairness([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("not scale invariant: %v vs %v", a, b)
	}
}

func TestPercentileUnsortedInputUnmodified(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, 50); got != 2 {
		t.Fatalf("P50 = %v", got)
	}
	if xs[0] != 3 {
		t.Fatal("Percentile mutated input")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(2); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("At(2) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	if !strings.Contains(c.String(), "n=4") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0][1] != 0 || pts[4][1] != 1 {
		t.Fatalf("fraction endpoints: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Fatal("points not monotone")
		}
	}
}

func TestConfidenceInterval(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	mean, half := ConfidenceInterval95(xs)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean = %v", mean)
	}
	want := 1.96 / math.Sqrt(4000)
	if math.Abs(half-want) > 0.3*want {
		t.Fatalf("half-width = %v, want ≈%v", half, want)
	}
}

func TestHistogramRenders(t *testing.T) {
	h := Histogram([]float64{1, 1, 2, 3, 3, 3}, 3)
	if !strings.Contains(h, "#") {
		t.Fatalf("histogram missing bars:\n%s", h)
	}
	if Histogram(nil, 3) != "(no data)" {
		t.Fatal("empty histogram")
	}
}

// Property: quantiles are monotone and bounded by the sample range.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF.At is a valid CDF (monotone, 0→1).
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		prev := -1.0
		for q := -1e6; q <= 1e6; q += 2e5 {
			v := c.At(q)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
