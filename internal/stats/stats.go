// Package stats provides the small descriptive-statistics kit the
// experiment harness uses: percentiles, CDFs, means and confidence
// intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var acc float64
	for _, x := range xs {
		acc += x
	}
	return acc / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 normalization).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var acc float64
	for _, x := range xs {
		acc += (x - m) * (x - m)
	}
	return math.Sqrt(acc / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. It returns NaN on empty input:
// there is no order statistic to report, and NaN propagates visibly
// instead of crashing an experiment run.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentiles returns the requested percentiles of xs with a single sort —
// the per-client reporting path asks for several quantiles of the same
// latency series, and re-sorting per call is quadratic across clients.
// Empty input yields NaN for every requested percentile.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = percentileSorted(s, p)
	}
	return out
}

// percentileSorted is Percentile over an already sorted slice.
func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// JainFairness returns Jain's fairness index (Σx)² / (n·Σx²) over
// non-negative allocations: 1 when every client gets the same share,
// 1/n when one client gets everything. Empty or all-zero input returns 0
// (no allocation to be fair about).
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0–1), or NaN for an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return Percentile(c.sorted, q*100)
}

// Points returns n evenly spaced (value, fraction) pairs suitable for
// plotting or printing the CDF.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		if n == 1 {
			q = 0.5
		}
		out = append(out, [2]float64{Percentile(c.sorted, q*100), q})
	}
	return out
}

// String renders a compact summary.
func (c *CDF) String() string {
	if len(c.sorted) == 0 {
		return "CDF{empty}"
	}
	return fmt.Sprintf("CDF{n=%d p10=%.3g p50=%.3g p90=%.3g}",
		c.N(), c.Quantile(0.1), c.Quantile(0.5), c.Quantile(0.9))
}

// ConfidenceInterval95 returns the mean and its ±1.96·σ/√n half-width.
func ConfidenceInterval95(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, half
}

// Histogram bins xs into n equal-width buckets over [min, max] and renders
// an ASCII sketch, for quick terminal inspection of experiment output.
func Histogram(xs []float64, n int) string {
	if len(xs) == 0 || n <= 0 {
		return "(no data)"
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	//lint:ignore float-eq exact compare detects the all-identical-samples degenerate bin range
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, n)
	for _, x := range xs {
		i := int(float64(n) * (x - lo) / (hi - lo))
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		left := lo + float64(i)*(hi-lo)/float64(n)
		bar := strings.Repeat("#", int(math.Round(40*float64(c)/float64(maxC))))
		fmt.Fprintf(&b, "%10.4g | %-40s %d\n", left, bar, c)
	}
	return b.String()
}
