// Package traffic closes the loop the paper is named after: it drives the
// simulated network with per-client *user demands* instead of a pre-filled
// queue, so offered load — not a packet count — is the independent
// variable. A deterministic event-driven engine generates arrivals from
// per-client demand profiles on the shared ether sample clock, feeds the
// MAC's shared downlink queue, consumes acknowledgments closed-loop, and
// accounts per-client throughput, latency, jitter and drops. Sweeping the
// offered load produces the saturation curve (delivered throughput vs
// demand) for MegaMIMO against the 802.11 equal-share baseline.
package traffic

import (
	"fmt"
	"math"

	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Kind selects the arrival process of a demand profile.
type Kind int

const (
	// CBR emits packets at a constant bit rate with deterministic
	// spacing (a uniformly random phase de-synchronizes clients).
	CBR Kind = iota
	// Poisson emits packets with exponentially distributed
	// interarrivals at the profile's mean rate.
	Poisson
	// OnOff alternates exponentially distributed bursts and idle
	// periods; during a burst packets arrive at the peak rate chosen so
	// the long-run average matches RateBps.
	OnOff
	// HeavyTailed emits whole files with bounded-Pareto sizes at
	// Poisson arrival instants; each file is segmented into MTU-sized
	// packets that enter the queue together.
	HeavyTailed
)

// String names the arrival process.
func (k Kind) String() string {
	switch k {
	case CBR:
		return "cbr"
	case Poisson:
		return "poisson"
	case OnOff:
		return "onoff"
	case HeavyTailed:
		return "heavy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind maps a -workload flag value to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "cbr":
		return CBR, nil
	case "poisson":
		return Poisson, nil
	case "onoff":
		return OnOff, nil
	case "heavy":
		return HeavyTailed, nil
	}
	return 0, fmt.Errorf("traffic: unknown workload kind %q (want cbr|poisson|onoff|heavy)", s)
}

// Profile is one client's demand: how fast it wants data and in what
// pattern. The zero value offers no load.
type Profile struct {
	// Kind selects the arrival process.
	Kind Kind
	// RateBps is the long-run offered load in bits per second.
	RateBps float64
	// PacketBytes is the MSDU size (the paper's 1500-byte packets).
	PacketBytes int
	// BurstSeconds / IdleSeconds are the mean burst and idle durations
	// for OnOff profiles.
	BurstSeconds, IdleSeconds float64
	// ParetoAlpha and Min/MaxFileBytes shape HeavyTailed file sizes
	// (bounded Pareto).
	ParetoAlpha                float64
	MinFileBytes, MaxFileBytes int
}

// NewCBR builds a constant-bit-rate profile.
func NewCBR(rateBps float64, packetBytes int) Profile {
	return Profile{Kind: CBR, RateBps: rateBps, PacketBytes: packetBytes}
}

// NewPoisson builds a Poisson-arrival profile.
func NewPoisson(rateBps float64, packetBytes int) Profile {
	return Profile{Kind: Poisson, RateBps: rateBps, PacketBytes: packetBytes}
}

// NewOnOff builds a bursty on-off profile with the given mean burst and
// idle durations; the long-run average rate is rateBps.
func NewOnOff(rateBps float64, packetBytes int, burstSeconds, idleSeconds float64) Profile {
	return Profile{
		Kind: OnOff, RateBps: rateBps, PacketBytes: packetBytes,
		BurstSeconds: burstSeconds, IdleSeconds: idleSeconds,
	}
}

// NewHeavyTailed builds a file-transfer profile: Poisson file arrivals
// with bounded-Pareto sizes in [minFile, maxFile] bytes, segmented into
// packetBytes MTUs.
func NewHeavyTailed(rateBps float64, packetBytes int, alpha float64, minFile, maxFile int) Profile {
	return Profile{
		Kind: HeavyTailed, RateBps: rateBps, PacketBytes: packetBytes,
		ParetoAlpha: alpha, MinFileBytes: minFile, MaxFileBytes: maxFile,
	}
}

// Default shapes the sweep uses.
const (
	// DefaultPacketBytes matches §10's 1500-byte packets.
	DefaultPacketBytes = 1500
	// DefaultParetoAlpha is the classic heavy-tail web-flow exponent.
	DefaultParetoAlpha = 1.2
)

// ProfileFor builds a profile of the given kind at rateBps with
// sweep-default shape parameters.
func ProfileFor(kind Kind, rateBps float64, packetBytes int) Profile {
	switch kind {
	case CBR:
		return NewCBR(rateBps, packetBytes)
	case OnOff:
		return NewOnOff(rateBps, packetBytes, 5e-3, 5e-3)
	case HeavyTailed:
		return NewHeavyTailed(rateBps, packetBytes, DefaultParetoAlpha,
			packetBytes, 16*packetBytes)
	default:
		return NewPoisson(rateBps, packetBytes)
	}
}

// never is an arrival time beyond any horizon (zero-rate profiles park
// here so the engine skips them).
const never = int64(math.MaxInt64)

// gen produces one client's arrival process on the ether sample clock.
// peek returns the next arrival instant; pop consumes it, returning how
// many packets arrive at that instant, and schedules the subsequent one.
type gen struct {
	p          Profile
	src        *rng.Source
	sampleRate units.Hertz
	nextAt     int64
	onUntil    int64 // OnOff: end of the current burst
}

// newGen builds the generator starting at the given ether time. Each
// client's process gets a random initial phase so profiles with identical
// rates don't arrive in lockstep.
func newGen(p Profile, src *rng.Source, sampleRate units.Hertz, start int64) *gen {
	g := &gen{p: p, src: src, sampleRate: sampleRate}
	if p.RateBps <= 0 || p.PacketBytes <= 0 {
		g.nextAt = never
		return g
	}
	switch p.Kind {
	case CBR:
		g.nextAt = start + g.samples(src.Float64()*g.cbrGapSeconds())
	case OnOff:
		g.onUntil = start + g.samples(src.Exp(p.BurstSeconds))
		g.nextAt = start + g.samples(src.Float64()*g.onOffGapSeconds())
	case HeavyTailed:
		g.nextAt = start + g.samples(src.Exp(g.fileGapSeconds()))
	default: // Poisson
		g.nextAt = start + g.samples(src.Exp(g.packetGapSeconds()))
	}
	return g
}

func (g *gen) samples(seconds float64) int64 {
	s := int64(units.TicksIn(seconds, g.sampleRate))
	if s < 1 {
		s = 1
	}
	return s
}

func (g *gen) packetBits() float64 { return float64(8 * g.p.PacketBytes) }

// cbrGapSeconds is the deterministic CBR spacing.
func (g *gen) cbrGapSeconds() float64 { return g.packetBits() / g.p.RateBps }

// packetGapSeconds is the mean Poisson interarrival.
func (g *gen) packetGapSeconds() float64 { return g.packetBits() / g.p.RateBps }

// onOffGapSeconds is the in-burst spacing at the peak rate that keeps the
// long-run average at RateBps.
func (g *gen) onOffGapSeconds() float64 {
	duty := g.p.BurstSeconds / (g.p.BurstSeconds + g.p.IdleSeconds)
	peak := g.p.RateBps / duty
	return g.packetBits() / peak
}

// fileGapSeconds is the mean file interarrival that offers RateBps given
// the mean bounded-Pareto file size.
func (g *gen) fileGapSeconds() float64 {
	meanBytes := rng.BoundedParetoMean(g.p.ParetoAlpha,
		float64(g.p.MinFileBytes), float64(g.p.MaxFileBytes))
	return 8 * meanBytes / g.p.RateBps
}

// peek returns the ether time of the next arrival (never for idle
// profiles).
func (g *gen) peek() int64 { return g.nextAt }

// pop consumes the pending arrival, returning the number of packets it
// carries, and schedules the next one.
func (g *gen) pop() int {
	if g.nextAt == never {
		return 0
	}
	n := 1
	at := g.nextAt
	switch g.p.Kind {
	case CBR:
		g.nextAt = at + g.samples(g.cbrGapSeconds())
	case OnOff:
		next := at + g.samples(g.onOffGapSeconds())
		if next > g.onUntil {
			// Burst over: idle, then start the next burst.
			next = g.onUntil + g.samples(g.src.Exp(g.p.IdleSeconds))
			g.onUntil = next + g.samples(g.src.Exp(g.p.BurstSeconds))
		}
		g.nextAt = next
	case HeavyTailed:
		fileBytes := g.src.Pareto(g.p.ParetoAlpha,
			float64(g.p.MinFileBytes), float64(g.p.MaxFileBytes))
		n = int(math.Ceil(fileBytes / float64(g.p.PacketBytes)))
		if n < 1 {
			n = 1
		}
		g.nextAt = at + g.samples(g.src.Exp(g.fileGapSeconds()))
	default: // Poisson
		g.nextAt = at + g.samples(g.src.Exp(g.packetGapSeconds()))
	}
	return n
}
