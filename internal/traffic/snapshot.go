package traffic

import (
	"fmt"

	"megamimo/internal/fault"
	"megamimo/internal/mac"
	"megamimo/internal/metrics"
	"megamimo/internal/phy"
	"megamimo/internal/rng"
)

// GenState is one arrival process's serializable state: its rng stream
// plus the schedule cursors. The profile itself is config, rebuilt by the
// restore path.
type GenState struct {
	Src     rng.State `json:"src"`
	NextAt  int64     `json:"next_at"`
	OnUntil int64     `json:"on_until,omitempty"`
}

// LinkState is one TDMA stream's cached unicast rate decision, mutable at
// runtime because an AP crash forces re-association.
type LinkState struct {
	MCS int  `json:"mcs"`
	AP  int  `json:"ap"`
	OK  bool `json:"ok,omitempty"`
}

// EngineState is the engine's complete mutable state: everything that
// evolves once Run starts. Payload templates, the probe result path, and
// the profiles are NOT here — they are deterministic from Config and come
// back identical when the restore path rebuilds the engine with New +
// Prepare before calling RestoreSnapshot.
type EngineState struct {
	RunStart   int64   `json:"run_start"`
	Horizon    int64   `json:"horizon"`
	RunSeconds float64 `json:"run_seconds"`
	Rounds     int     `json:"rounds"`
	RR         int     `json:"rr,omitempty"`

	Gens      []GenState  `json:"gens"`
	Offered   []int       `json:"offered"`
	Delivered []int       `json:"delivered"`
	Failed    []int       `json:"failed"`
	Dropped   []int       `json:"dropped"`
	Latencies [][]float64 `json:"latencies"`
	Inactive  []bool      `json:"inactive"`

	Queue mac.QueueState `json:"queue"`
	// Cont is the backoff rng — the scheduler's under MegaMIMO, the
	// engine's own under TDMA.
	Cont rng.State `json:"cont"`
	// Rate is the MegaMIMO scheduler's adapted-rate cache; Links is the
	// TDMA per-stream cache. Exactly one is populated per system.
	Rate  *mac.RateState `json:"rate,omitempty"`
	Links []LinkState    `json:"links,omitempty"`

	Injector *fault.InjectorState  `json:"injector,omitempty"`
	Sampler  *metrics.SamplerState `json:"sampler,omitempty"`
}

// Snapshot captures the engine's mutable state. Call it only between
// rounds (the OnRound hook is the supported site).
func (e *Engine) Snapshot() *EngineState {
	streams := len(e.gens)
	st := &EngineState{
		RunStart:   e.runStart,
		Horizon:    e.horizon,
		RunSeconds: e.runSeconds,
		Rounds:     e.rounds,
		RR:         e.rr,
		Gens:       make([]GenState, streams),
		Offered:    append([]int(nil), e.offered...),
		Delivered:  append([]int(nil), e.delivered...),
		Failed:     append([]int(nil), e.failed...),
		Dropped:    append([]int(nil), e.dropped...),
		Latencies:  make([][]float64, streams),
		Inactive:   append([]bool(nil), e.inactive...),
		Queue:      e.queue.Snapshot(),
	}
	for i, g := range e.gens {
		st.Gens[i] = GenState{Src: g.src.State(), NextAt: g.nextAt, OnUntil: g.onUntil}
		st.Latencies[i] = append([]float64(nil), e.latencies[i]...)
	}
	if e.cfg.System == SystemTDMA {
		st.Cont = e.cont.SrcState()
		st.Links = make([]LinkState, streams)
		for i, l := range e.links {
			st.Links[i] = LinkState{MCS: int(l.mcs), AP: l.ap, OK: l.ok}
		}
	} else {
		st.Cont = e.sched.Cont.SrcState()
		rs := e.sched.RateSnapshot()
		st.Rate = &rs
	}
	if e.inj != nil {
		inj := e.inj.Snapshot()
		st.Injector = &inj
	}
	if e.cfg.Sampler != nil {
		ss := e.cfg.Sampler.Snapshot()
		st.Sampler = &ss
	}
	return st
}

// RestoreSnapshot overwrites a freshly built (New + Prepare) engine with
// st. The engine must share the checkpointed run's Config — the
// checkpoint layer enforces that with its config digest.
func (e *Engine) RestoreSnapshot(st *EngineState) error {
	streams := len(e.gens)
	if len(st.Gens) != streams || len(st.Offered) != streams ||
		len(st.Delivered) != streams || len(st.Failed) != streams ||
		len(st.Dropped) != streams || len(st.Latencies) != streams ||
		len(st.Inactive) != streams {
		return fmt.Errorf("traffic: restore: snapshot has %d streams, engine has %d", len(st.Gens), streams)
	}
	if (st.Injector != nil) != (e.inj != nil) {
		return fmt.Errorf("traffic: restore: snapshot and engine disagree on a fault plan")
	}
	for i, gs := range st.Gens {
		if err := e.gens[i].src.Restore(gs.Src); err != nil {
			return fmt.Errorf("traffic: restore stream %d rng: %w", i, err)
		}
		e.gens[i].nextAt, e.gens[i].onUntil = gs.NextAt, gs.OnUntil
	}
	copy(e.offered, st.Offered)
	copy(e.delivered, st.Delivered)
	copy(e.failed, st.Failed)
	copy(e.dropped, st.Dropped)
	copy(e.inactive, st.Inactive)
	for i := range e.latencies {
		e.latencies[i] = append([]float64(nil), st.Latencies[i]...)
	}
	e.runStart, e.horizon, e.runSeconds = st.RunStart, st.Horizon, st.RunSeconds
	e.rounds, e.rr = st.Rounds, st.RR
	if err := e.queue.RestoreSnapshot(st.Queue, func(stream int) []byte {
		if stream < 0 || stream >= streams {
			return nil
		}
		return e.payloads[stream]
	}); err != nil {
		return err
	}
	if e.cfg.System == SystemTDMA {
		if len(st.Links) != streams {
			return fmt.Errorf("traffic: restore: snapshot has %d links, engine has %d streams", len(st.Links), streams)
		}
		if err := e.cont.RestoreSrc(st.Cont); err != nil {
			return fmt.Errorf("traffic: restore backoff rng: %w", err)
		}
		for i, ls := range st.Links {
			e.links[i] = tdmaLink{mcs: phy.MCS(ls.MCS), ap: ls.AP, ok: ls.OK}
		}
	} else {
		if st.Rate == nil {
			return fmt.Errorf("traffic: restore: snapshot is missing the adapted-rate cache")
		}
		if err := e.sched.Cont.RestoreSrc(st.Cont); err != nil {
			return fmt.Errorf("traffic: restore backoff rng: %w", err)
		}
		e.sched.RestoreRate(*st.Rate)
	}
	if st.Injector != nil {
		if err := e.inj.RestoreSnapshot(*st.Injector); err != nil {
			return err
		}
	}
	if st.Sampler != nil && e.cfg.Sampler != nil {
		e.cfg.Sampler.RestoreSnapshot(*st.Sampler)
	}
	return nil
}
