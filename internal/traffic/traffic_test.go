package traffic

import (
	"math"
	"testing"

	"megamimo/internal/core"
	"megamimo/internal/metrics"
	"megamimo/internal/rng"
)

// testNetwork builds a small measured high-SNR network.
func testNetwork(t *testing.T, seed int64) *core.Network {
	t.Helper()
	cfg := core.DefaultConfig(2, 2, 18, 24)
	cfg.Seed = seed
	n, err := core.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := n.MeasureAndPrecode(); err != nil {
		t.Fatalf("MeasureAndPrecode: %v", err)
	}
	return n
}

// drainGen counts packets a generator emits inside a window.
func drainGen(g *gen, horizon int64) int {
	n := 0
	for g.peek() < horizon {
		n += g.pop()
	}
	return n
}

func TestGenOfferedRates(t *testing.T) {
	const (
		sampleRate = 10e6
		seconds    = 2.0
		rateBps    = 6e6
		pktBytes   = 1500
	)
	horizon := int64(seconds * sampleRate)
	want := rateBps * seconds / float64(8*pktBytes)
	for _, kind := range []Kind{CBR, Poisson, OnOff, HeavyTailed} {
		p := ProfileFor(kind, rateBps, pktBytes)
		var got float64
		const reps = 8
		for r := 0; r < reps; r++ {
			g := newGen(p, rng.New(int64(100+r)), sampleRate, 0)
			got += float64(drainGen(g, horizon))
		}
		got /= reps
		if got < 0.7*want || got > 1.3*want {
			t.Errorf("%v: offered %.0f packets, want ≈%.0f", kind, got, want)
		}
	}
}

func TestGenZeroRateNeverFires(t *testing.T) {
	g := newGen(Profile{Kind: Poisson}, rng.New(1), 10e6, 0)
	if g.peek() != never {
		t.Fatalf("zero-rate gen scheduled an arrival at %d", g.peek())
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{CBR, Poisson, OnOff, HeavyTailed} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus kind")
	}
}

func TestProfileCountMismatch(t *testing.T) {
	n := testNetwork(t, 11)
	_, err := New(n, Config{Profiles: []Profile{NewCBR(1e6, 256)}})
	if err == nil {
		t.Fatal("New accepted wrong profile count")
	}
}

// engineReport runs one closed-loop window and returns the report.
func engineReport(t *testing.T, sys System, netSeed, engSeed int64, rateBps, seconds float64) *Report {
	t.Helper()
	n := testNetwork(t, netSeed)
	streams := n.NumStreams()
	profiles := make([]Profile, streams)
	for i := range profiles {
		profiles[i] = NewPoisson(rateBps, 256)
	}
	e, err := New(n, Config{System: sys, Profiles: profiles, Seed: engSeed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := e.Run(seconds)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestEngineClosedLoopDelivers(t *testing.T) {
	rep := engineReport(t, SystemMegaMIMO, 21, 5, 2e6, 0.02)
	if rep.AggregateOfferedBps <= 0 {
		t.Fatal("no load offered")
	}
	if rep.AggregateDeliveredBps <= 0 {
		t.Fatal("closed loop delivered nothing")
	}
	if rep.AggregateDeliveredBps > rep.AggregateOfferedBps+1 {
		t.Fatalf("delivered %.0f bps exceeds offered %.0f bps",
			rep.AggregateDeliveredBps, rep.AggregateOfferedBps)
	}
	for _, c := range rep.Clients {
		if c.DeliveredPackets > 0 && (math.IsNaN(c.P50LatencyMs) || c.P50LatencyMs <= 0) {
			t.Errorf("stream %d: delivered %d packets but p50 latency %.3f ms",
				c.Stream, c.DeliveredPackets, c.P50LatencyMs)
		}
	}
	if rep.Fairness <= 0 || rep.Fairness > 1.0000001 {
		t.Fatalf("fairness %.3f out of range", rep.Fairness)
	}
}

func TestEngineDeterministicRepeat(t *testing.T) {
	a := engineReport(t, SystemMegaMIMO, 33, 9, 4e6, 0.01)
	b := engineReport(t, SystemMegaMIMO, 33, 9, 4e6, 0.01)
	if a.String() != b.String() {
		t.Fatalf("same seeds diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestEngineTDMABaselineRuns(t *testing.T) {
	rep := engineReport(t, SystemTDMA, 21, 5, 2e6, 0.02)
	if rep.AggregateDeliveredBps <= 0 {
		t.Fatal("TDMA baseline delivered nothing")
	}
}

func TestQueueCapDropTails(t *testing.T) {
	n := testNetwork(t, 44)
	streams := n.NumStreams()
	profiles := make([]Profile, streams)
	for i := range profiles {
		profiles[i] = NewCBR(40e6, 1500) // far beyond capacity
	}
	e, err := New(n, Config{System: SystemMegaMIMO, Profiles: profiles, Seed: 3, QueueCap: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := e.Run(0.01)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	drops := 0
	for _, c := range rep.Clients {
		drops += c.DroppedPackets
	}
	if drops == 0 {
		t.Fatal("overloaded engine with QueueCap=4 dropped nothing")
	}
}

func TestTrafficEmitsTraceEvents(t *testing.T) {
	n := testNetwork(t, 55)
	n.Trace().Enable(0)
	streams := n.NumStreams()
	profiles := make([]Profile, streams)
	for i := range profiles {
		profiles[i] = NewPoisson(2e6, 256)
	}
	e, err := New(n, Config{Profiles: profiles, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := e.Run(0.005); err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := 0
	for _, ev := range n.Trace().Events() {
		if ev.Kind == core.KindTraffic {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("want ≥2 %q trace events, got %d", core.KindTraffic, found)
	}
}

// TestEngineSamplerCadence checks the streaming-metrics hook: a wired
// sampler snapshots every SampleEvery rounds plus once at the horizon,
// with monotone ether timestamps and matching metrics trace instants.
func TestEngineSamplerCadence(t *testing.T) {
	n := testNetwork(t, 31)
	n.Trace().Enable(1 << 16)
	s := metrics.NewSampler(n.Metrics())
	profiles := []Profile{NewCBR(4e6, 1200), NewCBR(4e6, 1200)}
	eng, err := New(n, Config{
		System: SystemMegaMIMO, Profiles: profiles, Seed: 5,
		Sampler: s, SampleEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0.02)
	if err != nil {
		t.Fatal(err)
	}
	series := s.Series()
	wantLen := rep.Rounds/4 + 1 // cadence points + the final horizon point
	if len(series) != wantLen {
		t.Fatalf("sampler took %d points over %d rounds (every 4), want %d",
			len(series), rep.Rounds, wantLen)
	}
	for i := 1; i < len(series); i++ {
		if series[i].At < series[i-1].At {
			t.Fatalf("series timestamps not monotone: %d then %d", series[i-1].At, series[i].At)
		}
	}
	var traced int
	for _, e := range n.Trace().Events() {
		if e.Kind == core.KindMetrics {
			traced++
		}
	}
	if traced != len(series) {
		t.Fatalf("%d metrics trace instants for %d samples", traced, len(series))
	}
	// Counters must be present and the final point cumulative.
	last := series[len(series)-1]
	if len(last.Counters) == 0 {
		t.Fatal("final sample has no counters")
	}
}
