package traffic

import (
	"fmt"
	"strings"

	"megamimo/internal/baseline"
	"megamimo/internal/core"
	"megamimo/internal/fault"
	"megamimo/internal/mac"
	"megamimo/internal/metrics"
	"megamimo/internal/phy"
	"megamimo/internal/rng"
	"megamimo/internal/stats"
	"megamimo/internal/units"
)

// System selects which MAC serves the demand.
type System int

const (
	// SystemMegaMIMO serves the shared queue with joint transmissions.
	SystemMegaMIMO System = iota
	// SystemTDMA models the 802.11 baseline: one AP at a time, clients
	// served round-robin for an equal medium share (§11's accounting).
	SystemTDMA
)

// String names the system.
func (s System) String() string {
	if s == SystemTDMA {
		return "802.11"
	}
	return "megamimo"
}

// Config parameterizes an Engine.
type Config struct {
	// System picks the MAC under test.
	System System
	// Profiles holds one demand profile per stream (client antenna);
	// its length must equal the network's stream count.
	Profiles []Profile
	// Seed drives every random draw (arrival processes, payloads) via
	// internal/rng splits — same seed, same byte-identical run.
	Seed int64
	// QueueCap drop-tails the shared queue when > 0.
	QueueCap int
	// MaxAttempts bounds retransmissions per packet (0 = mac default).
	MaxAttempts int
	// Faults, when non-nil, is the seeded fault schedule replayed against
	// the run: the engine applies due events every iteration and handles
	// the client-churn ones itself.
	Faults *fault.Plan
	// Sampler, when non-nil, snapshots the network's metrics registry on
	// the ether clock every SampleEvery service rounds (and once at the
	// end of the run), building the streaming time series.
	Sampler *metrics.Sampler
	// SampleEvery is the sampling cadence in service rounds
	// (0 = DefaultSampleEvery). Only meaningful with Sampler set.
	SampleEvery int
	// OnRound, when non-nil, runs after every served round (after its
	// metrics sample). Returning an error stops the run and propagates it
	// to the caller — the soak harness hooks checkpointing here and uses a
	// sentinel error to interrupt a run at an exact round for kill/resume
	// testing.
	OnRound func(rounds int) error
}

// DefaultSampleEvery is the metrics-sampling cadence when a Sampler is
// attached without an explicit round interval.
const DefaultSampleEvery = 64

// ClientReport is one stream's closed-loop accounting.
type ClientReport struct {
	Stream                                                          int
	OfferedPackets, DeliveredPackets, FailedPackets, DroppedPackets int
	OfferedBps, DeliveredBps                                        float64
	// P50/P95 latency in milliseconds from enqueue to ACK; NaN when
	// nothing was delivered.
	P50LatencyMs, P95LatencyMs float64
	// JitterMs is the mean absolute difference of successive latencies.
	JitterMs float64
}

// Report is the outcome of one Engine.Run window.
type Report struct {
	System  System
	Seconds float64
	Clients []ClientReport
	// Aggregate offered and delivered load across all streams.
	AggregateOfferedBps, AggregateDeliveredBps float64
	// Fairness is Jain's index over per-stream delivered throughput.
	Fairness float64
	// Rounds counts MAC service rounds; Backlog is what remained queued
	// at the horizon.
	Rounds, Backlog int
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  %.3fs window  offered %.2f Mb/s  delivered %.2f Mb/s  fairness %.3f\n",
		r.System, r.Seconds, r.AggregateOfferedBps/1e6, r.AggregateDeliveredBps/1e6, r.Fairness)
	fmt.Fprintf(&b, "%-6s  %-9s  %-9s  %-7s  %-7s  %-9s  %-9s  %-9s\n",
		"stream", "off Mb/s", "del Mb/s", "drops", "fails", "p50 ms", "p95 ms", "jitter ms")
	for _, c := range r.Clients {
		fmt.Fprintf(&b, "%-6d  %-9.2f  %-9.2f  %-7d  %-7d  %-9.3f  %-9.3f  %-9.3f\n",
			c.Stream, c.OfferedBps/1e6, c.DeliveredBps/1e6,
			c.DroppedPackets, c.FailedPackets,
			c.P50LatencyMs, c.P95LatencyMs, c.JitterMs)
	}
	return b.String()
}

// LatencyBuckets returns the delivery-latency histogram bounds in
// milliseconds.
func LatencyBuckets() []float64 {
	return []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
}

// tdmaLink caches the 802.11 baseline's per-stream unicast rate decision.
type tdmaLink struct {
	mcs phy.MCS
	ap  int
	ok  bool
}

// Engine drives one system closed-loop: generate arrivals on the ether
// clock, feed the MAC queue, serve rounds, consume ACKs, and account
// per-client outcomes. One engine owns one network — run the comparison
// by building two identically seeded networks, one engine each.
type Engine struct {
	net  *core.Network
	cfg  Config
	gens []*gen

	queue *mac.Queue     // shared downlink queue being served
	sched *mac.Scheduler // MegaMIMO service
	uni   *baseline.Unicast
	cont  *mac.Contention
	links []tdmaLink // TDMA rate cache, filled by prepare
	tq    mac.Queue  // TDMA-owned queue storage
	rr    int        // TDMA round-robin cursor

	payloads [][]byte // per-stream payload template (content is irrelevant)

	// Per-stream accounting.
	offered, delivered, failed, dropped []int
	latencies                           [][]float64 // ms, in delivery order

	rounds int
	// Run window, set by Run and carried through checkpoints so a resumed
	// run serves to the exact same horizon and normalizes its report over
	// the exact same float seconds.
	runStart, horizon int64
	runSeconds        float64

	mArrive  *metrics.Counter
	mDrops   *metrics.Counter
	hLatency *metrics.Histogram

	// Fault machinery: inj replays cfg.Faults; inactive marks streams
	// whose client has left (arrivals discarded until rejoin).
	inj      *fault.Injector
	inactive []bool
}

// New builds an engine over an already measured network.
func New(net *core.Network, cfg Config) (*Engine, error) {
	streams := net.NumStreams()
	if len(cfg.Profiles) != streams {
		return nil, fmt.Errorf("traffic: %d profiles for %d streams", len(cfg.Profiles), streams)
	}
	e := &Engine{
		net:       net,
		cfg:       cfg,
		gens:      make([]*gen, streams),
		payloads:  make([][]byte, streams),
		offered:   make([]int, streams),
		delivered: make([]int, streams),
		failed:    make([]int, streams),
		dropped:   make([]int, streams),
		latencies: make([][]float64, streams),
		links:     make([]tdmaLink, streams),
	}
	root := rng.New(cfg.Seed)
	start := net.Now()
	for i := 0; i < streams; i++ {
		src := root.Split(uint64(i))
		e.gens[i] = newGen(cfg.Profiles[i], src, net.Cfg.SampleRate, start)
		size := cfg.Profiles[i].PacketBytes
		if size <= 0 {
			size = DefaultPacketBytes
		}
		e.payloads[i] = src.Bytes(make([]byte, size))
	}
	switch cfg.System {
	case SystemTDMA:
		e.uni = baseline.New(net)
		e.cont = mac.NewContention(net.Cfg.SampleRate, cfg.Seed^0x7dfa)
		e.queue = &e.tq
	default:
		e.sched = mac.NewScheduler(net, cfg.Seed^0x51ed)
		if cfg.MaxAttempts > 0 {
			e.sched.MaxAttempts = cfg.MaxAttempts
		}
		e.queue = &e.sched.Queue
	}
	m := net.Metrics()
	e.mArrive = m.Counter("traffic_arrivals_total")
	e.mDrops = m.Counter("traffic_drops_total")
	e.hLatency = m.Histogram("traffic_latency_ms", LatencyBuckets())
	e.inactive = make([]bool, streams)
	if cfg.Faults != nil {
		e.inj = fault.NewInjector(net, cfg.Faults)
	}
	return e, nil
}

// maxAttempts returns the retransmission bound for TDMA service.
func (e *Engine) maxAttempts() int {
	if e.cfg.MaxAttempts > 0 {
		return e.cfg.MaxAttempts
	}
	return 4
}

// Prepare resolves rates before the measurement window opens so neither
// system pays setup airtime inside it: MegaMIMO runs its probe
// transmission, TDMA computes per-stream unicast rates from the
// measurement (no airtime). Run calls it; the checkpoint restore path
// calls it explicitly while rebuilding, before overwriting state.
func (e *Engine) Prepare() error {
	if e.cfg.System == SystemTDMA {
		for i := range e.links {
			mcs, ap, ok, err := e.uni.SelectRate(i)
			if err != nil {
				return err
			}
			e.links[i] = tdmaLink{mcs: mcs, ap: ap, ok: ok}
		}
		return nil
	}
	return e.sched.EnsureRate()
}

// pump admits every arrival due at or before now into the queue,
// drop-tailing at QueueCap.
func (e *Engine) pump(now int64) {
	for i, g := range e.gens {
		for g.peek() <= now {
			at := g.peek()
			n := g.pop()
			if e.inactive[i] {
				continue // departed client: its demand left with it
			}
			for k := 0; k < n; k++ {
				e.offered[i]++
				e.mArrive.Inc()
				bits := int64(8 * len(e.payloads[i]))
				client := i / e.net.Cfg.AntennasPerClient
				if e.cfg.QueueCap > 0 && e.queue.Len() >= e.cfg.QueueCap {
					e.dropped[i]++
					e.mDrops.Inc()
					e.net.Trace().Emit(at, core.KindDemand,
						core.TraceAttrs{Client: client, Stream: i, QueueDepth: e.queue.Len(), Bits: bits, Cause: "queue-cap"},
						"stream %d arrival dropped", i)
					continue
				}
				p := &mac.Packet{
					Stream:       i,
					Payload:      e.payloads[i],
					DesignatedAP: e.net.StrongestAP(i),
					EnqueuedAt:   at,
				}
				e.queue.Push(p)
				e.net.Trace().Emit(at, core.KindDemand,
					core.TraceAttrs{Client: client, Stream: i, Pkt: p.Seq, QueueDepth: e.queue.Len(), Bits: bits, OK: true},
					"")
			}
		}
	}
}

// recordDelivery accounts one ACKed packet.
func (e *Engine) recordDelivery(p *mac.Packet, deliveredAt int64) {
	e.delivered[p.Stream]++
	ms := units.Duration(units.Ticks(deliveredAt-p.EnqueuedAt), e.net.Cfg.SampleRate) * 1e3
	e.latencies[p.Stream] = append(e.latencies[p.Stream], ms)
	e.hLatency.Observe(ms)
}

// serveMegaMIMO runs one joint-transmission round.
func (e *Engine) serveMegaMIMO() error {
	res, err := e.sched.Step()
	if err != nil {
		return err
	}
	for _, p := range res.Delivered {
		e.recordDelivery(p, res.DeliveredAt)
	}
	for _, p := range res.Failed {
		e.failed[p.Stream]++
	}
	return nil
}

// serveTDMA gives the next backlogged stream (round-robin) one unicast
// attempt from its strongest AP — the equal-share 802.11 baseline.
func (e *Engine) serveTDMA() error {
	streams := len(e.gens)
	var p *mac.Packet
	for k := 0; k < streams; k++ {
		s := (e.rr + k) % streams
		if q := e.queue.NextForStream(s); q != nil {
			p, e.rr = q, s+1
			break
		}
	}
	if p == nil {
		return nil
	}
	link := e.links[p.Stream]
	if !e.net.APLive(link.ap) {
		// The serving AP crashed: re-associate with the strongest live AP
		// (StrongestAP skips crashed APs) and cache the new rate.
		mcs, ap, ok, err := e.uni.SelectRate(p.Stream)
		if err != nil {
			return err
		}
		link = tdmaLink{mcs: mcs, ap: ap, ok: ok}
		e.links[p.Stream] = link
	}
	if !link.ok {
		// Dead spot: the baseline cannot deliver this stream at any
		// rate; the packet burns its attempts without airtime.
		e.queue.Remove(p)
		e.failed[p.Stream]++
		e.net.AdvanceTime(1)
		return nil
	}
	e.net.AdvanceTime(e.cont.BackoffSamples(1))
	frame, _, err := e.uni.Transmit(p.Stream, link.ap, p.Payload, link.mcs)
	if err != nil {
		return err
	}
	if frame != nil && frame.FCSOK {
		p.Delivered = true
		e.queue.Remove(p)
		e.recordDelivery(p, e.net.Now())
		return nil
	}
	p.Attempts++
	if p.Attempts >= e.maxAttempts() {
		e.queue.Remove(p)
		e.failed[p.Stream]++
	}
	return nil
}

// Run drives the closed loop for a simulated window of the given length
// and reports per-client outcomes. Arrivals beyond the horizon never
// enter; packets still queued at the horizon count as backlog, not
// delivered — that is what bends the saturation curve.
func (e *Engine) Run(seconds float64) (*Report, error) {
	if err := e.Prepare(); err != nil {
		return nil, err
	}
	start := e.net.Now()
	e.runStart = start
	e.horizon = start + int64(units.TicksIn(seconds, e.net.Cfg.SampleRate))
	e.runSeconds = seconds
	e.net.Trace().Emit(start, core.KindTraffic, core.TraceAttrs{},
		"workload start: %s, %d streams, %.3fs window", e.cfg.System, len(e.gens), seconds)
	return e.loop()
}

// ResumeRun continues a run restored from a checkpoint to its original
// horizon. The engine must have been restored first (RestoreSnapshot
// carries the run window); the "workload start" trace event is not
// re-emitted — the interrupted run already streamed it, so a resumed
// trace tail stays byte-identical to the uninterrupted run's.
func (e *Engine) ResumeRun() (*Report, error) {
	if e.horizon == 0 {
		return nil, fmt.Errorf("traffic: ResumeRun without a restored run window")
	}
	return e.loop()
}

// loop is the shared service loop: pump arrivals, serve rounds, sample,
// until the horizon.
func (e *Engine) loop() (*Report, error) {
	for e.net.Now() < e.horizon {
		now := e.net.Now()
		e.applyFaults(now)
		e.pump(now)
		if e.queue.Len() == 0 {
			next := never
			for _, g := range e.gens {
				if g.peek() < next {
					next = g.peek()
				}
			}
			// Idle skips stop at the next scheduled fault/recovery so
			// restarts and rejoins never fire late.
			if e.inj != nil {
				if at, ok := e.inj.NextAt(); ok && at > now && at < next {
					next = at
				}
			}
			if next >= e.horizon {
				break
			}
			e.net.AdvanceTime(next - now)
			continue
		}
		e.rounds++
		var err error
		if e.cfg.System == SystemTDMA {
			err = e.serveTDMA()
		} else {
			err = e.serveMegaMIMO()
		}
		if err != nil {
			return nil, err
		}
		e.maybeSample(false)
		if e.cfg.OnRound != nil {
			if err := e.cfg.OnRound(e.rounds); err != nil {
				return nil, err
			}
		}
	}
	e.maybeSample(true)
	e.net.Trace().Emit(e.net.Now(), core.KindTraffic,
		core.TraceAttrs{QueueDepth: e.queue.Len(), OK: e.queue.Len() == 0},
		"workload end: %d rounds, %d backlog", e.rounds, e.queue.Len())
	return e.report(e.runSeconds), nil
}

// maybeSample takes a metrics time-series point when a sampler is wired:
// every SampleEvery service rounds, plus a final point at the horizon so
// the series always closes on the run's end state. Each point is also
// marked on the trace timeline as a metrics instant.
func (e *Engine) maybeSample(final bool) {
	if e.cfg.Sampler == nil {
		return
	}
	every := e.cfg.SampleEvery
	if every <= 0 {
		every = DefaultSampleEvery
	}
	if !final && e.rounds%every != 0 {
		return
	}
	now := e.net.Now()
	e.cfg.Sampler.Sample(now)
	e.net.Trace().Emit(now, core.KindMetrics,
		core.TraceAttrs{QueueDepth: e.queue.Len()},
		"metrics sample: round %d", e.rounds)
}

// applyFaults fires every fault-plan event due by now. Network and
// backend faults apply inside the injector; client churn is engine state:
// a departing client's queued packets are purged (counted as drops) and
// its arrivals discarded until the matching rejoin.
func (e *Engine) applyFaults(now int64) {
	if e.inj == nil {
		return
	}
	for _, ev := range e.inj.Apply(now) {
		switch ev.Kind {
		case fault.KindClientLeave:
			if ev.Stream < 0 || ev.Stream >= len(e.inactive) {
				continue
			}
			e.inactive[ev.Stream] = true
			for range e.queue.DropStream(ev.Stream) {
				e.dropped[ev.Stream]++
				e.mDrops.Inc()
			}
		case fault.KindClientJoin:
			if ev.Stream >= 0 && ev.Stream < len(e.inactive) {
				e.inactive[ev.Stream] = false
			}
		case fault.KindAPCrash, fault.KindAPRestart, fault.KindLeadFail,
			fault.KindBackendDrop, fault.KindBackendDelay, fault.KindBackendJitter,
			fault.KindBackendPartition, fault.KindSyncCorrupt:
			// Applied inside the injector (network/bus state); nothing to
			// do at the workload layer.
		}
	}
}

// report folds the accounting into a Report.
func (e *Engine) report(seconds float64) *Report {
	r := &Report{
		System:  e.cfg.System,
		Seconds: seconds,
		Clients: make([]ClientReport, len(e.gens)),
		Rounds:  e.rounds,
		Backlog: e.queue.Len(),
	}
	perStream := make([]float64, len(e.gens))
	for i := range e.gens {
		bits := float64(8 * len(e.payloads[i]))
		c := &r.Clients[i]
		c.Stream = i
		c.OfferedPackets = e.offered[i]
		c.DeliveredPackets = e.delivered[i]
		c.FailedPackets = e.failed[i]
		c.DroppedPackets = e.dropped[i]
		c.OfferedBps = float64(e.offered[i]) * bits / seconds
		c.DeliveredBps = float64(e.delivered[i]) * bits / seconds
		lats := e.latencies[i]
		pcts := stats.Percentiles(lats, 50, 95)
		c.P50LatencyMs, c.P95LatencyMs = pcts[0], pcts[1]
		var jitter float64
		for k := 1; k < len(lats); k++ {
			d := lats[k] - lats[k-1]
			if d < 0 {
				d = -d
			}
			jitter += d
		}
		if len(lats) > 1 {
			c.JitterMs = jitter / float64(len(lats)-1)
		}
		perStream[i] = c.DeliveredBps
		r.AggregateOfferedBps += c.OfferedBps
		r.AggregateDeliveredBps += c.DeliveredBps
	}
	r.Fairness = stats.JainFairness(perStream)
	return r
}
