package geom

import (
	"megamimo/internal/units"
	"testing"

	"megamimo/internal/rng"
)

func TestDistance(t *testing.T) {
	a := Point{0, 0, 0}
	b := Point{3, 4, 0}
	if got := a.Distance(b); units.Abs(got-5) > 1e-12 {
		t.Fatalf("Distance = %v", got)
	}
	c := Point{1, 1, 1}
	if got := c.Distance(c); got != 0 {
		t.Fatalf("self distance %v", got)
	}
}

func TestLossDBMonotonicInDistance(t *testing.T) {
	pl := DefaultIndoor
	prev := units.Decibels(-1)
	for d := units.Meters(0.5); d < 30; d += 0.5 {
		l := pl.LossDB(d, 0)
		if l <= prev {
			t.Fatalf("loss not monotonic at %v m", d)
		}
		prev = l
	}
	// Clamp below 10 cm.
	if pl.LossDB(0.01, 0) != pl.LossDB(0.1, 0) {
		t.Fatal("sub-10cm distance not clamped")
	}
}

func TestLossDBFreeSpaceSlope(t *testing.T) {
	pl := PathLoss{RefLossDB: 40, Exponent: 2}
	// Doubling distance at exponent 2 adds ~6.02 dB.
	d1 := pl.LossDB(4, 0) - pl.LossDB(2, 0)
	if units.Abs(d1-6.0206) > 0.01 {
		t.Fatalf("slope %v dB per octave", d1)
	}
}

func TestAPLocationsOnPerimeter(t *testing.T) {
	r := ConferenceRoom
	pts := r.APLocations(10)
	if len(pts) != 10 {
		t.Fatalf("%d locations", len(pts))
	}
	for i, p := range pts {
		onEdge := p.X == 0 || p.Y == 0 || units.Abs(p.X-r.Width) < 1e-9 || units.Abs(p.Y-r.Length) < 1e-9
		if !onEdge {
			t.Fatalf("AP %d at %+v not on perimeter", i, p)
		}
		if p.Z != r.LedgeHeight {
			t.Fatalf("AP %d not at ledge height", i)
		}
		if p.X < -1e-9 || p.X > r.Width+1e-9 || p.Y < -1e-9 || p.Y > r.Length+1e-9 {
			t.Fatalf("AP %d outside room: %+v", i, p)
		}
	}
	// Distinct positions.
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Distance(pts[j]) < 0.5 {
				t.Fatalf("APs %d,%d nearly collocated", i, j)
			}
		}
	}
}

func TestRandomClientLocationInBounds(t *testing.T) {
	src := rng.New(1)
	r := ConferenceRoom
	for i := 0; i < 500; i++ {
		p := r.RandomClientLocation(src)
		if p.X < 1 || p.X > r.Width-1 || p.Y < 1 || p.Y > r.Length-1 {
			t.Fatalf("client outside margin: %+v", p)
		}
		if p.Z != r.ClientHeight {
			t.Fatalf("client at height %v", p.Z)
		}
	}
}

func TestSampleTopologyShape(t *testing.T) {
	src := rng.New(2)
	top := SampleTopology(src, ConferenceRoom, DefaultIndoor, 6, 6)
	if len(top.APs) != 6 || len(top.Clients) != 6 {
		t.Fatalf("topology %d APs %d clients", len(top.APs), len(top.Clients))
	}
	if len(top.ShadowDB) != 6 || len(top.ShadowDB[0]) != 6 {
		t.Fatal("shadowing matrix misshaped")
	}
}

func TestLinkBudgetPlausible(t *testing.T) {
	src := rng.New(3)
	top := SampleTopology(src, ConferenceRoom, DefaultIndoor, 4, 4)
	for c := range top.Clients {
		for a := range top.APs {
			snr := top.SNRdB(DefaultIndoor, c, a, 20, -95)
			// In a 20 m room with 20 dBm TX: plausible indoor SNR range.
			if snr < 10 || snr > 90 {
				t.Fatalf("client %d ← AP %d SNR %v dB implausible", c, a, snr)
			}
		}
	}
}

func TestPropagationDelaySamples(t *testing.T) {
	top := &Topology{
		APs:     []Point{{0, 0, 0}},
		Clients: []Point{{29.9792458, 0, 0}}, // 100 ns of light travel
	}
	got := top.PropagationDelaySamples(0, 0, 10e6)
	if units.Abs(got-1.0) > 1e-9 {
		t.Fatalf("delay %v samples, want 1.0", got)
	}
}

func TestTopologyMap(t *testing.T) {
	src := rng.New(5)
	top := SampleTopology(src, ConferenceRoom, DefaultIndoor, 4, 3)
	m := top.Map(ConferenceRoom, 40, 12)
	var aps, cls int
	for _, ch := range m {
		switch ch {
		case 'A':
			aps++
		case 'c':
			cls++
		}
	}
	if aps == 0 || cls == 0 {
		t.Fatalf("map missing nodes:\n%s", m)
	}
	if aps > 4 || cls > 3 {
		t.Fatalf("too many markers (%d APs, %d clients)", aps, cls)
	}
	// Degenerate sizes clamp instead of panicking.
	if small := top.Map(ConferenceRoom, 1, 1); small == "" {
		t.Fatal("tiny map empty")
	}
}
