// Package geom models the paper's testbed geometry (Fig. 5): a
// conference-room-like space with access points on perimeter ledges near
// the ceiling and clients scattered across the floor, plus the
// log-distance path-loss model that turns positions into link budgets.
package geom

import (
	"math"

	"megamimo/internal/rng"
	"megamimo/internal/units"
)

// Point is a 3-D position in meters.
type Point struct{ X, Y, Z units.Meters }

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) units.Meters {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	//lint:ignore units the squared-distance intermediate has no dedicated dimension type
	return units.Meters(math.Sqrt(float64(dx*dx + dy*dy + dz*dz)))
}

// PathLoss is a log-distance model with lognormal shadowing.
type PathLoss struct {
	// RefLossDB is the loss at the 1 m reference distance (≈40 dB at
	// 2.4 GHz free space).
	RefLossDB units.Decibels
	// Exponent is the path-loss exponent (2 free space, ~2.8 indoor mixed
	// LOS/NLOS).
	Exponent float64
	// ShadowSigmaDB is the lognormal shadowing standard deviation.
	ShadowSigmaDB units.Decibels
}

// DefaultIndoor matches a dense indoor deployment at 2.4 GHz.
var DefaultIndoor = PathLoss{RefLossDB: 40.0, Exponent: 2.8, ShadowSigmaDB: 4.0}

// LossDB returns the path loss over distance d (meters); shadow is the
// per-link shadowing draw in dB (0 for the median link).
func (p PathLoss) LossDB(d units.Meters, shadowDB units.Decibels) units.Decibels {
	if d < 0.1 {
		d = 0.1
	}
	return p.RefLossDB + units.Decibels(10*p.Exponent*math.Log10(units.Ratio(d, 1))) + shadowDB
}

// Room is a rectangular deployment area.
type Room struct {
	Width, Length, Height units.Meters
	// LedgeHeight is the AP mounting height (paper: ledges near ceiling).
	LedgeHeight units.Meters
	// ClientHeight is the client/table height.
	ClientHeight units.Meters
}

// ConferenceRoom is a Fig.-5-scale space.
var ConferenceRoom = Room{Width: 18, Length: 12, Height: 3.2, LedgeHeight: 2.8, ClientHeight: 0.9}

// APLocations returns n candidate AP positions spread along the room
// perimeter at ledge height, mimicking the blue squares of Fig. 5.
func (r Room) APLocations(n int) []Point {
	if n <= 0 {
		return nil
	}
	out := make([]Point, n)
	perim := 2 * (r.Width + r.Length)
	for i := range out {
		s := units.Div(units.Scale(perim, float64(i)+0.5), float64(n))
		out[i] = r.perimeterPoint(s)
	}
	return out
}

func (r Room) perimeterPoint(s units.Meters) Point {
	switch {
	case s < r.Width:
		return Point{s, 0, r.LedgeHeight}
	case s < r.Width+r.Length:
		return Point{r.Width, s - r.Width, r.LedgeHeight}
	case s < 2*r.Width+r.Length:
		return Point{r.Width - (s - r.Width - r.Length), r.Length, r.LedgeHeight}
	default:
		return Point{0, s - 2*r.Width - r.Length, r.LedgeHeight}
	}
}

// RandomClientLocation draws a client position uniformly over the floor,
// keeping a margin from the walls.
func (r Room) RandomClientLocation(src *rng.Source) Point {
	const margin = 1.0
	return Point{
		//lint:ignore units rng draws are dimensionless; the bounds re-enter as meters
		X: units.Meters(src.Uniform(margin, float64(r.Width)-margin)),
		//lint:ignore units rng draws are dimensionless; the bounds re-enter as meters
		Y: units.Meters(src.Uniform(margin, float64(r.Length)-margin)),
		Z: r.ClientHeight,
	}
}

// Topology is one sampled placement: AP and client positions plus the
// per-link shadowing draws.
type Topology struct {
	APs      []Point
	Clients  []Point
	ShadowDB [][]units.Decibels // [client][ap]
}

// SampleTopology places nAPs APs (random subset of perimeter candidates)
// and nClients clients and draws shadowing.
func SampleTopology(src *rng.Source, room Room, pl PathLoss, nAPs, nClients int) *Topology {
	cands := room.APLocations(max(nAPs*2, 8))
	perm := src.Perm(len(cands))
	t := &Topology{}
	for i := 0; i < nAPs; i++ {
		t.APs = append(t.APs, cands[perm[i]])
	}
	for c := 0; c < nClients; c++ {
		t.Clients = append(t.Clients, room.RandomClientLocation(src))
	}
	t.ShadowDB = make([][]units.Decibels, nClients)
	for c := range t.ShadowDB {
		t.ShadowDB[c] = make([]units.Decibels, nAPs)
		for a := range t.ShadowDB[c] {
			t.ShadowDB[c][a] = units.Scale(pl.ShadowSigmaDB, src.Norm())
		}
	}
	return t
}

// LinkGainDB returns the client←AP channel gain in dB (negative).
func (t *Topology) LinkGainDB(pl PathLoss, client, ap int) units.Decibels {
	d := t.Clients[client].Distance(t.APs[ap])
	return -pl.LossDB(d, t.ShadowDB[client][ap])
}

// SNRdB returns the link SNR given transmit power and noise floor in dBm.
func (t *Topology) SNRdB(pl PathLoss, client, ap int, txPowerDBm, noiseFloorDBm units.Decibels) units.Decibels {
	return txPowerDBm + t.LinkGainDB(pl, client, ap) - noiseFloorDBm
}

// PropagationDelaySamples converts the link distance to a sample delay at
// the given rate (speed of light).
func (t *Topology) PropagationDelaySamples(client, ap int, sampleRate units.Hertz) units.Samples {
	const c = 299792458.0 // meters per second
	return units.Samples(units.Ratio(t.Clients[client].Distance(t.APs[ap]), c) * units.Ratio(sampleRate, 1))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Map renders the topology as an ASCII floor plan (A = AP, c = client),
// the quick sanity check for experiment placements.
func (t *Topology) Map(room Room, cols, rows int) string {
	if cols < 8 {
		cols = 8
	}
	if rows < 4 {
		rows = 4
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	place := func(p Point, ch byte) {
		c := int(units.Ratio(p.X, room.Width) * float64(cols-1))
		r := int(units.Ratio(p.Y, room.Length) * float64(rows-1))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		grid[r][c] = ch
	}
	for _, p := range t.APs {
		place(p, 'A')
	}
	for _, p := range t.Clients {
		place(p, 'c')
	}
	out := make([]byte, 0, rows*(cols+1))
	for r := range grid {
		out = append(out, grid[r]...)
		out = append(out, '\n')
	}
	return string(out)
}
